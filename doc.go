// Package cffs is a reproduction of "Embedded Inodes and Explicit
// Grouping: Exploiting Disk Bandwidth for Small Files" (Ganger &
// Kaashoek, USENIX 1997).
//
// The implementation lives under internal/: a detailed simulated disk
// (internal/disk), a C-LOOK block driver (internal/sched,
// internal/blockio), a dual-indexed buffer cache (internal/cache), the
// C-FFS file system with embedded inodes and explicit grouping
// (internal/core), an independent FFS baseline (internal/ffs), offline
// checkers (internal/fsck), and the paper's workloads and experiment
// harness (internal/workload, internal/aging, internal/bench).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced tables and figures. The benchmarks
// in bench_test.go regenerate every table and figure; cmd/cffsbench is
// the command-line front end for the same experiments.
package cffs
