module cffs

go 1.22
