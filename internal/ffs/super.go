// Package ffs implements the conventional baseline: a McKusick-style
// fast file system with cylinder groups, statically allocated inode
// tables, allocation bitmaps, and FFS placement policy (inodes near
// their directory, data near its inode — locality, but no adjacency).
//
// It exists so the paper's comparison has a genuinely independent
// conventional implementation: the C-FFS package can also be configured
// with both techniques off, and the two are cross-checked in tests.
package ffs

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/obs"
	"cffs/internal/sim"
	"cffs/internal/vfs"
	"cffs/internal/writeback"
)

// Magic identifies an FFS superblock.
const Magic = 0x0019_9701

// Mode selects the metadata integrity strategy.
type Mode int

const (
	// ModeSync orders create/delete metadata with synchronous writes,
	// like 1990s FFS. This is the paper's default configuration.
	ModeSync Mode = iota
	// ModeDelayed uses delayed writes for all metadata, emulating soft
	// updates the same way the paper's Figure 6 does.
	ModeDelayed
)

func (m Mode) String() string {
	if m == ModeSync {
		return "sync"
	}
	return "delayed"
}

// Options configures mkfs/mount.
type Options struct {
	Mode        Mode
	CacheBlocks int // buffer cache capacity; default 2048 (8 MB)
	CGBlocks    int // blocks per cylinder group; default 2048 (8 MB)
	InodesPerCG int // static inodes per group; default 512
	// Metrics, when non-nil, instruments the mount with the same
	// registry wiring as C-FFS, so experiment tables carry comparable
	// per-op request counts for the baseline.
	Metrics *obs.Registry
	// Recorder, when non-nil, attaches a flight recorder to the mount;
	// same wiring as C-FFS, so slow-op capture works on the baseline too.
	Recorder obs.OpRecorder
	// Writeback configures the write-behind daemon with the same policy
	// knobs as C-FFS, for comparable async-mount measurements. FFS is
	// single-threaded, so the daemon always runs inline: flushes borrow
	// the operation thread at the same admission points.
	Writeback writeback.Config
}

func (o *Options) fill() error {
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 2048
	}
	if o.CGBlocks == 0 {
		o.CGBlocks = 2048
	}
	if o.InodesPerCG == 0 {
		o.InodesPerCG = 512
	}
	if o.CGBlocks < 64 || o.CGBlocks > 16384 {
		return fmt.Errorf("ffs: CGBlocks %d outside [64,16384]", o.CGBlocks)
	}
	if o.InodesPerCG < layout.InodesPerBlock || o.InodesPerCG > 2048 ||
		o.InodesPerCG%layout.InodesPerBlock != 0 {
		return fmt.Errorf("ffs: InodesPerCG %d invalid", o.InodesPerCG)
	}
	if o.InodesPerCG/layout.InodesPerBlock+1 >= o.CGBlocks/2 {
		return fmt.Errorf("ffs: inode table would consume half the group")
	}
	return nil
}

// super is the on-disk superblock (block 0).
type super struct {
	NBlocks     int64
	CGBlocks    int
	NCG         int
	InodesPerCG int
}

func (s *super) inodeBlocksPerCG() int { return s.InodesPerCG / layout.InodesPerBlock }
func (s *super) cgStart(cg int) int64  { return 1 + int64(cg)*int64(s.CGBlocks) }
func (s *super) dataStart(cg int) int64 {
	return s.cgStart(cg) + 1 + int64(s.inodeBlocksPerCG())
}

func (s *super) encode(p []byte) {
	le := leBytes{p}
	le.pu32(0, Magic)
	le.pu64(8, uint64(s.NBlocks))
	le.pu32(16, uint32(s.CGBlocks))
	le.pu32(20, uint32(s.NCG))
	le.pu32(24, uint32(s.InodesPerCG))
}

func (s *super) decode(p []byte) error {
	le := leBytes{p}
	if le.u32(0) != Magic {
		return fmt.Errorf("ffs: bad superblock magic %#x", le.u32(0))
	}
	s.NBlocks = int64(le.u64(8))
	s.CGBlocks = int(le.u32(16))
	s.NCG = int(le.u32(20))
	s.InodesPerCG = int(le.u32(24))
	return nil
}

// leBytes is a tiny little-endian accessor to keep encode/decode terse.
type leBytes struct{ p []byte }

func (b leBytes) pu32(off int, v uint32) {
	b.p[off] = byte(v)
	b.p[off+1] = byte(v >> 8)
	b.p[off+2] = byte(v >> 16)
	b.p[off+3] = byte(v >> 24)
}
func (b leBytes) u32(off int) uint32 {
	return uint32(b.p[off]) | uint32(b.p[off+1])<<8 | uint32(b.p[off+2])<<16 | uint32(b.p[off+3])<<24
}
func (b leBytes) pu64(off int, v uint64) {
	b.pu32(off, uint32(v))
	b.pu32(off+4, uint32(v>>32))
}
func (b leBytes) u64(off int) uint64 {
	return uint64(b.u32(off)) | uint64(b.u32(off+4))<<32
}

// Cylinder-group header block layout: block bitmap at cgBmapOff, inode
// bitmap after it.
const cgBmapOff = 64

// FS is the mounted file system.
type FS struct {
	dev  *blockio.Device
	c    *cache.Cache
	clk  *sim.Clock
	sb   super
	opts Options

	dirRotor int // next cylinder group for a new directory

	trk *obs.OpTracker // op attribution; disabled when Options.Metrics is nil

	wb *writeback.Daemon // inline write-behind; nil on synchronous mounts
}

// startWriteback attaches the (inline) write-behind daemon after the
// cache exists. ffs has no FS-level lock, so a background flusher would
// race the single-threaded operation stream; Inline is forced.
func (fs *FS) startWriteback() {
	cfg := fs.opts.Writeback
	cfg.Inline = true
	fs.wb = writeback.Start(fs.c, fs.clk, nil, cfg, fs.opts.Metrics)
}

// attachMetrics wires Options.Metrics and Options.Recorder through the
// mount, mirroring the C-FFS wiring so the two report comparable
// instruments.
func (fs *FS) attachMetrics(r *obs.Registry, rec obs.OpRecorder) {
	fs.trk = obs.NewOpTracker(r)
	if rec != nil {
		fs.trk.Observe(rec)
	}
	if r == nil && rec == nil {
		return
	}
	if r != nil {
		fs.c.SetMetrics(r)
		fs.dev.SetMetrics(r)
	}
	sink := obs.NewDiskSink(r)
	if rec != nil {
		sink = rec.DiskSink(sink)
	}
	fs.dev.Disk().SetOpSource(obs.CurrentOpRaw)
	fs.dev.Disk().SetMetricsFunc(sink)
}

var _ vfs.FileSystem = (*FS)(nil)
var _ vfs.Flusher = (*FS)(nil)

// Mkfs initializes an FFS on the device and returns it mounted.
func Mkfs(dev *blockio.Device, opts Options) (*FS, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	nblocks := dev.Blocks()
	ncg := int((nblocks - 1) / int64(opts.CGBlocks))
	if ncg < 1 {
		return nil, fmt.Errorf("ffs: device of %d blocks too small for one %d-block group", nblocks, opts.CGBlocks)
	}
	fs := &FS{
		dev:  dev,
		c:    cache.New(dev, opts.CacheBlocks),
		clk:  dev.Disk().Clock(),
		opts: opts,
		sb: super{
			NBlocks:     nblocks,
			CGBlocks:    opts.CGBlocks,
			NCG:         ncg,
			InodesPerCG: opts.InodesPerCG,
		},
	}
	fs.attachMetrics(opts.Metrics, opts.Recorder)
	// Superblock.
	sb, err := fs.c.Alloc(0)
	if err != nil {
		return nil, err
	}
	fs.sb.encode(sb.Data)
	fs.c.MarkDirty(sb)
	sb.Release()
	// Cylinder group headers: mark the header and inode-table blocks as
	// allocated; clear the rest.
	reserved := 1 + fs.sb.inodeBlocksPerCG()
	for cg := 0; cg < ncg; cg++ {
		hdr, err := fs.c.Alloc(fs.sb.cgStart(cg))
		if err != nil {
			return nil, err
		}
		bm := fs.blockBitmap(hdr)
		for i := 0; i < reserved; i++ {
			bm.Set(i)
		}
		fs.c.MarkDirty(hdr)
		hdr.Release()
	}
	// Root directory: inode 1 in cylinder group 0.
	rootIno, err := fs.allocInode(0)
	if err != nil {
		return nil, err
	}
	if rootIno != RootIno {
		return nil, fmt.Errorf("ffs: root allocated ino %d, want %d", rootIno, RootIno)
	}
	now := fs.clk.Now()
	root := layout.Inode{Type: vfs.TypeDir, Nlink: 2, Mtime: now}
	if err := fs.initDirData(&root, rootIno, rootIno); err != nil {
		return nil, err
	}
	if err := fs.putInode(rootIno, &root, false); err != nil {
		return nil, err
	}
	if err := fs.c.Sync(); err != nil {
		return nil, err
	}
	fs.startWriteback()
	return fs, nil
}

// Mount opens an existing FFS.
func Mount(dev *blockio.Device, opts Options) (*FS, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	fs := &FS{
		dev:  dev,
		c:    cache.New(dev, opts.CacheBlocks),
		clk:  dev.Disk().Clock(),
		opts: opts,
	}
	fs.attachMetrics(opts.Metrics, opts.Recorder)
	sb, err := fs.c.Read(0)
	if err != nil {
		return nil, err
	}
	defer sb.Release()
	if err := fs.sb.decode(sb.Data); err != nil {
		return nil, err
	}
	fs.startWriteback()
	return fs, nil
}

// RootIno is the root directory's inode number.
const RootIno vfs.Ino = 1

// Root implements vfs.FileSystem.
func (fs *FS) Root() vfs.Ino { return RootIno }

// Mode returns the metadata integrity mode.
func (fs *FS) Mode() Mode { return fs.opts.Mode }

// Cache returns the buffer cache (benchmarks inspect its stats).
func (fs *FS) Cache() *cache.Cache { return fs.c }

// Device returns the block device.
func (fs *FS) Device() *blockio.Device { return fs.dev }

// Sync implements vfs.FileSystem.
func (fs *FS) Sync() error {
	defer fs.trk.Begin(obs.OpSync)()
	return fs.c.Sync()
}

// Flush implements vfs.Flusher: write everything back and empty the
// cache, so the next access pattern starts cold.
func (fs *FS) Flush() error {
	defer fs.trk.Begin(obs.OpFlush)()
	return fs.c.Flush()
}

// Close implements vfs.FileSystem.
func (fs *FS) Close() error {
	fs.wb.Close()
	return fs.c.Sync()
}

// syncMeta writes a metadata buffer through immediately in ModeSync and
// leaves it delayed in ModeDelayed. It is the single point where the two
// integrity strategies differ.
func (fs *FS) syncMeta(b *cache.Buf) error {
	fs.c.MarkDirty(b)
	if fs.opts.Mode == ModeSync {
		return fs.c.WriteSync(b)
	}
	return nil
}
