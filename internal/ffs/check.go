package ffs

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/fsck"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Check is the offline consistency checker for baseline FFS images
// (the classic FSCK role [McKusick94]): it walks the namespace from the
// root, rebuilds block and inode bitmaps, and verifies link counts and
// directory structure.
//
// With repair set, Check follows the same recovery discipline as the
// C-FFS checker: structural fixes (dangling entries cleared, orphan
// inodes zeroed, bad pointers cut, link/block counts and "."/".."
// rewritten) are applied and the walk repeated until stable, then the
// bitmaps are rebuilt from the repaired namespace and a verification
// walk classifies anything left as unrepairable.
func Check(dev *blockio.Device, repair bool) (*fsck.Report, error) {
	fs, err := Mount(dev, Options{})
	if err != nil {
		return nil, err
	}
	r := &fsck.Report{FS: "ffs"}
	s, err := runFFSWalk(fs, r)
	if err != nil {
		return nil, err
	}
	if !repair || r.Clean() {
		r.UsedBlocks = len(s.used)
		return r, nil
	}
	cur := s
	for pass := 0; pass < 4 && cur.fx.any(); pass++ {
		n, err := cur.applyFixes()
		if err != nil {
			return nil, err
		}
		r.RepairsMade += n
		if cur, err = runFFSWalk(fs, &fsck.Report{}); err != nil {
			return nil, err
		}
	}
	n, err := cur.rewriteAlloc()
	if err != nil {
		return nil, err
	}
	r.RepairsMade += n
	rv := &fsck.Report{}
	v, err := runFFSWalk(fs, rv)
	if err != nil {
		return nil, err
	}
	r.Unrepairable = rv.Problems
	r.UsedBlocks = len(v.used)
	return r, nil
}

func runFFSWalk(fs *FS, r *fsck.Report) (*ffsCheck, error) {
	s := &ffsCheck{
		fs:      fs,
		r:       r,
		fx:      newFFSFixes(),
		used:    make(map[int64]string),
		inoSeen: make(map[vfs.Ino]int),
		inoLink: make(map[vfs.Ino]int),
		visited: make(map[vfs.Ino]bool),
	}
	s.claim(0, "superblock")
	for cg := 0; cg < fs.sb.NCG; cg++ {
		start := fs.sb.cgStart(cg)
		s.claim(start, fmt.Sprintf("cg %d header", cg))
		for b := int64(1); b <= int64(fs.sb.inodeBlocksPerCG()); b++ {
			s.claim(start+b, fmt.Sprintf("cg %d inode table", cg))
		}
	}
	if err := s.walkDir(RootIno, RootIno, "/"); err != nil {
		return nil, err
	}
	s.finish()
	return s, nil
}

// entRef names one directory record on disk.
type entRef struct {
	block  int64
	off    int
	reclen int
}

// Pointer-clear kinds, as in the C-FFS checker.
const (
	ffsPtrData = iota
	ffsPtrIndir
	ffsPtrDIndir
	ffsPtrL2
)

type ffsPtrRef struct {
	ino  vfs.Ino
	kind int
	lb   int64
}

type ffsDotFix struct {
	dir    vfs.Ino
	name   string
	target vfs.Ino
}

type ffsFixes struct {
	clearEnts []entRef
	dots      []ffsDotFix
	nlink     map[vfs.Ino]uint16
	nblocks   map[vfs.Ino]uint32
	clearPtrs []ffsPtrRef
	zeroIno   []vfs.Ino
}

func newFFSFixes() *ffsFixes {
	return &ffsFixes{nlink: make(map[vfs.Ino]uint16), nblocks: make(map[vfs.Ino]uint32)}
}

func (f *ffsFixes) any() bool {
	return len(f.clearEnts)+len(f.dots)+len(f.nlink)+len(f.nblocks)+
		len(f.clearPtrs)+len(f.zeroIno) > 0
}

type ffsCheck struct {
	fs      *FS
	r       *fsck.Report
	fx      *ffsFixes
	used    map[int64]string
	inoSeen map[vfs.Ino]int
	inoLink map[vfs.Ino]int
	visited map[vfs.Ino]bool
}

func (s *ffsCheck) problem(format string, args ...any) {
	s.r.Problems = append(s.r.Problems, fmt.Sprintf(format, args...))
}

// claim records a block owner; it reports whether the claim was first.
func (s *ffsCheck) claim(block int64, owner string) bool {
	if prev, ok := s.used[block]; ok {
		s.problem("block %d claimed by both %s and %s", block, prev, owner)
		return false
	}
	s.used[block] = owner
	return true
}

// subRef is a subdirectory entry queued for recursion, with the record
// location so a bad child can be cleared.
type subRef struct {
	name string
	ino  vfs.Ino
	ent  entRef
}

func (s *ffsCheck) walkDir(dir, parent vfs.Ino, path string) error {
	s.visited[dir] = true
	s.r.Dirs++
	in, err := s.fs.getInode(dir)
	if err != nil || in.Type != vfs.TypeDir {
		s.problem("%s: bad directory inode %d", path, dir)
		return nil
	}
	s.inoLink[dir] = int(in.Nlink)
	s.claimFileBlocks(&in, dir, path)

	var dotOK, dotdotOK bool
	var subdirs []subRef
	_, err = s.fs.forEachDirent(&in, dir, func(b *cache.Buf, e dirent) bool {
		if e.ino == 0 {
			return false
		}
		switch e.name {
		case ".":
			dotOK = vfs.Ino(e.ino) == dir
		case "..":
			dotdotOK = vfs.Ino(e.ino) == parent
		default:
			ino := vfs.Ino(e.ino)
			s.inoSeen[ino]++
			ref := entRef{block: b.Block, off: e.off, reclen: e.reclen}
			if e.ftype == vfs.TypeDir {
				subdirs = append(subdirs, subRef{name: e.name, ino: ino, ent: ref})
			} else if s.inoSeen[ino] == 1 {
				fin, err := s.fs.getInode(ino)
				if err != nil || !fin.Alive() {
					s.problem("%s%s: dangling inode %d", path, e.name, ino)
					s.fx.clearEnts = append(s.fx.clearEnts, ref)
					s.inoSeen[ino]--
				} else {
					s.inoLink[ino] = int(fin.Nlink)
					s.r.Files++
					s.claimFileBlocks(&fin, ino, path+e.name)
				}
			}
		}
		return false
	})
	if err != nil {
		s.problem("%s: walk failed: %v", path, err)
		return nil
	}
	if !dotOK {
		s.problem("%s: bad or missing \".\"", path)
		s.fx.dots = append(s.fx.dots, ffsDotFix{dir: dir, name: ".", target: dir})
	}
	if !dotdotOK {
		s.problem("%s: bad or missing \"..\"", path)
		s.fx.dots = append(s.fx.dots, ffsDotFix{dir: dir, name: "..", target: parent})
	}
	nsub := 0
	for _, e := range subdirs {
		name := path + e.name
		if s.visited[e.ino] {
			s.problem("%s: second name for directory inode %d", name, e.ino)
			s.fx.clearEnts = append(s.fx.clearEnts, e.ent)
			continue
		}
		cin, err := s.fs.getInode(e.ino)
		if err != nil || !cin.Alive() || cin.Type != vfs.TypeDir {
			s.problem("%s: dangling directory entry (inode %d)", name, e.ino)
			s.fx.clearEnts = append(s.fx.clearEnts, e.ent)
			continue
		}
		nsub++
		if err := s.walkDir(e.ino, dir, name+"/"); err != nil {
			return err
		}
	}
	if int(in.Nlink) != 2+nsub {
		s.problem("%s: nlink %d, expected %d", path, in.Nlink, 2+nsub)
		s.fx.nlink[dir] = uint16(2 + nsub)
	}
	return nil
}

func (s *ffsCheck) claimFileBlocks(in *layout.Inode, ino vfs.Ino, name string) {
	nblocks := (in.Size + blockio.BlockSize - 1) / blockio.BlockSize
	counted := uint32(0)
	for lb := int64(0); lb < nblocks; lb++ {
		phys, err := s.fs.bmap(in, ino, lb, false)
		if err != nil {
			s.problem("%s: bmap(%d): %v", name, lb, err)
			s.fx.clearPtrs = append(s.fx.clearPtrs, ffsPtrRef{ino: ino, kind: ffsPtrData, lb: lb})
			continue
		}
		if phys == 0 {
			continue
		}
		if phys >= s.fs.sb.NBlocks || !s.claim(phys, name) {
			if phys >= s.fs.sb.NBlocks {
				s.problem("%s: block %d of %d is outside the volume", name, phys, lb)
			}
			s.fx.clearPtrs = append(s.fx.clearPtrs, ffsPtrRef{ino: ino, kind: ffsPtrData, lb: lb})
			continue
		}
		counted++
	}
	if in.Indir != 0 {
		if int64(in.Indir) >= s.fs.sb.NBlocks || !s.claim(int64(in.Indir), name+" (indirect)") {
			s.fx.clearPtrs = append(s.fx.clearPtrs, ffsPtrRef{ino: ino, kind: ffsPtrIndir})
		} else {
			counted++
		}
	}
	if in.DIndir != 0 {
		if int64(in.DIndir) >= s.fs.sb.NBlocks || !s.claim(int64(in.DIndir), name+" (double indirect)") {
			s.fx.clearPtrs = append(s.fx.clearPtrs, ffsPtrRef{ino: ino, kind: ffsPtrDIndir})
		} else {
			counted++
			db, err := s.fs.c.Read(int64(in.DIndir))
			if err == nil {
				le := leBytes{db.Data}
				for k := 0; k < layout.PtrsPerBlock; k++ {
					p := le.u32(k * 4)
					if p == 0 {
						continue
					}
					if int64(p) >= s.fs.sb.NBlocks || !s.claim(int64(p), name+" (indirect level 2)") {
						s.fx.clearPtrs = append(s.fx.clearPtrs, ffsPtrRef{ino: ino, kind: ffsPtrL2, lb: int64(k)})
					} else {
						counted++
					}
				}
				db.Release()
			}
		}
	}
	if counted != in.NBlocks {
		s.problem("%s: NBlocks %d, found %d", name, in.NBlocks, counted)
		s.fx.nblocks[ino] = counted
	}
}

func (s *ffsCheck) finish() {
	fs, r := s.fs, s.r
	for ino := vfs.Ino(1); int64(ino) <= int64(fs.sb.NCG)*int64(fs.sb.InodesPerCG); ino++ {
		in, err := fs.getInode(ino)
		if err != nil {
			continue
		}
		referenced := s.inoSeen[ino] > 0 || s.visited[ino]
		if in.Alive() && !referenced {
			r.Problems = append(r.Problems, fmt.Sprintf("orphan inode %d", ino))
			s.fx.zeroIno = append(s.fx.zeroIno, ino)
		}
		if !in.Alive() && referenced {
			r.Problems = append(r.Problems, fmt.Sprintf("referenced inode %d is dead", ino))
		}
		if referenced && !s.visited[ino] && s.inoSeen[ino] != s.inoLink[ino] {
			r.Problems = append(r.Problems,
				fmt.Sprintf("inode %d: nlink %d, found %d names", ino, s.inoLink[ino], s.inoSeen[ino]))
			s.fx.nlink[ino] = uint16(s.inoSeen[ino])
		}
	}
	for cg := 0; cg < fs.sb.NCG; cg++ {
		hdr, err := fs.c.Read(fs.sb.cgStart(cg))
		if err != nil {
			r.Problems = append(r.Problems, fmt.Sprintf("cg %d: unreadable header: %v", cg, err))
			continue
		}
		bm := fs.blockBitmap(hdr)
		ibm := fs.inodeBitmap(hdr)
		for i := 0; i < fs.sb.CGBlocks; i++ {
			phys := fs.sb.cgStart(cg) + int64(i)
			if phys >= fs.sb.NBlocks {
				break
			}
			_, inUse := s.used[phys]
			if inUse && !bm.IsSet(i) {
				r.Problems = append(r.Problems, fmt.Sprintf("block %d in use but free in bitmap", phys))
			}
			if !inUse && bm.IsSet(i) {
				r.Problems = append(r.Problems, fmt.Sprintf("block %d lost (marked but unreferenced)", phys))
			}
		}
		for i := 0; i < fs.sb.InodesPerCG; i++ {
			ino := vfs.Ino(cg*fs.sb.InodesPerCG + i + 1)
			referenced := s.inoSeen[ino] > 0 || s.visited[ino]
			if referenced != ibm.IsSet(i) {
				r.Problems = append(r.Problems,
					fmt.Sprintf("inode %d bitmap bit %v, reachability %v", ino, ibm.IsSet(i), referenced))
			}
		}
		hdr.Release()
	}
}

// applyFixes executes the structural repair plan and syncs the image.
func (s *ffsCheck) applyFixes() (int, error) {
	fs, n := s.fs, 0
	for _, er := range s.fx.clearEnts {
		b, err := fs.c.Read(er.block)
		if err != nil {
			return n, err
		}
		// Freeing in place (ino 0, reclen kept) is always valid; slack
		// merging is an optimization the next dirAdd can redo.
		encodeDirent(b.Data, er.off, 0, er.reclen, vfs.TypeInvalid, "")
		fs.c.MarkDirty(b)
		b.Release()
		n++
	}
	for _, df := range s.fx.dots {
		ok, err := s.fixDot(df)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	for _, pr := range s.fx.clearPtrs {
		ok, err := s.clearPtr(pr)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	for ino, v := range s.fx.nlink {
		in, err := fs.getInode(ino)
		if err != nil {
			continue
		}
		in.Nlink = v
		if err := fs.putInode(ino, &in, false); err != nil {
			return n, err
		}
		n++
	}
	for ino, v := range s.fx.nblocks {
		in, err := fs.getInode(ino)
		if err != nil {
			continue
		}
		in.NBlocks = v
		if err := fs.putInode(ino, &in, false); err != nil {
			return n, err
		}
		n++
	}
	for _, ino := range s.fx.zeroIno {
		var zero layout.Inode
		if err := fs.putInode(ino, &zero, false); err != nil {
			return n, err
		}
		n++
	}
	return n, fs.c.Sync()
}

// fixDot rewrites a "." or ".." record in place, or inserts one when it
// is missing entirely.
func (s *ffsCheck) fixDot(df ffsDotFix) (bool, error) {
	fs := s.fs
	in, err := fs.getInode(df.dir)
	if err != nil || in.Type != vfs.TypeDir {
		return false, nil
	}
	var found dirent
	b, err := fs.forEachDirent(&in, df.dir, func(_ *cache.Buf, e dirent) bool {
		if e.ino != 0 && e.name == df.name {
			found = e
			return true
		}
		return false
	})
	if err != nil {
		return false, nil
	}
	if b != nil {
		// Rewrite the target in place; name and reclen are unchanged.
		encodeDirent(b.Data, found.off, uint32(df.target), found.reclen, vfs.TypeDir, df.name)
		fs.c.MarkDirty(b)
		b.Release()
		return true, nil
	}
	b, err = fs.dirAdd(&in, df.dir, df.name, df.target, vfs.TypeDir)
	if err != nil {
		return false, err
	}
	fs.c.MarkDirty(b)
	b.Release()
	return true, fs.putInode(df.dir, &in, false)
}

func (s *ffsCheck) clearPtr(pr ffsPtrRef) (bool, error) {
	fs := s.fs
	in, err := fs.getInode(pr.ino)
	if err != nil {
		return false, nil
	}
	switch pr.kind {
	case ffsPtrIndir:
		in.Indir = 0
		return true, fs.putInode(pr.ino, &in, false)
	case ffsPtrDIndir:
		in.DIndir = 0
		return true, fs.putInode(pr.ino, &in, false)
	case ffsPtrL2:
		if in.DIndir == 0 {
			return false, nil
		}
		return s.zeroPtrInBlock(int64(in.DIndir), int(pr.lb))
	}
	lb := pr.lb
	if lb < layout.NDirect {
		in.Direct[lb] = 0
		return true, fs.putInode(pr.ino, &in, false)
	}
	rel := lb - layout.NDirect
	if rel < layout.PtrsPerBlock {
		if in.Indir == 0 {
			return false, nil
		}
		return s.zeroPtrInBlock(int64(in.Indir), int(rel))
	}
	rel -= layout.PtrsPerBlock
	if in.DIndir == 0 {
		return false, nil
	}
	db, err := fs.c.Read(int64(in.DIndir))
	if err != nil {
		return false, nil
	}
	l2 := leBytes{db.Data}.u32(int(rel/layout.PtrsPerBlock) * 4)
	db.Release()
	if l2 == 0 {
		return false, nil
	}
	return s.zeroPtrInBlock(int64(l2), int(rel%layout.PtrsPerBlock))
}

func (s *ffsCheck) zeroPtrInBlock(block int64, k int) (bool, error) {
	b, err := s.fs.c.Read(block)
	if err != nil {
		return false, nil
	}
	leBytes{b.Data}.pu32(k*4, 0)
	s.fs.c.MarkDirty(b)
	b.Release()
	return true, nil
}

// rewriteAlloc rebuilds block and inode bitmaps from the walk.
func (s *ffsCheck) rewriteAlloc() (int, error) {
	fs, n := s.fs, 0
	for cg := 0; cg < fs.sb.NCG; cg++ {
		hdr, err := fs.c.Read(fs.sb.cgStart(cg))
		if err != nil {
			return n, err
		}
		bm := fs.blockBitmap(hdr)
		ibm := fs.inodeBitmap(hdr)
		for i := 0; i < fs.sb.CGBlocks; i++ {
			phys := fs.sb.cgStart(cg) + int64(i)
			if phys >= fs.sb.NBlocks {
				break
			}
			_, inUse := s.used[phys]
			if inUse != bm.IsSet(i) {
				if inUse {
					bm.Set(i)
				} else {
					bm.Clear(i)
				}
				n++
			}
		}
		for i := 0; i < fs.sb.InodesPerCG; i++ {
			ino := vfs.Ino(cg*fs.sb.InodesPerCG + i + 1)
			referenced := s.inoSeen[ino] > 0 || s.visited[ino]
			if referenced != ibm.IsSet(i) {
				if referenced {
					ibm.Set(i)
				} else {
					ibm.Clear(i)
				}
				n++
			}
		}
		fs.c.MarkDirty(hdr)
		hdr.Release()
	}
	return n, fs.c.Sync()
}
