package ffs

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/fsck"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Check is the offline consistency checker for baseline FFS images
// (the classic FSCK role [McKusick94]): it walks the namespace from the
// root, rebuilds block and inode bitmaps, and verifies link counts and
// directory structure. With repair set, the bitmaps are rewritten from
// the walk.
func Check(dev *blockio.Device, repair bool) (*fsck.Report, error) {
	fs, err := Mount(dev, Options{})
	if err != nil {
		return nil, err
	}
	r := &fsck.Report{}
	s := &ffsCheck{
		fs:      fs,
		r:       r,
		used:    make(map[int64]string),
		inoSeen: make(map[vfs.Ino]int),
		inoLink: make(map[vfs.Ino]int),
		visited: make(map[vfs.Ino]bool),
	}
	s.claim(0, "superblock")
	for cg := 0; cg < fs.sb.NCG; cg++ {
		start := fs.sb.cgStart(cg)
		s.claim(start, fmt.Sprintf("cg %d header", cg))
		for b := int64(1); b <= int64(fs.sb.inodeBlocksPerCG()); b++ {
			s.claim(start+b, fmt.Sprintf("cg %d inode table", cg))
		}
	}
	if err := s.walkDir(RootIno, RootIno, "/"); err != nil {
		return nil, err
	}
	s.finish()
	if repair && !r.Clean() {
		if err := s.repair(); err != nil {
			return nil, err
		}
	}
	r.UsedBlocks = len(s.used)
	return r, nil
}

type ffsCheck struct {
	fs      *FS
	r       *fsck.Report
	used    map[int64]string
	inoSeen map[vfs.Ino]int
	inoLink map[vfs.Ino]int
	visited map[vfs.Ino]bool
}

func (s *ffsCheck) claim(block int64, owner string) {
	if prev, ok := s.used[block]; ok {
		s.r.Problems = append(s.r.Problems,
			fmt.Sprintf("block %d claimed by both %s and %s", block, prev, owner))
		return
	}
	s.used[block] = owner
}

func (s *ffsCheck) walkDir(dir, parent vfs.Ino, path string) error {
	if s.visited[dir] {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: directory cycle at inode %d", path, dir))
		return nil
	}
	s.visited[dir] = true
	s.r.Dirs++
	in, err := s.fs.getInode(dir)
	if err != nil || in.Type != vfs.TypeDir {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: bad directory inode %d", path, dir))
		return nil
	}
	s.inoLink[dir] = int(in.Nlink)
	s.claimFileBlocks(&in, dir, path)

	var dotOK, dotdotOK bool
	var subdirs []vfs.DirEntry
	_, err = s.fs.forEachDirent(&in, dir, func(_ *cache.Buf, e dirent) bool {
		if e.ino == 0 {
			return false
		}
		switch e.name {
		case ".":
			dotOK = vfs.Ino(e.ino) == dir
		case "..":
			dotdotOK = vfs.Ino(e.ino) == parent
		default:
			ino := vfs.Ino(e.ino)
			s.inoSeen[ino]++
			if e.ftype == vfs.TypeDir {
				subdirs = append(subdirs, vfs.DirEntry{Name: e.name, Ino: ino})
			} else if s.inoSeen[ino] == 1 {
				fin, err := s.fs.getInode(ino)
				if err != nil || !fin.Alive() {
					s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s%s: dangling inode %d", path, e.name, ino))
				} else {
					s.inoLink[ino] = int(fin.Nlink)
					s.r.Files++
					s.claimFileBlocks(&fin, ino, path+e.name)
				}
			}
		}
		return false
	})
	if err != nil {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: walk failed: %v", path, err))
		return nil
	}
	if !dotOK || !dotdotOK {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: bad \".\" or \"..\"", path))
	}
	for _, e := range subdirs {
		if err := s.walkDir(e.Ino, dir, path+e.Name+"/"); err != nil {
			return err
		}
	}
	if int(in.Nlink) != 2+len(subdirs) {
		s.r.Problems = append(s.r.Problems,
			fmt.Sprintf("%s: nlink %d, expected %d", path, in.Nlink, 2+len(subdirs)))
	}
	return nil
}

func (s *ffsCheck) claimFileBlocks(in *layout.Inode, ino vfs.Ino, name string) {
	nblocks := (in.Size + blockio.BlockSize - 1) / blockio.BlockSize
	counted := uint32(0)
	for lb := int64(0); lb < nblocks; lb++ {
		phys, err := s.fs.bmap(in, ino, lb, false)
		if err != nil {
			s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: bmap(%d): %v", name, lb, err))
			return
		}
		if phys != 0 {
			s.claim(phys, name)
			counted++
		}
	}
	if in.Indir != 0 {
		s.claim(int64(in.Indir), name+" (indirect)")
		counted++
	}
	if in.DIndir != 0 {
		s.claim(int64(in.DIndir), name+" (double indirect)")
		counted++
		db, err := s.fs.c.Read(int64(in.DIndir))
		if err == nil {
			le := leBytes{db.Data}
			for k := 0; k < layout.PtrsPerBlock; k++ {
				if p := le.u32(k * 4); p != 0 {
					s.claim(int64(p), name+" (indirect level 2)")
					counted++
				}
			}
			db.Release()
		}
	}
	if counted != in.NBlocks {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: NBlocks %d, found %d", name, in.NBlocks, counted))
	}
}

func (s *ffsCheck) finish() {
	fs, r := s.fs, s.r
	for ino := vfs.Ino(1); int64(ino) <= int64(fs.sb.NCG)*int64(fs.sb.InodesPerCG); ino++ {
		in, err := fs.getInode(ino)
		if err != nil {
			continue
		}
		referenced := s.inoSeen[ino] > 0 || s.visited[ino]
		if in.Alive() && !referenced {
			r.Problems = append(r.Problems, fmt.Sprintf("orphan inode %d", ino))
		}
		if !in.Alive() && referenced {
			r.Problems = append(r.Problems, fmt.Sprintf("referenced inode %d is dead", ino))
		}
		if referenced && !s.visited[ino] && s.inoSeen[ino] != s.inoLink[ino] {
			r.Problems = append(r.Problems,
				fmt.Sprintf("inode %d: nlink %d, found %d names", ino, s.inoLink[ino], s.inoSeen[ino]))
		}
	}
	for cg := 0; cg < fs.sb.NCG; cg++ {
		hdr, err := fs.c.Read(fs.sb.cgStart(cg))
		if err != nil {
			r.Problems = append(r.Problems, fmt.Sprintf("cg %d: unreadable header: %v", cg, err))
			continue
		}
		bm := fs.blockBitmap(hdr)
		ibm := fs.inodeBitmap(hdr)
		for i := 0; i < fs.sb.CGBlocks; i++ {
			phys := fs.sb.cgStart(cg) + int64(i)
			if phys >= fs.sb.NBlocks {
				break
			}
			_, inUse := s.used[phys]
			if inUse && !bm.IsSet(i) {
				r.Problems = append(r.Problems, fmt.Sprintf("block %d in use but free in bitmap", phys))
			}
			if !inUse && bm.IsSet(i) {
				r.Problems = append(r.Problems, fmt.Sprintf("block %d lost (marked but unreferenced)", phys))
			}
		}
		for i := 0; i < fs.sb.InodesPerCG; i++ {
			ino := vfs.Ino(cg*fs.sb.InodesPerCG + i + 1)
			referenced := s.inoSeen[ino] > 0 || s.visited[ino]
			if referenced != ibm.IsSet(i) {
				r.Problems = append(r.Problems,
					fmt.Sprintf("inode %d bitmap bit %v, reachability %v", ino, ibm.IsSet(i), referenced))
			}
		}
		hdr.Release()
	}
}

func (s *ffsCheck) repair() error {
	fs, r := s.fs, s.r
	for cg := 0; cg < fs.sb.NCG; cg++ {
		hdr, err := fs.c.Read(fs.sb.cgStart(cg))
		if err != nil {
			return err
		}
		bm := fs.blockBitmap(hdr)
		ibm := fs.inodeBitmap(hdr)
		for i := 0; i < fs.sb.CGBlocks; i++ {
			phys := fs.sb.cgStart(cg) + int64(i)
			if phys >= fs.sb.NBlocks {
				break
			}
			_, inUse := s.used[phys]
			if inUse != bm.IsSet(i) {
				if inUse {
					bm.Set(i)
				} else {
					bm.Clear(i)
				}
				r.RepairsMade++
			}
		}
		for i := 0; i < fs.sb.InodesPerCG; i++ {
			ino := vfs.Ino(cg*fs.sb.InodesPerCG + i + 1)
			referenced := s.inoSeen[ino] > 0 || s.visited[ino]
			if referenced != ibm.IsSet(i) {
				if referenced {
					ibm.Set(i)
				} else {
					ibm.Clear(i)
				}
				r.RepairsMade++
			}
		}
		fs.c.MarkDirty(hdr)
		hdr.Release()
	}
	return fs.c.Sync()
}
