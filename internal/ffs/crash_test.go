package ffs

import (
	"fmt"
	"testing"

	"cffs/internal/vfs"
)

// Crash consistency for the baseline: conventional ordered synchronous
// writes must leave every completed create named and every completed
// delete gone, with fsck able to rebuild the (delayed-write) bitmaps.
func TestCrashAfterSyncCreates(t *testing.T) {
	fs := newFFS(t, Options{Mode: ModeSync})
	dev := fs.Device()

	if _, err := vfs.MkdirAll(fs, "/base"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/base/old%02d", i), make([]byte, 2048)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	base, err := vfs.Walk(fs, "/base")
	if err != nil {
		t.Fatal(err)
	}
	var created []string
	for i := 0; i < 200; i++ { // enough to grow the directory
		name := fmt.Sprintf("new%03d", i)
		ino, err := fs.Create(base, name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(ino, make([]byte, 512), 0); err != nil {
			t.Fatal(err)
		}
		created = append(created, name)
	}
	var deleted []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("old%02d", i)
		if err := fs.Unlink(base, name); err != nil {
			t.Fatal(err)
		}
		deleted = append(deleted, name)
	}
	// CRASH: abandon the dirty cache.

	if _, err := Check(dev, true); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		max := len(rep.Problems)
		if max > 5 {
			max = 5
		}
		t.Fatalf("image not repairable after crash: %v", rep.Problems[:max])
	}

	fs2, err := Mount(dev, Options{Mode: ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	base2, err := vfs.Walk(fs2, "/base")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range created {
		if _, err := fs2.Lookup(base2, name); err != nil {
			t.Errorf("created file %s lost in crash: %v", name, err)
		}
	}
	for _, name := range deleted {
		if _, err := fs2.Lookup(base2, name); err == nil {
			t.Errorf("deleted file %s resurrected by crash", name)
		}
	}
	if err := vfs.WriteFile(fs2, "/base/post-crash", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}
}
