package ffs

import (
	"fmt"
	"strings"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

func populateFFS(t *testing.T, fs *FS) {
	t.Helper()
	for i := 0; i < 8; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/f%d", i), make([]byte, 2048)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := vfs.MkdirAll(fs, "/d/e"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/d/e/leaf", make([]byte, 30*blockio.BlockSize)); err != nil {
		t.Fatal(err)
	}
	ino, err := vfs.Walk(fs, "/f0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(fs.Root(), "ln", ino); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFFSCheckClean(t *testing.T) {
	fs := newFFS(t, Options{Mode: ModeDelayed})
	populateFFS(t, fs)
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh image not clean: %v", rep.Problems)
	}
	if rep.Files != 9 || rep.Dirs != 3 {
		t.Fatalf("found %d files %d dirs, want 9/3", rep.Files, rep.Dirs)
	}
}

func TestFFSCheckDetectsAndRepairsBitmapDamage(t *testing.T) {
	fs := newFFS(t, Options{Mode: ModeDelayed})
	populateFFS(t, fs)
	hdrBlock := fs.sb.cgStart(0)
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	bm := layout.NewBitmap(raw[cgBmapOff:], fs.sb.CGBlocks)
	victim := bm.FindClear(500)
	bm.Set(victim)
	if err := fs.Device().WriteBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("bitmap damage not detected")
	}
	if _, err := Check(fs.Device(), true); err != nil {
		t.Fatal(err)
	}
	rep, err = Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("not clean after repair: %v", rep.Problems)
	}
}

func TestFFSCheckDetectsOrphanInode(t *testing.T) {
	fs := newFFS(t, Options{Mode: ModeDelayed})
	populateFFS(t, fs)
	// Mark a free inode live in both the table and the bitmap but
	// reference it from nowhere.
	hdrBlock := fs.sb.cgStart(0)
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	ibm := layout.NewBitmap(raw[cgBmapOff+(fs.sb.CGBlocks+7)/8:], fs.sb.InodesPerCG)
	idx := ibm.FindClear(0)
	ibm.Set(idx)
	if err := fs.Device().WriteBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	tblBlock := fs.sb.cgStart(0) + 1 + int64(idx/layout.InodesPerBlock)
	if err := fs.Device().ReadBlock(tblBlock, raw); err != nil {
		t.Fatal(err)
	}
	orphan := layout.Inode{Type: vfs.TypeReg, Nlink: 1}
	orphan.Encode(raw[(idx%layout.InodesPerBlock)*layout.InodeSize:])
	if err := fs.Device().WriteBlock(tblBlock, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "orphan") {
			found = true
		}
	}
	if !found {
		t.Fatalf("orphan not detected: %v", rep.Problems)
	}
}
