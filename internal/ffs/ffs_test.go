package ffs

import (
	"errors"
	"fmt"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/fstest"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

func newFFS(t *testing.T, opts Options) *FS {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(blockio.NewDevice(d, sched.CLook{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConformanceSync(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FileSystem {
		return newFFS(t, Options{Mode: ModeSync})
	})
}

func TestConformanceDelayed(t *testing.T) {
	fstest.Run(t, func(t *testing.T) vfs.FileSystem {
		return newFFS(t, Options{Mode: ModeDelayed})
	})
}

func TestMountExisting(t *testing.T) {
	fs := newFFS(t, Options{})
	if err := vfs.WriteFile(fs, "/keep", []byte("across mounts")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Device(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs2, "/keep")
	if err != nil || string(got) != "across mounts" {
		t.Fatalf("remounted read = %q, %v", got, err)
	}
}

func TestMountRejectsGarbage(t *testing.T) {
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(blockio.NewDevice(d, sched.CLook{}), Options{}); err == nil {
		t.Fatal("mounted an unformatted device")
	}
}

func TestMkfsValidation(t *testing.T) {
	d, _ := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	dev := blockio.NewDevice(d, sched.CLook{})
	bad := []Options{
		{CGBlocks: 10},
		{CGBlocks: 1 << 20},
		{InodesPerCG: 7},
		{CGBlocks: 64, InodesPerCG: 2048},
	}
	for i, o := range bad {
		if _, err := Mkfs(dev, o); err == nil {
			t.Errorf("case %d: bad options accepted: %+v", i, o)
		}
	}
}

// Sync-mode creates must pay two ordered writes (inode, then dirent);
// this is the baseline cost that embedded inodes halve.
func TestSyncCreateUsesTwoOrderedWrites(t *testing.T) {
	fs := newFFS(t, Options{Mode: ModeSync})
	fs.Device().Disk().ResetStats()
	if _, err := fs.Create(fs.Root(), "twowrite"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Device().Disk().Stats().Writes; got != 2 {
		t.Fatalf("sync create issued %d writes, want 2", got)
	}
}

func TestDelayedCreateUsesNoWrites(t *testing.T) {
	fs := newFFS(t, Options{Mode: ModeDelayed})
	fs.Device().Disk().ResetStats()
	if _, err := fs.Create(fs.Root(), "nowrite"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Device().Disk().Stats().Writes; got != 0 {
		t.Fatalf("delayed create issued %d writes, want 0", got)
	}
}

// Unrelated small files must not be physically adjacent: FFS provides
// locality (same cylinder group), not adjacency. This property is the
// paper's core observation about conventional file systems, so the
// baseline must exhibit it.
func TestSmallFilesAreNotAdjacent(t *testing.T) {
	fs := newFFS(t, Options{Mode: ModeDelayed})
	var inos []vfs.Ino
	for i := 0; i < 20; i++ {
		ino, err := fs.Create(fs.Root(), fmt.Sprintf("s%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(ino, make([]byte, 1024), 0); err != nil {
			t.Fatal(err)
		}
		inos = append(inos, ino)
	}
	adjacent := 0
	var prev int64 = -100
	for _, ino := range inos {
		in, err := fs.getLiveInode(ino)
		if err != nil {
			t.Fatal(err)
		}
		phys := int64(in.Direct[0])
		if phys == prev+1 {
			adjacent++
		}
		prev = phys
	}
	if adjacent > 5 {
		t.Fatalf("%d/20 consecutive files physically adjacent; FFS placement should scatter them", adjacent)
	}
}

// Blocks within one file should cluster (FFS allocates a file's next
// block right after its previous one when free).
func TestFileInternalBlocksCluster(t *testing.T) {
	fs := newFFS(t, Options{Mode: ModeDelayed})
	ino, err := fs.Create(fs.Root(), "big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, make([]byte, 8*blockio.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	in, err := fs.getLiveInode(ino)
	if err != nil {
		t.Fatal(err)
	}
	contiguous := 0
	for i := 1; i < 8; i++ {
		if in.Direct[i] == in.Direct[i-1]+1 {
			contiguous++
		}
	}
	if contiguous < 6 {
		t.Fatalf("only %d/7 of a file's blocks contiguous", contiguous)
	}
}

func TestFreeCountsConsistent(t *testing.T) {
	fs := newFFS(t, Options{Mode: ModeDelayed})
	before, err := fs.FreeBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/f", make([]byte, 10*blockio.BlockSize)); err != nil {
		t.Fatal(err)
	}
	mid, _ := fs.FreeBlocks()
	if mid >= before {
		t.Fatalf("free blocks did not drop: %d -> %d", before, mid)
	}
	if err := fs.Unlink(fs.Root(), "f"); err != nil {
		t.Fatal(err)
	}
	after, _ := fs.FreeBlocks()
	if after != before {
		t.Fatalf("free blocks leaked: %d -> %d", before, after)
	}
	fi, err := fs.FreeInodes()
	if err != nil {
		t.Fatal(err)
	}
	if fi <= 0 {
		t.Fatal("no free inodes reported")
	}
}

func TestOutOfInodes(t *testing.T) {
	// Tiny FS: one cylinder group's worth of inodes on a small region.
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(blockio.NewDevice(d, sched.CLook{}), Options{
		CGBlocks: 16384, InodesPerCG: 32, Mode: ModeDelayed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < 2000; i++ {
		if _, err := fs.Create(fs.Root(), fmt.Sprintf("n%04d", i)); err != nil {
			firstErr = err
			break
		}
	}
	if !errors.Is(firstErr, vfs.ErrNoSpace) {
		t.Fatalf("exhaustion error = %v, want ErrNoSpace", firstErr)
	}
}

func TestModeString(t *testing.T) {
	if ModeSync.String() != "sync" || ModeDelayed.String() != "delayed" {
		t.Fatal("Mode.String wrong")
	}
}

// TestOracle model-checks the baseline against the reference file
// system with a randomized operation stream, then fscks the image.
func TestOracle(t *testing.T) {
	for _, mode := range []Mode{ModeSync, ModeDelayed} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			fs := newFFS(t, Options{Mode: mode})
			fstest.RunOracle(t, fs, 2500, uint64(77+mode))
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}
			rep, err := Check(fs.Device(), false)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				max := len(rep.Problems)
				if max > 5 {
					max = 5
				}
				t.Fatalf("image inconsistent after oracle run: %v", rep.Problems[:max])
			}
		})
	}
}
