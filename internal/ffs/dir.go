package ffs

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Directory format: classic FFS variable-length entries packed into
// directory blocks. Each record is
//
//	ino(4) reclen(2) namelen(1) ftype(1) name... (padded to 4)
//
// and records tile the whole block: free space is carried as slack in
// the previous record's reclen (or as a record with ino 0 at the block
// head). Entries never span blocks.

const direntHdr = 8

func direntSize(namelen int) int { return (direntHdr + namelen + 3) &^ 3 }

// dirent is a decoded directory record.
type dirent struct {
	ino    uint32
	reclen int
	ftype  vfs.FileType
	name   string
	off    int // byte offset within the block
}

// used returns the space the live entry occupies (excluding slack).
func (e *dirent) used() int { return direntSize(len(e.name)) }

// decodeDirent reads the record at off.
func decodeDirent(p []byte, off int) (dirent, error) {
	if off+direntHdr > len(p) {
		return dirent{}, fmt.Errorf("ffs: dirent header at %d overruns block", off)
	}
	le := leBytes{p}
	e := dirent{
		ino:    le.u32(off),
		reclen: int(uint16(le.u32(off+4)) & 0xffff),
		ftype:  vfs.FileType(p[off+7]),
		off:    off,
	}
	nl := int(p[off+6])
	if e.reclen < direntSize(nl) || off+e.reclen > len(p) || e.reclen%4 != 0 {
		return dirent{}, fmt.Errorf("ffs: corrupt dirent at %d (reclen %d, namelen %d)", off, e.reclen, nl)
	}
	e.name = string(p[off+direntHdr : off+direntHdr+nl])
	return e, nil
}

// encodeDirent writes a record at off.
func encodeDirent(p []byte, off int, ino uint32, reclen int, ftype vfs.FileType, name string) {
	le := leBytes{p}
	le.pu32(off, ino)
	p[off+4] = byte(reclen)
	p[off+5] = byte(reclen >> 8)
	p[off+6] = byte(len(name))
	p[off+7] = byte(ftype)
	copy(p[off+direntHdr:], name)
	// Zero name padding for deterministic images.
	for i := off + direntHdr + len(name); i < off+direntSize(len(name)) && i < len(p); i++ {
		p[i] = 0
	}
}

// initDirBlock formats an empty directory block: one free record
// covering everything.
func initDirBlock(p []byte) {
	encodeDirent(p, 0, 0, blockio.BlockSize, vfs.TypeInvalid, "")
}

// initDirData writes the initial "." and ".." entries of a new
// directory into its first data block.
func (fs *FS) initDirData(in *layout.Inode, self, parent vfs.Ino) error {
	phys, err := fs.bmap(in, self, 0, true)
	if err != nil {
		return err
	}
	b, err := fs.c.Alloc(phys)
	if err != nil {
		return err
	}
	defer b.Release()
	initDirBlock(b.Data)
	dot := direntSize(1)
	encodeDirent(b.Data, 0, uint32(self), dot, vfs.TypeDir, ".")
	encodeDirent(b.Data, dot, uint32(parent), blockio.BlockSize-dot, vfs.TypeDir, "..")
	fs.c.MarkDirty(b)
	in.Size = blockio.BlockSize
	return nil
}

// forEachDirent walks every record (live and free) of a directory,
// calling fn with the block buffer and decoded entry. fn returning true
// stops the walk with the buffer pinned and returned to the caller.
func (fs *FS) forEachDirent(in *layout.Inode, dir vfs.Ino, fn func(b *cache.Buf, e dirent) bool) (*cache.Buf, error) {
	nblocks := in.Size / blockio.BlockSize
	for lb := int64(0); lb < nblocks; lb++ {
		phys, err := fs.bmap(in, dir, lb, false)
		if err != nil {
			return nil, err
		}
		if phys == 0 {
			return nil, fmt.Errorf("ffs: directory %d has a hole at block %d", dir, lb)
		}
		b, err := fs.c.Read(phys)
		if err != nil {
			return nil, err
		}
		for off := 0; off < blockio.BlockSize; {
			e, err := decodeDirent(b.Data, off)
			if err != nil {
				b.Release()
				return nil, err
			}
			if fn(b, e) {
				return b, nil
			}
			off += e.reclen
		}
		b.Release()
	}
	return nil, nil
}

// dirLookup finds a live entry by name; the returned buffer is pinned.
func (fs *FS) dirLookup(in *layout.Inode, dir vfs.Ino, name string) (*cache.Buf, dirent, error) {
	var found dirent
	b, err := fs.forEachDirent(in, dir, func(_ *cache.Buf, e dirent) bool {
		if e.ino != 0 && e.name == name {
			found = e
			return true
		}
		return false
	})
	if err != nil {
		return nil, dirent{}, err
	}
	if b == nil {
		return nil, dirent{}, fmt.Errorf("ffs: %q in dir %d: %w", name, dir, vfs.ErrNotExist)
	}
	return b, found, nil
}

// checkName validates an entry name (the same lattice as cffs: empty
// and dot names are invalid, then length, then byte content — "/" and
// NUL can never appear in a directory entry).
func checkName(name string) error {
	if len(name) == 0 || name == "." || name == ".." {
		return vfs.ErrInvalid
	}
	if len(name) > vfs.MaxNameLen {
		return fmt.Errorf("ffs: name %q: %w", name, vfs.ErrNameTooLong)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return fmt.Errorf("ffs: name %q: %w", name, vfs.ErrInvalid)
		}
	}
	return nil
}

// dirGrow appends one fresh directory block. Under synchronous metadata
// the block and the directory inode reaching it must be durable before
// an entry lands in the block, or a crash orphans the entry.
func (fs *FS) dirGrow(in *layout.Inode, dir vfs.Ino) (*cache.Buf, error) {
	lb := in.Size / blockio.BlockSize
	phys, err := fs.bmap(in, dir, lb, true)
	if err != nil {
		return nil, err
	}
	b, err := fs.c.Alloc(phys)
	if err != nil {
		return nil, err
	}
	initDirBlock(b.Data)
	in.Size += blockio.BlockSize
	in.Mtime = fs.clk.Now()
	if fs.opts.Mode == ModeSync {
		if err := fs.c.WriteSync(b); err != nil {
			b.Release()
			return nil, err
		}
		if err := fs.putInode(dir, in, true); err != nil {
			b.Release()
			return nil, err
		}
	} else {
		fs.c.MarkDirty(b)
	}
	return b, nil
}

// dirInsert writes a live entry into the free space at slotOff/slotLen
// of a pinned directory block.
func (fs *FS) dirInsert(b *cache.Buf, slotOff, slotLen int, ino vfs.Ino, ftype vfs.FileType, name string) error {
	e, err := decodeDirent(b.Data, slotOff)
	if err != nil {
		return err
	}
	if e.ino == 0 {
		encodeDirent(b.Data, slotOff, uint32(ino), slotLen, ftype, name)
	} else {
		// Split the slack off the live entry.
		usedLen := e.used()
		encodeDirent(b.Data, slotOff, e.ino, usedLen, e.ftype, e.name)
		encodeDirent(b.Data, slotOff+usedLen, uint32(ino), slotLen-usedLen, ftype, name)
	}
	return nil
}

// dirPrepareAdd runs the existence check and the free-slot search as a
// single scan, so a create pays one directory traversal instead of two.
// When name is already present the returned buffer is pinned at its
// block and existing describes the entry; otherwise the buffer is
// pinned at a block with room (grown if need be) and slotOff/slotLen
// locate the space for dirInsert.
func (fs *FS) dirPrepareAdd(in *layout.Inode, dir vfs.Ino, name string) (b *cache.Buf, slotOff, slotLen int, existing *dirent, err error) {
	need := direntSize(len(name))
	var freeBlock int64
	var freeOff, freeLen int
	haveFree := false
	var found dirent
	b, err = fs.forEachDirent(in, dir, func(fb *cache.Buf, e dirent) bool {
		if e.ino != 0 && e.name == name {
			found = e
			return true
		}
		if !haveFree {
			switch {
			case e.ino == 0 && e.reclen >= need:
				freeBlock, freeOff, freeLen = fb.Block, e.off, e.reclen
				haveFree = true
			case e.ino != 0 && e.reclen-e.used() >= need:
				freeBlock, freeOff, freeLen = fb.Block, e.off, e.reclen
				haveFree = true
			}
		}
		return false
	})
	if err != nil {
		return nil, 0, 0, nil, err
	}
	if b != nil {
		return b, 0, 0, &found, nil
	}
	if haveFree {
		// The block was scanned moments ago; this re-read is a cache hit.
		fb, err := fs.c.Read(freeBlock)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		return fb, freeOff, freeLen, nil, nil
	}
	if b, err = fs.dirGrow(in, dir); err != nil {
		return nil, 0, 0, nil, err
	}
	return b, 0, blockio.BlockSize, nil, nil
}

// dirAdd inserts a live entry, growing the directory by one block when
// no slot fits. The caller has already ruled out a duplicate name (or,
// as with rename's ".." rewrite, knows there is none). The caller
// supplies the parent inode and writes it back. The modified block is
// returned pinned for the caller to order its write (sync or delayed).
func (fs *FS) dirAdd(in *layout.Inode, dir vfs.Ino, name string, ino vfs.Ino, ftype vfs.FileType) (*cache.Buf, error) {
	if len(name) == 0 || len(name) > vfs.MaxNameLen {
		return nil, fmt.Errorf("ffs: name %q: %w", name, vfs.ErrNameTooLong)
	}
	need := direntSize(len(name))
	var slotOff, slotLen int
	b, err := fs.forEachDirent(in, dir, func(_ *cache.Buf, e dirent) bool {
		if e.ino == 0 && e.reclen >= need {
			slotOff, slotLen = e.off, e.reclen
			return true
		}
		if e.ino != 0 && e.reclen-e.used() >= need {
			slotOff, slotLen = e.off, e.reclen
			return true
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	if b == nil {
		if b, err = fs.dirGrow(in, dir); err != nil {
			return nil, err
		}
		slotOff, slotLen = 0, blockio.BlockSize
	}
	if err := fs.dirInsert(b, slotOff, slotLen, ino, ftype, name); err != nil {
		b.Release()
		return nil, err
	}
	in.Mtime = fs.clk.Now()
	return b, nil
}

// dirRemove deletes a live entry by name, merging its space into the
// preceding record (or marking it free at block head). The modified
// block is returned pinned.
func (fs *FS) dirRemove(in *layout.Inode, dir vfs.Ino, name string) (*cache.Buf, dirent, error) {
	var prev, target dirent
	var havePrev bool
	b, err := fs.forEachDirent(in, dir, func(_ *cache.Buf, e dirent) bool {
		if e.ino != 0 && e.name == name {
			target = e
			return true
		}
		prev, havePrev = e, true
		return false
	})
	if err != nil {
		return nil, dirent{}, err
	}
	if b == nil {
		return nil, dirent{}, fmt.Errorf("ffs: %q in dir %d: %w", name, dir, vfs.ErrNotExist)
	}
	if target.off > 0 && havePrev && prev.off+prev.reclen == target.off {
		// Merge into predecessor.
		encodeDirent(b.Data, prev.off, prev.ino, prev.reclen+target.reclen, prev.ftype, prev.name)
	} else {
		encodeDirent(b.Data, target.off, 0, target.reclen, vfs.TypeInvalid, "")
	}
	in.Mtime = fs.clk.Now()
	return b, target, nil
}

// dirIsEmpty reports whether the directory holds only "." and "..".
func (fs *FS) dirIsEmpty(in *layout.Inode, dir vfs.Ino) (bool, error) {
	empty := true
	b, err := fs.forEachDirent(in, dir, func(_ *cache.Buf, e dirent) bool {
		if e.ino != 0 && e.name != "." && e.name != ".." {
			empty = false
			return true
		}
		return false
	})
	if b != nil {
		b.Release()
	}
	return empty, err
}

// dirList collects the live entries, excluding "." and "..".
func (fs *FS) dirList(in *layout.Inode, dir vfs.Ino) ([]vfs.DirEntry, error) {
	var ents []vfs.DirEntry
	_, err := fs.forEachDirent(in, dir, func(_ *cache.Buf, e dirent) bool {
		if e.ino != 0 && e.name != "." && e.name != ".." {
			ents = append(ents, vfs.DirEntry{Name: e.name, Ino: vfs.Ino(e.ino), Type: e.ftype})
		}
		return false
	})
	return ents, err
}
