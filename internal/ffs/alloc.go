package ffs

import (
	"fmt"

	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Allocation. FFS policy [McKusick84]: place an inode in the cylinder
// group of its directory (directories themselves go to an underused
// group), and place data blocks in the cylinder group of their inode.
// Within a group, the first block of a file starts from a position
// hashed on the inode number — related files share a *region* but are
// not adjacent, which is exactly the locality-without-adjacency the
// paper identifies as the conventional approach's limit. Later blocks of
// the same file prefer physical contiguity (block clustering
// [McVoy91]).

// blockBitmap views a cylinder-group header buffer's block bitmap.
func (fs *FS) blockBitmap(hdr *cache.Buf) layout.Bitmap {
	return layout.NewBitmap(hdr.Data[cgBmapOff:], fs.sb.CGBlocks)
}

// inodeBitmap views a cylinder-group header buffer's inode bitmap.
func (fs *FS) inodeBitmap(hdr *cache.Buf) layout.Bitmap {
	off := cgBmapOff + (fs.sb.CGBlocks+7)/8
	return layout.NewBitmap(hdr.Data[off:], fs.sb.InodesPerCG)
}

// cgOf returns the cylinder group containing a physical block.
func (fs *FS) cgOf(phys int64) int {
	return int((phys - 1) / int64(fs.sb.CGBlocks))
}

// cgOfIno returns the cylinder group holding an inode.
func (fs *FS) cgOfIno(ino vfs.Ino) int {
	return int(ino-1) / fs.sb.InodesPerCG
}

// allocInode claims a free inode, preferring cylinder group prefCG.
func (fs *FS) allocInode(prefCG int) (vfs.Ino, error) {
	for k := 0; k < fs.sb.NCG; k++ {
		cg := (prefCG + k) % fs.sb.NCG
		hdr, err := fs.c.Read(fs.sb.cgStart(cg))
		if err != nil {
			return 0, err
		}
		bm := fs.inodeBitmap(hdr)
		idx := bm.FindClear(0)
		if idx < 0 {
			hdr.Release()
			continue
		}
		bm.Set(idx)
		fs.c.MarkDirty(hdr)
		hdr.Release()
		return vfs.Ino(cg*fs.sb.InodesPerCG + idx + 1), nil
	}
	return 0, fmt.Errorf("ffs: %w: out of inodes", vfs.ErrNoSpace)
}

// freeInode releases an inode number (bitmap update is delayed-write in
// both modes, as in real FFS).
func (fs *FS) freeInode(ino vfs.Ino) error {
	cg := fs.cgOfIno(ino)
	hdr, err := fs.c.Read(fs.sb.cgStart(cg))
	if err != nil {
		return err
	}
	defer hdr.Release()
	bm := fs.inodeBitmap(hdr)
	idx := int(ino-1) % fs.sb.InodesPerCG
	if !bm.IsSet(idx) {
		return fmt.Errorf("ffs: double free of inode %d", ino)
	}
	bm.Clear(idx)
	fs.c.MarkDirty(hdr)
	return nil
}

// allocBlock claims a data block. pref is the preferred physical block
// (for file-internal contiguity); pass pref < 0 to start from a position
// hashed on the inode number, which scatters unrelated files across the
// group. The preferred cylinder group is tried first, then the rest.
func (fs *FS) allocBlock(prefCG int, pref int64, ino vfs.Ino) (int64, error) {
	for k := 0; k < fs.sb.NCG; k++ {
		cg := (prefCG + k) % fs.sb.NCG
		start := fs.sb.cgStart(cg)
		hdr, err := fs.c.Read(start)
		if err != nil {
			return 0, err
		}
		bm := fs.blockBitmap(hdr)
		from := 0
		if pref >= 0 && fs.cgOf(pref) == cg {
			from = int(pref - start)
		} else {
			// Hashed start within the data area: unrelated files land in
			// different regions of the group.
			dataOff := int(fs.sb.dataStart(cg) - start)
			span := fs.sb.CGBlocks - dataOff
			from = dataOff + int(mix64(uint64(ino))%uint64(span))
		}
		idx := bm.FindClear(from)
		if idx < 0 {
			hdr.Release()
			continue
		}
		bm.Set(idx)
		fs.c.MarkDirty(hdr)
		hdr.Release()
		phys := start + int64(idx)
		// The found bit can be a metadata block only if the bitmap was
		// corrupted; guard against handing out block 0 or headers.
		if phys < fs.sb.dataStart(cg) {
			return 0, fmt.Errorf("ffs: allocator chose metadata block %d", phys)
		}
		return phys, nil
	}
	return 0, fmt.Errorf("ffs: %w", vfs.ErrNoSpace)
}

// freeBlock releases a data block and drops any cached copy so freed
// data is never written back.
func (fs *FS) freeBlock(phys int64) error {
	cg := fs.cgOf(phys)
	if cg < 0 || cg >= fs.sb.NCG || phys < fs.sb.dataStart(cg) {
		return fmt.Errorf("ffs: free of metadata block %d", phys)
	}
	hdr, err := fs.c.Read(fs.sb.cgStart(cg))
	if err != nil {
		return err
	}
	defer hdr.Release()
	bm := fs.blockBitmap(hdr)
	idx := int(phys - fs.sb.cgStart(cg))
	if !bm.IsSet(idx) {
		return fmt.Errorf("ffs: double free of block %d", phys)
	}
	bm.Clear(idx)
	fs.c.MarkDirty(hdr)
	fs.c.Invalidate(phys)
	return nil
}

// mix64 is the splitmix64 finalizer: a strong bit mixer so that
// consecutive inode numbers hash to unrelated placement starts.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pickDirCG chooses a cylinder group for a new directory: a simple
// rotor, approximating FFS's search for an underused group.
func (fs *FS) pickDirCG() int {
	cg := fs.dirRotor
	fs.dirRotor = (fs.dirRotor + 1) % fs.sb.NCG
	return cg
}

// FreeBlocks counts free data blocks (for tests and df-style tools).
func (fs *FS) FreeBlocks() (int64, error) {
	var total int64
	for cg := 0; cg < fs.sb.NCG; cg++ {
		hdr, err := fs.c.Read(fs.sb.cgStart(cg))
		if err != nil {
			return 0, err
		}
		total += int64(fs.blockBitmap(hdr).CountClear())
		hdr.Release()
	}
	return total, nil
}

// FreeInodes counts free inodes.
func (fs *FS) FreeInodes() (int64, error) {
	var total int64
	for cg := 0; cg < fs.sb.NCG; cg++ {
		hdr, err := fs.c.Read(fs.sb.cgStart(cg))
		if err != nil {
			return 0, err
		}
		total += int64(fs.inodeBitmap(hdr).CountClear())
		hdr.Release()
	}
	return total, nil
}
