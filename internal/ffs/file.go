package ffs

import (
	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/obs"
	"cffs/internal/vfs"
)

// File data I/O. Reads go through the buffer cache one block at a time
// (the paper's base file system does not prefetch); writes are delayed
// and reach the disk through the clustered write-back path.

// ReadAt implements vfs.FileSystem.
func (fs *FS) ReadAt(ino vfs.Ino, p []byte, off int64) (int, error) {
	defer fs.trk.Begin(obs.OpReadAt)()
	in, err := fs.getLiveInode(ino)
	if err != nil {
		return 0, err
	}
	if in.Type == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= in.Size {
		return 0, nil
	}
	if max := in.Size - off; int64(len(p)) > max {
		p = p[:max]
	}
	read := 0
	for read < len(p) {
		lb := (off + int64(read)) / blockio.BlockSize
		bo := int((off + int64(read)) % blockio.BlockSize)
		n := blockio.BlockSize - bo
		if n > len(p)-read {
			n = len(p) - read
		}
		phys, err := fs.bmap(&in, ino, lb, false)
		if err != nil {
			return read, err
		}
		if phys == 0 {
			// Hole: reads as zeros.
			for i := 0; i < n; i++ {
				p[read+i] = 0
			}
		} else {
			b, err := fs.c.Read(phys)
			if err != nil {
				return read, err
			}
			fs.c.SetID(b, cache.ID{Ino: uint64(ino), LBlock: lb})
			copy(p[read:read+n], b.Data[bo:])
			b.Release()
		}
		read += n
	}
	return read, nil
}

// WriteAt implements vfs.FileSystem.
func (fs *FS) WriteAt(ino vfs.Ino, p []byte, off int64) (int, error) {
	defer fs.trk.Begin(obs.OpWriteAt)()
	fs.wb.Admit()
	in, err := fs.getLiveInode(ino)
	if err != nil {
		return 0, err
	}
	if in.Type == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		lb := pos / blockio.BlockSize
		bo := int(pos % blockio.BlockSize)
		n := blockio.BlockSize - bo
		if n > len(p)-written {
			n = len(p) - written
		}
		prior, err := fs.bmap(&in, ino, lb, false)
		if err != nil {
			return written, err
		}
		phys, err := fs.bmap(&in, ino, lb, true)
		if err != nil {
			return written, err
		}
		var b *cache.Buf
		fullBlock := bo == 0 && n == blockio.BlockSize
		if fullBlock || prior == 0 {
			// Full overwrite, or a block with no prior contents (fresh
			// allocation / hole fill): never read the disk.
			b, err = fs.c.Alloc(phys)
			if err == nil && !fullBlock {
				for i := range b.Data {
					b.Data[i] = 0
				}
			}
		} else {
			b, err = fs.c.Read(phys)
		}
		if err != nil {
			return written, err
		}
		copy(b.Data[bo:bo+n], p[written:written+n])
		fs.c.SetID(b, cache.ID{Ino: uint64(ino), LBlock: lb})
		fs.c.MarkDirty(b)
		b.Release()
		written += n
		if pos+int64(n) > in.Size {
			in.Size = pos + int64(n)
		}
	}
	in.Mtime = fs.clk.Now()
	return written, fs.putInode(ino, &in, false)
}
