package ffs

import (
	"fmt"

	"cffs/internal/layout"
	"cffs/internal/obs"
	"cffs/internal/vfs"
)

// Namespace operations. In ModeSync these follow the conventional
// synchronous-write sequencing [Ganger94]: an inode is initialized on
// disk before the directory entry naming it (create), and a directory
// entry is removed on disk before its inode is freed (delete). Each such
// arrow is one synchronous write — the cost embedded inodes remove.

// Lookup implements vfs.FileSystem.
func (fs *FS) Lookup(dir vfs.Ino, name string) (vfs.Ino, error) {
	defer fs.trk.Begin(obs.OpLookup)()
	din, err := fs.getLiveInode(dir)
	if err != nil {
		return 0, err
	}
	if din.Type != vfs.TypeDir {
		return 0, fmt.Errorf("ffs: inode %d: %w", dir, vfs.ErrNotDir)
	}
	b, e, err := fs.dirLookup(&din, dir, name)
	if err != nil {
		return 0, err
	}
	b.Release()
	return vfs.Ino(e.ino), nil
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(dir vfs.Ino, name string) (vfs.Ino, error) {
	defer fs.trk.Begin(obs.OpCreate)()
	fs.wb.Admit()
	if err := checkName(name); err != nil {
		return 0, err
	}
	din, err := fs.getLiveInode(dir)
	if err != nil {
		return 0, err
	}
	if din.Type != vfs.TypeDir {
		return 0, vfs.ErrNotDir
	}
	// One scan: existence check and free-slot search together. The
	// buffer stays pinned (slots cannot move) across the inode writes.
	b, slotOff, slotLen, existing, err := fs.dirPrepareAdd(&din, dir, name)
	if err != nil {
		return 0, err
	}
	if existing != nil {
		b.Release()
		return 0, fmt.Errorf("ffs: create %q: %w", name, vfs.ErrExist)
	}
	ino, err := fs.allocInode(fs.cgOfIno(dir))
	if err != nil {
		b.Release()
		return 0, err
	}
	in := layout.Inode{Type: vfs.TypeReg, Nlink: 1, Mtime: fs.clk.Now()}
	// Ordering point 1: the initialized inode reaches disk before the
	// name that references it.
	if err := fs.putInode(ino, &in, true); err != nil {
		b.Release()
		return 0, err
	}
	if err := fs.dirInsert(b, slotOff, slotLen, ino, vfs.TypeReg, name); err != nil {
		b.Release()
		return 0, err
	}
	din.Mtime = fs.clk.Now()
	// Ordering point 2: the directory entry.
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return 0, err
	}
	b.Release()
	return ino, fs.putInode(dir, &din, false)
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(dir vfs.Ino, name string) (vfs.Ino, error) {
	defer fs.trk.Begin(obs.OpMkdir)()
	fs.wb.Admit()
	if err := checkName(name); err != nil {
		return 0, err
	}
	din, err := fs.getLiveInode(dir)
	if err != nil {
		return 0, err
	}
	if din.Type != vfs.TypeDir {
		return 0, vfs.ErrNotDir
	}
	b, slotOff, slotLen, existing, err := fs.dirPrepareAdd(&din, dir, name)
	if err != nil {
		return 0, err
	}
	if existing != nil {
		b.Release()
		return 0, fmt.Errorf("ffs: mkdir %q: %w", name, vfs.ErrExist)
	}
	ino, err := fs.allocInode(fs.pickDirCG())
	if err != nil {
		b.Release()
		return 0, err
	}
	in := layout.Inode{Type: vfs.TypeDir, Nlink: 2, Mtime: fs.clk.Now()}
	if err := fs.initDirData(&in, ino, dir); err != nil {
		b.Release()
		return 0, err
	}
	// Child block, then child inode, then parent entry — the mkdir
	// ordering chain.
	if fs.opts.Mode == ModeSync {
		phys, err := fs.bmap(&in, ino, 0, false)
		if err != nil {
			b.Release()
			return 0, err
		}
		cb, err := fs.c.Read(phys)
		if err != nil {
			b.Release()
			return 0, err
		}
		if err := fs.c.WriteSync(cb); err != nil {
			cb.Release()
			b.Release()
			return 0, err
		}
		cb.Release()
	}
	if err := fs.putInode(ino, &in, true); err != nil {
		b.Release()
		return 0, err
	}
	if err := fs.dirInsert(b, slotOff, slotLen, ino, vfs.TypeDir, name); err != nil {
		b.Release()
		return 0, err
	}
	din.Mtime = fs.clk.Now()
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return 0, err
	}
	b.Release()
	din.Nlink++ // ".." of the child
	return ino, fs.putInode(dir, &din, false)
}

// Link implements vfs.FileSystem.
func (fs *FS) Link(dir vfs.Ino, name string, target vfs.Ino) error {
	defer fs.trk.Begin(obs.OpLink)()
	fs.wb.Admit()
	if err := checkName(name); err != nil {
		return err
	}
	din, err := fs.getLiveInode(dir)
	if err != nil {
		return err
	}
	if din.Type != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	tin, err := fs.getLiveInode(target)
	if err != nil {
		return err
	}
	if tin.Type == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	b, slotOff, slotLen, existing, err := fs.dirPrepareAdd(&din, dir, name)
	if err != nil {
		return err
	}
	if existing != nil {
		b.Release()
		return fmt.Errorf("ffs: link %q: %w", name, vfs.ErrExist)
	}
	tin.Nlink++
	// The incremented link count must be stable before the new name.
	if err := fs.putInode(target, &tin, true); err != nil {
		b.Release()
		return err
	}
	if err := fs.dirInsert(b, slotOff, slotLen, target, vfs.TypeReg, name); err != nil {
		b.Release()
		return err
	}
	din.Mtime = fs.clk.Now()
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return err
	}
	b.Release()
	return fs.putInode(dir, &din, false)
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(dir vfs.Ino, name string) error {
	defer fs.trk.Begin(obs.OpUnlink)()
	fs.wb.Admit()
	din, err := fs.getLiveInode(dir)
	if err != nil {
		return err
	}
	if din.Type != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if name == "." || name == ".." {
		return vfs.ErrInvalid
	}
	b, e, err := fs.dirLookup(&din, dir, name)
	if err != nil {
		return err
	}
	if e.ftype == vfs.TypeDir {
		b.Release()
		return vfs.ErrIsDir
	}
	b.Release()
	b, _, err = fs.dirRemove(&din, dir, name)
	if err != nil {
		return err
	}
	// Ordering point 1: the name disappears before the inode dies.
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return err
	}
	b.Release()
	if err := fs.putInode(dir, &din, false); err != nil {
		return err
	}

	ino := vfs.Ino(e.ino)
	tin, err := fs.getLiveInode(ino)
	if err != nil {
		return err
	}
	tin.Nlink--
	if tin.Nlink > 0 {
		return fs.putInode(ino, &tin, true)
	}
	if err := fs.truncate(&tin, ino, 0); err != nil {
		return err
	}
	// Ordering point 2: the cleared inode.
	tin = layout.Inode{}
	if err := fs.putInode(ino, &tin, true); err != nil {
		return err
	}
	return fs.freeInode(ino)
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(dir vfs.Ino, name string) error {
	defer fs.trk.Begin(obs.OpRmdir)()
	fs.wb.Admit()
	din, err := fs.getLiveInode(dir)
	if err != nil {
		return err
	}
	if din.Type != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if name == "." || name == ".." {
		return vfs.ErrInvalid
	}
	b, e, err := fs.dirLookup(&din, dir, name)
	if err != nil {
		return err
	}
	b.Release()
	if e.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	ino := vfs.Ino(e.ino)
	cin, err := fs.getLiveInode(ino)
	if err != nil {
		return err
	}
	empty, err := fs.dirIsEmpty(&cin, ino)
	if err != nil {
		return err
	}
	if !empty {
		return vfs.ErrNotEmpty
	}
	b, _, err = fs.dirRemove(&din, dir, name)
	if err != nil {
		return err
	}
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return err
	}
	b.Release()
	din.Nlink--
	if err := fs.putInode(dir, &din, false); err != nil {
		return err
	}
	if err := fs.truncate(&cin, ino, 0); err != nil {
		return err
	}
	cin = layout.Inode{}
	if err := fs.putInode(ino, &cin, true); err != nil {
		return err
	}
	return fs.freeInode(ino)
}

// Rename implements vfs.FileSystem. Only regular files can be replaced.
func (fs *FS) Rename(sdir vfs.Ino, sname string, ddir vfs.Ino, dname string) error {
	defer fs.trk.Begin(obs.OpRename)()
	fs.wb.Admit()
	if sname == "." || sname == ".." {
		return vfs.ErrInvalid
	}
	if err := checkName(dname); err != nil {
		return err
	}
	sin, err := fs.getLiveInode(sdir)
	if err != nil {
		return err
	}
	b, se, err := fs.dirLookup(&sin, sdir, sname)
	if err != nil {
		return err
	}
	b.Release()
	if sdir == ddir && sname == dname {
		return nil // self-rename is a no-op
	}
	din, err := fs.getLiveInode(ddir)
	if err != nil {
		return err
	}
	// One scan resolves the destination: either the name exists (handled
	// below) or the scan already found the free slot for the new entry.
	nb, slotOff, slotLen, existing, err := fs.dirPrepareAdd(&din, ddir, dname)
	if err != nil {
		return err
	}
	if existing != nil {
		nb.Release()
		if existing.ftype == vfs.TypeDir {
			return vfs.ErrIsDir
		}
		if err := fs.Unlink(ddir, dname); err != nil {
			return err
		}
		din, err = fs.getLiveInode(ddir)
		if err != nil {
			return err
		}
		if nb, slotOff, slotLen, existing, err = fs.dirPrepareAdd(&din, ddir, dname); err != nil {
			return err
		}
		if existing != nil {
			nb.Release()
			return fmt.Errorf("ffs: rename %q: %w", dname, vfs.ErrExist)
		}
	}
	// Add the new name first (a moment with two names is safe; a moment
	// with zero is not).
	if err := fs.dirInsert(nb, slotOff, slotLen, vfs.Ino(se.ino), se.ftype, dname); err != nil {
		nb.Release()
		return err
	}
	din.Mtime = fs.clk.Now()
	if err := fs.syncMeta(nb); err != nil {
		nb.Release()
		return err
	}
	nb.Release()
	if err := fs.putInode(ddir, &din, false); err != nil {
		return err
	}
	if sdir == ddir {
		sin, err = fs.getLiveInode(sdir)
		if err != nil {
			return err
		}
	}
	rb, _, err := fs.dirRemove(&sin, sdir, sname)
	if err != nil {
		return err
	}
	if err := fs.syncMeta(rb); err != nil {
		rb.Release()
		return err
	}
	rb.Release()
	if err := fs.putInode(sdir, &sin, false); err != nil {
		return err
	}
	// Directories changing parents must repoint "..".
	if se.ftype == vfs.TypeDir && sdir != ddir {
		cin, err := fs.getLiveInode(vfs.Ino(se.ino))
		if err != nil {
			return err
		}
		cb, _, err := fs.dirRemove(&cin, vfs.Ino(se.ino), "..")
		if err != nil {
			return err
		}
		cb.Release()
		cb, err = fs.dirAdd(&cin, vfs.Ino(se.ino), "..", ddir, vfs.TypeDir)
		if err != nil {
			return err
		}
		fs.c.MarkDirty(cb)
		cb.Release()
		if err := fs.putInode(vfs.Ino(se.ino), &cin, false); err != nil {
			return err
		}
		sin.Nlink--
		if err := fs.putInode(sdir, &sin, false); err != nil {
			return err
		}
		din, err = fs.getLiveInode(ddir)
		if err != nil {
			return err
		}
		din.Nlink++
		if err := fs.putInode(ddir, &din, false); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(dir vfs.Ino) ([]vfs.DirEntry, error) {
	defer fs.trk.Begin(obs.OpReadDir)()
	din, err := fs.getLiveInode(dir)
	if err != nil {
		return nil, err
	}
	if din.Type != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	return fs.dirList(&din, dir)
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(ino vfs.Ino) (vfs.Stat, error) {
	defer fs.trk.Begin(obs.OpStat)()
	in, err := fs.getLiveInode(ino)
	if err != nil {
		return vfs.Stat{}, err
	}
	return vfs.Stat{
		Ino:    ino,
		Type:   in.Type,
		Nlink:  uint32(in.Nlink),
		Size:   in.Size,
		Blocks: int64(in.NBlocks),
		Mtime:  in.Mtime,
	}, nil
}

// Truncate implements vfs.FileSystem.
func (fs *FS) Truncate(ino vfs.Ino, size int64) error {
	defer fs.trk.Begin(obs.OpTruncate)()
	fs.wb.Admit()
	in, err := fs.getLiveInode(ino)
	if err != nil {
		return err
	}
	if in.Type == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if err := fs.truncate(&in, ino, size); err != nil {
		return err
	}
	return fs.putInode(ino, &in, false)
}
