package ffs

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// inodeLoc returns the inode-table block and slot holding ino.
func (fs *FS) inodeLoc(ino vfs.Ino) (int64, int, error) {
	if ino < 1 || int64(ino) > int64(fs.sb.NCG)*int64(fs.sb.InodesPerCG) {
		return 0, 0, fmt.Errorf("ffs: inode %d: %w", ino, vfs.ErrInvalid)
	}
	cg := fs.cgOfIno(ino)
	idx := int(ino-1) % fs.sb.InodesPerCG
	block := fs.sb.cgStart(cg) + 1 + int64(idx/layout.InodesPerBlock)
	return block, idx % layout.InodesPerBlock, nil
}

// getInode reads an inode from its table block.
func (fs *FS) getInode(ino vfs.Ino) (layout.Inode, error) {
	var in layout.Inode
	block, slot, err := fs.inodeLoc(ino)
	if err != nil {
		return in, err
	}
	b, err := fs.c.Read(block)
	if err != nil {
		return in, err
	}
	defer b.Release()
	in.Decode(b.Data[slot*layout.InodeSize:])
	return in, nil
}

// getLiveInode is getInode plus an existence check.
func (fs *FS) getLiveInode(ino vfs.Ino) (layout.Inode, error) {
	in, err := fs.getInode(ino)
	if err != nil {
		return in, err
	}
	if !in.Alive() {
		return in, fmt.Errorf("ffs: inode %d: %w", ino, vfs.ErrNotExist)
	}
	return in, nil
}

// putInode writes an inode back to its table block; sync forces the
// ordered write in ModeSync (creates, deletes, link-count changes).
func (fs *FS) putInode(ino vfs.Ino, in *layout.Inode, sync bool) error {
	block, slot, err := fs.inodeLoc(ino)
	if err != nil {
		return err
	}
	b, err := fs.c.Read(block)
	if err != nil {
		return err
	}
	defer b.Release()
	in.Encode(b.Data[slot*layout.InodeSize:])
	if sync {
		return fs.syncMeta(b)
	}
	fs.c.MarkDirty(b)
	return nil
}

// bmap maps a file block index to a physical block, allocating the
// block (and any needed indirect blocks) when alloc is set. It returns
// 0 for a hole when alloc is false.
func (fs *FS) bmap(in *layout.Inode, ino vfs.Ino, lb int64, alloc bool) (int64, error) {
	if lb < 0 || lb >= layout.MaxFileBlocks {
		return 0, fmt.Errorf("ffs: block %d of inode %d: %w", lb, ino, vfs.ErrInvalid)
	}
	cg := fs.cgOfIno(ino)

	// Preferred placement: right after the file's previous block.
	pref := func(prev uint32) int64 {
		if prev == 0 {
			return -1
		}
		return int64(prev) + 1
	}

	if lb < layout.NDirect {
		if in.Direct[lb] != 0 {
			return int64(in.Direct[lb]), nil
		}
		if !alloc {
			return 0, nil
		}
		var prev uint32
		if lb > 0 {
			prev = in.Direct[lb-1]
		}
		phys, err := fs.allocBlock(cg, pref(prev), ino)
		if err != nil {
			return 0, err
		}
		in.Direct[lb] = uint32(phys)
		in.NBlocks++
		return phys, nil
	}

	lb -= layout.NDirect
	if lb < layout.PtrsPerBlock {
		return fs.indirBlock(&in.Indir, in, ino, cg, lb, alloc)
	}

	lb -= layout.PtrsPerBlock
	// Double indirect: first level picks the indirect block.
	if in.DIndir == 0 {
		if !alloc {
			return 0, nil
		}
		phys, err := fs.allocBlock(cg, -1, ino)
		if err != nil {
			return 0, err
		}
		if err := fs.zeroBlock(phys); err != nil {
			return 0, err
		}
		in.DIndir = uint32(phys)
		in.NBlocks++
	}
	db, err := fs.c.Read(int64(in.DIndir))
	if err != nil {
		return 0, err
	}
	defer db.Release()
	slot := int(lb / layout.PtrsPerBlock)
	le := leBytes{db.Data}
	ptr := le.u32(slot * 4)
	if ptr == 0 {
		if !alloc {
			return 0, nil
		}
		phys, err := fs.allocBlock(cg, -1, ino)
		if err != nil {
			return 0, err
		}
		if err := fs.zeroBlock(phys); err != nil {
			return 0, err
		}
		le.pu32(slot*4, uint32(phys))
		fs.c.MarkDirty(db)
		in.NBlocks++
		ptr = uint32(phys)
	}
	return fs.indirBlock(&ptr, in, ino, cg, lb%layout.PtrsPerBlock, alloc)
}

// indirBlock resolves one level of indirection through *ptrSlot.
func (fs *FS) indirBlock(ptrSlot *uint32, in *layout.Inode, ino vfs.Ino, cg int, idx int64, alloc bool) (int64, error) {
	if *ptrSlot == 0 {
		if !alloc {
			return 0, nil
		}
		phys, err := fs.allocBlock(cg, -1, ino)
		if err != nil {
			return 0, err
		}
		if err := fs.zeroBlock(phys); err != nil {
			return 0, err
		}
		*ptrSlot = uint32(phys)
		in.NBlocks++
	}
	ib, err := fs.c.Read(int64(*ptrSlot))
	if err != nil {
		return 0, err
	}
	defer ib.Release()
	le := leBytes{ib.Data}
	ptr := le.u32(int(idx) * 4)
	if ptr != 0 {
		return int64(ptr), nil
	}
	if !alloc {
		return 0, nil
	}
	var prev uint32
	if idx > 0 {
		prev = le.u32(int(idx-1) * 4)
	}
	prefPhys := int64(-1)
	if prev != 0 {
		prefPhys = int64(prev) + 1
	}
	phys, err := fs.allocBlock(cg, prefPhys, ino)
	if err != nil {
		return 0, err
	}
	le.pu32(int(idx)*4, uint32(phys))
	fs.c.MarkDirty(ib)
	in.NBlocks++
	return phys, nil
}

// zeroBlock installs an all-zero cached block for a fresh metadata block
// (indirect blocks must read back as zeros without touching the disk).
func (fs *FS) zeroBlock(phys int64) error {
	b, err := fs.c.Alloc(phys)
	if err != nil {
		return err
	}
	for i := range b.Data {
		b.Data[i] = 0
	}
	fs.c.MarkDirty(b)
	b.Release()
	return nil
}

// truncate frees all blocks at or beyond newSize and updates the inode
// (caller writes it back). Shrinking within a block zeroes the tail so
// later extension reads zeros, as POSIX requires.
func (fs *FS) truncate(in *layout.Inode, ino vfs.Ino, newSize int64) error {
	if newSize < 0 {
		return vfs.ErrInvalid
	}
	oldBlocks := (in.Size + blockio.BlockSize - 1) / blockio.BlockSize
	keep := (newSize + blockio.BlockSize - 1) / blockio.BlockSize

	for lb := keep; lb < oldBlocks; lb++ {
		phys, err := fs.bmap(in, ino, lb, false)
		if err != nil {
			return err
		}
		if phys == 0 {
			continue
		}
		if err := fs.clearMapping(in, lb); err != nil {
			return err
		}
		if err := fs.freeBlock(phys); err != nil {
			return err
		}
		in.NBlocks--
	}
	if err := fs.freeEmptyIndirs(in, ino, keep); err != nil {
		return err
	}
	if newSize < in.Size && newSize%blockio.BlockSize != 0 {
		// Zero the tail of the boundary block.
		lb := newSize / blockio.BlockSize
		phys, err := fs.bmap(in, ino, lb, false)
		if err != nil {
			return err
		}
		if phys != 0 {
			b, err := fs.c.Read(phys)
			if err != nil {
				return err
			}
			for i := newSize % blockio.BlockSize; i < blockio.BlockSize; i++ {
				b.Data[i] = 0
			}
			fs.c.MarkDirty(b)
			b.Release()
		}
	}
	in.Size = newSize
	in.Mtime = fs.clk.Now()
	return nil
}

// clearMapping zeroes the pointer for file block lb at whatever level it
// lives, so a freed block can never be reached through a stale pointer.
func (fs *FS) clearMapping(in *layout.Inode, lb int64) error {
	if lb < layout.NDirect {
		in.Direct[lb] = 0
		return nil
	}
	lb -= layout.NDirect
	var indir uint32
	var slot int64
	if lb < layout.PtrsPerBlock {
		indir, slot = in.Indir, lb
	} else {
		lb -= layout.PtrsPerBlock
		if in.DIndir == 0 {
			return nil
		}
		db, err := fs.c.Read(int64(in.DIndir))
		if err != nil {
			return err
		}
		indir = leBytes{db.Data}.u32(int(lb/layout.PtrsPerBlock) * 4)
		db.Release()
		slot = lb % layout.PtrsPerBlock
	}
	if indir == 0 {
		return nil
	}
	ib, err := fs.c.Read(int64(indir))
	if err != nil {
		return err
	}
	leBytes{ib.Data}.pu32(int(slot)*4, 0)
	fs.c.MarkDirty(ib)
	ib.Release()
	return nil
}

// freeEmptyIndirs releases indirect blocks whose every pointer now lies
// beyond the kept range. For simplicity it only handles the all-freed
// case (keep within the direct range), which is what unlink and
// truncate-to-zero need; partial indirect truncation keeps the indirect
// blocks, costing at most a few blocks of slack.
func (fs *FS) freeEmptyIndirs(in *layout.Inode, ino vfs.Ino, keep int64) error {
	if keep > layout.NDirect {
		return nil
	}
	if in.Indir != 0 {
		if err := fs.freeBlock(int64(in.Indir)); err != nil {
			return err
		}
		in.Indir = 0
		in.NBlocks--
	}
	if in.DIndir != 0 {
		db, err := fs.c.Read(int64(in.DIndir))
		if err != nil {
			return err
		}
		le := leBytes{db.Data}
		for s := 0; s < layout.PtrsPerBlock; s++ {
			if p := le.u32(s * 4); p != 0 {
				if err := fs.freeBlock(int64(p)); err != nil {
					db.Release()
					return err
				}
				in.NBlocks--
			}
		}
		db.Release()
		if err := fs.freeBlock(int64(in.DIndir)); err != nil {
			return err
		}
		in.DIndir = 0
		in.NBlocks--
	}
	return nil
}
