package workload

import (
	"runtime"
	"testing"
	"time"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/srv"
	"cffs/internal/vfs"
)

// serviceStack is one mounted fs + server + loopback, the unit the
// isolation scenarios build fresh per run so no cache state leaks
// between baselines.
type serviceStack struct {
	fs  vfs.FileSystem
	s   *srv.Server
	lb  *srv.Loopback
	cfg srv.QoS
}

func newServiceStack(t *testing.T, qos srv.QoS, loads ...ServiceLoad) *serviceStack {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), core.Options{
		EmbedInodes: true,
		Grouping:    true,
		Mode:        core.ModeDelayed,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := srv.New(srv.Config{FS: fs, QoS: qos})
	for _, l := range loads {
		if err := s.AddTenant(l.Tenant); err != nil {
			t.Fatal(err)
		}
		if err := PrepareServiceTree(fs, l, 7); err != nil {
			t.Fatal(err)
		}
	}
	lb := srv.NewLoopback()
	go s.Serve(lb)
	t.Cleanup(func() {
		lb.Close()
		s.Close()
	})
	return &serviceStack{fs: fs, s: s, lb: lb, cfg: qos}
}

// TestServiceDriver smoke-tests the driver: mixed loads complete with
// zero errors, op counts add up, and the server drains its fid table.
func TestServiceDriver(t *testing.T) {
	loads := []ServiceLoad{
		{Tenant: "reads", Sessions: 6, Ops: 40, Kind: SvcRead, Dirs: 2, Files: 8},
		{Tenant: "scans", Sessions: 4, Ops: 40, Kind: SvcScan, Dirs: 2, Files: 8},
		{Tenant: "churn", Sessions: 4, Ops: 24, Kind: SvcCreate, Dirs: 2, Files: 4},
	}
	st := newServiceStack(t, srv.QoS{Workers: 4, FairShare: true}, loads...)
	res, err := RunService(ServiceConfig{Dial: st.lb.Dial, Loads: loads})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSessions() != 14 {
		t.Fatalf("sessions = %d, want 14", res.TotalSessions())
	}
	for _, tr := range res.Tenants {
		wantOps := int64(0)
		for _, l := range loads {
			if l.Tenant == tr.Tenant {
				wantOps = int64(l.Sessions * l.Ops)
			}
		}
		if tr.Ops != wantOps {
			t.Errorf("tenant %s: ops = %d, want %d", tr.Tenant, tr.Ops, wantOps)
		}
		if tr.Errors != 0 {
			t.Errorf("tenant %s: %d op errors", tr.Tenant, tr.Errors)
		}
		if tr.Latency.Count != tr.Ops {
			t.Errorf("tenant %s: %d latency samples for %d ops", tr.Tenant, tr.Latency.Count, tr.Ops)
		}
		if tr.P(0.99) <= 0 {
			t.Errorf("tenant %s: p99 = %v", tr.Tenant, tr.P(0.99))
		}
	}
	// All sessions closed: no fids may linger.
	deadlineFids(t, st.s)
}

func deadlineFids(t *testing.T, s *srv.Server) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if s.FidCount() == 0 {
			return
		}
		// The driver closed every client; releases are asynchronous.
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("fid leak: %d live fids after run", s.FidCount())
}

// TestQoSIsolation is the satellite acceptance test: an aggressor
// tenant running a readdir+stat storm shares the service with a victim
// doing small-file reads. With fair-share scheduling the victim's p99
// must stay within a bounded factor of its solo baseline; the FIFO
// (no-isolation) configuration is run too and logged for contrast.
func TestQoSIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("isolation scenario is seconds-long; skipped in -short")
	}
	victim := ServiceLoad{Tenant: "victim", Sessions: 8, Ops: 400, Kind: SvcRead, Dirs: 4, Files: 16}
	aggressor := ServiceLoad{Tenant: "aggr", Sessions: 32, Ops: 400, Kind: SvcScan, Dirs: 4, Files: 16}

	run := func(qos srv.QoS, loads ...ServiceLoad) ServiceResult {
		t.Helper()
		st := newServiceStack(t, qos, loads...)
		runtime.GC() // start each scenario with a clean heap, not the last one's debt
		res, err := RunService(ServiceConfig{Dial: st.lb.Dial, Loads: loads})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	victimP99 := func(res ServiceResult) float64 {
		for _, tr := range res.Tenants {
			if tr.Tenant == "victim" {
				if tr.Errors != 0 {
					t.Fatalf("victim saw %d op errors", tr.Errors)
				}
				return tr.P(0.99)
			}
		}
		t.Fatal("no victim tenant in result")
		return 0
	}

	// Wall-clock latency on a loaded host is noisy at microsecond
	// scale, so the bound takes the larger of the solo baseline and a
	// floor before applying the 3x isolation criterion (locally the
	// fair run typically lands at 1.5-2.5x solo; the floor absorbs
	// shared-runner scheduling jitter, not real interference). And
	// because `go test ./...` runs whole packages concurrently, one
	// measurement can land on a saturated host — the trio is retried a
	// couple of times so only a *persistent* violation fails, which a
	// real isolation regression (fifo-like ~8x) always is.
	const floorNs = 250e3 // 250µs
	workers := 4
	for attempt := 1; ; attempt++ {
		solo := victimP99(run(srv.QoS{Workers: workers}, victim))
		shared := victimP99(run(srv.QoS{Workers: workers}, victim, aggressor))
		fair := victimP99(run(srv.QoS{Workers: workers, FairShare: true}, victim, aggressor))

		t.Logf("victim read p99: solo %.0fµs, shared-fifo %.0fµs, fair-share %.0fµs",
			solo/1e3, shared/1e3, fair/1e3)

		base := solo
		if base < floorNs {
			base = floorNs
		}
		if fair <= 3*base {
			return
		}
		if attempt == 3 {
			t.Fatalf("fair-share victim p99 %.0fµs exceeds 3x baseline (solo %.0fµs, floor 250µs) on every attempt",
				fair/1e3, solo/1e3)
		}
		t.Logf("attempt %d over the bound (host load?); retrying", attempt)
	}
}
