// Package workload implements the benchmark workloads of the paper's
// evaluation: the four-phase small-file micro-benchmark (after the LFS
// benchmark of [Rosenblum92]), file-size sweeps, and the
// software-development application suite of Section 4.4, all written
// against vfs.FileSystem so every file system configuration sees
// byte-identical operation streams.
package workload

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

// SmallFileConfig parameterizes the micro-benchmark. The paper's run is
// 10000 1 KB files; following the benchmark's common form the files are
// spread over a set of directories.
type SmallFileConfig struct {
	NumFiles int // default 10000
	FileSize int // bytes, default 1024
	Dirs     int // directories to spread files over, default 100
	Seed     uint64

	// Registry, when non-nil, must be the registry the file system under
	// test was mounted with; each PhaseResult then carries the metrics
	// delta covering that phase (including its final write-back).
	Registry *obs.Registry
}

func (c *SmallFileConfig) fill() {
	if c.NumFiles == 0 {
		c.NumFiles = 10000
	}
	if c.FileSize == 0 {
		c.FileSize = 1024
	}
	if c.Dirs == 0 {
		c.Dirs = 100
	}
	if c.Dirs > c.NumFiles {
		c.Dirs = c.NumFiles
	}
}

// PhaseResult is one timed phase of a benchmark.
type PhaseResult struct {
	Name    string
	Files   int
	Seconds float64      // simulated seconds, including the final write-back
	Disk    disk.Stats   // disk activity during the phase
	Metrics obs.Snapshot // registry delta for the phase; empty unless SmallFileConfig.Registry was set
}

// FilesPerSec is the phase's throughput.
func (p PhaseResult) FilesPerSec() float64 {
	if p.Seconds == 0 {
		return 0
	}
	return float64(p.Files) / p.Seconds
}

// RunSmallFile executes the four phases — create/write, read, overwrite,
// delete — against an already-mounted, empty file system. Per the
// paper's methodology, all dirty blocks are forcefully written back
// before a phase's measurement is considered complete, and the cache is
// emptied between phases so each starts cold.
func RunSmallFile(fs vfs.FileSystem, cfg SmallFileConfig) ([]PhaseResult, error) {
	cfg.fill()
	dev, err := deviceOf(fs)
	if err != nil {
		return nil, err
	}
	clk := dev.Disk().Clock()

	dirs := make([]vfs.Ino, cfg.Dirs)
	for i := range dirs {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("dir%04d", i))
		if err != nil {
			return nil, fmt.Errorf("smallfile setup: %w", err)
		}
		dirs[i] = d
	}
	if err := flush(fs); err != nil {
		return nil, err
	}

	// Files fill directories in order (directory-major), like the tar
	// extractions and build trees the benchmark stands in for; all four
	// phases then visit them in the same order.
	perDir := (cfg.NumFiles + cfg.Dirs - 1) / cfg.Dirs
	name := func(i int) (vfs.Ino, string) {
		return dirs[i/perDir], fmt.Sprintf("f%06d", i)
	}
	data := pattern(cfg.Seed+1, cfg.FileSize)
	over := pattern(cfg.Seed+2, cfg.FileSize)
	var results []PhaseResult

	phase := func(label string, body func() error) error {
		start := clk.Now()
		stats0 := dev.Disk().Stats()
		m0 := cfg.Registry.Snapshot()
		if err := body(); err != nil {
			return fmt.Errorf("smallfile %s: %w", label, err)
		}
		if err := fs.Sync(); err != nil {
			return err
		}
		results = append(results, PhaseResult{
			Name:    label,
			Files:   cfg.NumFiles,
			Seconds: float64(clk.Now()-start) / 1e9,
			Disk:    dev.Disk().Stats().Sub(stats0),
			Metrics: cfg.Registry.Snapshot().Delta(m0),
		})
		return flush(fs)
	}

	if err := phase("create", func() error {
		for i := 0; i < cfg.NumFiles; i++ {
			dir, n := name(i)
			ino, err := fs.Create(dir, n)
			if err != nil {
				return err
			}
			if _, err := fs.WriteAt(ino, data, 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := phase("read", func() error {
		buf := make([]byte, cfg.FileSize)
		for i := 0; i < cfg.NumFiles; i++ {
			dir, n := name(i)
			ino, err := fs.Lookup(dir, n)
			if err != nil {
				return err
			}
			if _, err := fs.ReadAt(ino, buf, 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := phase("overwrite", func() error {
		for i := 0; i < cfg.NumFiles; i++ {
			dir, n := name(i)
			ino, err := fs.Lookup(dir, n)
			if err != nil {
				return err
			}
			if _, err := fs.WriteAt(ino, over, 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := phase("delete", func() error {
		for i := 0; i < cfg.NumFiles; i++ {
			dir, n := name(i)
			if err := fs.Unlink(dir, n); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	return results, nil
}

// deviceOf extracts the block device from a mounted file system, used to
// read disk statistics. Both implementations expose Device().
func deviceOf(fs vfs.FileSystem) (*blockio.Device, error) {
	type devHolder interface{ Device() *blockio.Device }
	if h, ok := fs.(devHolder); ok {
		return h.Device(), nil
	}
	return nil, fmt.Errorf("workload: file system exposes no device")
}

// flush empties the cache if the file system supports it.
func flush(fs vfs.FileSystem) error {
	if f, ok := fs.(vfs.Flusher); ok {
		return f.Flush()
	}
	return fs.Sync()
}

// pattern produces deterministic file content.
func pattern(seed uint64, n int) []byte {
	r := sim.NewRNG(seed)
	p := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
	return p
}

// PreparedSmallFile is a populated small-file data set with the cache
// flushed, ready for individually driven phases. Tracing experiments
// use it to capture one phase's request stream in isolation.
type PreparedSmallFile struct {
	fs     vfs.FileSystem
	cfg    SmallFileConfig
	dirs   []vfs.Ino
	perDir int
}

// RunSmallFilePhase creates the benchmark's file set (create/write
// phase plus write-back and cache flush) and returns a handle for
// running later phases one at a time.
func RunSmallFilePhase(fs vfs.FileSystem, cfg SmallFileConfig) (*PreparedSmallFile, error) {
	return RunSmallFilePhaseOrder(fs, cfg, nil)
}

// RunSmallFilePhaseOrder is RunSmallFilePhase with an explicit creation
// order (a permutation of [0, NumFiles); nil means natural order).
// Interleaved creation across directories models multi-user activity
// and separates log-order layouts from namespace-order ones.
func RunSmallFilePhaseOrder(fs vfs.FileSystem, cfg SmallFileConfig, createOrder []int) (*PreparedSmallFile, error) {
	cfg.fill()
	p := &PreparedSmallFile{
		fs:     fs,
		cfg:    cfg,
		perDir: (cfg.NumFiles + cfg.Dirs - 1) / cfg.Dirs,
	}
	for i := 0; i < cfg.Dirs; i++ {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("dir%04d", i))
		if err != nil {
			return nil, err
		}
		p.dirs = append(p.dirs, d)
	}
	data := pattern(cfg.Seed+1, cfg.FileSize)
	for j := 0; j < cfg.NumFiles; j++ {
		i := j
		if createOrder != nil {
			i = createOrder[j]
		}
		dir, name := p.name(i)
		ino, err := fs.Create(dir, name)
		if err != nil {
			return nil, err
		}
		if _, err := fs.WriteAt(ino, data, 0); err != nil {
			return nil, err
		}
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	return p, flush(fs)
}

func (p *PreparedSmallFile) name(i int) (vfs.Ino, string) {
	return p.dirs[i/p.perDir], fmt.Sprintf("f%06d", i)
}

// ReadPhase reads every file once, in creation order, then flushes.
func (p *PreparedSmallFile) ReadPhase() error {
	buf := make([]byte, p.cfg.FileSize)
	for i := 0; i < p.cfg.NumFiles; i++ {
		dir, name := p.name(i)
		ino, err := p.fs.Lookup(dir, name)
		if err != nil {
			return err
		}
		if _, err := p.fs.ReadAt(ino, buf, 0); err != nil {
			return err
		}
	}
	return flush(p.fs)
}

// ReadPhaseOrder reads every file once in the order given by perm (a
// permutation of [0, NumFiles)), then flushes. Reading in an order that
// differs from creation order separates layout policies that depend on
// write order (a log) from ones that depend on namespace locality
// (grouping).
func (p *PreparedSmallFile) ReadPhaseOrder(perm []int) error {
	buf := make([]byte, p.cfg.FileSize)
	for _, i := range perm {
		dir, name := p.name(i)
		ino, err := p.fs.Lookup(dir, name)
		if err != nil {
			return err
		}
		if _, err := p.fs.ReadAt(ino, buf, 0); err != nil {
			return err
		}
	}
	return flush(p.fs)
}

// NumFiles returns the prepared file count.
func (p *PreparedSmallFile) NumFiles() int { return p.cfg.NumFiles }
