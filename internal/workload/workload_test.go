package workload

import (
	"strings"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/ffs"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

func newCFFS(t *testing.T, opts core.Options) vfs.FileSystem {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestSmallFilePhases(t *testing.T) {
	fs := newCFFS(t, core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed})
	res, err := RunSmallFile(fs, SmallFileConfig{NumFiles: 400, Dirs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d phases, want 4", len(res))
	}
	wantNames := []string{"create", "read", "overwrite", "delete"}
	for i, r := range res {
		if r.Name != wantNames[i] {
			t.Fatalf("phase %d = %q, want %q", i, r.Name, wantNames[i])
		}
		if r.Seconds <= 0 {
			t.Fatalf("phase %s took no simulated time", r.Name)
		}
		if r.FilesPerSec() <= 0 {
			t.Fatalf("phase %s throughput not positive", r.Name)
		}
		if r.Disk.Requests <= 0 {
			t.Fatalf("phase %s did no disk I/O", r.Name)
		}
	}
	// The read phase of a cold cache must actually read.
	if res[1].Disk.Reads == 0 {
		t.Fatal("read phase issued no reads")
	}
}

// The benchmark must leave the file system empty (all files deleted),
// and a fsck of the image must come back clean.
func TestSmallFileLeavesCleanImage(t *testing.T) {
	fs := newCFFS(t, core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed})
	if _, err := RunSmallFile(fs, SmallFileConfig{NumFiles: 200, Dirs: 4}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	cfs := fs.(*core.FS)
	rep, err := core.Check(cfs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("image not clean after benchmark: %v", rep.Problems[:min(5, len(rep.Problems))])
	}
	if rep.Files != 0 {
		t.Fatalf("benchmark left %d files behind", rep.Files)
	}
}

func TestGenerateTreeDistribution(t *testing.T) {
	fs := newCFFS(t, core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed})
	if _, err := vfs.MkdirAll(fs, "/src"); err != nil {
		t.Fatal(err)
	}
	spec := TreeSpec{Depth: 3, DirsPerDir: 3, FilesPerDir: 15, Seed: 7}
	st, err := GenerateTree(fs, "/src", spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != spec.NumFiles() {
		t.Fatalf("generated %d files, spec promises %d", st.Files, spec.NumFiles())
	}
	frac := float64(st.Under8K) / float64(st.Files)
	if frac < 0.70 || frac > 0.88 {
		t.Fatalf("%.0f%% of files under 8KB; want ~79%%", frac*100)
	}
	// Verify the tree is really on the file system.
	count := 0
	if err := vfs.WalkTree(fs, "/src", func(p string, s vfs.Stat) error {
		if s.Type == vfs.TypeReg {
			count++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != st.Files {
		t.Fatalf("tree walk found %d files, generator reports %d", count, st.Files)
	}
}

func TestApplicationsRunAndAreConsistent(t *testing.T) {
	fs := newCFFS(t, core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed})
	if _, err := vfs.MkdirAll(fs, "/proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateTree(fs, "/proj", TreeSpec{Depth: 2, DirsPerDir: 3, FilesPerDir: 8, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	copyRes, err := CopyTree(fs, "/proj", "/proj2")
	if err != nil {
		t.Fatal(err)
	}
	if copyRes.Seconds <= 0 {
		t.Fatal("copy took no time")
	}
	// The copy must be byte-identical.
	if err := vfs.WalkTree(fs, "/proj", func(p string, s vfs.Stat) error {
		if s.Type != vfs.TypeReg {
			return nil
		}
		a, err := vfs.ReadFile(fs, p)
		if err != nil {
			return err
		}
		b, err := vfs.ReadFile(fs, "/proj2"+strings.TrimPrefix(p, "/proj"))
		if err != nil {
			return err
		}
		if string(a) != string(b) {
			t.Fatalf("copy of %s differs", p)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := Archive(fs, "/proj", "/proj.ar"); err != nil {
		t.Fatal(err)
	}
	if _, err := Unarchive(fs, "/proj.ar", "/restored"); err != nil {
		t.Fatal(err)
	}
	orig, err := vfs.ReadFile(fs, "/proj/mod01.c")
	if err != nil {
		t.Fatal(err)
	}
	rest, err := vfs.ReadFile(fs, "/restored/mod01.c")
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(rest) {
		t.Fatal("unarchive did not restore file contents")
	}

	if _, err := AttrScan(fs, "/proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := Search(fs, "/proj", []byte{0x42, 0x17}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(fs, "/proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.Walk(fs, "/proj/a.out"); err != nil {
		t.Fatal("compile did not produce a.out")
	}
	if _, err := Clean(fs, "/proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.Walk(fs, "/proj/a.out"); err == nil {
		t.Fatal("clean left a.out behind")
	}
	if _, err := RemoveTree(fs, "/proj2"); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.Walk(fs, "/proj2"); err == nil {
		t.Fatal("remove left the tree behind")
	}
}

// The operation stream must be identical across file systems: same
// files, same bytes, so timing differences are purely layout policy.
func TestWorkloadsRunOnFFSBaseline(t *testing.T) {
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mkfs(blockio.NewDevice(d, sched.CLook{}), ffs.Options{Mode: ffs.ModeDelayed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSmallFile(fs, SmallFileConfig{NumFiles: 200, Dirs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatal("phases missing on FFS")
	}
	if _, err := vfs.MkdirAll(fs, "/t"); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateTree(fs, "/t", TreeSpec{Depth: 2, DirsPerDir: 2, FilesPerDir: 6, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(fs, "/t"); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPostmarkRuns(t *testing.T) {
	fs := newCFFS(t, core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed})
	res, err := RunPostmark(fs, PostmarkConfig{InitialFiles: 200, Transactions: 400, Dirs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransactionsPS <= 0 || res.Seconds <= 0 {
		t.Fatalf("postmark produced no throughput: %+v", res)
	}
	if res.Reads+res.Appends != 400 || res.Creates+res.Deletes != 400 {
		t.Fatalf("transaction accounting off: %+v", res)
	}
	if res.Disk.Requests == 0 {
		t.Fatal("postmark did no disk I/O")
	}
	// The churned image must still be consistent.
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := core.Check(fs.(*core.FS).Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		n := len(rep.Problems)
		if n > 5 {
			n = 5
		}
		t.Fatalf("postmark image not clean: %v", rep.Problems[:n])
	}
}

func TestPostmarkDeterministic(t *testing.T) {
	run := func() PostmarkResult {
		fs := newCFFS(t, core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed})
		res, err := RunPostmark(fs, PostmarkConfig{InitialFiles: 150, Transactions: 300, Dirs: 6, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}
