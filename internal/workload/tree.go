package workload

import (
	"fmt"

	"cffs/internal/sim"
	"cffs/internal/vfs"
)

// TreeSpec describes a synthetic software-development source tree. The
// size distribution is calibrated to the paper's static observation that
// 79% of files are smaller than 8 KB, with a long tail of larger files.
type TreeSpec struct {
	Depth       int    // directory nesting levels, default 3
	DirsPerDir  int    // subdirectories per directory, default 4
	FilesPerDir int    // files per directory, default 12
	Seed        uint64 // content and size seed
}

func (s *TreeSpec) fill() {
	if s.Depth == 0 {
		s.Depth = 3
	}
	if s.DirsPerDir == 0 {
		s.DirsPerDir = 4
	}
	if s.FilesPerDir == 0 {
		s.FilesPerDir = 12
	}
}

// NumFiles returns the total file count the spec will generate.
func (s TreeSpec) NumFiles() int {
	s.fill()
	dirs := 0
	level := 1
	for d := 0; d < s.Depth; d++ {
		dirs += level
		level *= s.DirsPerDir
	}
	return dirs * s.FilesPerDir
}

// fileSize draws from the calibrated size mixture:
//
//	60%:  512 B – 4 KB   (headers, small sources)
//	19%:  4 KB – 8 KB    (typical sources)        -> 79% below 8 KB
//	15%:  8 KB – 64 KB   (big sources, small objects)
//	 6%:  64 KB – 512 KB (libraries, binaries)
func fileSize(rng *sim.RNG) int {
	switch p := rng.Float64(); {
	case p < 0.60:
		return 512 + rng.Intn(4096-512)
	case p < 0.79:
		return 4096 + rng.Intn(4096)
	case p < 0.94:
		return 8192 + rng.Intn(65536-8192)
	default:
		return 65536 + rng.Intn(524288-65536)
	}
}

// TreeStats summarizes a generated tree.
type TreeStats struct {
	Dirs       int
	Files      int
	TotalBytes int64
	Under8K    int
}

// GenerateTree builds the tree under root (which must exist) and
// returns its statistics. Generation is deterministic in the seed.
func GenerateTree(fs vfs.FileSystem, root string, spec TreeSpec) (TreeStats, error) {
	spec.fill()
	rng := sim.NewRNG(spec.Seed + 0x7ee)
	var st TreeStats
	rootIno, err := vfs.Walk(fs, root)
	if err != nil {
		return st, err
	}
	err = genDir(fs, rootIno, spec, spec.Depth, rng, &st)
	return st, err
}

func genDir(fs vfs.FileSystem, dir vfs.Ino, spec TreeSpec, depth int, rng *sim.RNG, st *TreeStats) error {
	st.Dirs++
	for f := 0; f < spec.FilesPerDir; f++ {
		// Source-ish names: mostly .c and .h so the compile workload has
		// inputs to chew on.
		var name string
		switch f % 4 {
		case 0:
			name = fmt.Sprintf("mod%02d.h", f)
		case 3:
			name = fmt.Sprintf("data%02d.txt", f)
		default:
			name = fmt.Sprintf("mod%02d.c", f)
		}
		size := fileSize(rng)
		ino, err := fs.Create(dir, name)
		if err != nil {
			return err
		}
		if _, err := fs.WriteAt(ino, pattern(rng.Uint64(), size), 0); err != nil {
			return err
		}
		st.Files++
		st.TotalBytes += int64(size)
		if size < 8192 {
			st.Under8K++
		}
	}
	if depth <= 1 {
		return nil
	}
	for d := 0; d < spec.DirsPerDir; d++ {
		sub, err := fs.Mkdir(dir, fmt.Sprintf("pkg%02d", d))
		if err != nil {
			return err
		}
		if err := genDir(fs, sub, spec, depth-1, rng, st); err != nil {
			return err
		}
	}
	return nil
}
