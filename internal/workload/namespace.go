package workload

import (
	"fmt"
	"strings"

	"cffs/internal/obs"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

// NamespaceConfig parameterizes the million-file namespace benchmark:
// a pure-metadata workload (zero-byte files) that measures what the
// directory index and the path cache buy when the namespace itself is
// the data set. The tree is a wide fan of fixed-size directories under
// the root — so the *root* is what grows with the file count — plus one
// deep chain that exercises long component-by-component resolutions.
type NamespaceConfig struct {
	NumFiles    int // total zero-byte files, default 1000000
	FilesPerDir int // files per leaf directory, default 256
	ChainDepth  int // depth of the deep directory chain, default 24
	WalkOps     int // full-path resolutions in the resolve phase, default NumFiles/4
	Seed        uint64

	// Registry, as in SmallFileConfig: the registry the file system under
	// test was mounted with, for per-phase metric deltas.
	Registry *obs.Registry
}

func (c *NamespaceConfig) fill() {
	if c.NumFiles == 0 {
		c.NumFiles = 1000000
	}
	if c.FilesPerDir == 0 {
		c.FilesPerDir = 256
	}
	if c.ChainDepth == 0 {
		c.ChainDepth = 24
	}
	if c.WalkOps == 0 {
		c.WalkOps = c.NumFiles / 4
	}
	if c.WalkOps > c.NumFiles {
		c.WalkOps = c.NumFiles
	}
}

// NamespaceResult is the per-phase outcome plus tree shape.
type NamespaceResult struct {
	Phases []PhaseResult
	Dirs   int // leaf directories created (excluding the chain)
}

// RunNamespace executes three phases against an already-mounted, empty
// file system:
//
//	populate — mkdir the directory fan and create every (empty) file,
//	           plus the deep chain;
//	resolve  — WalkOps full-path resolutions of distinct random files
//	           (every 64th walk resolves the deep chain instead);
//	scan     — readdir+stat storm: list every directory and stat every
//	           entry it returns.
//
// All paths are distinct in the resolve phase, so the path cache is
// exercised without letting repeat-hits at small scale skew the
// requests-per-operation comparison across scales.
func RunNamespace(fs vfs.FileSystem, cfg NamespaceConfig) (NamespaceResult, error) {
	cfg.fill()
	var out NamespaceResult
	dev, err := deviceOf(fs)
	if err != nil {
		return out, err
	}
	clk := dev.Disk().Clock()
	nDirs := (cfg.NumFiles + cfg.FilesPerDir - 1) / cfg.FilesPerDir
	out.Dirs = nDirs
	dirs := make([]vfs.Ino, nDirs)
	perDir := func(d int) int {
		n := cfg.NumFiles - d*cfg.FilesPerDir
		if n > cfg.FilesPerDir {
			n = cfg.FilesPerDir
		}
		return n
	}

	phase := func(label string, ops int, body func() error) error {
		start := clk.Now()
		stats0 := dev.Disk().Stats()
		m0 := cfg.Registry.Snapshot()
		if err := body(); err != nil {
			return fmt.Errorf("namespace %s: %w", label, err)
		}
		if err := fs.Sync(); err != nil {
			return err
		}
		out.Phases = append(out.Phases, PhaseResult{
			Name:    label,
			Files:   ops,
			Seconds: float64(clk.Now()-start) / 1e9,
			Disk:    dev.Disk().Stats().Sub(stats0),
			Metrics: cfg.Registry.Snapshot().Delta(m0),
		})
		return flush(fs)
	}

	if err := phase("populate", cfg.NumFiles, func() error {
		for d := 0; d < nDirs; d++ {
			di, err := fs.Mkdir(fs.Root(), fmt.Sprintf("d%05d", d))
			if err != nil {
				return err
			}
			dirs[d] = di
			for f := 0; f < perDir(d); f++ {
				if _, err := fs.Create(di, fmt.Sprintf("f%06d", f)); err != nil {
					return err
				}
			}
		}
		cur := fs.Root()
		for i := 0; i < cfg.ChainDepth; i++ {
			next, err := fs.Mkdir(cur, fmt.Sprintf("p%02d", i))
			if err != nil {
				return err
			}
			cur = next
		}
		_, err := fs.Create(cur, "leaf")
		return err
	}); err != nil {
		return out, err
	}

	var chain strings.Builder
	for i := 0; i < cfg.ChainDepth; i++ {
		fmt.Fprintf(&chain, "/p%02d", i)
	}
	chain.WriteString("/leaf")
	chainPath := chain.String()

	if err := phase("resolve", cfg.WalkOps, func() error {
		order := sim.NewRNG(cfg.Seed + 3).Perm(cfg.NumFiles)
		for k := 0; k < cfg.WalkOps; k++ {
			p := chainPath
			if k%64 != 63 {
				i := order[k]
				p = fmt.Sprintf("/d%05d/f%06d", i/cfg.FilesPerDir, i%cfg.FilesPerDir)
			}
			if _, err := vfs.Walk(fs, p); err != nil {
				return fmt.Errorf("walk %s: %w", p, err)
			}
		}
		return nil
	}); err != nil {
		return out, err
	}

	if err := phase("scan", cfg.NumFiles, func() error {
		for d := 0; d < nDirs; d++ {
			ents, err := fs.ReadDir(dirs[d])
			if err != nil {
				return err
			}
			if len(ents) != perDir(d) {
				return fmt.Errorf("dir d%05d lists %d entries, want %d", d, len(ents), perDir(d))
			}
			for _, e := range ents {
				if _, err := fs.Stat(e.Ino); err != nil {
					return fmt.Errorf("stat d%05d/%s: %w", d, e.Name, err)
				}
			}
		}
		return nil
	}); err != nil {
		return out, err
	}

	return out, nil
}
