package workload

import (
	"fmt"

	"cffs/internal/disk"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

// Postmark is a PostMark-style mixed small-file transaction benchmark
// (Katcher's 1997 mail/news/web-commerce workload, contemporaneous with
// the paper): build an initial pool of small files, run a stream of
// transactions — each a read or append paired with a create or delete —
// then tear the pool down. It exercises steady-state churn rather than
// the four clean phases of the Rosenblum benchmark.
type PostmarkConfig struct {
	InitialFiles int // pool size, default 2500
	Transactions int // default 5000
	Dirs         int // subdirectories, default 50
	MinSize      int // default 512
	MaxSize      int // default 16384
	Seed         uint64
}

func (c *PostmarkConfig) fill() {
	if c.InitialFiles == 0 {
		c.InitialFiles = 2500
	}
	if c.Transactions == 0 {
		c.Transactions = 5000
	}
	if c.Dirs == 0 {
		c.Dirs = 50
	}
	if c.MinSize == 0 {
		c.MinSize = 512
	}
	if c.MaxSize == 0 {
		c.MaxSize = 16384
	}
}

// PostmarkResult reports the run.
type PostmarkResult struct {
	Seconds        float64 // simulated, transactions phase only
	TransactionsPS float64
	Reads          int
	Appends        int
	Creates        int
	Deletes        int
	Disk           disk.Stats
}

// RunPostmark executes the benchmark on an empty file system.
func RunPostmark(fs vfs.FileSystem, cfg PostmarkConfig) (PostmarkResult, error) {
	var res PostmarkResult
	cfg.fill()
	dev, err := deviceOf(fs)
	if err != nil {
		return res, err
	}
	rng := sim.NewRNG(cfg.Seed + 0x905)
	clk := dev.Disk().Clock()

	dirs := make([]vfs.Ino, cfg.Dirs)
	for i := range dirs {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("pm%03d", i))
		if err != nil {
			return res, err
		}
		dirs[i] = d
	}
	size := func() int { return cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1) }

	type pmFile struct {
		dir  vfs.Ino
		name string
	}
	var pool []pmFile
	seq := 0
	create := func() error {
		dir := dirs[rng.Intn(len(dirs))]
		name := fmt.Sprintf("pmf%07d", seq)
		seq++
		ino, err := fs.Create(dir, name)
		if err != nil {
			return err
		}
		if _, err := fs.WriteAt(ino, pattern(rng.Uint64(), size()), 0); err != nil {
			return err
		}
		pool = append(pool, pmFile{dir, name})
		return nil
	}

	// Pool construction (untimed, like PostMark's setup phase).
	for i := 0; i < cfg.InitialFiles; i++ {
		if err := create(); err != nil {
			return res, fmt.Errorf("postmark setup: %w", err)
		}
	}
	if err := flush(fs); err != nil {
		return res, err
	}

	// Transactions.
	start := clk.Now()
	s0 := dev.Disk().Stats()
	buf := make([]byte, cfg.MaxSize)
	for tx := 0; tx < cfg.Transactions; tx++ {
		// Half 1: read or append an existing file.
		f := pool[rng.Intn(len(pool))]
		ino, err := fs.Lookup(f.dir, f.name)
		if err != nil {
			return res, fmt.Errorf("postmark lookup %s: %w", f.name, err)
		}
		if rng.Intn(2) == 0 {
			st, err := fs.Stat(ino)
			if err != nil {
				return res, err
			}
			if int(st.Size) > len(buf) {
				buf = make([]byte, st.Size) // appends grow files past MaxSize
			}
			if _, err := fs.ReadAt(ino, buf[:st.Size], 0); err != nil {
				return res, err
			}
			res.Reads++
		} else {
			st, err := fs.Stat(ino)
			if err != nil {
				return res, err
			}
			if _, err := fs.WriteAt(ino, pattern(rng.Uint64(), 512+rng.Intn(3584)), st.Size); err != nil {
				return res, err
			}
			res.Appends++
		}
		// Half 2: create or delete.
		if rng.Intn(2) == 0 || len(pool) < 2 {
			if err := create(); err != nil {
				return res, err
			}
			res.Creates++
		} else {
			pick := rng.Intn(len(pool))
			victim := pool[pick]
			pool[pick] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			if err := fs.Unlink(victim.dir, victim.name); err != nil {
				return res, fmt.Errorf("postmark delete %s: %w", victim.name, err)
			}
			res.Deletes++
		}
	}
	if err := fs.Sync(); err != nil {
		return res, err
	}
	res.Seconds = float64(clk.Now()-start) / 1e9
	res.TransactionsPS = float64(cfg.Transactions) / res.Seconds
	res.Disk = dev.Disk().Stats().Sub(s0)
	return res, nil
}
