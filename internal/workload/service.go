package workload

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cffs/internal/obs"
	"cffs/internal/srv"
	"cffs/internal/vfs"
)

// Service workload: a many-client driver for the wire-protocol front
// end. Each session is a goroutine owning one connection (dialed
// through the transport under test — loopback in the benchmarks), one
// attach, and a handful of pre-resolved fids; operations then ride the
// resolved handles, so steady-state traffic measures the protocol +
// QoS + fs stack, not path resolution. Per-op wall-clock latency goes
// into a per-tenant obs histogram, which is where the benchmark's
// p50/p95/p99 come from.

// Session op kinds.
const (
	// SvcRead sessions pre-open a few file fids and issue single-RPC
	// reads — the victim-shaped small-file load.
	SvcRead = "read"
	// SvcScan sessions alternate readdir pages with stats through a
	// pre-walked fid — the aggressor-shaped metadata storm. Each op is
	// one RPC, so storms contend through queueing, not giant requests.
	SvcScan = "scan"
	// SvcCreate sessions create, write, and clunk session-private
	// files — the dirty-data load that exercises admission against the
	// writeback throttle.
	SvcCreate = "create"
)

// ServiceLoad describes one tenant's offered load.
type ServiceLoad struct {
	Tenant   string
	Sessions int    // concurrent sessions (connections)
	Ops      int    // operations per session
	Kind     string // SvcRead, SvcScan, SvcCreate (default SvcRead)
	Dirs     int    // directories in the tenant tree, default 8
	Files    int    // files per directory, default 32
	FileSize int    // bytes per file, default 1024
}

func (l *ServiceLoad) fill() {
	if l.Kind == "" {
		l.Kind = SvcRead
	}
	if l.Sessions == 0 {
		l.Sessions = 1
	}
	if l.Ops == 0 {
		l.Ops = 100
	}
	if l.Dirs == 0 {
		l.Dirs = 8
	}
	if l.Files == 0 {
		l.Files = 32
	}
	if l.FileSize == 0 {
		l.FileSize = 1024
	}
}

// ServiceConfig parameterizes one service run.
type ServiceConfig struct {
	// Dial opens one connection per session (srv.Loopback.Dial, or a
	// net.Dial closure for TCP).
	Dial  func() (net.Conn, error)
	Loads []ServiceLoad
	Seed  uint64
}

// ServiceTenantResult is one tenant's side of the run.
type ServiceTenantResult struct {
	Tenant   string
	Kind     string
	Sessions int
	Ops      int64
	Errors   int64
	Latency  obs.HistSnapshot // per-op wall-clock ns
}

// P is latency quantile q in nanoseconds.
func (r ServiceTenantResult) P(q float64) float64 { return r.Latency.Quantile(q) }

// ServiceResult is the whole run.
type ServiceResult struct {
	Tenants     []ServiceTenantResult
	WallSeconds float64
}

// TotalSessions sums sessions across tenants.
func (r ServiceResult) TotalSessions() int {
	n := 0
	for _, t := range r.Tenants {
		n += t.Sessions
	}
	return n
}

// PrepareServiceTree builds /<tenant>/d<i>/f<j> directly on the fs (no
// wire round trips) so timed runs start against a populated namespace.
// The tenant root must already exist (srv.Server.AddTenant makes it).
func PrepareServiceTree(fs vfs.FileSystem, l ServiceLoad, seed uint64) error {
	l.fill()
	rng := rand.New(rand.NewSource(int64(seed ^ 0x5eed)))
	payload := make([]byte, l.FileSize)
	rng.Read(payload)
	for d := 0; d < l.Dirs; d++ {
		dir, err := vfs.MkdirAll(fs, fmt.Sprintf("/%s/d%02d", l.Tenant, d))
		if err != nil {
			return err
		}
		for f := 0; f < l.Files; f++ {
			ino, err := fs.Create(dir, fmt.Sprintf("f%03d", f))
			if err != nil {
				return err
			}
			if _, err := fs.WriteAt(ino, payload, 0); err != nil {
				return err
			}
		}
	}
	return fs.Sync()
}

// tenantRun aggregates one load's sessions.
type tenantRun struct {
	load ServiceLoad
	hist obs.Histogram // zero value usable, concurrency-safe
	ops  atomic.Int64
	errs atomic.Int64
}

// RunService runs every load's sessions concurrently until each
// completes its op count, and reports per-tenant latency distributions.
// Session-fatal failures (dial, attach, protocol loss) are returned as
// an error; individual op errors are counted per tenant.
func RunService(cfg ServiceConfig) (ServiceResult, error) {
	if cfg.Dial == nil {
		return ServiceResult{}, fmt.Errorf("workload: service run needs a Dial")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	runs := make([]*tenantRun, len(cfg.Loads))
	for i := range cfg.Loads {
		cfg.Loads[i].fill()
		runs[i] = &tenantRun{load: cfg.Loads[i]}
	}

	start := time.Now()
	var wg sync.WaitGroup
	fatal := make(chan error, 1)
	for i, r := range runs {
		for sess := 0; sess < r.load.Sessions; sess++ {
			wg.Add(1)
			go func(r *tenantRun, i, sess int) {
				defer wg.Done()
				seed := cfg.Seed + uint64(i)<<32 + uint64(sess)
				if err := runSession(cfg.Dial, r, seed); err != nil {
					select {
					case fatal <- fmt.Errorf("tenant %s session %d: %w", r.load.Tenant, sess, err):
					default:
					}
				}
			}(r, i, sess)
		}
	}
	wg.Wait()
	select {
	case err := <-fatal:
		return ServiceResult{}, err
	default:
	}

	res := ServiceResult{WallSeconds: time.Since(start).Seconds()}
	for _, r := range runs {
		res.Tenants = append(res.Tenants, ServiceTenantResult{
			Tenant:   r.load.Tenant,
			Kind:     r.load.Kind,
			Sessions: r.load.Sessions,
			Ops:      r.ops.Load(),
			Errors:   r.errs.Load(),
			Latency:  r.hist.Snapshot(),
		})
	}
	return res, nil
}

// runSession is one connection's life: dial, attach, resolve handles
// once, loop ops, clunk, close.
func runSession(dial func() (net.Conn, error), r *tenantRun, seed uint64) error {
	nc, err := dial()
	if err != nil {
		return err
	}
	c, err := srv.NewClient(nc)
	if err != nil {
		nc.Close()
		return err
	}
	defer c.Close()
	root, err := c.Attach(r.load.Tenant)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	switch r.load.Kind {
	case SvcScan:
		return scanSession(root, r, rng)
	case SvcCreate:
		return createSession(root, r, rng, seed)
	default:
		return readSession(root, r, rng)
	}
}

// readSession resolves a few file fids up front (BuffetFS-style: pay
// for the walk and the permission check once), then hammers single-RPC
// reads across them.
func readSession(root *srv.Fid, r *tenantRun, rng *rand.Rand) error {
	const handles = 4
	fids := make([]*srv.Fid, 0, handles)
	sizes := make([]int64, 0, handles)
	for len(fids) < handles {
		d, f := rng.Intn(r.load.Dirs), rng.Intn(r.load.Files)
		fid, err := root.Walk(fmt.Sprintf("d%02d", d), fmt.Sprintf("f%03d", f))
		if err != nil {
			return fmt.Errorf("resolve: %w", err)
		}
		st, err := fid.Open(srv.OModeRead)
		if err != nil {
			return fmt.Errorf("open: %w", err)
		}
		fids = append(fids, fid)
		sizes = append(sizes, st.Size)
	}
	buf := make([]byte, r.load.FileSize)
	for op := 0; op < r.load.Ops; op++ {
		k := rng.Intn(len(fids))
		off := int64(0)
		if sizes[k] > int64(len(buf)) {
			off = rng.Int63n(sizes[k] - int64(len(buf)) + 1)
		}
		t0 := time.Now()
		_, err := fids[k].ReadAt(buf, off)
		r.hist.Record(time.Since(t0).Nanoseconds())
		r.ops.Add(1)
		if err != nil {
			r.errs.Add(1)
		}
	}
	for _, f := range fids {
		f.Clunk()
	}
	return nil
}

// scanSession is the metadata storm: paged readdir over pre-opened
// directory fids, interleaved with stats of a pre-walked file.
func scanSession(root *srv.Fid, r *tenantRun, rng *rand.Rand) error {
	dir, err := root.Walk(fmt.Sprintf("d%02d", rng.Intn(r.load.Dirs)))
	if err != nil {
		return fmt.Errorf("resolve dir: %w", err)
	}
	if _, err := dir.Open(srv.OModeRead); err != nil {
		return fmt.Errorf("open dir: %w", err)
	}
	file, err := root.Walk(fmt.Sprintf("d%02d", rng.Intn(r.load.Dirs)), fmt.Sprintf("f%03d", rng.Intn(r.load.Files)))
	if err != nil {
		return fmt.Errorf("resolve file: %w", err)
	}
	var off int64
	for op := 0; op < r.load.Ops; op++ {
		t0 := time.Now()
		var err error
		if op%2 == 0 {
			var ents []vfs.DirEntry
			var more bool
			ents, more, err = dir.ReadDirPage(off)
			if !more || len(ents) == 0 {
				off = 0
			} else {
				off += int64(len(ents))
			}
		} else {
			_, err = file.Stat()
		}
		r.hist.Record(time.Since(t0).Nanoseconds())
		r.ops.Add(1)
		if err != nil {
			r.errs.Add(1)
		}
	}
	dir.Clunk()
	file.Clunk()
	return nil
}

// createSession churns session-private files: create, write the
// payload, clunk; every second file is unlinked again so the tree grows
// slowly rather than without bound. Names carry the session seed, so
// concurrent sessions never collide.
func createSession(root *srv.Fid, r *tenantRun, rng *rand.Rand, seed uint64) error {
	dir, err := root.Walk(fmt.Sprintf("d%02d", rng.Intn(r.load.Dirs)))
	if err != nil {
		return fmt.Errorf("resolve dir: %w", err)
	}
	payload := make([]byte, r.load.FileSize)
	rng.Read(payload)
	for op := 0; op < r.load.Ops; op++ {
		name := fmt.Sprintf("s%x-%d", seed, op)
		t0 := time.Now()
		f, err := dir.Create(name)
		if err == nil {
			_, err = f.WriteAt(payload, 0)
			f.Clunk()
			if op%2 == 1 {
				if uerr := dir.Unlink(name); err == nil {
					err = uerr
				}
			}
		}
		r.hist.Record(time.Since(t0).Nanoseconds())
		r.ops.Add(1)
		if err != nil {
			r.errs.Add(1)
		}
	}
	dir.Clunk()
	return nil
}
