package workload

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"cffs/internal/disk"
	"cffs/internal/vfs"
)

// Application workloads (paper Section 4.4): software-development
// activity over a source tree. Each returns the simulated seconds it
// took and the disk activity, with write-back included, mirroring how
// the paper measures elapsed application time.

// AppResult is one application benchmark outcome.
type AppResult struct {
	Name    string
	Seconds float64
	Disk    disk.Stats
}

// timedApp wraps a workload body with the measurement protocol: cold
// cache at entry, dirty data forced out before the clock stops.
func timedApp(fs vfs.FileSystem, name string, body func() error) (AppResult, error) {
	dev, err := deviceOf(fs)
	if err != nil {
		return AppResult{}, err
	}
	if err := flush(fs); err != nil {
		return AppResult{}, err
	}
	clk := dev.Disk().Clock()
	start := clk.Now()
	s0 := dev.Disk().Stats()
	if err := body(); err != nil {
		return AppResult{}, fmt.Errorf("%s: %w", name, err)
	}
	if err := fs.Sync(); err != nil {
		return AppResult{}, err
	}
	return AppResult{
		Name:    name,
		Seconds: float64(clk.Now()-start) / 1e9,
		Disk:    dev.Disk().Stats().Sub(s0),
	}, nil
}

// CopyTree recursively copies src to dst (cp -r): read every file,
// create and write its twin.
func CopyTree(fs vfs.FileSystem, src, dst string) (AppResult, error) {
	return timedApp(fs, "copy", func() error {
		if _, err := vfs.MkdirAll(fs, dst); err != nil {
			return err
		}
		return vfs.WalkTree(fs, src, func(path string, st vfs.Stat) error {
			rel := strings.TrimPrefix(path, src)
			if st.Type == vfs.TypeDir {
				_, err := vfs.MkdirAll(fs, dst+rel)
				return err
			}
			data, err := vfs.ReadFile(fs, path)
			if err != nil {
				return err
			}
			return vfs.WriteFile(fs, dst+rel, data)
		})
	})
}

// Archive packs the tree into one large file (tar c): small-file reads,
// large sequential write. The format is a simple length-prefixed stream
// that Unarchive can restore.
func Archive(fs vfs.FileSystem, src, dest string) (AppResult, error) {
	return timedApp(fs, "archive", func() error {
		var out []byte
		var hdr [8]byte
		err := vfs.WalkTree(fs, src, func(path string, st vfs.Stat) error {
			rel := strings.TrimPrefix(path, src)
			kind := byte(0)
			if st.Type == vfs.TypeDir {
				kind = 1
			}
			binary.LittleEndian.PutUint32(hdr[0:], uint32(len(rel)))
			binary.LittleEndian.PutUint32(hdr[4:], uint32(st.Size))
			out = append(out, kind)
			out = append(out, hdr[:]...)
			out = append(out, rel...)
			if st.Type == vfs.TypeReg {
				data, err := vfs.ReadFile(fs, path)
				if err != nil {
					return err
				}
				out = append(out, data...)
			}
			return nil
		})
		if err != nil {
			return err
		}
		return vfs.WriteFile(fs, dest, out)
	})
}

// Unarchive restores an Archive stream under dst (tar x): one large
// sequential read, many small-file creates and writes.
func Unarchive(fs vfs.FileSystem, archivePath, dst string) (AppResult, error) {
	return timedApp(fs, "unarchive", func() error {
		blob, err := vfs.ReadFile(fs, archivePath)
		if err != nil {
			return err
		}
		if _, err := vfs.MkdirAll(fs, dst); err != nil {
			return err
		}
		for off := 0; off < len(blob); {
			if off+9 > len(blob) {
				return fmt.Errorf("truncated archive at %d", off)
			}
			kind := blob[off]
			nameLen := int(binary.LittleEndian.Uint32(blob[off+1:]))
			size := int(binary.LittleEndian.Uint32(blob[off+5:]))
			off += 9
			if off+nameLen > len(blob) {
				return fmt.Errorf("truncated name at %d", off)
			}
			rel := string(blob[off : off+nameLen])
			off += nameLen
			if kind == 1 {
				if _, err := vfs.MkdirAll(fs, dst+rel); err != nil {
					return err
				}
				continue
			}
			if off+size > len(blob) {
				return fmt.Errorf("truncated data at %d", off)
			}
			if err := vfs.WriteFile(fs, dst+rel, blob[off:off+size]); err != nil {
				return err
			}
			off += size
		}
		return nil
	})
}

// AttrScan stats every file and directory in the tree (du / ls -lR):
// pure metadata traffic, the workload embedded inodes help most.
func AttrScan(fs vfs.FileSystem, root string) (AppResult, error) {
	return timedApp(fs, "attrscan", func() error {
		var total int64
		if err := vfs.WalkTree(fs, root, func(path string, st vfs.Stat) error {
			total += st.Size
			return nil
		}); err != nil {
			return err
		}
		if total == 0 {
			return fmt.Errorf("attrscan found an empty tree")
		}
		return nil
	})
}

// Search reads every regular file in full, scanning for a byte pattern
// (grep -r): small-file read bandwidth.
func Search(fs vfs.FileSystem, root string, needle []byte) (AppResult, error) {
	return timedApp(fs, "search", func() error {
		matches := 0
		err := vfs.WalkTree(fs, root, func(path string, st vfs.Stat) error {
			if st.Type != vfs.TypeReg {
				return nil
			}
			data, err := vfs.ReadFile(fs, path)
			if err != nil {
				return err
			}
			if idx := indexBytes(data, needle); idx >= 0 {
				matches++
			}
			return nil
		})
		_ = matches
		return err
	})
}

func indexBytes(h, n []byte) int {
	if len(n) == 0 || len(h) < len(n) {
		return -1
	}
outer:
	for i := 0; i+len(n) <= len(h); i++ {
		for j := range n {
			if h[i+j] != n[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}

// Compile simulates a build: every .c file is read and a .o file of
// about 60% of its size is written next to it; finally all .o files are
// read back and a single linked binary is written at root/a.out.
func Compile(fs vfs.FileSystem, root string) (AppResult, error) {
	return timedApp(fs, "compile", func() error {
		var sources []string
		if err := vfs.WalkTree(fs, root, func(path string, st vfs.Stat) error {
			if st.Type == vfs.TypeReg && strings.HasSuffix(path, ".c") {
				sources = append(sources, path)
			}
			return nil
		}); err != nil {
			return err
		}
		sort.Strings(sources)
		var objects []string
		for _, src := range sources {
			data, err := vfs.ReadFile(fs, src)
			if err != nil {
				return err
			}
			objSize := len(data) * 6 / 10
			if objSize == 0 {
				objSize = 1
			}
			obj := strings.TrimSuffix(src, ".c") + ".o"
			if err := vfs.WriteFile(fs, obj, pattern(uint64(len(data)), objSize)); err != nil {
				return err
			}
			objects = append(objects, obj)
		}
		var binary []byte
		for _, obj := range objects {
			data, err := vfs.ReadFile(fs, obj)
			if err != nil {
				return err
			}
			binary = append(binary, data...)
		}
		return vfs.WriteFile(fs, root+"/a.out", binary)
	})
}

// Clean removes build products (.o files and a.out), like make clean:
// a delete-heavy metadata workload.
func Clean(fs vfs.FileSystem, root string) (AppResult, error) {
	return timedApp(fs, "clean", func() error {
		var victims []string
		if err := vfs.WalkTree(fs, root, func(path string, st vfs.Stat) error {
			if st.Type == vfs.TypeReg &&
				(strings.HasSuffix(path, ".o") || strings.HasSuffix(path, "/a.out")) {
				victims = append(victims, path)
			}
			return nil
		}); err != nil {
			return err
		}
		for _, v := range victims {
			if err := vfs.Remove(fs, v); err != nil {
				return err
			}
		}
		return nil
	})
}

// RemoveTree deletes the whole tree (rm -r).
func RemoveTree(fs vfs.FileSystem, root string) (AppResult, error) {
	return timedApp(fs, "remove", func() error {
		return vfs.RemoveAll(fs, root)
	})
}
