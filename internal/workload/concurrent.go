package workload

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cffs/internal/disk"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

// Concurrent workload: N client goroutines issue create/read/overwrite/
// delete operations against a shared set of directories, racing on a
// deliberately small shared namespace. It is the stress workload behind
// the race-detector tests and the goroutine-scaling benchmark.
//
// The driver requires a file system that is safe for concurrent use —
// of the implementations in this repository that is C-FFS
// (internal/core); the ffs and lfs comparison baselines are
// single-threaded by design.

// ConcurrentConfig parameterizes the concurrent workload.
type ConcurrentConfig struct {
	Clients      int  // goroutines, default 4
	OpsPerClient int  // operations per goroutine, default 2000
	Dirs         int  // shared directories, default 8
	NamesPerDir  int  // shared file namespace per directory, default 32
	FileSize     int  // bytes, default 1024
	PctRead      int  // percent of ops that are reads, default 25; the rest split evenly
	Prepopulate  bool // create every (dir, name) before the timed run
	Seed         uint64
}

func (c *ConcurrentConfig) fill() {
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 2000
	}
	if c.Dirs == 0 {
		c.Dirs = 8
	}
	if c.NamesPerDir == 0 {
		c.NamesPerDir = 32
	}
	if c.FileSize == 0 {
		c.FileSize = 1024
	}
	if c.PctRead == 0 {
		c.PctRead = 25
	}
}

// ConcurrentResult reports one concurrent run.
type ConcurrentResult struct {
	Clients   int
	Ops       int64 // operations completed (including conflicted ones)
	Creates   int64
	Reads     int64
	Writes    int64
	Deletes   int64
	Conflicts int64 // operations that lost a namespace race (ErrExist/ErrNotExist)

	SimSeconds  float64 // simulated disk busy time
	WallSeconds float64 // host wall-clock time for the whole run
	Disk        disk.Stats
}

// OpsPerWallSec is the host-side throughput, the figure that scales (or
// fails to) with the client count.
func (r ConcurrentResult) OpsPerWallSec() float64 {
	if r.WallSeconds == 0 {
		return 0
	}
	return float64(r.Ops) / r.WallSeconds
}

// RunConcurrent executes the workload against an already-mounted, empty
// file system and syncs it afterwards. Operations that lose a namespace
// race to another client — creating a name that appeared, or reading or
// deleting one that vanished — are counted as conflicts, not failures;
// any other error aborts the run.
func RunConcurrent(fs vfs.FileSystem, cfg ConcurrentConfig) (ConcurrentResult, error) {
	cfg.fill()
	dev, err := deviceOf(fs)
	if err != nil {
		return ConcurrentResult{}, err
	}
	clk := dev.Disk().Clock()

	dirs := make([]vfs.Ino, cfg.Dirs)
	for i := range dirs {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("cdir%03d", i))
		if err != nil {
			return ConcurrentResult{}, fmt.Errorf("concurrent setup: %w", err)
		}
		dirs[i] = d
	}
	if cfg.Prepopulate {
		seed := pattern(cfg.Seed+7, cfg.FileSize)
		for _, dir := range dirs {
			for n := 0; n < cfg.NamesPerDir; n++ {
				ino, err := fs.Create(dir, fmt.Sprintf("f%03d", n))
				if err != nil {
					return ConcurrentResult{}, fmt.Errorf("concurrent prepopulate: %w", err)
				}
				if _, err := fs.WriteAt(ino, seed, 0); err != nil {
					return ConcurrentResult{}, err
				}
			}
		}
	}
	if err := fs.Sync(); err != nil {
		return ConcurrentResult{}, err
	}

	res := ConcurrentResult{Clients: cfg.Clients}
	simStart := clk.Now()
	stats0 := dev.Disk().Stats()
	wallStart := time.Now()

	var (
		ops, creates, reads, writes, deletes, conflicts atomic.Int64

		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	aborted := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	// conflict reports whether err is an expected casualty of racing
	// clients rather than a bug: the name appeared or vanished between
	// our decision and our operation, or (for embedded inodes) the
	// file's directory slot was recycled under a stale Ino.
	conflict := func(err error) bool {
		return errors.Is(err, vfs.ErrExist) || errors.Is(err, vfs.ErrNotExist) ||
			errors.Is(err, vfs.ErrInvalid)
	}

	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := sim.NewRNG(cfg.Seed + uint64(client)*0x9E3779B9)
			data := pattern(cfg.Seed+uint64(client), cfg.FileSize)
			buf := make([]byte, cfg.FileSize)
			for i := 0; i < cfg.OpsPerClient; i++ {
				if i%64 == 0 && aborted() {
					return
				}
				dir := dirs[rng.Intn(len(dirs))]
				name := fmt.Sprintf("f%03d", rng.Intn(cfg.NamesPerDir))
				ops.Add(1)
				// PctRead% reads; the remaining budget splits evenly
				// across create, overwrite and delete.
				var op int
				if r := rng.Intn(100); r < cfg.PctRead {
					op = 1
				} else {
					op = []int{0, 2, 3}[rng.Intn(3)]
				}
				switch op {
				case 0: // create (new name or racing loser)
					if _, err := fs.Create(dir, name); err != nil {
						if conflict(err) {
							conflicts.Add(1)
							continue
						}
						fail(fmt.Errorf("client %d create %s: %w", client, name, err))
						return
					}
					creates.Add(1)
				case 1: // read whatever is there
					ino, err := fs.Lookup(dir, name)
					if err == nil {
						_, err = fs.ReadAt(ino, buf, 0)
					}
					if err != nil {
						if conflict(err) {
							conflicts.Add(1)
							continue
						}
						fail(fmt.Errorf("client %d read %s: %w", client, name, err))
						return
					}
					reads.Add(1)
				case 2: // overwrite
					ino, err := fs.Lookup(dir, name)
					if err == nil {
						_, err = fs.WriteAt(ino, data, 0)
					}
					if err != nil {
						if conflict(err) {
							conflicts.Add(1)
							continue
						}
						fail(fmt.Errorf("client %d write %s: %w", client, name, err))
						return
					}
					writes.Add(1)
				case 3: // delete
					if err := fs.Unlink(dir, name); err != nil {
						if conflict(err) {
							conflicts.Add(1)
							continue
						}
						fail(fmt.Errorf("client %d delete %s: %w", client, name, err))
						return
					}
					deletes.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return ConcurrentResult{}, firstErr
	}
	if err := fs.Sync(); err != nil {
		return ConcurrentResult{}, err
	}

	res.Ops = ops.Load()
	res.Creates = creates.Load()
	res.Reads = reads.Load()
	res.Writes = writes.Load()
	res.Deletes = deletes.Load()
	res.Conflicts = conflicts.Load()
	res.SimSeconds = float64(clk.Now()-simStart) / 1e9
	res.WallSeconds = time.Since(wallStart).Seconds()
	res.Disk = dev.Disk().Stats().Sub(stats0)
	return res, nil
}

// VerifyAfterConcurrent walks the workload's directories after a run and
// checks that every surviving entry is well-formed: it can be Stat'ed,
// read to its full recorded size, and its link count is positive. The
// stress tests call this to show the racing clients left a consistent
// tree behind.
func VerifyAfterConcurrent(fs vfs.FileSystem, cfg ConcurrentConfig) (files int, err error) {
	cfg.fill()
	for i := 0; i < cfg.Dirs; i++ {
		dir, err := fs.Lookup(fs.Root(), fmt.Sprintf("cdir%03d", i))
		if err != nil {
			return files, fmt.Errorf("verify: dir %d: %w", i, err)
		}
		ents, err := fs.ReadDir(dir)
		if err != nil {
			return files, fmt.Errorf("verify: readdir %d: %w", i, err)
		}
		for _, e := range ents {
			if e.Name == "." || e.Name == ".." {
				continue
			}
			st, err := fs.Stat(e.Ino)
			if err != nil {
				return files, fmt.Errorf("verify: stat %s: %w", e.Name, err)
			}
			if st.Nlink == 0 {
				return files, fmt.Errorf("verify: %s has zero links", e.Name)
			}
			if st.Size > 0 {
				buf := make([]byte, st.Size)
				n, err := fs.ReadAt(e.Ino, buf, 0)
				if err != nil {
					return files, fmt.Errorf("verify: read %s: %w", e.Name, err)
				}
				if int64(n) != st.Size {
					return files, fmt.Errorf("verify: %s: read %d of %d bytes", e.Name, n, st.Size)
				}
			}
			files++
		}
	}
	return files, nil
}
