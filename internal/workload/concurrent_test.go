package workload

import (
	"testing"

	"cffs/internal/core"
)

func TestRunConcurrent(t *testing.T) {
	fs := newCFFS(t, core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed})
	cfg := ConcurrentConfig{
		Clients:      8,
		OpsPerClient: 400,
		Dirs:         4,
		NamesPerDir:  16,
		FileSize:     2048,
		Seed:         42,
	}
	res, err := RunConcurrent(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(cfg.Clients * cfg.OpsPerClient); res.Ops != want {
		t.Fatalf("completed %d ops, want %d", res.Ops, want)
	}
	done := res.Creates + res.Reads + res.Writes + res.Deletes + res.Conflicts
	if done != res.Ops {
		t.Fatalf("op accounting: %d counted vs %d issued", done, res.Ops)
	}
	if res.Conflicts == 0 {
		t.Fatal("shared-namespace run produced no conflicts; the clients are not actually racing")
	}
	if res.SimSeconds <= 0 || res.Disk.Requests == 0 {
		t.Fatalf("run did no simulated disk work: %+v", res)
	}
	files, err := VerifyAfterConcurrent(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d ops (%d conflicts), %d files survive verification", res.Ops, res.Conflicts, files)
}

// TestRunConcurrentSingleClient checks the degenerate single-goroutine
// case still drives all four op kinds and verifies cleanly — this is the
// baseline row of the scaling benchmark.
func TestRunConcurrentSingleClient(t *testing.T) {
	fs := newCFFS(t, core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed})
	cfg := ConcurrentConfig{Clients: 1, OpsPerClient: 600, Dirs: 2, Seed: 7}
	res, err := RunConcurrent(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Creates == 0 || res.Reads == 0 || res.Writes == 0 || res.Deletes == 0 {
		t.Fatalf("op mix incomplete: %+v", res)
	}
	if _, err := VerifyAfterConcurrent(fs, cfg); err != nil {
		t.Fatal(err)
	}
}
