package core

import (
	"fmt"
	"testing"

	"cffs/internal/vfs"
)

// Crash-consistency tests: the point of ordered synchronous metadata
// writes (and of embedded inodes halving them) is that a crash at any
// moment leaves a state fsck can repair, with every completed create
// still named and every completed delete still gone. A crash is
// simulated by abandoning the file system object — its delayed writes
// (data, bitmaps, group descriptors) die with the cache; only the
// ordered writes reached the disk.

func TestCrashAfterSyncCreates(t *testing.T) {
	for _, embed := range []bool{true, false} {
		embed := embed
		t.Run(fmt.Sprintf("embed=%v", embed), func(t *testing.T) {
			fs := newCFFS(t, Options{EmbedInodes: embed, Grouping: true, Mode: ModeSync})
			dev := fs.Device()

			// Durable baseline: a small tree, fully synced.
			if _, err := vfs.MkdirAll(fs, "/base"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := vfs.WriteFile(fs, fmt.Sprintf("/base/old%02d", i), make([]byte, 2048)); err != nil {
					t.Fatal(err)
				}
			}
			if err := fs.Sync(); err != nil {
				t.Fatal(err)
			}

			// Unsynced activity: creates and deletes whose ordered writes
			// alone must make them durable. Enough creates to force
			// directory growth across block boundaries.
			base, err := vfs.Walk(fs, "/base")
			if err != nil {
				t.Fatal(err)
			}
			var created []string
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("new%03d", i)
				ino, err := fs.Create(base, name)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := fs.WriteAt(ino, make([]byte, 1024), 0); err != nil {
					t.Fatal(err)
				}
				created = append(created, name)
			}
			var deleted []string
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("old%02d", i)
				if err := fs.Unlink(base, name); err != nil {
					t.Fatal(err)
				}
				deleted = append(deleted, name)
			}
			// CRASH: fs dropped, dirty cache lost. Only WriteSync data is
			// on the device.

			// Recover: repair allocation state from the namespace walk.
			if _, err := Check(dev, true); err != nil {
				t.Fatal(err)
			}
			rep, err := Check(dev, false)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				max := len(rep.Problems)
				if max > 5 {
					max = 5
				}
				t.Fatalf("image not repairable after crash: %v", rep.Problems[:max])
			}

			// Remount and check the durability contract.
			fs2, err := Mount(dev, Options{Mode: ModeSync})
			if err != nil {
				t.Fatal(err)
			}
			base2, err := vfs.Walk(fs2, "/base")
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range created {
				if _, err := fs2.Lookup(base2, name); err != nil {
					t.Errorf("created file %s lost in crash: %v", name, err)
				}
			}
			for _, name := range deleted {
				if _, err := fs2.Lookup(base2, name); err == nil {
					t.Errorf("deleted file %s resurrected by crash", name)
				}
			}
			// Survivors of the durable baseline keep their contents.
			for i := 5; i < 10; i++ {
				data, err := vfs.ReadFile(fs2, fmt.Sprintf("/base/old%02d", i))
				if err != nil || len(data) != 2048 {
					t.Errorf("synced file old%02d damaged: %d bytes, %v", i, len(data), err)
				}
			}
			// The recovered file system must be fully usable.
			if err := vfs.WriteFile(fs2, "/base/post-crash", []byte("alive")); err != nil {
				t.Fatal(err)
			}
			if err := fs2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A crash in delayed (soft-updates-emulation) mode loses recent
// namespace changes, but repair must still produce a consistent image
// containing exactly the state of the last sync.
func TestCrashDelayedModeRollsBackToSync(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	dev := fs.Device()
	if err := vfs.WriteFile(fs, "/durable", []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/volatile", []byte("not synced")); err != nil {
		t.Fatal(err)
	}
	// CRASH without sync.
	if _, err := Check(dev, true); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("delayed-mode crash not repairable: %v", rep.Problems)
	}
	fs2, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if data, err := vfs.ReadFile(fs2, "/durable"); err != nil || string(data) != "synced" {
		t.Fatalf("synced file lost: %q, %v", data, err)
	}
	// The unsynced file may or may not have survived; what matters is
	// that the image is consistent either way (checked above).
}
