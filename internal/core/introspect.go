package core

import (
	"math/bits"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Layout introspection: a read-only walker over a mounted image that
// measures the on-disk properties the paper's mechanisms live and die
// by — how full and how contiguous each allocation group is, how much
// of the namespace actually has its inodes embedded, and how shattered
// the free space has become (the aging effect that degrades explicit
// grouping). The walker takes the FS lock shared and mutates nothing;
// it is the engine behind cmd/fsstat, `cfsh inspect`, and the
// internal/health gauges.

// FreeSpanBuckets labels the AGLayout.FreeSpans histogram: contiguous
// free runs by length, the last bucket being runs long enough to hold a
// whole group extent.
var FreeSpanBuckets = [...]string{"1", "2", "3-4", "5-8", "9-15", "16+"}

// spanBucket maps a free-run length to its FreeSpans bucket.
func spanBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n < GroupBlocks:
		return 4
	}
	return 5
}

// AGLayout is the measured state of one allocation group.
type AGLayout struct {
	AG         int `json:"ag"`
	DataBlocks int `json:"data_blocks"` // allocatable blocks (header excluded)
	UsedBlocks int `json:"used_blocks"`

	// Explicit-grouping state, from the descriptor table.
	GroupsClaimed int `json:"groups_claimed"` // extents with an owner
	GroupsFull    int `json:"groups_full"`
	GroupedBlocks int `json:"grouped_blocks"` // blocks under group Used bits

	// Free-space shape. GroupableFree counts free blocks inside fully
	// free aligned extents — the supply explicit grouping draws on; free
	// space outside it can only serve scattered allocations.
	GroupableFree int                       `json:"groupable_free"`
	FreeSpans     [len(FreeSpanBuckets)]int `json:"free_spans"`
	LongestFree   int                       `json:"longest_free"`

	// Frag is 1 - GroupableFree/free: 0 when every free block could
	// start a group, approaching 1 as churn shatters the free space.
	Frag float64 `json:"frag"`
}

// LayoutReport is the full introspection result.
type LayoutReport struct {
	Config      string     `json:"config"` // Options.Config() name
	TotalBlocks int64      `json:"total_blocks"`
	AGs         []AGLayout `json:"ags"`

	// Namespace shape, from a walk rooted at RootIno.
	Dirs      int `json:"dirs"`
	Files     int `json:"files"`
	DirBlocks int `json:"dir_blocks"`

	// Directory-slot accounting. SlotsUsed includes "." and "..";
	// EmbeddedInodes and ExternalEntries partition the remaining live
	// entries by where their inode lives.
	SlotsTotal      int `json:"slots_total"`
	SlotsUsed       int `json:"slots_used"`
	EmbeddedInodes  int `json:"embedded_inodes"`
	ExternalEntries int `json:"external_entries"`

	// Inode-file occupancy (externalized inodes).
	InodeFileBlocks int `json:"inode_file_blocks"`
	ExtSlotsLive    int `json:"ext_slots_live"`
	ExtSlotsTotal   int `json:"ext_slots_total"`
}

// Used totals the allocated data blocks across AGs.
func (r *LayoutReport) Used() int {
	var n int
	for i := range r.AGs {
		n += r.AGs[i].UsedBlocks
	}
	return n
}

// Free totals the free data blocks across AGs.
func (r *LayoutReport) Free() int {
	var n int
	for i := range r.AGs {
		n += r.AGs[i].DataBlocks - r.AGs[i].UsedBlocks
	}
	return n
}

// FragScore is the free-space-weighted mean of the per-AG fragmentation
// scores, in [0,1].
func (r *LayoutReport) FragScore() float64 {
	var frag, free float64
	for i := range r.AGs {
		f := float64(r.AGs[i].DataBlocks - r.AGs[i].UsedBlocks)
		frag += r.AGs[i].Frag * f
		free += f
	}
	if free == 0 {
		return 0
	}
	return frag / free
}

// EmbedUtil is the fraction of live named entries (excluding "." and
// "..") whose inode is embedded in the directory, in [0,1].
func (r *LayoutReport) EmbedUtil() float64 {
	n := r.EmbeddedInodes + r.ExternalEntries
	if n == 0 {
		return 0
	}
	return float64(r.EmbeddedInodes) / float64(n)
}

// ScanLayout measures the mounted image. It holds the FS lock shared
// for the whole scan, so the report is a consistent point-in-time view;
// cached and on-disk state agree because the scan reads through the
// buffer cache.
func (fs *FS) ScanLayout() (LayoutReport, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.scanLayout()
}

func (fs *FS) scanLayout() (LayoutReport, error) {
	r := LayoutReport{
		Config:      fs.opts.Config(),
		TotalBlocks: fs.sb.NBlocks,
		AGs:         make([]AGLayout, fs.sb.NAG),
	}
	for ag := 0; ag < fs.sb.NAG; ag++ {
		if err := fs.scanAG(ag, &r.AGs[ag]); err != nil {
			return r, err
		}
	}
	if err := fs.walkLayout(&r, RootIno); err != nil {
		return r, err
	}
	if err := fs.scanInodeFile(&r); err != nil {
		return r, err
	}
	return r, nil
}

// scanAG fills one AGLayout from the group's header block.
func (fs *FS) scanAG(ag int, a *AGLayout) error {
	hdr, err := fs.c.Read(fs.sb.agStart(ag))
	if err != nil {
		return err
	}
	defer hdr.Release()
	a.AG = ag
	a.DataBlocks = fs.sb.AGBlocks - 1
	bm := fs.blockBitmap(hdr)

	run := 0
	endRun := func() {
		if run > 0 {
			a.FreeSpans[spanBucket(run)]++
			if run > a.LongestFree {
				a.LongestFree = run
			}
			run = 0
		}
	}
	for idx := 1; idx < fs.sb.AGBlocks; idx++ {
		if bm.IsSet(idx) {
			a.UsedBlocks++
			endRun()
		} else {
			run++
		}
	}
	endRun()

	baseOff := int(fs.sb.groupBase(ag) - fs.sb.agStart(ag))
	for k := 0; k < fs.sb.groupsPerAG(); k++ {
		d := readDesc(hdr, k)
		if d.Owner != 0 {
			a.GroupsClaimed++
			if d.full() {
				a.GroupsFull++
			}
			a.GroupedBlocks += bits.OnesCount16(d.Used)
		}
		free := true
		for i := 0; i < GroupBlocks; i++ {
			if bm.IsSet(baseOff + k*GroupBlocks + i) {
				free = false
				break
			}
		}
		if free {
			a.GroupableFree += GroupBlocks
		}
	}
	if free := a.DataBlocks - a.UsedBlocks; free > 0 {
		a.Frag = 1 - float64(a.GroupableFree)/float64(free)
	}
	return nil
}

// walkLayout recurses through the namespace accumulating directory and
// slot statistics.
func (fs *FS) walkLayout(r *LayoutReport, dir vfs.Ino) error {
	din, err := fs.dirInode(dir)
	if err != nil {
		return err
	}
	nblocks := int(din.Size / blockio.BlockSize)
	r.Dirs++
	r.DirBlocks += nblocks
	r.SlotsTotal += nblocks * slotsPerBlock
	var subdirs []vfs.Ino
	_, err = fs.forEachSlot(&din, dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if !used {
			return false
		}
		r.SlotsUsed++
		if e.name == "." || e.name == ".." {
			return false
		}
		if e.embedded {
			r.EmbeddedInodes++
		} else {
			r.ExternalEntries++
		}
		if e.ftype == vfs.TypeDir {
			subdirs = append(subdirs, e.ino())
		} else {
			r.Files++
		}
		return false
	})
	if err != nil {
		return err
	}
	for _, d := range subdirs {
		if err := fs.walkLayout(r, d); err != nil {
			return err
		}
	}
	return nil
}

// scanInodeFile counts live externalized inodes.
func (fs *FS) scanInodeFile(r *LayoutReport) error {
	r.InodeFileBlocks = fs.sb.ExtBlocks
	r.ExtSlotsTotal = fs.sb.ExtBlocks * extInosPerBlock
	for fb := 0; fb < fs.sb.ExtBlocks; fb++ {
		phys, _, err := fs.extLoc(fb * extInosPerBlock)
		if err != nil {
			return err
		}
		b, err := fs.c.Read(phys)
		if err != nil {
			return err
		}
		for s := 0; s < extInosPerBlock; s++ {
			var in layout.Inode
			in.Decode(b.Data[s*layout.InodeSize:])
			if in.Alive() {
				r.ExtSlotsLive++
			}
		}
		b.Release()
	}
	return nil
}
