package core

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Inode identification. An Ino encodes where the inode physically lives,
// removing the physical level of indirection while keeping the logical
// one (the paper's Section 3):
//
//   - external inodes (directories, multi-link files, and — with
//     embedding disabled — everything): Ino = slot index in the inode
//     file + 1;
//   - embedded inodes: the top bit set, then the directory data block's
//     physical number and the 256-byte entry slot within it:
//     Ino = embedFlag | block<<4 | slot.

const embedFlag = uint64(1) << 63

// extInosPerBlock inodes per inode-file block.
const extInosPerBlock = blockio.BlockSize / layout.InodeSize

// maxExtInodes is the inode-map capacity.
const maxExtInodes = mapBlocks * layout.PtrsPerBlock * extInosPerBlock

func embedIno(block int64, slot int) vfs.Ino {
	return vfs.Ino(embedFlag | uint64(block)<<4 | uint64(slot))
}

func isEmbedded(ino vfs.Ino) bool { return uint64(ino)&embedFlag != 0 }

func embedLoc(ino vfs.Ino) (block int64, slot int) {
	v := uint64(ino) &^ embedFlag
	return int64(v >> 4), int(v & 15)
}

func extIdx(ino vfs.Ino) int { return int(ino) - 1 }

// extLoc resolves an external inode index to its inode-file block,
// reading the inode map. It returns the physical block and the slot.
func (fs *FS) extLoc(idx int) (int64, int, error) {
	if idx < 0 || idx >= fs.sb.ExtBlocks*extInosPerBlock {
		return 0, 0, fmt.Errorf("cffs: external inode %d out of range: %w", idx, vfs.ErrNotExist)
	}
	fileBlk := idx / extInosPerBlock
	mapBlk := int64(1 + fileBlk/layout.PtrsPerBlock)
	mb, err := fs.c.Read(mapBlk)
	if err != nil {
		return 0, 0, err
	}
	phys := leBytes{mb.Data}.u32((fileBlk % layout.PtrsPerBlock) * 4)
	mb.Release()
	if phys == 0 {
		return 0, 0, fmt.Errorf("cffs: inode-file block %d unmapped: %w", fileBlk, vfs.ErrNotExist)
	}
	return int64(phys), idx % extInosPerBlock, nil
}

// allocExtInode claims a free external inode slot, growing the inode
// file when needed. The inode file grows but never shrinks, and its
// blocks never move, like the paper's externalized inode structure.
//
// Placement follows FFS policy: a slot in an inode-file block that lives
// in prefAG is preferred (inodes near the directory that names them),
// then any free slot, then a freshly allocated block in prefAG. Without
// this, all external inodes would cluster at the front of the disk and
// the conventional configuration would see unrealistically cheap
// metadata scans.
func (fs *FS) allocExtInode(prefAG int) (int, error) {
	if idx := fs.findExtSlot(prefAG); idx >= 0 {
		return idx, nil
	}
	// No slot near the directory: grow a new inode-file block there (the
	// FFS-like choice — an inode block per neighborhood) before settling
	// for a distant slot.
	if fs.sb.ExtBlocks >= mapBlocks*layout.PtrsPerBlock {
		if idx := fs.findExtSlot(-1); idx >= 0 {
			return idx, nil
		}
		return 0, fmt.Errorf("cffs: %w: inode map full", vfs.ErrNoSpace)
	}
	phys, err := fs.allocScattered(prefAG, vfs.Ino(fs.sb.ExtBlocks+7))
	if err != nil {
		return 0, err
	}
	b, err := fs.c.Alloc(phys)
	if err != nil {
		return 0, err
	}
	for i := range b.Data {
		b.Data[i] = 0
	}
	// Ordered growth under synchronous metadata: the zeroed inode block
	// and the map pointer reaching it must be durable before any inode
	// written into the block, or a crash strands that inode.
	if fs.opts.Mode == ModeSync {
		if err := fs.c.WriteSync(b); err != nil {
			b.Release()
			return 0, err
		}
	} else {
		fs.c.MarkDirty(b)
	}
	b.Release()
	fileBlk := fs.sb.ExtBlocks
	mapBlk := int64(1 + fileBlk/layout.PtrsPerBlock)
	mb, err := fs.c.Read(mapBlk)
	if err != nil {
		return 0, err
	}
	leBytes{mb.Data}.pu32((fileBlk%layout.PtrsPerBlock)*4, uint32(phys))
	if err := fs.syncMeta(mb); err != nil {
		mb.Release()
		return 0, err
	}
	mb.Release()
	fs.sb.ExtBlocks++
	fs.sbDirty = true
	if fs.opts.Mode == ModeSync {
		// The superblock's inode-file length is part of the reachability
		// chain; complete the ordered growth.
		sbBuf, err := fs.c.Read(0)
		if err != nil {
			return 0, err
		}
		fs.sb.encode(sbBuf.Data)
		fs.sbDirty = false
		if err := fs.c.WriteSync(sbBuf); err != nil {
			sbBuf.Release()
			return 0, err
		}
		sbBuf.Release()
	}
	fs.extBlkPhys = append(fs.extBlkPhys, phys)
	for len(fs.extFree)*64 < fs.sb.ExtBlocks*extInosPerBlock {
		fs.extFree = append(fs.extFree, 0)
	}
	idx := fileBlk * extInosPerBlock
	fs.extFree[idx/64] |= 1 << (idx % 64)
	return idx, nil
}

// findExtSlot returns a free slot in an inode-file block residing in ag
// (or in any block when ag < 0), claiming it; -1 if none.
func (fs *FS) findExtSlot(ag int) int {
	for fb := 0; fb < fs.sb.ExtBlocks; fb++ {
		if ag >= 0 && fs.agOf(fs.extBlkPhys[fb]) != ag {
			continue
		}
		base := fb * extInosPerBlock
		for s := 0; s < extInosPerBlock; s++ {
			idx := base + s
			if fs.extFree[idx/64]&(1<<(idx%64)) == 0 {
				fs.extFree[idx/64] |= 1 << (idx % 64)
				return idx
			}
		}
	}
	return -1
}

// freeExtInode releases a slot in the in-memory map (the on-disk inode
// is zeroed by the caller, which is what mount rescans).
func (fs *FS) freeExtInode(idx int) {
	fs.extFree[idx/64] &^= 1 << (idx % 64)
}

// scanExtInodes rebuilds the in-memory free map and the inode-file
// block locations from the inode file.
func (fs *FS) scanExtInodes() error {
	n := fs.sb.ExtBlocks * extInosPerBlock
	fs.extFree = make([]uint64, (n+63)/64)
	fs.extBlkPhys = fs.extBlkPhys[:0]
	for idx := 0; idx < n; idx += extInosPerBlock {
		phys, _, err := fs.extLoc(idx)
		if err != nil {
			return err
		}
		fs.extBlkPhys = append(fs.extBlkPhys, phys)
		b, err := fs.c.Read(phys)
		if err != nil {
			return err
		}
		for s := 0; s < extInosPerBlock; s++ {
			var in layout.Inode
			in.Decode(b.Data[s*layout.InodeSize:])
			if in.Alive() {
				fs.extFree[(idx+s)/64] |= 1 << ((idx + s) % 64)
			}
		}
		b.Release()
	}
	return nil
}

// inodeBuf returns the pinned buffer and byte offset holding ino's
// on-disk bytes, verifying an embedded ino still names a live entry.
func (fs *FS) inodeBuf(ino vfs.Ino) (*cache.Buf, int, error) {
	if ino == 0 {
		return nil, 0, vfs.ErrInvalid
	}
	if isEmbedded(ino) {
		block, slot := embedLoc(ino)
		if block <= 0 || block >= fs.sb.NBlocks || slot >= slotsPerBlock {
			return nil, 0, fmt.Errorf("cffs: embedded ino %#x: %w", uint64(ino), vfs.ErrInvalid)
		}
		b, err := fs.c.Read(block)
		if err != nil {
			return nil, 0, err
		}
		off := slot * slotSize
		if !slotEmbedded(b.Data, off) {
			b.Release()
			return nil, 0, fmt.Errorf("cffs: stale embedded ino %#x: %w", uint64(ino), vfs.ErrNotExist)
		}
		fs.mEmbHits.Inc()
		return b, off + slotInodeOff, nil
	}
	phys, slot, err := fs.extLoc(extIdx(ino))
	if err != nil {
		return nil, 0, err
	}
	b, err := fs.c.Read(phys)
	if err != nil {
		return nil, 0, err
	}
	fs.mExtReads.Inc()
	return b, slot * layout.InodeSize, nil
}

// getInode reads an inode.
func (fs *FS) getInode(ino vfs.Ino) (layout.Inode, error) {
	var in layout.Inode
	b, off, err := fs.inodeBuf(ino)
	if err != nil {
		return in, err
	}
	in.Decode(b.Data[off:])
	b.Release()
	return in, nil
}

// getLiveInode is getInode plus an existence check.
func (fs *FS) getLiveInode(ino vfs.Ino) (layout.Inode, error) {
	in, err := fs.getInode(ino)
	if err != nil {
		return in, err
	}
	if !in.Alive() {
		return in, fmt.Errorf("cffs: inode %#x: %w", uint64(ino), vfs.ErrNotExist)
	}
	return in, nil
}

// putInode writes an inode back; sync forces the ordered write in
// ModeSync. For an embedded inode this dirties (or synchronously
// rewrites) the directory block itself — the name and inode always
// travel together.
func (fs *FS) putInode(ino vfs.Ino, in *layout.Inode, sync bool) error {
	b, off, err := fs.inodeBuf(ino)
	if err != nil {
		return err
	}
	in.Encode(b.Data[off:])
	if sync {
		err = fs.syncMeta(b)
	} else {
		fs.c.MarkDirty(b)
	}
	b.Release()
	return err
}
