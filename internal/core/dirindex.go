package core

import (
	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Directory hash index (see internal/layout/dirindex.go for the block
// format). The slot array stays authoritative; the index is a redundant
// acceleration structure so dirLookup, dirFindFree, and dirIsEmpty on
// big directories become O(1) probes instead of forEachSlot scans.
//
// Invariants and trust:
//
//   - Index blocks are written lazily (MarkDirty, never ordered), even
//     in ModeSync. Correctness never depends on them being durable.
//   - The superblock carries an "unclean" flag, set by the first
//     mutation of a mount and cleared by Close (and by a successful
//     fsck repair). An index found on disk is trusted only when the
//     previous mount ended cleanly; otherwise reads fall back to the
//     linear scan and the first mutation of that directory rebuilds the
//     index from its slots before maintaining it.
//   - fsck verifies every index against the slot array (exact
//     bijection) and repairs by dropping the root pointer and
//     rebuilding — the structure is redundant, so repair is always
//     possible.
//
// Index blocks live outside the directory's bmap tree (truncate must
// not see them), allocated group-adjacent via the scattered allocator
// with the directory's home AG as preference, so the grouping story of
// the paper is preserved: a directory's names, embedded inodes, and
// index stay physically close.

// dirIndexMinBlocks is the default directory size, in blocks, above
// which an index is built (Options.DirIndexBlocks overrides). The
// floor matters: a directory this small is normally cache-resident, so
// its linear scan costs no disk requests at all, while the index adds
// cold root/bucket probes and maintenance writes — pure overhead. At
// eight blocks (128 slots) the linear scan starts to rival a cold
// 3-probe index chain even when resident, and beyond it the index
// wins outright.
const dirIndexMinBlocks = 8

// idxLoc packs a slot position the way index entries store it.
func idxLoc(block int64, slot int) uint32 { return uint32(block)<<4 | uint32(slot) }

func idxLocBlock(loc uint32) int64 { return int64(loc >> 4) }
func idxLocSlot(loc uint32) int    { return int(loc & (slotsPerBlock - 1)) }

// dirIndexThreshold is the configured block-count threshold; <0 means
// indexing is disabled.
func (fs *FS) dirIndexThreshold() int {
	switch {
	case fs.opts.DirIndexBlocks > 0:
		return fs.opts.DirIndexBlocks
	case fs.opts.DirIndexBlocks == 0:
		return dirIndexMinBlocks
	default:
		return -1
	}
}

// idxTrusted reports whether dir's on-disk index may be believed: the
// previous mount ended cleanly, or this mount already rebuilt it.
// Safe under fs.mu held shared.
func (fs *FS) idxTrusted(dir vfs.Ino) bool {
	if fs.wasClean {
		return true
	}
	fs.idxMu.Lock()
	_, ok := fs.idxFresh[dir]
	fs.idxMu.Unlock()
	return ok
}

func (fs *FS) idxMarkFresh(dir vfs.Ino) {
	if fs.wasClean {
		return
	}
	fs.idxMu.Lock()
	if fs.idxFresh == nil {
		fs.idxFresh = make(map[vfs.Ino]struct{})
	}
	fs.idxFresh[dir] = struct{}{}
	fs.idxMu.Unlock()
}

func (fs *FS) idxForget(dir vfs.Ino) {
	if fs.wasClean {
		return
	}
	fs.idxMu.Lock()
	delete(fs.idxFresh, dir)
	fs.idxMu.Unlock()
}

// readDirBlock reads one directory (or index) block under the same
// grouped-read policy forEachSlot uses.
func (fs *FS) readDirBlock(phys int64) (*cache.Buf, error) {
	if fs.groupReadFan() > 0 {
		return fs.readBlockGrouped(phys)
	}
	return fs.c.Read(phys)
}

// idxValidPhys bounds-checks a physical block number read from an index
// structure before it is dereferenced.
func (fs *FS) idxValidPhys(phys int64) bool {
	return phys > int64(mapBlocks) && phys < fs.sb.NBlocks
}

// idxLookup probes dir's index for name. usable=false means the index
// was structurally implausible and the caller must fall back to the
// linear scan (and must not report the name missing). On found, the
// returned buffer holds the slot block, pinned.
func (fs *FS) idxLookup(in *layout.Inode, dir vfs.Ino, name string) (b *cache.Buf, e slotEntry, found, usable bool, err error) {
	rootPhys := int64(in.DirIndexRootPtr())
	if !fs.idxValidPhys(rootPhys) {
		return nil, slotEntry{}, false, false, nil
	}
	rb, err := fs.c.Read(rootPhys)
	if err != nil {
		return nil, slotEntry{}, false, false, err
	}
	root, ok := layout.DecodeDirIndexRoot(rb.Data)
	if !ok {
		rb.Release()
		return nil, slotEntry{}, false, false, nil
	}
	h := layout.DirNameHash(name)
	bkPhys := int64(layout.DirIndexBucketPtr(rb.Data, int(h%root.NBuckets)))
	rb.Release()
	if !fs.idxValidPhys(bkPhys) {
		return nil, slotEntry{}, false, false, nil
	}
	bb, err := fs.c.Read(bkPhys)
	if err != nil {
		return nil, slotEntry{}, false, false, err
	}
	fs.mIdxProbes.Inc()
	for k := 0; k < layout.DirIndexBucketEntries; k++ {
		eh, loc := layout.DirIndexEntry(bb.Data, k)
		if loc == 0 || eh != h {
			continue
		}
		phys := idxLocBlock(loc)
		if !fs.idxValidPhys(phys) {
			bb.Release()
			return nil, slotEntry{}, false, false, nil
		}
		sb, err := fs.readDirBlock(phys)
		if err != nil {
			bb.Release()
			return nil, slotEntry{}, false, false, err
		}
		off := idxLocSlot(loc) * slotSize
		if slotUsed(sb.Data, off) {
			se := readSlot(sb.Data, off, phys, idxLocSlot(loc))
			if se.name == name {
				bb.Release()
				return sb, se, true, true, nil
			}
		}
		sb.Release()
	}
	bb.Release()
	return nil, slotEntry{}, false, true, nil
}

// idxEmpty answers dirIsEmpty from the index. ok=false means fall back
// to the scan.
func (fs *FS) idxEmpty(in *layout.Inode) (empty, ok bool, err error) {
	rootPhys := int64(in.DirIndexRootPtr())
	if !fs.idxValidPhys(rootPhys) {
		return false, false, nil
	}
	rb, err := fs.c.Read(rootPhys)
	if err != nil {
		return false, false, err
	}
	root, decOK := layout.DecodeDirIndexRoot(rb.Data)
	rb.Release()
	if !decOK {
		return false, false, nil
	}
	return root.NEntries <= 2, true, nil
}

// idxFindFree locates a free slot using the index: when the directory
// is slot-full it says so without any scan (grow=true), otherwise it
// next-fits from the root's free hint. ok=false means the index was
// unusable and the caller scans linearly.
func (fs *FS) idxFindFree(in *layout.Inode, dir vfs.Ino) (b *cache.Buf, e slotEntry, grow, ok bool, err error) {
	rootPhys := int64(in.DirIndexRootPtr())
	if !fs.idxValidPhys(rootPhys) {
		return nil, slotEntry{}, false, false, nil
	}
	rb, err := fs.c.Read(rootPhys)
	if err != nil {
		return nil, slotEntry{}, false, false, err
	}
	root, decOK := layout.DecodeDirIndexRoot(rb.Data)
	if !decOK {
		rb.Release()
		return nil, slotEntry{}, false, false, nil
	}
	nblocks := in.Size / blockio.BlockSize
	if int64(root.NEntries) >= nblocks*slotsPerBlock {
		rb.Release()
		return nil, slotEntry{}, true, true, nil
	}
	// Next-fit: start at the hinted logical block, wrap around.
	startLB := int64(0)
	if root.FreeHint != 0 {
		if lb, okLB := fs.idxHintLB(in, dir, root.FreeHint, nblocks); okLB {
			startLB = lb
		}
	}
	rb.Release()
	for i := int64(0); i < nblocks; i++ {
		lb := (startLB + i) % nblocks
		phys, err := fs.bmap(in, dir, lb, false)
		if err != nil {
			return nil, slotEntry{}, false, false, err
		}
		if phys == 0 {
			return nil, slotEntry{}, false, false, nil
		}
		sb, err := fs.readDirBlock(phys)
		if err != nil {
			return nil, slotEntry{}, false, false, err
		}
		for s := 0; s < slotsPerBlock; s++ {
			if !slotUsed(sb.Data, s*slotSize) {
				return sb, slotEntry{block: phys, slot: s}, false, true, nil
			}
		}
		sb.Release()
	}
	// The entry count promised a free slot but none was found: the
	// index is inconsistent. Fall back to the linear path.
	return nil, slotEntry{}, false, false, nil
}

// idxHintLB maps a free-hint loc back to a logical block of the
// directory, so the next-fit scan can start there.
func (fs *FS) idxHintLB(in *layout.Inode, dir vfs.Ino, hint uint32, nblocks int64) (int64, bool) {
	want := idxLocBlock(hint)
	for lb := int64(0); lb < nblocks; lb++ {
		phys, err := fs.bmap(in, dir, lb, false)
		if err != nil || phys == 0 {
			return 0, false
		}
		if phys == want {
			return lb, true
		}
	}
	return 0, false
}

// idxSetHint records loc as a likely-free slot in the root (best
// effort, delayed write).
func (fs *FS) idxSetHint(in *layout.Inode, loc uint32) {
	rootPhys := int64(in.DirIndexRootPtr())
	if !fs.idxValidPhys(rootPhys) {
		return
	}
	rb, err := fs.c.Read(rootPhys)
	if err != nil {
		return
	}
	if root, ok := layout.DecodeDirIndexRoot(rb.Data); ok {
		root.FreeHint = loc
		root.Encode(rb.Data)
		fs.c.MarkDirty(rb)
	}
	rb.Release()
}

// idxInsert records a just-written slot in dir's index. On an untrusted
// index it rebuilds instead (the slot array already contains the new
// entry). A full bucket triggers a rebuild with more buckets; at the
// bucket ceiling the index is dropped and the directory goes linear.
// The write lock is held.
func (fs *FS) idxInsert(in *layout.Inode, dir vfs.Ino, name string, loc uint32) error {
	rootPhys := int64(in.DirIndexRootPtr())
	if rootPhys == 0 {
		return nil
	}
	if !fs.idxTrusted(dir) {
		return fs.idxRebuild(in, dir, 0)
	}
	if !fs.idxValidPhys(rootPhys) {
		return fs.idxRebuild(in, dir, 0)
	}
	rb, err := fs.c.Read(rootPhys)
	if err != nil {
		return err
	}
	root, ok := layout.DecodeDirIndexRoot(rb.Data)
	if !ok {
		rb.Release()
		return fs.idxRebuild(in, dir, 0)
	}
	h := layout.DirNameHash(name)
	bkPhys := int64(layout.DirIndexBucketPtr(rb.Data, int(h%root.NBuckets)))
	if !fs.idxValidPhys(bkPhys) {
		rb.Release()
		return fs.idxRebuild(in, dir, 0)
	}
	bb, err := fs.c.Read(bkPhys)
	if err != nil {
		rb.Release()
		return err
	}
	for k := 0; k < layout.DirIndexBucketEntries; k++ {
		if _, eloc := layout.DirIndexEntry(bb.Data, k); eloc == 0 {
			layout.SetDirIndexEntry(bb.Data, k, h, loc)
			fs.c.MarkDirty(bb)
			bb.Release()
			root.NEntries++
			root.Encode(rb.Data)
			fs.c.MarkDirty(rb)
			rb.Release()
			return nil
		}
	}
	bb.Release()
	rb.Release()
	// Bucket overflow: rebuild wider, or drop at the ceiling.
	if int(root.NBuckets)*2 > layout.DirIndexMaxBuckets {
		return fs.idxDrop(in, dir, true)
	}
	return fs.idxRebuild(in, dir, int(root.NBuckets)*2)
}

// idxRemove drops a just-cleared slot from dir's index. On an untrusted
// index it rebuilds from the (already updated) slot array instead. The
// write lock is held.
func (fs *FS) idxRemove(in *layout.Inode, dir vfs.Ino, name string, loc uint32) error {
	rootPhys := int64(in.DirIndexRootPtr())
	if rootPhys == 0 {
		return nil
	}
	if !fs.idxTrusted(dir) {
		return fs.idxRebuild(in, dir, 0)
	}
	if !fs.idxValidPhys(rootPhys) {
		return fs.idxRebuild(in, dir, 0)
	}
	rb, err := fs.c.Read(rootPhys)
	if err != nil {
		return err
	}
	root, ok := layout.DecodeDirIndexRoot(rb.Data)
	if !ok {
		rb.Release()
		return fs.idxRebuild(in, dir, 0)
	}
	h := layout.DirNameHash(name)
	bkPhys := int64(layout.DirIndexBucketPtr(rb.Data, int(h%root.NBuckets)))
	if !fs.idxValidPhys(bkPhys) {
		rb.Release()
		return fs.idxRebuild(in, dir, 0)
	}
	bb, err := fs.c.Read(bkPhys)
	if err != nil {
		rb.Release()
		return err
	}
	for k := 0; k < layout.DirIndexBucketEntries; k++ {
		if eh, eloc := layout.DirIndexEntry(bb.Data, k); eloc == loc && eh == h {
			layout.SetDirIndexEntry(bb.Data, k, 0, 0)
			fs.c.MarkDirty(bb)
			bb.Release()
			root.NEntries--
			root.FreeHint = loc
			root.Encode(rb.Data)
			fs.c.MarkDirty(rb)
			rb.Release()
			return nil
		}
	}
	bb.Release()
	rb.Release()
	// The entry should have been there: the index lost sync. Rebuild.
	return fs.idxRebuild(in, dir, 0)
}

// idxMaybeBuild builds an index for a directory that just crossed the
// size threshold (or, after an unclean mount, re-earns trust on its
// first mutation). Best effort: allocation failure leaves the
// directory linear. The write lock is held.
func (fs *FS) idxMaybeBuild(in *layout.Inode, dir vfs.Ino) error {
	thr := fs.dirIndexThreshold()
	if thr < 0 || in.DirIndexRootPtr() != 0 {
		return nil
	}
	if in.Size/blockio.BlockSize <= int64(thr) {
		return nil
	}
	return fs.idxRebuild(in, dir, 0)
}

// idxRebuild (re)builds dir's index from its slot array: allocate fresh
// blocks, fill them, swing the inode's root pointer. When the old index
// was trusted its blocks are freed; an untrusted old index's pointers
// cannot be believed, so its blocks are left for fsck to reclaim.
// minBuckets widens the table beyond the size-derived default (bucket
// overflow escalation). The write lock is held.
func (fs *FS) idxRebuild(in *layout.Inode, dir vfs.Ino, minBuckets int) error {
	if fs.dirIndexThreshold() < 0 {
		return nil
	}
	return fs.idxBuild(in, dir, minBuckets)
}

// idxBuild is idxRebuild without the enable guard. fsck repairs through
// it: the checker mounts with indexing disabled (so nothing builds
// indexes mid-walk from possibly-stale allocation state) and rebuilds
// explicitly after the allocation rewrite.
func (fs *FS) idxBuild(in *layout.Inode, dir vfs.Ino, minBuckets int) error {
	if in.DirIndexRootPtr() != 0 {
		if err := fs.idxDrop(in, dir, fs.idxTrusted(dir)); err != nil {
			return err
		}
	}
	nslots := in.Size / slotSize
	nbuckets := 2
	for int64(nbuckets)*layout.DirIndexBucketEntries/4 < nslots {
		nbuckets *= 2
	}
	if nbuckets < minBuckets {
		nbuckets = minBuckets
	}
	if nbuckets > layout.DirIndexMaxBuckets {
		nbuckets = layout.DirIndexMaxBuckets
	}

	// Gather (hash, loc) for every live slot.
	type pair struct{ h, loc uint32 }
	buckets := make([][]pair, nbuckets)
	var bad bool
	_, err := fs.forEachSlot(in, dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if !used {
			return false
		}
		if e.block >= 1<<28 {
			bad = true // loc cannot encode the block; stay linear
			return true
		}
		h := layout.DirNameHash(e.name)
		k := int(h % uint32(nbuckets))
		buckets[k] = append(buckets[k], pair{h, idxLoc(e.block, e.slot)})
		return false
	})
	if err != nil || bad {
		return err
	}
	for k := range buckets {
		if len(buckets[k]) > layout.DirIndexBucketEntries {
			return nil // pathological skew; stay linear
		}
	}

	// Allocate and fill. Allocation failure (e.g. a full disk) is not an
	// error — the directory simply stays linear.
	prefAG := fs.homeAG(in, dir)
	rootPhys, err := fs.allocScattered(prefAG, dir)
	if err != nil {
		return nil
	}
	allocated := []int64{rootPhys}
	abort := func() {
		for _, p := range allocated {
			fs.freeBlock(p)
		}
	}
	rb, err := fs.c.Alloc(rootPhys)
	if err != nil {
		abort()
		return err
	}
	for i := range rb.Data {
		rb.Data[i] = 0
	}
	var nentries uint32
	for k := 0; k < nbuckets; k++ {
		bkPhys, err := fs.allocScattered(prefAG, dir)
		if err != nil {
			rb.Release()
			abort()
			return nil
		}
		allocated = append(allocated, bkPhys)
		bb, err := fs.c.Alloc(bkPhys)
		if err != nil {
			rb.Release()
			abort()
			return err
		}
		for i := range bb.Data {
			bb.Data[i] = 0
		}
		for j, p := range buckets[k] {
			layout.SetDirIndexEntry(bb.Data, j, p.h, p.loc)
			nentries++
		}
		fs.c.MarkDirty(bb)
		bb.Release()
		layout.SetDirIndexBucketPtr(rb.Data, k, uint32(bkPhys))
	}
	layout.DirIndexRoot{NBuckets: uint32(nbuckets), NEntries: nentries}.Encode(rb.Data)
	fs.c.MarkDirty(rb)
	rb.Release()

	in.SetDirIndexRootPtr(uint32(rootPhys))
	if err := fs.putInode(dir, in, false); err != nil {
		return err
	}
	fs.idxMarkFresh(dir)
	fs.mIdxRebuilds.Inc()
	return nil
}

// idxDrop detaches and (when the index is trusted, so its pointers are
// believable) frees dir's index blocks. Untrusted blocks are leaked to
// fsck, which reclaims anything unreferenced. The write lock is held.
func (fs *FS) idxDrop(in *layout.Inode, dir vfs.Ino, trusted bool) error {
	rootPhys := int64(in.DirIndexRootPtr())
	if rootPhys == 0 {
		return nil
	}
	in.SetDirIndexRootPtr(0)
	fs.idxForget(dir)
	if err := fs.putInode(dir, in, false); err != nil {
		return err
	}
	if !trusted || !fs.idxValidPhys(rootPhys) {
		return nil
	}
	rb, err := fs.c.Read(rootPhys)
	if err != nil {
		return err
	}
	root, ok := layout.DecodeDirIndexRoot(rb.Data)
	var bucketPhys []int64
	if ok {
		for k := 0; k < int(root.NBuckets); k++ {
			if p := int64(layout.DirIndexBucketPtr(rb.Data, k)); fs.idxValidPhys(p) {
				bucketPhys = append(bucketPhys, p)
			}
		}
	}
	rb.Release()
	for _, p := range bucketPhys {
		if err := fs.freeBlock(p); err != nil {
			return err
		}
	}
	return fs.freeBlock(rootPhys)
}
