package core

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Block mapping: direct pointers plus single and double indirect blocks,
// identical in shape to the baseline. What differs is allocation policy:
// the first GroupBlocks blocks of a small regular file go to the naming
// directory's group (when grouping is on); everything else uses
// conventional clustered placement, so large-file behaviour is unchanged
// — a property the paper is explicit about and the largefile experiment
// checks.

// homeAG is the allocation group the conventional allocator prefers,
// following FFS policy [McKusick84]: a directory lives in the group its
// (rotor-assigned) inode landed in, and everything it names — entry
// blocks, inodes, small-file data — stays in that group. Locality, but
// not adjacency: the distinction the paper's argument rests on.
func (fs *FS) homeAG(in *layout.Inode, ino vfs.Ino) int {
	if in.Type == vfs.TypeDir {
		if in.Direct[0] != 0 {
			if ag := fs.agOf(int64(in.Direct[0])); ag >= 0 {
				return ag
			}
		}
		// A new directory's data joins its own inode's group.
		if !isEmbedded(ino) {
			if phys, _, err := fs.extLoc(extIdx(ino)); err == nil {
				if ag := fs.agOf(phys); ag >= 0 {
					return ag
				}
			}
		}
		return int(mix64(uint64(ino)) % uint64(fs.sb.NAG))
	}
	if in.Parent != 0 {
		if pin, err := fs.getInode(vfs.Ino(in.Parent)); err == nil && pin.Alive() && pin.Direct[0] != 0 {
			if ag := fs.agOf(int64(pin.Direct[0])); ag >= 0 {
				return ag
			}
		}
		return int(mix64(uint64(in.Parent)) % uint64(fs.sb.NAG))
	}
	return int(mix64(uint64(ino)) % uint64(fs.sb.NAG))
}

// pickDirAG assigns allocation groups to new directories round-robin,
// like the FFS policy of placing each new directory in a different
// cylinder group from its parent.
func (fs *FS) pickDirAG() int {
	ag := fs.dirRotor
	fs.dirRotor = (fs.dirRotor + 1) % fs.sb.NAG
	return ag
}

// allocFileBlock picks a block for file block lb of ino. Small regular
// files group under their naming directory; directory blocks group
// under the directory itself — the same owner id — so a directory's
// entry blocks (with their embedded inodes) and its small files' data
// blocks share group extents. That co-location is the synergy the paper
// points out between the two techniques: one group read returns names,
// inodes, and data.
func (fs *FS) allocFileBlock(in *layout.Inode, ino vfs.Ino, lb int64, prev uint32) (int64, error) {
	owner := in.Parent
	if in.Type == vfs.TypeDir && !isEmbedded(ino) {
		owner = uint32(ino)
	}
	if fs.opts.Grouping && lb < GroupBlocks && owner != 0 {
		phys, gid, err := fs.allocGrouped(owner, in.Group, ino, fs.homeAG(in, ino))
		if err != nil {
			return 0, err
		}
		if phys == 0 {
			return 0, fmt.Errorf("cffs: grouped allocation returned no block for inode %#x", uint64(ino))
		}
		if gid != 0 {
			in.Group = gid
		}
		return phys, nil
	}
	if prev != 0 {
		return fs.allocNear(int64(prev) + 1)
	}
	return fs.allocScattered(fs.homeAG(in, ino), ino)
}

// bmap maps file block lb to a physical block, allocating on demand
// when alloc is set; 0 means a hole.
func (fs *FS) bmap(in *layout.Inode, ino vfs.Ino, lb int64, alloc bool) (int64, error) {
	if lb < 0 || lb >= layout.MaxFileBlocks {
		return 0, fmt.Errorf("cffs: block %d of inode %#x: %w", lb, uint64(ino), vfs.ErrInvalid)
	}
	if lb < layout.NDirect {
		if in.Direct[lb] != 0 {
			return int64(in.Direct[lb]), nil
		}
		if !alloc {
			return 0, nil
		}
		var prev uint32
		if lb > 0 {
			prev = in.Direct[lb-1]
		}
		phys, err := fs.allocFileBlock(in, ino, lb, prev)
		if err != nil {
			return 0, err
		}
		in.Direct[lb] = uint32(phys)
		in.NBlocks++
		return phys, nil
	}

	rel := lb - layout.NDirect
	if rel < layout.PtrsPerBlock {
		return fs.indirBlock(&in.Indir, in, ino, lb, rel, alloc)
	}

	rel -= layout.PtrsPerBlock
	if in.DIndir == 0 {
		if !alloc {
			return 0, nil
		}
		phys, err := fs.allocScattered(fs.homeAG(in, ino), ino)
		if err != nil {
			return 0, err
		}
		if err := fs.zeroBlock(phys); err != nil {
			return 0, err
		}
		in.DIndir = uint32(phys)
		in.NBlocks++
	}
	db, err := fs.c.Read(int64(in.DIndir))
	if err != nil {
		return 0, err
	}
	defer db.Release()
	slot := int(rel / layout.PtrsPerBlock)
	le := leBytes{db.Data}
	ptr := le.u32(slot * 4)
	if ptr == 0 {
		if !alloc {
			return 0, nil
		}
		phys, err := fs.allocScattered(fs.homeAG(in, ino), ino)
		if err != nil {
			return 0, err
		}
		if err := fs.zeroBlock(phys); err != nil {
			return 0, err
		}
		le.pu32(slot*4, uint32(phys))
		fs.c.MarkDirty(db)
		in.NBlocks++
		ptr = uint32(phys)
	}
	return fs.indirBlock(&ptr, in, ino, lb, rel%layout.PtrsPerBlock, alloc)
}

// indirBlock resolves one level of indirection through *ptrSlot.
func (fs *FS) indirBlock(ptrSlot *uint32, in *layout.Inode, ino vfs.Ino, lb, idx int64, alloc bool) (int64, error) {
	if *ptrSlot == 0 {
		if !alloc {
			return 0, nil
		}
		phys, err := fs.allocScattered(fs.homeAG(in, ino), ino)
		if err != nil {
			return 0, err
		}
		if err := fs.zeroBlock(phys); err != nil {
			return 0, err
		}
		*ptrSlot = uint32(phys)
		in.NBlocks++
	}
	ib, err := fs.c.Read(int64(*ptrSlot))
	if err != nil {
		return 0, err
	}
	defer ib.Release()
	le := leBytes{ib.Data}
	ptr := le.u32(int(idx) * 4)
	if ptr != 0 {
		return int64(ptr), nil
	}
	if !alloc {
		return 0, nil
	}
	var prev uint32
	if idx > 0 {
		prev = le.u32(int(idx-1) * 4)
	}
	phys, err := fs.allocFileBlock(in, ino, lb, prev)
	if err != nil {
		return 0, err
	}
	le.pu32(int(idx)*4, uint32(phys))
	fs.c.MarkDirty(ib)
	in.NBlocks++
	return phys, nil
}

// readBlockGrouped reads a block through the cache with the group-read
// policy: a miss on any block of a claimed group fetches the group's
// whole allocated span in one request (unconditionally, or on the
// second recent touch when AdaptiveGroupRead is set). Both file data
// and directory blocks go through this path.
//
// With group readahead in effect (a striped volume underneath, or
// Options.GroupReadahead set), the demand group's read also carries the
// next few extents owned by the same directory, batched into one Submit
// so the volume can service them on different spindles in parallel.
func (fs *FS) readBlockGrouped(phys int64) (*cache.Buf, error) {
	if fs.opts.Grouping && fs.c.Peek(phys) == nil {
		if start, count, ok := fs.groupSpan(phys); ok && fs.groupReadWanted(phys) {
			runs := []cache.Run{{Start: start, Count: count}}
			if fan := fs.groupReadFan(); fan > 0 {
				if ag, k, _, ok := fs.locateGroup(phys); ok {
					runs = append(runs, fs.nextOwnedSpans(ag, k, fan)...)
				}
			}
			fs.mGroupReads.Inc()
			for _, r := range runs {
				fs.mGroupBlocks.Add(int64(r.Count))
			}
			var err error
			if len(runs) == 1 {
				err = fs.c.ReadRun(start, count)
			} else {
				fs.mGroupPrefetch.Add(int64(len(runs) - 1))
				err = fs.c.ReadRuns(runs)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return fs.c.Read(phys)
}

// groupReadWanted applies the adaptive policy: always, or only when the
// block's group was touched recently (a scan is in progress). The
// recency window is the one piece of FS state mutated on the read path,
// so it has its own lock (adaptMu) rather than riding on the FS write
// lock.
func (fs *FS) groupReadWanted(phys int64) bool {
	if !fs.opts.AdaptiveGroupRead {
		return true
	}
	ag, k, _, ok := fs.locateGroup(phys)
	if !ok {
		return false
	}
	gid := fs.groupID(ag, k)
	fs.adaptMu.Lock()
	defer fs.adaptMu.Unlock()
	if fs.recentGroups == nil {
		fs.recentGroups = make(map[uint32]bool)
	}
	if fs.recentGroups[gid] {
		return true
	}
	const window = 32
	fs.recentGroups[gid] = true
	fs.recentOrder = append(fs.recentOrder, gid)
	if len(fs.recentOrder) > window {
		old := fs.recentOrder[0]
		fs.recentOrder = fs.recentOrder[1:]
		if old != gid {
			delete(fs.recentGroups, old)
		}
	}
	return false
}

// zeroBlock installs an all-zero cached block for fresh metadata.
func (fs *FS) zeroBlock(phys int64) error {
	b, err := fs.c.Alloc(phys)
	if err != nil {
		return err
	}
	for i := range b.Data {
		b.Data[i] = 0
	}
	fs.c.MarkDirty(b)
	b.Release()
	return nil
}

// truncate frees blocks at or beyond newSize and updates the inode in
// place (caller writes it back).
func (fs *FS) truncate(in *layout.Inode, ino vfs.Ino, newSize int64) error {
	if newSize < 0 {
		return vfs.ErrInvalid
	}
	if isInline(in) {
		if newSize > layout.InlineSize {
			if err := fs.spillInline(in, ino); err != nil {
				return err
			}
		} else {
			// Still inline: zero the dropped tail so a later regrow
			// reads zeros, then adjust the size.
			for i := newSize; i < int64(len(in.Inline)); i++ {
				in.Inline[i] = 0
			}
			in.Size = newSize
			in.Mtime = fs.clk.Now()
			return nil
		}
	}
	oldBlocks := (in.Size + blockio.BlockSize - 1) / blockio.BlockSize
	keep := (newSize + blockio.BlockSize - 1) / blockio.BlockSize

	for lb := keep; lb < oldBlocks; lb++ {
		phys, err := fs.bmap(in, ino, lb, false)
		if err != nil {
			return err
		}
		if phys == 0 {
			continue
		}
		if err := fs.clearMapping(in, lb); err != nil {
			return err
		}
		if err := fs.freeBlock(phys); err != nil {
			return err
		}
		in.NBlocks--
	}
	if err := fs.freeEmptyIndirs(in, keep); err != nil {
		return err
	}
	if keep == 0 {
		in.Group = 0
	}
	if newSize < in.Size && newSize%blockio.BlockSize != 0 {
		lb := newSize / blockio.BlockSize
		phys, err := fs.bmap(in, ino, lb, false)
		if err != nil {
			return err
		}
		if phys != 0 {
			b, err := fs.c.Read(phys)
			if err != nil {
				return err
			}
			for i := newSize % blockio.BlockSize; i < blockio.BlockSize; i++ {
				b.Data[i] = 0
			}
			fs.c.MarkDirty(b)
			b.Release()
		}
	}
	in.Size = newSize
	in.Mtime = fs.clk.Now()
	return nil
}

// clearMapping zeroes the pointer for file block lb at whatever level.
func (fs *FS) clearMapping(in *layout.Inode, lb int64) error {
	if lb < layout.NDirect {
		in.Direct[lb] = 0
		return nil
	}
	rel := lb - layout.NDirect
	var indir uint32
	var slot int64
	if rel < layout.PtrsPerBlock {
		indir, slot = in.Indir, rel
	} else {
		rel -= layout.PtrsPerBlock
		if in.DIndir == 0 {
			return nil
		}
		db, err := fs.c.Read(int64(in.DIndir))
		if err != nil {
			return err
		}
		indir = leBytes{db.Data}.u32(int(rel/layout.PtrsPerBlock) * 4)
		db.Release()
		slot = rel % layout.PtrsPerBlock
	}
	if indir == 0 {
		return nil
	}
	ib, err := fs.c.Read(int64(indir))
	if err != nil {
		return err
	}
	leBytes{ib.Data}.pu32(int(slot)*4, 0)
	fs.c.MarkDirty(ib)
	ib.Release()
	return nil
}

// freeEmptyIndirs releases indirect blocks once the kept range fits the
// direct pointers (the unlink/truncate-to-zero case).
func (fs *FS) freeEmptyIndirs(in *layout.Inode, keep int64) error {
	if keep > layout.NDirect {
		return nil
	}
	if in.Indir != 0 {
		if err := fs.freeBlock(int64(in.Indir)); err != nil {
			return err
		}
		in.Indir = 0
		in.NBlocks--
	}
	if in.DIndir != 0 {
		db, err := fs.c.Read(int64(in.DIndir))
		if err != nil {
			return err
		}
		le := leBytes{db.Data}
		for s := 0; s < layout.PtrsPerBlock; s++ {
			if p := le.u32(s * 4); p != 0 {
				if err := fs.freeBlock(int64(p)); err != nil {
					db.Release()
					return err
				}
				in.NBlocks--
			}
		}
		db.Release()
		if err := fs.freeBlock(int64(in.DIndir)); err != nil {
			return err
		}
		in.DIndir = 0
		in.NBlocks--
	}
	return nil
}
