package core

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Directory format: fixed 256-byte slots, 16 per block, 2 per sector.
//
//	off  0: ref     u32  — external ino, or embedMark for embedded entries
//	off  4: ftype   u8
//	off  5: namelen u8   — 0 means the slot is free
//	off  6: flags   u8   — bit 0: inode embedded in this slot
//	off  7: pad
//	off  8: name        (up to 120 bytes)
//	off 128: inode      (128 bytes, embedded entries only)
//
// A slot never crosses a sector boundary, so a name and its embedded
// inode are always written atomically by one sector write — the property
// that lets C-FFS drop one of the two ordered metadata writes on create
// and delete [Ganger94]. Slots never move while live, so an embedded Ino
// (block<<4|slot) stays valid for the life of the entry.
//
// The cost is space: ~256 bytes per name versus ~16 in the baseline
// format. That directory-size growth is the downside the paper
// discusses, and the dirsize experiment measures it.

const (
	slotSize      = 256
	slotsPerBlock = blockio.BlockSize / slotSize
	slotNameOff   = 8
	slotInodeOff  = 128
	slotNameMax   = slotInodeOff - slotNameOff
	embedMark     = 0xFFFFFFFF
	flagEmbedded  = 1
)

// slotEntry is a decoded directory slot.
type slotEntry struct {
	name     string
	ftype    vfs.FileType
	ref      uint32 // external ino (meaningless for embedded entries)
	embedded bool
	block    int64 // physical block holding the slot
	slot     int   // slot index within the block
}

// ino returns the entry's inode number.
func (e *slotEntry) ino() vfs.Ino {
	if e.embedded {
		return embedIno(e.block, e.slot)
	}
	return vfs.Ino(e.ref)
}

func slotUsed(data []byte, off int) bool { return data[off+5] != 0 }

func slotEmbedded(data []byte, off int) bool {
	return slotUsed(data, off) && data[off+6]&flagEmbedded != 0
}

func readSlot(data []byte, off int, block int64, slot int) slotEntry {
	nl := int(data[off+5])
	if nl > slotNameMax {
		nl = slotNameMax
	}
	return slotEntry{
		name:     string(data[off+slotNameOff : off+slotNameOff+nl]),
		ftype:    vfs.FileType(data[off+4]),
		ref:      leBytes{data}.u32(off),
		embedded: data[off+6]&flagEmbedded != 0,
		block:    block,
		slot:     slot,
	}
}

// writeSlotHeader fills the common fields and the name.
func writeSlotHeader(data []byte, off int, ref uint32, ftype vfs.FileType, flags byte, name string) {
	leBytes{data}.pu32(off, ref)
	data[off+4] = byte(ftype)
	data[off+5] = byte(len(name))
	data[off+6] = flags
	data[off+7] = 0
	copy(data[off+slotNameOff:], name)
	for i := off + slotNameOff + len(name); i < off+slotInodeOff; i++ {
		data[i] = 0
	}
}

// writeSlotExternal formats an external-reference entry.
func writeSlotExternal(data []byte, off int, name string, ino vfs.Ino, ftype vfs.FileType) {
	writeSlotHeader(data, off, uint32(ino), ftype, 0, name)
	clearInodeArea(data, off)
}

// writeSlotEmbedded formats an entry with the inode inline.
func writeSlotEmbedded(data []byte, off int, name string, in *layout.Inode) {
	writeSlotHeader(data, off, embedMark, in.Type, flagEmbedded, name)
	in.Encode(data[off+slotInodeOff:])
}

func clearSlot(data []byte, off int) {
	for i := off; i < off+slotSize; i++ {
		data[i] = 0
	}
}

func clearInodeArea(data []byte, off int) {
	for i := off + slotInodeOff; i < off+slotSize; i++ {
		data[i] = 0
	}
}

// initDirData writes the "." and ".." entries of a new directory into
// its first block. Directory inodes are always external, so these are
// external-reference entries.
func (fs *FS) initDirData(in *layout.Inode, self, parent vfs.Ino) error {
	phys, err := fs.bmap(in, self, 0, true)
	if err != nil {
		return err
	}
	b, err := fs.c.Alloc(phys)
	if err != nil {
		return err
	}
	defer b.Release()
	for i := range b.Data {
		b.Data[i] = 0
	}
	writeSlotExternal(b.Data, 0, ".", self, vfs.TypeDir)
	writeSlotExternal(b.Data, slotSize, "..", parent, vfs.TypeDir)
	fs.c.MarkDirty(b)
	in.Size = blockio.BlockSize
	return nil
}

// forEachSlot walks every slot of a directory. fn returning true stops
// the walk and hands the pinned buffer to the caller.
func (fs *FS) forEachSlot(in *layout.Inode, dir vfs.Ino, fn func(b *cache.Buf, e slotEntry, used bool) bool) (*cache.Buf, error) {
	nblocks := in.Size / blockio.BlockSize
	for lb := int64(0); lb < nblocks; lb++ {
		phys, err := fs.bmap(in, dir, lb, false)
		if err != nil {
			return nil, err
		}
		if phys == 0 {
			return nil, fmt.Errorf("cffs: directory %#x has a hole at block %d", uint64(dir), lb)
		}
		// With group readahead in effect, directory blocks take the
		// grouped read path: the first lookup in a cold directory then
		// fans the directory's whole working set (names, embedded
		// inodes, and its small files' data) across the spindles. On a
		// plain disk the fan is zero and a scan that wants only the
		// names would pay 16x its data in group fills, so dir blocks
		// read singly there — the seed behaviour.
		var b *cache.Buf
		if fs.groupReadFan() > 0 {
			b, err = fs.readBlockGrouped(phys)
		} else {
			b, err = fs.c.Read(phys)
		}
		if err != nil {
			return nil, err
		}
		for s := 0; s < slotsPerBlock; s++ {
			off := s * slotSize
			used := slotUsed(b.Data, off)
			var e slotEntry
			if used {
				e = readSlot(b.Data, off, phys, s)
			} else {
				e = slotEntry{block: phys, slot: s}
			}
			if fn(b, e, used) {
				return b, nil
			}
		}
		b.Release()
	}
	return nil, nil
}

// dirLookup finds a live entry by name; the returned buffer is pinned.
// A trusted index answers in O(1); otherwise the slots are scanned.
func (fs *FS) dirLookup(in *layout.Inode, dir vfs.Ino, name string) (*cache.Buf, slotEntry, error) {
	if in.DirIndexRootPtr() != 0 && fs.idxTrusted(dir) {
		b, e, found, usable, err := fs.idxLookup(in, dir, name)
		if err != nil {
			return nil, slotEntry{}, err
		}
		if usable {
			if !found {
				return nil, slotEntry{}, fmt.Errorf("cffs: %q in dir %#x: %w", name, uint64(dir), vfs.ErrNotExist)
			}
			return b, e, nil
		}
	}
	var found slotEntry
	b, err := fs.forEachSlot(in, dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if used && e.name == name {
			found = e
			return true
		}
		return false
	})
	if err != nil {
		return nil, slotEntry{}, err
	}
	if b == nil {
		return nil, slotEntry{}, fmt.Errorf("cffs: %q in dir %#x: %w", name, uint64(dir), vfs.ErrNotExist)
	}
	return b, found, nil
}

// dirFindFree returns a pinned buffer and slot offset for a free slot,
// growing the directory by a block when needed (directories grow and
// never shrink). The parent inode is written back whenever it changes.
func (fs *FS) dirFindFree(in *layout.Inode, dir vfs.Ino) (*cache.Buf, slotEntry, error) {
	if in.DirIndexRootPtr() != 0 && fs.idxTrusted(dir) {
		b, free, grow, ok, err := fs.idxFindFree(in, dir)
		if err != nil {
			return nil, slotEntry{}, err
		}
		if ok {
			if grow {
				return fs.dirGrow(in, dir)
			}
			return b, free, nil
		}
	}
	var free slotEntry
	b, err := fs.forEachSlot(in, dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if !used {
			free = e
			return true
		}
		return false
	})
	if err != nil {
		return nil, slotEntry{}, err
	}
	if b != nil {
		return b, free, nil
	}
	return fs.dirGrow(in, dir)
}

// dirGrow appends one zeroed block to the directory and returns its
// first slot. The parent inode is written back here in both modes — in
// ModeSync synchronously as part of the ordered growth, in delayed
// modes as a delayed write — so no caller (including its error paths)
// is left holding a size update the disk never learns about.
func (fs *FS) dirGrow(in *layout.Inode, dir vfs.Ino) (*cache.Buf, slotEntry, error) {
	lb := in.Size / blockio.BlockSize
	phys, err := fs.bmap(in, dir, lb, true)
	if err != nil {
		return nil, slotEntry{}, err
	}
	b, err := fs.c.Alloc(phys)
	if err != nil {
		return nil, slotEntry{}, err
	}
	for i := range b.Data {
		b.Data[i] = 0
	}
	in.Size += blockio.BlockSize
	in.Mtime = fs.clk.Now()
	// Ordered growth: the zeroed block and the directory inode that
	// reaches it must be durable before any entry written into the new
	// block, or a crash would orphan a synchronously-written entry.
	if fs.opts.Mode == ModeSync {
		if err := fs.c.WriteSync(b); err != nil {
			b.Release()
			return nil, slotEntry{}, err
		}
		if err := fs.putInode(dir, in, true); err != nil {
			b.Release()
			return nil, slotEntry{}, err
		}
	} else {
		fs.c.MarkDirty(b)
		if err := fs.putInode(dir, in, false); err != nil {
			b.Release()
			return nil, slotEntry{}, err
		}
	}
	if in.DirIndexRootPtr() != 0 && fs.idxTrusted(dir) {
		fs.idxSetHint(in, idxLoc(phys, 0))
	} else if err := fs.idxMaybeBuild(in, dir); err != nil {
		b.Release()
		return nil, slotEntry{}, err
	}
	return b, slotEntry{block: phys, slot: 0}, nil
}

// dirPrepareCreate checks name does not exist and returns a pinned
// buffer on a free slot, in one pass: the linear path records the first
// free slot while scanning for the name (the seed paid two full scans
// here), and the indexed path is two O(1) probes.
func (fs *FS) dirPrepareCreate(in *layout.Inode, dir vfs.Ino, name string) (*cache.Buf, slotEntry, error) {
	if in.DirIndexRootPtr() != 0 && fs.idxTrusted(dir) {
		b, _, found, usable, err := fs.idxLookup(in, dir, name)
		if err != nil {
			return nil, slotEntry{}, err
		}
		if usable {
			if found {
				b.Release()
				return nil, slotEntry{}, fmt.Errorf("cffs: %q in dir %#x: %w", name, uint64(dir), vfs.ErrExist)
			}
			return fs.dirFindFree(in, dir)
		}
	}
	var free slotEntry
	var haveFree bool
	b, err := fs.forEachSlot(in, dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if used {
			return e.name == name
		}
		if !haveFree {
			free, haveFree = e, true
		}
		return false
	})
	if err != nil {
		return nil, slotEntry{}, err
	}
	if b != nil {
		b.Release()
		return nil, slotEntry{}, fmt.Errorf("cffs: %q in dir %#x: %w", name, uint64(dir), vfs.ErrExist)
	}
	if haveFree {
		fb, err := fs.readDirBlock(free.block)
		if err != nil {
			return nil, slotEntry{}, err
		}
		return fb, free, nil
	}
	return fs.dirGrow(in, dir)
}

// checkName validates an entry name. '/' can never be resolved back by
// vfs.Walk (it splits on it) and NUL would let a name's on-disk bytes
// diverge from what string APIs observe, so both bytes are rejected
// outright — here, in the Ref oracle, and at the srv wire layer.
func checkName(name string) error {
	if len(name) == 0 || name == "." || name == ".." {
		return vfs.ErrInvalid
	}
	if len(name) > vfs.MaxNameLen {
		return fmt.Errorf("cffs: name %q: %w", name, vfs.ErrNameTooLong)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return fmt.Errorf("cffs: name %q: %w", name, vfs.ErrInvalid)
		}
	}
	return nil
}

// dirIsEmpty reports whether a directory holds only "." and "..".
func (fs *FS) dirIsEmpty(in *layout.Inode, dir vfs.Ino) (bool, error) {
	if in.DirIndexRootPtr() != 0 && fs.idxTrusted(dir) {
		empty, ok, err := fs.idxEmpty(in)
		if err != nil {
			return false, err
		}
		if ok {
			return empty, nil
		}
	}
	empty := true
	b, err := fs.forEachSlot(in, dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if used && e.name != "." && e.name != ".." {
			empty = false
			return true
		}
		return false
	})
	if b != nil {
		b.Release()
	}
	return empty, err
}

// dirList collects live entries, excluding "." and "..".
func (fs *FS) dirList(in *layout.Inode, dir vfs.Ino) ([]vfs.DirEntry, error) {
	var ents []vfs.DirEntry
	_, err := fs.forEachSlot(in, dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if used && e.name != "." && e.name != ".." {
			ents = append(ents, vfs.DirEntry{Name: e.name, Ino: e.ino(), Type: e.ftype})
		}
		return false
	})
	return ents, err
}
