package core

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/fsck"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Check is the offline consistency checker for C-FFS images. It finds
// every inode by walking the directory hierarchy from the root — the
// recovery strategy the paper describes for embedded inodes — and
// rebuilds the allocation state, comparing it against what is on disk:
//
//   - every block claimed by exactly one owner (file, directory,
//     indirect block, or metadata);
//   - block bitmaps match reachability (no lost or double-used blocks);
//   - group descriptors consistent: used bits only on allocated blocks,
//     owners that are live directories or emptied-out leftovers;
//   - link counts match the number of names found;
//   - "." and ".." entries well-formed;
//   - external inodes all reachable (no orphans).
//
// With repair set, Check is a recovery path, not just a detector. The
// walk collects a structural fix for each problem it can attribute to a
// specific object — dangling or duplicate entries are cleared, orphaned
// external inodes are zeroed, bad block pointers are cut, link and
// block counts rewritten, "."/".." regenerated — and the fixes are
// applied and the walk repeated until the namespace is stable. The
// allocation state (bitmaps, group descriptors) is then rebuilt from
// the repaired namespace, and one final verification walk runs; any
// problem that survives it is reported as unrepairable.
func Check(dev *blockio.Device, repair bool) (*fsck.Report, error) {
	// Indexing is disabled on the checker's own mount, and on-disk
	// indexes are distrusted regardless of the clean flag: fsck's own
	// directory operations (fixDot) must not follow or build index
	// structures while the allocation state is still suspect. Index
	// verification and rebuild are explicit phases below.
	fs, err := Mount(dev, Options{DirIndexBlocks: -1})
	if err != nil {
		return nil, err
	}
	fs.wasClean = false
	r := &fsck.Report{FS: "cffs"}
	sh, err := runWalk(fs, r)
	if err != nil {
		return nil, err
	}
	if !repair || r.Clean() {
		r.UsedBlocks = len(sh.used)
		return r, nil
	}

	// Structural passes: each fix can expose the next problem (clearing
	// a dangling entry orphans its inode), so repair iterates until a
	// walk collects no further fixes. Directory indexes dropped along
	// the way are remembered for rebuild once allocation is sound.
	cur := sh
	rebuild := make(map[vfs.Ino]bool)
	for pass := 0; pass < 4 && cur.fx.any(); pass++ {
		n, err := cur.applyFixes()
		if err != nil {
			return nil, err
		}
		for d := range cur.idxCleared {
			rebuild[d] = true
		}
		r.RepairsMade += n
		r2 := &fsck.Report{}
		if cur, err = runWalk(fs, r2); err != nil {
			return nil, err
		}
	}

	// Allocation rebuild from the repaired namespace.
	n, err := cur.rewriteAlloc()
	if err != nil {
		return nil, err
	}
	r.RepairsMade += n

	// Index rebuild, only now: building earlier would allocate from
	// bitmaps the walk had not yet proven (or repaired), risking live
	// blocks. Directories that no longer clear the size threshold stay
	// linear — the runtime rebuilds them if they grow again.
	nri := 0
	for d := range rebuild {
		in, err := fs.getInode(d)
		if err != nil || in.Type != vfs.TypeDir || in.DirIndexRootPtr() != 0 {
			continue
		}
		if in.Size/blockio.BlockSize <= dirIndexMinBlocks {
			continue
		}
		if err := fs.idxBuild(&in, d, 0); err != nil {
			return nil, err
		}
		nri++
	}
	if nri > 0 {
		r.RepairsMade += nri
		if err := fs.c.Sync(); err != nil {
			return nil, err
		}
	}

	// Verification: whatever a fresh walk still reports is beyond this
	// checker's repair power.
	rv := &fsck.Report{}
	v, err := runWalk(fs, rv)
	if err != nil {
		return nil, err
	}
	r.Unrepairable = rv.Problems
	r.UsedBlocks = len(v.used)

	// The image now verifies end to end (indexes included), so the
	// unclean marker can come off: the next mount may trust what fsck
	// just proved.
	if len(r.Unrepairable) == 0 && fs.sb.Dirty {
		fs.dirtyMarked = true
		if err := fs.markClean(); err != nil {
			return nil, err
		}
		r.RepairsMade++
	}
	return r, nil
}

// runWalk claims the metadata blocks, walks the namespace from the
// root, and cross-checks the allocation state, filling r and returning
// the walk state (used set + collected fixes).
func runWalk(fs *FS, r *fsck.Report) (*checkState, error) {
	sh := newCheckState(fs, r)
	sh.claim(0, "superblock")
	for b := int64(1); b <= mapBlocks; b++ {
		sh.claim(b, "inode map")
	}
	for ag := 0; ag < fs.sb.NAG; ag++ {
		sh.claim(fs.sb.agStart(ag), fmt.Sprintf("ag %d header", ag))
	}
	for fb := 0; fb < fs.sb.ExtBlocks; fb++ {
		phys, _, err := fs.extLoc(fb * extInosPerBlock)
		if err != nil {
			return nil, err
		}
		sh.claim(phys, fmt.Sprintf("inode-file block %d", fb))
	}
	if err := sh.walkDir(RootIno, RootIno, "/"); err != nil {
		return nil, err
	}
	sh.checkIndexes()
	sh.finish()
	return sh, nil
}

// checkIndexes verifies every directory index the walk queued. It runs
// after the namespace walk so all file and metadata claims are in: an
// index block that collides with real data loses, invalidating the
// index rather than the file. A valid index's blocks are claimed so the
// bitmap cross-check sees them; an invalid one's are left unclaimed for
// the allocation rewrite to reclaim.
func (s *checkState) checkIndexes() {
	for _, ic := range s.idxChecks {
		s.checkIndex(ic)
	}
}

// checkIndex verifies one index against the slot population its walk
// collected: a decodable root, bucket pointers in range, and an exact
// bijection — every index entry names a live slot with the right hash,
// every live slot appears exactly once, and the stored entry count
// matches. Any failure schedules the index for drop-and-rebuild.
func (s *checkState) checkIndex(ic idxCheck) {
	fs := s.fs
	bad := func(format string, args ...any) {
		s.problem("%s: directory index: "+format, append([]any{ic.path}, args...)...)
		s.fx.clearIdx[ic.dir] = true
	}
	if !fs.idxValidPhys(ic.root) {
		bad("root block %d out of range", ic.root)
		return
	}
	if s.has(ic.root) {
		bad("root block %d belongs to %s", ic.root, s.used[ic.root])
		return
	}
	rb, err := fs.c.Read(ic.root)
	if err != nil {
		bad("unreadable root block %d: %v", ic.root, err)
		return
	}
	root, ok := layout.DecodeDirIndexRoot(rb.Data)
	if !ok {
		rb.Release()
		bad("root block %d has no valid header", ic.root)
		return
	}
	blocks := map[int64]bool{ic.root: true}
	var bucketPhys []int64
	for k := 0; k < int(root.NBuckets); k++ {
		p := int64(layout.DirIndexBucketPtr(rb.Data, k))
		if !fs.idxValidPhys(p) {
			rb.Release()
			bad("bucket %d points at block %d, out of range", k, p)
			return
		}
		if s.has(p) {
			rb.Release()
			bad("bucket %d block %d belongs to %s", k, p, s.used[p])
			return
		}
		if blocks[p] {
			rb.Release()
			bad("bucket %d block %d appears twice in the index", k, p)
			return
		}
		blocks[p] = true
		bucketPhys = append(bucketPhys, p)
	}
	rb.Release()
	seen := make(map[uint32]bool)
	count := uint32(0)
	for k, p := range bucketPhys {
		bb, err := fs.c.Read(p)
		if err != nil {
			bad("unreadable bucket %d (block %d): %v", k, p, err)
			return
		}
		for j := 0; j < layout.DirIndexBucketEntries; j++ {
			h, loc := layout.DirIndexEntry(bb.Data, j)
			if loc == 0 {
				continue
			}
			want, live := ic.slots[loc]
			switch {
			case !live:
				bb.Release()
				bad("entry for slot %d/%d names no live slot", idxLocBlock(loc), idxLocSlot(loc))
				return
			case seen[loc]:
				bb.Release()
				bad("slot %d/%d indexed twice", idxLocBlock(loc), idxLocSlot(loc))
				return
			case want != h:
				bb.Release()
				bad("slot %d/%d hashed %#x, index says %#x", idxLocBlock(loc), idxLocSlot(loc), want, h)
				return
			case uint32(k) != h%root.NBuckets:
				bb.Release()
				bad("slot %d/%d filed under bucket %d, hash says %d",
					idxLocBlock(loc), idxLocSlot(loc), k, h%root.NBuckets)
				return
			}
			seen[loc] = true
			count++
		}
		bb.Release()
	}
	if int(count) != len(ic.slots) {
		bad("%d slots live, %d indexed", len(ic.slots), count)
		return
	}
	if count != root.NEntries {
		bad("entry count %d, found %d", root.NEntries, count)
		return
	}
	for p := range blocks {
		s.claim(p, ic.path+" (dir index)")
	}
}

// slotRef names one directory slot on disk, and the directory owning it
// (whose index, if any, goes stale when the slot is cleared).
type slotRef struct {
	dir   vfs.Ino
	block int64
	slot  int
}

// Pointer-clear kinds: which pointer of an inode a fix cuts.
const (
	ptrData   = iota // the pointer resolving logical block lb
	ptrIndir         // the inode's single-indirect pointer
	ptrDIndir        // the inode's double-indirect pointer
	ptrL2            // entry lb of the double-indirect block
)

// ptrRef names one block pointer reachable from an inode.
type ptrRef struct {
	ino  vfs.Ino
	kind int
	lb   int64
}

// dotFix regenerates a "." or ".." entry of a directory.
type dotFix struct {
	dir    vfs.Ino
	name   string
	target vfs.Ino
}

// fixes is the structural repair plan one walk collects.
type fixes struct {
	clearSlots []slotRef          // remove dangling/duplicate/corrupt entries
	dots       []dotFix           // regenerate "." / ".."
	nlink      map[vfs.Ino]uint16 // rewrite link counts from names found
	nblocks    map[vfs.Ino]uint32 // rewrite block counts from blocks found
	clearPtrs  []ptrRef           // cut bad or doubly-claimed block pointers
	zeroExt    []int              // zero orphaned external inodes (by index)
	clearIdx   map[vfs.Ino]bool   // drop directory indexes that failed verification
}

func newFixes() *fixes {
	return &fixes{
		nlink:    make(map[vfs.Ino]uint16),
		nblocks:  make(map[vfs.Ino]uint32),
		clearIdx: make(map[vfs.Ino]bool),
	}
}

func (f *fixes) any() bool {
	return len(f.clearSlots)+len(f.dots)+len(f.nlink)+len(f.nblocks)+
		len(f.clearPtrs)+len(f.zeroExt)+len(f.clearIdx) > 0
}

// idxCheck is one directory index awaiting verification: the slot
// population the walk saw (loc → name hash), to be matched against the
// index structure after every file's blocks are claimed — real data
// must win any collision with a corrupt index pointer.
type idxCheck struct {
	dir   vfs.Ino
	path  string
	root  int64
	slots map[uint32]uint32
}

// checkState carries the walk.
type checkState struct {
	fs         *FS
	r          *fsck.Report
	fx         *fixes
	used       map[int64]string // block -> first owner description
	extSeen    map[int]int      // external idx -> names found
	extLink    map[int]int      // external idx -> on-disk nlink
	visited    map[int]bool     // directories walked (by external idx)
	idxChecks  []idxCheck       // indexes to verify once the walk is done
	idxCleared map[vfs.Ino]bool // indexes dropped by applyFixes (rebuild later)
}

func newCheckState(fs *FS, r *fsck.Report) *checkState {
	return &checkState{
		fs:      fs,
		r:       r,
		fx:      newFixes(),
		used:    make(map[int64]string),
		extSeen: make(map[int]int),
		extLink: make(map[int]int),
		visited: make(map[int]bool),
	}
}

func (s *checkState) problem(format string, args ...any) {
	s.r.Problems = append(s.r.Problems, fmt.Sprintf(format, args...))
}

// claim records a block owner; it reports whether the claim was first.
func (s *checkState) claim(block int64, owner string) bool {
	if prev, ok := s.used[block]; ok {
		s.problem("block %d claimed by both %s and %s", block, prev, owner)
		return false
	}
	s.used[block] = owner
	return true
}

func (s *checkState) has(block int64) bool {
	_, ok := s.used[block]
	return ok
}

// walkDir checks one directory and recurses into subdirectories. The
// caller (walkChild) has validated the inode for every directory except
// the root, whose failures are unrepairable by construction.
func (s *checkState) walkDir(dir, parent vfs.Ino, path string) error {
	idx := extIdx(dir)
	s.visited[idx] = true
	s.r.Dirs++

	in, err := s.fs.getInode(dir)
	if err != nil {
		s.problem("%s: unreadable inode: %v", path, err)
		return nil
	}
	if in.Type != vfs.TypeDir {
		s.problem("%s: not a directory (type %v)", path, in.Type)
		return nil
	}
	s.extLink[idx] = int(in.Nlink)
	s.claimFileBlocks(&in, dir, path)

	var dotOK, dotdotOK bool
	var subs []slotEntry
	locs := make(map[uint32]uint32)
	_, err = s.fs.forEachSlot(&in, dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if !used {
			return false
		}
		if e.block < 1<<28 {
			locs[idxLoc(e.block, e.slot)] = layout.DirNameHash(e.name)
		}
		switch e.name {
		case ".":
			dotOK = !e.embedded && e.ref == uint32(dir)
		case "..":
			dotdotOK = !e.embedded && e.ref == uint32(parent)
		default:
			if e.ftype == vfs.TypeDir && !e.embedded {
				subs = append(subs, e)
			}
			s.checkEntry(dir, e, path)
		}
		return false
	})
	if err != nil {
		s.problem("%s: walk failed: %v", path, err)
		return nil
	}
	if root := int64(in.DirIndexRootPtr()); root != 0 {
		s.idxChecks = append(s.idxChecks, idxCheck{dir: dir, path: path, root: root, slots: locs})
	}
	if !dotOK {
		s.problem("%s: bad or missing \".\"", path)
		s.fx.dots = append(s.fx.dots, dotFix{dir: dir, name: ".", target: dir})
	}
	if !dotdotOK {
		s.problem("%s: bad or missing \"..\"", path)
		s.fx.dots = append(s.fx.dots, dotFix{dir: dir, name: "..", target: parent})
	}
	// Recurse after the slot scan so buffers are not pinned during it.
	nsub := 0
	for _, e := range subs {
		ok, err := s.walkChild(e, dir, path)
		if err != nil {
			return err
		}
		if ok {
			nsub++
		}
	}
	if int(in.Nlink) != 2+nsub {
		s.problem("%s: nlink %d, expected %d", path, in.Nlink, 2+nsub)
		s.fx.nlink[dir] = uint16(2 + nsub)
	}
	return nil
}

// walkChild validates one subdirectory entry and recurses into it. It
// reports whether the entry counts as a live subdirectory (for the
// parent's link count); a false return means the entry was scheduled
// for removal.
func (s *checkState) walkChild(e slotEntry, parent vfs.Ino, path string) (bool, error) {
	name := path + e.name
	ino := e.ino()
	idx := extIdx(ino)
	if s.visited[idx] {
		s.problem("%s: second name for directory inode %d", name, idx)
		s.fx.clearSlots = append(s.fx.clearSlots, slotRef{parent, e.block, e.slot})
		return false, nil
	}
	in, err := s.fs.getInode(ino)
	if err != nil || !in.Alive() {
		s.problem("%s: dangling directory entry (inode %d)", name, idx)
		s.fx.clearSlots = append(s.fx.clearSlots, slotRef{parent, e.block, e.slot})
		return false, nil
	}
	if in.Type != vfs.TypeDir {
		s.problem("%s: entry says directory, inode %d says type %v", name, idx, in.Type)
		s.fx.clearSlots = append(s.fx.clearSlots, slotRef{parent, e.block, e.slot})
		return false, nil
	}
	return true, s.walkDir(ino, parent, name+"/")
}

// checkEntry validates one live non-dot entry (for directories, only
// the reference count here — the recursion is walkChild's).
func (s *checkState) checkEntry(dir vfs.Ino, e slotEntry, path string) {
	name := path + e.name
	if e.embedded {
		ino := e.ino()
		in, err := s.fs.getInode(ino)
		if err != nil || !in.Alive() {
			s.problem("%s: unreadable embedded inode", name)
			s.fx.clearSlots = append(s.fx.clearSlots, slotRef{dir, e.block, e.slot})
			return
		}
		if in.Type != vfs.TypeReg {
			s.problem("%s: embedded inode of type %v", name, in.Type)
			s.fx.clearSlots = append(s.fx.clearSlots, slotRef{dir, e.block, e.slot})
			return
		}
		if in.Nlink != 1 {
			s.problem("%s: embedded inode with nlink %d", name, in.Nlink)
			s.fx.nlink[ino] = 1
		}
		s.r.Files++
		s.claimFileBlocks(&in, ino, name)
		return
	}
	idx := int(e.ref) - 1
	s.extSeen[idx]++
	if e.ftype == vfs.TypeDir {
		return // walked by walkChild
	}
	if s.extSeen[idx] > 1 {
		return // blocks already claimed via the first name
	}
	in, err := s.fs.getInode(vfs.Ino(e.ref))
	if err != nil || !in.Alive() {
		s.problem("%s: dangling external inode %d", name, e.ref)
		s.fx.clearSlots = append(s.fx.clearSlots, slotRef{dir, e.block, e.slot})
		s.extSeen[idx]-- // removal: the name no longer counts toward nlink
		return
	}
	s.extLink[idx] = int(in.Nlink)
	s.r.Files++
	s.claimFileBlocks(&in, vfs.Ino(e.ref), name)
}

// claimFileBlocks claims every block reachable from an inode. A block
// that is out of range or already claimed gets its pointer scheduled
// for clearing — first claimant wins, as in classic fsck — and only
// surviving claims count toward the inode's block count.
func (s *checkState) claimFileBlocks(in *layout.Inode, ino vfs.Ino, name string) {
	nblocks := (in.Size + blockio.BlockSize - 1) / blockio.BlockSize
	counted := uint32(0)
	for lb := int64(0); lb < nblocks; lb++ {
		phys, err := s.fs.bmap(in, ino, lb, false)
		if err != nil {
			s.problem("%s: bmap(%d): %v", name, lb, err)
			s.fx.clearPtrs = append(s.fx.clearPtrs, ptrRef{ino: ino, kind: ptrData, lb: lb})
			continue
		}
		if phys == 0 {
			continue
		}
		if phys <= 0 || phys >= s.fs.sb.NBlocks {
			s.problem("%s: block %d of %d is outside the volume", name, phys, lb)
			s.fx.clearPtrs = append(s.fx.clearPtrs, ptrRef{ino: ino, kind: ptrData, lb: lb})
			continue
		}
		if s.claim(phys, name) {
			counted++
		} else {
			s.fx.clearPtrs = append(s.fx.clearPtrs, ptrRef{ino: ino, kind: ptrData, lb: lb})
		}
	}
	if in.Indir != 0 {
		if int64(in.Indir) >= s.fs.sb.NBlocks || !s.claim(int64(in.Indir), name+" (indirect)") {
			if int64(in.Indir) >= s.fs.sb.NBlocks {
				s.problem("%s: indirect block %d is outside the volume", name, in.Indir)
			}
			s.fx.clearPtrs = append(s.fx.clearPtrs, ptrRef{ino: ino, kind: ptrIndir})
		} else {
			counted++
		}
	}
	if in.DIndir != 0 {
		if int64(in.DIndir) >= s.fs.sb.NBlocks || !s.claim(int64(in.DIndir), name+" (double indirect)") {
			if int64(in.DIndir) >= s.fs.sb.NBlocks {
				s.problem("%s: double-indirect block %d is outside the volume", name, in.DIndir)
			}
			s.fx.clearPtrs = append(s.fx.clearPtrs, ptrRef{ino: ino, kind: ptrDIndir})
		} else {
			counted++
			db, err := s.fs.c.Read(int64(in.DIndir))
			if err == nil {
				le := leBytes{db.Data}
				for k := 0; k < layout.PtrsPerBlock; k++ {
					p := le.u32(k * 4)
					if p == 0 {
						continue
					}
					if int64(p) >= s.fs.sb.NBlocks || !s.claim(int64(p), name+" (indirect level 2)") {
						s.fx.clearPtrs = append(s.fx.clearPtrs, ptrRef{ino: ino, kind: ptrL2, lb: int64(k)})
					} else {
						counted++
					}
				}
				db.Release()
			}
		}
	}
	if counted != in.NBlocks {
		s.problem("%s: NBlocks %d, found %d", name, in.NBlocks, counted)
		s.fx.nblocks[ino] = counted
	}
}

// finish compares the rebuilt state against the on-disk bitmaps, group
// descriptors, and external inode liveness.
func (s *checkState) finish() {
	fs, r := s.fs, s.r
	// External inode liveness vs names found.
	for idx := 0; idx < fs.sb.ExtBlocks*extInosPerBlock; idx++ {
		live := fs.extFree[idx/64]&(1<<(idx%64)) != 0
		seen := s.extSeen[idx] > 0 || s.visited[idx]
		switch {
		case live && !seen:
			r.Problems = append(r.Problems, fmt.Sprintf("orphan external inode %d", idx))
			s.fx.zeroExt = append(s.fx.zeroExt, idx)
		case !live && seen:
			// The dangling entries themselves were scheduled for
			// clearing where they were found.
			r.Problems = append(r.Problems, fmt.Sprintf("referenced external inode %d is dead", idx))
		}
		if seen && !s.visited[idx] {
			if want, got := s.extSeen[idx], s.extLink[idx]; want != got {
				r.Problems = append(r.Problems,
					fmt.Sprintf("external inode %d: nlink %d, found %d names", idx, got, want))
				s.fx.nlink[vfs.Ino(idx+1)] = uint16(want)
			}
		}
	}
	// Bitmaps and group descriptors.
	for ag := 0; ag < fs.sb.NAG; ag++ {
		hdr, err := fs.c.Read(fs.sb.agStart(ag))
		if err != nil {
			r.Problems = append(r.Problems, fmt.Sprintf("ag %d: unreadable header: %v", ag, err))
			continue
		}
		bm := fs.blockBitmap(hdr)
		for i := 0; i < fs.sb.AGBlocks; i++ {
			phys := fs.sb.agStart(ag) + int64(i)
			if phys >= fs.sb.NBlocks {
				break
			}
			inUse := s.has(phys)
			marked := bm.IsSet(i)
			if inUse && !marked {
				r.Problems = append(r.Problems, fmt.Sprintf("block %d in use but free in bitmap", phys))
			}
			if !inUse && marked {
				r.Problems = append(r.Problems, fmt.Sprintf("block %d lost (marked but unreferenced)", phys))
			}
		}
		for k := 0; k < fs.sb.groupsPerAG(); k++ {
			d := readDesc(hdr, k)
			if d.Owner == 0 && d.Used != 0 {
				r.Problems = append(r.Problems, fmt.Sprintf("ag %d group %d: used bits without owner", ag, k))
				continue
			}
			if d.Owner != 0 && d.Used == 0 {
				r.Problems = append(r.Problems, fmt.Sprintf("ag %d group %d: empty group still owned", ag, k))
			}
			start := fs.sb.groupBase(ag) + int64(k)*GroupBlocks
			for i := 0; i < GroupBlocks; i++ {
				if d.Used&(1<<i) != 0 && !s.has(start+int64(i)) {
					r.Problems = append(r.Problems,
						fmt.Sprintf("ag %d group %d: grouped block %d unreferenced", ag, k, start+int64(i)))
				}
			}
		}
		hdr.Release()
	}
}

// applyFixes executes the structural repair plan the walk collected and
// syncs the image. It returns the number of repairs applied.
func (s *checkState) applyFixes() (int, error) {
	fs, n := s.fs, 0
	for _, sr := range s.fx.clearSlots {
		b, err := fs.c.Read(sr.block)
		if err != nil {
			return n, err
		}
		clearSlot(b.Data, sr.slot*slotSize)
		fs.c.MarkDirty(b)
		b.Release()
		n++
	}
	for _, df := range s.fx.dots {
		ok, err := s.fixDot(df)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	for _, pr := range s.fx.clearPtrs {
		ok, err := s.clearPtr(pr)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	for ino, v := range s.fx.nlink {
		in, err := fs.getInode(ino)
		if err != nil {
			continue // the holder may have been cleared above
		}
		in.Nlink = v
		if err := fs.putInode(ino, &in, false); err != nil {
			return n, err
		}
		n++
	}
	for ino, v := range s.fx.nblocks {
		in, err := fs.getInode(ino)
		if err != nil {
			continue
		}
		in.NBlocks = v
		if err := fs.putInode(ino, &in, false); err != nil {
			return n, err
		}
		n++
	}
	for _, idx := range s.fx.zeroExt {
		phys, slot, err := fs.extLoc(idx)
		if err != nil {
			continue
		}
		b, err := fs.c.Read(phys)
		if err != nil {
			return n, err
		}
		for i := 0; i < layout.InodeSize; i++ {
			b.Data[slot*layout.InodeSize+i] = 0
		}
		fs.c.MarkDirty(b)
		b.Release()
		fs.freeExtInode(idx)
		n++
	}
	// Index drops: every index that failed verification, plus every
	// index over a directory whose slots were just repaired (the repair
	// made it stale). Only the root pointer is cut — the orphaned
	// blocks fall out of the used set and the allocation rewrite
	// reclaims them. Check rebuilds these after that rewrite.
	idxDirty := make(map[vfs.Ino]bool)
	for d := range s.fx.clearIdx {
		idxDirty[d] = true
	}
	for _, sr := range s.fx.clearSlots {
		idxDirty[sr.dir] = true
	}
	for _, df := range s.fx.dots {
		idxDirty[df.dir] = true
	}
	s.idxCleared = make(map[vfs.Ino]bool)
	for d := range idxDirty {
		in, err := fs.getInode(d)
		if err != nil || in.Type != vfs.TypeDir || in.DirIndexRootPtr() == 0 {
			continue
		}
		in.SetDirIndexRootPtr(0)
		if err := fs.putInode(d, &in, false); err != nil {
			return n, err
		}
		s.idxCleared[d] = true
		n++
	}
	return n, fs.c.Sync()
}

// fixDot regenerates a "." or ".." entry: rewritten in place when a
// slot with that name exists, otherwise written into a free slot.
func (s *checkState) fixDot(df dotFix) (bool, error) {
	fs := s.fs
	in, err := fs.getInode(df.dir)
	if err != nil || in.Type != vfs.TypeDir {
		return false, nil
	}
	var off int
	b, err := fs.forEachSlot(&in, df.dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if used && e.name == df.name {
			off = e.slot * slotSize
			return true
		}
		return false
	})
	if err != nil {
		return false, nil
	}
	if b == nil {
		var free slotEntry
		b, free, err = fs.dirFindFree(&in, df.dir)
		if err != nil {
			return false, err
		}
		off = free.slot * slotSize
		if err := fs.putInode(df.dir, &in, false); err != nil {
			b.Release()
			return false, err
		}
	}
	writeSlotExternal(b.Data, off, df.name, df.target, vfs.TypeDir)
	fs.c.MarkDirty(b)
	b.Release()
	return true, nil
}

// clearPtr cuts one block pointer of an inode. The freed block's bitmap
// state is corrected later by the allocation rebuild.
func (s *checkState) clearPtr(pr ptrRef) (bool, error) {
	fs := s.fs
	in, err := fs.getInode(pr.ino)
	if err != nil {
		return false, nil
	}
	switch pr.kind {
	case ptrIndir:
		in.Indir = 0
		return true, fs.putInode(pr.ino, &in, false)
	case ptrDIndir:
		in.DIndir = 0
		return true, fs.putInode(pr.ino, &in, false)
	case ptrL2:
		if in.DIndir == 0 {
			return false, nil
		}
		return s.zeroPtrInBlock(int64(in.DIndir), int(pr.lb))
	}
	// ptrData: resolve which pointer holds logical block pr.lb.
	lb := pr.lb
	if lb < layout.NDirect {
		in.Direct[lb] = 0
		return true, fs.putInode(pr.ino, &in, false)
	}
	rel := lb - layout.NDirect
	if rel < layout.PtrsPerBlock {
		if in.Indir == 0 {
			return false, nil
		}
		return s.zeroPtrInBlock(int64(in.Indir), int(rel))
	}
	rel -= layout.PtrsPerBlock
	if in.DIndir == 0 {
		return false, nil
	}
	db, err := fs.c.Read(int64(in.DIndir))
	if err != nil {
		return false, nil
	}
	l2 := leBytes{db.Data}.u32(int(rel/layout.PtrsPerBlock) * 4)
	db.Release()
	if l2 == 0 {
		return false, nil
	}
	return s.zeroPtrInBlock(int64(l2), int(rel%layout.PtrsPerBlock))
}

// zeroPtrInBlock zeroes the kth u32 of a pointer block.
func (s *checkState) zeroPtrInBlock(block int64, k int) (bool, error) {
	b, err := s.fs.c.Read(block)
	if err != nil {
		return false, nil
	}
	leBytes{b.Data}.pu32(k*4, 0)
	s.fs.c.MarkDirty(b)
	b.Release()
	return true, nil
}

// rewriteAlloc rebuilds bitmaps and group descriptors from the walk's
// used set and syncs the image. It returns the number of corrections.
func (s *checkState) rewriteAlloc() (int, error) {
	fs, n := s.fs, 0
	for ag := 0; ag < fs.sb.NAG; ag++ {
		hdr, err := fs.c.Read(fs.sb.agStart(ag))
		if err != nil {
			return n, err
		}
		bm := fs.blockBitmap(hdr)
		for i := 0; i < fs.sb.AGBlocks; i++ {
			phys := fs.sb.agStart(ag) + int64(i)
			if phys >= fs.sb.NBlocks {
				break
			}
			if s.has(phys) != bm.IsSet(i) {
				if s.has(phys) {
					bm.Set(i)
				} else {
					bm.Clear(i)
				}
				n++
			}
		}
		// Drop group state not backed by referenced blocks.
		for k := 0; k < fs.sb.groupsPerAG(); k++ {
			d := readDesc(hdr, k)
			start := fs.sb.groupBase(ag) + int64(k)*GroupBlocks
			fixed := d
			for i := 0; i < GroupBlocks; i++ {
				if d.Used&(1<<i) != 0 && !s.has(start+int64(i)) {
					fixed.Used &^= 1 << i
				}
			}
			if fixed.Used == 0 {
				fixed.Owner = 0
			}
			if fixed != d {
				writeDesc(hdr, k, fixed)
				n++
			}
		}
		fs.c.MarkDirty(hdr)
		hdr.Release()
	}
	return n, fs.c.Sync()
}
