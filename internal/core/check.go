package core

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/fsck"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Check is the offline consistency checker for C-FFS images. It finds
// every inode by walking the directory hierarchy from the root — the
// recovery strategy the paper describes for embedded inodes — and
// rebuilds the allocation state, comparing it against what is on disk:
//
//   - every block claimed by exactly one owner (file, directory,
//     indirect block, or metadata);
//   - block bitmaps match reachability (no lost or double-used blocks);
//   - group descriptors consistent: used bits only on allocated blocks,
//     owners that are live directories or emptied-out leftovers;
//   - link counts match the number of names found;
//   - "." and ".." entries well-formed;
//   - external inodes all reachable (no orphans).
//
// With repair set, bitmaps, group descriptors, and link counts are
// rewritten from the walk and the image is synced.
func Check(dev *blockio.Device, repair bool) (*fsck.Report, error) {
	fs, err := Mount(dev, Options{})
	if err != nil {
		return nil, err
	}
	r := &fsck.Report{}
	sh := newCheckState(fs, r)

	// Metadata: superblock, inode map, AG headers, inode-file blocks.
	sh.claim(0, "superblock")
	for b := int64(1); b <= mapBlocks; b++ {
		sh.claim(b, "inode map")
	}
	for ag := 0; ag < fs.sb.NAG; ag++ {
		sh.claim(fs.sb.agStart(ag), fmt.Sprintf("ag %d header", ag))
	}
	for fb := 0; fb < fs.sb.ExtBlocks; fb++ {
		phys, _, err := fs.extLoc(fb * extInosPerBlock)
		if err != nil {
			return nil, err
		}
		sh.claim(phys, fmt.Sprintf("inode-file block %d", fb))
	}

	if err := sh.walkDir(RootIno, RootIno, "/"); err != nil {
		return nil, err
	}
	sh.finish()
	if repair && !r.Clean() {
		if err := sh.repair(); err != nil {
			return nil, err
		}
	}
	r.UsedBlocks = len(sh.used)
	return r, nil
}

// checkState carries the walk.
type checkState struct {
	fs      *FS
	r       *fsck.Report
	used    map[int64]string // block -> first owner description
	extSeen map[int]int      // external idx -> names found
	extLink map[int]int      // external idx -> on-disk nlink
	visited map[int]bool     // directories walked (by external idx)
}

func newCheckState(fs *FS, r *fsck.Report) *checkState {
	return &checkState{
		fs:      fs,
		r:       r,
		used:    make(map[int64]string),
		extSeen: make(map[int]int),
		extLink: make(map[int]int),
		visited: make(map[int]bool),
	}
}

func (s *checkState) claim(block int64, owner string) {
	if prev, ok := s.used[block]; ok {
		s.r.Problems = append(s.r.Problems,
			fmt.Sprintf("block %d claimed by both %s and %s", block, prev, owner))
		return
	}
	s.used[block] = owner
}

func (s *checkState) has(block int64) bool {
	_, ok := s.used[block]
	return ok
}

// walkDir checks one directory and recurses into subdirectories.
func (s *checkState) walkDir(dir, parent vfs.Ino, path string) error {
	idx := extIdx(dir)
	if s.visited[idx] {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: directory cycle at inode %d", path, idx))
		return nil
	}
	s.visited[idx] = true
	s.r.Dirs++

	in, err := s.fs.getInode(dir)
	if err != nil {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: unreadable inode: %v", path, err))
		return nil
	}
	if in.Type != vfs.TypeDir {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: not a directory (type %v)", path, in.Type))
		return nil
	}
	s.extLink[idx] = int(in.Nlink)
	s.claimFileBlocks(&in, dir, path)

	var dotOK, dotdotOK bool
	_, err = s.fs.forEachSlot(&in, dir, func(_ *cache.Buf, e slotEntry, used bool) bool {
		if !used {
			return false
		}
		switch e.name {
		case ".":
			dotOK = !e.embedded && e.ref == uint32(dir)
		case "..":
			dotdotOK = !e.embedded && e.ref == uint32(parent)
		default:
			s.checkEntry(dir, e, path)
		}
		return false
	})
	if err != nil {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: walk failed: %v", path, err))
		return nil
	}
	if !dotOK {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: bad or missing \".\"", path))
	}
	if !dotdotOK {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: bad or missing \"..\"", path))
	}
	// Recurse after the slot scan so buffers are not pinned during it.
	ents, err := s.fs.dirList(&in, dir)
	if err != nil {
		return err
	}
	nsub := 0
	for _, e := range ents {
		if e.Type == vfs.TypeDir {
			nsub++
			if err := s.walkDir(e.Ino, dir, path+e.Name+"/"); err != nil {
				return err
			}
		}
	}
	if int(in.Nlink) != 2+nsub {
		s.r.Problems = append(s.r.Problems,
			fmt.Sprintf("%s: nlink %d, expected %d", path, in.Nlink, 2+nsub))
	}
	return nil
}

// checkEntry validates one live non-dot entry.
func (s *checkState) checkEntry(dir vfs.Ino, e slotEntry, path string) {
	name := path + e.name
	if e.embedded {
		ino := e.ino()
		in, err := s.fs.getInode(ino)
		if err != nil || !in.Alive() {
			s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: unreadable embedded inode", name))
			return
		}
		if in.Type != vfs.TypeReg {
			s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: embedded inode of type %v", name, in.Type))
		}
		if in.Nlink != 1 {
			s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: embedded inode with nlink %d", name, in.Nlink))
		}
		s.r.Files++
		s.claimFileBlocks(&in, ino, name)
		return
	}
	idx := int(e.ref) - 1
	s.extSeen[idx]++
	if e.ftype == vfs.TypeDir {
		return // walked by caller
	}
	if s.extSeen[idx] > 1 {
		return // blocks already claimed via the first name
	}
	in, err := s.fs.getInode(vfs.Ino(e.ref))
	if err != nil || !in.Alive() {
		s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: dangling external inode %d", name, e.ref))
		return
	}
	s.extLink[idx] = int(in.Nlink)
	s.r.Files++
	s.claimFileBlocks(&in, vfs.Ino(e.ref), name)
}

// claimFileBlocks claims every block reachable from an inode.
func (s *checkState) claimFileBlocks(in *layout.Inode, ino vfs.Ino, name string) {
	nblocks := (in.Size + blockio.BlockSize - 1) / blockio.BlockSize
	counted := uint32(0)
	for lb := int64(0); lb < nblocks; lb++ {
		phys, err := s.fs.bmap(in, ino, lb, false)
		if err != nil {
			s.r.Problems = append(s.r.Problems, fmt.Sprintf("%s: bmap(%d): %v", name, lb, err))
			return
		}
		if phys != 0 {
			s.claim(phys, name)
			counted++
		}
	}
	if in.Indir != 0 {
		s.claim(int64(in.Indir), name+" (indirect)")
		counted++
	}
	if in.DIndir != 0 {
		s.claim(int64(in.DIndir), name+" (double indirect)")
		counted++
		db, err := s.fs.c.Read(int64(in.DIndir))
		if err == nil {
			le := leBytes{db.Data}
			for k := 0; k < layout.PtrsPerBlock; k++ {
				if p := le.u32(k * 4); p != 0 {
					s.claim(int64(p), name+" (indirect level 2)")
					counted++
				}
			}
			db.Release()
		}
	}
	if counted != in.NBlocks {
		s.r.Problems = append(s.r.Problems,
			fmt.Sprintf("%s: NBlocks %d, found %d", name, in.NBlocks, counted))
	}
}

// finish compares the rebuilt state against the on-disk bitmaps, group
// descriptors, and external inode liveness.
func (s *checkState) finish() {
	fs, r := s.fs, s.r
	// External inode liveness vs names found.
	for idx := 0; idx < fs.sb.ExtBlocks*extInosPerBlock; idx++ {
		live := fs.extFree[idx/64]&(1<<(idx%64)) != 0
		seen := s.extSeen[idx] > 0 || s.visited[idx]
		switch {
		case live && !seen:
			r.Problems = append(r.Problems, fmt.Sprintf("orphan external inode %d", idx))
		case !live && seen:
			r.Problems = append(r.Problems, fmt.Sprintf("referenced external inode %d is dead", idx))
		}
		if seen && !s.visited[idx] {
			if want, got := s.extSeen[idx], s.extLink[idx]; want != got {
				r.Problems = append(r.Problems,
					fmt.Sprintf("external inode %d: nlink %d, found %d names", idx, got, want))
			}
		}
	}
	// Bitmaps and group descriptors.
	for ag := 0; ag < fs.sb.NAG; ag++ {
		hdr, err := fs.c.Read(fs.sb.agStart(ag))
		if err != nil {
			r.Problems = append(r.Problems, fmt.Sprintf("ag %d: unreadable header: %v", ag, err))
			continue
		}
		bm := fs.blockBitmap(hdr)
		for i := 0; i < fs.sb.AGBlocks; i++ {
			phys := fs.sb.agStart(ag) + int64(i)
			if phys >= fs.sb.NBlocks {
				break
			}
			inUse := s.has(phys)
			marked := bm.IsSet(i)
			if inUse && !marked {
				r.Problems = append(r.Problems, fmt.Sprintf("block %d in use but free in bitmap", phys))
			}
			if !inUse && marked {
				r.Problems = append(r.Problems, fmt.Sprintf("block %d lost (marked but unreferenced)", phys))
			}
		}
		for k := 0; k < fs.sb.groupsPerAG(); k++ {
			d := readDesc(hdr, k)
			if d.Owner == 0 && d.Used != 0 {
				r.Problems = append(r.Problems, fmt.Sprintf("ag %d group %d: used bits without owner", ag, k))
				continue
			}
			if d.Owner != 0 && d.Used == 0 {
				r.Problems = append(r.Problems, fmt.Sprintf("ag %d group %d: empty group still owned", ag, k))
			}
			start := fs.sb.dataStart(ag) + int64(k)*GroupBlocks
			for i := 0; i < GroupBlocks; i++ {
				if d.Used&(1<<i) != 0 && !s.has(start+int64(i)) {
					r.Problems = append(r.Problems,
						fmt.Sprintf("ag %d group %d: grouped block %d unreferenced", ag, k, start+int64(i)))
				}
			}
		}
		hdr.Release()
	}
}

// repair rewrites bitmaps, descriptors, and link counts from the walk.
func (s *checkState) repair() error {
	fs, r := s.fs, s.r
	for ag := 0; ag < fs.sb.NAG; ag++ {
		hdr, err := fs.c.Read(fs.sb.agStart(ag))
		if err != nil {
			return err
		}
		bm := fs.blockBitmap(hdr)
		for i := 0; i < fs.sb.AGBlocks; i++ {
			phys := fs.sb.agStart(ag) + int64(i)
			if phys >= fs.sb.NBlocks {
				break
			}
			if s.has(phys) != bm.IsSet(i) {
				if s.has(phys) {
					bm.Set(i)
				} else {
					bm.Clear(i)
				}
				r.RepairsMade++
			}
		}
		// Drop group state not backed by referenced blocks.
		for k := 0; k < fs.sb.groupsPerAG(); k++ {
			d := readDesc(hdr, k)
			start := fs.sb.dataStart(ag) + int64(k)*GroupBlocks
			fixed := d
			for i := 0; i < GroupBlocks; i++ {
				if d.Used&(1<<i) != 0 && !s.has(start+int64(i)) {
					fixed.Used &^= 1 << i
				}
			}
			if fixed.Used == 0 {
				fixed.Owner = 0
			}
			if fixed != d {
				writeDesc(hdr, k, fixed)
				r.RepairsMade++
			}
		}
		fs.c.MarkDirty(hdr)
		hdr.Release()
	}
	return fs.c.Sync()
}
