package core

import (
	"bytes"

	"testing"

	"cffs/internal/blockio"
	"cffs/internal/fstest"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Extension tests: immediate files and sequential readahead.

func TestImmediateFileLivesInInode(t *testing.T) {
	data := []byte("tiny but mighty")
	run := func(immediate bool) (vfs.Stat, int64, []byte) {
		fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Immediate: immediate, Mode: ModeSync})
		fs.Device().Disk().ResetStats()
		ino, err := fs.Create(fs.Root(), "tiny")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(ino, data, 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		st, err := fs.Stat(ino)
		if err != nil {
			t.Fatal(err)
		}
		got, err := vfs.ReadFile(fs, "/tiny")
		if err != nil {
			t.Fatal(err)
		}
		return st, fs.Device().Disk().Stats().Writes, got
	}
	stOn, writesOn, gotOn := run(true)
	stOff, writesOff, gotOff := run(false)
	if !bytes.Equal(gotOn, data) || !bytes.Equal(gotOff, data) {
		t.Fatal("round trip failed")
	}
	// With embedding, the inline file's data travels in the directory
	// block: no data block allocated, strictly fewer disk writes.
	if stOn.Blocks != 0 {
		t.Fatalf("immediate file allocated %d blocks", stOn.Blocks)
	}
	if stOff.Blocks == 0 {
		t.Fatal("control run unexpectedly inline")
	}
	if writesOn >= writesOff {
		t.Fatalf("immediate file cost %d writes vs %d without; must be cheaper", writesOn, writesOff)
	}
}

func TestImmediateFileSpillsWhenGrowing(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Immediate: true, Mode: ModeDelayed})
	ino, err := fs.Create(fs.Root(), "grow")
	if err != nil {
		t.Fatal(err)
	}
	small := patternBytes(1, layout.InlineSize)
	if _, err := fs.WriteAt(ino, small, 0); err != nil {
		t.Fatal(err)
	}
	// Append past the inline capacity: must spill, preserving prefix.
	tail := patternBytes(2, 3000)
	if _, err := fs.WriteAt(ino, tail, layout.InlineSize); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/grow")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:layout.InlineSize], small) || !bytes.Equal(got[layout.InlineSize:], tail) {
		t.Fatal("spill lost data")
	}
	st, _ := fs.Stat(ino)
	if st.Blocks == 0 {
		t.Fatal("grown file still claims to be inline")
	}
	// Truncate back inside the inline range: stays block-backed (no
	// re-inlining), contents correct.
	if err := fs.Truncate(ino, 10); err != nil {
		t.Fatal(err)
	}
	got, _ = vfs.ReadFile(fs, "/grow")
	if !bytes.Equal(got, small[:10]) {
		t.Fatal("shrink after spill corrupted data")
	}
}

func TestImmediateTruncateGrowSpills(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Immediate: true, Mode: ModeDelayed})
	ino, err := fs.Create(fs.Root(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(ino, 10000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := fs.ReadAt(ino, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:3], []byte("abc")) {
		t.Fatalf("truncate-grow lost inline prefix: %q", buf[:3])
	}
	for _, b := range buf[3:] {
		if b != 0 {
			t.Fatal("grown region not zero")
		}
	}
	// And truncating within the inline form zeroes the dropped tail.
	ino2, _ := fs.Create(fs.Root(), "t2")
	if _, err := fs.WriteAt(ino2, []byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(ino2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino2, []byte{'X'}, 7); err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(fs, "/t2")
	if !bytes.Equal(got, []byte{'0', '1', '2', '3', 0, 0, 0, 'X'}) {
		t.Fatalf("inline shrink+regrow = %q", got)
	}
}

// The extended configuration must still satisfy full conformance and
// the randomized oracle, and produce checkable images.
func TestExtensionsConformance(t *testing.T) {
	cfg := Options{EmbedInodes: true, Grouping: true, Immediate: true, Readahead: 8, Mode: ModeDelayed}
	fstest.Run(t, func(t *testing.T) vfs.FileSystem {
		return newCFFS(t, cfg)
	})
}

func TestExtensionsOracle(t *testing.T) {
	cfg := Options{EmbedInodes: true, Grouping: true, Immediate: true, Readahead: 8, Mode: ModeSync}
	fs := newCFFS(t, cfg)
	fstest.RunOracle(t, fs, 2000, 31337)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		max := len(rep.Problems)
		if max > 5 {
			max = 5
		}
		t.Fatalf("image inconsistent: %v", rep.Problems[:max])
	}
}

// Readahead must turn a cold sequential large-file read into a few
// scatter requests instead of one per block.
func TestReadaheadReducesSequentialRequests(t *testing.T) {
	data := patternBytes(9, 64*blockio.BlockSize)
	reqs := func(ra int) int64 {
		fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Readahead: ra, Mode: ModeDelayed})
		if err := vfs.WriteFile(fs, "/big", data); err != nil {
			t.Fatal(err)
		}
		if err := fs.Flush(); err != nil {
			t.Fatal(err)
		}
		ino, err := vfs.Walk(fs, "/big")
		if err != nil {
			t.Fatal(err)
		}
		fs.Device().Disk().ResetStats()
		got := make([]byte, len(data))
		if _, err := fs.ReadAt(ino, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("readahead corrupted data")
		}
		return fs.Device().Disk().Stats().Reads
	}
	without := reqs(0)
	with := reqs(8)
	if with >= without/3 {
		t.Fatalf("readahead=8: %d reads vs %d without; want >= 3x fewer", with, without)
	}
}

// Readahead must not fetch past physical discontinuities or EOF.
func TestReadaheadStopsAtDiscontinuity(t *testing.T) {
	fs := newCFFS(t, Options{Readahead: 16, Mode: ModeDelayed})
	// A sparse file: blocks 0-2 allocated, hole, then 10-11.
	ino, err := fs.Create(fs.Root(), "sparse")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, patternBytes(3, 3*blockio.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, patternBytes(4, 2*blockio.BlockSize), 10*blockio.BlockSize); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12*blockio.BlockSize)
	n, err := fs.ReadAt(ino, got, 0)
	if err != nil || n != len(got) {
		t.Fatalf("sparse read = %d, %v", n, err)
	}
	want := patternBytes(3, 3*blockio.BlockSize)
	if !bytes.Equal(got[:len(want)], want) {
		t.Fatal("head corrupted")
	}
	for i := 3 * blockio.BlockSize; i < 10*blockio.BlockSize; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %#x", i, got[i])
		}
	}
}

func patternBytes(seed uint64, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(seed*131 + uint64(i)*7)
	}
	return p
}
