package core

import (
	"fmt"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/volume"
)

// newStripedCFFS mounts a fresh C-FFS over an n-spindle striped volume
// and returns both so tests can check the volume's counters.
func newStripedCFFS(t *testing.T, n int, opts Options) (*FS, *volume.Volume) {
	t.Helper()
	vol, err := volume.NewMem(disk.SeagateST31200(), n, sim.NewClock(), volume.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(blockio.NewDevice(vol, sched.CLook{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	return fs, vol
}

// Group extents are GroupBlocks-aligned in the logical address space,
// and the stripe unit equals the group size, so a group can never
// straddle a stripe-unit boundary. This checks the alignment arithmetic
// directly: every AG's group area starts on a GroupBlocks boundary.
func TestGroupBaseStripeAligned(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	defer fs.Close()
	for ag := 0; ag < fs.sb.NAG; ag++ {
		base := fs.sb.groupBase(ag)
		if base%GroupBlocks != 0 {
			t.Errorf("AG %d: groupBase %d not %d-block aligned", ag, base, GroupBlocks)
		}
		if base < fs.sb.agStart(ag) || base >= fs.sb.agStart(ag+1) {
			t.Errorf("AG %d: groupBase %d outside the AG [%d,%d)",
				ag, base, fs.sb.agStart(ag), fs.sb.agStart(ag+1))
		}
	}
}

// The paper's grouping invariant under striping: every allocated group
// extent maps to exactly one spindle, and a whole workload of grouped
// creates and reads never issues a request that splits across spindles.
func TestStripedGroupsStayOnOneSpindle(t *testing.T) {
	const nDisks = 4
	fs, vol := newStripedCFFS(t, nDisks, Options{
		EmbedInodes: true, Grouping: true, Mode: ModeDelayed,
	})

	// A few directories of small files: enough to claim extents in
	// several AGs and exercise grouped readahead across spindles.
	data := make([]byte, 3*blockio.BlockSize)
	for i := range data {
		data[i] = byte(i)
	}
	for d := 0; d < 6; d++ {
		dir, err := fs.Mkdir(fs.Root(), fmt.Sprintf("d%d", d))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 20; f++ {
			ino, err := fs.Create(dir, fmt.Sprintf("f%d", f))
			if err != nil {
				t.Fatal(err)
			}
			sz := 1024 * (1 + (f % 3))
			if _, err := fs.WriteAt(ino, data[:sz], 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Every claimed group extent must map to one spindle: its first and
	// last sectors locate on the same member disk.
	extents := 0
	for ag := 0; ag < fs.sb.NAG; ag++ {
		hdr, err := fs.c.Read(fs.sb.agStart(ag))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < fs.sb.groupsPerAG(); k++ {
			d := readDesc(hdr, k)
			if d.Owner == 0 && d.Used == 0 {
				continue
			}
			extents++
			start := (fs.sb.groupBase(ag) + int64(k)*GroupBlocks) * blockio.SectorsPerBlock
			end := start + GroupBlocks*blockio.SectorsPerBlock - 1
			d0, _ := vol.Locate(start)
			d1, _ := vol.Locate(end)
			if d0 != d1 {
				t.Errorf("AG %d extent %d spans spindles %d and %d", ag, k, d0, d1)
			}
		}
		hdr.Release()
	}
	if extents == 0 {
		t.Fatal("workload claimed no group extents; test is vacuous")
	}

	// Remount cold and read everything back through the grouped path.
	dev := fs.Device()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 6; d++ {
		dir, err := fs2.Lookup(fs2.Root(), fmt.Sprintf("d%d", d))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 20; f++ {
			ino, err := fs2.Lookup(dir, fmt.Sprintf("f%d", f))
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 1024)
			if _, err := fs2.ReadAt(ino, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}

	if split := vol.SplitRequests(); split != 0 {
		t.Errorf("%d requests split across spindles; group transfers must stay on one member", split)
	}
}

// Group readahead auto-sizes to the device parallelism: off on a plain
// disk, 2x the spindle count on a striped volume, and an explicit
// option always wins.
func TestGroupReadFanPolicy(t *testing.T) {
	plain := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	defer plain.Close()
	if fan := plain.groupReadFan(); fan != 0 {
		t.Errorf("plain disk fan = %d, want 0", fan)
	}

	striped, _ := newStripedCFFS(t, 4, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	defer striped.Close()
	if fan := striped.groupReadFan(); fan != 8 {
		t.Errorf("4-spindle fan = %d, want 8", fan)
	}

	forced, _ := newStripedCFFS(t, 4, Options{
		EmbedInodes: true, Grouping: true, Mode: ModeDelayed, GroupReadahead: 3,
	})
	defer forced.Close()
	if fan := forced.groupReadFan(); fan != 3 {
		t.Errorf("explicit fan = %d, want 3", fan)
	}

	off, _ := newStripedCFFS(t, 4, Options{
		EmbedInodes: true, Grouping: true, Mode: ModeDelayed, GroupReadahead: -1,
	})
	defer off.Close()
	if fan := off.groupReadFan(); fan != 0 {
		t.Errorf("disabled fan = %d, want 0", fan)
	}
}
