package core

import (
	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// File data I/O. The read path implements the group read: a cache miss
// on any grouped block fetches the whole allocated span of its group in
// one disk request, scattering every block into the cache by physical
// address (no back-translation — the dual-indexed cache absorbs them,
// and later logical accesses find them via the owning inodes). Writes
// are delayed; grouped blocks leave the write queue as one clustered
// request because they are physically adjacent.

// readAt implements ReadAt; the FS lock is held.
func (fs *FS) readAt(ino vfs.Ino, p []byte, off int64) (int, error) {
	in, err := fs.getLiveInode(ino)
	if err != nil {
		return 0, err
	}
	if in.Type == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= in.Size {
		return 0, nil
	}
	if max := in.Size - off; int64(len(p)) > max {
		p = p[:max]
	}
	if isInline(&in) {
		// Immediate file: the contents live in the inode itself.
		return copy(p, in.Inline[off:in.Size]), nil
	}
	read := 0
	for read < len(p) {
		lb := (off + int64(read)) / blockio.BlockSize
		bo := int((off + int64(read)) % blockio.BlockSize)
		n := blockio.BlockSize - bo
		if n > len(p)-read {
			n = len(p) - read
		}
		phys, err := fs.bmap(&in, ino, lb, false)
		if err != nil {
			return read, err
		}
		if phys == 0 {
			for i := 0; i < n; i++ {
				p[read+i] = 0
			}
		} else {
			b, err := fs.readFileBlock(&in, ino, lb, phys)
			if err != nil {
				return read, err
			}
			fs.c.SetID(b, cache.ID{Ino: uint64(ino), LBlock: lb})
			copy(p[read:read+n], b.Data[bo:])
			b.Release()
		}
		read += n
	}
	return read, nil
}

// writeAt implements WriteAt; the FS write lock is held.
func (fs *FS) writeAt(ino vfs.Ino, p []byte, off int64) (int, error) {
	in, err := fs.getLiveInode(ino)
	if err != nil {
		return 0, err
	}
	if in.Type == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	end := off + int64(len(p))
	if fs.opts.Immediate && end <= layout.InlineSize && in.NBlocks == 0 && in.Direct[0] == 0 {
		// The whole file fits the inode: no data blocks at all. With
		// embedded inodes this makes a tiny file's create+data a single
		// directory-block write.
		copy(in.Inline[off:], p)
		if end > in.Size {
			in.Size = end
		}
		in.Mtime = fs.clk.Now()
		return len(p), fs.putInode(ino, &in, false)
	}
	if isInline(&in) {
		// Outgrowing (or bypassing) the inline form: spill to a block.
		if err := fs.spillInline(&in, ino); err != nil {
			return 0, err
		}
	}
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		lb := pos / blockio.BlockSize
		bo := int(pos % blockio.BlockSize)
		n := blockio.BlockSize - bo
		if n > len(p)-written {
			n = len(p) - written
		}
		prior, err := fs.bmap(&in, ino, lb, false)
		if err != nil {
			return written, err
		}
		phys, err := fs.bmap(&in, ino, lb, true)
		if err != nil {
			return written, err
		}
		var b *cache.Buf
		fullBlock := bo == 0 && n == blockio.BlockSize
		if fullBlock || prior == 0 {
			b, err = fs.c.Alloc(phys)
			if err == nil && !fullBlock {
				for i := range b.Data {
					b.Data[i] = 0
				}
			}
		} else {
			b, err = fs.readBlockGrouped(phys)
		}
		if err != nil {
			return written, err
		}
		copy(b.Data[bo:bo+n], p[written:written+n])
		fs.c.SetID(b, cache.ID{Ino: uint64(ino), LBlock: lb})
		fs.c.MarkDirty(b)
		b.Release()
		written += n
		if pos+int64(n) > in.Size {
			in.Size = pos + int64(n)
		}
	}
	in.Mtime = fs.clk.Now()
	return written, fs.putInode(ino, &in, false)
}

// readFileBlock fetches one file data block, applying the group-read
// policy for grouped blocks and, for ungrouped ones, sequential
// readahead: on a miss, up to Options.Readahead physically contiguous
// blocks of the same file come in with one scatter request.
func (fs *FS) readFileBlock(in *layout.Inode, ino vfs.Ino, lb, phys int64) (*cache.Buf, error) {
	if fs.opts.Readahead > 0 && fs.c.Peek(phys) == nil {
		if _, _, ok := fs.groupSpan(phys); !ok {
			run := int64(1)
			fileBlocks := (in.Size + blockio.BlockSize - 1) / blockio.BlockSize
			for run < int64(fs.opts.Readahead) && lb+run < fileBlocks {
				np, err := fs.bmap(in, ino, lb+run, false)
				if err != nil || np != phys+run {
					break
				}
				run++
			}
			if run > 1 {
				if err := fs.c.ReadRun(phys, int(run)); err != nil {
					return nil, err
				}
			}
		}
	}
	return fs.readBlockGrouped(phys)
}

// isInline reports whether a regular file's contents are stored in the
// inode's spare bytes (immediate file).
func isInline(in *layout.Inode) bool {
	return in.Type == vfs.TypeReg && in.Size > 0 &&
		in.Size <= layout.InlineSize && in.NBlocks == 0 && in.Direct[0] == 0
}

// spillInline moves an immediate file's data into a freshly allocated
// first block, clearing the inline area. The caller holds the inode and
// writes it back.
func (fs *FS) spillInline(in *layout.Inode, ino vfs.Ino) error {
	phys, err := fs.bmap(in, ino, 0, true)
	if err != nil {
		return err
	}
	b, err := fs.c.Alloc(phys)
	if err != nil {
		return err
	}
	for i := range b.Data {
		b.Data[i] = 0
	}
	copy(b.Data, in.Inline[:in.Size])
	fs.c.MarkDirty(b)
	b.Release()
	for i := range in.Inline {
		in.Inline[i] = 0
	}
	return nil
}
