package core

import (
	"fmt"

	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Namespace operations. With embedded inodes, a create or delete of a
// single-link regular file touches exactly one metadata block — the
// directory block holding both the name and the inode — so ModeSync pays
// one ordered write where the conventional scheme pays two.

// lookup implements Lookup; the FS lock is held.
func (fs *FS) lookup(dir vfs.Ino, name string) (vfs.Ino, error) {
	din, err := fs.dirInode(dir)
	if err != nil {
		return 0, err
	}
	b, e, err := fs.dirLookup(&din, dir, name)
	if err != nil {
		return 0, err
	}
	b.Release()
	return e.ino(), nil
}

// dirInode fetches an inode and checks it is a directory.
func (fs *FS) dirInode(dir vfs.Ino) (layout.Inode, error) {
	din, err := fs.getLiveInode(dir)
	if err != nil {
		return din, err
	}
	if din.Type != vfs.TypeDir {
		return din, fmt.Errorf("cffs: inode %#x: %w", uint64(dir), vfs.ErrNotDir)
	}
	return din, nil
}

// create implements Create; the FS write lock is held.
func (fs *FS) create(dir vfs.Ino, name string) (vfs.Ino, error) {
	if err := checkName(name); err != nil {
		return 0, err
	}
	din, err := fs.dirInode(dir)
	if err != nil {
		return 0, err
	}
	now := fs.clk.Now()
	in := layout.Inode{Type: vfs.TypeReg, Nlink: 1, Mtime: now, Parent: uint32(dir)}

	if fs.opts.EmbedInodes {
		// One pass finds the slot and proves the name free; then one
		// ordered write lands name and inode together.
		b, slot, err := fs.dirPrepareCreate(&din, dir, name)
		if err != nil {
			return 0, err
		}
		writeSlotEmbedded(b.Data, slot.slot*slotSize, name, &in)
		if err := fs.syncMeta(b); err != nil {
			b.Release()
			return 0, err
		}
		b.Release()
		if err := fs.idxInsert(&din, dir, name, idxLoc(slot.block, slot.slot)); err != nil {
			return 0, err
		}
		din.Mtime = now
		if err := fs.putInode(dir, &din, false); err != nil {
			return 0, err
		}
		return embedIno(slot.block, slot.slot), nil
	}

	// Conventional two ordered writes: inode first, then the name.
	b, slot, err := fs.dirPrepareCreate(&din, dir, name)
	if err != nil {
		return 0, err
	}
	idx, err := fs.allocExtInode(fs.homeAG(&din, dir))
	if err != nil {
		b.Release()
		return 0, err
	}
	ino := vfs.Ino(idx + 1)
	if err := fs.putInode(ino, &in, true); err != nil {
		b.Release()
		return 0, err
	}
	writeSlotExternal(b.Data, slot.slot*slotSize, name, ino, vfs.TypeReg)
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return 0, err
	}
	b.Release()
	if err := fs.idxInsert(&din, dir, name, idxLoc(slot.block, slot.slot)); err != nil {
		return 0, err
	}
	din.Mtime = now
	return ino, fs.putInode(dir, &din, false)
}

// mkdir implements Mkdir; the FS write lock is held. Directory inodes are always external
// (they are pointed to by "." and ".." and may be multiply referenced).
func (fs *FS) mkdir(dir vfs.Ino, name string) (vfs.Ino, error) {
	if err := checkName(name); err != nil {
		return 0, err
	}
	din, err := fs.dirInode(dir)
	if err != nil {
		return 0, err
	}
	b, slot, err := fs.dirPrepareCreate(&din, dir, name)
	if err != nil {
		return 0, err
	}
	idx, err := fs.allocExtInode(fs.pickDirAG())
	if err != nil {
		b.Release()
		return 0, err
	}
	ino := vfs.Ino(idx + 1)
	now := fs.clk.Now()
	in := layout.Inode{Type: vfs.TypeDir, Nlink: 2, Mtime: now, Parent: uint32(dir)}
	if err := fs.initDirData(&in, ino, dir); err != nil {
		b.Release()
		return 0, err
	}
	if fs.opts.Mode == ModeSync {
		// Child block before child inode before parent entry.
		phys, err := fs.bmap(&in, ino, 0, false)
		if err != nil {
			b.Release()
			return 0, err
		}
		cb, err := fs.c.Read(phys)
		if err != nil {
			b.Release()
			return 0, err
		}
		if err := fs.c.WriteSync(cb); err != nil {
			cb.Release()
			b.Release()
			return 0, err
		}
		cb.Release()
	}
	if err := fs.putInode(ino, &in, true); err != nil {
		b.Release()
		return 0, err
	}
	writeSlotExternal(b.Data, slot.slot*slotSize, name, ino, vfs.TypeDir)
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return 0, err
	}
	b.Release()
	if err := fs.idxInsert(&din, dir, name, idxLoc(slot.block, slot.slot)); err != nil {
		return 0, err
	}
	din.Nlink++
	din.Mtime = now
	return ino, fs.putInode(dir, &din, false)
}

// externalize moves an embedded inode into the inode file, rewriting its
// directory entry as an external reference. Multi-link files need a
// location-independent inode; this is the paper's escape hatch.
func (fs *FS) externalize(old vfs.Ino) (vfs.Ino, error) {
	in, err := fs.getLiveInode(old)
	if err != nil {
		return 0, err
	}
	block, slot := embedLoc(old)
	b, err := fs.c.Read(block)
	if err != nil {
		return 0, err
	}
	e := readSlot(b.Data, slot*slotSize, block, slot)
	b.Release()

	idx, err := fs.allocExtInode(int(mix64(uint64(in.Parent)) % uint64(fs.sb.NAG)))
	if err != nil {
		return 0, err
	}
	ino := vfs.Ino(idx + 1)
	// External copy reaches disk before the entry stops embedding it.
	if err := fs.putInode(ino, &in, true); err != nil {
		return 0, err
	}
	b, err = fs.c.Read(block)
	if err != nil {
		return 0, err
	}
	writeSlotExternal(b.Data, slot*slotSize, e.name, ino, in.Type)
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return 0, err
	}
	b.Release()
	return ino, nil
}

// link implements Link; the FS write lock is held. When the target was
// embedded it is externalized and its ino changes; the retired embedded
// ino is returned so the caller can invalidate cached paths to it.
func (fs *FS) link(dir vfs.Ino, name string, target vfs.Ino) (retired vfs.Ino, err error) {
	if err := checkName(name); err != nil {
		return 0, err
	}
	din, err := fs.dirInode(dir)
	if err != nil {
		return 0, err
	}
	tin, err := fs.getLiveInode(target)
	if err != nil {
		return 0, err
	}
	if tin.Type == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	// One pass proves the name free and pins its future slot. The slot
	// stays valid across externalize below: that rewrites the target's
	// own entry in place and never moves or fills other slots.
	b, slot, err := fs.dirPrepareCreate(&din, dir, name)
	if err != nil {
		return 0, err
	}
	if isEmbedded(target) {
		retired = target
		target, err = fs.externalize(target)
		if err != nil {
			b.Release()
			return 0, err
		}
		tin, err = fs.getLiveInode(target)
		if err != nil {
			b.Release()
			return 0, err
		}
	}
	tin.Nlink++
	if err := fs.putInode(target, &tin, true); err != nil {
		b.Release()
		return 0, err
	}
	writeSlotExternal(b.Data, slot.slot*slotSize, name, target, vfs.TypeReg)
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return 0, err
	}
	b.Release()
	if err := fs.idxInsert(&din, dir, name, idxLoc(slot.block, slot.slot)); err != nil {
		return 0, err
	}
	din.Mtime = fs.clk.Now()
	return retired, fs.putInode(dir, &din, false)
}

// unlink implements Unlink; the FS write lock is held. It returns the
// ino the removed entry referenced (which may still be alive through
// other links) for path-cache invalidation.
func (fs *FS) unlink(dir vfs.Ino, name string) (vfs.Ino, error) {
	if name == "." || name == ".." {
		return 0, vfs.ErrInvalid
	}
	din, err := fs.dirInode(dir)
	if err != nil {
		return 0, err
	}
	b, e, err := fs.dirLookup(&din, dir, name)
	if err != nil {
		return 0, err
	}
	if e.ftype == vfs.TypeDir {
		b.Release()
		return 0, vfs.ErrIsDir
	}
	victim := e.ino()

	if e.embedded {
		// Kill name and inode together with a single ordered write, then
		// free the data (bitmap updates are delayed writes). The ordered
		// clear must come first: once a block free is visible it can be
		// reallocated, and a crash before the entry clear was durable
		// would leave the old inode claiming a reused block.
		var in layout.Inode
		in.Decode(b.Data[e.slot*slotSize+slotInodeOff:])
		clearSlot(b.Data, e.slot*slotSize)
		if err := fs.syncMeta(b); err != nil {
			b.Release()
			return 0, err
		}
		b.Release()
		if err := fs.idxRemove(&din, dir, name, idxLoc(e.block, e.slot)); err != nil {
			return 0, err
		}
		if err := fs.truncate(&in, e.ino(), 0); err != nil {
			return 0, err
		}
		din.Mtime = fs.clk.Now()
		return victim, fs.putInode(dir, &din, false)
	}

	// External: conventional two ordered writes.
	clearSlot(b.Data, e.slot*slotSize)
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return 0, err
	}
	b.Release()
	if err := fs.idxRemove(&din, dir, name, idxLoc(e.block, e.slot)); err != nil {
		return 0, err
	}
	din.Mtime = fs.clk.Now()
	if err := fs.putInode(dir, &din, false); err != nil {
		return 0, err
	}
	ino := e.ino()
	tin, err := fs.getLiveInode(ino)
	if err != nil {
		return 0, err
	}
	tin.Nlink--
	if tin.Nlink > 0 {
		return victim, fs.putInode(ino, &tin, true)
	}
	if err := fs.truncate(&tin, ino, 0); err != nil {
		return 0, err
	}
	tin = layout.Inode{}
	if err := fs.putInode(ino, &tin, true); err != nil {
		return 0, err
	}
	fs.freeExtInode(extIdx(ino))
	return victim, nil
}

// rmdir implements Rmdir; the FS write lock is held. It returns the
// removed directory's ino for path-cache invalidation.
func (fs *FS) rmdir(dir vfs.Ino, name string) (vfs.Ino, error) {
	if name == "." || name == ".." {
		return 0, vfs.ErrInvalid
	}
	din, err := fs.dirInode(dir)
	if err != nil {
		return 0, err
	}
	b, e, err := fs.dirLookup(&din, dir, name)
	if err != nil {
		return 0, err
	}
	b.Release()
	if e.ftype != vfs.TypeDir {
		return 0, vfs.ErrNotDir
	}
	ino := e.ino()
	cin, err := fs.getLiveInode(ino)
	if err != nil {
		return 0, err
	}
	empty, err := fs.dirIsEmpty(&cin, ino)
	if err != nil {
		return 0, err
	}
	if !empty {
		return 0, vfs.ErrNotEmpty
	}
	b, err = fs.c.Read(e.block)
	if err != nil {
		return 0, err
	}
	clearSlot(b.Data, e.slot*slotSize)
	if err := fs.syncMeta(b); err != nil {
		b.Release()
		return 0, err
	}
	b.Release()
	if err := fs.idxRemove(&din, dir, name, idxLoc(e.block, e.slot)); err != nil {
		return 0, err
	}
	din.Nlink--
	din.Mtime = fs.clk.Now()
	if err := fs.putInode(dir, &din, false); err != nil {
		return 0, err
	}
	// The child's own index lives outside its bmap tree; truncate will
	// not find those blocks, so detach and free them here.
	if err := fs.idxDrop(&cin, ino, fs.idxTrusted(ino)); err != nil {
		return 0, err
	}
	if err := fs.truncate(&cin, ino, 0); err != nil {
		return 0, err
	}
	cin = layout.Inode{}
	if err := fs.putInode(ino, &cin, true); err != nil {
		return 0, err
	}
	fs.freeExtInode(extIdx(ino))
	return ino, nil
}

// rename implements Rename; the FS write lock is held. An embedded inode physically moves
// with its entry, so the file's Ino changes; callers re-Lookup, exactly
// as the cache's dual indexing anticipates. It returns the moved
// entry's (pre-move) ino and the replaced destination's ino, if any,
// for path-cache invalidation.
func (fs *FS) rename(sdir vfs.Ino, sname string, ddir vfs.Ino, dname string) (moved, replaced vfs.Ino, err error) {
	if sname == "." || sname == ".." {
		return 0, 0, vfs.ErrInvalid
	}
	if err := checkName(dname); err != nil {
		return 0, 0, err
	}
	sin, err := fs.dirInode(sdir)
	if err != nil {
		return 0, 0, err
	}
	b, se, err := fs.dirLookup(&sin, sdir, sname)
	if err != nil {
		return 0, 0, err
	}
	var embeddedCopy layout.Inode
	if se.embedded {
		embeddedCopy.Decode(b.Data[se.slot*slotSize+slotInodeOff:])
	}
	b.Release()
	moved = se.ino()
	din, err := fs.dirInode(ddir)
	if err != nil {
		return 0, 0, err
	}
	if b, de, err := fs.dirLookup(&din, ddir, dname); err == nil {
		b.Release()
		if de.block == se.block && de.slot == se.slot {
			return 0, 0, nil // renaming onto itself
		}
		if de.ftype == vfs.TypeDir {
			return 0, 0, vfs.ErrIsDir
		}
		replaced, err = fs.unlink(ddir, dname)
		if err != nil {
			return 0, 0, err
		}
		din, err = fs.dirInode(ddir)
		if err != nil {
			return 0, 0, err
		}
	}

	// Install the destination entry first: two names briefly, never zero.
	nb, slot, err := fs.dirFindFree(&din, ddir)
	if err != nil {
		return 0, 0, err
	}
	if se.embedded {
		embeddedCopy.Parent = uint32(ddir)
		writeSlotEmbedded(nb.Data, slot.slot*slotSize, dname, &embeddedCopy)
	} else {
		writeSlotExternal(nb.Data, slot.slot*slotSize, dname, vfs.Ino(se.ref), se.ftype)
	}
	if err := fs.syncMeta(nb); err != nil {
		nb.Release()
		return moved, replaced, err
	}
	nb.Release()
	if err := fs.idxInsert(&din, ddir, dname, idxLoc(slot.block, slot.slot)); err != nil {
		return moved, replaced, err
	}
	din.Mtime = fs.clk.Now()
	if err := fs.putInode(ddir, &din, false); err != nil {
		return moved, replaced, err
	}

	// Remove the source entry.
	if sdir == ddir {
		sin, err = fs.dirInode(sdir)
		if err != nil {
			return moved, replaced, err
		}
	}
	rb, err := fs.c.Read(se.block)
	if err != nil {
		return moved, replaced, err
	}
	clearSlot(rb.Data, se.slot*slotSize)
	if err := fs.syncMeta(rb); err != nil {
		rb.Release()
		return moved, replaced, err
	}
	rb.Release()
	if err := fs.idxRemove(&sin, sdir, sname, idxLoc(se.block, se.slot)); err != nil {
		return moved, replaced, err
	}
	sin.Mtime = fs.clk.Now()
	if err := fs.putInode(sdir, &sin, false); err != nil {
		return moved, replaced, err
	}

	// A directory changing parents repoints ".." and the link counts.
	if se.ftype == vfs.TypeDir && sdir != ddir {
		child := vfs.Ino(se.ref)
		cin, err := fs.getLiveInode(child)
		if err != nil {
			return moved, replaced, err
		}
		cb, dd, err := fs.dirLookup(&cin, child, "..")
		if err != nil {
			return moved, replaced, err
		}
		writeSlotExternal(cb.Data, dd.slot*slotSize, "..", ddir, vfs.TypeDir)
		fs.c.MarkDirty(cb)
		cb.Release()
		cin.Parent = uint32(ddir)
		if err := fs.putInode(child, &cin, false); err != nil {
			return moved, replaced, err
		}
		sin.Nlink--
		if err := fs.putInode(sdir, &sin, false); err != nil {
			return moved, replaced, err
		}
		din, err = fs.dirInode(ddir)
		if err != nil {
			return moved, replaced, err
		}
		din.Nlink++
		if err := fs.putInode(ddir, &din, false); err != nil {
			return moved, replaced, err
		}
	}
	return moved, replaced, nil
}

// readDir implements ReadDir; the FS lock is held. With embedded inodes the entries'
// inodes arrive in the same blocks — a Stat after ReadDir is free of
// disk I/O, which is what accelerates attribute-scan workloads.
func (fs *FS) readDir(dir vfs.Ino) ([]vfs.DirEntry, error) {
	din, err := fs.dirInode(dir)
	if err != nil {
		return nil, err
	}
	return fs.dirList(&din, dir)
}

// stat implements Stat; the FS lock is held.
func (fs *FS) stat(ino vfs.Ino) (vfs.Stat, error) {
	in, err := fs.getLiveInode(ino)
	if err != nil {
		return vfs.Stat{}, err
	}
	return vfs.Stat{
		Ino:    ino,
		Type:   in.Type,
		Nlink:  uint32(in.Nlink),
		Size:   in.Size,
		Blocks: int64(in.NBlocks),
		Mtime:  in.Mtime,
	}, nil
}

// truncateTo implements Truncate; the FS write lock is held.
func (fs *FS) truncateTo(ino vfs.Ino, size int64) error {
	in, err := fs.getLiveInode(ino)
	if err != nil {
		return err
	}
	if in.Type == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if err := fs.truncate(&in, ino, size); err != nil {
		return err
	}
	return fs.putInode(ino, &in, false)
}
