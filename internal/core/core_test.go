package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/fstest"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

func newCFFS(t *testing.T, opts Options) *FS {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(blockio.NewDevice(d, sched.CLook{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// All four configurations of the paper's comparison grid must satisfy
// the same file system semantics.
func TestConformance(t *testing.T) {
	configs := []Options{
		{EmbedInodes: false, Grouping: false, Mode: ModeSync},
		{EmbedInodes: true, Grouping: false, Mode: ModeSync},
		{EmbedInodes: false, Grouping: true, Mode: ModeDelayed},
		{EmbedInodes: true, Grouping: true, Mode: ModeDelayed},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Config()+"-"+cfg.Mode.String(), func(t *testing.T) {
			fstest.Run(t, func(t *testing.T) vfs.FileSystem {
				return newCFFS(t, cfg)
			})
		})
	}
}

func TestConfigNames(t *testing.T) {
	if (Options{EmbedInodes: true, Grouping: true}).Config() != "C-FFS" ||
		(Options{EmbedInodes: true}).Config() != "embedded-only" ||
		(Options{Grouping: true}).Config() != "grouping-only" ||
		(Options{}).Config() != "conventional" {
		t.Fatal("Config names wrong")
	}
}

// The headline metadata property: an embedded create is one ordered
// write; a conventional create is two. Same for delete.
func TestEmbeddedCreateIsOneOrderedWrite(t *testing.T) {
	for _, embed := range []bool{true, false} {
		fs := newCFFS(t, Options{EmbedInodes: embed, Mode: ModeSync})
		// Warm the path so allocation metadata is cached.
		if _, err := fs.Create(fs.Root(), "warm"); err != nil {
			t.Fatal(err)
		}
		fs.Device().Disk().ResetStats()
		if _, err := fs.Create(fs.Root(), "probe"); err != nil {
			t.Fatal(err)
		}
		got := fs.Device().Disk().Stats().Writes
		want := int64(2)
		if embed {
			want = 1
		}
		if got != want {
			t.Errorf("embed=%v: create issued %d ordered writes, want %d", embed, got, want)
		}
	}
}

func TestEmbeddedDeleteIsOneOrderedWrite(t *testing.T) {
	for _, embed := range []bool{true, false} {
		fs := newCFFS(t, Options{EmbedInodes: embed, Mode: ModeSync})
		ino, err := fs.Create(fs.Root(), "victim")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(ino, make([]byte, 1024), 0); err != nil {
			t.Fatal(err)
		}
		fs.Device().Disk().ResetStats()
		if err := fs.Unlink(fs.Root(), "victim"); err != nil {
			t.Fatal(err)
		}
		got := fs.Device().Disk().Stats().Writes
		want := int64(2)
		if embed {
			want = 1
		}
		if got != want {
			t.Errorf("embed=%v: delete issued %d ordered writes, want %d", embed, got, want)
		}
	}
}

// With grouping on, small files created in one directory must be
// physically adjacent — the property FFS locality lacks.
func TestGroupingMakesSiblingsAdjacent(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	var phys []int64
	for i := 0; i < GroupBlocks; i++ {
		ino, err := fs.Create(fs.Root(), fmt.Sprintf("g%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(ino, make([]byte, 1024), 0); err != nil {
			t.Fatal(err)
		}
		in, err := fs.getLiveInode(ino)
		if err != nil {
			t.Fatal(err)
		}
		phys = append(phys, int64(in.Direct[0]))
	}
	// Directory blocks share the group with the files (co-location), so
	// a gap of one block may appear where the directory grew; anything
	// larger means grouping failed.
	for i := 1; i < len(phys); i++ {
		gap := phys[i] - phys[i-1]
		if gap < 1 || gap > 2 {
			t.Fatalf("files %d and %d at blocks %d and %d; want adjacent (dir block gaps allowed)",
				i-1, i, phys[i-1], phys[i])
		}
	}
	if span := phys[len(phys)-1] - phys[0]; span > 2*GroupBlocks {
		t.Fatalf("sibling files span %d blocks; grouping failed", span)
	}
}

// Reading one file of a flushed group must bring its siblings into the
// cache with a single disk request — the group read.
func TestGroupReadFetchesSiblings(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	const n = 8
	for i := 0; i < n; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/f%d", i), bytes.Repeat([]byte{byte(i)}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	// Re-walk to warm directory blocks, then count data-read requests.
	if _, err := vfs.ReadFile(fs, "/f0"); err != nil {
		t.Fatal(err)
	}
	before := fs.Device().Disk().Stats().Reads
	for i := 1; i < n; i++ {
		got, err := vfs.ReadFile(fs, fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("file %d corrupted", i)
		}
	}
	if extra := fs.Device().Disk().Stats().Reads - before; extra != 0 {
		t.Fatalf("reading %d grouped siblings cost %d extra disk reads; want 0 (group read)", n-1, extra)
	}
}

// Without grouping, the same pattern costs roughly one read per file.
func TestNoGroupingReadsPerFile(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: false, Mode: ModeDelayed})
	const n = 8
	for i := 0; i < n; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/f%d", i), bytes.Repeat([]byte{byte(i)}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.ReadFile(fs, "/f0"); err != nil {
		t.Fatal(err)
	}
	before := fs.Device().Disk().Stats().Reads
	for i := 1; i < n; i++ {
		if _, err := vfs.ReadFile(fs, fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if extra := fs.Device().Disk().Stats().Reads - before; extra < int64(n-1) {
		t.Fatalf("ungrouped config read %d siblings with %d reads; expected >= one per file", n-1, extra)
	}
}

// Group state must survive delete: freeing all files of a group
// dissolves it, and the space is reusable by another directory.
func TestGroupDissolvesOnDelete(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	free0, err := fs.FreeBlocks()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/d%d", i), make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := fs.Unlink(fs.Root(), fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	free1, err := fs.FreeBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if free1 != free0 {
		t.Fatalf("blocks leaked through group lifecycle: %d -> %d", free0, free1)
	}
}

// Hard links force externalization: the inode moves out of the
// directory and both names keep working.
func TestLinkExternalizes(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeSync})
	ino, err := fs.Create(fs.Root(), "orig")
	if err != nil {
		t.Fatal(err)
	}
	if !isEmbedded(ino) {
		t.Fatal("fresh single-link file not embedded")
	}
	if err := fs.Link(fs.Root(), "other", ino); err != nil {
		t.Fatal(err)
	}
	newIno, err := fs.Lookup(fs.Root(), "orig")
	if err != nil {
		t.Fatal(err)
	}
	if isEmbedded(newIno) {
		t.Fatal("multi-link file still embedded")
	}
	otherIno, err := fs.Lookup(fs.Root(), "other")
	if err != nil {
		t.Fatal(err)
	}
	if otherIno != newIno {
		t.Fatalf("names resolve to %#x and %#x", uint64(newIno), uint64(otherIno))
	}
	st, err := fs.Stat(newIno)
	if err != nil || st.Nlink != 2 {
		t.Fatalf("stat after link: %+v, %v", st, err)
	}
	// The stale embedded ino must now be rejected, not misread.
	if _, err := fs.Stat(ino); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("stale embedded ino Stat = %v, want ErrNotExist", err)
	}
}

// An embedded ino changes across rename (the inode physically moves with
// its entry); the old handle must go stale cleanly.
func TestRenameChangesEmbeddedIno(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	ino, err := fs.Create(fs.Root(), "before")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, []byte("content"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(fs.Root(), "before", fs.Root(), "after"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/after")
	if err != nil || string(got) != "content" {
		t.Fatalf("renamed contents = %q, %v", got, err)
	}
	if _, err := fs.Lookup(fs.Root(), "before"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("old name survived")
	}
}

// Large files must not consume group space beyond the threshold: blocks
// past GroupBlocks use conventional clustered allocation.
func TestLargeFileLeavesGroups(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	ino, err := fs.Create(fs.Root(), "big")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 40*blockio.BlockSize)
	if _, err := fs.WriteAt(ino, data, 0); err != nil {
		t.Fatal(err)
	}
	in, err := fs.getLiveInode(vfsLookup(t, fs, "big"))
	if err != nil {
		t.Fatal(err)
	}
	// Blocks >= GroupBlocks should be contiguous with their neighbours
	// (clustered), and must not be inside the file's group extent.
	_, _, start, ok := fs.locateGroup(int64(in.Direct[0]))
	if !ok {
		t.Fatal("first block not in a group extent")
	}
	for lb := int64(GroupBlocks); lb < 40; lb++ {
		phys, err := fs.bmap(&in, ino, lb, false)
		if err != nil {
			t.Fatal(err)
		}
		if phys >= start && phys < start+GroupBlocks {
			t.Fatalf("large-file block %d allocated inside the group extent", lb)
		}
	}
}

func TestMountRoundTripAllConfigs(t *testing.T) {
	for _, cfg := range []Options{
		{},
		{EmbedInodes: true},
		{Grouping: true},
		{EmbedInodes: true, Grouping: true},
	} {
		fs := newCFFS(t, cfg)
		if err := vfs.WriteFile(fs, "/data", []byte("persisted")); err != nil {
			t.Fatal(err)
		}
		if _, err := vfs.MkdirAll(fs, "/a/b"); err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(fs, "/a/b/c", []byte("deep")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close(); err != nil {
			t.Fatal(err)
		}
		fs2, err := Mount(fs.Device(), Options{Mode: cfg.Mode})
		if err != nil {
			t.Fatal(err)
		}
		if fs2.Options().EmbedInodes != cfg.EmbedInodes || fs2.Options().Grouping != cfg.Grouping {
			t.Fatalf("%s: options not restored from superblock", cfg.Config())
		}
		got, err := vfs.ReadFile(fs2, "/data")
		if err != nil || string(got) != "persisted" {
			t.Fatalf("%s: remount read = %q, %v", cfg.Config(), got, err)
		}
		got, err = vfs.ReadFile(fs2, "/a/b/c")
		if err != nil || string(got) != "deep" {
			t.Fatalf("%s: remount deep read = %q, %v", cfg.Config(), got, err)
		}
		// External inode allocation must keep working after the rescan.
		if _, err := fs2.Mkdir(fs2.Root(), "postmount"); err != nil {
			t.Fatalf("%s: mkdir after remount: %v", cfg.Config(), err)
		}
	}
}

func TestMountRejectsGarbage(t *testing.T) {
	d, _ := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if _, err := Mount(blockio.NewDevice(d, sched.CLook{}), Options{}); err == nil {
		t.Fatal("mounted an unformatted device")
	}
}

// A directory's blocks hold 16 entries each with embedded inodes; the
// directory-size overhead the paper discusses must be visible.
func TestDirectorySizeGrowth(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	for i := 0; i < 100; i++ {
		if _, err := fs.Create(fs.Root(), fmt.Sprintf("e%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := fs.Stat(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	// 100 entries + . + .. at 16 slots per block -> ceil(102/16) = 7 blocks.
	if want := int64(7 * blockio.BlockSize); st.Size != want {
		t.Fatalf("directory size %d, want %d", st.Size, want)
	}
}

func TestExternalInodeFileGrows(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: false, Mode: ModeDelayed})
	before := fs.sb.ExtBlocks
	// 32 inodes per block; create enough to force growth.
	for i := 0; i < 100; i++ {
		if _, err := fs.Create(fs.Root(), fmt.Sprintf("x%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if fs.sb.ExtBlocks <= before {
		t.Fatalf("inode file did not grow: %d -> %d", before, fs.sb.ExtBlocks)
	}
	// Free slots are reused after deletion without growing further.
	grown := fs.sb.ExtBlocks
	for i := 0; i < 100; i++ {
		if err := fs.Unlink(fs.Root(), fmt.Sprintf("x%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := fs.Create(fs.Root(), fmt.Sprintf("y%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if fs.sb.ExtBlocks != grown {
		t.Fatalf("inode file grew on reuse: %d -> %d", grown, fs.sb.ExtBlocks)
	}
}

func TestGroupSpanAndDescriptors(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	ino, err := fs.Create(fs.Root(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(ino, make([]byte, 3*blockio.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	in, err := fs.getLiveInode(vfsLookup(t, fs, "a"))
	if err != nil {
		t.Fatal(err)
	}
	start, count, ok := fs.groupSpan(int64(in.Direct[0]))
	if !ok {
		t.Fatal("grouped block has no group span")
	}
	// The span covers the file's three blocks plus the co-located
	// directory block.
	if count < 3 || count > 5 {
		t.Fatalf("span count %d, want 3-5", count)
	}
	if start > int64(in.Direct[0]) || start+int64(count) < int64(in.Direct[2])+1 {
		t.Fatalf("span [%d,+%d) does not cover file blocks %v", start, count, in.Direct[:3])
	}
}

func vfsLookup(t *testing.T, fs *FS, name string) vfs.Ino {
	t.Helper()
	ino, err := fs.Lookup(fs.Root(), name)
	if err != nil {
		t.Fatal(err)
	}
	return ino
}

// Regression: a large file fills its directory's group and then squats
// (via conventional clustered allocation) on the free slots of the next
// claimed extent. Small files created afterwards must still get real
// blocks — this once produced block-0 pointers and superblock damage.
func TestGroupSquattersDoNotBreakAllocation(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	if err := vfs.WriteFile(fs, "/small0", bytes.Repeat([]byte{0xA0}, 1300)); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/huge", bytes.Repeat([]byte{0xB1}, 127*blockio.BlockSize)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("/post%02d", i)
		want := bytes.Repeat([]byte{byte(0xC0 + i)}, 5000)
		if err := vfs.WriteFile(fs, name, want); err != nil {
			t.Fatal(err)
		}
		got, err := vfs.ReadFile(fs, name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted after group squatting", name)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("image not clean: %v", rep.Problems)
	}
}

// TestOracle model-checks every configuration against the in-memory
// reference file system with a randomized operation stream.
func TestOracle(t *testing.T) {
	configs := []Options{
		{Mode: ModeSync},
		{EmbedInodes: true, Mode: ModeSync},
		{Grouping: true, Mode: ModeDelayed},
		{EmbedInodes: true, Grouping: true, Mode: ModeDelayed},
	}
	for i, cfg := range configs {
		cfg := cfg
		seed := uint64(1000 + i)
		t.Run(cfg.Config()+"-"+cfg.Mode.String(), func(t *testing.T) {
			fs := newCFFS(t, cfg)
			fstest.RunOracle(t, fs, 2500, seed)
			// The surviving image must also be structurally consistent.
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}
			rep, err := Check(fs.Device(), false)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				max := len(rep.Problems)
				if max > 5 {
					max = 5
				}
				t.Fatalf("image inconsistent after oracle run: %v", rep.Problems[:max])
			}
		})
	}
}
