package core

import (
	"fmt"
	"strings"
	"sync"

	"cffs/internal/obs"
	"cffs/internal/vfs"
)

// pathCache is a sharded full-path→ino cache serving vfs.Walk through
// FS.WalkPath: a hit resolves any depth of path with zero component
// lookups and zero disk requests.
//
// Precision over heuristics: every entry remembers the whole inode
// chain it resolved through, and each shard keeps a reverse index from
// inode to the entries whose chain contains it. A namespace mutation
// invalidates by inode — unlink/rmdir kill the victim's paths, and a
// directory rename kills every cached path that passed through the
// moved directory (prefix invalidation), because all of them carried
// its ino in their chain. There is no TTL and no revalidation walk: the
// cache is exactly as fresh as the last mutation.
//
// Locking: shard mutexes sit below fs.mu in the hierarchy. Probes take
// only the shard mutex; an insert happens while the resolving walk
// still holds fs.mu shared, and invalidation runs under fs.mu held
// exclusively — so a stale entry can never be inserted after the
// mutation that would have killed it.
const (
	nPathShards      = 16
	defaultPathCache = 32768
)

type pathEnt struct {
	ino   vfs.Ino
	chain []vfs.Ino // every inode the resolution passed through, root included
}

type pathShard struct {
	mu      sync.Mutex
	entries map[string]pathEnt
	byIno   map[vfs.Ino]map[string]struct{}
}

type pathCache struct {
	shards  [nPathShards]pathShard
	perCap  int // per-shard entry capacity
	hits    *obs.Counter
	misses  *obs.Counter
	invals  *obs.Counter
	evicts  *obs.Counter
	inserts *obs.Counter
}

// newPathCache sizes a cache from Options.PathCache (0 = default,
// negative = disabled, returning nil — every method is nil-safe).
func newPathCache(capacity int, r *obs.Registry) *pathCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = defaultPathCache
	}
	perCap := (capacity + nPathShards - 1) / nPathShards
	if perCap < 1 {
		perCap = 1
	}
	pc := &pathCache{perCap: perCap}
	for i := range pc.shards {
		pc.shards[i].entries = make(map[string]pathEnt)
		pc.shards[i].byIno = make(map[vfs.Ino]map[string]struct{})
	}
	if r != nil {
		pc.hits = r.Counter("core.pathcache.hits")
		pc.misses = r.Counter("core.pathcache.misses")
		pc.invals = r.Counter("core.pathcache.invalidations")
		pc.evicts = r.Counter("core.pathcache.evictions")
		pc.inserts = r.Counter("core.pathcache.inserts")
	}
	return pc
}

func pathShardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % nPathShards)
}

// pathKey canonicalizes split components back into one cache key.
func pathKey(comps []string) string { return "/" + strings.Join(comps, "/") }

// get probes the cache. Nil-safe.
func (pc *pathCache) get(key string) (vfs.Ino, bool) {
	if pc == nil {
		return 0, false
	}
	s := &pc.shards[pathShardOf(key)]
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if ok {
		pc.hits.Inc()
		return e.ino, true
	}
	pc.misses.Inc()
	return 0, false
}

// put records a resolved path. The caller still holds fs.mu (shared),
// so no invalidation can race in between resolution and insertion.
// Nil-safe.
func (pc *pathCache) put(key string, ino vfs.Ino, chain []vfs.Ino) {
	if pc == nil {
		return
	}
	s := &pc.shards[pathShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return
	}
	for len(s.entries) >= pc.perCap {
		// Random-replacement eviction: map iteration order is as good a
		// victim policy as this needs.
		for victim := range s.entries {
			s.dropLocked(victim)
			pc.evicts.Inc()
			break
		}
	}
	s.entries[key] = pathEnt{ino: ino, chain: chain}
	for _, ci := range chain {
		set := s.byIno[ci]
		if set == nil {
			set = make(map[string]struct{})
			s.byIno[ci] = set
		}
		set[key] = struct{}{}
	}
	pc.inserts.Inc()
}

// dropLocked removes one entry and its reverse-index links; the shard
// mutex is held.
func (s *pathShard) dropLocked(key string) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	delete(s.entries, key)
	for _, ci := range e.chain {
		if set := s.byIno[ci]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(s.byIno, ci)
			}
		}
	}
}

// invalidate kills every cached path whose resolution chain contains
// ino. Called under fs.mu held exclusively, after the mutation applied.
// Nil-safe.
func (pc *pathCache) invalidate(ino vfs.Ino) {
	if pc == nil || ino == 0 {
		return
	}
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.Lock()
		if set := s.byIno[ino]; set != nil {
			for key := range set {
				s.dropLocked(key)
				pc.invals.Inc()
			}
		}
		s.mu.Unlock()
	}
}

// WalkPath resolves a whole absolute path in one call — the
// vfs.PathWalker capability. A cache hit returns immediately; a miss
// resolves component by component under the shared FS lock (each
// component tracked as a lookup op, exactly like vfs.Walk's fallback
// loop would) and inserts the result before the lock is released.
func (fs *FS) WalkPath(path string) (vfs.Ino, error) {
	comps := vfs.SplitPath(path)
	if len(comps) == 0 {
		return RootIno, nil
	}
	key := pathKey(comps)
	if ino, ok := fs.pc.get(key); ok {
		return ino, nil
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	cur := RootIno
	chain := make([]vfs.Ino, 1, len(comps)+1)
	chain[0] = cur
	for _, c := range comps {
		end := fs.trk.Begin(obs.OpLookup)
		next, err := fs.lookup(cur, c)
		end()
		if err != nil {
			return 0, fmt.Errorf("walk %s at %q: %w", path, c, err)
		}
		cur = next
		chain = append(chain, cur)
	}
	fs.pc.put(key, cur, chain)
	return cur, nil
}
