package core

import (
	"fmt"
	"sync"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/layout"
	"cffs/internal/obs"
)

// bigDir fills root with n zero-byte files named f0000..; returns the
// directory's size in blocks.
func bigDir(t *testing.T, fs *FS, n int) int64 {
	t.Helper()
	root := fs.Root()
	for i := 0; i < n; i++ {
		if _, err := fs.Create(root, fmt.Sprintf("f%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	in, err := fs.getLiveInode(root)
	if err != nil {
		t.Fatal(err)
	}
	return in.Size / blockio.BlockSize
}

// A create pays one directory scan, not two. With the index disabled
// and the cache far smaller than the directory, the combined
// lookup+free-slot pass shows up directly in the disk read count: the
// folded create reads each directory block about once, while the old
// separate-scan shape read the directory twice.
func TestCreateSingleDirectoryScan(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed,
		DirIndexBlocks: -1, CacheBlocks: 32})
	dirBlocks := bigDir(t, fs, 1600)
	if dirBlocks < 64 {
		t.Fatalf("fixture directory only %d blocks", dirBlocks)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Device().Disk().ResetStats()
	if _, err := fs.Create(fs.Root(), "probe"); err != nil {
		t.Fatal(err)
	}
	reads := fs.Device().Disk().Stats().Reads
	// One scan plus slack for allocation metadata; two scans would be
	// about 2*dirBlocks.
	if limit := dirBlocks + dirBlocks/4; reads > limit {
		t.Errorf("unindexed create read %d blocks for a %d-block directory; want <= %d (one scan)",
			reads, dirBlocks, limit)
	}
}

// With the index on, the same create against the same directory is a
// handful of reads — root, bucket, slot — no matter how many blocks
// the directory spans.
func TestIndexedCreateReadsFewBlocks(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed, CacheBlocks: 32})
	dirBlocks := bigDir(t, fs, 1600)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Device().Disk().ResetStats()
	if _, err := fs.Create(fs.Root(), "probe"); err != nil {
		t.Fatal(err)
	}
	reads := fs.Device().Disk().Stats().Reads
	if reads > 16 {
		t.Errorf("indexed create read %d blocks for a %d-block directory; want O(1)",
			reads, dirBlocks)
	}
	// Lookup of a cold name likewise.
	fs.Device().Disk().Stats()
	fs.Device().Disk().ResetStats()
	if _, err := fs.Lookup(fs.Root(), "f0000"); err != nil {
		t.Fatal(err)
	}
	if reads := fs.Device().Disk().Stats().Reads; reads > 8 {
		t.Errorf("indexed lookup read %d blocks; want O(1)", reads)
	}
}

// Slots freed by unlink are found again through the index's free-slot
// search: recreating as many files as were deleted must not grow the
// directory.
func TestIndexReusesHolesAfterUnlink(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	root := fs.Root()
	before := bigDir(t, fs, 400)
	for i := 0; i < 100; i += 2 {
		if err := fs.Unlink(root, fmt.Sprintf("f%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := fs.Create(root, fmt.Sprintf("hole%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	in, err := fs.getLiveInode(root)
	if err != nil {
		t.Fatal(err)
	}
	if after := in.Size / blockio.BlockSize; after != before {
		t.Errorf("directory grew from %d to %d blocks despite %d free slots",
			before, after, 50)
	}
	// Every surviving name must still resolve, deleted ones must not.
	for i := 0; i < 400; i++ {
		name := fmt.Sprintf("f%04d", i)
		_, err := fs.Lookup(root, name)
		if i < 100 && i%2 == 0 {
			if err == nil {
				t.Fatalf("deleted %s still resolves", name)
			}
		} else if err != nil {
			t.Fatalf("surviving %s lost: %v", name, err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := fs.Lookup(root, fmt.Sprintf("hole%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

// An unclean mount distrusts on-disk indexes; the first mutation of a
// directory rebuilds its index from the slots, and lookups and renames
// stay correct across the rebuild.
func TestLookupRenameAcrossIndexRebuild(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	dev := fs.Device()
	const n = 300
	bigDir(t, fs, n)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: remount without Close. The superblock still carries the
	// unclean marker, so the index written above must not be believed.
	fs2, err := Mount(dev, Options{EmbedInodes: true, Mode: ModeDelayed})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	root := fs2.Root()
	if fs2.wasClean {
		t.Fatal("mount after crash believed itself clean")
	}
	if fs2.idxTrusted(root) {
		t.Fatal("index trusted before any rebuild on an unclean mount")
	}
	// Reads fall back to the linear scan and stay correct.
	if _, err := fs2.Lookup(root, "f0123"); err != nil {
		t.Fatal(err)
	}
	// First mutation rebuilds; the directory's index is trusted again.
	if err := fs2.Rename(root, "f0000", root, "renamed"); err != nil {
		t.Fatal(err)
	}
	if !fs2.idxTrusted(root) {
		t.Error("index not rebuilt by the first mutation after an unclean mount")
	}
	if _, err := fs2.Lookup(root, "renamed"); err != nil {
		t.Fatalf("renamed entry lost across rebuild: %v", err)
	}
	if _, err := fs2.Lookup(root, "f0000"); err == nil {
		t.Fatal("old name still resolves after rename")
	}
	// Full sweep through the rebuilt index.
	for i := 1; i < n; i++ {
		if _, err := fs2.Lookup(root, fmt.Sprintf("f%04d", i)); err != nil {
			t.Fatalf("f%04d lost across rebuild: %v", i, err)
		}
	}
}

// Growing a directory far past its initial bucket capacity forces
// in-place index rebuilds (bucket overflow doubles the bucket count);
// the namespace must stay exact throughout.
func TestIndexRebuildOnBucketOverflow(t *testing.T) {
	// Threshold 1 block builds the index almost immediately, so its
	// first shape has very few buckets and growth must rebuild it.
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed,
		DirIndexBlocks: 1, Metrics: obs.NewRegistry()})
	root := fs.Root()
	const n = 1200
	for i := 0; i < n; i++ {
		if _, err := fs.Create(root, fmt.Sprintf("g%05d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := fs.Lookup(root, fmt.Sprintf("g%05d", i)); err != nil {
			t.Fatalf("g%05d lost after index growth: %v", i, err)
		}
	}
	if got := fs.mIdxRebuilds.Value(); got < 2 {
		t.Errorf("expected repeated index rebuilds while growing to %d entries, got %d", n, got)
	}
}

// fsck detects a corrupted index block, drops the index, rebuilds it
// after allocation repair, and leaves a clean image with the namespace
// intact — the oracle being the full name sweep afterwards.
func TestFsckRebuildsCorruptedIndex(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	dev := fs.Device()
	const n = 300
	bigDir(t, fs, n)
	root := fs.Root()
	in, err := fs.getLiveInode(root)
	if err != nil {
		t.Fatal(err)
	}
	rootPhys := int64(in.DirIndexRootPtr())
	if rootPhys == 0 {
		t.Fatal("fixture directory has no index")
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the index root on the closed (clean) image: plausible
	// magic, garbage contents.
	garbage := make([]byte, blockio.BlockSize)
	layout.DirIndexRoot{NBuckets: 2, NEntries: 9999, FreeHint: 0}.Encode(garbage)
	if err := dev.WriteBlock(rootPhys, garbage); err != nil {
		t.Fatal(err)
	}

	rep, err := Check(dev, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairsMade == 0 {
		t.Fatal("fsck made no repairs on a corrupted index")
	}
	rep2, err := Check(dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		max := len(rep2.Problems)
		if max > 5 {
			max = 5
		}
		t.Fatalf("image not clean after index repair: %v", rep2.Problems[:max])
	}

	// The namespace survived and the index was rebuilt to a usable
	// state: a clean mount trusts it, and every name resolves.
	fs2, err := Mount(dev, Options{EmbedInodes: true, Mode: ModeDelayed})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	in2, err := fs2.getLiveInode(fs2.Root())
	if err != nil {
		t.Fatal(err)
	}
	if in2.DirIndexRootPtr() == 0 {
		t.Error("fsck did not rebuild the dropped index")
	}
	for i := 0; i < n; i++ {
		if _, err := fs2.Lookup(fs2.Root(), fmt.Sprintf("f%04d", i)); err != nil {
			t.Fatalf("f%04d lost across fsck index repair: %v", i, err)
		}
	}
	ents, err := fs2.ReadDir(fs2.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("readdir after repair: %d entries, want %d", len(ents), n)
	}
}

// Concurrent create/unlink/readdir traffic against one indexed
// directory; run under -race in CI. Correctness bar: no data race, no
// error, and exactly the expected survivors.
func TestConcurrentIndexedDirOps(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	root := fs.Root()
	bigDir(t, fs, 200)
	const (
		workers = 4
		each    = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				name := fmt.Sprintf("w%d-%03d", w, i)
				if _, err := fs.Create(root, name); err != nil {
					errs <- fmt.Errorf("create %s: %w", name, err)
					return
				}
				if i%2 == 0 {
					if err := fs.Unlink(root, name); err != nil {
						errs <- fmt.Errorf("unlink %s: %w", name, err)
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each/4; i++ {
				if _, err := fs.ReadDir(root); err != nil {
					errs <- fmt.Errorf("readdir: %w", err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := fs.Lookup(root, fmt.Sprintf("f%04d", i%200)); err != nil {
					errs <- fmt.Errorf("lookup under churn: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Odd-numbered worker files survive, even-numbered were unlinked.
	for w := 0; w < workers; w++ {
		for i := 0; i < each; i++ {
			name := fmt.Sprintf("w%d-%03d", w, i)
			_, err := fs.Lookup(root, name)
			if i%2 == 0 && err == nil {
				t.Fatalf("unlinked %s still present", name)
			}
			if i%2 == 1 && err != nil {
				t.Fatalf("created %s lost: %v", name, err)
			}
		}
	}
}
