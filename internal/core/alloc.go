package core

import (
	"fmt"

	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// Block allocation.
//
// The disk is divided into allocation groups (the FFS cylinder-group
// analogue). Each group's header block holds a block bitmap and a table
// of *group descriptors* — one per aligned 16-block extent of the data
// area — recording which directory owns the extent and which of its
// blocks hold grouped small-file data. Claiming, filling, and dissolving
// these extents is the allocator half of explicit grouping.

// groupDesc is a decoded group descriptor.
type groupDesc struct {
	Owner uint32 // external ino of the owning directory; 0 = unclaimed
	Used  uint16 // bitmap of grouped blocks within the extent
}

func (g groupDesc) full() bool { return g.Used == 1<<GroupBlocks-1 }

// blockBitmap views an AG header's block bitmap.
func (fs *FS) blockBitmap(hdr *cache.Buf) layout.Bitmap {
	return layout.NewBitmap(hdr.Data[agBmapOff:], fs.sb.AGBlocks)
}

func readDesc(hdr *cache.Buf, k int) groupDesc {
	le := leBytes{hdr.Data}
	return groupDesc{Owner: le.u32(agDescOff + k*8), Used: le.u16(agDescOff + k*8 + 4)}
}

func writeDesc(hdr *cache.Buf, k int, d groupDesc) {
	le := leBytes{hdr.Data}
	le.pu32(agDescOff+k*8, d.Owner)
	le.pu16(agDescOff+k*8+4, d.Used)
}

// agOf returns the allocation group containing a physical block, or -1
// for the reserved region (superblock + inode map).
func (fs *FS) agOf(phys int64) int {
	off := phys - int64(1+mapBlocks)
	if off < 0 {
		return -1
	}
	ag := int(off / int64(fs.sb.AGBlocks))
	if ag >= fs.sb.NAG {
		return -1
	}
	return ag
}

// locateGroup maps a physical block to its group extent: the AG, the
// descriptor index, and the extent's first block. ok is false for
// blocks outside any group extent (headers, tail slack, reserved area).
func (fs *FS) locateGroup(phys int64) (ag, k int, start int64, ok bool) {
	ag = fs.agOf(phys)
	if ag < 0 {
		return 0, 0, 0, false
	}
	off := phys - fs.sb.groupBase(ag)
	if off < 0 {
		return 0, 0, 0, false
	}
	k = int(off / GroupBlocks)
	if k >= fs.sb.groupsPerAG() {
		return 0, 0, 0, false
	}
	return ag, k, fs.sb.groupBase(ag) + int64(k)*GroupBlocks, true
}

// groupID packs (ag, k) into the inode Group field (+1 so 0 means none).
func (fs *FS) groupID(ag, k int) uint32 { return uint32(ag*fs.sb.groupsPerAG()+k) + 1 }

// groupByID unpacks a Group field value.
func (fs *FS) groupByID(id uint32) (ag, k int, ok bool) {
	if id == 0 {
		return 0, 0, false
	}
	v := int(id - 1)
	ag, k = v/fs.sb.groupsPerAG(), v%fs.sb.groupsPerAG()
	if ag >= fs.sb.NAG {
		return 0, 0, false
	}
	return ag, k, true
}

// allocScattered claims one free block using conventional placement:
// hashed start within the preferred AG's data area (unrelated files land
// apart — locality without adjacency), scanning other AGs on pressure.
func (fs *FS) allocScattered(prefAG int, ino vfs.Ino) (int64, error) {
	return fs.allocFrom(prefAG, func(hdr *cache.Buf, ag int) int {
		bm := fs.blockBitmap(hdr)
		span := fs.sb.AGBlocks - 1
		from := 1 + int(mix64(uint64(ino))%uint64(span))
		return bm.FindClear(from)
	})
}

// allocNear claims the block at pref if free, else the nearest free
// block after it (file-internal clustering for large files). A
// preference past the end of the last allocation group (the previous
// block was the group's final one) falls back to a scan of that group.
func (fs *FS) allocNear(pref int64) (int64, error) {
	ag := fs.agOf(pref)
	if ag < 0 {
		ag = fs.sb.NAG - 1
		pref = -1
	}
	return fs.allocFrom(ag, func(hdr *cache.Buf, cur int) int {
		bm := fs.blockBitmap(hdr)
		from := 1
		if cur == ag {
			from = int(pref - fs.sb.agStart(ag))
			if from < 1 || from >= fs.sb.AGBlocks {
				from = 1
			}
		}
		return bm.FindClear(from)
	})
}

// allocFrom scans AGs starting at prefAG, applying pick to each header
// until it yields a block index.
func (fs *FS) allocFrom(prefAG int, pick func(hdr *cache.Buf, ag int) int) (int64, error) {
	for i := 0; i < fs.sb.NAG; i++ {
		ag := (prefAG + i) % fs.sb.NAG
		hdr, err := fs.c.Read(fs.sb.agStart(ag))
		if err != nil {
			return 0, err
		}
		idx := pick(hdr, ag)
		if idx <= 0 { // index 0 is the header itself
			hdr.Release()
			continue
		}
		bm := fs.blockBitmap(hdr)
		bm.Set(idx)
		fs.c.MarkDirty(hdr)
		hdr.Release()
		return fs.sb.agStart(ag) + int64(idx), nil
	}
	return 0, fmt.Errorf("cffs: %w", vfs.ErrNoSpace)
}

// allocGrouped claims a block for a small file inside a group owned by
// directory owner, preferring the file's own current group, then the
// directory's, then any group of the directory with space, then a fresh
// extent near prefAG. It returns the block and the group id it came
// from; on a fully grouped-out disk it falls back to scattered
// placement with group id 0.
func (fs *FS) allocGrouped(owner uint32, fileGroup uint32, ino vfs.Ino, prefAG int) (int64, uint32, error) {
	// 1. The file's current group.
	if phys, id, err := fs.tryGroup(fileGroup, owner); err != nil || phys != 0 {
		return phys, id, err
	}
	// 2. The owning directory's current group hint.
	din, err := fs.getInode(vfs.Ino(owner))
	if err == nil && din.Alive() {
		if phys, id, err := fs.tryGroup(din.Group, owner); err != nil || phys != 0 {
			return phys, id, err
		}
	}
	// 3. Any group owned by the directory with a free slot, in the AG of
	// the directory's hint (cheap scan of one header's descriptors). A
	// candidate can still come up empty — conventional allocations may
	// squat on its unclaimed slots — so keep scanning on failure.
	if ag, _, ok := fs.groupByID(din.Group); ok {
		prefAG = ag
	}
	hdr, err := fs.c.Read(fs.sb.agStart(prefAG))
	if err != nil {
		return 0, 0, err
	}
	var candidates []int
	for k := 0; k < fs.sb.groupsPerAG(); k++ {
		d := readDesc(hdr, k)
		if d.Owner == owner && !d.full() {
			candidates = append(candidates, k)
		}
	}
	hdr.Release()
	for _, k := range candidates {
		phys, id, err := fs.claimInGroup(prefAG, k, owner)
		if err != nil || phys != 0 {
			return phys, id, err
		}
	}
	// 4. A fresh extent near the directory.
	for i := 0; i < fs.sb.NAG; i++ {
		ag := (prefAG + i) % fs.sb.NAG
		hdr, err := fs.c.Read(fs.sb.agStart(ag))
		if err != nil {
			return 0, 0, err
		}
		bm := fs.blockBitmap(hdr)
		baseOff := int(fs.sb.groupBase(ag) - fs.sb.agStart(ag))
		idx := fs.findExtent(bm, baseOff)
		if idx < 0 {
			hdr.Release()
			continue
		}
		k := (idx - baseOff) / GroupBlocks
		writeDesc(hdr, k, groupDesc{Owner: owner})
		fs.c.MarkDirty(hdr)
		hdr.Release()
		phys, id, err := fs.claimInGroup(ag, k, owner)
		if err != nil || phys != 0 {
			return phys, id, err
		}
	}
	// 5. No groupable space anywhere: scattered fallback.
	phys, err := fs.allocScattered(prefAG, ino)
	return phys, 0, err
}

// findExtent locates the first fully free group extent in a bitmap.
// baseOff is the AG-relative index of the first aligned extent (extent k
// covers bits [baseOff+k*16, baseOff+(k+1)*16)).
func (fs *FS) findExtent(bm layout.Bitmap, baseOff int) int {
	for k := 0; k < fs.sb.groupsPerAG(); k++ {
		base := baseOff + k*GroupBlocks
		free := true
		for i := 0; i < GroupBlocks; i++ {
			if bm.IsSet(base + i) {
				free = false
				break
			}
		}
		if free {
			return base
		}
	}
	return -1
}

// tryGroup allocates from group id if it is owned by owner and has
// space. A zero return with nil error means "try elsewhere".
func (fs *FS) tryGroup(id, owner uint32) (int64, uint32, error) {
	ag, k, ok := fs.groupByID(id)
	if !ok {
		return 0, 0, nil
	}
	hdr, err := fs.c.Read(fs.sb.agStart(ag))
	if err != nil {
		return 0, 0, err
	}
	d := readDesc(hdr, k)
	hdr.Release()
	if d.Owner != owner || d.full() {
		return 0, 0, nil
	}
	return fs.claimInGroup(ag, k, owner)
}

// claimInGroup takes the lowest free slot of extent (ag, k): sequential
// fills give physically adjacent files, the property the whole design
// is after.
func (fs *FS) claimInGroup(ag, k int, owner uint32) (int64, uint32, error) {
	hdr, err := fs.c.Read(fs.sb.agStart(ag))
	if err != nil {
		return 0, 0, err
	}
	defer hdr.Release()
	d := readDesc(hdr, k)
	if d.Owner != owner {
		return 0, 0, fmt.Errorf("cffs: group (%d,%d) owner changed under allocation", ag, k)
	}
	bm := fs.blockBitmap(hdr)
	base := int(fs.sb.groupBase(ag)-fs.sb.agStart(ag)) + k*GroupBlocks
	for i := 0; i < GroupBlocks; i++ {
		if d.Used&(1<<i) == 0 && !bm.IsSet(base+i) {
			d.Used |= 1 << i
			bm.Set(base + i)
			writeDesc(hdr, k, d)
			fs.c.MarkDirty(hdr)
			return fs.sb.agStart(ag) + int64(base+i), fs.groupID(ag, k), nil
		}
	}
	// All free slots were taken by scattered allocations squatting in
	// the extent; report no space in this group.
	d.Used = 1<<GroupBlocks - 1
	writeDesc(hdr, k, d)
	fs.c.MarkDirty(hdr)
	return 0, 0, nil
}

// freeBlock releases a block, maintaining the group descriptor when the
// block was grouped, and drops any cached copy.
func (fs *FS) freeBlock(phys int64) error {
	ag := fs.agOf(phys)
	if ag < 0 {
		return fmt.Errorf("cffs: free of reserved block %d", phys)
	}
	hdr, err := fs.c.Read(fs.sb.agStart(ag))
	if err != nil {
		return err
	}
	defer hdr.Release()
	bm := fs.blockBitmap(hdr)
	idx := int(phys - fs.sb.agStart(ag))
	if idx == 0 {
		return fmt.Errorf("cffs: free of AG header %d", phys)
	}
	if !bm.IsSet(idx) {
		return fmt.Errorf("cffs: double free of block %d", phys)
	}
	bm.Clear(idx)
	if _, k, start, ok := fs.locateGroup(phys); ok {
		d := readDesc(hdr, k)
		bit := uint16(1) << (phys - start)
		if d.Owner != 0 && d.Used&bit != 0 {
			d.Used &^= bit
			if d.Used == 0 {
				d.Owner = 0 // group dissolved
			}
			writeDesc(hdr, k, d)
		}
	}
	fs.c.MarkDirty(hdr)
	fs.c.Invalidate(phys)
	return nil
}

// groupSpan returns the physical span [start, start+n) of grouped blocks
// of the group containing phys, for a group read. ok is false when phys
// is not part of a claimed group.
func (fs *FS) groupSpan(phys int64) (int64, int, bool) {
	ag, k, start, ok := fs.locateGroup(phys)
	if !ok {
		return 0, 0, false
	}
	hdr, err := fs.c.Read(fs.sb.agStart(ag))
	if err != nil {
		return 0, 0, false
	}
	d := readDesc(hdr, k)
	hdr.Release()
	if d.Owner == 0 || d.Used == 0 {
		return 0, 0, false
	}
	// Only blocks that are actually part of the group participate in
	// group reads; conventional allocations squatting inside the extent
	// (e.g. the tail of a large file) are not the group's responsibility.
	if d.Used&(1<<(phys-start)) == 0 {
		return 0, 0, false
	}
	lo, hi := -1, -1
	for i := 0; i < GroupBlocks; i++ {
		if d.Used&(1<<i) != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	return start + int64(lo), hi - lo + 1, true
}

// nextOwnedSpans returns the grouped spans of up to fan further extents
// owned by the same directory as extent (ag, k), scanning forward
// through the same AG header. Extents whose span is already (or still)
// resident are skipped — the readahead targets the cold sequel of a
// directory scan, not re-fetches.
//
// When the same-owner scan leaves the fan unfilled, the readahead
// continues into the following AGs: first their headers (one block
// each), then — once a header is resident from an earlier batch — the
// leading grouped extents it describes, whoever owns them. Namespace-
// order scans (tar, build trees, the small-file benchmark) walk
// directories in exactly that AG order, so each directory's batch warms
// the next directory's header and groups, and on a striped volume the
// continuation keeps every spindle streaming instead of starting each
// directory with a cold serial header read.
func (fs *FS) nextOwnedSpans(ag, k, fan int) []cache.Run {
	hdr, err := fs.c.Read(fs.sb.agStart(ag))
	if err != nil {
		return nil
	}
	owner := readDesc(hdr, k).Owner
	var runs []cache.Run
	if owner != 0 {
		runs = fs.spanScan(hdr, ag, k+1, owner, fan)
	}
	hdr.Release()
	for next := ag + 1; next < fs.sb.NAG && next <= ag+2; next++ {
		hstart := fs.sb.agStart(next)
		// Header and inode-file ride-alongs are free parallelism, not
		// part of the extent fan.
		cold := fs.c.Peek(hstart) == nil
		if cold {
			runs = append(runs, cache.Run{Start: hstart, Count: 1})
		}
		runs = append(runs, fs.coldInodeBlocks(next)...)
		if cold || len(runs) >= fan {
			break
		}
		nh, err := fs.c.Read(hstart) // resident: a hit, no I/O
		if err != nil {
			break
		}
		runs = append(runs, fs.spanScan(nh, next, 0, 0, fan-len(runs))...)
		nh.Release()
	}
	return runs
}

// coldInodeBlocks returns single-block runs for the inode-file blocks
// that live in AG ag and are not resident. Directories keep
// externalized inodes in per-neighborhood inode-file blocks (see
// allocExtInode), so a namespace-order scan pays one cold inode-file
// read per directory right before that directory's header and groups —
// riding the block along with the previous directory's batch removes
// it from the serial path. The inode map itself is consulted only when
// already resident; this is readahead, it must not add misses.
func (fs *FS) coldInodeBlocks(ag int) []cache.Run {
	lo, hi := fs.sb.agStart(ag), fs.sb.agStart(ag+1)
	var runs []cache.Run
	for fb := 0; fb < fs.sb.ExtBlocks; fb += layout.PtrsPerBlock {
		mapBlk := int64(1 + fb/layout.PtrsPerBlock)
		if fs.c.Peek(mapBlk) == nil {
			continue
		}
		mb, err := fs.c.Read(mapBlk) // resident: a hit, no I/O
		if err != nil {
			continue
		}
		n := fs.sb.ExtBlocks - fb
		if n > layout.PtrsPerBlock {
			n = layout.PtrsPerBlock
		}
		le := leBytes{mb.Data}
		for i := 0; i < n; i++ {
			phys := int64(le.u32(i * 4))
			if phys >= lo && phys < hi && fs.c.Peek(phys) == nil {
				runs = append(runs, cache.Run{Start: phys, Count: 1})
			}
		}
		mb.Release()
	}
	return runs
}

// spanScan collects the cold allocated spans of AG ag's group extents
// from slot k on, reading descriptors from the pinned header hdr. With
// owner non-zero only that directory's extents count; with owner zero
// any in-use extent does (the cross-AG continuation).
func (fs *FS) spanScan(hdr *cache.Buf, ag, k int, owner uint32, fan int) []cache.Run {
	var runs []cache.Run
	for j := k; j < fs.sb.groupsPerAG() && len(runs) < fan; j++ {
		d := readDesc(hdr, j)
		if d.Used == 0 || (owner != 0 && d.Owner != owner) {
			continue
		}
		lo, hi := -1, -1
		for i := 0; i < GroupBlocks; i++ {
			if d.Used&(1<<i) != 0 {
				if lo < 0 {
					lo = i
				}
				hi = i
			}
		}
		start := fs.sb.groupBase(ag) + int64(j)*GroupBlocks + int64(lo)
		if fs.c.Peek(start) != nil {
			continue
		}
		runs = append(runs, cache.Run{Start: start, Count: hi - lo + 1})
	}
	return runs
}

// mix64 is the splitmix64 finalizer, used for scattered placement.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// countFree implements FreeBlocks; the FS lock is held.
func (fs *FS) countFree() (int64, error) {
	var total int64
	for ag := 0; ag < fs.sb.NAG; ag++ {
		hdr, err := fs.c.Read(fs.sb.agStart(ag))
		if err != nil {
			return 0, err
		}
		total += int64(fs.blockBitmap(hdr).CountClear())
		hdr.Release()
	}
	return total, nil
}
