package core

import (
	"errors"
	"testing"

	"cffs/internal/obs"
	"cffs/internal/vfs"
)

func newPCFS(t *testing.T) *FS {
	return newCFFS(t, Options{EmbedInodes: true, Grouping: true,
		Mode: ModeDelayed, Metrics: obs.NewRegistry()})
}

func mustTree(t *testing.T, fs *FS, dirs []string, files []string) {
	t.Helper()
	for _, d := range dirs {
		if _, err := vfs.MkdirAll(fs, d); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range files {
		if err := vfs.WriteFile(fs, f, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
}

// A repeated deep walk is served from the path cache: the second
// resolution is a single probe, no per-component lookups.
func TestPathCacheHit(t *testing.T) {
	fs := newPCFS(t)
	mustTree(t, fs, []string{"/a/b/c/d"}, []string{"/a/b/c/d/leaf"})
	ino1, err := vfs.Walk(fs, "/a/b/c/d/leaf")
	if err != nil {
		t.Fatal(err)
	}
	h0 := fs.pc.hits.Value()
	ino2, err := vfs.Walk(fs, "/a/b/c/d/leaf")
	if err != nil {
		t.Fatal(err)
	}
	if ino1 != ino2 {
		t.Fatalf("cached walk landed on %#x, first walk on %#x", uint64(ino2), uint64(ino1))
	}
	if got := fs.pc.hits.Value() - h0; got != 1 {
		t.Errorf("second walk recorded %d path-cache hits, want 1", got)
	}
	if _, ok := fs.pc.get("/a/b/c/d/leaf"); !ok {
		t.Error("resolved path not present in the cache")
	}
}

// Unlinking a file kills its cached paths; the next walk misses and
// reports ErrNotExist.
func TestPathCacheInvalidationOnUnlink(t *testing.T) {
	fs := newPCFS(t)
	mustTree(t, fs, []string{"/d"}, []string{"/d/f"})
	if _, err := vfs.Walk(fs, "/d/f"); err != nil {
		t.Fatal(err)
	}
	dir, err := vfs.Walk(fs, "/d")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(dir, "f"); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.pc.get("/d/f"); ok {
		t.Fatal("stale path survived unlink")
	}
	if _, err := vfs.Walk(fs, "/d/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("walk after unlink = %v, want ErrNotExist", err)
	}
}

// Moving a directory kills every cached path that resolved through it
// — prefix invalidation via the resolution chain — and the subtree is
// reachable under its new name immediately.
func TestPathCachePrefixInvalidationOnDirMove(t *testing.T) {
	fs := newPCFS(t)
	mustTree(t, fs, []string{"/a/b/c"}, []string{"/a/b/c/f1", "/a/b/c/f2"})
	for _, p := range []string{"/a/b/c/f1", "/a/b/c/f2", "/a/b/c", "/a/b"} {
		if _, err := vfs.Walk(fs, p); err != nil {
			t.Fatal(err)
		}
	}
	a, err := vfs.Walk(fs, "/a")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(a, "b", a, "moved"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a/b/c/f1", "/a/b/c/f2", "/a/b/c", "/a/b"} {
		if _, ok := fs.pc.get(p); ok {
			t.Fatalf("stale path %s survived the directory move", p)
		}
		if _, err := vfs.Walk(fs, p); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("walk %s after move = %v, want ErrNotExist", p, err)
		}
	}
	ino, err := vfs.Walk(fs, "/a/moved/c/f1")
	if err != nil {
		t.Fatalf("subtree unreachable under new name: %v", err)
	}
	if st, err := fs.Stat(ino); err != nil || st.Type != vfs.TypeReg {
		t.Fatalf("moved file stat %+v, %v", st, err)
	}
}

// Hard-linking an embedded file externalizes its inode — the ino
// changes identity — so cached paths naming the old ino must die and
// the next walk must land on the externalized inode.
func TestPathCacheInvalidationOnLinkExternalize(t *testing.T) {
	fs := newPCFS(t)
	mustTree(t, fs, []string{"/d"}, []string{"/d/f"})
	oldIno, err := vfs.Walk(fs, "/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(fs.Root(), "hard", oldIno); err != nil {
		t.Fatal(err)
	}
	dir, err := vfs.Walk(fs, "/d")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := fs.Lookup(dir, "f")
	if err != nil {
		t.Fatal(err)
	}
	got, err := vfs.Walk(fs, "/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if got != cur {
		t.Fatalf("walk after link returned %#x, directory holds %#x (stale cache)",
			uint64(got), uint64(cur))
	}
	if cur != oldIno {
		// The link really did externalize; both names must agree.
		viaLink, err := fs.Lookup(fs.Root(), "hard")
		if err != nil {
			t.Fatal(err)
		}
		if viaLink != cur {
			t.Fatalf("names diverge after externalize: %#x vs %#x", uint64(viaLink), uint64(cur))
		}
	}
}

// PathCache < 0 disables the cache; walks still work (nil-safe cache)
// and WalkPath stays correct.
func TestPathCacheDisabled(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed, PathCache: -1})
	if fs.pc != nil {
		t.Fatal("negative PathCache did not disable the cache")
	}
	mustTree(t, fs, []string{"/x/y"}, []string{"/x/y/z"})
	for i := 0; i < 2; i++ {
		if _, err := vfs.Walk(fs, "/x/y/z"); err != nil {
			t.Fatal(err)
		}
	}
}
