package core

import (
	"fmt"
	"strings"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/fsck"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// populate builds a small tree with files, subdirectories, a hard link,
// and a large file, then syncs.
func populate(t *testing.T, fs *FS) {
	t.Helper()
	for i := 0; i < 10; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/file%d", i), make([]byte, 1024*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := vfs.MkdirAll(fs, "/sub/deeper"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/sub/deeper/leaf", make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/big", make([]byte, 20*blockio.BlockSize)); err != nil {
		t.Fatal(err)
	}
	ino, err := vfs.Walk(fs, "/file0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(fs.Root(), "hardlink", ino); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCleanAllConfigs(t *testing.T) {
	for _, cfg := range []Options{
		{},
		{EmbedInodes: true},
		{Grouping: true},
		{EmbedInodes: true, Grouping: true},
	} {
		cfg.Mode = ModeDelayed
		fs := newCFFS(t, cfg)
		populate(t, fs)
		rep, err := Check(fs.Device(), false)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("%s: fresh image not clean: %v", cfg.Config(), rep.Problems)
		}
		if rep.Files != 12 || rep.Dirs != 3 {
			t.Fatalf("%s: found %d files %d dirs, want 12/3", cfg.Config(), rep.Files, rep.Dirs)
		}
	}
}

func TestCheckDetectsLostBlock(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	populate(t, fs)
	// Mark a free block as allocated directly in an AG bitmap.
	hdrBlock := fs.sb.agStart(0)
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	bm := layout.NewBitmap(raw[agBmapOff:], fs.sb.AGBlocks)
	victim := bm.FindClear(100)
	if victim < 0 {
		t.Fatal("no free block to corrupt")
	}
	bm.Set(victim)
	if err := fs.Device().WriteBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("lost block not detected")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "lost") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no lost-block problem in %v", rep.Problems)
	}
	// Repair and re-check.
	if _, err := Check(fs.Device(), true); err != nil {
		t.Fatal(err)
	}
	rep, err = Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("image not clean after repair: %v", rep.Problems)
	}
}

func TestCheckDetectsMissingBitmapBit(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	populate(t, fs)
	// Find an allocated data block via a file inode and clear its bit.
	ino, err := vfs.Walk(fs, "/big")
	if err != nil {
		t.Fatal(err)
	}
	in, err := fs.getLiveInode(ino)
	if err != nil {
		t.Fatal(err)
	}
	phys := int64(in.Direct[0])
	ag := fs.agOf(phys)
	hdrBlock := fs.sb.agStart(ag)
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	layout.NewBitmap(raw[agBmapOff:], fs.sb.AGBlocks).Clear(int(phys - hdrBlock))
	if err := fs.Device().WriteBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("in-use-but-free block not detected")
	}
}

func TestCheckDetectsOrphanExternalInode(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	populate(t, fs)
	// Plant a live inode in a free external slot, bypassing the FS.
	phys, _, err := fs.extLoc(0)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(phys, raw); err != nil {
		t.Fatal(err)
	}
	slot := -1
	for s := 0; s < extInosPerBlock; s++ {
		var in layout.Inode
		in.Decode(raw[s*layout.InodeSize:])
		if !in.Alive() {
			slot = s
			break
		}
	}
	if slot < 0 {
		t.Skip("no free slot in first inode-file block")
	}
	orphan := layout.Inode{Type: vfs.TypeReg, Nlink: 1}
	orphan.Encode(raw[slot*layout.InodeSize:])
	if err := fs.Device().WriteBlock(phys, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "orphan") {
			found = true
		}
	}
	if !found {
		t.Fatalf("orphan inode not detected: %v", rep.Problems)
	}
}

func TestCheckDetectsStaleGroupDescriptor(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	populate(t, fs)
	// Claim a group descriptor with used bits pointing at free blocks.
	hdrBlock := fs.sb.agStart(fs.sb.NAG - 1)
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	le := leBytes{raw}
	k := fs.sb.groupsPerAG() - 1
	le.pu32(agDescOff+k*8, 1)     // owner: root
	le.pu16(agDescOff+k*8+4, 0x5) // two used bits, blocks not allocated
	if err := fs.Device().WriteBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("bad group descriptor not detected")
	}
	if _, err := Check(fs.Device(), true); err != nil {
		t.Fatal(err)
	}
	rep, _ = Check(fs.Device(), false)
	if !rep.Clean() {
		t.Fatalf("descriptor not repaired: %v", rep.Problems)
	}
}

// Structural damage — dangling entries, corrupt link counts, lost dot
// entries, orphan inodes — must not just be detected: repair has to
// remove it and a fresh check must come back clean.
func TestCheckRepairsStructuralDamage(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	populate(t, fs)

	rin, err := fs.getLiveInode(RootIno)
	if err != nil {
		t.Fatal(err)
	}
	rootBlk, err := fs.bmap(&rin, RootIno, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(rootBlk, raw); err != nil {
		t.Fatal(err)
	}
	// A dangling entry: a name referencing an external inode that does
	// not exist.
	planted := false
	for s := 0; s < slotsPerBlock; s++ {
		if !slotUsed(raw, s*slotSize) {
			writeSlotExternal(raw, s*slotSize, "ghost", vfs.Ino(500), vfs.TypeReg)
			planted = true
			break
		}
	}
	if !planted {
		t.Fatal("no free slot in root block")
	}
	// A corrupt embedded link count.
	for s := 0; s < slotsPerBlock; s++ {
		off := s * slotSize
		if slotEmbedded(raw, off) {
			var in layout.Inode
			in.Decode(raw[off+slotInodeOff:])
			in.Nlink = 5
			in.Encode(raw[off+slotInodeOff:])
			break
		}
	}
	if err := fs.Device().WriteBlock(rootBlk, raw); err != nil {
		t.Fatal(err)
	}

	// A lost "." entry in a subdirectory.
	subIno, err := vfs.Walk(fs, "/sub")
	if err != nil {
		t.Fatal(err)
	}
	sin, err := fs.getLiveInode(subIno)
	if err != nil {
		t.Fatal(err)
	}
	subBlk, err := fs.bmap(&sin, subIno, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Device().ReadBlock(subBlk, raw); err != nil {
		t.Fatal(err)
	}
	clearSlot(raw, 0) // "." lives in slot 0 (initDirData)
	if err := fs.Device().WriteBlock(subBlk, raw); err != nil {
		t.Fatal(err)
	}

	rep, err := Check(fs.Device(), true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("planted damage not detected")
	}
	if rep.RepairsMade == 0 {
		t.Fatalf("no repairs made for %v", rep.Problems)
	}
	if len(rep.Unrepairable) != 0 {
		t.Fatalf("repair left problems behind: %v", rep.Unrepairable)
	}
	if got := rep.Outcome(); got != fsck.OutcomeRepaired {
		t.Fatalf("Outcome = %v, want repaired", got)
	}
	rep2, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("image not clean after repair: %v", rep2.Problems)
	}
	// The dangling name must be gone, not resurrected.
	fs2, err := Mount(fs.Device(), Options{EmbedInodes: true, Mode: ModeDelayed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.Walk(fs2, "/ghost"); err == nil {
		t.Fatal("dangling entry survived repair")
	}
}

func TestReportSummary(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	populate(t, fs)
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	if !strings.Contains(s, "clean") || !strings.Contains(s, "12 files") {
		t.Fatalf("Summary = %q", s)
	}
}
