package core

import (
	"fmt"
	"strings"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/layout"
	"cffs/internal/vfs"
)

// populate builds a small tree with files, subdirectories, a hard link,
// and a large file, then syncs.
func populate(t *testing.T, fs *FS) {
	t.Helper()
	for i := 0; i < 10; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/file%d", i), make([]byte, 1024*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := vfs.MkdirAll(fs, "/sub/deeper"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/sub/deeper/leaf", make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/big", make([]byte, 20*blockio.BlockSize)); err != nil {
		t.Fatal(err)
	}
	ino, err := vfs.Walk(fs, "/file0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(fs.Root(), "hardlink", ino); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCleanAllConfigs(t *testing.T) {
	for _, cfg := range []Options{
		{},
		{EmbedInodes: true},
		{Grouping: true},
		{EmbedInodes: true, Grouping: true},
	} {
		cfg.Mode = ModeDelayed
		fs := newCFFS(t, cfg)
		populate(t, fs)
		rep, err := Check(fs.Device(), false)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("%s: fresh image not clean: %v", cfg.Config(), rep.Problems)
		}
		if rep.Files != 12 || rep.Dirs != 3 {
			t.Fatalf("%s: found %d files %d dirs, want 12/3", cfg.Config(), rep.Files, rep.Dirs)
		}
	}
}

func TestCheckDetectsLostBlock(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	populate(t, fs)
	// Mark a free block as allocated directly in an AG bitmap.
	hdrBlock := fs.sb.agStart(0)
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	bm := layout.NewBitmap(raw[agBmapOff:], fs.sb.AGBlocks)
	victim := bm.FindClear(100)
	if victim < 0 {
		t.Fatal("no free block to corrupt")
	}
	bm.Set(victim)
	if err := fs.Device().WriteBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("lost block not detected")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "lost") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no lost-block problem in %v", rep.Problems)
	}
	// Repair and re-check.
	if _, err := Check(fs.Device(), true); err != nil {
		t.Fatal(err)
	}
	rep, err = Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("image not clean after repair: %v", rep.Problems)
	}
}

func TestCheckDetectsMissingBitmapBit(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	populate(t, fs)
	// Find an allocated data block via a file inode and clear its bit.
	ino, err := vfs.Walk(fs, "/big")
	if err != nil {
		t.Fatal(err)
	}
	in, err := fs.getLiveInode(ino)
	if err != nil {
		t.Fatal(err)
	}
	phys := int64(in.Direct[0])
	ag := fs.agOf(phys)
	hdrBlock := fs.sb.agStart(ag)
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	layout.NewBitmap(raw[agBmapOff:], fs.sb.AGBlocks).Clear(int(phys - hdrBlock))
	if err := fs.Device().WriteBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("in-use-but-free block not detected")
	}
}

func TestCheckDetectsOrphanExternalInode(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	populate(t, fs)
	// Plant a live inode in a free external slot, bypassing the FS.
	phys, _, err := fs.extLoc(0)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(phys, raw); err != nil {
		t.Fatal(err)
	}
	slot := -1
	for s := 0; s < extInosPerBlock; s++ {
		var in layout.Inode
		in.Decode(raw[s*layout.InodeSize:])
		if !in.Alive() {
			slot = s
			break
		}
	}
	if slot < 0 {
		t.Skip("no free slot in first inode-file block")
	}
	orphan := layout.Inode{Type: vfs.TypeReg, Nlink: 1}
	orphan.Encode(raw[slot*layout.InodeSize:])
	if err := fs.Device().WriteBlock(phys, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "orphan") {
			found = true
		}
	}
	if !found {
		t.Fatalf("orphan inode not detected: %v", rep.Problems)
	}
}

func TestCheckDetectsStaleGroupDescriptor(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	populate(t, fs)
	// Claim a group descriptor with used bits pointing at free blocks.
	hdrBlock := fs.sb.agStart(fs.sb.NAG - 1)
	raw := make([]byte, blockio.BlockSize)
	if err := fs.Device().ReadBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	le := leBytes{raw}
	k := fs.sb.groupsPerAG() - 1
	le.pu32(agDescOff+k*8, 1)     // owner: root
	le.pu16(agDescOff+k*8+4, 0x5) // two used bits, blocks not allocated
	if err := fs.Device().WriteBlock(hdrBlock, raw); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("bad group descriptor not detected")
	}
	if _, err := Check(fs.Device(), true); err != nil {
		t.Fatal(err)
	}
	rep, _ = Check(fs.Device(), false)
	if !rep.Clean() {
		t.Fatalf("descriptor not repaired: %v", rep.Problems)
	}
}

func TestReportSummary(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Mode: ModeDelayed})
	populate(t, fs)
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	if !strings.Contains(s, "clean") || !strings.Contains(s, "12 files") {
		t.Fatalf("Summary = %q", s)
	}
}
