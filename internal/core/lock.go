package core

import (
	"cffs/internal/obs"
	"cffs/internal/vfs"
)

// Concurrency control for C-FFS.
//
// Every vfs.FileSystem method is a thin locking wrapper here over an
// unexported implementation; the implementations never call the public
// entry points (Rename removes an existing destination with unlink, not
// Unlink), so the lock is not re-entered.
//
// The lock hierarchy, outermost first:
//
//	FS lock (fs.mu)        reader/writer; readers are Lookup, ReadDir,
//	                       Stat, ReadAt, GroupOwner, FreeBlocks,
//	                       DebugLoc — everything that mutates no FS
//	                       state and no block contents. All other
//	                       operations are writers.
//	directory lock         striped mutexes (fs.dirLocks), taken by
//	                       namespace operations for the parent
//	                       directory, in stripe order when a Rename
//	                       spans two directories.
//	adaptMu                the adaptive group-read window, the one FS
//	                       field mutated on the (shared) read path.
//	idxMu                  the per-mount index-trust set (idxFresh),
//	                       read on the shared lookup path after an
//	                       unclean mount.
//	path-cache shard locks internal to pathcache.go: probed without
//	                       fs.mu, inserted into under fs.mu shared,
//	                       invalidated under fs.mu exclusive — never
//	                       held while acquiring anything above.
//	buffer cache locks     internal to internal/cache: shard → idMu →
//	                       stateMu.
//	device, disk, clock    internal to internal/blockio, internal/disk,
//	                       internal/sim.
//
// Locks are only ever taken downwards in this order, and disk I/O is
// issued below the cache's locks, so the hierarchy is deadlock-free.
//
// The write-behind daemon (fs.wb, internal/writeback) participates as
// an ordinary writer: each of its flush rounds takes fs.mu exclusively.
// Mutating entry points call fs.wb.Admit *before* fs.mu — a writer
// throttled at the hard dirty limit holds no locks while it waits, so
// the daemon can always acquire fs.mu and drain. Admit on a synchronous
// mount is a nil-receiver no-op.
//
// Why writer-exclusive at the FS level: cached block contents (Buf.Data)
// are shared byte slices, and every mutating operation — including
// delayed-write flushes forced by eviction — reads or writes them. The
// exclusive writer lock is what licenses those unguarded Data accesses.
// Read operations run concurrently with each other: cache hits
// parallelize fully, and misses serialize only at the (single-armed)
// simulated disk, which matches the hardware the model simulates. The
// directory stripe tier is redundant for mutual exclusion today — the FS
// writer lock already serializes writers — but it fixes the lock order
// namespace sharding will need, and it is exercised (and checked for
// ordering) under the race detector now.

// nDirStripes is the size of the striped directory lock table.
const nDirStripes = 64

// lockDir locks the stripe of one directory and returns the unlock.
func (fs *FS) lockDir(dir vfs.Ino) func() {
	m := &fs.dirLocks[mix64(uint64(dir))%nDirStripes]
	m.Lock()
	return m.Unlock
}

// lockDirPair locks the stripes of two directories in stripe order,
// deduplicating, and returns the unlock.
func (fs *FS) lockDirPair(a, b vfs.Ino) func() {
	sa := mix64(uint64(a)) % nDirStripes
	sb := mix64(uint64(b)) % nDirStripes
	if sa == sb {
		return fs.lockDir(a)
	}
	if sb < sa {
		sa, sb = sb, sa
	}
	fs.dirLocks[sa].Lock()
	fs.dirLocks[sb].Lock()
	return func() {
		fs.dirLocks[sb].Unlock()
		fs.dirLocks[sa].Unlock()
	}
}

// Lookup implements vfs.FileSystem.
func (fs *FS) Lookup(dir vfs.Ino, name string) (vfs.Ino, error) {
	defer fs.trk.Begin(obs.OpLookup)()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.lookup(dir, name)
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(dir vfs.Ino, name string) (vfs.Ino, error) {
	defer fs.trk.Begin(obs.OpCreate)()
	fs.wb.Admit()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	defer fs.lockDir(dir)()
	if err := fs.markUnclean(); err != nil {
		return 0, err
	}
	return fs.create(dir, name)
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(dir vfs.Ino, name string) (vfs.Ino, error) {
	defer fs.trk.Begin(obs.OpMkdir)()
	fs.wb.Admit()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	defer fs.lockDir(dir)()
	if err := fs.markUnclean(); err != nil {
		return 0, err
	}
	return fs.mkdir(dir, name)
}

// Link implements vfs.FileSystem.
func (fs *FS) Link(dir vfs.Ino, name string, target vfs.Ino) error {
	defer fs.trk.Begin(obs.OpLink)()
	fs.wb.Admit()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	defer fs.lockDir(dir)()
	if err := fs.markUnclean(); err != nil {
		return err
	}
	retired, err := fs.link(dir, name, target)
	fs.pc.invalidate(retired)
	return err
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(dir vfs.Ino, name string) error {
	defer fs.trk.Begin(obs.OpUnlink)()
	fs.wb.Admit()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	defer fs.lockDir(dir)()
	if err := fs.markUnclean(); err != nil {
		return err
	}
	victim, err := fs.unlink(dir, name)
	fs.pc.invalidate(victim)
	return err
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(dir vfs.Ino, name string) error {
	defer fs.trk.Begin(obs.OpRmdir)()
	fs.wb.Admit()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	defer fs.lockDir(dir)()
	if err := fs.markUnclean(); err != nil {
		return err
	}
	victim, err := fs.rmdir(dir, name)
	fs.pc.invalidate(victim)
	return err
}

// Rename implements vfs.FileSystem. Invalidation by the moved entry's
// ino is also the prefix invalidation: every cached path that resolved
// through a moved directory carried its ino in its chain.
func (fs *FS) Rename(sdir vfs.Ino, sname string, ddir vfs.Ino, dname string) error {
	defer fs.trk.Begin(obs.OpRename)()
	fs.wb.Admit()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	defer fs.lockDirPair(sdir, ddir)()
	if err := fs.markUnclean(); err != nil {
		return err
	}
	moved, replaced, err := fs.rename(sdir, sname, ddir, dname)
	fs.pc.invalidate(moved)
	fs.pc.invalidate(replaced)
	return err
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(dir vfs.Ino) ([]vfs.DirEntry, error) {
	defer fs.trk.Begin(obs.OpReadDir)()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.readDir(dir)
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(ino vfs.Ino) (vfs.Stat, error) {
	defer fs.trk.Begin(obs.OpStat)()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.stat(ino)
}

// Truncate implements vfs.FileSystem.
func (fs *FS) Truncate(ino vfs.Ino, size int64) error {
	defer fs.trk.Begin(obs.OpTruncate)()
	fs.wb.Admit()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.markUnclean(); err != nil {
		return err
	}
	return fs.truncateTo(ino, size)
}

// ReadAt implements vfs.FileSystem.
func (fs *FS) ReadAt(ino vfs.Ino, p []byte, off int64) (int, error) {
	defer fs.trk.Begin(obs.OpReadAt)()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.readAt(ino, p, off)
}

// WriteAt implements vfs.FileSystem.
func (fs *FS) WriteAt(ino vfs.Ino, p []byte, off int64) (int, error) {
	defer fs.trk.Begin(obs.OpWriteAt)()
	fs.wb.Admit()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.markUnclean(); err != nil {
		return 0, err
	}
	return fs.writeAt(ino, p, off)
}

// Sync implements vfs.FileSystem.
func (fs *FS) Sync() error {
	defer fs.trk.Begin(obs.OpSync)()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.sync()
}

// Flush implements vfs.Flusher.
func (fs *FS) Flush() error {
	defer fs.trk.Begin(obs.OpFlush)()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.flush()
}

// Close implements vfs.FileSystem. The write-behind daemon is stopped
// first (releasing any throttled writers), then the final sync drains
// everything it had not yet written; only after that full sync is the
// superblock's unclean marker cleared, so a crash anywhere before the
// marker write leaves the image marked dirty (and its directory
// indexes distrusted) — never the other way around.
func (fs *FS) Close() error {
	fs.wb.Close()
	defer fs.trk.Begin(obs.OpSync)()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.sync(); err != nil {
		return err
	}
	return fs.markClean()
}

// FreeBlocks counts free blocks (tests and df-style tools).
func (fs *FS) FreeBlocks() (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.countFree()
}

// GroupWith sets dir as the grouping owner of file; see groupWith for
// the full contract.
func (fs *FS) GroupWith(file, dir vfs.Ino) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.markUnclean(); err != nil {
		return err
	}
	return fs.groupWith(file, dir)
}

// GroupOwner reports the current grouping owner of a file and whether
// any of its blocks are placed in one of the owner's groups.
func (fs *FS) GroupOwner(file vfs.Ino) (vfs.Ino, bool, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.groupOwner(file)
}

// DebugLoc reports where an inode's first data block and the inode
// itself live on disk; experiment diagnostics only.
func (fs *FS) DebugLoc(ino vfs.Ino) (dataBlock, inodeBlock int64) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.debugLoc(ino)
}

// Root, Options, Cache, and Device are immutable after mount and need no
// lock; they are declared in core.go.
