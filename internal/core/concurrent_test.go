package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"cffs/internal/vfs"
)

// Concurrency stress tests. They are most valuable under the race
// detector (go test -race), which the CI pipeline runs; without -race
// they still catch deadlocks and structural corruption.

// raceTolerable reports whether an error is an expected outcome of
// clients racing on a shared namespace rather than a bug: the name
// appeared or vanished under us, or a stale embedded Ino was recycled.
func raceTolerable(err error) bool {
	return errors.Is(err, vfs.ErrExist) || errors.Is(err, vfs.ErrNotExist) ||
		errors.Is(err, vfs.ErrInvalid)
}

// TestConcurrentCreateLookupUnlink races creates, lookups and unlinks of
// overlapping names in one shared directory.
func TestConcurrentCreateLookupUnlink(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	dir, err := fs.Mkdir(fs.Root(), "shared")
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const opsPer = 300
	const names = 24
	var fails atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			data := []byte("hello from a racing client")
			for i := 0; i < opsPer; i++ {
				name := fmt.Sprintf("n%02d", (client*7+i)%names)
				var err error
				switch i % 3 {
				case 0:
					var ino vfs.Ino
					if ino, err = fs.Create(dir, name); err == nil {
						_, err = fs.WriteAt(ino, data, 0)
					}
				case 1:
					var ino vfs.Ino
					if ino, err = fs.Lookup(dir, name); err == nil {
						buf := make([]byte, len(data))
						_, err = fs.ReadAt(ino, buf, 0)
					}
				case 2:
					err = fs.Unlink(dir, name)
				}
				if err != nil && !raceTolerable(err) {
					errs <- fmt.Errorf("client %d op %d on %s: %w", client, i, name, err)
					return
				}
				if err != nil {
					fails.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The directory must still be a consistent, fully readable tree.
	ents, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if _, err := fs.Stat(e.Ino); err != nil {
			t.Fatalf("stat %s after race: %v", e.Name, err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d entries survive, %d conflicted ops", len(ents), fails.Load())
}

// TestConcurrentReaders exercises the shared read path: once the tree is
// built, goroutines Lookup, Stat, ReadDir and ReadAt concurrently with
// no writer. With a writer-preferring RWMutex this is the path that
// actually runs in parallel, so it is where cache-internal races would
// surface.
func TestConcurrentReaders(t *testing.T) {
	fs := newCFFS(t, Options{
		EmbedInodes: true, Grouping: true, Mode: ModeDelayed,
		AdaptiveGroupRead: true, // drive adaptMu from many goroutines
	})
	const dirs = 4
	const filesPer = 16
	content := make([]byte, 3000)
	for i := range content {
		content[i] = byte(i)
	}
	dinos := make([]vfs.Ino, dirs)
	for d := range dinos {
		dir, err := fs.Mkdir(fs.Root(), fmt.Sprintf("d%d", d))
		if err != nil {
			t.Fatal(err)
		}
		dinos[d] = dir
		for f := 0; f < filesPer; f++ {
			ino, err := fs.Create(dir, fmt.Sprintf("f%02d", f))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs.WriteAt(ino, content, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, len(content))
			for i := 0; i < 200; i++ {
				dir := dinos[(r+i)%dirs]
				ents, err := fs.ReadDir(dir)
				if err != nil {
					errs <- err
					return
				}
				name := fmt.Sprintf("f%02d", (r*3+i)%filesPer)
				ino, err := fs.Lookup(dir, name)
				if err != nil {
					errs <- fmt.Errorf("lookup %s: %w", name, err)
					return
				}
				if _, err := fs.Stat(ino); err != nil {
					errs <- err
					return
				}
				n, err := fs.ReadAt(ino, buf, 0)
				if err != nil {
					errs <- fmt.Errorf("read %s: %w", name, err)
					return
				}
				if n != len(content) || buf[1000] != content[1000] {
					errs <- fmt.Errorf("read %s: bad content (n=%d)", name, n)
					return
				}
				if len(ents) != filesPer {
					errs <- fmt.Errorf("readdir: %d entries", len(ents))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentRenameAcrossDirs races renames between two directories
// in both directions, which exercises the ordered two-stripe directory
// locking in lockDirPair.
func TestConcurrentRenameAcrossDirs(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	da, err := fs.Mkdir(fs.Root(), "a")
	if err != nil {
		t.Fatal(err)
	}
	db, err := fs.Mkdir(fs.Root(), "b")
	if err != nil {
		t.Fatal(err)
	}
	const balls = 6
	for i := 0; i < balls; i++ {
		if _, err := fs.Create(da, fmt.Sprintf("ball%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	const movers = 6
	var wg sync.WaitGroup
	errs := make(chan error, movers)
	for m := 0; m < movers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			name := fmt.Sprintf("ball%d", m%balls)
			for i := 0; i < 100; i++ {
				src, dst := da, db
				if (m+i)%2 == 1 {
					src, dst = db, da
				}
				if err := fs.Rename(src, name, dst, name); err != nil && !raceTolerable(err) {
					errs <- fmt.Errorf("mover %d: %w", m, err)
					return
				}
			}
		}(m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every ball must end up in exactly one of the two directories.
	found := map[string]int{}
	for _, dir := range []vfs.Ino{da, db} {
		ents, err := fs.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.Name == "." || e.Name == ".." {
				continue
			}
			found[e.Name]++
		}
	}
	if len(found) != balls {
		t.Fatalf("%d of %d balls survive: %v", len(found), balls, found)
	}
	for name, n := range found {
		if n != 1 {
			t.Fatalf("%s present %d times", name, n)
		}
	}
}

// TestConcurrentMixedWithSync races file operations against Sync calls,
// the combination that breaks naive designs: Sync walks and writes out
// dirty buffers while writers are dirtying them.
func TestConcurrentMixedWithSync(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	dir, err := fs.Mkdir(fs.Root(), "work")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 5)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := make([]byte, 2048)
			for i := 0; i < 150; i++ {
				name := fmt.Sprintf("w%d_%d", w, i%10)
				ino, err := fs.Create(dir, name)
				if err != nil {
					if raceTolerable(err) {
						continue
					}
					errs <- err
					return
				}
				if _, err := fs.WriteAt(ino, data, 0); err != nil && !raceTolerable(err) {
					errs <- err
					return
				}
				if i%3 == 0 {
					if err := fs.Unlink(dir, name); err != nil && !raceTolerable(err) {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := fs.Sync(); err != nil {
				errs <- fmt.Errorf("sync: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
}
