// Package core implements C-FFS, the co-locating fast file system of
// Ganger & Kaashoek (USENIX 1997): embedded inodes and explicit grouping.
//
// Embedded inodes: the inode of a single-link regular file lives inside
// its directory, in the same 256-byte entry slot as its name — and never
// crossing a sector boundary, so the name/inode pair is updated
// atomically by a single disk write. Directories and multi-link files
// keep externalized inodes in a growable inode file (like the BSD-LFS
// IFILE). One disk request fetches a directory's names *and* all of its
// embedded inodes.
//
// Explicit grouping: data blocks of small files named by the same
// directory are allocated inside a physically contiguous, aligned group
// of 16 blocks (64 KB) and moved between memory and disk as one request:
// reading any block of a group brings in the whole group (scattered into
// the cache by physical address), and delayed writes to a group leave
// the queue as one clustered write.
//
// Both techniques are independent Options flags, giving the paper's
// four-way comparison grid: conventional (both off), embedded-only,
// grouping-only, and C-FFS (both on) — all sharing every other line of
// this package.
package core

import (
	"fmt"
	"sync"

	"cffs/internal/blockio"
	"cffs/internal/cache"
	"cffs/internal/layout"
	"cffs/internal/obs"
	"cffs/internal/sim"
	"cffs/internal/vfs"
	"cffs/internal/writeback"
)

// Magic identifies a C-FFS superblock.
const Magic = 0x0CFF_5C01

// Mode selects the metadata integrity strategy (same semantics as the
// baseline: ModeSync orders metadata with synchronous writes, ModeDelayed
// emulates soft updates with delayed writes, as the paper's Figure 6
// does).
type Mode int

const (
	ModeSync Mode = iota
	ModeDelayed
)

func (m Mode) String() string {
	if m == ModeSync {
		return "sync"
	}
	return "delayed"
}

const (
	// mapBlocks is the size of the inode-map region: each map block
	// holds 1024 pointers to inode-file blocks, each of which holds 32
	// inodes, so 8 map blocks address 256Ki external inodes.
	mapBlocks = 8

	// GroupBlocks is the explicit-grouping group size: 16 blocks =
	// 64 KB, matching the paper and the driver's transfer cap.
	GroupBlocks = 16

	// agHeaderOff* lay out the allocation-group header block.
	agBmapOff = 64  // block bitmap
	agDescOff = 320 // group descriptor table (8 bytes per group)
)

// Options configures mkfs/mount. EmbedInodes and Grouping are persisted
// in the superblock at mkfs time; Mount verifies they match.
type Options struct {
	EmbedInodes bool
	Grouping    bool
	// Immediate stores files that fit the inode's spare bytes
	// (layout.InlineSize) inside the inode itself — immediate files
	// [Mullender84], the earlier co-location technique the paper
	// relates to. With embedding on, a tiny file then lives entirely
	// inside its directory block. Reads understand inline data
	// regardless of this flag; the flag gates its creation.
	Immediate bool
	// Readahead, when positive, prefetches up to this many physically
	// contiguous blocks of a file on a read miss (one scatter request).
	// The paper's prototype "currently does not support prefetching";
	// this is the natural extension for large-file reads, where grouping
	// deliberately does nothing.
	Readahead int
	// AdaptiveGroupRead fetches a whole group only on the second recent
	// touch of that group; the first touch reads one block. Directory
	// scans still get group reads (from the second file on), while
	// uniformly random traffic — where fetching 64 KB per 4 KB wanted
	// thrashes the cache — degrades gracefully to per-block reads. The
	// paper moves groups "as a unit ... in most cases"; this is one such
	// policy. Off by default to keep the paper-faithful behaviour.
	AdaptiveGroupRead bool
	// GroupReadahead widens a group read: along with the demand group,
	// up to this many further group extents owned by the same directory
	// are fetched in the same scheduled batch. On a striped volume,
	// consecutive extents live on different spindles, so the batch
	// engages several arms at once — this is what converts spindle count
	// into small-file *read* bandwidth (writes get their parallelism
	// from write-behind clustering). 0, the default, auto-sizes to
	// twice the device's parallelism: plain single disks get no
	// readahead (the paper-faithful behaviour), an N-disk volume gets a
	// fan of 2N extents — enough to keep every arm busy and feed each
	// drive's on-board read-ahead a second extent to stream into.
	// Negative disables it outright.
	GroupReadahead int
	Mode           Mode
	CacheBlocks    int // buffer cache capacity; default 2048 (8 MB)
	AGBlocks       int // blocks per allocation group; default 2048 (8 MB)
	// DirIndexBlocks is the directory size, in blocks, above which a
	// bucketized name-hash index is maintained next to the directory
	// (see dirindex.go): 0 means the default (8 blocks = 128 slots),
	// negative disables indexing entirely. The index is redundant and
	// rebuildable; images written with and without it interoperate.
	DirIndexBlocks int
	// PathCache is the capacity of the sharded full-path→ino lookup
	// cache serving vfs.Walk (see pathcache.go): 0 means the default
	// (32768 entries), negative disables it.
	PathCache int
	// Metrics, when non-nil, instruments the whole mount: per-operation
	// disk-request attribution, cache/driver counters, and the C-FFS
	// mechanism instruments (embedded-inode hits, group-read fill). Nil
	// costs one predictable branch per recording site.
	Metrics *obs.Registry
	// Recorder, when non-nil, attaches a flight recorder
	// (internal/flight) to the mount: every vfs operation's begin/end is
	// observed and every stamped disk request is routed to the in-flight
	// operation that issued it. Works with or without Metrics.
	Recorder obs.OpRecorder
	// Writeback configures the asynchronous write-behind daemon
	// (internal/writeback). Disabled (the zero value), dirty blocks
	// leave the cache only through Sync/Flush, WriteSync, or eviction
	// pressure — the synchronous-mount behaviour. Enabled, a background
	// daemon drains dirty buffers as clustered writes at dirty-ratio
	// water marks and simulated-clock ticks, and mutating operations
	// throttle at the hard dirty limit.
	Writeback writeback.Config
}

func (o *Options) fill() error {
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 2048
	}
	if o.AGBlocks == 0 {
		o.AGBlocks = 2048
	}
	if o.AGBlocks < 64 || o.AGBlocks > 16384 {
		return fmt.Errorf("cffs: AGBlocks %d outside [64,16384]", o.AGBlocks)
	}
	return nil
}

// Config returns the paper's name for an option combination.
func (o Options) Config() string {
	switch {
	case o.EmbedInodes && o.Grouping:
		return "C-FFS"
	case o.EmbedInodes:
		return "embedded-only"
	case o.Grouping:
		return "grouping-only"
	}
	return "conventional"
}

// super is the on-disk superblock (block 0).
type super struct {
	NBlocks   int64
	AGBlocks  int
	NAG       int
	ExtBlocks int // allocated inode-file blocks
	Embed     bool
	Grouping  bool
	// Dirty is the unclean-mount marker: set (synchronously) by the
	// first mutating operation of a mount, cleared by Close after the
	// final sync and by a successful fsck repair. Directory indexes are
	// written lazily, so they may only be trusted when the previous
	// mount ended cleanly — this flag is how a mount knows.
	Dirty bool
}

func (s *super) agStart(ag int) int64 { return int64(1+mapBlocks) + int64(ag)*int64(s.AGBlocks) }

// dataStart is the first groupable block of an allocation group (right
// after its header block).
func (s *super) dataStart(ag int) int64 { return s.agStart(ag) + 1 }

// groupBase is the first group-extent block of an allocation group: the
// first GroupBlocks-aligned block at or after dataStart. Group extents
// are laid out from here in aligned 64 KB units, so an extent always
// fits one MAXPHYS transfer and — on a striped volume whose stripe unit
// is a multiple of GroupBlocks — never straddles a stripe-unit
// boundary (a group read must engage exactly one spindle). The blocks
// between dataStart and groupBase are ungrouped filler, handed out only
// by the first-fit fallback.
func (s *super) groupBase(ag int) int64 {
	d := s.dataStart(ag)
	return (d + GroupBlocks - 1) / GroupBlocks * GroupBlocks
}

// groupsPerAG is how many aligned group extents fit the data area.
// Alignment can pad up to GroupBlocks-1 blocks before the first extent,
// so one group's worth is reserved; for the default 2048-block AGs this
// still yields 127 extents, the same as the pre-alignment layout.
func (s *super) groupsPerAG() int { return (s.AGBlocks - GroupBlocks) / GroupBlocks }

func (s *super) encode(p []byte) {
	le := leBytes{p}
	le.pu32(0, Magic)
	le.pu64(8, uint64(s.NBlocks))
	le.pu32(16, uint32(s.AGBlocks))
	le.pu32(20, uint32(s.NAG))
	le.pu32(24, uint32(s.ExtBlocks))
	var flags uint32
	if s.Embed {
		flags |= 1
	}
	if s.Grouping {
		flags |= 2
	}
	if s.Dirty {
		flags |= 4
	}
	le.pu32(28, flags)
}

func (s *super) decode(p []byte) error {
	le := leBytes{p}
	if le.u32(0) != Magic {
		return fmt.Errorf("cffs: bad superblock magic %#x", le.u32(0))
	}
	s.NBlocks = int64(le.u64(8))
	s.AGBlocks = int(le.u32(16))
	s.NAG = int(le.u32(20))
	s.ExtBlocks = int(le.u32(24))
	flags := le.u32(28)
	s.Embed = flags&1 != 0
	s.Grouping = flags&2 != 0
	s.Dirty = flags&4 != 0
	return nil
}

// leBytes is a little-endian accessor over a byte slice.
type leBytes struct{ p []byte }

func (b leBytes) pu16(off int, v uint16) {
	b.p[off] = byte(v)
	b.p[off+1] = byte(v >> 8)
}
func (b leBytes) u16(off int) uint16 {
	return uint16(b.p[off]) | uint16(b.p[off+1])<<8
}
func (b leBytes) pu32(off int, v uint32) {
	b.pu16(off, uint16(v))
	b.pu16(off+2, uint16(v>>16))
}
func (b leBytes) u32(off int) uint32 {
	return uint32(b.u16(off)) | uint32(b.u16(off+2))<<16
}
func (b leBytes) pu64(off int, v uint64) {
	b.pu32(off, uint32(v))
	b.pu32(off+4, uint32(v>>32))
}
func (b leBytes) u64(off int) uint64 {
	return uint64(b.u32(off)) | uint64(b.u32(off+4))<<32
}

// FS is a mounted C-FFS. It is safe for concurrent use; see lock.go for
// the lock hierarchy.
type FS struct {
	dev  *blockio.Device
	c    *cache.Cache
	clk  *sim.Clock
	sb   super
	opts Options

	// devParallel is the spindle count under dev (1 for a plain disk);
	// it auto-sizes group readahead and the write-behind batch.
	devParallel int

	// mu is the FS-level lock: read operations (Lookup, ReadDir, Stat,
	// ReadAt, ...) share it, mutating operations hold it exclusively.
	// It protects every field below except the adaptive window, plus
	// the Data of all cached metadata and file blocks against
	// concurrent mutation.
	mu sync.RWMutex

	extFree    []uint64 // in-memory free bitmap over external inode slots
	extBlkPhys []int64  // physical location of each inode-file block
	sbDirty    bool     // superblock fields changed since last writeSuper
	dirRotor   int      // next allocation group for a new directory

	// wasClean records whether the previous mount of this image ended
	// cleanly (always true for a fresh Mkfs); it is immutable after
	// mount and gates trust in on-disk directory indexes. dirtyMarked
	// tracks whether this mount has already written the unclean marker;
	// it is only touched under mu held exclusively.
	wasClean    bool
	dirtyMarked bool

	// idxFresh names directories whose index this (uncleanly started)
	// mount has rebuilt and may therefore trust; nil when wasClean.
	// idxMu guards it: the map is read on the shared lookup path.
	idxMu    sync.Mutex
	idxFresh map[vfs.Ino]struct{}

	// pc is the full-path lookup cache, nil when disabled; see
	// pathcache.go for its place in the lock hierarchy.
	pc *pathCache

	// dirLocks is a striped per-directory lock tier between mu and the
	// cache's internal locks; see lock.go.
	dirLocks [nDirStripes]sync.Mutex

	// Adaptive group-read recency window (see
	// Options.AdaptiveGroupRead), guarded by adaptMu because it is
	// mutated on the read path, under mu held shared.
	adaptMu      sync.Mutex
	recentGroups map[uint32]bool
	recentOrder  []uint32

	// Observability, immutable after mount; all no-ops when
	// Options.Metrics is nil. The mechanism counters measure the
	// paper's two techniques directly: where inode reads are served
	// from, and how many blocks each group read brings in.
	trk            *obs.OpTracker
	mEmbHits       *obs.Counter // inode reads served from a directory block
	mExtReads      *obs.Counter // inode reads that went to the inode file
	mGroupReads    *obs.Counter // ReadRun group fetches issued
	mGroupBlocks   *obs.Counter // blocks requested by those fetches
	mGroupPrefetch *obs.Counter // sibling extents carried by readahead
	mIdxProbes     *obs.Counter // directory-index bucket probes
	mIdxRebuilds   *obs.Counter // directory-index (re)builds

	// wb is the write-behind daemon, nil on synchronous mounts. Its
	// flush rounds take fs.mu exclusively (it is a writer like any
	// other); mutating entry points call wb.Admit before fs.mu, so a
	// throttled writer never blocks the daemon. See lock.go.
	wb *writeback.Daemon
}

var _ vfs.FileSystem = (*FS)(nil)
var _ vfs.Flusher = (*FS)(nil)

// RootIno is the root directory's inode number (external slot 0).
const RootIno vfs.Ino = 1

// deviceParallelism discovers the spindle count under a device by
// interface assertion: a striped volume reports its member count, a
// plain disk (which has no Parallelism method) reports 1.
func deviceParallelism(dev *blockio.Device) int {
	if p, ok := dev.Disk().(interface{ Parallelism() int }); ok && p.Parallelism() > 0 {
		return p.Parallelism()
	}
	return 1
}

// groupReadFan is the effective group-readahead fan-out; see
// Options.GroupReadahead.
func (fs *FS) groupReadFan() int {
	switch {
	case fs.opts.GroupReadahead > 0:
		return fs.opts.GroupReadahead
	case fs.opts.GroupReadahead == 0:
		if fs.devParallel == 1 {
			return 0
		}
		return 2 * fs.devParallel
	default:
		return 0
	}
}

// startWriteback launches the write-behind daemon with the batch size
// scaled to the device's parallelism (unless the caller pinned one).
func (fs *FS) startWriteback(opts Options) {
	cfg := opts.Writeback
	if cfg.Parallelism == 0 {
		cfg.Parallelism = fs.devParallel
	}
	fs.wb = writeback.Start(fs.c, fs.clk, &fs.mu, cfg, opts.Metrics)
}

// Mkfs initializes a C-FFS on the device and returns it mounted.
func Mkfs(dev *blockio.Device, opts Options) (*FS, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	nblocks := dev.Blocks()
	nag := int((nblocks - int64(1+mapBlocks)) / int64(opts.AGBlocks))
	if nag < 1 {
		return nil, fmt.Errorf("cffs: device of %d blocks too small", nblocks)
	}
	fs := &FS{
		dev:         dev,
		c:           cache.New(dev, opts.CacheBlocks),
		clk:         dev.Disk().Clock(),
		opts:        opts,
		devParallel: deviceParallelism(dev),
		wasClean:    true, // a fresh image has no stale indexes
		sb: super{
			NBlocks:  nblocks,
			AGBlocks: opts.AGBlocks,
			NAG:      nag,
			Embed:    opts.EmbedInodes,
			Grouping: opts.Grouping,
		},
	}
	fs.pc = newPathCache(opts.PathCache, opts.Metrics)
	fs.attachMetrics(opts.Metrics, opts.Recorder)
	// Zero the inode map.
	for blk := int64(1); blk <= mapBlocks; blk++ {
		b, err := fs.c.Alloc(blk)
		if err != nil {
			return nil, err
		}
		for i := range b.Data {
			b.Data[i] = 0
		}
		fs.c.MarkDirty(b)
		b.Release()
	}
	// Allocation-group headers: the header block itself is allocated.
	for ag := 0; ag < nag; ag++ {
		hdr, err := fs.c.Alloc(fs.sb.agStart(ag))
		if err != nil {
			return nil, err
		}
		for i := range hdr.Data {
			hdr.Data[i] = 0
		}
		fs.blockBitmap(hdr).Set(0)
		fs.c.MarkDirty(hdr)
		hdr.Release()
	}
	// Root directory at external slot 0.
	rootIdx, err := fs.allocExtInode(0)
	if err != nil {
		return nil, err
	}
	if rootIdx != 0 {
		return nil, fmt.Errorf("cffs: root allocated ext slot %d, want 0", rootIdx)
	}
	root := layout.Inode{Type: vfs.TypeDir, Nlink: 2, Mtime: fs.clk.Now()}
	if err := fs.initDirData(&root, RootIno, RootIno); err != nil {
		return nil, err
	}
	if err := fs.putInode(RootIno, &root, false); err != nil {
		return nil, err
	}
	fs.sbDirty = true
	if err := fs.writeSuper(); err != nil {
		return nil, err
	}
	if err := fs.c.Sync(); err != nil {
		return nil, err
	}
	fs.startWriteback(opts)
	return fs, nil
}

// Mount opens an existing C-FFS. The EmbedInodes/Grouping options are
// taken from the superblock; Mode and cache size from opts.
func Mount(dev *blockio.Device, opts Options) (*FS, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	fs := &FS{
		dev:         dev,
		c:           cache.New(dev, opts.CacheBlocks),
		clk:         dev.Disk().Clock(),
		opts:        opts,
		devParallel: deviceParallelism(dev),
	}
	fs.attachMetrics(opts.Metrics, opts.Recorder)
	sb, err := fs.c.Read(0)
	if err != nil {
		return nil, err
	}
	err = fs.sb.decode(sb.Data)
	sb.Release()
	if err != nil {
		return nil, err
	}
	fs.opts.EmbedInodes = fs.sb.Embed
	fs.opts.Grouping = fs.sb.Grouping
	fs.wasClean = !fs.sb.Dirty
	fs.pc = newPathCache(opts.PathCache, opts.Metrics)
	if err := fs.scanExtInodes(); err != nil {
		return nil, err
	}
	fs.startWriteback(opts)
	return fs, nil
}

// markUnclean stamps the unclean marker into the superblock before the
// first mutation of this mount takes effect. The write is synchronous
// regardless of mode: directory-index blocks are delayed writes, and
// the marker reaching disk first is what licenses the next mount to
// distrust them after a crash. Called with fs.mu held exclusively.
func (fs *FS) markUnclean() error {
	if fs.dirtyMarked {
		return nil
	}
	b, err := fs.c.Read(0)
	if err != nil {
		return err
	}
	fs.sb.Dirty = true
	fs.sb.encode(b.Data)
	if err := fs.c.WriteSync(b); err != nil {
		b.Release()
		return err
	}
	b.Release()
	fs.dirtyMarked = true
	return nil
}

// markClean clears the unclean marker after everything else is on disk.
// Called with fs.mu held exclusively, after a full sync.
func (fs *FS) markClean() error {
	if !fs.dirtyMarked {
		return nil
	}
	b, err := fs.c.Read(0)
	if err != nil {
		return err
	}
	fs.sb.Dirty = false
	fs.sb.encode(b.Data)
	if err := fs.c.WriteSync(b); err != nil {
		b.Release()
		return err
	}
	b.Release()
	fs.dirtyMarked = false
	return nil
}

// writeSuper rewrites the cached superblock (delayed). It is a no-op
// unless a superblock field actually changed — a cold Sync must not pay
// a seek to block 0 for nothing.
func (fs *FS) writeSuper() error {
	if !fs.sbDirty {
		return nil
	}
	b, err := fs.c.Read(0)
	if err != nil {
		return err
	}
	defer b.Release()
	fs.sb.encode(b.Data)
	fs.c.MarkDirty(b)
	fs.sbDirty = false
	return nil
}

// Root implements vfs.FileSystem.
func (fs *FS) Root() vfs.Ino { return RootIno }

// Options returns the active configuration.
func (fs *FS) Options() Options { return fs.opts }

// Cache returns the buffer cache.
func (fs *FS) Cache() *cache.Cache { return fs.c }

// Device returns the block device.
func (fs *FS) Device() *blockio.Device { return fs.dev }

// sync implements Sync; the FS write lock is held.
func (fs *FS) sync() error {
	if err := fs.writeSuper(); err != nil {
		return err
	}
	return fs.c.Sync()
}

// flush implements Flush; the FS write lock is held.
func (fs *FS) flush() error {
	if err := fs.writeSuper(); err != nil {
		return err
	}
	return fs.c.Flush()
}

// syncMeta writes a metadata buffer through in ModeSync, or leaves it
// delayed in ModeDelayed.
func (fs *FS) syncMeta(b *cache.Buf) error {
	fs.c.MarkDirty(b)
	if fs.opts.Mode == ModeSync {
		return fs.c.WriteSync(b)
	}
	return nil
}

// attachMetrics wires Options.Metrics and Options.Recorder through
// every layer of this mount: op tracking at the vfs boundary, the
// mechanism counters, the cache and driver instruments, and the disk's
// per-op request sink (chained through the recorder when one is
// attached, so the recorder sees every stamped request).
func (fs *FS) attachMetrics(r *obs.Registry, rec obs.OpRecorder) {
	fs.trk = obs.NewOpTracker(r)
	if rec != nil {
		fs.trk.Observe(rec)
	}
	if r == nil && rec == nil {
		return
	}
	if r != nil {
		fs.mEmbHits = r.Counter("core.inode.embedded_hits")
		fs.mExtReads = r.Counter("core.inode.external_reads")
		fs.mGroupReads = r.Counter("core.groupread.reads")
		fs.mGroupBlocks = r.Counter("core.groupread.blocks")
		fs.mGroupPrefetch = r.Counter("core.groupread.prefetch_extents")
		fs.mIdxProbes = r.Counter("core.dirindex.probes")
		fs.mIdxRebuilds = r.Counter("core.dirindex.rebuilds")
		fs.c.SetMetrics(r)
		fs.dev.SetMetrics(r)
	}
	sink := obs.NewDiskSink(r)
	if rec != nil {
		sink = rec.DiskSink(sink)
	}
	fs.dev.Disk().SetOpSource(obs.CurrentOpRaw)
	fs.dev.Disk().SetMetricsFunc(sink)
}

// debugLoc reports where an inode's first data block and the inode
// itself live on disk; experiment diagnostics only.
func (fs *FS) debugLoc(ino vfs.Ino) (dataBlock, inodeBlock int64) {
	in, err := fs.getInode(ino)
	if err != nil {
		return -1, -1
	}
	b, _, err := fs.inodeBuf(ino)
	if err != nil {
		return int64(in.Direct[0]), -1
	}
	phys := b.Block
	b.Release()
	return int64(in.Direct[0]), phys
}
