package core

import (
	"fmt"

	"cffs/internal/vfs"
)

// Application-directed grouping — the extension the paper sketches in
// its discussion (Section 6): "a file system that groups files based on
// application hints when they are available and name space
// relationships when they are not", motivated by the hypertext-document
// example of [Kaashoek96].
//
// GroupWith redirects the grouping (and conventional-locality) owner of
// a regular file from its naming directory to another directory: blocks
// the file allocates afterwards are placed in that directory's groups,
// so files that one application request touches together — a page and
// its images, a message and its attachments — move to and from the disk
// together even when the namespace scatters them.

// groupWith implements GroupWith; the FS write lock is held.
//
// GroupWith sets dir as the grouping owner of file. It affects only
// future allocations: call it between Create and the first WriteAt for
// full effect. Already-allocated blocks stay where they are (the paper's
// C-FFS never relocates on policy changes either). The file itself may
// live anywhere in the namespace; dir must be an existing directory.
func (fs *FS) groupWith(file, dir vfs.Ino) error {
	if isEmbedded(dir) {
		return fmt.Errorf("cffs: GroupWith owner: %w", vfs.ErrNotDir)
	}
	din, err := fs.getLiveInode(dir)
	if err != nil {
		return err
	}
	if din.Type != vfs.TypeDir {
		return fmt.Errorf("cffs: GroupWith owner %#x: %w", uint64(dir), vfs.ErrNotDir)
	}
	in, err := fs.getLiveInode(file)
	if err != nil {
		return err
	}
	if in.Type != vfs.TypeReg {
		return fmt.Errorf("cffs: GroupWith target %#x: %w", uint64(file), vfs.ErrIsDir)
	}
	if in.Parent == uint32(dir) {
		return nil
	}
	in.Parent = uint32(dir)
	in.Group = 0 // next allocation picks a group owned by the hint target
	return fs.putInode(file, &in, false)
}

// groupOwner implements GroupOwner; the FS lock is held.
//
// GroupOwner reports the current grouping owner of a file (its naming
// directory unless redirected by GroupWith) and whether any of its
// blocks are currently placed in one of the owner's groups.
func (fs *FS) groupOwner(file vfs.Ino) (vfs.Ino, bool, error) {
	in, err := fs.getLiveInode(file)
	if err != nil {
		return 0, false, err
	}
	return vfs.Ino(in.Parent), in.Group != 0, nil
}
