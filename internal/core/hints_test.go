package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"cffs/internal/vfs"
)

// Files hinted to a common owner must end up physically adjacent even
// though their names live in different directories, and reading one
// must group-read the others.
func TestGroupWithCoLocatesAcrossDirectories(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	owner, err := fs.Mkdir(fs.Root(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	// Scatter the files across unrelated directories.
	var inos []vfs.Ino
	for i := 0; i < 6; i++ {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("elsewhere%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ino, err := fs.Create(d, "asset")
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.GroupWith(ino, owner); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(ino, bytes.Repeat([]byte{byte(i)}, 1024), 0); err != nil {
			t.Fatal(err)
		}
		inos = append(inos, ino)
	}
	// All data blocks must share one group extent.
	var first int64
	for i, ino := range inos {
		in, err := fs.getLiveInode(ino)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = int64(in.Direct[0])
			continue
		}
		_, _, start0, _ := fs.locateGroup(first)
		_, _, startI, ok := fs.locateGroup(int64(in.Direct[0]))
		if !ok || startI != start0 {
			t.Fatalf("asset %d at block %d outside the hinted group (start %d)", i, in.Direct[0], start0)
		}
		owner, grouped, err := fs.GroupOwner(ino)
		if err != nil || !grouped {
			t.Fatalf("asset %d not grouped: %v", i, err)
		}
		if owner == 0 {
			t.Fatal("owner lost")
		}
	}

	// Cold data: flush, warm the namespace metadata, then check that one
	// group read serves every hinted asset's data.
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	handles := make([]vfs.Ino, 6)
	for i := range handles {
		ino, err := vfs.Walk(fs, fmt.Sprintf("/elsewhere%d/asset", i))
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = ino
	}
	buf := make([]byte, 1024)
	if _, err := fs.ReadAt(handles[0], buf, 0); err != nil {
		t.Fatal(err)
	}
	before := fs.Device().Disk().Stats().Reads
	for i := 1; i < 6; i++ {
		if _, err := fs.ReadAt(handles[i], buf, 0); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("asset %d corrupted", i)
		}
	}
	if extra := fs.Device().Disk().Stats().Reads - before; extra != 0 {
		t.Fatalf("hinted siblings cost %d extra data reads; want 0", extra)
	}
}

func TestGroupWithValidation(t *testing.T) {
	fs := newCFFS(t, Options{EmbedInodes: true, Grouping: true, Mode: ModeDelayed})
	f, err := fs.Create(fs.Root(), "f")
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs.Create(fs.Root(), "g")
	if err != nil {
		t.Fatal(err)
	}
	d, err := fs.Mkdir(fs.Root(), "d")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.GroupWith(f, g); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("GroupWith(file, file) = %v, want ErrNotDir", err)
	}
	if err := fs.GroupWith(d, fs.Root()); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("GroupWith(dir, ...) = %v, want ErrIsDir", err)
	}
	if err := fs.GroupWith(f, fs.Root()); err != nil {
		t.Fatalf("no-op hint to naming directory: %v", err)
	}
	if err := fs.GroupWith(f, d); err != nil {
		t.Fatal(err)
	}
	owner, grouped, err := fs.GroupOwner(f)
	if err != nil || owner != d || grouped {
		t.Fatalf("GroupOwner = (%v, %v, %v), want (%v, false, nil)", owner, grouped, err, d)
	}
	// The image stays consistent with hints in play.
	if _, err := fs.WriteAt(f, make([]byte, 2048), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("hinted image not clean: %v", rep.Problems)
	}
}
