package flight

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/fault"
	"cffs/internal/obs"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

// mountRec builds a C-FFS over a fault-injectable store with a flight
// recorder attached, returning the pieces the tests poke at.
func mountRec(t *testing.T, cfg Config) (*core.FS, *Recorder, *fault.Store, *obs.Registry, *sim.Clock) {
	t.Helper()
	spec := disk.SeagateST31200()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock()
	fst := fault.NewStore(disk.NewMemStore(spec.Geom.Bytes()), 7)
	fst.SetClock(clk)
	d, err := disk.New(spec, clk, fst)
	if err != nil {
		t.Fatal(err)
	}
	dev := blockio.NewDevice(d, sched.CLook{})
	reg := obs.NewRegistry()
	fst.SetMetrics(reg)
	rec := New(cfg, clk, reg)
	fs, err := core.Mkfs(dev, core.Options{
		EmbedInodes: true, Grouping: true,
		Metrics: reg, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs, rec, fst, reg, clk
}

// TestRingRecordsOpsWithRequests checks the always-on ring: completed
// operations appear oldest-first with their latency and the disk
// requests the trace layer attributed to them.
func TestRingRecordsOpsWithRequests(t *testing.T) {
	fs, rec, _, reg, _ := mountRec(t, Config{RingSize: 64})
	root := fs.Root()
	for i := 0; i < 10; i++ {
		if _, err := fs.Create(root, fmt.Sprintf("f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(root, "f3"); err != nil {
		t.Fatal(err)
	}

	ring := rec.Ring()
	if len(ring) == 0 {
		t.Fatal("ring is empty after 11 operations")
	}
	var creates, withReqs int
	for _, r := range ring {
		if r.Op == "create" {
			creates++
		}
		if len(r.Requests) > 0 {
			withReqs++
		}
		if r.LatencyNs < 0 {
			t.Errorf("op %s id=%d has negative latency %d", r.Op, r.ID, r.LatencyNs)
		}
	}
	if creates != 10 {
		t.Errorf("ring holds %d creates, want 10", creates)
	}
	if withReqs == 0 {
		t.Error("no ring entry carries attributed disk requests")
	}
	snap := reg.Snapshot()
	if got := snap.Counter("flight.ops"); got != int64(len(ring)) {
		t.Errorf("flight.ops = %d, ring holds %d", got, len(ring))
	}
	if got := snap.Gauges["flight.inflight"]; got != 0 {
		t.Errorf("flight.inflight = %d after quiescence, want 0", got)
	}
}

// TestRingWraps checks the ring is bounded and keeps the newest entries.
func TestRingWraps(t *testing.T) {
	fs, rec, _, _, _ := mountRec(t, Config{RingSize: 8})
	root := fs.Root()
	for i := 0; i < 40; i++ {
		if _, err := fs.Create(root, fmt.Sprintf("f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ring := rec.Ring()
	if len(ring) != 8 {
		t.Fatalf("ring holds %d entries, want 8", len(ring))
	}
	for i := 1; i < len(ring); i++ {
		if ring[i].ID < ring[i-1].ID {
			t.Errorf("ring not oldest-first: id %d before %d", ring[i-1].ID, ring[i].ID)
		}
	}
}

// TestSlowOpCaptureFaultInjected is the acceptance test: degrade the
// device with fault-injected latency and assert the recorder captures
// the slow operation with its full disk-request trace and a frozen
// registry snapshot.
func TestSlowOpCaptureFaultInjected(t *testing.T) {
	fs, rec, fst, reg, _ := mountRec(t, Config{
		SlowQuantile: 0.95,
		MinSamples:   32,
	})
	root := fs.Root()

	// Warmup: enough healthy operations (including lookups — thresholds
	// are per op kind) to arm the quantile threshold.
	buf := make([]byte, 4096)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("w%d", i)
		ino, err := fs.Create(root, name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(ino, buf, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Lookup(root, name); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	thr := rec.ThresholdNs(obs.OpLookup)
	if thr == math.MaxInt64 {
		t.Fatal("quantile threshold never armed during warmup")
	}
	preSlow := len(rec.Slow())

	// Remount for a cold cache, then degrade the device: each store I/O
	// now drags an extra simulated second, dwarfing any healthy
	// operation. The recorder and registry survive the remount.
	fs2, err := core.Mount(fs.Device(), core.Options{Metrics: reg, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	fst.SetSlowIO(1e9)
	if _, err := fs2.Lookup(fs2.Root(), "w63"); err != nil {
		t.Fatal(err)
	}

	slow := rec.Slow()[preSlow:]
	if len(slow) == 0 {
		t.Fatal("degraded lookup was not captured as slow")
	}
	s := slow[len(slow)-1]
	if s.Op != "lookup" {
		t.Errorf("captured op %q, want lookup", s.Op)
	}
	if s.Reason != "quantile" {
		t.Errorf("capture reason %q, want quantile", s.Reason)
	}
	if s.LatencyNs < 1e9 {
		t.Errorf("captured latency %d ns, expected >= 1s of injected delay", s.LatencyNs)
	}
	if s.LatencyNs < s.ThresholdNs {
		t.Errorf("captured latency %d below threshold %d", s.LatencyNs, s.ThresholdNs)
	}
	// The full request trace: the lookup's disk reads, attributed.
	if len(s.Requests) == 0 {
		t.Fatal("slow capture carries no disk requests")
	}
	for _, e := range s.Requests {
		if e.Write {
			t.Errorf("lookup trace contains a write at lba %d", e.LBA)
		}
		if obs.Op(e.OpKind) != obs.OpLookup {
			t.Errorf("request at lba %d attributed to %s, want lookup",
				e.LBA, obs.Op(e.OpKind))
		}
	}
	// The frozen registry snapshot, taken at capture time.
	if s.Registry.Counter("fault.injected.slowio") == 0 {
		t.Error("frozen registry snapshot missing the slow-I/O injection counter")
	}
	if s.Registry.Counter("ops.lookup") == 0 {
		t.Error("frozen registry snapshot missing ops.lookup")
	}
}

// TestFixedThreshold checks SlowNs mode: every op at or above the fixed
// threshold is captured, faster ones are not.
func TestFixedThreshold(t *testing.T) {
	fs, rec, _, _, _ := mountRec(t, Config{SlowNs: 5e6}) // 5 ms
	root := fs.Root()
	for i := 0; i < 20; i++ {
		if _, err := fs.Create(root, fmt.Sprintf("f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ring := rec.Ring()
	slow := rec.Slow()
	var over int
	for _, r := range ring {
		if r.LatencyNs >= 5e6 {
			over++
		}
	}
	if over == 0 {
		t.Skip("no op exceeded 5ms on this geometry") // defensive; creates seek
	}
	if len(slow) != over {
		t.Errorf("captured %d slow ops, ring shows %d over threshold", len(slow), over)
	}
	for _, s := range slow {
		if s.Reason != "threshold" {
			t.Errorf("reason %q, want threshold", s.Reason)
		}
	}
}

// TestCaptureNow checks on-demand capture tags the slow log regardless
// of latency.
func TestCaptureNow(t *testing.T) {
	fs, rec, _, _, _ := mountRec(t, Config{})
	if _, err := fs.Create(fs.Root(), "a"); err != nil {
		t.Fatal(err)
	}
	rec.CaptureNow("fault-injection")
	slow := rec.Slow()
	if len(slow) != 1 {
		t.Fatalf("slow log holds %d entries, want 1", len(slow))
	}
	if slow[0].Reason != "fault-injection" {
		t.Errorf("reason %q, want fault-injection", slow[0].Reason)
	}
	if slow[0].Op != "create" {
		t.Errorf("captured most-recent op %q, want create", slow[0].Op)
	}
}

// TestSlowLogBounded checks eviction at SlowLogSize.
func TestSlowLogBounded(t *testing.T) {
	fs, rec, _, _, _ := mountRec(t, Config{SlowLogSize: 4})
	if _, err := fs.Create(fs.Root(), "a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec.CaptureNow(fmt.Sprintf("r%d", i))
	}
	slow := rec.Slow()
	if len(slow) != 4 {
		t.Fatalf("slow log holds %d entries, want 4", len(slow))
	}
	if slow[0].Reason != "r6" || slow[3].Reason != "r9" {
		t.Errorf("slow log kept %q..%q, want r6..r9", slow[0].Reason, slow[3].Reason)
	}
}

// TestRecorderIsFreeOnSimulatedClock checks the determinism property
// the CI overhead gate relies on: attaching a recorder must not change
// simulated time or on-disk behaviour at all.
func TestRecorderIsFreeOnSimulatedClock(t *testing.T) {
	run := func(withRec bool) int64 {
		spec := disk.SeagateST31200()
		if err := spec.Validate(); err != nil {
			t.Fatal(err)
		}
		clk := sim.NewClock()
		d, err := disk.New(spec, clk, disk.NewMemStore(spec.Geom.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		opts := core.Options{EmbedInodes: true, Grouping: true, Metrics: reg}
		if withRec {
			opts.Recorder = New(Config{}, clk, reg)
		}
		fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), opts)
		if err != nil {
			t.Fatal(err)
		}
		root := fs.Root()
		buf := make([]byte, 4096)
		for i := 0; i < 50; i++ {
			ino, err := fs.Create(root, fmt.Sprintf("f%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs.WriteAt(ino, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		return clk.Now()
	}
	plain, recorded := run(false), run(true)
	if plain != recorded {
		t.Errorf("recorder changed simulated time: %d vs %d ns", plain, recorded)
	}
}

// benchOps drives the small-file workload — create, 4 KB write, lookup,
// periodic sync across a handful of directories — with or without a
// recorder attached. CI's observability smoke job compares the two to
// bound the recorder's wall-clock overhead on realistic operations;
// simulated time is already proven identical by
// TestRecorderIsFreeOnSimulatedClock. Run with a fixed -benchtime Nx so
// bare and recorded execute the same operation sequence.
func benchOps(b *testing.B, withRec bool) {
	spec := disk.SeagateST31200()
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	clk := sim.NewClock()
	d, err := disk.New(spec, clk, disk.NewMemStore(spec.Geom.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts := core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed, Metrics: reg}
	if withRec {
		opts.Recorder = New(Config{}, clk, reg)
	}
	fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), opts)
	if err != nil {
		b.Fatal(err)
	}
	const ndirs = 8
	dirs := make([]vfs.Ino, ndirs)
	for i := range dirs {
		if dirs[i], err = fs.Mkdir(fs.Root(), fmt.Sprintf("d%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := dirs[i%ndirs]
		name := fmt.Sprintf("f%d", i)
		ino, err := fs.Create(dir, name)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fs.WriteAt(ino, buf, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := fs.Lookup(dir, name); err != nil {
			b.Fatal(err)
		}
		if i%32 == 31 {
			if err := fs.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkOpsBare(b *testing.B)     { benchOps(b, false) }
func BenchmarkOpsRecorded(b *testing.B) { benchOps(b, true) }

// TestNilRecorderSafe checks every method is a no-op on a nil receiver,
// so call sites wire unconditionally.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.OpBegin(obs.OpRef{Kind: obs.OpCreate, ID: 1})
	r.OpEnd(obs.OpRef{Kind: obs.OpCreate, ID: 1})
	r.CaptureNow("x")
	if r.Ring() != nil || r.Slow() != nil {
		t.Error("nil recorder returned non-nil state")
	}
	if r.ThresholdNs(obs.OpCreate) != math.MaxInt64 {
		t.Error("nil recorder threshold not MaxInt64")
	}
	inner := func(disk.TraceEntry) {}
	if r.DiskSink(inner) == nil {
		t.Error("nil recorder DiskSink dropped the inner sink")
	}
}

// TestUnattributedRequests checks requests with no in-flight op are
// counted rather than lost silently.
func TestUnattributedRequests(t *testing.T) {
	reg := obs.NewRegistry()
	rec := New(Config{}, sim.NewClock(), reg)
	sink := rec.DiskSink(nil)
	sink(disk.TraceEntry{LBA: 10, Count: 8, OpID: 999}) // nobody in flight
	if got := reg.Snapshot().Counter("flight.unattributed"); got != 1 {
		t.Errorf("flight.unattributed = %d, want 1", got)
	}
}

// TestTextOutput sanity-checks the human renderings used by cfsh.
func TestTextOutput(t *testing.T) {
	fs, rec, _, _, _ := mountRec(t, Config{})
	if _, err := fs.Create(fs.Root(), "a"); err != nil {
		t.Fatal(err)
	}
	rec.CaptureNow("manual")
	var ring, slow, js bytes.Buffer
	rec.WriteRingText(&ring, 10)
	rec.WriteSlowText(&slow)
	if !strings.Contains(ring.String(), "create") {
		t.Errorf("ring text missing create:\n%s", ring.String())
	}
	if !strings.Contains(slow.String(), "manual") {
		t.Errorf("slow text missing reason:\n%s", slow.String())
	}
	if err := rec.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"ring"`) {
		t.Error("JSON output missing ring key")
	}
}
