// Package flight implements an always-on flight recorder for vfs
// operations: a bounded ring buffer of recently completed operations —
// kind, latency on the simulated clock, and the disk requests the trace
// layer attributed to each — plus threshold-triggered slow-op capture
// that freezes the full request trace and a metrics-registry snapshot
// the moment an operation exceeds its latency threshold.
//
// The paper's argument is quantitative (requests per operation,
// positioning cost per byte); the registry aggregates those quantities,
// but an aggregate cannot answer "what did the slowest create actually
// do?". The recorder keeps the evidence: for any recent operation it can
// show the exact request list — how many seeks, how large, where — and
// for anomalous operations it preserves that evidence past the ring's
// horizon together with the registry state at capture time.
//
// Wiring: a Recorder implements obs.OpObserver (attach with
// OpTracker.Observe, done by each file system's Options.Recorder), and
// its DiskSink wraps the registry's disk sink so every stamped request
// is routed to the in-flight operation that issued it. Recording is a
// short critical section per event; the bench overhead gate in CI holds
// it under 5% on the small-file benchmark.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sim"
)

// Config parameterizes a Recorder. The zero value gives usable
// defaults; see the field comments.
type Config struct {
	// RingSize is the completed-operation ring capacity (default 1024).
	RingSize int
	// SlowLogSize bounds the slow-op capture log (default 64). When
	// full, the oldest capture is evicted: the log tracks recent
	// anomalies, the ring has already forgotten them.
	SlowLogSize int
	// SlowNs, when positive, is a fixed latency threshold: any
	// operation at or above it is captured. Zero selects the
	// quantile-driven threshold.
	SlowNs int64
	// SlowQuantile is the per-op-kind latency quantile that sets the
	// capture threshold when SlowNs is zero (default 0.99): an
	// operation is slow when it exceeds its own kind's recent p99.
	SlowQuantile float64
	// MinSamples is how many completions of a kind must be observed
	// before the quantile threshold arms (default 128) — without a
	// warmup the first cold-cache operation of every kind would
	// "exceed" an empty distribution.
	MinSamples int64
	// MaxOpRequests caps the per-operation request list (default 64);
	// requests beyond the cap are counted, not kept. A single vfs
	// operation issuing more is pathological — which is exactly what
	// the Truncated count then flags.
	MaxOpRequests int
}

func (c *Config) fill() {
	if c.RingSize == 0 {
		c.RingSize = 1024
	}
	if c.SlowLogSize == 0 {
		c.SlowLogSize = 64
	}
	if c.SlowQuantile == 0 {
		c.SlowQuantile = 0.99
	}
	if c.MinSamples == 0 {
		c.MinSamples = 128
	}
	if c.MaxOpRequests == 0 {
		c.MaxOpRequests = 64
	}
}

// OpRecord is one completed operation as kept in the ring.
type OpRecord struct {
	Op        string            `json:"op"`
	ID        uint64            `json:"id"`
	StartNs   int64             `json:"start_ns"`
	LatencyNs int64             `json:"latency_ns"`
	Requests  []disk.TraceEntry `json:"requests,omitempty"`
	Truncated int               `json:"truncated,omitempty"` // requests beyond MaxOpRequests
}

// SlowRecord is a captured anomalous operation: the operation record,
// why it was captured, and the registry frozen at capture time.
type SlowRecord struct {
	OpRecord
	Reason      string       `json:"reason"` // "threshold", "quantile", or a manual/fault tag
	ThresholdNs int64        `json:"threshold_ns,omitempty"`
	CapturedNs  int64        `json:"captured_ns"` // simulated clock at capture
	Registry    obs.Snapshot `json:"registry"`
}

// pending is an operation between OpBegin and OpEnd.
type pending struct {
	ref     obs.OpRef
	startNs int64
	reqs    []disk.TraceEntry
	extra   int
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use and safe on a nil receiver (a disabled recorder), so wiring can be
// unconditional.
type Recorder struct {
	cfg Config
	clk *sim.Clock
	reg *obs.Registry // snapshotted into slow captures; may be nil

	// thr caches the per-kind capture threshold, recomputed every
	// thrRefresh samples; MaxInt64 while unarmed.
	thr [obs.NumOps]atomic.Int64

	mu       sync.Mutex
	inflight map[uint64]*pending
	ring     []OpRecord // circular once full
	next     int        // ring write cursor
	full     bool
	slow     []SlowRecord
	hists    [obs.NumOps]*obs.Histogram // per-kind latency, threshold source

	// Self-instruments; nil-safe when no registry was attached.
	mOps      *obs.Counter
	mSlow     *obs.Counter
	mUnattrib *obs.Counter
	mInflight *obs.Gauge
}

// thrRefresh is how many samples of a kind pass between quantile
// threshold recomputations.
const thrRefresh = 256

// New builds a recorder over the given simulated clock. reg, when
// non-nil, receives the recorder's self-instruments (flight.ops,
// flight.slow, flight.unattributed, flight.inflight and the per-kind
// flight.latency_ns.<op> histograms) and is the registry frozen into
// slow captures.
func New(cfg Config, clk *sim.Clock, reg *obs.Registry) *Recorder {
	cfg.fill()
	r := &Recorder{
		cfg:      cfg,
		clk:      clk,
		reg:      reg,
		inflight: make(map[uint64]*pending),
		ring:     make([]OpRecord, cfg.RingSize),
	}
	for k := obs.Op(0); k < obs.NumOps; k++ {
		if reg != nil {
			r.hists[k] = reg.Histogram("flight.latency_ns." + k.String())
		} else {
			r.hists[k] = &obs.Histogram{}
		}
		r.thr[k].Store(math.MaxInt64)
	}
	if reg != nil {
		r.mOps = reg.Counter("flight.ops")
		r.mSlow = reg.Counter("flight.slow")
		r.mUnattrib = reg.Counter("flight.unattributed")
		r.mInflight = reg.Gauge("flight.inflight")
	}
	return r
}

// OpBegin implements obs.OpObserver.
func (r *Recorder) OpBegin(ref obs.OpRef) {
	if r == nil {
		return
	}
	p := &pending{ref: ref, startNs: r.clk.Now()}
	r.mu.Lock()
	r.inflight[ref.ID] = p
	r.mu.Unlock()
	r.mInflight.Add(1)
}

// OpEnd implements obs.OpObserver: the operation's requests and latency
// move into the ring, and a slow operation is captured. Called with no
// file-system locks held (see obs.OpObserver).
func (r *Recorder) OpEnd(ref obs.OpRef) {
	if r == nil {
		return
	}
	end := r.clk.Now()
	r.mu.Lock()
	p := r.inflight[ref.ID]
	delete(r.inflight, ref.ID)
	r.mu.Unlock()
	if p == nil {
		return // Begin predated the recorder, or a duplicate End
	}
	r.mInflight.Add(-1)
	r.mOps.Inc()
	lat := end - p.startNs
	rec := OpRecord{
		Op:        ref.Kind.String(),
		ID:        ref.ID,
		StartNs:   p.startNs,
		LatencyNs: lat,
		Requests:  p.reqs,
		Truncated: p.extra,
	}
	r.observeLatency(ref.Kind, lat)
	slow := lat >= r.thr[ref.Kind].Load()
	fixed := r.cfg.SlowNs > 0

	r.mu.Lock()
	r.ring[r.next] = rec
	r.next++
	if r.next == len(r.ring) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()

	if slow {
		reason := "quantile"
		if fixed {
			reason = "threshold"
		}
		r.capture(SlowRecord{
			OpRecord:    rec,
			Reason:      reason,
			ThresholdNs: r.thr[ref.Kind].Load(),
			CapturedNs:  end,
			Registry:    r.reg.Snapshot(),
		})
	}
}

// observeLatency records one latency sample and refreshes the kind's
// cached threshold on the configured cadence.
func (r *Recorder) observeLatency(kind obs.Op, lat int64) {
	h := r.hists[kind]
	h.Record(lat)
	n := h.Count()
	if r.cfg.SlowNs > 0 {
		if r.thr[kind].Load() != r.cfg.SlowNs {
			r.thr[kind].Store(r.cfg.SlowNs)
		}
		return
	}
	if n < r.cfg.MinSamples {
		return
	}
	if n == r.cfg.MinSamples || n%thrRefresh == 0 {
		q := h.Snapshot().Quantile(r.cfg.SlowQuantile)
		thr := int64(q)
		if thr < 1 {
			thr = 1 // an all-zero-latency history still ignores free ops
		}
		r.thr[kind].Store(thr)
	}
}

// capture appends one slow record, evicting the oldest past capacity.
func (r *Recorder) capture(s SlowRecord) {
	r.mSlow.Inc()
	r.mu.Lock()
	r.slow = append(r.slow, s)
	if over := len(r.slow) - r.cfg.SlowLogSize; over > 0 {
		r.slow = append(r.slow[:0], r.slow[over:]...)
	}
	r.mu.Unlock()
}

// CaptureNow freezes the registry and the most recent completed
// operation into the slow log with the given reason tag, regardless of
// latency. Fault-injection paths call this when they fire, so the
// operation stream around an injected anomaly survives the ring.
func (r *Recorder) CaptureNow(reason string) {
	if r == nil {
		return
	}
	var last OpRecord
	r.mu.Lock()
	if r.full || r.next > 0 {
		i := r.next - 1
		if i < 0 {
			i = len(r.ring) - 1
		}
		last = r.ring[i]
	}
	r.mu.Unlock()
	r.capture(SlowRecord{
		OpRecord:   last,
		Reason:     reason,
		CapturedNs: r.clk.Now(),
		Registry:   r.reg.Snapshot(),
	})
}

// DiskSink wraps a registry disk sink (which may be nil) with request
// routing into the in-flight operation table. Install the result with
// disk.SetMetricsFunc; it is invoked under the disk's request lock, so
// the critical section here is one map probe and an append.
func (r *Recorder) DiskSink(inner func(disk.TraceEntry)) func(disk.TraceEntry) {
	if r == nil {
		return inner
	}
	return func(e disk.TraceEntry) {
		if inner != nil {
			inner(e)
		}
		r.mu.Lock()
		p := r.inflight[e.OpID]
		if p != nil {
			if len(p.reqs) < r.cfg.MaxOpRequests {
				p.reqs = append(p.reqs, e)
			} else {
				p.extra++
			}
		}
		r.mu.Unlock()
		if p == nil {
			r.mUnattrib.Inc()
		}
	}
}

// Ring returns the completed-operation ring, oldest first.
func (r *Recorder) Ring() []OpRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []OpRecord
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	return append(out, r.ring[:r.next]...)
}

// Slow returns the slow-op capture log, oldest first.
func (r *Recorder) Slow() []SlowRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SlowRecord, len(r.slow))
	copy(out, r.slow)
	return out
}

// ThresholdNs reports the active capture threshold for one op kind
// (math.MaxInt64 while the quantile threshold is still warming up).
func (r *Recorder) ThresholdNs(kind obs.Op) int64 {
	if r == nil {
		return math.MaxInt64
	}
	return r.thr[kind].Load()
}

// WriteJSON emits the ring and slow log as one JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		Ring []OpRecord   `json:"ring"`
		Slow []SlowRecord `json:"slow"`
	}{r.Ring(), r.Slow()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteSlowText renders the slow log for humans, newest last.
func (r *Recorder) WriteSlowText(w io.Writer) {
	slow := r.Slow()
	if len(slow) == 0 {
		fmt.Fprintln(w, "slowlog: empty")
		return
	}
	for _, s := range slow {
		fmt.Fprintf(w, "%-8s id=%d at=%s latency=%s reason=%s",
			s.Op, s.ID, sim.Duration(s.CapturedNs), sim.Duration(s.LatencyNs), s.Reason)
		if s.ThresholdNs > 0 && s.ThresholdNs < math.MaxInt64 {
			fmt.Fprintf(w, " threshold=%s", sim.Duration(s.ThresholdNs))
		}
		fmt.Fprintf(w, " requests=%d", len(s.Requests)+s.Truncated)
		fmt.Fprintln(w)
		for _, e := range s.Requests {
			rw := "R"
			if e.Write {
				rw = "W"
			}
			fmt.Fprintf(w, "    %s lba=%-10d sectors=%-4d %.3fms\n",
				rw, e.LBA, e.Count, float64(e.Nanos)/1e6)
		}
		if s.Truncated > 0 {
			fmt.Fprintf(w, "    ... %d more requests (truncated)\n", s.Truncated)
		}
	}
}

// WriteRingText renders the newest n ring entries (all when n <= 0).
func (r *Recorder) WriteRingText(w io.Writer, n int) {
	ring := r.Ring()
	if len(ring) == 0 {
		fmt.Fprintln(w, "flight ring: empty")
		return
	}
	if n > 0 && len(ring) > n {
		ring = ring[len(ring)-n:]
	}
	for _, rec := range ring {
		fmt.Fprintf(w, "%-8s id=%-8d latency=%-12s requests=%d\n",
			rec.Op, rec.ID, sim.Duration(rec.LatencyNs), len(rec.Requests)+rec.Truncated)
	}
}
