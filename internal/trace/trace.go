// Package trace analyzes disk request traces captured from the
// simulator (disk.SetTrace). It reduces a request stream to the
// quantities the paper reasons about: how many requests, how large, how
// far apart — making the mechanism behind a throughput number visible.
package trace

import (
	"fmt"
	"io"
	"sort"

	"cffs/internal/disk"
)

// Profile summarizes a request stream.
type Profile struct {
	Requests   int
	Reads      int
	Writes     int
	Sectors    int64
	TotalNanos int64

	// Request-size histogram, bucketed by power-of-two KB.
	SizeBuckets map[int]int // bucket key = KB (1,2,4,...)

	// Inter-request distance (absolute LBA gap between consecutive
	// requests), summarized.
	MedianGap int64
	P90Gap    int64
	Adjacent  int // requests starting exactly where the previous ended

	// Service-time percentiles in nanoseconds (exact order statistics,
	// zero on an empty stream). The tail is where the mechanisms show:
	// an all-cache-hit stream has a flat distribution at bus speed,
	// while p99 >> p50 means a minority of requests pay full seeks.
	P50ServiceNs int64
	P95ServiceNs int64
	P99ServiceNs int64
}

// Analyze reduces a trace.
func Analyze(entries []disk.TraceEntry) Profile {
	p := Profile{SizeBuckets: make(map[int]int)}
	var gaps []int64
	var prevEnd int64 = -1
	for _, e := range entries {
		p.Requests++
		if e.Write {
			p.Writes++
		} else {
			p.Reads++
		}
		p.Sectors += int64(e.Count)
		p.TotalNanos += e.Nanos
		kb := (e.Count * disk.SectorSize) / 1024
		bucket := 1
		for bucket < kb {
			bucket *= 2
		}
		p.SizeBuckets[bucket]++
		if prevEnd >= 0 {
			gap := e.LBA - prevEnd
			if gap < 0 {
				gap = -gap
			}
			if gap == 0 {
				p.Adjacent++
			}
			gaps = append(gaps, gap)
		}
		prevEnd = e.LBA + int64(e.Count)
	}
	if len(gaps) > 0 {
		sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
		p.MedianGap = gaps[len(gaps)/2]
		p.P90Gap = gaps[len(gaps)*9/10]
	}
	if len(entries) > 0 {
		svc := make([]int64, len(entries))
		for i, e := range entries {
			svc[i] = e.Nanos
		}
		sort.Slice(svc, func(i, j int) bool { return svc[i] < svc[j] })
		p.P50ServiceNs = svc[pctIdx(len(svc), 50)]
		p.P95ServiceNs = svc[pctIdx(len(svc), 95)]
		p.P99ServiceNs = svc[pctIdx(len(svc), 99)]
	}
	return p
}

// pctIdx returns the nearest-rank index of the q-th percentile in a
// sorted slice of n elements (n >= 1): ceil(q/100 * n) - 1, clamped.
func pctIdx(n, q int) int {
	i := (q*n + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > n {
		i = n
	}
	return i - 1
}

// MeanRequestKB returns the average request size in KB.
func (p Profile) MeanRequestKB() float64 {
	if p.Requests == 0 {
		return 0
	}
	return float64(p.Sectors) * disk.SectorSize / 1024 / float64(p.Requests)
}

// MeanServiceMs returns the average request service time.
func (p Profile) MeanServiceMs() float64 {
	if p.Requests == 0 {
		return 0
	}
	return float64(p.TotalNanos) / float64(p.Requests) / 1e6
}

// Bandwidth returns achieved MB/s over the busy time.
func (p Profile) Bandwidth() float64 {
	if p.TotalNanos == 0 {
		return 0
	}
	return float64(p.Sectors) * disk.SectorSize / (float64(p.TotalNanos) / 1e9) / 1e6
}

// Render writes a human-readable report.
func (p Profile) Render(w io.Writer, label string) {
	fmt.Fprintf(w, "%s: %d requests (%d reads, %d writes), %.1f KB mean, %.2f ms mean, %.2f MB/s busy\n",
		label, p.Requests, p.Reads, p.Writes, p.MeanRequestKB(), p.MeanServiceMs(), p.Bandwidth())
	fmt.Fprintf(w, "  locality: %d adjacent starts, median gap %d sectors, p90 gap %d sectors\n",
		p.Adjacent, p.MedianGap, p.P90Gap)
	fmt.Fprintf(w, "  service: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
		float64(p.P50ServiceNs)/1e6, float64(p.P95ServiceNs)/1e6, float64(p.P99ServiceNs)/1e6)
	var buckets []int
	for b := range p.SizeBuckets {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	fmt.Fprint(w, "  sizes:")
	for _, b := range buckets {
		fmt.Fprintf(w, " %dKB:%d", b, p.SizeBuckets[b])
	}
	fmt.Fprintln(w)
}
