package trace

import (
	"bytes"
	"strings"
	"testing"

	"cffs/internal/disk"
)

func entry(lba int64, sectors int, write bool, ms float64) disk.TraceEntry {
	return disk.TraceEntry{LBA: lba, Count: sectors, Write: write, Nanos: int64(ms * 1e6)}
}

func TestAnalyzeCounts(t *testing.T) {
	p := Analyze([]disk.TraceEntry{
		entry(0, 8, false, 10),      // 4 KB read
		entry(8, 8, true, 5),        // adjacent 4 KB write
		entry(1000, 128, false, 20), // 64 KB read far away
	})
	if p.Requests != 3 || p.Reads != 2 || p.Writes != 1 {
		t.Fatalf("counts: %+v", p)
	}
	if p.Sectors != 144 {
		t.Fatalf("sectors = %d", p.Sectors)
	}
	if p.Adjacent != 1 {
		t.Fatalf("adjacent = %d, want 1", p.Adjacent)
	}
	if p.SizeBuckets[4] != 2 || p.SizeBuckets[64] != 1 {
		t.Fatalf("size buckets: %v", p.SizeBuckets)
	}
	if got := p.MeanRequestKB(); got != 24 {
		t.Fatalf("mean request %.1f KB, want 24", got)
	}
	if got := p.MeanServiceMs(); got < 11.6 || got > 11.7 {
		t.Fatalf("mean service %.2f ms", got)
	}
}

func TestAnalyzeGaps(t *testing.T) {
	p := Analyze([]disk.TraceEntry{
		entry(0, 8, false, 1),
		entry(8, 8, false, 1),     // gap 0
		entry(108, 8, false, 1),   // gap 92
		entry(10116, 8, false, 1), // gap 10000
	})
	if p.MedianGap != 92 {
		t.Fatalf("median gap = %d, want 92", p.MedianGap)
	}
	if p.P90Gap != 10000 {
		t.Fatalf("p90 gap = %d, want 10000", p.P90Gap)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	p := Analyze(nil)
	if p.Requests != 0 || p.MeanRequestKB() != 0 || p.Bandwidth() != 0 || p.MeanServiceMs() != 0 {
		t.Fatalf("empty trace produced non-zero profile: %+v", p)
	}
}

func TestRender(t *testing.T) {
	p := Analyze([]disk.TraceEntry{entry(0, 8, false, 10)})
	var buf bytes.Buffer
	p.Render(&buf, "test")
	out := buf.String()
	for _, want := range []string{"test:", "1 requests", "4KB:1", "locality"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
