package trace

import (
	"sync"
	"testing"

	"cffs/internal/disk"
	"cffs/internal/sim"
)

// TestCollectorConcurrent drives a disk from many goroutines with the
// collector installed as the trace sink, which is exactly how the
// concurrent workloads capture request streams. Every request must be
// recorded exactly once, and Snapshot/Profile must be callable while
// collection is still running.
func TestCollectorConcurrent(t *testing.T) {
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	d.SetTraceFunc(col.Add)

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, disk.SectorSize)
			for i := 0; i < perWorker; i++ {
				lba := int64((w*perWorker + i) * 8)
				if err := d.Read(lba, buf); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					_ = col.Snapshot() // probe mid-collection
					_ = col.Len()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := col.Len(); got != workers*perWorker {
		t.Fatalf("recorded %d requests, want %d", got, workers*perWorker)
	}
	p := col.Profile()
	if p.Requests != workers*perWorker || p.Writes != 0 {
		t.Fatalf("profile: %+v", p)
	}
	col.Reset()
	if col.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}
