package trace

import (
	"sync"
	"testing"

	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sim"
)

// TestCollectorConcurrent drives a disk from many goroutines with the
// collector installed as the trace sink, which is exactly how the
// concurrent workloads capture request streams. Every request must be
// recorded exactly once, and Snapshot/Profile must be callable while
// collection is still running.
func TestCollectorConcurrent(t *testing.T) {
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	d.SetTraceFunc(col.Add)

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, disk.SectorSize)
			for i := 0; i < perWorker; i++ {
				lba := int64((w*perWorker + i) * 8)
				if err := d.Read(lba, buf); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					_ = col.Snapshot() // probe mid-collection
					_ = col.Len()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := col.Len(); got != workers*perWorker {
		t.Fatalf("recorded %d requests, want %d", got, workers*perWorker)
	}
	p := col.Profile()
	if p.Requests != workers*perWorker || p.Writes != 0 {
		t.Fatalf("profile: %+v", p)
	}
	col.Reset()
	if col.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

// TestCollectorLabelDrops fills a bounded collector past its cap with
// the drop labeler installed and checks each discarded request lands on
// its owner's trace.dropped{tenant=} counter — including the ""→none
// fallback — while the kept prefix is charged to nobody.
func TestCollectorLabelDrops(t *testing.T) {
	col := NewBounded(2)
	reg := obs.NewRegistry()
	owners := []string{"keep0", "keep1", "alpha", "alpha", "beta", ""}
	col.LabelDrops(reg, func(e disk.TraceEntry) string { return owners[e.OpID] })

	for i := range owners {
		col.Add(disk.TraceEntry{OpID: uint64(i)})
	}
	if col.Len() != 2 || col.Dropped() != 4 {
		t.Fatalf("Len=%d Dropped=%d, want 2/4", col.Len(), col.Dropped())
	}
	want := map[string]int64{
		"trace.dropped{tenant=alpha}": 2,
		"trace.dropped{tenant=beta}":  1,
		"trace.dropped{tenant=none}":  1,
	}
	snap := reg.Snapshot()
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if _, ok := snap.Counters["trace.dropped{tenant=keep0}"]; ok {
		t.Error("kept entry charged a drop counter")
	}

	// Concurrent adds through the labeler must stay race-clean.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				col.Add(disk.TraceEntry{OpID: 4}) // beta
			}
		}()
	}
	wg.Wait()
	if got := reg.Snapshot().Counters["trace.dropped{tenant=beta}"]; got != 401 {
		t.Errorf("beta drops after concurrent adds = %d, want 401", got)
	}
}
