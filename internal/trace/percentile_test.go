package trace

import (
	"sync"
	"testing"

	"cffs/internal/disk"
)

func TestPercentilesEmptyStream(t *testing.T) {
	p := Analyze(nil)
	if p.P50ServiceNs != 0 || p.P95ServiceNs != 0 || p.P99ServiceNs != 0 {
		t.Errorf("empty stream percentiles = %d/%d/%d, want zeros",
			p.P50ServiceNs, p.P95ServiceNs, p.P99ServiceNs)
	}
}

func TestPercentilesSingleEntry(t *testing.T) {
	p := Analyze([]disk.TraceEntry{{LBA: 0, Count: 8, Nanos: 12345}})
	if p.P50ServiceNs != 12345 || p.P95ServiceNs != 12345 || p.P99ServiceNs != 12345 {
		t.Errorf("single entry percentiles = %d/%d/%d, want all 12345",
			p.P50ServiceNs, p.P95ServiceNs, p.P99ServiceNs)
	}
}

func TestPercentilesAllCacheHits(t *testing.T) {
	// An all-cache-hit stream: every request serviced at bus speed with
	// the same cheap time. The distribution is flat — p50 == p99.
	const busNs = 150_000
	var entries []disk.TraceEntry
	for i := 0; i < 50; i++ {
		entries = append(entries, disk.TraceEntry{LBA: int64(i * 8), Count: 8, Nanos: busNs})
	}
	p := Analyze(entries)
	if p.P50ServiceNs != busNs || p.P99ServiceNs != busNs {
		t.Errorf("flat stream p50/p99 = %d/%d, want %d", p.P50ServiceNs, p.P99ServiceNs, busNs)
	}
}

func TestPercentilesTail(t *testing.T) {
	// 99 fast requests and one slow one: p50/p95 stay fast, p99 catches
	// the outlier (nearest-rank on n=100: index 98 is still fast, the
	// 100th value is the max; p99 -> 99th value).
	var entries []disk.TraceEntry
	for i := 0; i < 99; i++ {
		entries = append(entries, disk.TraceEntry{LBA: int64(i), Count: 1, Nanos: 1000})
	}
	entries = append(entries, disk.TraceEntry{LBA: 1000, Count: 1, Nanos: 9_000_000})
	p := Analyze(entries)
	if p.P50ServiceNs != 1000 || p.P95ServiceNs != 1000 {
		t.Errorf("p50/p95 = %d/%d, want 1000", p.P50ServiceNs, p.P95ServiceNs)
	}
	if p.P99ServiceNs != 1000 {
		// nearest-rank p99 of 100 samples is the 99th smallest = 1000
		t.Errorf("p99 = %d, want 1000 (99th of 100)", p.P99ServiceNs)
	}
	// With 1000 samples and 15 slow ones the outliers pass the
	// nearest-rank p99 index (ceil(0.99*1000) = 990th smallest).
	entries = entries[:0]
	for i := 0; i < 985; i++ {
		entries = append(entries, disk.TraceEntry{LBA: int64(i), Count: 1, Nanos: 1000})
	}
	for i := 0; i < 15; i++ {
		entries = append(entries, disk.TraceEntry{LBA: int64(5000 + i), Count: 1, Nanos: 9_000_000})
	}
	p = Analyze(entries)
	if p.P99ServiceNs != 9_000_000 {
		t.Errorf("p99 = %d, want 9000000", p.P99ServiceNs)
	}
}

func TestBoundedCollector(t *testing.T) {
	col := NewBounded(3)
	for i := 0; i < 5; i++ {
		col.Add(disk.TraceEntry{LBA: int64(i), Count: 1, Nanos: int64(i)})
	}
	if col.Len() != 3 {
		t.Errorf("Len = %d, want cap 3", col.Len())
	}
	if col.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", col.Dropped())
	}
	// Drop-newest: the kept entries are the first three.
	for i, e := range col.Snapshot() {
		if e.LBA != int64(i) {
			t.Errorf("entry %d has LBA %d, want %d", i, e.LBA, i)
		}
	}
	col.Reset()
	if col.Len() != 0 || col.Dropped() != 0 {
		t.Errorf("after Reset: Len=%d Dropped=%d, want 0/0", col.Len(), col.Dropped())
	}
	col.Add(disk.TraceEntry{})
	if col.Len() != 1 || col.Dropped() != 0 {
		t.Error("cap must re-arm after Reset")
	}
}

func TestBoundedCollectorConcurrent(t *testing.T) {
	const cap = 64
	col := NewBounded(cap)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				col.Add(disk.TraceEntry{LBA: int64(i)})
			}
		}()
	}
	wg.Wait()
	if col.Len() != cap {
		t.Errorf("Len = %d, want %d", col.Len(), cap)
	}
	if got := col.Dropped(); got != 8*100-cap {
		t.Errorf("Dropped = %d, want %d", got, 8*100-cap)
	}
}
