package trace

import (
	"sync"

	"cffs/internal/disk"
)

// Collector is a concurrency-safe trace capture buffer. Install its Add
// method with disk.SetTraceFunc to record requests while multiple
// goroutines drive the file system; Snapshot and Profile may be called
// at any time, including while collection is still running.
//
// The raw disk.SetTrace buffer is cheaper but has a single-owner
// contract; Collector is the concurrent alternative the workload driver
// and the race-detector tests use.
//
// A collector may be bounded (NewBounded): once max entries are held,
// further requests are dropped-newest and counted, so a long-running
// concurrency benchmark cannot grow the buffer without bound. The kept
// prefix stays a contiguous head of the stream, which keeps Profile's
// inter-request gap analysis meaningful on the retained part.
type Collector struct {
	mu      sync.Mutex
	entries []disk.TraceEntry
	max     int // 0 = unbounded
	dropped int64
}

// NewCollector returns an empty, unbounded collector.
func NewCollector() *Collector { return &Collector{} }

// NewBounded returns a collector that keeps at most max entries
// (unbounded when max <= 0) and counts the rest as dropped.
func NewBounded(max int) *Collector { return &Collector{max: max} }

// Add records one request. It is safe for concurrent use and is the
// shape disk.SetTraceFunc expects.
func (c *Collector) Add(e disk.TraceEntry) {
	c.mu.Lock()
	if c.max > 0 && len(c.entries) >= c.max {
		c.dropped++
	} else {
		c.entries = append(c.entries, e)
	}
	c.mu.Unlock()
}

// Len returns the number of recorded requests.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Dropped returns how many requests the cap discarded.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Snapshot returns a copy of the recorded requests in service order.
func (c *Collector) Snapshot() []disk.TraceEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]disk.TraceEntry, len(c.entries))
	copy(out, c.entries)
	return out
}

// Reset discards all recorded requests and the dropped count.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.entries = c.entries[:0]
	c.dropped = 0
	c.mu.Unlock()
}

// Profile reduces the recorded requests with Analyze.
func (c *Collector) Profile() Profile {
	return Analyze(c.Snapshot())
}
