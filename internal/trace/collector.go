package trace

import (
	"sync"

	"cffs/internal/disk"
	"cffs/internal/obs"
)

// Collector is a concurrency-safe trace capture buffer. Install its Add
// method with disk.SetTraceFunc to record requests while multiple
// goroutines drive the file system; Snapshot and Profile may be called
// at any time, including while collection is still running.
//
// The raw disk.SetTrace buffer is cheaper but has a single-owner
// contract; Collector is the concurrent alternative the workload driver
// and the race-detector tests use.
//
// A collector may be bounded (NewBounded): once max entries are held,
// further requests are dropped-newest and counted, so a long-running
// concurrency benchmark cannot grow the buffer without bound. The kept
// prefix stays a contiguous head of the stream, which keeps Profile's
// inter-request gap analysis meaningful on the retained part.
type Collector struct {
	mu      sync.Mutex
	entries []disk.TraceEntry
	max     int // 0 = unbounded
	dropped int64

	dropOwner func(disk.TraceEntry) string
	dropReg   *obs.Registry
	dropCtr   map[string]*obs.Counter
}

// NewCollector returns an empty, unbounded collector.
func NewCollector() *Collector { return &Collector{} }

// NewBounded returns a collector that keeps at most max entries
// (unbounded when max <= 0) and counts the rest as dropped.
func NewBounded(max int) *Collector { return &Collector{max: max} }

// LabelDrops attributes future drops to tenants: every request the cap
// discards increments a trace.dropped{tenant=...} counter in r, with the
// tenant resolved by owner (typically srv.Server.CurrentTenant wrapped to
// ignore the entry, since the trace hook runs synchronously on the
// goroutine that issued the request). Requests with no resolvable owner
// land under tenant=none, so a full buffer never silently blames the
// wrong client. A nil registry or owner func disables labeling.
//
// owner is called under the collector lock and must not call back into
// the collector.
func (c *Collector) LabelDrops(r *obs.Registry, owner func(disk.TraceEntry) string) {
	c.mu.Lock()
	c.dropReg = r
	c.dropOwner = owner
	c.dropCtr = make(map[string]*obs.Counter)
	c.mu.Unlock()
}

// Add records one request. It is safe for concurrent use and is the
// shape disk.SetTraceFunc expects.
func (c *Collector) Add(e disk.TraceEntry) {
	c.mu.Lock()
	if c.max > 0 && len(c.entries) >= c.max {
		c.dropped++
		if c.dropReg != nil && c.dropOwner != nil {
			tn := c.dropOwner(e)
			if tn == "" {
				tn = "none"
			}
			ctr := c.dropCtr[tn]
			if ctr == nil {
				ctr = c.dropReg.Counter(obs.Name("trace.dropped", "tenant", tn))
				c.dropCtr[tn] = ctr
			}
			ctr.Inc()
		}
	} else {
		c.entries = append(c.entries, e)
	}
	c.mu.Unlock()
}

// Len returns the number of recorded requests.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Dropped returns how many requests the cap discarded.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Snapshot returns a copy of the recorded requests in service order.
func (c *Collector) Snapshot() []disk.TraceEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]disk.TraceEntry, len(c.entries))
	copy(out, c.entries)
	return out
}

// Reset discards all recorded requests and the dropped count.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.entries = c.entries[:0]
	c.dropped = 0
	c.mu.Unlock()
}

// Profile reduces the recorded requests with Analyze.
func (c *Collector) Profile() Profile {
	return Analyze(c.Snapshot())
}
