package trace

import (
	"sync"

	"cffs/internal/disk"
)

// Collector is a concurrency-safe trace capture buffer. Install its Add
// method with disk.SetTraceFunc to record requests while multiple
// goroutines drive the file system; Snapshot and Profile may be called
// at any time, including while collection is still running.
//
// The raw disk.SetTrace buffer is cheaper but has a single-owner
// contract; Collector is the concurrent alternative the workload driver
// and the race-detector tests use.
type Collector struct {
	mu      sync.Mutex
	entries []disk.TraceEntry
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add records one request. It is safe for concurrent use and is the
// shape disk.SetTraceFunc expects.
func (c *Collector) Add(e disk.TraceEntry) {
	c.mu.Lock()
	c.entries = append(c.entries, e)
	c.mu.Unlock()
}

// Len returns the number of recorded requests.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Snapshot returns a copy of the recorded requests in service order.
func (c *Collector) Snapshot() []disk.TraceEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]disk.TraceEntry, len(c.entries))
	copy(out, c.entries)
	return out
}

// Reset discards all recorded requests.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.entries = c.entries[:0]
	c.mu.Unlock()
}

// Profile reduces the recorded requests with Analyze.
func (c *Collector) Profile() Profile {
	return Analyze(c.Snapshot())
}
