// Package store is the pluggable backend seam: a registry of named
// providers, each able to open (or create) a storage image and declare
// what the resulting device can do. Everything above the blockio driver
// — tools, benchmarks, conformance tests — selects a backend by name
// and reads its capabilities from a Features struct instead of
// hard-coding a device stack, so a new device model plugs in once and
// every consumer gets it for free.
//
// Five providers ship in this package. "disk" is the paper's mechanical
// disk; "fault" is the same disk over the fault-injecting store;
// "striped" is the multi-spindle volume (its members are disk.Window
// views over one image, which is how the window store is exercised);
// "objstore" is the object-store model with fixed per-request latency
// and no seek curve; "ssd" is the flash model — microsecond fixed
// costs, channel parallelism, no seek curve, and an erase-block FTL
// whose garbage collection is charged on the simulated clock.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/fault"
	"cffs/internal/ffs"
	"cffs/internal/lfs"
	"cffs/internal/objstore"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/ssd"
	"cffs/internal/volume"
)

// Features declares what a backend's device can do. Conformance cases
// and callers gate on these instead of type-asserting device internals,
// so the declaration is part of a provider's contract — store tests
// verify each declaration against the opened device's actual behaviour.
type Features struct {
	// Ordered: barrier writes (blockio.WriteBlockOrdered) reach the
	// backing store as ordering edges a fault injector must respect.
	Ordered bool

	// AtomicSectors: a crashed write tears at sector granularity, never
	// mid-sector (the disk guarantee the integrity argument builds on).
	AtomicSectors bool

	// AtomicRequests: a whole request is all-or-nothing, like an object
	// PUT. Implies AtomicSectors.
	AtomicRequests bool

	// Batch: the target schedules whole request batches itself
	// (implements blockio.BatchSubmitter).
	Batch bool

	// Parallelism is how many requests the device services concurrently.
	Parallelism int

	// Seek: positioning cost depends on address distance, so placement
	// locality matters. False on the object store — that is its point.
	Seek bool

	// FileImage: the provider can persist to an image file (Config.Path).
	FileImage bool

	// Faulty: a fault injector is armed beneath the device.
	Faulty bool

	// Stats: per-request accounting (disk.Stats) is maintained.
	Stats bool
}

// Config selects and parameterizes a backend.
type Config struct {
	Backend string // provider name; default "disk"
	Drive   string // disk model sizing the image; default the paper's ST31200
	Disks   int    // spindle count; >1 selects the striped volume layout
	Path    string // image file; empty means in-memory

	// Faults arms the fault injector beneath the backend's device, at
	// the byte-store level, so injected faults hit whichever spindle or
	// channel owns the sector and barriers stay global.
	Faults    bool
	FaultSeed int64

	// Channels overrides the ssd backend's channel count; 0 keeps the
	// provider default. Other backends ignore it.
	Channels int

	// SSDAged opens the ssd backend with a pre-dirtied FTL: every
	// logical page programmed once, so garbage collection runs at
	// steady state from the first write instead of staying silent until
	// the log first wraps. This is the device half of an aged image;
	// internal/aging provides the file-system half.
	SSDAged bool

	Scheduler string // request scheduler; default "clook"
}

func (c Config) fill() Config {
	if c.Backend == "" {
		c.Backend = "disk"
	}
	if c.Drive == "" {
		c.Drive = "Seagate ST31200"
	}
	if c.Disks == 0 {
		c.Disks = 1
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = 1
	}
	if c.Scheduler == "" {
		c.Scheduler = "clook"
	}
	// -disks 2 without an explicit backend has always meant the striped
	// volume; keep that meaning at the seam.
	if c.Backend == "disk" && c.Disks > 1 {
		c.Backend = "striped"
	}
	return c
}

// Backend is an opened storage stack: the blockio target plus handles
// into the layers beneath it that tools need (the raw byte store for
// closing and sniffing, the fault injector for arming faults, the
// volume for per-spindle stats).
type Backend struct {
	Name     string
	Features Features
	Target   blockio.Target
	Bytes    disk.Store     // root byte store backing the image
	Fault    *fault.Store   // non-nil when Config.Faults armed it
	Volume   *volume.Volume // non-nil on the striped backend
	SSD      *ssd.Store     // non-nil on the ssd backend (FTL stats, metrics)

	sch sched.Scheduler
}

// Device wraps the backend's target in the block driver with the
// configured scheduler.
func (b *Backend) Device() *blockio.Device {
	return blockio.NewDevice(b.Target, b.sch)
}

// Provider is one registered backend: capability declaration plus the
// image-opening recipe.
type Provider struct {
	Name  string
	Brief string

	// Wraps names the inner provider this one layers over, empty for a
	// base provider. Wrapper providers must preserve the inner device's
	// semantics they do not explicitly change; the conformance suite
	// checks declared Features against this chain.
	Wraps string

	// FeaturesFor declares capabilities for a configuration without
	// opening anything.
	FeaturesFor func(Config) Features

	// Open builds the storage stack.
	Open func(Config) (*Backend, error)
}

// ErrUnknownBackend is wrapped by lookups of unregistered provider
// names, so tools can branch on it with errors.Is.
var ErrUnknownBackend = errors.New("unknown store backend")

var providers = map[string]Provider{}

// Register adds a provider; it panics on a duplicate or empty name.
// Call it from init (the built-ins do).
func Register(p Provider) {
	if p.Name == "" {
		panic("store: Register with empty provider name")
	}
	if _, dup := providers[p.Name]; dup {
		panic("store: duplicate provider " + p.Name)
	}
	providers[p.Name] = p
}

// ByName looks up a registered provider.
func ByName(name string) (Provider, error) {
	if p, ok := providers[name]; ok {
		return p, nil
	}
	return Provider{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownBackend, name, Names())
}

// Names lists registered providers, sorted.
func Names() []string {
	names := make([]string, 0, len(providers))
	for n := range providers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Providers lists registered providers, sorted by name.
func Providers() []Provider {
	ps := make([]Provider, 0, len(providers))
	for _, n := range Names() {
		ps = append(ps, providers[n])
	}
	return ps
}

// Open opens cfg's backend.
func Open(cfg Config) (*Backend, error) {
	cfg = cfg.fill()
	p, err := ByName(cfg.Backend)
	if err != nil {
		return nil, err
	}
	return p.Open(cfg)
}

// FeaturesFor declares cfg's capabilities without opening anything.
func FeaturesFor(cfg Config) (Features, error) {
	cfg = cfg.fill()
	p, err := ByName(cfg.Backend)
	if err != nil {
		return Features{}, err
	}
	return p.FeaturesFor(cfg), nil
}

// openBytes builds the byte-store bottom of every stack: the image
// (file or memory) plus the optional fault injector.
func openBytes(cfg Config, size int64) (root disk.Store, bottom disk.Store, fst *fault.Store, err error) {
	if cfg.Path != "" {
		root, err = disk.OpenFileStore(cfg.Path, size)
		if err != nil {
			return nil, nil, nil, err
		}
	} else {
		root = disk.NewMemStore(size)
	}
	bottom = root
	if cfg.Faults {
		fst = fault.NewStore(root, cfg.FaultSeed)
		bottom = fst
	}
	return root, bottom, fst, nil
}

func diskFeatures(cfg Config) Features {
	return Features{
		Ordered:       true,
		AtomicSectors: true,
		Parallelism:   1,
		Seek:          true,
		FileImage:     true,
		Faulty:        cfg.Faults,
		Stats:         true,
	}
}

func openDisk(cfg Config) (*Backend, error) {
	spec, err := disk.SpecByName(cfg.Drive)
	if err != nil {
		return nil, err
	}
	sch, ok := sched.ByName(cfg.Scheduler)
	if !ok {
		return nil, fmt.Errorf("store: unknown scheduler %q", cfg.Scheduler)
	}
	root, bottom, fst, err := openBytes(cfg, spec.Geom.Bytes())
	if err != nil {
		return nil, err
	}
	d, err := disk.New(spec, sim.NewClock(), bottom)
	if err != nil {
		return nil, err
	}
	return &Backend{
		Name:     cfg.Backend,
		Features: diskFeatures(cfg),
		Target:   d,
		Bytes:    root,
		Fault:    fst,
		sch:      sch,
	}, nil
}

func stripedFeatures(cfg Config) Features {
	f := diskFeatures(cfg)
	f.Batch = true
	f.Parallelism = cfg.Disks
	return f
}

func openStriped(cfg Config) (*Backend, error) {
	spec, err := disk.SpecByName(cfg.Drive)
	if err != nil {
		return nil, err
	}
	sch, ok := sched.ByName(cfg.Scheduler)
	if !ok {
		return nil, fmt.Errorf("store: unknown scheduler %q", cfg.Scheduler)
	}
	root, bottom, fst, err := openBytes(cfg, int64(cfg.Disks)*spec.Geom.Bytes())
	if err != nil {
		return nil, err
	}
	// Build lays the members out as disk.Window views over the one
	// backing store, so a striped image is a single file and barriers
	// stay global across spindles.
	vol, err := volume.Build(spec, cfg.Disks, sim.NewClock(), bottom, volume.Config{})
	if err != nil {
		return nil, err
	}
	return &Backend{
		Name:     cfg.Backend,
		Features: stripedFeatures(cfg),
		Target:   vol,
		Bytes:    root,
		Fault:    fst,
		Volume:   vol,
		sch:      sch,
	}, nil
}

func objstoreFeatures(cfg Config) Features {
	return Features{
		Ordered:        true,
		AtomicSectors:  true,
		AtomicRequests: true,
		Batch:          true,
		Parallelism:    objstore.DefaultSpec().Parallelism(),
		Seek:           false,
		FileImage:      true,
		Faulty:         cfg.Faults,
		Stats:          true,
	}
}

func openObjstore(cfg Config) (*Backend, error) {
	dspec, err := disk.SpecByName(cfg.Drive)
	if err != nil {
		return nil, err
	}
	sch, ok := sched.ByName(cfg.Scheduler)
	if !ok {
		return nil, fmt.Errorf("store: unknown scheduler %q", cfg.Scheduler)
	}
	// Size the image exactly like the disk backends do, so one image file
	// moves between backends and the same mkfs layout fits.
	size := int64(cfg.Disks) * dspec.Geom.Bytes()
	root, bottom, fst, err := openBytes(cfg, size)
	if err != nil {
		return nil, err
	}
	o, err := objstore.New(objstore.DefaultSpec(), sim.NewClock(), bottom, size)
	if err != nil {
		return nil, err
	}
	return &Backend{
		Name:     cfg.Backend,
		Features: objstoreFeatures(cfg),
		Target:   o,
		Bytes:    root,
		Fault:    fst,
		sch:      sch,
	}, nil
}

// ssdSpec resolves cfg into the flash device's spec.
func ssdSpec(cfg Config) ssd.Spec {
	spec := ssd.DefaultSpec()
	if cfg.Channels > 0 {
		spec.Channels = cfg.Channels
	}
	spec.PreDirty = cfg.SSDAged
	return spec
}

func ssdFeatures(cfg Config) Features {
	return Features{
		Ordered:       true,
		AtomicSectors: true,
		Batch:         true,
		Parallelism:   ssdSpec(cfg).Parallelism(),
		Seek:          false,
		FileImage:     true,
		Faulty:        cfg.Faults,
		Stats:         true,
	}
}

func openSSD(cfg Config) (*Backend, error) {
	dspec, err := disk.SpecByName(cfg.Drive)
	if err != nil {
		return nil, err
	}
	sch, ok := sched.ByName(cfg.Scheduler)
	if !ok {
		return nil, fmt.Errorf("store: unknown scheduler %q", cfg.Scheduler)
	}
	// Size the image exactly like the disk backends do, so one image file
	// moves between backends and the same mkfs layout fits.
	size := int64(cfg.Disks) * dspec.Geom.Bytes()
	root, bottom, fst, err := openBytes(cfg, size)
	if err != nil {
		return nil, err
	}
	s, err := ssd.New(ssdSpec(cfg), sim.NewClock(), bottom, size)
	if err != nil {
		return nil, err
	}
	return &Backend{
		Name:     cfg.Backend,
		Features: ssdFeatures(cfg),
		Target:   s,
		Bytes:    root,
		Fault:    fst,
		SSD:      s,
		sch:      sch,
	}, nil
}

func init() {
	Register(Provider{
		Name:        "disk",
		Brief:       "single mechanical spindle (the paper's device model)",
		FeaturesFor: diskFeatures,
		Open:        openDisk,
	})
	Register(Provider{
		Name:  "fault",
		Brief: "mechanical disk over the fault-injecting store",
		Wraps: "disk",
		FeaturesFor: func(cfg Config) Features {
			cfg.Faults = true
			return diskFeatures(cfg)
		},
		Open: func(cfg Config) (*Backend, error) {
			cfg.Faults = true
			return openDisk(cfg)
		},
	})
	Register(Provider{
		Name:        "striped",
		Brief:       "N-spindle striped volume over window views of one image",
		Wraps:       "disk",
		FeaturesFor: stripedFeatures,
		Open:        openStriped,
	})
	Register(Provider{
		Name:        "objstore",
		Brief:       "object store: fixed per-request latency, parallel channels, no seek curve",
		FeaturesFor: objstoreFeatures,
		Open:        openObjstore,
	})
	Register(Provider{
		Name:        "ssd",
		Brief:       "flash device: microsecond fixed cost, channel parallelism, erase-block FTL, no seek curve",
		FeaturesFor: ssdFeatures,
		Open:        openSSD,
	})
}

// FSKind identifies which file system formatted an image.
type FSKind int

// Image kinds DetectFS can report.
const (
	KindUnknown FSKind = iota
	KindCFFS
	KindFFS
	KindLFS
)

func (k FSKind) String() string {
	switch k {
	case KindCFFS:
		return "cffs"
	case KindFFS:
		return "ffs"
	case KindLFS:
		return "lfs"
	}
	return "unknown"
}

// ErrUnknownImage is wrapped by DetectFS when no known superblock magic
// matches; mkfs is the usual remedy.
var ErrUnknownImage = errors.New("unrecognized file system image")

// DetectFS sniffs the superblock magic at the start of a byte store.
// This is the one image-format probe all tools share; each used to
// re-implement the switch.
func DetectFS(st disk.Store) (FSKind, error) {
	var magic [4]byte
	if err := st.ReadAt(magic[:], 0); err != nil {
		return KindUnknown, err
	}
	switch binary.LittleEndian.Uint32(magic[:]) {
	case core.Magic:
		return KindCFFS, nil
	case ffs.Magic:
		return KindFFS, nil
	case lfs.Magic:
		return KindLFS, nil
	}
	return KindUnknown, fmt.Errorf("%w: superblock magic %#x",
		ErrUnknownImage, binary.LittleEndian.Uint32(magic[:]))
}
