package store

import (
	"errors"
	"path/filepath"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/ffs"
)

func TestUnknownBackendTypedError(t *testing.T) {
	_, err := Open(Config{Backend: "punchcards"})
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("Open(punchcards) = %v, want ErrUnknownBackend", err)
	}
	if _, err := FeaturesFor(Config{Backend: "punchcards"}); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("FeaturesFor(punchcards) = %v, want ErrUnknownBackend", err)
	}
}

func TestRegistryLists(t *testing.T) {
	want := []string{"disk", "fault", "objstore", "ssd", "striped"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, p := range Providers() {
		if p.Brief == "" || p.FeaturesFor == nil || p.Open == nil {
			t.Errorf("provider %q is missing a description or hooks", p.Name)
		}
	}
}

// configFor gives each provider an in-memory config it can open.
func configFor(name string) Config {
	cfg := Config{Backend: name}
	if name == "striped" {
		cfg.Disks = 2
	}
	return cfg
}

// TestWrapperPreservesInnerFeatures is the satellite gate: a wrapper
// provider must not silently change capabilities it does not own. The
// fault wrapper adds Faulty; the striped wrapper adds Batch and
// parallelism; everything else must match the inner provider's word.
func TestWrapperPreservesInnerFeatures(t *testing.T) {
	for _, p := range Providers() {
		if p.Wraps == "" {
			continue
		}
		inner, err := ByName(p.Wraps)
		if err != nil {
			t.Fatalf("%s wraps unregistered %q: %v", p.Name, p.Wraps, err)
		}
		cfg := configFor(p.Name).fill()
		in := inner.FeaturesFor(cfg)
		out := p.FeaturesFor(cfg)
		if out.Ordered != in.Ordered || out.AtomicSectors != in.AtomicSectors ||
			out.AtomicRequests != in.AtomicRequests || out.Seek != in.Seek ||
			out.FileImage != in.FileImage || out.Stats != in.Stats {
			t.Errorf("%s (wraps %s): features %+v do not preserve inner %+v",
				p.Name, p.Wraps, out, in)
		}
		switch p.Name {
		case "fault":
			if !out.Faulty {
				t.Errorf("fault wrapper does not declare Faulty")
			}
		case "striped":
			if !out.Batch || out.Parallelism != cfg.Disks {
				t.Errorf("striped wrapper: Batch=%v Parallelism=%d, want batch with %d spindles",
					out.Batch, out.Parallelism, cfg.Disks)
			}
		}
	}
}

// TestDeclaredFeaturesMatchRuntime opens every provider and checks the
// declaration against the device that actually came back.
func TestDeclaredFeaturesMatchRuntime(t *testing.T) {
	for _, p := range Providers() {
		t.Run(p.Name, func(t *testing.T) {
			cfg := configFor(p.Name)
			bk, err := Open(cfg)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer bk.Bytes.Close()
			f := bk.Features
			if want, err := FeaturesFor(cfg); err != nil || f != want {
				t.Errorf("opened Features %+v != declared %+v (%v)", f, want, err)
			}
			_, isBatch := bk.Target.(blockio.BatchSubmitter)
			if f.Batch != isBatch {
				t.Errorf("Batch=%v but BatchSubmitter=%v", f.Batch, isBatch)
			}
			if pr, ok := bk.Target.(interface{ Parallelism() int }); ok {
				if f.Parallelism != pr.Parallelism() {
					t.Errorf("Parallelism=%d but device reports %d", f.Parallelism, pr.Parallelism())
				}
			} else if f.Parallelism != 1 {
				t.Errorf("Parallelism=%d but device has no parallelism probe", f.Parallelism)
			}
			if f.Faulty != (bk.Fault != nil) {
				t.Errorf("Faulty=%v but Fault handle=%v", f.Faulty, bk.Fault)
			}
			if f.Stats {
				buf := make([]byte, blockio.BlockSize)
				if err := bk.Target.WriteV(0, [][]byte{buf}); err != nil {
					t.Fatalf("WriteV: %v", err)
				}
				if st := bk.Target.Stats(); st.Requests == 0 || st.Writes == 0 {
					t.Errorf("Stats declared but no accounting after a write: %+v", st)
				}
			}
		})
	}
}

func TestDisksSelectsStriped(t *testing.T) {
	bk, err := Open(Config{Disks: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer bk.Bytes.Close()
	if bk.Name != "striped" || bk.Volume == nil {
		t.Errorf("Open(Disks:2) gave backend %q (volume=%v), want striped", bk.Name, bk.Volume != nil)
	}
}

func TestFaultsBeneathAnyBackend(t *testing.T) {
	for _, name := range []string{"disk", "striped", "objstore", "ssd"} {
		cfg := configFor(name)
		cfg.Faults = true
		bk, err := Open(cfg)
		if err != nil {
			t.Fatalf("Open(%s, faults): %v", name, err)
		}
		if bk.Fault == nil || !bk.Features.Faulty {
			t.Errorf("%s: Faults did not arm the injector", name)
		}
		bk.Bytes.Close()
	}
}

// TestSSDConfigKnobs checks the seam-level ssd parameters: the channel
// override must show up in both the declared Features and the opened
// device, and SSDAged must hand back a pre-dirtied FTL (every logical
// page mapped, accounting zeroed).
func TestSSDConfigKnobs(t *testing.T) {
	cfg := Config{Backend: "ssd", Channels: 3}
	f, err := FeaturesFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Parallelism != 3 {
		t.Errorf("declared Parallelism=%d with Channels=3", f.Parallelism)
	}
	bk, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bk.Bytes.Close()
	if bk.SSD == nil {
		t.Fatal("ssd backend has no SSD handle")
	}
	if got := bk.SSD.Spec().Channels; got != 3 {
		t.Errorf("opened device has %d channels, want 3", got)
	}
	if st := bk.SSD.FTL(); st.FreeBlocks == 0 {
		t.Errorf("fresh FTL has no free blocks: %+v", st)
	}

	aged, err := Open(Config{Backend: "ssd", SSDAged: true})
	if err != nil {
		t.Fatal(err)
	}
	defer aged.Bytes.Close()
	st := aged.SSD.FTL()
	if st.HostPages != 0 || st.FlashPages != 0 {
		t.Errorf("aged FTL accounting not zeroed: %+v", st)
	}
	if !aged.SSD.Spec().PreDirty {
		t.Error("SSDAged did not set PreDirty")
	}
}

func TestDetectFS(t *testing.T) {
	mk := func(t *testing.T, format func(*blockio.Device) error) *Backend {
		t.Helper()
		bk, err := Open(Config{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if err := format(bk.Device()); err != nil {
			t.Fatalf("format: %v", err)
		}
		return bk
	}

	cffsImg := mk(t, func(dev *blockio.Device) error {
		fs, err := core.Mkfs(dev, core.Options{EmbedInodes: true, Grouping: true})
		if err != nil {
			return err
		}
		return fs.Close()
	})
	defer cffsImg.Bytes.Close()
	if k, err := DetectFS(cffsImg.Bytes); err != nil || k != KindCFFS {
		t.Errorf("DetectFS(cffs image) = %v, %v", k, err)
	}

	ffsImg := mk(t, func(dev *blockio.Device) error {
		fs, err := ffs.Mkfs(dev, ffs.Options{})
		if err != nil {
			return err
		}
		return fs.Close()
	})
	defer ffsImg.Bytes.Close()
	if k, err := DetectFS(ffsImg.Bytes); err != nil || k != KindFFS {
		t.Errorf("DetectFS(ffs image) = %v, %v", k, err)
	}

	blank, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer blank.Bytes.Close()
	k, err := DetectFS(blank.Bytes)
	if !errors.Is(err, ErrUnknownImage) || k != KindUnknown {
		t.Errorf("DetectFS(blank) = %v, %v; want ErrUnknownImage", k, err)
	}

	if KindCFFS.String() != "cffs" || KindUnknown.String() != "unknown" {
		t.Errorf("FSKind strings: %v %v", KindCFFS, KindUnknown)
	}
}

// TestFileImagePersists round-trips a formatted image through a file:
// every FileImage backend must reopen what another run wrote.
func TestFileImagePersists(t *testing.T) {
	for _, name := range []string{"disk", "objstore", "ssd"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "disk.img")
			cfg := configFor(name)
			cfg.Path = path

			bk, err := Open(cfg)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			fs, err := core.Mkfs(bk.Device(), core.Options{EmbedInodes: true, Grouping: true})
			if err != nil {
				t.Fatalf("Mkfs: %v", err)
			}
			if err := fs.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := bk.Bytes.Close(); err != nil {
				t.Fatalf("close image: %v", err)
			}

			again, err := Open(cfg)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer again.Bytes.Close()
			if k, err := DetectFS(again.Bytes); err != nil || k != KindCFFS {
				t.Errorf("reopened image: DetectFS = %v, %v", k, err)
			}
		})
	}
}
