// Package shell implements the command interpreter behind cmd/cfsh: a
// small, scriptable shell for inspecting and editing file-system images
// (ls, tree, cat, put, get, mkdir, rm, mv, ln, stat, df, sync). It
// operates on any vfs.FileSystem, so the same commands work on C-FFS
// and baseline-FFS images.
package shell

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"cffs/internal/blockio"
	"cffs/internal/fault"
	"cffs/internal/flight"
	"cffs/internal/health"
	"cffs/internal/obs"
	"cffs/internal/obs/expo"
	"cffs/internal/trace"
	"cffs/internal/vfs"
)

// Shell interprets commands against a mounted file system.
type Shell struct {
	fs  vfs.FileSystem
	dev *blockio.Device  // optional, for df/iostat
	reg *obs.Registry    // optional, for stats
	fst *fault.Store     // optional, for inject
	rec *flight.Recorder // optional, for slowlog/flight
	col *trace.Collector // optional, surfaced by stats
	cwd string
	out io.Writer

	// top keeps the previous frame's snapshot so each invocation shows
	// interval rates rather than lifetime averages.
	topPrev  obs.Snapshot
	topPrevS float64
	topRan   bool
}

// New builds a shell. dev may be nil (df/iostat then report an error).
func New(fs vfs.FileSystem, dev *blockio.Device, out io.Writer) *Shell {
	return &Shell{fs: fs, dev: dev, cwd: "/", out: out}
}

// SetRegistry attaches the metrics registry the file system was mounted
// with, enabling the stats command.
func (sh *Shell) SetRegistry(r *obs.Registry) { sh.reg = r }

// SetFaultStore attaches the fault injector the device was built over,
// enabling the inject command.
func (sh *Shell) SetFaultStore(f *fault.Store) { sh.fst = f }

// SetRecorder attaches the flight recorder the file system was mounted
// with, enabling the slowlog and flight commands.
func (sh *Shell) SetRecorder(r *flight.Recorder) { sh.rec = r }

// SetCollector attaches a trace collector; stats then reports its
// capture and drop counts so silent trace loss is visible.
func (sh *Shell) SetCollector(c *trace.Collector) { sh.col = c }

// Cwd returns the current directory.
func (sh *Shell) Cwd() string { return sh.cwd }

// Run executes one command line. It returns io.EOF for "exit"/"quit";
// command failures are reported as errors without terminating.
func (sh *Shell) Run(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "exit", "quit":
		return io.EOF
	case "help":
		return sh.help()
	case "pwd":
		fmt.Fprintln(sh.out, sh.cwd)
		return nil
	case "cd":
		return sh.cd(args)
	case "ls":
		return sh.ls(args)
	case "tree":
		return sh.tree(args)
	case "cat":
		return sh.cat(args)
	case "write":
		return sh.write(args)
	case "put":
		return sh.put(args)
	case "get":
		return sh.get(args)
	case "mkdir":
		return sh.mkdir(args)
	case "rm":
		return sh.rm(args)
	case "rmdir":
		return sh.rmdir(args)
	case "mv":
		return sh.mv(args)
	case "ln":
		return sh.ln(args)
	case "stat":
		return sh.stat(args)
	case "df":
		return sh.df()
	case "iostat":
		return sh.iostat()
	case "stats":
		return sh.stats(args)
	case "inspect":
		return sh.inspect(args)
	case "top":
		return sh.top()
	case "slowlog":
		return sh.slowlog(args)
	case "flight":
		return sh.flight(args)
	case "inject":
		return sh.inject(args)
	case "sync":
		return sh.fs.Sync()
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (sh *Shell) help() error {
	fmt.Fprint(sh.out, `commands:
  ls [path]          list a directory
  tree [path]        recursive listing
  cat <path>         print file contents
  write <path> <text...>  write text to a file
  put <host> <path>  copy a host file into the image
  get <path> <host>  copy an image file out to the host
  mkdir <path>       create a directory (with parents)
  rm <path>          remove a file or empty directory
  rmdir <path>       remove a directory tree
  mv <src> <dst>     rename/move
  ln <target> <name> hard link
  stat <path>        file metadata
  df                 free space
  iostat             disk request counters
  stats [-json|-reset]  metrics registry exposition
  inspect [-json]    layout health: occupancy, fragmentation, embedding
  top                dashboard frame: ops/sec, req/op, cache, spindles
  slowlog [-json]    flight-recorder slow-op captures
  flight [n]         flight-recorder ring (newest n ops)
  inject <sub>       fault injection: cut <n>|now, torn <prob>,
                     readerr <lba>, slow <ns>, revive, clear, status
  cd / pwd / sync / exit
`)
	return nil
}

// resolve makes an argument absolute against the cwd.
func (sh *Shell) resolve(p string) string {
	if strings.HasPrefix(p, "/") {
		return p
	}
	// Handle "." and ".." lexically.
	comps := vfs.SplitPath(sh.cwd + "/" + p)
	var stack []string
	for _, c := range comps {
		if c == ".." {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			continue
		}
		stack = append(stack, c)
	}
	return "/" + strings.Join(stack, "/")
}

func one(args []string, what string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: %s", what)
	}
	return args[0], nil
}

func (sh *Shell) cd(args []string) error {
	target := "/"
	if len(args) == 1 {
		target = sh.resolve(args[0])
	} else if len(args) > 1 {
		return fmt.Errorf("usage: cd [path]")
	}
	ino, err := vfs.Walk(sh.fs, target)
	if err != nil {
		return err
	}
	st, err := sh.fs.Stat(ino)
	if err != nil {
		return err
	}
	if st.Type != vfs.TypeDir {
		return fmt.Errorf("cd %s: %w", target, vfs.ErrNotDir)
	}
	sh.cwd = target
	return nil
}

func (sh *Shell) ls(args []string) error {
	target := sh.cwd
	if len(args) == 1 {
		target = sh.resolve(args[0])
	} else if len(args) > 1 {
		return fmt.Errorf("usage: ls [path]")
	}
	ino, err := vfs.Walk(sh.fs, target)
	if err != nil {
		return err
	}
	st, err := sh.fs.Stat(ino)
	if err != nil {
		return err
	}
	if st.Type != vfs.TypeDir {
		sh.printEntry(st, target)
		return nil
	}
	ents, err := sh.fs.ReadDir(ino)
	if err != nil {
		return err
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	for _, e := range ents {
		est, err := sh.fs.Stat(e.Ino)
		if err != nil {
			return err
		}
		sh.printEntry(est, e.Name)
	}
	return nil
}

func (sh *Shell) printEntry(st vfs.Stat, name string) {
	kind := "-"
	if st.Type == vfs.TypeDir {
		kind = "d"
	}
	fmt.Fprintf(sh.out, "%s %2d %10d  %s\n", kind, st.Nlink, st.Size, name)
}

func (sh *Shell) tree(args []string) error {
	target := sh.cwd
	if len(args) == 1 {
		target = sh.resolve(args[0])
	}
	fmt.Fprintln(sh.out, target)
	return vfs.WalkTree(sh.fs, target, func(p string, st vfs.Stat) error {
		depth := strings.Count(strings.TrimPrefix(p, strings.TrimRight(target, "/")), "/")
		indent := strings.Repeat("  ", depth)
		name := p[strings.LastIndex(p, "/")+1:]
		if st.Type == vfs.TypeDir {
			fmt.Fprintf(sh.out, "%s%s/\n", indent, name)
		} else {
			fmt.Fprintf(sh.out, "%s%s (%d)\n", indent, name, st.Size)
		}
		return nil
	})
}

func (sh *Shell) cat(args []string) error {
	p, err := one(args, "cat <path>")
	if err != nil {
		return err
	}
	data, err := vfs.ReadFile(sh.fs, sh.resolve(p))
	if err != nil {
		return err
	}
	_, err = sh.out.Write(data)
	return err
}

func (sh *Shell) write(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: write <path> <text...>")
	}
	return vfs.WriteFile(sh.fs, sh.resolve(args[0]), []byte(strings.Join(args[1:], " ")+"\n"))
}

func (sh *Shell) put(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: put <hostfile> <path>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	return vfs.WriteFile(sh.fs, sh.resolve(args[1]), data)
}

func (sh *Shell) get(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: get <path> <hostfile>")
	}
	data, err := vfs.ReadFile(sh.fs, sh.resolve(args[0]))
	if err != nil {
		return err
	}
	return os.WriteFile(args[1], data, 0o644)
}

func (sh *Shell) mkdir(args []string) error {
	p, err := one(args, "mkdir <path>")
	if err != nil {
		return err
	}
	_, err = vfs.MkdirAll(sh.fs, sh.resolve(p))
	return err
}

func (sh *Shell) rm(args []string) error {
	p, err := one(args, "rm <path>")
	if err != nil {
		return err
	}
	return vfs.Remove(sh.fs, sh.resolve(p))
}

func (sh *Shell) rmdir(args []string) error {
	p, err := one(args, "rmdir <path>")
	if err != nil {
		return err
	}
	return vfs.RemoveAll(sh.fs, sh.resolve(p))
}

func (sh *Shell) mv(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: mv <src> <dst>")
	}
	sdir, sname, err := vfs.WalkDir(sh.fs, sh.resolve(args[0]))
	if err != nil {
		return err
	}
	ddir, dname, err := vfs.WalkDir(sh.fs, sh.resolve(args[1]))
	if err != nil {
		return err
	}
	// mv into an existing directory keeps the source name.
	if ino, err := sh.fs.Lookup(ddir, dname); err == nil {
		if st, err := sh.fs.Stat(ino); err == nil && st.Type == vfs.TypeDir {
			ddir, dname = ino, sname
		}
	}
	return sh.fs.Rename(sdir, sname, ddir, dname)
}

func (sh *Shell) ln(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: ln <target> <name>")
	}
	target, err := vfs.Walk(sh.fs, sh.resolve(args[0]))
	if err != nil {
		return err
	}
	dir, name, err := vfs.WalkDir(sh.fs, sh.resolve(args[1]))
	if err != nil {
		return err
	}
	return sh.fs.Link(dir, name, target)
}

func (sh *Shell) stat(args []string) error {
	p, err := one(args, "stat <path>")
	if err != nil {
		return err
	}
	full := sh.resolve(p)
	ino, err := vfs.Walk(sh.fs, full)
	if err != nil {
		return err
	}
	st, err := sh.fs.Stat(ino)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "%s: ino=%#x type=%v size=%d blocks=%d nlink=%d\n",
		full, uint64(st.Ino), st.Type, st.Size, st.Blocks, st.Nlink)
	return nil
}

// freeCounter matches both file systems' free-space reporting.
type freeCounter interface {
	FreeBlocks() (int64, error)
}

func (sh *Shell) df() error {
	fc, ok := sh.fs.(freeCounter)
	if !ok || sh.dev == nil {
		return fmt.Errorf("df: file system does not report free space")
	}
	free, err := fc.FreeBlocks()
	if err != nil {
		return err
	}
	total := sh.dev.Blocks()
	fmt.Fprintf(sh.out, "%d blocks, %d free (%.1f%% used)\n",
		total, free, 100*float64(total-free)/float64(total))
	return nil
}

func (sh *Shell) iostat() error {
	if sh.dev == nil {
		return fmt.Errorf("iostat: no device attached")
	}
	s := sh.dev.Disk().Stats()
	fmt.Fprintf(sh.out, "requests=%d reads=%d writes=%d bytes=%d cachehits=%d busy=%.3fs\n",
		s.Requests, s.Reads, s.Writes, s.BytesMoved(), s.CacheHits, float64(s.BusyNanos)/1e9)
	return nil
}

// inject drives the fault injector: arm a power-cut countdown, set the
// torn-write probability, plant a latent sector read error, revive a
// cut store, or clear latent faults.
func (sh *Shell) inject(args []string) error {
	if sh.fst == nil {
		return fmt.Errorf("inject: no fault injector attached (run with -faults)")
	}
	usage := fmt.Errorf("usage: inject cut <n>|now | torn <prob> | readerr <lba> | revive | clear | status")
	if len(args) == 0 {
		return usage
	}
	switch args[0] {
	case "cut":
		if len(args) != 2 {
			return usage
		}
		if args[1] == "now" {
			sh.fst.CutNow()
			fmt.Fprintln(sh.out, "power cut")
			return nil
		}
		var n int64
		if _, err := fmt.Sscanf(args[1], "%d", &n); err != nil || n < 0 {
			return usage
		}
		sh.fst.CutAfterWrites(n)
		fmt.Fprintf(sh.out, "power cut armed: %d writes\n", n)
		return nil
	case "torn":
		if len(args) != 2 {
			return usage
		}
		var p float64
		if _, err := fmt.Sscanf(args[1], "%g", &p); err != nil || p < 0 || p > 1 {
			return usage
		}
		sh.fst.SetTornProb(p)
		fmt.Fprintf(sh.out, "torn-write probability: %g\n", p)
		return nil
	case "readerr":
		if len(args) != 2 {
			return usage
		}
		var lba int64
		if _, err := fmt.Sscanf(args[1], "%d", &lba); err != nil || lba < 0 {
			return usage
		}
		sh.fst.FailSector(lba)
		fmt.Fprintf(sh.out, "latent read error at sector %d\n", lba)
		return nil
	case "slow":
		if len(args) != 2 {
			return usage
		}
		ns, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil || ns < 0 {
			return usage
		}
		sh.fst.SetSlowIO(ns)
		fmt.Fprintf(sh.out, "slow-I/O injection: +%dns per request\n", ns)
		return nil
	case "revive":
		sh.fst.Revive()
		fmt.Fprintln(sh.out, "power restored")
		return nil
	case "clear":
		sh.fst.ClearFaults()
		fmt.Fprintln(sh.out, "latent faults cleared")
		return nil
	case "status":
		state := "on"
		if sh.fst.Down() {
			state = "off (cut)"
		}
		fmt.Fprintf(sh.out, "power: %s\n", state)
		return nil
	default:
		return usage
	}
}

// stats renders the metrics registry: text by default, -json for the
// machine-readable snapshot, -reset to zero every instrument.
func (sh *Shell) stats(args []string) error {
	if sh.reg == nil {
		return fmt.Errorf("stats: no metrics registry attached")
	}
	switch {
	case len(args) == 0:
		sh.reg.Snapshot().WriteText(sh.out)
		c, g, h := sh.reg.Size()
		fmt.Fprintf(sh.out, "registry: %d counters, %d gauges, %d histograms\n", c, g, h)
		if sh.col != nil {
			fmt.Fprintf(sh.out, "collector: captured=%d dropped=%d\n",
				sh.col.Len(), sh.col.Dropped())
		}
		return nil
	case len(args) == 1 && args[0] == "-json":
		return sh.reg.Snapshot().WriteJSON(sh.out)
	case len(args) == 1 && args[0] == "-reset":
		sh.reg.Reset()
		return nil
	default:
		return fmt.Errorf("usage: stats [-json|-reset]")
	}
}

// inspect runs the layout-health scan (C-FFS only) and renders it. The
// report is also registered as gauges when a registry is attached, so a
// later `stats` or exposition scrape carries the last scan.
func (sh *Shell) inspect(args []string) error {
	rep, err := health.Inspect(sh.fs)
	if err != nil {
		return err
	}
	rep.Register(sh.reg)
	switch {
	case len(args) == 0:
		rep.WriteText(sh.out)
		return nil
	case len(args) == 1 && args[0] == "-json":
		return rep.WriteJSON(sh.out)
	default:
		return fmt.Errorf("usage: inspect [-json]")
	}
}

// top prints one dashboard frame over the interval since the previous
// top invocation (since mount on the first). Rates are per simulated
// second — the clock the whole system runs on.
func (sh *Shell) top() error {
	if sh.reg == nil {
		return fmt.Errorf("top: no metrics registry attached")
	}
	if sh.dev == nil {
		return fmt.Errorf("top: no device attached")
	}
	cur := sh.reg.Snapshot()
	now := float64(sh.dev.Disk().Clock().Now()) / 1e9
	prev, prevS := sh.topPrev, sh.topPrevS
	if !sh.topRan {
		prev, prevS = obs.Snapshot{}, 0
	}
	sh.topPrev, sh.topPrevS, sh.topRan = cur, now, true
	fmt.Fprintf(sh.out, "t=%.3fs (interval %.3fs)\n", now, now-prevS)
	fmt.Fprint(sh.out, expo.RenderDash(cur, prev, now-prevS))
	return nil
}

// slowlog dumps the flight recorder's slow-op captures.
func (sh *Shell) slowlog(args []string) error {
	if sh.rec == nil {
		return fmt.Errorf("slowlog: no flight recorder attached (run with -flight)")
	}
	switch {
	case len(args) == 0:
		sh.rec.WriteSlowText(sh.out)
		return nil
	case len(args) == 1 && args[0] == "-json":
		enc := json.NewEncoder(sh.out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Slow []flight.SlowRecord `json:"slow"`
		}{sh.rec.Slow()})
	default:
		return fmt.Errorf("usage: slowlog [-json]")
	}
}

// flight dumps the newest n entries of the completed-operation ring.
func (sh *Shell) flight(args []string) error {
	if sh.rec == nil {
		return fmt.Errorf("flight: no flight recorder attached (run with -flight)")
	}
	n := 20
	if len(args) == 1 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v <= 0 {
			return fmt.Errorf("usage: flight [n]")
		}
		n = v
	} else if len(args) > 1 {
		return fmt.Errorf("usage: flight [n]")
	}
	sh.rec.WriteRingText(sh.out, n)
	return nil
}
