package shell

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/fault"
	"cffs/internal/obs"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/trace"
)

func newShell(t *testing.T) (*Shell, *bytes.Buffer) {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	dev := blockio.NewDevice(d, sched.CLook{})
	fs, err := core.Mkfs(dev, core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	return New(fs, dev, &out), &out
}

func run(t *testing.T, sh *Shell, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := sh.Run(l); err != nil {
			t.Fatalf("%q: %v", l, err)
		}
	}
}

func TestShellBasicSession(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh,
		"mkdir /docs/notes",
		"write /docs/notes/a.txt hello from the shell",
		"cd /docs/notes",
		"pwd",
		"ls",
		"cat a.txt",
		"stat a.txt",
		"sync",
	)
	s := out.String()
	for _, want := range []string{"/docs/notes", "a.txt", "hello from the shell", "type=file"} {
		if !strings.Contains(s, want) {
			t.Fatalf("session output missing %q:\n%s", want, s)
		}
	}
}

func TestShellRelativePaths(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh,
		"mkdir /a/b/c",
		"cd /a/b",
		"write c/file.txt deep",
		"cd c",
		"cat ../c/file.txt",
		"cd ..",
		"pwd",
	)
	s := out.String()
	if !strings.Contains(s, "deep") {
		t.Fatalf("relative cat failed:\n%s", s)
	}
	if !strings.HasSuffix(strings.TrimSpace(s), "/a/b") {
		t.Fatalf("cd .. landed at %q", strings.TrimSpace(s))
	}
}

func TestShellMvLnRm(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh,
		"mkdir /x",
		"mkdir /y",
		"write /x/f one",
		"mv /x/f /y", // move into directory keeps name
		"ln /y/f /y/alias",
		"stat /y/alias",
		"rm /y/f",
		"cat /y/alias",
		"rmdir /x",
	)
	s := out.String()
	if !strings.Contains(s, "nlink=2") {
		t.Fatalf("link count missing:\n%s", s)
	}
	if !strings.Contains(s, "one") {
		t.Fatalf("alias unreadable after rm of original:\n%s", s)
	}
	if err := sh.Run("ls /x"); err == nil {
		t.Fatal("rmdir did not remove /x")
	}
}

func TestShellPutGet(t *testing.T) {
	sh, _ := newShell(t)
	dir := t.TempDir()
	host := filepath.Join(dir, "in.bin")
	data := bytes.Repeat([]byte("payload!"), 1000)
	if err := os.WriteFile(host, data, 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "out.bin")
	run(t, sh,
		"put "+host+" /in.bin",
		"get /in.bin "+outFile,
	)
	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("put/get round trip corrupted data")
	}
}

func TestShellTreeDfIostat(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh,
		"mkdir /t/sub",
		"write /t/sub/leaf.txt x",
		"tree /t",
		"df",
		"iostat",
	)
	s := out.String()
	for _, want := range []string{"sub/", "leaf.txt", "free", "requests="} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestShellErrorsAndExit(t *testing.T) {
	sh, _ := newShell(t)
	if err := sh.Run("cat /missing"); err == nil {
		t.Fatal("cat of missing file succeeded")
	}
	if err := sh.Run("frobnicate"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := sh.Run("cd /missing"); err == nil {
		t.Fatal("cd to missing dir succeeded")
	}
	if err := sh.Run("exit"); err != io.EOF {
		t.Fatalf("exit returned %v, want io.EOF", err)
	}
	if err := sh.Run(""); err != nil {
		t.Fatal("blank line errored")
	}
	if err := sh.Run("# comment"); err != nil {
		t.Fatal("comment errored")
	}
	if err := sh.Run("help"); err != nil {
		t.Fatal(err)
	}
}

// stats must surface trace-collector drops: a bounded collector that
// overflowed silently would make every later trace analysis wrong.
func TestShellStatsReportsCollectorDrops(t *testing.T) {
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	dev := blockio.NewDevice(d, sched.CLook{})
	reg := obs.NewRegistry()
	fs, err := core.Mkfs(dev, core.Options{
		EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sh := New(fs, dev, &out)
	sh.SetRegistry(reg)
	col := trace.NewBounded(2)
	dev.Disk().SetTraceFunc(col.Add)
	sh.SetCollector(col)

	// Enough traffic to overflow a two-entry collector many times over.
	run(t, sh,
		"mkdir /spill",
		"write /spill/a aaaa",
		"write /spill/b bbbb",
		"write /spill/c cccc",
		"sync",
		"stats",
	)
	if col.Dropped() == 0 {
		t.Fatalf("collector did not drop (captured=%d); test workload too small", col.Len())
	}
	s := out.String()
	if !strings.Contains(s, "collector: captured=2 dropped=") {
		t.Fatalf("stats does not report collector drops:\n%s", s)
	}
	if strings.Contains(s, "dropped=0") {
		t.Fatalf("stats reports zero drops despite overflow:\n%s", s)
	}
	if !strings.Contains(s, "registry: ") || !strings.Contains(s, "histograms") {
		t.Fatalf("stats does not report registry size:\n%s", s)
	}
}

func TestShellInspect(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh,
		"mkdir /docs",
		"write /docs/a.txt contents",
		"sync",
		"inspect",
	)
	s := out.String()
	for _, want := range []string{"config: C-FFS", "embedded", "frag"} {
		if !strings.Contains(s, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, s)
		}
	}
	out.Reset()
	run(t, sh, "inspect -json")
	if !strings.Contains(out.String(), `"embedded_inodes"`) {
		t.Fatalf("inspect -json missing fields:\n%s", out.String())
	}
	if err := sh.Run("inspect -bogus"); err == nil {
		t.Fatal("inspect with bad flag should fail")
	}
}

func TestShellInject(t *testing.T) {
	spec := disk.SeagateST31200()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	fst := fault.NewStore(disk.NewMemStore(spec.Geom.Bytes()), 1)
	d, err := disk.New(spec, sim.NewClock(), fst)
	if err != nil {
		t.Fatal(err)
	}
	dev := blockio.NewDevice(d, sched.CLook{})
	fs, err := core.Mkfs(dev, core.Options{EmbedInodes: true, Mode: core.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sh := New(fs, dev, &out)

	// Without an injector attached, inject must refuse.
	if err := sh.Run("inject status"); err == nil {
		t.Fatal("inject without a fault store should fail")
	}
	sh.SetFaultStore(fst)

	// Three durable writes before the cut: the first mutation of the
	// mount writes the superblock unclean flag, then each sync write
	// costs one.
	run(t, sh,
		"inject torn 0.5",
		"inject readerr 100",
		"inject clear",
		"inject status",
		"inject cut 3",
		"write /a one",
		"write /b two",
	)
	// The countdown has expired: the next durable write dies.
	if err := sh.Run("write /c three"); err == nil {
		t.Fatal("write after the armed cut should fail")
	}
	if !fst.Down() {
		t.Fatal("store should be down after the cut")
	}
	run(t, sh, "inject status", "inject revive")
	s := out.String()
	for _, want := range []string{"torn-write probability: 0.5", "power cut armed: 3",
		"power: off (cut)", "power restored"} {
		if !strings.Contains(s, want) {
			t.Fatalf("inject output missing %q:\n%s", want, s)
		}
	}
	if err := sh.Run("inject bogus"); err == nil {
		t.Fatal("unknown subcommand should fail")
	}
}
