package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"cffs/internal/obs"
)

// TestRunReportSmallFile is the acceptance test for machine-readable
// emission: the report must carry per-op-type disk-request counts, and
// they must show C-FFS issuing fewer requests per small-file read and
// create than the independent FFS baseline — the paper's claim in the
// registry's terms.
func TestRunReportSmallFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full comparison grid")
	}
	rep, err := RunReport("smallfile", quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "smallfile-sync" {
		t.Errorf("alias resolved to %q, want smallfile-sync", rep.Experiment)
	}
	if len(rep.Variants) != len(grid()) {
		t.Fatalf("%d variant records, want %d", len(rep.Variants), len(grid()))
	}
	byName := map[string]VariantMetrics{}
	for _, v := range rep.Variants {
		if len(v.Phases) != 4 {
			t.Errorf("%s: %d phase records, want 4", v.Variant, len(v.Phases))
		}
		byName[v.Variant] = v
	}
	cffs, ffs := byName["C-FFS"].PerOp, byName["FFS"].PerOp
	for _, op := range []string{"readat", "create"} {
		c, f := cffs[op], ffs[op]
		if c.Ops == 0 || f.Ops == 0 || f.DiskRequests == 0 {
			t.Fatalf("%s: empty stats (C-FFS %+v, FFS %+v)", op, c, f)
		}
		if c.RequestsPerOp >= f.RequestsPerOp {
			t.Errorf("%s: C-FFS %.3f req/op vs FFS %.3f; C-FFS must issue fewer",
				op, c.RequestsPerOp, f.RequestsPerOp)
		}
	}
	// The C-FFS mechanisms must actually have fired.
	total := byName["C-FFS"].Total
	if total.Counter("core.inode.embedded_hits") == 0 {
		t.Error("no embedded-inode hits recorded")
	}
	if total.Counter("core.groupread.reads") == 0 {
		t.Error("no group reads recorded")
	}
	// The emitted JSON must round-trip.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if len(back.Tables) != len(rep.Tables) || len(back.Variants) != len(rep.Variants) {
		t.Error("JSON round trip lost tables or variants")
	}
}

func TestPerOpDerivation(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("ops.readat").Add(100)
	r.Counter("disk.requests.readat").Add(8)
	r.Counter("disk.reads.readat").Add(8)
	r.Counter("disk.requests.none").Add(3)
	per := PerOp(r.Snapshot())
	ra, ok := per["readat"]
	if !ok || ra.Ops != 100 || ra.DiskRequests != 8 || ra.RequestsPerOp != 0.08 {
		t.Errorf("readat stat = %+v", ra)
	}
	if none := per["none"]; none.DiskRequests != 3 || none.RequestsPerOp != 0 {
		t.Errorf("unattributed stat = %+v", none)
	}
	if _, ok := per["mkdir"]; ok {
		t.Error("idle op must be omitted")
	}
}
