package bench

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/lfs"
	"cffs/internal/trace"
	"cffs/internal/vfs"
	"cffs/internal/workload"
)

// extVariant builds a C-FFS with the extension knobs set.
func extVariant(name string, opts core.Options) fsVariant {
	return fsVariant{
		Name: name,
		Build: func(c Config, mode core.Mode) (vfs.FileSystem, *blockio.Device, error) {
			dev, err := c.newDevice()
			if err != nil {
				return nil, nil, err
			}
			opts := opts
			opts.Mode = mode
			opts.CacheBlocks = c.CacheBlocks
			fs, err := core.Mkfs(dev, opts)
			if err != nil {
				return nil, nil, err
			}
			return fs, dev, nil
		},
	}
}

// Immediate reproduces the immediate-files ablation [Mullender84]: for
// files that fit the inode's spare bytes, inlining removes the data
// block entirely — with embedding, a tiny file lives wholly inside its
// directory.
func Immediate(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "immediate",
		Title:   "Immediate files: tiny-file benchmark (32 B files, sync metadata)",
		Columns: []string{"variant", "create (f/s)", "read (f/s)", "delete (f/s)"},
	}
	n := cfg.NumFiles / 2
	for _, v := range []fsVariant{
		extVariant("C-FFS", core.Options{EmbedInodes: true, Grouping: true}),
		extVariant("C-FFS+immediate", core.Options{EmbedInodes: true, Grouping: true, Immediate: true}),
	} {
		fs, _, err := v.Build(cfg, core.ModeSync)
		if err != nil {
			return nil, err
		}
		res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
			NumFiles: n, FileSize: 32, Dirs: cfg.Dirs, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(v.Name, f1(res[0].FilesPerSec()), f1(res[1].FilesPerSec()), f1(res[3].FilesPerSec()))
	}
	t.Notes = append(t.Notes, "inline data rides the directory block: zero data blocks, zero data requests")
	return []Table{t}, nil
}

// Readahead measures sequential large-file read bandwidth with
// prefetching, the feature the paper's prototype lacked.
func Readahead(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "readahead",
		Title:   "Sequential readahead: cold 8 MB file read",
		Columns: []string{"readahead (blocks)", "read (MB/s)", "disk reads"},
	}
	size := 8 << 20
	if cfg.Quick {
		size = 2 << 20
	}
	data := make([]byte, size)
	for _, ra := range []int{0, 4, 8, 16} {
		fs, dev, err := extVariant("ra", core.Options{
			EmbedInodes: true, Grouping: true, Readahead: ra,
		}).Build(cfg, core.ModeDelayed)
		if err != nil {
			return nil, err
		}
		if err := vfs.WriteFile(fs, "/big", data); err != nil {
			return nil, err
		}
		if fl, ok := fs.(vfs.Flusher); ok {
			if err := fl.Flush(); err != nil {
				return nil, err
			}
		}
		ino, err := vfs.Walk(fs, "/big")
		if err != nil {
			return nil, err
		}
		clk := dev.Disk().Clock()
		s0 := dev.Disk().Stats()
		start := clk.Now()
		buf := make([]byte, size)
		if _, err := fs.ReadAt(ino, buf, 0); err != nil {
			return nil, err
		}
		mbs := float64(size) / (float64(clk.Now()-start) / 1e9) / 1e6
		t.AddRow(fmt.Sprintf("%d", ra), f2(mbs), fmt.Sprintf("%d", dev.Disk().Stats().Sub(s0).Reads))
	}
	return []Table{t}, nil
}

// Postmark runs the PostMark-style churn benchmark across the grid —
// steady-state small-file transactions rather than clean phases.
func Postmark(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "postmark",
		Title:   "PostMark-style transactions (delayed metadata)",
		Columns: []string{"variant", "tx/s", "disk requests"},
	}
	pm := workload.PostmarkConfig{
		InitialFiles: cfg.NumFiles / 4,
		Transactions: cfg.NumFiles / 2,
		Dirs:         cfg.Dirs,
		Seed:         cfg.Seed,
	}
	variants := append(grid(),
		extVariant("C-FFS adaptive", core.Options{EmbedInodes: true, Grouping: true, AdaptiveGroupRead: true}),
		lfsVariant())
	for _, v := range variants {
		fs, _, err := v.Build(cfg, core.ModeDelayed)
		if err != nil {
			return nil, err
		}
		res, err := workload.RunPostmark(fs, pm)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Name, err)
		}
		t.AddRow(v.Name, f1(res.TransactionsPS), fmt.Sprintf("%d", res.Disk.Requests))
	}
	return []Table{t}, nil
}

// SoftUpdates isolates the metadata-integrity cost itself: the
// conventional configuration under ordered synchronous writes versus
// delayed metadata (the [Ganger94] observation that synchronous
// metadata roughly halves create/delete throughput).
func SoftUpdates(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "softupdates",
		Title:   "Metadata integrity cost: sync vs delayed (conventional config)",
		Columns: []string{"phase", "sync (f/s)", "delayed (f/s)", "delayed vs sync"},
	}
	var results [2][]workload.PhaseResult
	for i, mode := range []core.Mode{core.ModeSync, core.ModeDelayed} {
		fs, _, err := coreVariant("conventional", false, false).Build(cfg, mode)
		if err != nil {
			return nil, err
		}
		res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
			NumFiles: cfg.NumFiles / 2, FileSize: cfg.FileSize, Dirs: cfg.Dirs, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	for p := range results[0] {
		s, d := results[0][p].FilesPerSec(), results[1][p].FilesPerSec()
		t.AddRow(results[0][p].Name, f1(s), f1(d), fx(d/s))
	}
	t.Notes = append(t.Notes, "the create/delete gap is what soft updates (and embedded inodes) attack")
	return []Table{t}, nil
}

// ProfileExp traces the small-file benchmark's read phase and reduces
// the request streams to the quantities the paper reasons about: C-FFS
// should show far fewer, far larger, far more adjacent requests.
func ProfileExp(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:    "profile",
		Title: "Read-phase disk request profile (delayed metadata)",
		Columns: []string{"variant", "requests", "mean KB", "mean ms",
			"adjacent", "median gap", "busy MB/s"},
	}
	for _, v := range pair() {
		fs, dev, err := v.Build(cfg, core.ModeDelayed)
		if err != nil {
			return nil, err
		}
		n := cfg.NumFiles / 2
		// Build and flush the files untraced.
		pre, err := workload.RunSmallFilePhase(fs, workload.SmallFileConfig{
			NumFiles: n, FileSize: cfg.FileSize, Dirs: cfg.Dirs, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		var entries []disk.TraceEntry
		dev.Disk().SetTrace(&entries)
		if err := pre.ReadPhase(); err != nil {
			return nil, err
		}
		dev.Disk().SetTrace(nil)
		p := trace.Analyze(entries)
		t.AddRow(v.Name, fmt.Sprintf("%d", p.Requests), f1(p.MeanRequestKB()),
			f2(p.MeanServiceMs()), fmt.Sprintf("%d", p.Adjacent),
			fmt.Sprintf("%d", p.MedianGap), f2(p.Bandwidth()))
	}
	t.Notes = append(t.Notes, "fewer, larger, more adjacent requests are the paper's mechanism made visible")
	return []Table{t}, nil
}

// lfsVariant builds the log-structured baseline.
func lfsVariant() fsVariant {
	return fsVariant{
		Name: "LFS",
		Build: func(c Config, _ core.Mode) (vfs.FileSystem, *blockio.Device, error) {
			dev, err := c.newDevice()
			if err != nil {
				return nil, nil, err
			}
			fs, err := lfs.Mkfs(dev, lfs.Options{CacheBlocks: c.CacheBlocks})
			if err != nil {
				return nil, nil, err
			}
			return fs, dev, nil
		},
	}
}

// LFSExp reproduces the paper's qualitative LFS comparison (Section 5):
// the log wins or ties every write-dominated phase, and its read
// performance depends on the read order matching the write order —
// which is where explicit grouping differs, batching by directory
// regardless of order.
func LFSExp(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:    "lfs",
		Title: "LFS vs C-FFS vs conventional (files/s; interleaved creation)",
		Columns: []string{"variant", "create", "read log order",
			"read by directory", "order penalty"},
	}
	n := cfg.NumFiles / 2
	sf := workload.SmallFileConfig{
		NumFiles: n, FileSize: cfg.FileSize, Dirs: cfg.Dirs, Seed: cfg.Seed,
	}
	variants := []fsVariant{
		coreVariant("conventional", false, false),
		coreVariant("C-FFS", true, true),
		lfsVariant(),
	}
	// Creation is interleaved across directories (multi-user activity),
	// so the log's write order crosses directories; the "by directory"
	// read order is then a user's grep over one project at a time.
	perDir := (n + cfg.Dirs - 1) / cfg.Dirs
	var interleaved []int
	for slot := 0; slot < perDir; slot++ {
		for d := 0; d < cfg.Dirs; d++ {
			if i := d*perDir + slot; i < n {
				interleaved = append(interleaved, i)
			}
		}
	}
	for _, v := range variants {
		fs, dev, err := v.Build(cfg, core.ModeDelayed)
		if err != nil {
			return nil, err
		}
		clk := dev.Disk().Clock()
		start := clk.Now()
		prep, err := workload.RunSmallFilePhaseOrder(fs, sf, interleaved)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Name, err)
		}
		createFS := float64(n) / (float64(clk.Now()-start) / 1e9)

		start = clk.Now()
		if err := prep.ReadPhaseOrder(interleaved); err != nil {
			return nil, err
		}
		logFS := float64(n) / (float64(clk.Now()-start) / 1e9)

		start = clk.Now()
		if err := prep.ReadPhaseOrder(identity(n)); err != nil {
			return nil, err
		}
		dirFS := float64(n) / (float64(clk.Now()-start) / 1e9)

		t.AddRow(v.Name, f1(createFS), f1(logFS), f1(dirFS), fx(logFS/dirFS))
	}
	t.Notes = append(t.Notes,
		"creation interleaves directories (multi-user); 'in order' = log order, 'shuffled' = by directory",
		"the log's read throughput tracks write order; grouping's tracks the namespace")
	return []Table{t}, nil
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
