package bench

import (
	"fmt"

	"cffs/internal/core"
	"cffs/internal/obs"
	"cffs/internal/workload"
)

// namespaceCacheBlocks sizes the buffer cache for one scale of the
// namespace experiment: a fixed fraction (1/4) of the namespace's own
// metadata footprint. Holding the cache-to-namespace ratio constant
// across the two scales keeps the miss rates comparable, so the gated
// req/op ratio measures how many blocks one operation *touches* — the
// quantity the directory index bounds — rather than which scale
// happens to fit in a fixed-size cache.
func namespaceCacheBlocks(files, nDirs int) int {
	nsBlocks := files/14 + 4*nDirs + 16 // dir entry blocks + index + root/slack
	cache := nsBlocks / 4
	if cache < 16 {
		cache = 16
	}
	return cache
}

// The CI-enforced bounds. namespaceRatioGate: requests per operation in
// the resolve and scan phases may grow at most 1.5x while the file
// count grows 100x. namespaceResolveMax is the absolute complement: a
// resolve is two component lookups, and with hash-indexed directories
// each costs at most one cold probe chain, so a full-path walk must
// average no more than 2 requests at either scale. Linear directory
// scans measure ~5 req/op here (the per-directory scan dominates, and
// the cache hides the growing root at both scales equally — which is
// also why the absolute bound is needed: the ratio alone stays flat
// even without the index).
const (
	namespaceRatioGate  = 1.5
	namespaceResolveMax = 2.0
)

// NamespaceExp measures the namespace at a million files: the directory
// index and the full-path cache under a pure-metadata workload. It runs
// the same tree shape at two scales 100x apart — the per-directory fan
// stays fixed at 256 files, so what grows is the number of directories
// and with it the root directory itself — and gates the ratio of
// requests per operation between them. Phases per scale: populate
// (creates), resolve (random distinct full-path walks plus a deep
// chain), scan (readdir + stat of every entry).
func NamespaceExp(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	small := cfg.NumFiles     // default 10000
	big := 100 * cfg.NumFiles // default 1000000
	scales := []struct {
		label string
		files int
	}{
		{"small", small},
		{"big", big},
	}

	main := Table{
		ID: "namespace",
		Title: fmt.Sprintf("Million-file namespace: %d vs %d files (C-FFS delayed, indexed dirs + path cache, cache = namespace/4)",
			small, big),
		Columns: []string{"phase", "ops (small)", "req/op (small)", "ops (big)", "req/op (big)", "ratio"},
	}
	pc := Table{
		ID:      "namespace-pathcache",
		Title:   "Path cache activity (whole run)",
		Columns: []string{"scale", "hits", "misses", "inserts", "invalidations", "evictions"},
	}

	results := make([]workload.NamespaceResult, len(scales))
	for si, sc := range scales {
		r := obs.NewRegistry()
		nDirs := (sc.files + 255) / 256
		cacheBlocks := namespaceCacheBlocks(sc.files, nDirs)
		dev, err := cfg.newDevice()
		if err != nil {
			return nil, err
		}
		fs, err := core.Mkfs(dev, core.Options{
			EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed,
			CacheBlocks: cacheBlocks, Metrics: r,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.label, err)
		}
		res, err := workload.RunNamespace(fs, workload.NamespaceConfig{
			NumFiles: sc.files,
			WalkOps:  sc.files / 4,
			Seed:     cfg.Seed,
			Registry: r,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.label, err)
		}
		results[si] = res
		s := r.Snapshot()
		pc.AddRow(sc.label,
			fmt.Sprintf("%d", s.Counter("core.pathcache.hits")),
			fmt.Sprintf("%d", s.Counter("core.pathcache.misses")),
			fmt.Sprintf("%d", s.Counter("core.pathcache.inserts")),
			fmt.Sprintf("%d", s.Counter("core.pathcache.invalidations")),
			fmt.Sprintf("%d", s.Counter("core.pathcache.evictions")))
		cfg.Metrics.add(variantMetricsFrom(sc.label, s, res.Phases))
	}

	reqPerOp := func(p workload.PhaseResult) float64 {
		if p.Files == 0 {
			return 0
		}
		return float64(p.Disk.Requests) / float64(p.Files)
	}
	for pi := range results[0].Phases {
		ps, pb := results[0].Phases[pi], results[1].Phases[pi]
		rs, rb := reqPerOp(ps), reqPerOp(pb)
		ratio := 0.0
		if rs > 0 {
			ratio = rb / rs
		}
		main.AddRow(ps.Name,
			fmt.Sprintf("%d", ps.Files), f2(rs),
			fmt.Sprintf("%d", pb.Files), f2(rb),
			fx(ratio))
		if ps.Name != "populate" && ratio > namespaceRatioGate {
			return nil, fmt.Errorf(
				"namespace %s phase: req/op grew %.2fx (%.2f -> %.2f) across a 100x file-count growth, gate is %.1fx",
				ps.Name, ratio, rs, rb, namespaceRatioGate)
		}
		if ps.Name == "resolve" {
			for _, v := range []float64{rs, rb} {
				if v > namespaceResolveMax {
					return nil, fmt.Errorf(
						"namespace resolve phase: %.2f requests per full-path walk, O(1) bound is %.1f (is the directory index off?)",
						v, namespaceResolveMax)
				}
			}
		}
	}
	main.Notes = append(main.Notes,
		fmt.Sprintf("gate: resolve and scan req/op may grow at most %.1fx while files grow 100x,", namespaceRatioGate),
		fmt.Sprintf("and a resolve may cost at most %.1f requests absolute (indexed ~1.1; linear ~5)", namespaceResolveMax),
		"per-directory fan is fixed (256 files), so the growing structure is the root directory;",
		"the hash index keeps every lookup O(1) in directory size and the gate holds",
		"resolve walks distinct random paths, so path-cache repeat hits cannot flatter either scale")
	return []Table{main, pc}, nil
}
