package bench

import (
	"fmt"

	"cffs/internal/core"
	"cffs/internal/obs"
	"cffs/internal/workload"
)

// scalingCounts is the spindle sweep of the scaling experiment.
var scalingCounts = []int{1, 2, 4, 8}

// ScalingExp measures what spindles buy once one disk is saturated by
// grouped traffic: the small-file benchmark on an asynchronous C-FFS
// mount over striped volumes of 1, 2, 4, and 8 disks. Creates scale
// because write-behind flush rounds cluster whole groups and the volume
// fans the batch out across arms; reads scale because group readahead
// widens each demand group read with the directory's next extents,
// which round-robin across spindles (stripe unit = group size). The
// balance table shows the per-spindle load staying even — the stripe
// mapping at work — and the split-requests counter proves no group
// transfer ever straddled two disks.
func ScalingExp(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	thr := Table{
		ID: "scaling",
		Title: fmt.Sprintf("Small-file throughput vs spindle count (files/s; %d files of %d B; C-FFS async)",
			cfg.NumFiles, cfg.FileSize),
		Columns: []string{"phase"},
	}
	spd := Table{
		ID:      "scaling-speedup",
		Title:   "Throughput relative to one spindle",
		Columns: []string{"phase"},
	}
	bal := Table{
		ID:      "scaling-balance",
		Title:   "Per-spindle load (whole run)",
		Columns: []string{"disks", "spindle", "requests", "sectors", "busy s", "busy share"},
	}
	results := make([][]workload.PhaseResult, len(scalingCounts))
	for ci, n := range scalingCounts {
		label := fmt.Sprintf("%d disks", n)
		if n == 1 {
			label = "1 disk"
		}
		thr.Columns = append(thr.Columns, label)
		spd.Columns = append(spd.Columns, label)
		r := obs.NewRegistry()
		dev, vol, err := cfg.newStripedDevice(n, r)
		if err != nil {
			return nil, err
		}
		fs, err := core.Mkfs(dev, core.Options{
			EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed,
			CacheBlocks: cfg.CacheBlocks, Metrics: r, Writeback: asyncPolicy(),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
			NumFiles: cfg.NumFiles, FileSize: cfg.FileSize, Dirs: cfg.Dirs, Seed: cfg.Seed,
			Registry: r,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		results[ci] = res
		if split := vol.SplitRequests(); split != 0 {
			return nil, fmt.Errorf("%s: %d requests split across spindles (group/stripe alignment broken)",
				label, split)
		}
		per := vol.PerDisk()
		var busyTotal int64
		for _, st := range per {
			busyTotal += st.BusyNanos
		}
		for i, st := range per {
			share := 0.0
			if busyTotal > 0 {
				share = float64(st.BusyNanos) / float64(busyTotal)
			}
			bal.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", i),
				fmt.Sprintf("%d", st.Requests), fmt.Sprintf("%d", st.SectorsMoved()),
				f1(float64(st.BusyNanos)/1e9), fmt.Sprintf("%d%%", int(share*100+0.5)))
		}
		cfg.Metrics.add(variantMetricsFrom(label, r.Snapshot(), res))
	}
	for p := range results[0] {
		tc := []string{results[0][p].Name}
		sc := []string{results[0][p].Name}
		base := results[0][p].FilesPerSec()
		for ci := range scalingCounts {
			fps := results[ci][p].FilesPerSec()
			tc = append(tc, f1(fps))
			sc = append(sc, fx(fps/base))
		}
		thr.AddRow(tc...)
		spd.AddRow(sc...)
	}
	thr.Notes = append(thr.Notes,
		"stripe unit = group size (64 KB): every explicit group lives on one spindle, and",
		"consecutive groups round-robin, so clustered writes and group readahead fan out;",
		"no request in any run split across spindles (asserted)")
	return []Table{thr, spd, bal}, nil
}
