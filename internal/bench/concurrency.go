package bench

import (
	"fmt"

	"cffs/internal/core"
	"cffs/internal/workload"
)

// Concurrency measures goroutine scaling: the same total operation
// budget issued by 1, 4, and 16 concurrent clients against a single
// C-FFS, under two op mixes. Two times matter and they answer different
// questions. Simulated seconds is disk busy time — a single-armed disk
// does not get faster because more clients queue on it, so that column
// stays roughly flat. Host wall-clock throughput is where the lock
// hierarchy shows up: the churn mix (75% mutating ops) serializes at the
// FS writer lock and must merely not collapse, while the read-mostly
// mix on a prepopulated, cache-resident tree runs the shared-lock path
// and should scale with clients.
func Concurrency(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:    "concurrency",
		Title: "Concurrent clients on one C-FFS (delayed metadata)",
		Columns: []string{"mix", "clients", "ops", "conflicts", "sim (s)",
			"wall (ms)", "kops/wall-s", "scaling"},
		Notes: []string{
			"fixed total op budget; sim time is disk busy time (single arm: ~flat)",
			"scaling = wall-clock throughput relative to 1 client of the same mix",
			"churn = 25% reads over a racing shared namespace; read-mostly = 90% reads, prepopulated",
		},
	}
	// Fixed total budget split across clients; never let the per-client
	// share round down to zero, which ConcurrentConfig.fill would
	// reinflate to its 2000-op default.
	perClient := func(clients int) int {
		if n := cfg.NumFiles / clients; n > 0 {
			return n
		}
		return 1
	}
	mixes := []struct {
		name string
		mk   func(clients int) workload.ConcurrentConfig
	}{
		{"churn", func(clients int) workload.ConcurrentConfig {
			return workload.ConcurrentConfig{
				Clients:      clients,
				OpsPerClient: perClient(clients),
				Dirs:         cfg.Dirs / 2,
				FileSize:     cfg.FileSize,
				Seed:         cfg.Seed,
			}
		}},
		{"read-mostly", func(clients int) workload.ConcurrentConfig {
			return workload.ConcurrentConfig{
				Clients:      clients,
				OpsPerClient: perClient(clients),
				Dirs:         cfg.Dirs / 2,
				FileSize:     cfg.FileSize,
				PctRead:      90,
				Prepopulate:  true,
				Seed:         cfg.Seed,
			}
		}},
		{"read-only", func(clients int) workload.ConcurrentConfig {
			return workload.ConcurrentConfig{
				Clients:      clients,
				OpsPerClient: perClient(clients),
				Dirs:         cfg.Dirs / 2,
				FileSize:     cfg.FileSize,
				PctRead:      100,
				Prepopulate:  true,
				Seed:         cfg.Seed,
			}
		}},
	}
	for _, mix := range mixes {
		var base float64
		for _, clients := range []int{1, 4, 16} {
			fs, _, err := coreVariant("C-FFS", true, true).Build(cfg, core.ModeDelayed)
			if err != nil {
				return nil, err
			}
			res, err := workload.RunConcurrent(fs, mix.mk(clients))
			if err != nil {
				return nil, fmt.Errorf("%s, %d clients: %w", mix.name, clients, err)
			}
			tput := res.OpsPerWallSec()
			if clients == 1 {
				base = tput
			}
			scaling := "1.00x"
			if base > 0 && clients > 1 {
				scaling = fmt.Sprintf("%.2fx", tput/base)
			}
			t.AddRow(
				mix.name,
				fmt.Sprintf("%d", clients),
				fmt.Sprintf("%d", res.Ops),
				fmt.Sprintf("%d", res.Conflicts),
				f2(res.SimSeconds),
				f1(res.WallSeconds*1e3),
				f1(tput/1e3),
				scaling,
			)
		}
	}
	return []Table{t}, nil
}
