package bench

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sim"
	"cffs/internal/vfs"
	"cffs/internal/workload"
)

// Table1 reproduces the paper's Table 1: characteristics of three 1996
// disk drives (plus, for reference, the 1993 testbed drive of Table 2).
func Table1(Config) ([]Table, error) {
	t := Table{
		ID:      "table1",
		Title:   "Characteristics of modern disk drives",
		Columns: []string{"characteristic", "HP C3653", "Seagate Barracuda 4LP", "Quantum Atlas II"},
	}
	drives := []disk.Spec{disk.HPC3653(), disk.SeagateBarracuda4LP(), disk.QuantumAtlasII()}
	for i := range drives {
		if err := drives[i].Validate(); err != nil {
			return nil, err
		}
	}
	row := func(name string, get func(disk.Spec) string) {
		cells := []string{name}
		for _, d := range drives {
			cells = append(cells, get(d))
		}
		t.AddRow(cells...)
	}
	row("capacity (GB)", func(d disk.Spec) string { return f2(float64(d.Geom.Bytes()) / 1e9) })
	row("RPM", func(d disk.Spec) string { return fmt.Sprintf("%.0f", d.RPM) })
	row("single seek (ms)", func(d disk.Spec) string { return f1(d.SeekSingle * 1e3) })
	row("average seek (ms)", func(d disk.Spec) string {
		return fmt.Sprintf("%s (+%s write)", f1(d.SeekAvg*1e3), f1(d.WriteSettle*1e3))
	})
	row("maximum seek (ms)", func(d disk.Spec) string { return f1(d.SeekMax * 1e3) })
	row("media rate (MB/s)", func(d disk.Spec) string { return f1(d.MediaRate() / 1e6) })
	row("sectors/track (mean)", func(d disk.Spec) string { return fmt.Sprintf("%.0f", d.Geom.MeanSPT()) })
	t.Notes = append(t.Notes,
		"seek columns are the published values the paper quotes; geometry/rates reconstructed (DESIGN.md §2)")
	return []Table{t}, nil
}

// Table2 reproduces Table 2: the evaluation testbed's ST31200.
func Table2(Config) ([]Table, error) {
	d := disk.SeagateST31200()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	t := Table{
		ID:      "table2",
		Title:   "Testbed disk: Seagate ST31200",
		Columns: []string{"characteristic", "value"},
	}
	t.AddRow("capacity (MB)", fmt.Sprintf("%.0f", float64(d.Geom.Bytes())/1e6))
	t.AddRow("RPM", fmt.Sprintf("%.0f", d.RPM))
	t.AddRow("cylinders", fmt.Sprintf("%d", d.Geom.Cylinders()))
	t.AddRow("heads", fmt.Sprintf("%d", d.Geom.Heads))
	t.AddRow("single seek (ms)", f1(d.SeekSingle*1e3))
	t.AddRow("average seek (ms)", f1(d.SeekAvg*1e3))
	t.AddRow("maximum seek (ms)", f1(d.SeekMax*1e3))
	t.AddRow("media rate (MB/s)", f2(d.MediaRate()/1e6))
	t.AddRow("bus rate (MB/s)", f1(d.BusRate/1e6))
	return []Table{t}, nil
}

// Figure2 reproduces Figure 2: average access time versus request size
// for the three 1996 drives, measured by Monte Carlo over random
// request addresses on the simulated mechanisms.
func Figure2(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:    "fig2",
		Title: "Average access time vs request size (random reads)",
		Columns: []string{"request", "HP C3653 (ms)", "Barracuda 4LP (ms)", "Atlas II (ms)",
			"C3653 (MB/s)"},
	}
	sizesKB := []int{1, 4, 16, 64, 256, 1024}
	trials := 400
	if cfg.Quick {
		trials = 120
	}
	drives := []disk.Spec{disk.HPC3653(), disk.SeagateBarracuda4LP(), disk.QuantumAtlasII()}
	for _, kb := range sizesKB {
		cells := []string{fmt.Sprintf("%d KB", kb)}
		var firstRate float64
		for di, spec := range drives {
			d, err := disk.NewMem(spec, sim.NewClock())
			if err != nil {
				return nil, err
			}
			d.SetCacheEnabled(false)
			rng := sim.NewRNG(cfg.Seed + uint64(kb))
			nsect := kb * 1024 / disk.SectorSize
			var total int64
			for i := 0; i < trials; i++ {
				lba := rng.Int63n(d.Sectors() - int64(nsect))
				total += d.Access(lba, nsect, false)
			}
			meanMs := float64(total) / float64(trials) / 1e6
			cells = append(cells, f2(meanMs))
			if di == 0 {
				firstRate = float64(kb*1024) / (float64(total) / float64(trials) / 1e9) / 1e6
			}
		}
		cells = append(cells, f1(firstRate))
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "per-request positioning dominates below ~64 KB; bandwidth only emerges for large transfers")
	return []Table{t}, nil
}

// smallFileGrid runs the four-phase benchmark over the comparison grid
// in the given metadata mode and emits the throughput figure and the
// disk-request figure.
func smallFileGrid(cfg Config, mode core.Mode, throughputID, requestsID string) ([]Table, error) {
	cfg = cfg.fill()
	variants := grid()
	thr := Table{
		ID:    throughputID,
		Title: fmt.Sprintf("Small-file benchmark throughput, %s metadata (files/s; %d files of %d B)", modeName(mode), cfg.NumFiles, cfg.FileSize),
	}
	req := Table{
		ID:    requestsID,
		Title: fmt.Sprintf("Disk requests per phase, %s metadata", modeName(mode)),
	}
	thr.Columns = append(thr.Columns, "phase")
	req.Columns = append(req.Columns, "phase")
	results := make([][]workload.PhaseResult, len(variants))
	regs := make([]obs.Snapshot, len(variants))
	for i, v := range variants {
		thr.Columns = append(thr.Columns, v.Name)
		req.Columns = append(req.Columns, v.Name)
		// With metrics capture on, each variant gets its own registry so
		// the comparison columns never mix streams.
		vcfg := cfg
		if cfg.Metrics != nil {
			vcfg.Registry = obs.NewRegistry()
		}
		fs, _, err := v.Build(vcfg, mode)
		if err != nil {
			return nil, err
		}
		res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
			NumFiles: cfg.NumFiles, FileSize: cfg.FileSize, Dirs: cfg.Dirs, Seed: cfg.Seed,
			Registry: vcfg.Registry,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Name, err)
		}
		results[i] = res
		regs[i] = vcfg.Registry.Snapshot()
		cfg.Metrics.add(variantMetricsFrom(v.Name, regs[i], res))
	}
	thr.Columns = append(thr.Columns, "C-FFS vs conv")
	req.Columns = append(req.Columns, "conv vs C-FFS")
	for p := 0; p < 4; p++ {
		tc := []string{results[0][p].Name}
		rc := []string{results[0][p].Name}
		for i := range variants {
			tc = append(tc, f1(results[i][p].FilesPerSec()))
			rc = append(rc, fmt.Sprintf("%d", results[i][p].Disk.Requests))
		}
		tc = append(tc, fx(results[3][p].FilesPerSec()/results[0][p].FilesPerSec()))
		rc = append(rc, fx(float64(results[0][p].Disk.Requests)/float64(results[3][p].Disk.Requests)))
		thr.AddRow(tc...)
		req.AddRow(rc...)
	}
	tables := []Table{thr, req}
	if cfg.Metrics != nil {
		tables = append(tables, perOpTable(requestsID+"-perop", mode, variants, regs))
	}
	return tables, nil
}

// perOpTable renders disk requests per vfs operation, by operation
// type, across the comparison grid — the registry's view of the
// paper's "order of magnitude fewer requests" claim.
func perOpTable(id string, mode core.Mode, variants []fsVariant, regs []obs.Snapshot) Table {
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Disk requests per operation, %s metadata", modeName(mode)),
		Columns: []string{"operation"},
	}
	stats := make([]map[string]OpStat, len(variants))
	for i, v := range variants {
		t.Columns = append(t.Columns, v.Name)
		stats[i] = PerOp(regs[i])
	}
	for op := obs.Op(1); op < obs.NumOps; op++ {
		name := op.String()
		any := false
		cells := []string{name}
		for i := range variants {
			st, ok := stats[i][name]
			if ok && (st.Ops > 0 || st.DiskRequests > 0) {
				any = true
			}
			cells = append(cells, f2(st.RequestsPerOp))
		}
		if any {
			t.AddRow(cells...)
		}
	}
	t.Notes = append(t.Notes,
		"requests attributed to the vfs operation that issued them (op-scoped tracing);",
		"delayed writes surface under sync/flush, not the op that dirtied the block")
	return t
}

func modeName(m core.Mode) string {
	if m == core.ModeSync {
		return "synchronous"
	}
	return "delayed (soft-updates emulation)"
}

// Figure4 is the small-file benchmark with conventional synchronous
// metadata; Figure5 is its request-count companion.
func Figure4(cfg Config) ([]Table, error) {
	return smallFileGrid(cfg, core.ModeSync, "fig4", "fig5")
}

// Figure6 repeats the benchmark with the metadata-integrity cost
// removed (delayed metadata writes emulate soft updates, as the paper
// itself does).
func Figure6(cfg Config) ([]Table, error) {
	return smallFileGrid(cfg, core.ModeDelayed, "fig6", "fig6-requests")
}

// Figure7 sweeps the benchmark's file size past the 64 KB group size:
// the C-FFS advantage is largest for small files and tapers as per-file
// transfer costs dominate.
func Figure7(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "fig7",
		Title:   "Throughput vs file size (delayed metadata)",
		Columns: []string{"file size", "conv create (f/s)", "C-FFS create (f/s)", "conv read (f/s)", "C-FFS read (f/s)", "read speedup"},
	}
	sizes := []int{1024, 4096, 16384, 65536, 262144}
	for _, size := range sizes {
		n := cfg.NumFiles * 1024 / size
		if n > cfg.NumFiles {
			n = cfg.NumFiles
		}
		if n < 60 {
			n = 60
		}
		var read [2]float64
		var create [2]float64
		for i, v := range pair() {
			fs, _, err := v.Build(cfg, core.ModeDelayed)
			if err != nil {
				return nil, err
			}
			res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
				NumFiles: n, FileSize: size, Dirs: max(4, n/100), Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			create[i] = res[0].FilesPerSec()
			read[i] = res[1].FilesPerSec()
		}
		t.AddRow(fmt.Sprintf("%d KB", size/1024),
			f1(create[0]), f1(create[1]), f1(read[0]), f1(read[1]), fx(read[1]/read[0]))
	}
	return []Table{t}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Apps reproduces the Section 4.4 application suite: each workload runs
// on an identical generated source tree on every variant.
func Apps(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "apps",
		Title:   "Software-development applications (seconds, delayed metadata)",
		Columns: []string{"application"},
	}
	spec := workload.TreeSpec{Depth: 3, DirsPerDir: 4, FilesPerDir: 12, Seed: cfg.Seed}
	if cfg.Quick {
		spec = workload.TreeSpec{Depth: 2, DirsPerDir: 3, FilesPerDir: 8, Seed: cfg.Seed}
	}
	variants := grid()
	apps := []string{"copy", "archive", "unarchive", "attrscan", "search", "compile", "clean", "remove"}
	times := make(map[string][]float64)
	for _, v := range variants {
		t.Columns = append(t.Columns, v.Name)
		fs, _, err := v.Build(cfg, core.ModeDelayed)
		if err != nil {
			return nil, err
		}
		if _, err := vfs.MkdirAll(fs, "/src"); err != nil {
			return nil, err
		}
		if _, err := workload.GenerateTree(fs, "/src", spec); err != nil {
			return nil, err
		}
		run := func(r workload.AppResult, err error) error {
			if err != nil {
				return fmt.Errorf("%s/%s: %w", v.Name, r.Name, err)
			}
			times[r.Name] = append(times[r.Name], r.Seconds)
			return nil
		}
		if err := run(workload.CopyTree(fs, "/src", "/copy")); err != nil {
			return nil, err
		}
		if err := run(workload.Archive(fs, "/src", "/src.ar")); err != nil {
			return nil, err
		}
		if err := run(workload.Unarchive(fs, "/src.ar", "/restored")); err != nil {
			return nil, err
		}
		if err := run(workload.AttrScan(fs, "/src")); err != nil {
			return nil, err
		}
		if err := run(workload.Search(fs, "/src", []byte{0x13, 0x37})); err != nil {
			return nil, err
		}
		if err := run(workload.Compile(fs, "/src")); err != nil {
			return nil, err
		}
		if err := run(workload.Clean(fs, "/src")); err != nil {
			return nil, err
		}
		if err := run(workload.RemoveTree(fs, "/copy")); err != nil {
			return nil, err
		}
	}
	t.Columns = append(t.Columns, "speedup")
	for _, app := range apps {
		row := []string{app}
		for i := range variants {
			row = append(row, f2(times[app][i]))
		}
		speedup := times[app][0] / times[app][3]
		row = append(row, fx(speedup))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "speedup = conventional / C-FFS elapsed simulated time")
	return []Table{t}, nil
}

// DirSize measures the embedded-inode directory-size penalty and what
// it buys: directory block counts, plus cold attribute-scan time over a
// flat directory (ReadDir + Stat of every entry).
func DirSize(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:    "dirsize",
		Title: "Directory size and attribute-scan cost vs entries per directory",
		Columns: []string{"entries", "FFS dir blocks", "embed dir blocks",
			"FFS scan (ms)", "embed scan (ms)"},
	}
	counts := []int{10, 100, 1000}
	if cfg.Quick {
		counts = []int{10, 100, 400}
	}
	for _, n := range counts {
		var blocks [2]int64
		var scanMs [2]float64
		// The baseline here is the classic FFS directory format (~16
		// bytes per entry) against C-FFS's embedded 256-byte slots — the
		// paper's directory-size discussion.
		for i, v := range []fsVariant{ffsVariant(), coreVariant("C-FFS", true, true)} {
			fs, dev, err := v.Build(cfg, core.ModeDelayed)
			if err != nil {
				return nil, err
			}
			dir, err := fs.Mkdir(fs.Root(), "flat")
			if err != nil {
				return nil, err
			}
			for k := 0; k < n; k++ {
				ino, err := fs.Create(dir, fmt.Sprintf("entry%04d", k))
				if err != nil {
					return nil, err
				}
				if _, err := fs.WriteAt(ino, make([]byte, 512), 0); err != nil {
					return nil, err
				}
			}
			st, err := fs.Stat(dir)
			if err != nil {
				return nil, err
			}
			blocks[i] = st.Size / blockio.BlockSize
			if fl, ok := fs.(vfs.Flusher); ok {
				if err := fl.Flush(); err != nil {
					return nil, err
				}
			}
			clk := dev.Disk().Clock()
			start := clk.Now()
			ents, err := fs.ReadDir(dir)
			if err != nil {
				return nil, err
			}
			for _, e := range ents {
				if _, err := fs.Stat(e.Ino); err != nil {
					return nil, err
				}
			}
			scanMs[i] = float64(clk.Now()-start) / 1e6
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", blocks[0]), fmt.Sprintf("%d", blocks[1]),
			f1(scanMs[0]), f1(scanMs[1]))
	}
	t.Notes = append(t.Notes,
		"embedded inodes grow directories ~13x; scans of small directories win (no inode reads),",
		"while very large flat directories pay for the extra blocks — the paper's stated trade")
	return []Table{t}, nil
}

// LargeFile verifies the paper's claim that large-file bandwidth is
// unchanged: sequential write and cold sequential read of one 8 MB file.
func LargeFile(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "largefile",
		Title:   "Large-file sequential bandwidth (MB/s)",
		Columns: []string{"variant", "write", "read"},
	}
	size := 8 << 20
	if cfg.Quick {
		size = 2 << 20
	}
	data := make([]byte, size)
	for _, v := range grid() {
		fs, dev, err := v.Build(cfg, core.ModeDelayed)
		if err != nil {
			return nil, err
		}
		clk := dev.Disk().Clock()
		ino, err := fs.Create(fs.Root(), "big")
		if err != nil {
			return nil, err
		}
		start := clk.Now()
		if _, err := fs.WriteAt(ino, data, 0); err != nil {
			return nil, err
		}
		if err := fs.Sync(); err != nil {
			return nil, err
		}
		writeMBs := float64(size) / (float64(clk.Now()-start) / 1e9) / 1e6
		if fl, ok := fs.(vfs.Flusher); ok {
			if err := fl.Flush(); err != nil {
				return nil, err
			}
		}
		start = clk.Now()
		buf := make([]byte, size)
		if _, err := fs.ReadAt(ino, buf, 0); err != nil {
			return nil, err
		}
		readMBs := float64(size) / (float64(clk.Now()-start) / 1e9) / 1e6
		t.AddRow(v.Name, f2(writeMBs), f2(readMBs))
	}
	return []Table{t}, nil
}
