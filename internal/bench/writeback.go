package bench

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/ffs"
	"cffs/internal/lfs"
	"cffs/internal/obs"
	"cffs/internal/vfs"
	"cffs/internal/workload"
	wb "cffs/internal/writeback"
)

// asyncPolicy is the write-behind configuration the async variants
// mount with. Inline keeps the flush points inside the deterministic
// operation stream, so repeated runs measure identical simulated time;
// the policy (water marks, clustering, throttling) is exactly what a
// background mount applies.
func asyncPolicy() wb.Config {
	return wb.Config{Enabled: true, Inline: true}
}

// wbVariant is one sync-vs-async mount configuration under comparison.
type wbVariant struct {
	Name  string
	Build func(c Config, r *obs.Registry) (vfs.FileSystem, *blockio.Device, error)
}

func cffsWBVariant(name string, mode core.Mode, cfg wb.Config) wbVariant {
	return wbVariant{Name: name, Build: func(c Config, r *obs.Registry) (vfs.FileSystem, *blockio.Device, error) {
		dev, err := c.newDevice()
		if err != nil {
			return nil, nil, err
		}
		fs, err := core.Mkfs(dev, core.Options{
			EmbedInodes: true, Grouping: true, Mode: mode,
			CacheBlocks: c.CacheBlocks, Metrics: r, Writeback: cfg,
		})
		return fs, dev, err
	}}
}

func ffsWBVariant(name string, mode ffs.Mode, cfg wb.Config) wbVariant {
	return wbVariant{Name: name, Build: func(c Config, r *obs.Registry) (vfs.FileSystem, *blockio.Device, error) {
		dev, err := c.newDevice()
		if err != nil {
			return nil, nil, err
		}
		fs, err := ffs.Mkfs(dev, ffs.Options{
			Mode: mode, CacheBlocks: c.CacheBlocks, Metrics: r, Writeback: cfg,
		})
		return fs, dev, err
	}}
}

func lfsWBVariant(name string, cfg wb.Config) wbVariant {
	return wbVariant{Name: name, Build: func(c Config, r *obs.Registry) (vfs.FileSystem, *blockio.Device, error) {
		dev, err := c.newDevice()
		if err != nil {
			return nil, nil, err
		}
		fs, err := lfs.Mkfs(dev, lfs.Options{
			CacheBlocks: c.CacheBlocks, Metrics: r, Writeback: cfg,
		})
		return fs, dev, err
	}}
}

// WritebackExp measures what the write-behind daemon buys: the
// small-file benchmark on synchronous mounts against async mounts where
// the daemon retires dirty blocks early as clustered transfers, plus a
// sweep of the dirty-ratio limit showing how much write-behind headroom
// each file system needs before clustering pays off.
func WritebackExp(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	variants := []wbVariant{
		cffsWBVariant("C-FFS sync", core.ModeSync, wb.Config{}),
		cffsWBVariant("C-FFS async", core.ModeDelayed, asyncPolicy()),
		ffsWBVariant("FFS sync", ffs.ModeSync, wb.Config{}),
		ffsWBVariant("FFS async", ffs.ModeDelayed, asyncPolicy()),
		lfsWBVariant("LFS", wb.Config{}),
		lfsWBVariant("LFS async", asyncPolicy()),
	}
	thr := Table{
		ID: "writeback",
		Title: fmt.Sprintf("Small-file throughput, sync vs async mounts (files/s; %d files of %d B)",
			cfg.NumFiles, cfg.FileSize),
		Columns: []string{"phase"},
	}
	req := Table{
		ID:      "writeback-requests",
		Title:   "Disk requests per phase, sync vs async mounts",
		Columns: []string{"phase"},
	}
	daemon := Table{
		ID:      "writeback-daemon",
		Title:   "Write-behind daemon activity (async mounts)",
		Columns: []string{"variant", "flush rounds", "blocks", "blocks/round", "throttle stalls"},
	}
	results := make([][]workload.PhaseResult, len(variants))
	for i, v := range variants {
		thr.Columns = append(thr.Columns, v.Name)
		req.Columns = append(req.Columns, v.Name)
		// Each variant gets its own registry: the async columns carry the
		// writeback.* counters, and comparisons never mix streams.
		r := obs.NewRegistry()
		fs, _, err := v.Build(cfg, r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Name, err)
		}
		res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
			NumFiles: cfg.NumFiles, FileSize: cfg.FileSize, Dirs: cfg.Dirs, Seed: cfg.Seed,
			Registry: r,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Name, err)
		}
		results[i] = res
		snap := r.Snapshot()
		cfg.Metrics.add(variantMetricsFrom(v.Name, snap, res))
		if rounds := snap.Counter("writeback.flushes"); rounds > 0 {
			blocks := snap.Counter("writeback.blocks")
			daemon.AddRow(v.Name,
				fmt.Sprintf("%d", rounds), fmt.Sprintf("%d", blocks),
				f1(float64(blocks)/float64(rounds)),
				fmt.Sprintf("%d", snap.Counter("writeback.throttle.stalls")))
		}
	}
	thr.Columns = append(thr.Columns, "C-FFS async vs sync")
	req.Columns = append(req.Columns, "C-FFS sync vs async")
	for p := range results[0] {
		tc := []string{results[0][p].Name}
		rc := []string{results[0][p].Name}
		for i := range variants {
			tc = append(tc, f1(results[i][p].FilesPerSec()))
			rc = append(rc, fmt.Sprintf("%d", results[i][p].Disk.Requests))
		}
		tc = append(tc, fx(results[1][p].FilesPerSec()/results[0][p].FilesPerSec()))
		rc = append(rc, fx(float64(results[0][p].Disk.Requests)/float64(results[1][p].Disk.Requests)))
		thr.AddRow(tc...)
		req.AddRow(rc...)
	}
	thr.Notes = append(thr.Notes,
		"sync mounts write metadata synchronously in operation order; async mounts let the",
		"write-behind daemon retire dirty blocks early as clustered scatter/gather transfers")

	sweep, err := writebackSweep(cfg)
	if err != nil {
		return nil, err
	}
	return []Table{thr, req, daemon, sweep}, nil
}

// writebackSweep varies the daemon's dirty-ratio limit: a tight limit
// flushes eagerly in small batches (approaching write-through), a loose
// one accumulates whole groups before the clustered write goes out.
func writebackSweep(cfg Config) (Table, error) {
	t := Table{
		ID:      "writeback-sweep",
		Title:   "Create throughput vs dirty-ratio limit (async mounts, files/s)",
		Columns: []string{"high water", "C-FFS", "FFS", "LFS"},
	}
	limits := []float64{0.02, 0.05, 0.10, 0.25, 0.50}
	if cfg.Quick {
		limits = []float64{0.02, 0.10, 0.50}
	}
	for _, hw := range limits {
		pol := wb.Config{
			Enabled: true, Inline: true,
			HighWater: hw, LowWater: hw / 2, HardLimit: minf(2*hw, 0.9),
		}
		row := []string{fmt.Sprintf("%d%%", int(hw*100))}
		for _, v := range []wbVariant{
			cffsWBVariant("C-FFS", core.ModeDelayed, pol),
			ffsWBVariant("FFS", ffs.ModeDelayed, pol),
			lfsWBVariant("LFS", pol),
		} {
			fs, dev, err := v.Build(cfg, nil)
			if err != nil {
				return Table{}, fmt.Errorf("%s: %w", v.Name, err)
			}
			clk := dev.Disk().Clock()
			start := clk.Now()
			if _, err := workload.RunSmallFilePhase(fs, workload.SmallFileConfig{
				NumFiles: cfg.NumFiles, FileSize: cfg.FileSize, Dirs: cfg.Dirs, Seed: cfg.Seed,
			}); err != nil {
				return Table{}, fmt.Errorf("%s: %w", v.Name, err)
			}
			row = append(row, f1(float64(cfg.NumFiles)/(float64(clk.Now()-start)/1e9)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"create phase including final write-back; low water = half the high-water mark,",
		"hard limit = twice; small limits flush small batches, large ones flush whole groups")
	return t, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
