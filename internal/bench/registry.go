package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a named, runnable reproduction of one or more of the
// paper's tables/figures.
type Experiment struct {
	Name  string
	Brief string
	Run   func(Config) ([]Table, error)
}

// Experiments returns the registry, sorted by name.
func Experiments() []Experiment {
	exps := []Experiment{
		{"table1", "Table 1: characteristics of three 1996 disk drives", Table1},
		{"table2", "Table 2: the ST31200 testbed disk", Table2},
		{"fig2", "Figure 2: access time vs request size", Figure2},
		{"smallfile-sync", "Figures 4+5: small-file benchmark, synchronous metadata", Figure4},
		{"smallfile-delayed", "Figure 6: small-file benchmark, soft updates emulated", Figure6},
		{"sizesweep", "Figure 7: throughput vs file size", Figure7},
		{"aging", "Section 4.3: benchmark on aged file systems", AgingExp},
		{"apps", "Section 4.4: software-development applications", Apps},
		{"dirsize", "Directory growth and attribute scans under embedded inodes", DirSize},
		{"largefile", "Large-file bandwidth is unchanged", LargeFile},
		{"sched", "Ablation: C-LOOK vs FCFS", SchedulerAblation},
		{"cache", "Ablation: buffer cache size", CacheSweep},
		{"drives", "Ablation: drive generations", DriveSweep},
		{"immediate", "Extension: immediate files [Mullender84]", Immediate},
		{"readahead", "Extension: sequential prefetching", Readahead},
		{"postmark", "PostMark-style transaction churn", Postmark},
		{"concurrency", "Goroutine scaling: concurrent clients on one C-FFS", Concurrency},
		{"profile", "Read-phase request profile (the mechanism made visible)", ProfileExp},
		{"lfs", "LFS comparison: log order vs namespace order [Rosenblum92]", LFSExp},
		{"softupdates", "Metadata integrity cost in isolation [Ganger94]", SoftUpdates},
		{"recovery", "Crash-point enumeration: fsck repair and recovery time", RecoveryExp},
		{"writeback", "Async write-behind: sync vs async mounts, dirty-limit sweep", WritebackExp},
		{"scaling", "Striped multi-disk scaling: 1/2/4/8 spindles", ScalingExp},
		{"service", "Multi-tenant service: loopback sessions, per-tenant QoS", ServiceExp},
		{"namespace", "Million-file namespace: indexed directories and the path cache at scale", NamespaceExp},
		{"ssd", "Backend matrix: disk vs flash, fresh vs aged — where the C-FFS bet breaks", SSDExp},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].Name < exps[j].Name })
	return exps
}

// ByName finds an experiment. "smallfile" is accepted as an alias for
// "smallfile-sync", the paper's headline benchmark.
func ByName(name string) (Experiment, error) {
	if name == "smallfile" {
		name = "smallfile-sync"
	}
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (try: %v)", name, names())
}

func names() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.Name)
	}
	return out
}

// RunAll executes every experiment and renders the tables to w.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range Experiments() {
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		for _, t := range tables {
			t.Render(w)
		}
	}
	return nil
}
