package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"cffs/internal/core"
	"cffs/internal/obs"
	"cffs/internal/workload"
	"cffs/internal/writeback"
)

// The tests in this file are the reproduction assertions: they run the
// experiments at Quick scale and check the paper's qualitative claims —
// who wins, by roughly what factor, and where the effect comes from.

func quick() Config { return Config{Quick: true} }

// runGridPhases runs the small-file grid and indexes results by
// variant and phase for assertions.
func runGridPhases(t *testing.T, mode core.Mode) map[string]map[string]workload.PhaseResult {
	t.Helper()
	cfg := quick().fill()
	out := make(map[string]map[string]workload.PhaseResult)
	for _, v := range grid() {
		fs, _, err := v.Build(cfg, mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
			NumFiles: cfg.NumFiles, FileSize: cfg.FileSize, Dirs: cfg.Dirs, Seed: cfg.Seed,
		})
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		out[v.Name] = make(map[string]workload.PhaseResult)
		for _, r := range res {
			out[v.Name][r.Name] = r
		}
	}
	return out
}

// Paper claim (abstract): embedded inodes and explicit grouping increase
// small-file throughput for both reads and writes by a large factor
// (5-7x on the authors' testbed) relative to the same file system
// without the techniques.
func TestPaperClaimSmallFileSpeedup(t *testing.T) {
	r := runGridPhases(t, core.ModeDelayed)
	read := r["C-FFS"]["read"].FilesPerSec() / r["conventional"]["read"].FilesPerSec()
	if read < 3.5 {
		t.Errorf("read speedup %.1fx, paper shape needs >= 3.5x", read)
	}
	over := r["C-FFS"]["overwrite"].FilesPerSec() / r["conventional"]["overwrite"].FilesPerSec()
	if over < 3 {
		t.Errorf("overwrite speedup %.1fx, paper shape needs >= 3x", over)
	}
	create := r["C-FFS"]["create"].FilesPerSec() / r["conventional"]["create"].FilesPerSec()
	if create < 2 {
		t.Errorf("create speedup %.1fx, paper shape needs >= 2x", create)
	}
}

// Paper claim (abstract): the improvement comes directly from reducing
// the number of disk requests by an order of magnitude.
func TestPaperClaimRequestReduction(t *testing.T) {
	r := runGridPhases(t, core.ModeDelayed)
	for _, phase := range []string{"create", "read", "overwrite"} {
		conv := r["conventional"][phase].Disk.Requests
		cffs := r["C-FFS"][phase].Disk.Requests
		if ratio := float64(conv) / float64(cffs); ratio < 5 {
			t.Errorf("%s: request reduction %.1fx, want >= 5x", phase, ratio)
		}
	}
}

// Paper claim (Section 4.2): embedded inodes alone raise delete
// throughput ~250% under synchronous metadata, by halving the ordered
// writes and repeatedly rewriting the same directory block.
func TestPaperClaimEmbeddedDeleteSpeedup(t *testing.T) {
	r := runGridPhases(t, core.ModeSync)
	// The paper reports ~2.5x; our conventional baseline keeps inodes
	// closer to their directories than 1997 FFS did, so the structural
	// gap (two ordered writes vs one) dominates and lands near 2x.
	del := r["embedded"]["delete"].FilesPerSec() / r["conventional"]["delete"].FilesPerSec()
	if del < 1.6 {
		t.Errorf("embedded-only delete speedup %.1fx, want >= 1.6x", del)
	}
	// And creation benefits too (one ordered write instead of two).
	cr := r["embedded"]["create"].FilesPerSec() / r["conventional"]["create"].FilesPerSec()
	if cr < 1.3 {
		t.Errorf("embedded-only create speedup %.1fx, want >= 1.3x", cr)
	}
}

// The decomposition must match the paper: grouping is what accelerates
// reads; embedding barely affects them (inode access is amortized), and
// vice versa for sync-mode deletes.
func TestTechniqueDecomposition(t *testing.T) {
	r := runGridPhases(t, core.ModeDelayed)
	groupRead := r["grouping"]["read"].FilesPerSec()
	embedRead := r["embedded"]["read"].FilesPerSec()
	convRead := r["conventional"]["read"].FilesPerSec()
	if groupRead < 2.5*convRead {
		t.Errorf("grouping-only read %.0f vs conventional %.0f; grouping should carry the read win", groupRead, convRead)
	}
	if embedRead > 2*convRead {
		t.Errorf("embedded-only read %.0f vs conventional %.0f; embedding should not dominate reads", embedRead, convRead)
	}
}

// The independent FFS baseline must behave like a conventional file
// system: far below C-FFS on reads, in the same league as the
// conventional core configuration.
func TestIndependentBaselineAgrees(t *testing.T) {
	r := runGridPhases(t, core.ModeDelayed)
	ffsRead := r["FFS"]["read"].FilesPerSec()
	cffsRead := r["C-FFS"]["read"].FilesPerSec()
	convRead := r["conventional"]["read"].FilesPerSec()
	if cffsRead < 2.5*ffsRead {
		t.Errorf("C-FFS read %.0f vs independent FFS %.0f; want >= 2.5x", cffsRead, ffsRead)
	}
	if ffsRead > 3*convRead || convRead > 3*ffsRead {
		t.Errorf("two conventional implementations diverge: core %.0f vs ffs %.0f", convRead, ffsRead)
	}
}

// Figure 2's shape: per-request costs dominate small transfers, so MB/s
// rises steeply with request size.
func TestFigure2Shape(t *testing.T) {
	tables, err := Figure2(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	first := cellFloat(t, rows[0][1])          // 1 KB mean ms on C3653
	last := cellFloat(t, rows[len(rows)-1][1]) // 1 MB mean ms
	if last < 4*first {
		t.Errorf("1MB access %.2fms vs 1KB %.2fms; transfer time should dominate large requests", last, first)
	}
	if first > 30 {
		t.Errorf("1KB random access %.2fms implausible", first)
	}
}

// Large files must see no meaningful penalty from grouping.
func TestLargeFileUnchanged(t *testing.T) {
	tables, err := LargeFile(quick())
	if err != nil {
		t.Fatal(err)
	}
	var conv, cffs float64
	for _, row := range tables[0].Rows {
		switch row[0] {
		case "conventional":
			conv = cellFloat(t, row[2])
		case "C-FFS":
			cffs = cellFloat(t, row[2])
		}
	}
	if cffs < conv*0.7 {
		t.Errorf("C-FFS large-file read %.2f MB/s vs conventional %.2f; grouping must not hurt large files", cffs, conv)
	}
}

// Applications: C-FFS must win on every small-file-bound workload; the
// paper reports 10-300%.
func TestApplicationsSpeedup(t *testing.T) {
	tables, err := Apps(quick())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	speedupCol := len(tb.Columns) - 1
	for _, row := range tb.Rows {
		app := row[0]
		sp := cellFloat(t, strings.TrimSuffix(row[speedupCol], "x"))
		// Delete-heavy workloads under delayed metadata are cache-bound
		// and roughly tie; everything else must win outright.
		floor := 1.0
		if app == "clean" || app == "remove" {
			floor = 0.85
		}
		if sp < floor {
			t.Errorf("%s: C-FFS speedup %.2fx below floor %.2fx", app, sp, floor)
		}
	}
}

// Directory overhead: the paper's acknowledged cost — embedded inodes
// grow directories — and benefit — attribute scans need no extra I/O.
func TestDirSizeTradeoff(t *testing.T) {
	tables, err := DirSize(quick())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	last := tb.Rows[len(tb.Rows)-1]
	convBlocks := cellFloat(t, last[1])
	embedBlocks := cellFloat(t, last[2])
	if embedBlocks <= convBlocks {
		t.Error("embedded directories should be larger than conventional ones")
	}
	// Scans of very large flat directories pay for the extra blocks, but
	// the cost must stay bounded (the paper's trade: a few extra
	// sequential blocks, not extra random requests).
	convScan := cellFloat(t, last[3])
	embedScan := cellFloat(t, last[4])
	if embedScan > 3*convScan {
		t.Errorf("cold scan of a big flat dir: embedded %.1fms vs FFS %.1fms; cost should stay bounded", embedScan, convScan)
	}
}

// The scheduler matters: C-LOOK must beat FCFS for the conventional
// system's scattered access patterns.
func TestSchedulerAblation(t *testing.T) {
	tables, err := SchedulerAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	var clookConv, fcfsConv float64
	for _, row := range tables[0].Rows {
		if row[0] == "conventional" {
			v := cellFloat(t, row[3]) // read phase
			if row[1] == "clook" {
				clookConv = v
			} else {
				fcfsConv = v
			}
		}
	}
	if clookConv < fcfsConv {
		t.Errorf("conventional read with C-LOOK %.0f < FCFS %.0f", clookConv, fcfsConv)
	}
}

// Aging shrinks but does not erase the C-FFS advantage.
func TestAgingShape(t *testing.T) {
	tables, err := AgingExp(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	firstSpeedup := cellFloat(t, strings.TrimSuffix(rows[0][4], "x"))
	lastSpeedup := cellFloat(t, strings.TrimSuffix(rows[len(rows)-1][4], "x"))
	if firstSpeedup < 2 {
		t.Errorf("fresh-ish C-FFS read speedup %.1fx, want >= 2x", firstSpeedup)
	}
	if lastSpeedup < 1.0 {
		t.Errorf("aged C-FFS read speedup %.1fx; should not fall below conventional", lastSpeedup)
	}
}

// The write-behind acceptance claim: an async C-FFS mount must create
// small files at least as fast as the synchronous mount, with fewer
// disk requests, and the gain must come from the daemon actually
// running (writeback.* counters nonzero in the captured metrics).
func TestWritebackAsyncBeatsSync(t *testing.T) {
	cfg := quick().fill()
	run := func(v wbVariant) (workload.PhaseResult, obs.Snapshot) {
		t.Helper()
		r := obs.NewRegistry()
		fs, _, err := v.Build(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
			NumFiles: cfg.NumFiles, FileSize: cfg.FileSize, Dirs: cfg.Dirs, Seed: cfg.Seed,
		})
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		return res[0], r.Snapshot()
	}
	sync, _ := run(cffsWBVariant("C-FFS sync", core.ModeSync, writeback.Config{}))
	async, snap := run(cffsWBVariant("C-FFS async", core.ModeDelayed, asyncPolicy()))
	if async.FilesPerSec() < sync.FilesPerSec() {
		t.Errorf("async create %.0f files/s below sync baseline %.0f",
			async.FilesPerSec(), sync.FilesPerSec())
	}
	if async.Disk.Requests >= sync.Disk.Requests {
		t.Errorf("async create used %d disk requests, sync %d; write-behind must cluster",
			async.Disk.Requests, sync.Disk.Requests)
	}
	if snap.Counter("writeback.blocks") == 0 {
		t.Error("async mount recorded no daemon-flushed blocks")
	}
	if snap.Counter("writeback.flushes") == 0 {
		t.Error("async mount recorded no daemon flush rounds")
	}
}

// All experiments in the registry must run to completion at Quick scale
// and render valid tables.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, quick()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every experiment emits at least one table header; count them.
	if got := strings.Count(out, "== "); got < len(Experiments()) {
		t.Errorf("only %d tables rendered for %d experiments", got, len(Experiments()))
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "+Inf") {
		t.Error("experiment output contains NaN/Inf")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("apps"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}, Notes: []string{"n"}}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "a  bb", "1  2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "x"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// Extension shapes: immediate files make tiny-file reads far cheaper,
// and readahead multiplies sequential large-file bandwidth.
func TestExtensionShapes(t *testing.T) {
	tables, err := Immediate(quick())
	if err != nil {
		t.Fatal(err)
	}
	base := cellFloat(t, tables[0].Rows[0][2])
	inline := cellFloat(t, tables[0].Rows[1][2])
	if inline < 1.5*base {
		t.Errorf("immediate tiny-file read %.0f vs %.0f f/s; want >= 1.5x", inline, base)
	}
	tables, err = Readahead(quick())
	if err != nil {
		t.Fatal(err)
	}
	ra0 := cellFloat(t, tables[0].Rows[0][1])
	ra16 := cellFloat(t, tables[0].Rows[len(tables[0].Rows)-1][1])
	if ra16 < 1.8*ra0 {
		t.Errorf("readahead-16 bandwidth %.2f vs %.2f MB/s; want >= 1.8x", ra16, ra0)
	}
}

// PostMark churn: C-FFS must hold a clear advantage in steady state,
// not just on clean create-then-read phases.
func TestPostmarkShape(t *testing.T) {
	tables, err := Postmark(quick())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tables[0].Rows {
		vals[row[0]] = cellFloat(t, row[1])
	}
	if vals["C-FFS"] < 1.5*vals["conventional"] {
		t.Errorf("PostMark: C-FFS %.0f tx/s vs conventional %.0f; want >= 1.5x", vals["C-FFS"], vals["conventional"])
	}
	// The log owns random small-file churn.
	if vals["LFS"] < 1.2*vals["conventional"] {
		t.Errorf("PostMark: LFS %.0f tx/s vs conventional %.0f; the log should win churn", vals["LFS"], vals["conventional"])
	}
}

// The [Ganger94] observation: synchronous metadata costs the
// conventional system multiples on create/delete and nothing on reads.
func TestSoftUpdatesShape(t *testing.T) {
	tables, err := SoftUpdates(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		ratio := cellFloat(t, strings.TrimSuffix(row[3], "x"))
		switch row[0] {
		case "create", "delete":
			if ratio < 2 {
				t.Errorf("%s: delayed vs sync only %.1fx; metadata cost should dominate", row[0], ratio)
			}
		case "read":
			if ratio < 0.95 || ratio > 1.05 {
				t.Errorf("read phase should be unaffected by metadata mode, got %.2fx", ratio)
			}
		}
	}
}

// The LFS comparison must show the paper's qualitative story: the log
// wins creation outright, and its read throughput collapses when the
// read order diverges from the write order while grouping's does not.
func TestLFSShape(t *testing.T) {
	// Not Quick (it clamps Dirs): the interleave period must exceed the
	// drive's prefetch window for the order effect to be physical.
	cfg := Config{NumFiles: 3000, Dirs: 100}
	tables, err := LFSExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range tables[0].Rows {
		rows[row[0]] = row
	}
	lfsCreate := cellFloat(t, rows["LFS"][1])
	convCreate := cellFloat(t, rows["conventional"][1])
	if lfsCreate < 2*convCreate {
		t.Errorf("LFS create %.0f vs conventional %.0f; the log should win creation big", lfsCreate, convCreate)
	}
	lfsPenalty := cellFloat(t, strings.TrimSuffix(rows["LFS"][4], "x"))
	cffsPenalty := cellFloat(t, strings.TrimSuffix(rows["C-FFS"][4], "x"))
	if lfsPenalty < 2 {
		t.Errorf("LFS order penalty %.1fx; reads off the write order should hurt a log", lfsPenalty)
	}
	if cffsPenalty > 1.2 {
		t.Errorf("C-FFS order penalty %.1fx; grouping should not care about creation order", cffsPenalty)
	}
	lfsDir := cellFloat(t, rows["LFS"][3])
	cffsDir := cellFloat(t, rows["C-FFS"][3])
	if cffsDir < 2*lfsDir {
		t.Errorf("by-directory reads: C-FFS %.0f vs LFS %.0f; want a clear C-FFS win", cffsDir, lfsDir)
	}
}
