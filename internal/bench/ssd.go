package bench

import (
	"fmt"

	"cffs/internal/core"
	"cffs/internal/obs"
	"cffs/internal/sim"
	"cffs/internal/ssd"
	"cffs/internal/vfs"
	"cffs/internal/workload"
)

// The CI-enforced bounds of the SSD experiment: the matrix exists to
// state, with gates rather than prose, which C-FFS gains survive the
// move from mechanical disk to flash and which evaporate.
//
// Survives — request batching: each flash request still pays a fixed
// cost, so grouping a directory's files into few large transfers keeps
// paying. FFS must issue at least ssdReqAdvantageMin times the C-FFS
// create-phase requests per operation on the ssd backend, fresh and
// aged. (Measured: ~8x, fresh and aged alike, at quick scale.)
//
// Survives — ordered-write counts: the write stream is a property of
// the file system, not the device, so an embedded create must cost
// exactly one ordered write and a conventional create exactly two on
// both backends (checked exactly, no constant needed).
//
// Evaporates — seek locality: with no positioning state, placement
// buys nothing per request, so on a serial request stream (the matrix
// pins the ssd cells to one channel) the read speedup falls to what the
// request-count reduction alone explains. The C-FFS/conventional read
// speedup on ssd must be at most ssdSpeedupShrink of the same ratio on
// the disk. (Measured: disk ~13.6x, ssd ~2.2x at quick scale.) With
// all eight channels the grouped reads win big again — but as striped
// parallel transfers (the channel sweep), not as locality.
//
// The FTL's own axis: write amplification must respond to GC pressure —
// strictly more spare area means strictly less migration — and an aged
// device must actually show amplification (writeamp_x100 > 100) with GC
// runs recorded in the ssd.* metric families.
const (
	ssdReqAdvantageMin = 2.0  // FFS req/op over C-FFS req/op on flash, create phase
	ssdSpeedupShrink   = 0.75 // ssd read speedup as a fraction of disk read speedup
	ssdAgedWriteAmpMin = 102  // writeamp_x100 floor for aged ssd cells
)

// matrixVariants are the file systems the backend matrix compares: the
// paper's endpoints plus the independent FFS baseline the req/op gate
// needs.
func matrixVariants() []fsVariant {
	return []fsVariant{
		coreVariant("conventional", false, false),
		coreVariant("C-FFS", true, true),
		ffsVariant(),
	}
}

// cellMeas is one (backend, age, variant) measurement: the four-phase
// results and the registry delta covering exactly the measured workload
// (aging churn, when present, is excluded by the delta).
type cellMeas struct {
	res  []workload.PhaseResult
	snap obs.Snapshot
}

// SSDExp is the backend matrix: the small-file benchmark on disk vs
// flash, fresh vs aged, with FTL accounting, a channel-count sweep, a
// GC-pressure sweep, and an exact ordered-write probe. Every claim the
// matrix makes about where the C-FFS bet breaks is enforced in-run; a
// violated gate fails the experiment.
func SSDExp(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	n := max(400, cfg.NumFiles/2)
	dirs := max(4, cfg.Dirs/2)

	cells := []struct {
		backend string
		aged    bool
	}{
		{"disk", false},
		{"disk", true},
		{"ssd", false},
		{"ssd", true},
	}
	state := func(aged bool) string {
		if aged {
			return "aged"
		}
		return "fresh"
	}

	matrix := Table{
		ID: "ssd-matrix",
		Title: fmt.Sprintf("Small-file benchmark across the backend matrix (delayed metadata; %d files of %d B)",
			n, cfg.FileSize),
		Columns: []string{"backend", "state", "C-FFS create (f/s)", "conv read (f/s)", "C-FFS read (f/s)",
			"read speedup", "C-FFS create req/op", "FFS create req/op", "FFS/C-FFS"},
	}
	ftlT := Table{
		ID:      "ssd-ftl",
		Title:   "FTL accounting during the measured workload (ssd cells)",
		Columns: []string{"state", "variant", "host pages", "gc runs", "pages moved", "erases", "writeamp x100", "free blocks"},
	}

	all := make([]map[string]cellMeas, len(cells))
	for ci, c := range cells {
		all[ci] = make(map[string]cellMeas)
		cellName := c.backend + "-" + state(c.aged)
		for _, v := range matrixVariants() {
			vcfg := cfg
			vcfg.Backend = c.backend
			vcfg.Aged = c.aged
			vcfg.Registry = obs.NewRegistry()
			if c.backend == "ssd" {
				// One channel: the matrix times the serial request stream,
				// so the read-speedup comparison isolates what placement
				// locality is worth when every request costs the same
				// regardless of address. Channel parallelism — the axis
				// that lets grouped contiguous reads win again as big
				// striped transfers — is measured by the channel sweep.
				vcfg.Channels = 1
			}
			fs, _, err := v.Build(vcfg, core.ModeDelayed)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", cellName, v.Name, err)
			}
			pre := vcfg.Registry.Snapshot()
			res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
				NumFiles: n, FileSize: cfg.FileSize, Dirs: dirs, Seed: cfg.Seed,
				Registry: vcfg.Registry,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", cellName, v.Name, err)
			}
			snap := vcfg.Registry.Snapshot().Delta(pre)
			all[ci][v.Name] = cellMeas{res: res, snap: snap}
			cfg.Metrics.add(variantMetricsFrom(cellName+"/"+v.Name, snap, res))
		}
	}

	reqPerOp := func(p workload.PhaseResult) float64 {
		if p.Files == 0 {
			return 0
		}
		return float64(p.Disk.Requests) / float64(p.Files)
	}
	speedups := make([]float64, len(cells))
	for ci, c := range cells {
		conv, cffs, ffsM := all[ci]["conventional"], all[ci]["C-FFS"], all[ci]["FFS"]
		sp := cffs.res[1].FilesPerSec() / conv.res[1].FilesPerSec()
		speedups[ci] = sp
		cffsReq, ffsReq := reqPerOp(cffs.res[0]), reqPerOp(ffsM.res[0])
		matrix.AddRow(c.backend, state(c.aged),
			f1(cffs.res[0].FilesPerSec()),
			f1(conv.res[1].FilesPerSec()), f1(cffs.res[1].FilesPerSec()), fx(sp),
			f2(cffsReq), f2(ffsReq), fx(ffsReq/cffsReq))

		if c.backend == "ssd" {
			// Gate: the batching half of the bet survives on flash.
			if adv := ffsReq / cffsReq; adv < ssdReqAdvantageMin {
				return nil, fmt.Errorf(
					"ssd %s: FFS pays only %.2fx the C-FFS create req/op (%.2f vs %.2f), gate is %.1fx — request batching should survive on flash",
					state(c.aged), adv, ffsReq, cffsReq, ssdReqAdvantageMin)
			}
			// Gate: the ssd.* families must be present in the measured
			// delta, fresh and aged.
			for _, m := range []cellMeas{cffs, ffsM} {
				if _, ok := m.snap.Counters["ssd.gc.runs"]; !ok {
					return nil, fmt.Errorf("ssd %s: ssd.gc.runs missing from the measured metrics", state(c.aged))
				}
				if _, ok := m.snap.Gauges["ssd.writeamp_x100"]; !ok {
					return nil, fmt.Errorf("ssd %s: ssd.writeamp_x100 missing from the measured metrics", state(c.aged))
				}
			}
			// Gate: an aged flash device must actually be paying for GC.
			if c.aged {
				if cffs.snap.Counter("ssd.gc.runs") == 0 {
					return nil, fmt.Errorf("ssd aged: garbage collection never ran; the aged dimension is vacuous")
				}
				if wa := cffs.snap.Gauges["ssd.writeamp_x100"]; wa < ssdAgedWriteAmpMin {
					return nil, fmt.Errorf("ssd aged: writeamp_x100 = %d, floor is %d — aged flash should amplify writes", wa, ssdAgedWriteAmpMin)
				}
			}
			for _, name := range []string{"conventional", "C-FFS", "FFS"} {
				m := all[ci][name]
				ftlT.AddRow(state(c.aged), name,
					fmt.Sprintf("%d", m.snap.Counter("ssd.pages.host")),
					fmt.Sprintf("%d", m.snap.Counter("ssd.gc.runs")),
					fmt.Sprintf("%d", m.snap.Counter("ssd.gc.pages_moved")),
					fmt.Sprintf("%d", m.snap.Counter("ssd.gc.erases")),
					fmt.Sprintf("%d", m.snap.Gauges["ssd.writeamp_x100"]),
					fmt.Sprintf("%d", m.snap.Gauges["ssd.blocks.free"]))
			}
		}
	}
	// Gate: the seek-locality half of the read speedup evaporates. The
	// fresh cells give the clean comparison (aging shrinks the disk
	// speedup on its own, which would flatter this gate).
	spDisk, spSSD := speedups[0], speedups[2]
	if spSSD > ssdSpeedupShrink*spDisk {
		return nil, fmt.Errorf(
			"ssd fresh: read speedup %.2fx vs %.2fx on disk — flash should collapse the seek-locality advantage below %.0f%% of the disk's",
			spSSD, spDisk, 100*ssdSpeedupShrink)
	}
	matrix.Notes = append(matrix.Notes,
		fmt.Sprintf("gates: FFS/C-FFS create req/op >= %.1fx on ssd (batching survives);", ssdReqAdvantageMin),
		fmt.Sprintf("ssd read speedup <= %.0f%% of disk read speedup (seek locality evaporates);", 100*ssdSpeedupShrink),
		fmt.Sprintf("aged ssd cells show gc runs > 0 and writeamp_x100 >= %d", ssdAgedWriteAmpMin),
		"aged runs churn via internal/aging first; metrics deltas cover only the measured phases")

	chT, err := ssdChannelSweep(cfg)
	if err != nil {
		return nil, err
	}
	gcT, err := ssdGCSweep(cfg)
	if err != nil {
		return nil, err
	}
	ordT, err := ssdOrderedProbe(cfg)
	if err != nil {
		return nil, err
	}
	return []Table{matrix, ftlT, chT, gcT, ordT}, nil
}

// ssdChannelSweep runs the C-FFS small-file benchmark on the flash
// backend at increasing channel counts. Only the batched delayed writes
// can exploit channel parallelism (the serial request stream cannot),
// so the create phase — which ends in a clustered write-back — must not
// get slower as channels are added, and the sweep shows how much of the
// win batching alone is.
func ssdChannelSweep(cfg Config) (Table, error) {
	t := Table{
		ID:      "ssd-channels",
		Title:   "C-FFS on flash vs channel count (delayed metadata)",
		Columns: []string{"channels", "create (f/s)", "read (f/s)", "delete (f/s)"},
	}
	n := max(200, cfg.NumFiles/4)
	dirs := max(4, cfg.Dirs/4)
	sweep := []int{1, 2, 4, 8}
	var createFS []float64
	for _, ch := range sweep {
		vcfg := cfg
		vcfg.Backend = "ssd"
		vcfg.Channels = ch
		vcfg.Aged = false
		fs, _, err := coreVariant("C-FFS", true, true).Build(vcfg, core.ModeDelayed)
		if err != nil {
			return t, fmt.Errorf("ssd channels=%d: %w", ch, err)
		}
		res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
			NumFiles: n, FileSize: cfg.FileSize, Dirs: dirs, Seed: cfg.Seed,
		})
		if err != nil {
			return t, fmt.Errorf("ssd channels=%d: %w", ch, err)
		}
		createFS = append(createFS, res[0].FilesPerSec())
		t.AddRow(fmt.Sprintf("%d", ch),
			f1(res[0].FilesPerSec()), f1(res[1].FilesPerSec()), f1(res[3].FilesPerSec()))
	}
	if last := len(createFS) - 1; createFS[last] < createFS[0] {
		return t, fmt.Errorf(
			"ssd channels: create throughput fell from %.1f f/s at %d channel(s) to %.1f at %d — batched write-back should scale with channels",
			createFS[0], sweep[0], createFS[last], sweep[len(sweep)-1])
	}
	t.Notes = append(t.Notes, "gate: create throughput at 8 channels must not trail 1 channel")
	return t, nil
}

// ssdGCSweep measures the FTL in isolation: random single-page
// overwrites on a small pre-dirtied device at three over-provisioning
// levels. More spare area means the greedy collector finds emptier
// victims, so write amplification and erase counts must fall strictly
// as over-provisioning grows — the knob the matrix's "aged" cells sit
// at one end of.
func ssdGCSweep(cfg Config) (Table, error) {
	t := Table{
		ID:      "ssd-gc",
		Title:   "FTL garbage collection vs over-provisioning (random overwrites, pre-dirtied device)",
		Columns: []string{"over-provision", "write amp", "pages moved", "erases", "max erase", "mean write (us)"},
	}
	const capacity = 32 << 20
	writes := 2 * capacity / ssd.DefaultSpec().PageBytes
	if cfg.Quick {
		writes /= 4
	}
	var amps []float64
	var erases []int64
	for _, op := range []float64{0.05, 0.125, 0.25} {
		spec := ssd.DefaultSpec()
		spec.OverProvision = op
		spec.PreDirty = true
		clk := sim.NewClock()
		dev, err := ssd.NewMem(spec, clk, capacity)
		if err != nil {
			return t, err
		}
		rng := sim.NewRNG(cfg.Seed + 0x55d)
		buf := make([]byte, spec.PageBytes)
		pages := int64(capacity / spec.PageBytes)
		spp := int64(spec.PageBytes / 512)
		for i := 0; i < writes; i++ {
			if err := dev.WriteV(rng.Int63n(pages)*spp, [][]byte{buf}); err != nil {
				return t, err
			}
		}
		st := dev.FTL()
		amps = append(amps, st.WriteAmp)
		erases = append(erases, st.Erases)
		t.AddRow(fmt.Sprintf("%.1f%%", op*100), f2(st.WriteAmp),
			fmt.Sprintf("%d", st.Moved), fmt.Sprintf("%d", st.Erases),
			fmt.Sprintf("%d", st.MaxErase),
			f1(float64(clk.Now())/float64(writes)/1e3))
	}
	last := len(amps) - 1
	if amps[0] <= amps[last] || erases[0] <= erases[last] {
		return t, fmt.Errorf(
			"ssd gc: write amplification %.2f->%.2f and erases %d->%d across 0.05->0.25 over-provisioning — more spare area must mean strictly less GC work",
			amps[0], amps[last], erases[0], erases[last])
	}
	t.Notes = append(t.Notes,
		"gate: write amplification and erase count fall strictly as over-provisioning grows",
		fmt.Sprintf("%d random page overwrites per level on a pre-dirtied 32 MB device", writes))
	return t, nil
}

// ssdOrderedProbe checks the survival claim exactly: under synchronous
// metadata, an embedded create is one ordered write and a conventional
// create is two, and those counts are identical on disk and flash —
// the write stream belongs to the file system, not the device.
func ssdOrderedProbe(cfg Config) (Table, error) {
	t := Table{
		ID:      "ssd-ordered",
		Title:   "Ordered writes per create, synchronous metadata (exact)",
		Columns: []string{"variant", "disk", "ssd"},
	}
	for _, v := range pair() {
		want := int64(2)
		if v.Name == "C-FFS" {
			want = 1
		}
		var got [2]int64
		for bi, backend := range []string{"disk", "ssd"} {
			vcfg := cfg
			vcfg.Backend = backend
			vcfg.Aged = false
			fs, dev, err := v.Build(vcfg, core.ModeSync)
			if err != nil {
				return t, fmt.Errorf("%s/%s: %w", backend, v.Name, err)
			}
			// Warm the allocation path so the probe create is pure.
			if err := vfs.WriteFile(fs, "/warm", nil); err != nil {
				return t, err
			}
			dev.Disk().ResetStats()
			if err := vfs.WriteFile(fs, "/probe", nil); err != nil {
				return t, err
			}
			got[bi] = dev.Disk().Stats().Writes
		}
		t.AddRow(v.Name, fmt.Sprintf("%d", got[0]), fmt.Sprintf("%d", got[1]))
		if got[0] != want || got[1] != want {
			return t, fmt.Errorf(
				"%s: create issued %d ordered writes on disk and %d on ssd, want exactly %d on both — ordered-write counts must survive the backend change",
				v.Name, got[0], got[1], want)
		}
	}
	t.Notes = append(t.Notes,
		"gate (exact): embedded create = 1 ordered write, conventional = 2, identical across backends")
	return t, nil
}
