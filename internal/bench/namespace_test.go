package bench

import (
	"strings"
	"testing"
)

// The namespace experiment must hold its own gates at Quick scale (they
// return errors, so success is the assertion) and report non-degenerate
// path-cache activity and per-variant metrics for both scales.
func TestNamespaceExp(t *testing.T) {
	if testing.Short() {
		t.Skip("namespace experiment is slow")
	}
	cfg := quick()
	log := &MetricsLog{}
	cfg.Metrics = log
	tables, err := NamespaceExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	main := tables[0]
	if main.ID != "namespace" || len(main.Rows) != 3 {
		t.Fatalf("main table %q has %d rows", main.ID, len(main.Rows))
	}
	for _, row := range main.Rows {
		for _, cell := range row[1:] {
			if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") {
				t.Errorf("phase %s: bad cell %q", row[0], cell)
			}
		}
	}
	pc := tables[1]
	if pc.ID != "namespace-pathcache" || len(pc.Rows) != 2 {
		t.Fatalf("pathcache table %q has %d rows", pc.ID, len(pc.Rows))
	}
	for _, row := range pc.Rows {
		if row[3] == "0" {
			t.Errorf("scale %s recorded zero path-cache inserts", row[0])
		}
	}
	if len(log.Variants) != 2 {
		t.Fatalf("got %d variant records, want 2", len(log.Variants))
	}
	for _, v := range log.Variants {
		lk, ok := v.PerOp["lookup"]
		if !ok || lk.Ops == 0 {
			t.Errorf("variant %s: no lookup ops recorded", v.Variant)
		}
		if len(v.Phases) != 3 {
			t.Errorf("variant %s: %d phase records, want 3", v.Variant, len(v.Phases))
		}
	}
}
