// Package bench is the experiment harness: it reproduces every table
// and figure of the paper's evaluation (and the extra ablations listed
// in DESIGN.md) as plain-text tables, running each workload on freshly
// built simulated disks so results are deterministic in the seed.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced table or figure, rendered as text rows (for a
// figure, the rows are the plotted series).
type Table struct {
	ID      string     `json:"id"` // e.g. "table1", "fig4"
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// fx formats a ratio as "N.Nx".
func fx(v float64) string { return fmt.Sprintf("%.1fx", v) }
