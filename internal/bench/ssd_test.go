package bench

import (
	"strings"
	"testing"

	"cffs/internal/core"
	"cffs/internal/vfs"
)

// The SSD experiment's gates return errors, so a clean run is the
// assertion that every claim about where the C-FFS bet breaks held.
// This test additionally pins the report shape the CI matrix job and
// the BENCH_10.json baseline depend on.
func TestSSDExp(t *testing.T) {
	if testing.Short() {
		t.Skip("backend matrix is slow")
	}
	cfg := quick()
	log := &MetricsLog{}
	cfg.Metrics = log
	tables, err := SSDExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ssd-matrix", "ssd-ftl", "ssd-channels", "ssd-gc", "ssd-ordered"}
	if len(tables) != len(want) {
		t.Fatalf("got %d tables, want %d", len(tables), len(want))
	}
	for i, id := range want {
		if tables[i].ID != id {
			t.Errorf("table %d is %q, want %q", i, tables[i].ID, id)
		}
		for _, row := range tables[i].Rows {
			for _, cell := range row {
				if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") {
					t.Errorf("%s: bad cell %q in row %v", tables[i].ID, cell, row)
				}
			}
		}
	}
	if len(tables[0].Rows) != 4 {
		t.Fatalf("matrix has %d rows, want 4 (disk/ssd x fresh/aged)", len(tables[0].Rows))
	}
	if len(tables[1].Rows) != 6 {
		t.Fatalf("ftl table has %d rows, want 6 (2 states x 3 variants)", len(tables[1].Rows))
	}

	// One metrics record per (cell, variant).
	if len(log.Variants) != 12 {
		t.Fatalf("got %d variant records, want 12", len(log.Variants))
	}
	seen := make(map[string]bool)
	for _, v := range log.Variants {
		seen[v.Variant] = true
		if cr, ok := v.PerOp["create"]; !ok || cr.Ops == 0 {
			t.Errorf("variant %s: no create ops recorded", v.Variant)
		}
		if !strings.HasPrefix(v.Variant, "ssd-") {
			continue
		}
		// The ssd.* families must ride in the report, fresh and aged.
		if _, ok := v.Total.Counters["ssd.gc.runs"]; !ok {
			t.Errorf("variant %s: ssd.gc.runs missing", v.Variant)
		}
		if _, ok := v.Total.Gauges["ssd.writeamp_x100"]; !ok {
			t.Errorf("variant %s: ssd.writeamp_x100 missing", v.Variant)
		}
		if strings.HasPrefix(v.Variant, "ssd-aged/") {
			if v.Total.Counter("ssd.gc.runs") == 0 {
				t.Errorf("variant %s: aged cell never garbage-collected", v.Variant)
			}
			if wa := v.Total.Gauges["ssd.writeamp_x100"]; wa <= 100 {
				t.Errorf("variant %s: aged write amplification %d, want > 100", v.Variant, wa)
			}
		}
	}
	for _, name := range []string{"disk-fresh/C-FFS", "disk-aged/FFS", "ssd-fresh/conventional", "ssd-aged/C-FFS"} {
		if !seen[name] {
			t.Errorf("variant record %q missing (have %v)", name, len(seen))
		}
	}
}

// Aged builds must reset device statistics after the churn so measured
// phases start from zero, and the aged image must actually differ from
// a fresh one.
func TestAgedBuildResetsStats(t *testing.T) {
	cfg := quick().fill()
	cfg.Aged = true
	fs, dev, err := coreVariant("C-FFS", true, true).Build(cfg, core.ModeDelayed)
	if err != nil {
		t.Fatal(err)
	}
	if st := dev.Disk().Stats(); st.Requests != 0 {
		t.Errorf("aged build left %d requests on the device stats", st.Requests)
	}
	// The churn's survivors live under /aged.
	if _, err := vfs.Walk(fs, "/aged"); err != nil {
		t.Errorf("aged build has no /aged directory: %v", err)
	}
}
