package bench

import (
	"fmt"

	"cffs/internal/aging"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/sim"
	"cffs/internal/workload"
)

// AgingExp reproduces Section 4.3: the small-file benchmark run on file
// systems aged (Herrin93-style create/delete churn) to increasing
// utilizations. Fragmented free space starves explicit grouping of
// whole extents, so the C-FFS advantage shrinks with age — the paper's
// observed effect.
func AgingExp(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:    "aging",
		Title: "Small-file benchmark on aged file systems (delayed metadata)",
		Columns: []string{"utilization", "C-FFS create (f/s)", "C-FFS read (f/s)",
			"conv read (f/s)", "read speedup"},
	}
	utils := []float64{0.20, 0.50, 0.75}
	ops := 18000
	n := cfg.NumFiles / 4
	if cfg.Quick {
		utils = []float64{0.10, 0.45}
		ops = 6000
		n = cfg.NumFiles / 2
	}
	for _, u := range utils {
		var read [2]float64
		var create [2]float64
		for i, v := range pair() {
			fs, _, err := v.Build(cfg, core.ModeDelayed)
			if err != nil {
				return nil, err
			}
			if _, err := aging.Age(fs, aging.Config{
				Ops: ops, TargetUtil: u, Dirs: 40, MeanSize: 98304, Seed: cfg.Seed,
			}); err != nil {
				return nil, err
			}
			res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
				NumFiles: n, FileSize: cfg.FileSize, Dirs: max(4, cfg.Dirs/4), Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			create[i] = res[0].FilesPerSec()
			read[i] = res[1].FilesPerSec()
		}
		t.AddRow(fmt.Sprintf("%.0f%%", u*100),
			f1(create[1]), f1(read[1]), f1(read[0]), fx(read[1]/read[0]))
	}
	t.Notes = append(t.Notes, "pair order: index 0 conventional, 1 C-FFS")
	return []Table{t}, nil
}

// SchedulerAblation compares C-LOOK against FCFS under the small-file
// benchmark for both endpoints of the grid.
func SchedulerAblation(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "sched",
		Title:   "Scheduler ablation: create-phase and read-phase throughput (files/s)",
		Columns: []string{"variant", "scheduler", "create", "read", "delete"},
	}
	for _, schedName := range []string{"clook", "fcfs"} {
		for _, v := range pair() {
			c := cfg
			c.Scheduler = schedName
			fs, _, err := v.Build(c, core.ModeDelayed)
			if err != nil {
				return nil, err
			}
			res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
				NumFiles: c.NumFiles / 2, FileSize: c.FileSize, Dirs: c.Dirs, Seed: c.Seed,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(v.Name, schedName, f1(res[0].FilesPerSec()), f1(res[1].FilesPerSec()), f1(res[3].FilesPerSec()))
		}
	}
	return []Table{t}, nil
}

// CacheSweep measures read-phase sensitivity to buffer-cache size.
func CacheSweep(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "cache",
		Title:   "Read-phase throughput vs buffer cache size (files/s)",
		Columns: []string{"cache (MB)", "conventional", "C-FFS"},
	}
	for _, blocks := range []int{256, 1024, 4096} {
		var read [2]float64
		for i, v := range pair() {
			c := cfg
			c.CacheBlocks = blocks
			fs, _, err := v.Build(c, core.ModeDelayed)
			if err != nil {
				return nil, err
			}
			res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
				NumFiles: c.NumFiles / 2, FileSize: c.FileSize, Dirs: c.Dirs, Seed: c.Seed,
			})
			if err != nil {
				return nil, err
			}
			read[i] = res[1].FilesPerSec()
		}
		t.AddRow(f1(float64(blocks)*4/1024), f1(read[0]), f1(read[1]))
	}
	return []Table{t}, nil
}

// DriveSweep runs the benchmark on every drive in the catalog: the
// paper argues the techniques matter *more* on newer drives, whose
// bandwidth grew faster than their access times.
func DriveSweep(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	t := Table{
		ID:      "drives",
		Title:   "C-FFS read-phase speedup across drive generations",
		Columns: []string{"drive", "year", "conv read (f/s)", "C-FFS read (f/s)", "speedup"},
	}
	for _, spec := range disk.Catalog() {
		var read [2]float64
		for i, v := range pair() {
			c := cfg
			c.Drive = spec.Name
			fs, _, err := v.Build(c, core.ModeDelayed)
			if err != nil {
				return nil, err
			}
			res, err := workload.RunSmallFile(fs, workload.SmallFileConfig{
				NumFiles: c.NumFiles / 2, FileSize: c.FileSize, Dirs: c.Dirs, Seed: c.Seed,
			})
			if err != nil {
				return nil, err
			}
			read[i] = res[1].FilesPerSec()
		}
		t.AddRow(spec.Name, fmt.Sprintf("%d", spec.Year), f1(read[0]), f1(read[1]), fx(read[1]/read[0]))
	}
	return []Table{t}, nil
}

// mcSeed keeps deterministic seeds distinct per use without sharing a
// global generator.
var _ = sim.NewRNG
