package bench

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/ffs"
	"cffs/internal/obs"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/store"
	"cffs/internal/vfs"
	"cffs/internal/volume"
)

// Config controls experiment scale and substrate. The zero value plus
// fill() gives the paper-scale defaults; Quick shrinks everything for
// tests and -short runs while preserving the comparative shapes.
type Config struct {
	Backend     string // store provider, default "disk" (see internal/store)
	Drive       string // disk model, default the paper's ST31200
	Scheduler   string // "clook" (default) or "fcfs"
	CacheBlocks int    // buffer cache size, default 2048 (8 MB)

	NumFiles int // small-file benchmark file count, default 10000
	FileSize int // small-file size in bytes, default 1024
	Dirs     int // directories for the small-file benchmark, default 100

	Seed  uint64
	Quick bool // shrink workloads ~10x for fast runs

	// Registry, when non-nil, is wired into every file system a variant
	// builder mounts, so its counters cover the whole run. Experiments
	// that compare variants give each its own registry instead; see
	// Metrics on Config.
	Registry *obs.Registry `json:"-"`

	// Metrics, when non-nil, asks metrics-aware experiments to append
	// one record per (variant, registry snapshot) as they run. The
	// tables they return are unchanged.
	Metrics *MetricsLog `json:"-"`
}

func (c Config) fill() Config {
	if c.Drive == "" {
		c.Drive = "Seagate ST31200"
	}
	if c.Scheduler == "" {
		c.Scheduler = "clook"
	}
	if c.CacheBlocks == 0 {
		c.CacheBlocks = 2048
	}
	if c.NumFiles == 0 {
		c.NumFiles = 10000
	}
	if c.FileSize == 0 {
		c.FileSize = 1024
	}
	if c.Dirs == 0 {
		c.Dirs = 100
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Quick {
		c.NumFiles = min(c.NumFiles, 1500)
		c.Dirs = min(c.Dirs, 15)
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// newDevice builds a fresh simulated store + driver through the
// provider registry, so any registered backend (seek-bound disk,
// latency-bound object store, ...) can sit under every experiment.
func (c Config) newDevice() (*blockio.Device, error) {
	bk, err := store.Open(store.Config{
		Backend:   c.Backend,
		Drive:     c.Drive,
		Scheduler: c.Scheduler,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return bk.Device(), nil
}

// newStripedDevice builds an n-spindle striped volume over fresh
// in-memory member disks of the configured drive, wraps it in the
// driver, and attaches the per-spindle instruments to r (which may be
// nil). The returned Volume handle exposes per-disk stats and the
// split-request counter for the experiment's balance tables.
func (c Config) newStripedDevice(n int, r *obs.Registry) (*blockio.Device, *volume.Volume, error) {
	spec, err := disk.SpecByName(c.Drive)
	if err != nil {
		return nil, nil, err
	}
	s, ok := sched.ByName(c.Scheduler)
	if !ok {
		return nil, nil, fmt.Errorf("bench: unknown scheduler %q", c.Scheduler)
	}
	vol, err := volume.NewMem(spec, n, sim.NewClock(), volume.Config{})
	if err != nil {
		return nil, nil, err
	}
	vol.SetMetrics(r)
	return blockio.NewDevice(vol, s), vol, nil
}

// fsVariant names one file system configuration under comparison.
type fsVariant struct {
	Name  string
	Build func(c Config, mode core.Mode) (vfs.FileSystem, *blockio.Device, error)
}

// coreVariant builds a C-FFS-family file system.
func coreVariant(name string, embed, grouping bool) fsVariant {
	return fsVariant{
		Name: name,
		Build: func(c Config, mode core.Mode) (vfs.FileSystem, *blockio.Device, error) {
			dev, err := c.newDevice()
			if err != nil {
				return nil, nil, err
			}
			fs, err := core.Mkfs(dev, core.Options{
				EmbedInodes: embed,
				Grouping:    grouping,
				Mode:        mode,
				CacheBlocks: c.CacheBlocks,
				Metrics:     c.Registry,
			})
			if err != nil {
				return nil, nil, err
			}
			return fs, dev, nil
		},
	}
}

// ffsVariant builds the independent classic-FFS baseline.
func ffsVariant() fsVariant {
	return fsVariant{
		Name: "FFS",
		Build: func(c Config, mode core.Mode) (vfs.FileSystem, *blockio.Device, error) {
			dev, err := c.newDevice()
			if err != nil {
				return nil, nil, err
			}
			m := ffs.ModeSync
			if mode == core.ModeDelayed {
				m = ffs.ModeDelayed
			}
			fs, err := ffs.Mkfs(dev, ffs.Options{Mode: m, CacheBlocks: c.CacheBlocks, Metrics: c.Registry})
			if err != nil {
				return nil, nil, err
			}
			return fs, dev, nil
		},
	}
}

// grid is the paper's four-way comparison plus the independent FFS.
func grid() []fsVariant {
	return []fsVariant{
		coreVariant("conventional", false, false),
		coreVariant("embedded", true, false),
		coreVariant("grouping", false, true),
		coreVariant("C-FFS", true, true),
		ffsVariant(),
	}
}

// pair is just the endpoints: conventional vs C-FFS.
func pair() []fsVariant {
	return []fsVariant{
		coreVariant("conventional", false, false),
		coreVariant("C-FFS", true, true),
	}
}
