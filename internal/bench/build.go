package bench

import (
	"fmt"

	"cffs/internal/aging"
	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/ffs"
	"cffs/internal/obs"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/store"
	"cffs/internal/vfs"
	"cffs/internal/volume"
)

// Config controls experiment scale and substrate. The zero value plus
// fill() gives the paper-scale defaults; Quick shrinks everything for
// tests and -short runs while preserving the comparative shapes.
type Config struct {
	Backend     string // store provider, default "disk" (see internal/store)
	Drive       string // disk model, default the paper's ST31200
	Scheduler   string // "clook" (default) or "fcfs"
	CacheBlocks int    // buffer cache size, default 2048 (8 MB)
	Channels    int    // ssd channel-count override; 0 keeps the backend default

	// Aged runs every variant build through internal/aging before the
	// measured workload: deterministic create/delete churn fragments the
	// free space (the file-system half of an aged image) and, on the ssd
	// backend, the FTL opens pre-dirtied so garbage collection runs at
	// steady state from the first write (the device half). Fresh-vs-aged
	// is the second axis of the experiment matrix; every experiment
	// honors it because it acts at the variant-build seam.
	Aged bool

	NumFiles int // small-file benchmark file count, default 10000
	FileSize int // small-file size in bytes, default 1024
	Dirs     int // directories for the small-file benchmark, default 100

	Seed  uint64
	Quick bool // shrink workloads ~10x for fast runs

	// Registry, when non-nil, is wired into every file system a variant
	// builder mounts, so its counters cover the whole run. Experiments
	// that compare variants give each its own registry instead; see
	// Metrics on Config.
	Registry *obs.Registry `json:"-"`

	// Metrics, when non-nil, asks metrics-aware experiments to append
	// one record per (variant, registry snapshot) as they run. The
	// tables they return are unchanged.
	Metrics *MetricsLog `json:"-"`
}

func (c Config) fill() Config {
	if c.Drive == "" {
		c.Drive = "Seagate ST31200"
	}
	if c.Scheduler == "" {
		c.Scheduler = "clook"
	}
	if c.CacheBlocks == 0 {
		c.CacheBlocks = 2048
	}
	if c.NumFiles == 0 {
		c.NumFiles = 10000
	}
	if c.FileSize == 0 {
		c.FileSize = 1024
	}
	if c.Dirs == 0 {
		c.Dirs = 100
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Quick {
		c.NumFiles = min(c.NumFiles, 1500)
		c.Dirs = min(c.Dirs, 15)
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// newDevice builds a fresh simulated store + driver through the
// provider registry, so any registered backend (seek-bound disk,
// latency-bound object store, ...) can sit under every experiment.
func (c Config) newDevice() (*blockio.Device, error) {
	bk, err := store.Open(store.Config{
		Backend:   c.Backend,
		Drive:     c.Drive,
		Scheduler: c.Scheduler,
		Channels:  c.Channels,
		SSDAged:   c.Aged,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	dev := bk.Device()
	// Backends with device-level instruments (the ssd's FTL counters)
	// record into the same registry as the file system above them.
	if c.Registry != nil {
		if m, ok := dev.Disk().(interface{ SetMetrics(*obs.Registry) }); ok {
			m.SetMetrics(c.Registry)
		}
	}
	return dev, nil
}

// agingConfig is the deterministic churn an Aged build runs before its
// measured workload. The scale is fixed (not Quick-dependent) so "aged"
// names the same file-system state no matter how the measurement after
// it is scaled.
func (c Config) agingConfig() aging.Config {
	return aging.Config{
		Ops: 6000, TargetUtil: 0.15, Dirs: 24, MeanSize: 32768, Seed: c.Seed,
	}
}

// ageIfConfigured applies the Aged dimension to a freshly built file
// system: churn to steady state, then reset the device statistics so
// the measured phases start from zero — the fragmentation stays, the
// aging traffic does not pollute the measurement.
func (c Config) ageIfConfigured(fs vfs.FileSystem, dev *blockio.Device) error {
	if !c.Aged {
		return nil
	}
	if _, err := aging.Age(fs, c.agingConfig()); err != nil {
		return fmt.Errorf("bench: aging: %w", err)
	}
	dev.Disk().ResetStats()
	return nil
}

// newStripedDevice builds an n-spindle striped volume over fresh
// in-memory member disks of the configured drive, wraps it in the
// driver, and attaches the per-spindle instruments to r (which may be
// nil). The returned Volume handle exposes per-disk stats and the
// split-request counter for the experiment's balance tables.
func (c Config) newStripedDevice(n int, r *obs.Registry) (*blockio.Device, *volume.Volume, error) {
	spec, err := disk.SpecByName(c.Drive)
	if err != nil {
		return nil, nil, err
	}
	s, ok := sched.ByName(c.Scheduler)
	if !ok {
		return nil, nil, fmt.Errorf("bench: unknown scheduler %q", c.Scheduler)
	}
	vol, err := volume.NewMem(spec, n, sim.NewClock(), volume.Config{})
	if err != nil {
		return nil, nil, err
	}
	vol.SetMetrics(r)
	return blockio.NewDevice(vol, s), vol, nil
}

// fsVariant names one file system configuration under comparison.
type fsVariant struct {
	Name  string
	Build func(c Config, mode core.Mode) (vfs.FileSystem, *blockio.Device, error)
}

// coreVariant builds a C-FFS-family file system.
func coreVariant(name string, embed, grouping bool) fsVariant {
	return fsVariant{
		Name: name,
		Build: func(c Config, mode core.Mode) (vfs.FileSystem, *blockio.Device, error) {
			dev, err := c.newDevice()
			if err != nil {
				return nil, nil, err
			}
			fs, err := core.Mkfs(dev, core.Options{
				EmbedInodes: embed,
				Grouping:    grouping,
				Mode:        mode,
				CacheBlocks: c.CacheBlocks,
				Metrics:     c.Registry,
			})
			if err != nil {
				return nil, nil, err
			}
			if err := c.ageIfConfigured(fs, dev); err != nil {
				return nil, nil, err
			}
			return fs, dev, nil
		},
	}
}

// ffsVariant builds the independent classic-FFS baseline.
func ffsVariant() fsVariant {
	return fsVariant{
		Name: "FFS",
		Build: func(c Config, mode core.Mode) (vfs.FileSystem, *blockio.Device, error) {
			dev, err := c.newDevice()
			if err != nil {
				return nil, nil, err
			}
			m := ffs.ModeSync
			if mode == core.ModeDelayed {
				m = ffs.ModeDelayed
			}
			fs, err := ffs.Mkfs(dev, ffs.Options{Mode: m, CacheBlocks: c.CacheBlocks, Metrics: c.Registry})
			if err != nil {
				return nil, nil, err
			}
			if err := c.ageIfConfigured(fs, dev); err != nil {
				return nil, nil, err
			}
			return fs, dev, nil
		},
	}
}

// grid is the paper's four-way comparison plus the independent FFS.
func grid() []fsVariant {
	return []fsVariant{
		coreVariant("conventional", false, false),
		coreVariant("embedded", true, false),
		coreVariant("grouping", false, true),
		coreVariant("C-FFS", true, true),
		ffsVariant(),
	}
}

// pair is just the endpoints: conventional vs C-FFS.
func pair() []fsVariant {
	return []fsVariant{
		coreVariant("conventional", false, false),
		coreVariant("C-FFS", true, true),
	}
}
