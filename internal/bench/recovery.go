package bench

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/fault/harness"
	"cffs/internal/fsck"
	"cffs/internal/obs"
)

// RecoveryExp measures crash recovery: for each file system the
// crash-enumeration harness reconstructs the image at every write
// boundary of the small-file workload (plus sampled torn-write and
// write-reorder states), repairs each with fsck, and times the repair
// on the simulated disk. The table reports coverage, repair outcomes,
// and recovery time — the cost side of the paper's argument that
// update ordering (not logging) keeps metadata recoverable.
//
// With Config.Metrics attached, each variant contributes a registry
// snapshot holding crash.* and fsck.* counters, so `cffsbench -exp
// recovery -metrics-json` exposes injected-state and repair-action
// counts machine-readably.
func RecoveryExp(cfg Config) ([]Table, error) {
	cfg = cfg.fill()
	type variant struct {
		name string
		mk   func() harness.Config
	}
	variants := []variant{
		{"C-FFS embed+group sync", func() harness.Config {
			return harness.CFFSConfig(core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeSync}, true)
		}},
		{"C-FFS embed+group delayed", func() harness.Config {
			return harness.CFFSConfig(core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed}, false)
		}},
		{"FFS sync", harness.FFSConfig},
		{"LFS", harness.LFSConfig},
	}

	t := Table{
		ID:    "recovery",
		Title: "Crash-point enumeration and recovery time (small-file workload)",
		Columns: []string{"file system", "writes", "states", "clean", "repaired",
			"unrepairable", "lost ops", "mean recovery (ms)", "max (ms)"},
	}
	for _, v := range variants {
		hc := v.mk()
		hc.Seed = int64(cfg.Seed)
		if cfg.Quick {
			hc.MaxCrashPoints = 12
			hc.TornSamples = 4
			hc.ReorderSamples = 4
		}

		reg := obs.NewRegistry()
		inner := hc.Fsck
		hc.Fsck = func(dev *blockio.Device, repair bool) (*fsck.Report, error) {
			rep, err := inner(dev, repair)
			if err == nil {
				reg.Counter("fsck.runs").Inc()
				reg.Counter("fsck.problems").Add(int64(len(rep.Problems)))
				reg.Counter("fsck.repairs").Add(int64(rep.RepairsMade))
				reg.Counter("fsck.unrepairable").Add(int64(len(rep.Unrepairable)))
			}
			return rep, err
		}

		res, _, err := harness.Run(hc)
		if err != nil {
			return nil, fmt.Errorf("recovery: %s: %w", v.name, err)
		}
		reg.Counter("crash.states.cut").Add(int64(res.CrashPoints))
		reg.Counter("crash.states.torn").Add(int64(res.TornStates))
		reg.Counter("crash.states.reorder").Add(int64(res.ReorderStates))
		reg.Counter("crash.repaired").Add(int64(res.Repaired))
		reg.Counter("crash.unrepaired").Add(int64(len(res.Failures)))
		reg.Counter("crash.durability.violations").Add(int64(len(res.DurabilityViolations)))
		reg.Gauge("crash.recovery.mean_ns").Set(res.MeanRecoveryNs())
		reg.Gauge("crash.recovery.max_ns").Set(res.RecoveryNsMax)
		cfg.Metrics.add(VariantMetrics{Variant: v.name, Total: reg.Snapshot()})

		t.AddRow(v.name,
			fmt.Sprintf("%d", res.Writes),
			fmt.Sprintf("%d", res.States()),
			fmt.Sprintf("%d", res.Clean),
			fmt.Sprintf("%d", res.Repaired),
			fmt.Sprintf("%d", len(res.Failures)),
			fmt.Sprintf("%d", len(res.DurabilityViolations)),
			f1(float64(res.MeanRecoveryNs())/1e6),
			f1(float64(res.RecoveryNsMax)/1e6))
	}
	t.Notes = append(t.Notes,
		"states = every write boundary + sampled torn and reorder states; unrepairable must be 0",
		"LFS recovers by checkpoint mount (no namespace walk), hence the small constant recovery time")
	return []Table{t}, nil
}
