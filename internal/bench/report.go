package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"cffs/internal/obs"
	"cffs/internal/workload"
)

// MetricsLog collects per-variant metrics from metrics-aware
// experiments. Attach one via Config.Metrics; experiments that compare
// file system variants then mount each variant with its own fresh
// registry and append a record here as they finish. Experiments that
// predate the registry simply ignore it, so the log may come back
// empty.
type MetricsLog struct {
	Variants []VariantMetrics `json:"variants"`
}

// add appends one variant's record. Safe on a nil log, so experiments
// can call it unconditionally.
func (l *MetricsLog) add(v VariantMetrics) {
	if l != nil {
		l.Variants = append(l.Variants, v)
	}
}

// VariantMetrics is everything the registry saw while one file system
// variant ran one experiment: the whole-run snapshot, per-phase deltas
// when the workload reports them, and the derived per-operation disk
// request statistics the paper argues about.
type VariantMetrics struct {
	Variant string            `json:"variant"`
	Total   obs.Snapshot      `json:"total"`
	Phases  []PhaseMetrics    `json:"phases,omitempty"`
	PerOp   map[string]OpStat `json:"per_op,omitempty"`
}

// PhaseMetrics is the registry delta covering one benchmark phase.
type PhaseMetrics struct {
	Name    string       `json:"name"`
	Metrics obs.Snapshot `json:"metrics"`
}

// OpStat is the derived per-operation view of a snapshot: how many
// times an operation ran at the vfs boundary against how much disk
// traffic was attributed to it. RequestsPerOp is the paper's "disk
// requests per small-file operation" quantity.
type OpStat struct {
	Ops           int64   `json:"ops"`
	DiskRequests  int64   `json:"disk_requests"`
	DiskReads     int64   `json:"disk_reads"`
	DiskWrites    int64   `json:"disk_writes"`
	Sectors       int64   `json:"sectors"`
	RequestsPerOp float64 `json:"requests_per_op"`
}

// PerOp reduces a snapshot to per-operation disk statistics, keyed by
// operation name. Operations that neither ran nor received traffic are
// omitted; requests the op-context could not attribute appear under
// "none" (with Ops == 0).
func PerOp(s obs.Snapshot) map[string]OpStat {
	out := make(map[string]OpStat)
	for op := obs.OpNone; op < obs.NumOps; op++ {
		name := op.String()
		st := OpStat{
			Ops:          s.Counter("ops." + name),
			DiskRequests: s.Counter("disk.requests." + name),
			DiskReads:    s.Counter("disk.reads." + name),
			DiskWrites:   s.Counter("disk.writes." + name),
			Sectors:      s.Counter("disk.sectors." + name),
		}
		if st.Ops == 0 && st.DiskRequests == 0 {
			continue
		}
		if st.Ops > 0 {
			st.RequestsPerOp = float64(st.DiskRequests) / float64(st.Ops)
		}
		out[name] = st
	}
	return out
}

// variantMetricsFrom assembles a VariantMetrics from a whole-run
// snapshot and the workload's per-phase results.
func variantMetricsFrom(name string, total obs.Snapshot, phases []workload.PhaseResult) VariantMetrics {
	v := VariantMetrics{Variant: name, Total: total, PerOp: PerOp(total)}
	for _, p := range phases {
		v.Phases = append(v.Phases, PhaseMetrics{Name: p.Name, Metrics: p.Metrics})
	}
	return v
}

// Report is the machine-readable result of one experiment run: the
// rendered tables plus, for metrics-aware experiments, the per-variant
// registry contents. It is what `cffsbench -metrics-json` writes.
type Report struct {
	Experiment string           `json:"experiment"`
	Config     Config           `json:"config"`
	Tables     []Table          `json:"tables"`
	Variants   []VariantMetrics `json:"variants,omitempty"`
}

// RunReport runs one experiment with metrics capture enabled and
// returns the report.
func RunReport(name string, cfg Config) (Report, error) {
	e, err := ByName(name)
	if err != nil {
		return Report{}, err
	}
	log := &MetricsLog{}
	cfg.Metrics = log
	tables, err := e.Run(cfg)
	if err != nil {
		return Report{}, fmt.Errorf("%s: %w", e.Name, err)
	}
	return Report{
		Experiment: e.Name,
		Config:     cfg.fill(),
		Tables:     tables,
		Variants:   log.Variants,
	}, nil
}

// WriteJSON emits the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
