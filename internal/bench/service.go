package bench

import (
	"fmt"

	"cffs/internal/core"
	"cffs/internal/obs"
	"cffs/internal/srv"
	"cffs/internal/workload"
)

// ServiceExp benchmarks the multi-tenant wire-protocol front end
// (internal/srv) over the loopback transport. Two phases:
//
//  1. uniform — four tenants, 128 sessions each (512 concurrent
//     connections), all issuing small-file reads through pre-resolved
//     fids. Reports per-tenant throughput and p50/p95/p99 latency, the
//     service-level view of the paper's small-file argument.
//  2. isolation — a victim tenant's small reads against an aggressor's
//     readdir+stat storm, under three configurations: victim alone,
//     shared service with global FIFO dispatch, and shared service with
//     fair-share dispatch. The ratio column shows what fair-share buys.
//
// Latencies are wall-clock (the wire front end runs on real goroutines;
// only the disk underneath is simulated), so absolute numbers depend on
// the host — the comparative shape is the result.
func ServiceExp(cfg Config) ([]Table, error) {
	c := cfg.fill()

	sessions, ops := 128, 40
	if c.Quick {
		sessions, ops = 16, 25
	}
	var loads []workload.ServiceLoad
	for i := 0; i < 4; i++ {
		loads = append(loads, workload.ServiceLoad{
			Tenant:   fmt.Sprintf("t%d", i),
			Sessions: sessions,
			Ops:      ops,
			Kind:     workload.SvcRead,
			Dirs:     8,
			Files:    32,
			FileSize: c.FileSize,
		})
	}
	res, reg, err := c.runService(srv.QoS{FairShare: true}, loads)
	if err != nil {
		return nil, fmt.Errorf("uniform phase: %w", err)
	}
	cfg.Metrics.add(VariantMetrics{Variant: "uniform", Total: reg.Snapshot(), PerOp: PerOp(reg.Snapshot())})

	uni := Table{
		ID:      "service-uniform",
		Title:   fmt.Sprintf("multi-tenant service: %d sessions across %d tenants (loopback)", res.TotalSessions(), len(loads)),
		Columns: []string{"tenant", "kind", "sessions", "ops", "errs", "ops/s", "p50 (us)", "p95 (us)", "p99 (us)"},
		Notes: []string{
			"each session owns one connection and pre-resolved fids; every op is one tagged RPC",
			"latency is wall-clock through protocol + QoS + fs; the disk underneath is simulated",
		},
	}
	for _, tr := range res.Tenants {
		uni.AddRow(tr.Tenant, tr.Kind,
			fmt.Sprintf("%d", tr.Sessions),
			fmt.Sprintf("%d", tr.Ops),
			fmt.Sprintf("%d", tr.Errors),
			f1(float64(tr.Ops)/res.WallSeconds),
			f1(tr.P(0.50)/1e3), f1(tr.P(0.95)/1e3), f1(tr.P(0.99)/1e3))
	}

	iso, err := c.serviceIsolation(cfg.Metrics)
	if err != nil {
		return nil, fmt.Errorf("isolation phase: %w", err)
	}
	return []Table{uni, iso}, nil
}

// serviceIsolation runs the victim/aggressor scenarios on fresh stacks
// and renders the victim's latency under each.
func (c Config) serviceIsolation(log *MetricsLog) (Table, error) {
	vSessions, aSessions, ops := 8, 32, 400
	if c.Quick {
		vSessions, aSessions, ops = 4, 12, 120
	}
	victim := workload.ServiceLoad{Tenant: "victim", Sessions: vSessions, Ops: ops,
		Kind: workload.SvcRead, Dirs: 4, Files: 16, FileSize: c.FileSize}
	aggressor := workload.ServiceLoad{Tenant: "aggr", Sessions: aSessions, Ops: ops,
		Kind: workload.SvcScan, Dirs: 4, Files: 16, FileSize: c.FileSize}

	scenarios := []struct {
		name  string
		qos   srv.QoS
		loads []workload.ServiceLoad
	}{
		{"victim-solo", srv.QoS{Workers: 4}, []workload.ServiceLoad{victim}},
		{"shared-fifo", srv.QoS{Workers: 4}, []workload.ServiceLoad{victim, aggressor}},
		{"fair-share", srv.QoS{Workers: 4, FairShare: true}, []workload.ServiceLoad{victim, aggressor}},
	}

	t := Table{
		ID:      "service-isolation",
		Title:   "QoS isolation: victim small reads vs aggressor metadata storm",
		Columns: []string{"scenario", "victim p50 (us)", "victim p95 (us)", "victim p99 (us)", "p99 vs solo"},
		Notes: []string{
			fmt.Sprintf("victim: %d read sessions; aggressor: %d readdir+stat sessions; 4 workers", vSessions, aSessions),
			"fair-share round-robins dispatch across tenants; fifo is the no-isolation baseline",
			"the ratio uses max(solo, 250us) as its base to absorb host scheduling jitter",
		},
	}
	var solo float64
	for _, sc := range scenarios {
		res, reg, err := c.runService(sc.qos, sc.loads)
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", sc.name, err)
		}
		log.add(VariantMetrics{Variant: "isolation-" + sc.name, Total: reg.Snapshot(), PerOp: PerOp(reg.Snapshot())})
		var vt workload.ServiceTenantResult
		for _, tr := range res.Tenants {
			if tr.Tenant == victim.Tenant {
				vt = tr
			}
			if tr.Errors > 0 {
				return Table{}, fmt.Errorf("%s: tenant %s saw %d op errors", sc.name, tr.Tenant, tr.Errors)
			}
		}
		p99 := vt.P(0.99)
		ratio := "-"
		if sc.name == "victim-solo" {
			solo = p99
			if solo < 250e3 {
				solo = 250e3 // noise floor, same as the CI gate
			}
		} else {
			ratio = fx(p99 / solo)
		}
		t.AddRow(sc.name, f1(vt.P(0.50)/1e3), f1(vt.P(0.95)/1e3), f1(p99/1e3), ratio)
	}
	return t, nil
}

// runService mounts a fresh C-FFS (delayed mode), fronts it with a
// server sharing one registry with the fs (so srv.* tenant= families
// and the core's disk counters land in the same snapshot), populates
// each tenant's tree, and drives the loads to completion over loopback.
func (c Config) runService(qos srv.QoS, loads []workload.ServiceLoad) (workload.ServiceResult, *obs.Registry, error) {
	reg := obs.NewRegistry()
	dev, err := c.newDevice()
	if err != nil {
		return workload.ServiceResult{}, nil, err
	}
	fs, err := core.Mkfs(dev, core.Options{
		EmbedInodes: true,
		Grouping:    true,
		Mode:        core.ModeDelayed,
		CacheBlocks: c.CacheBlocks,
		Metrics:     reg,
	})
	if err != nil {
		return workload.ServiceResult{}, nil, err
	}
	s := srv.New(srv.Config{FS: fs, Registry: reg, QoS: qos})
	for _, l := range loads {
		if err := s.AddTenant(l.Tenant); err != nil {
			return workload.ServiceResult{}, nil, err
		}
		if err := workload.PrepareServiceTree(fs, l, c.Seed); err != nil {
			return workload.ServiceResult{}, nil, err
		}
	}
	lb := srv.NewLoopback()
	go s.Serve(lb)
	res, err := workload.RunService(workload.ServiceConfig{Dial: lb.Dial, Loads: loads, Seed: c.Seed})
	lb.Close()
	s.Close()
	if err != nil {
		return workload.ServiceResult{}, nil, err
	}
	return res, reg, nil
}
