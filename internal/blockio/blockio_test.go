package blockio

import (
	"bytes"
	"testing"

	"cffs/internal/disk"
	"cffs/internal/sched"
	"cffs/internal/sim"
)

func newDev(t *testing.T, s sched.Scheduler) *Device {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return NewDevice(d, s)
}

func block(fill byte) []byte {
	return bytes.Repeat([]byte{fill}, BlockSize)
}

func TestBlockRoundTrip(t *testing.T) {
	dev := newDev(t, sched.CLook{})
	w := block(0x5A)
	if err := dev.WriteBlock(100, w); err != nil {
		t.Fatal(err)
	}
	g := make([]byte, BlockSize)
	if err := dev.ReadBlock(100, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatal("block round trip corrupted data")
	}
}

func TestScatterGatherIsOneRequest(t *testing.T) {
	dev := newDev(t, sched.CLook{})
	bufs := [][]byte{block(1), block(2), block(3), block(4)}
	if err := dev.WriteBlocks(50, bufs); err != nil {
		t.Fatal(err)
	}
	if got := dev.Disk().Stats().Requests; got != 1 {
		t.Fatalf("4-block gather write used %d requests, want 1", got)
	}
	got := [][]byte{make([]byte, BlockSize), make([]byte, BlockSize),
		make([]byte, BlockSize), make([]byte, BlockSize)}
	if err := dev.ReadBlocks(50, got); err != nil {
		t.Fatal(err)
	}
	if got := dev.Disk().Stats().Requests; got != 2 {
		t.Fatalf("4-block scatter read used %d extra requests, want 1", got-1)
	}
	for i := range bufs {
		if !bytes.Equal(got[i], bufs[i]) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

func TestSubmitMergesAdjacent(t *testing.T) {
	dev := newDev(t, sched.CLook{})
	reqs := []Req{
		{Write: true, Block: 12, Bufs: [][]byte{block(3)}},
		{Write: true, Block: 10, Bufs: [][]byte{block(1)}},
		{Write: true, Block: 11, Bufs: [][]byte{block(2)}},
		{Write: true, Block: 500, Bufs: [][]byte{block(9)}},
	}
	if err := dev.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	// 10,11,12 merge into one request; 500 stands alone.
	if got := dev.Disk().Stats().Requests; got != 2 {
		t.Fatalf("Submit issued %d requests, want 2", got)
	}
	g := make([]byte, BlockSize)
	for blk, fill := range map[int64]byte{10: 1, 11: 2, 12: 3, 500: 9} {
		if err := dev.ReadBlock(blk, g); err != nil {
			t.Fatal(err)
		}
		if g[0] != fill || g[BlockSize-1] != fill {
			t.Fatalf("block %d holds %d, want %d", blk, g[0], fill)
		}
	}
}

func TestSubmitRespectsTransferCap(t *testing.T) {
	dev := newDev(t, sched.CLook{})
	var reqs []Req
	for i := int64(0); i < 2*MaxTransferBlocks; i++ {
		reqs = append(reqs, Req{Write: true, Block: 1000 + i, Bufs: [][]byte{block(byte(i))}})
	}
	if err := dev.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	if got := dev.Disk().Stats().Requests; got != 2 {
		t.Fatalf("32 adjacent blocks issued %d requests, want 2 (64KB cap)", got)
	}
}

func TestSubmitDoesNotMergeAcrossDirection(t *testing.T) {
	dev := newDev(t, sched.CLook{})
	// Pre-write so reads have defined content.
	if err := dev.WriteBlocks(20, [][]byte{block(7), block(8)}); err != nil {
		t.Fatal(err)
	}
	dev.Disk().ResetStats()
	rbuf := make([]byte, BlockSize)
	reqs := []Req{
		{Write: false, Block: 20, Bufs: [][]byte{rbuf}},
		{Write: true, Block: 21, Bufs: [][]byte{block(9)}},
	}
	if err := dev.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	s := dev.Disk().Stats()
	if s.Requests != 2 || s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("mixed-direction merge: %+v", s)
	}
	if rbuf[0] != 7 {
		t.Fatalf("read block holds %d, want 7", rbuf[0])
	}
}

// C-LOOK should service a random batch substantially faster than FCFS —
// the reason the paper's driver used it.
func TestCLookBeatsFCFSOnRandomBatch(t *testing.T) {
	run := func(s sched.Scheduler) int64 {
		dev := newDev(t, s)
		rng := sim.NewRNG(21)
		var reqs []Req
		for i := 0; i < 200; i++ {
			reqs = append(reqs, Req{
				Write: true,
				Block: rng.Int63n(dev.Blocks() - 1),
				Bufs:  [][]byte{block(byte(i))},
			})
		}
		if err := dev.Submit(reqs); err != nil {
			t.Fatal(err)
		}
		return dev.Disk().Clock().Now()
	}
	fcfs := run(sched.FCFS{})
	clook := run(sched.CLook{})
	if clook >= fcfs*3/4 {
		t.Fatalf("C-LOOK %.1fms vs FCFS %.1fms; expected a clear win",
			float64(clook)/1e6, float64(fcfs)/1e6)
	}
}

func TestRequestValidation(t *testing.T) {
	dev := newDev(t, sched.CLook{})
	if err := dev.WriteBlock(-1, block(0)); err == nil {
		t.Fatal("negative block accepted")
	}
	if err := dev.WriteBlock(dev.Blocks(), block(0)); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if err := dev.WriteBlocks(0, nil); err == nil {
		t.Fatal("empty request accepted")
	}
	if err := dev.WriteBlocks(0, [][]byte{make([]byte, 100)}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := dev.Submit([]Req{{Write: true, Block: -5, Bufs: [][]byte{block(0)}}}); err == nil {
		t.Fatal("Submit accepted invalid request")
	}
}

func TestSubmitEmptyBatch(t *testing.T) {
	dev := newDev(t, sched.CLook{})
	if err := dev.Submit(nil); err != nil {
		t.Fatal(err)
	}
	if dev.Disk().Stats().Requests != 0 {
		t.Fatal("empty batch touched the disk")
	}
}
