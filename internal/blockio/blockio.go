// Package blockio is the block device driver sitting between the file
// systems and the simulated disk. It converts block-sized transfers to
// sector runs, schedules queued batches (C-LOOK, like the paper's
// NetBSD-derived driver), merges physically adjacent transfers up to the
// MAXPHYS-era 64 KB cap, and supports scatter/gather so one disk request
// can fill or drain many buffer-cache blocks.
package blockio

import (
	"fmt"
	"sync"

	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sched"
	"cffs/internal/sim"
)

// BlockSize is the file system block size. The paper's C-FFS uses 4 KB
// allocation units with no fragments; everything above this layer counts
// in these blocks.
const BlockSize = 4096

// SectorsPerBlock is the sector run length of one block.
const SectorsPerBlock = BlockSize / disk.SectorSize

// MaxTransferBlocks caps a single merged disk request at 16 blocks
// (64 KB), matching the MAXPHYS transfer limit of mid-90s BSD drivers —
// and, not coincidentally, the explicit-grouping group size.
const MaxTransferBlocks = 16

// Req is one queued block request: a contiguous run of blocks starting at
// Block, with one buffer per block (scatter/gather).
type Req struct {
	Write bool
	Block int64
	Bufs  [][]byte
}

func (r *Req) blocks() int { return len(r.Bufs) }

// Target is what a Device drives: a single simulated disk or a striped
// multi-disk volume (internal/volume) presenting one logical sector
// address space. *disk.Disk satisfies it as-is; everything above the
// driver talks to whichever is plugged in through this interface.
type Target interface {
	Sectors() int64
	Clock() *sim.Clock
	Stats() disk.Stats
	ResetStats()
	ReadV(lba int64, bufs [][]byte) error
	WriteV(lba int64, bufs [][]byte) error
	WriteOrdered(lba int64, buf []byte) error
	SetTrace(buf *[]disk.TraceEntry)
	SetTraceFunc(fn func(disk.TraceEntry))
	SetOpSource(fn func() (kind uint8, id uint64))
	SetMetricsFunc(fn func(disk.TraceEntry))
	Close() error
}

// BatchSubmitter is a Target that schedules and services whole request
// batches itself. Submit delegates to it when present: a striped volume
// partitions the batch per spindle, runs each spindle's own C-LOOK
// sweep, and services the spindles in parallel on the simulated clock —
// decisions the single-queue sweep below cannot make. It returns the
// number of merged disk requests actually issued, for the driver's
// merge-factor counters.
type BatchSubmitter interface {
	SubmitBlocks(reqs []Req) (issued int, err error)
}

// Device is a block device over a simulated disk (or volume). It is safe
// for concurrent use: single-block transfers serialize at the target, and
// a queued batch (Submit) holds the device lock for its whole sweep so
// the scheduler's C-LOOK order is not interleaved with other traffic.
type Device struct {
	tgt Target
	sch sched.Scheduler

	mu      sync.Mutex // guards lastLBA and batch submission
	lastLBA int64

	// Submit merge observers; nil (no-op) until SetMetrics attaches a
	// registry. issued/reqs is the driver's merge factor.
	batches *obs.Counter // Submit calls
	reqs    *obs.Counter // block requests handed to Submit
	issued  *obs.Counter // merged disk requests actually issued
}

// NewDevice wraps a disk or volume with a scheduler.
func NewDevice(t Target, s sched.Scheduler) *Device {
	return &Device{tgt: t, sch: s}
}

// Blocks returns the number of whole blocks on the device.
func (dev *Device) Blocks() int64 { return dev.tgt.Sectors() / SectorsPerBlock }

// Disk exposes the underlying target (for stats and the clock). The name
// predates multi-disk volumes; the result may be a *disk.Disk or a
// *volume.Volume.
func (dev *Device) Disk() Target { return dev.tgt }

// Scheduler returns the active scheduler.
func (dev *Device) Scheduler() sched.Scheduler { return dev.sch }

// SetMetrics attaches a registry for the driver's merge counters:
// blockio.submit.batches, blockio.submit.reqs, blockio.submit.issued.
// Call it before concurrent use.
func (dev *Device) SetMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	dev.batches = r.Counter("blockio.submit.batches")
	dev.reqs = r.Counter("blockio.submit.reqs")
	dev.issued = r.Counter("blockio.submit.issued")
}

// ReadBlocks issues one disk request reading len(bufs) contiguous blocks
// starting at block, scattering them into bufs.
func (dev *Device) ReadBlocks(block int64, bufs [][]byte) error {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.readBlocks(block, bufs)
}

// readBlocks is ReadBlocks with dev.mu held.
func (dev *Device) readBlocks(block int64, bufs [][]byte) error {
	if err := dev.check(block, bufs); err != nil {
		return err
	}
	lba := block * SectorsPerBlock
	dev.lastLBA = lba + int64(len(bufs)*SectorsPerBlock)
	return dev.tgt.ReadV(lba, bufs)
}

// WriteBlocks issues one disk request writing len(bufs) contiguous blocks
// starting at block, gathered from bufs.
func (dev *Device) WriteBlocks(block int64, bufs [][]byte) error {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.writeBlocks(block, bufs)
}

// writeBlocks is WriteBlocks with dev.mu held.
func (dev *Device) writeBlocks(block int64, bufs [][]byte) error {
	if err := dev.check(block, bufs); err != nil {
		return err
	}
	lba := block * SectorsPerBlock
	dev.lastLBA = lba + int64(len(bufs)*SectorsPerBlock)
	return dev.tgt.WriteV(lba, bufs)
}

// WriteBlockOrdered writes a single block as an ordering barrier: all
// writes submitted before it are durable before it, and it is durable
// before anything submitted after. This is the synchronous metadata
// write of the integrity argument (cache.WriteSync issues it); the
// explicit edge lets a fault-injecting store bound crash reordering.
func (dev *Device) WriteBlockOrdered(block int64, buf []byte) error {
	dev.mu.Lock()
	defer dev.mu.Unlock()
	if err := dev.check(block, [][]byte{buf}); err != nil {
		return err
	}
	lba := block * SectorsPerBlock
	dev.lastLBA = lba + SectorsPerBlock
	return dev.tgt.WriteOrdered(lba, buf)
}

// ReadBlock reads a single block.
func (dev *Device) ReadBlock(block int64, buf []byte) error {
	return dev.ReadBlocks(block, [][]byte{buf})
}

// WriteBlock writes a single block.
func (dev *Device) WriteBlock(block int64, buf []byte) error {
	return dev.WriteBlocks(block, [][]byte{buf})
}

// Submit services a batch of requests: the scheduler picks the sweep
// order from the current head position, then physically adjacent
// same-direction requests are merged into single disk requests up to
// MaxTransferBlocks. This is where delayed-write clustering happens —
// for C-FFS, the dirty blocks of a group come out of the queue as one
// 64 KB write.
func (dev *Device) Submit(reqs []Req) error {
	if len(reqs) == 0 {
		return nil
	}
	dev.mu.Lock()
	defer dev.mu.Unlock()
	dev.batches.Inc()
	dev.reqs.Add(int64(len(reqs)))
	items := make([]sched.Item, len(reqs))
	for i := range reqs {
		if err := dev.check(reqs[i].Block, reqs[i].Bufs); err != nil {
			return err
		}
		items[i] = sched.Item{
			LBA:    reqs[i].Block * SectorsPerBlock,
			Sector: reqs[i].blocks() * SectorsPerBlock,
		}
	}
	if bs, ok := dev.tgt.(BatchSubmitter); ok {
		// A multi-spindle target schedules the batch itself: one C-LOOK
		// sweep per spindle from that spindle's own head position, spindles
		// serviced in parallel. The single global sweep below would order
		// by logical address, which interleaves the per-disk queues.
		issued, err := bs.SubmitBlocks(reqs)
		dev.issued.Add(int64(issued))
		return err
	}
	order := dev.sch.Order(items, dev.lastLBA)

	for i := 0; i < len(order); {
		first := &reqs[order[i]]
		start := first.Block
		write := first.Write
		bufs := make([][]byte, 0, len(first.Bufs))
		bufs = append(bufs, first.Bufs...)
		next := start + int64(first.blocks())
		j := i + 1
		for j < len(order) {
			r := &reqs[order[j]]
			if r.Write != write || r.Block != next ||
				len(bufs)+r.blocks() > MaxTransferBlocks {
				break
			}
			bufs = append(bufs, r.Bufs...)
			next += int64(r.blocks())
			j++
		}
		dev.issued.Inc()
		var err error
		if write {
			err = dev.writeBlocks(start, bufs)
		} else {
			err = dev.readBlocks(start, bufs)
		}
		if err != nil {
			return err
		}
		i = j
	}
	return nil
}

func (dev *Device) check(block int64, bufs [][]byte) error {
	if len(bufs) == 0 {
		return fmt.Errorf("blockio: empty request at block %d", block)
	}
	for _, b := range bufs {
		if len(b) != BlockSize {
			return fmt.Errorf("blockio: buffer of %d bytes, want %d", len(b), BlockSize)
		}
	}
	if block < 0 || block+int64(len(bufs)) > dev.Blocks() {
		return fmt.Errorf("blockio: request [%d,%d) outside device of %d blocks",
			block, block+int64(len(bufs)), dev.Blocks())
	}
	return nil
}
