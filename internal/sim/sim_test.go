package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(1500)
	c.Advance(0)
	if got := c.Now(); got != 1500 {
		t.Fatalf("Now() = %d, want 1500", got)
	}
	if got := c.Seconds(); got != 1.5e-6 {
		t.Fatalf("Seconds() = %g, want 1.5e-6", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo(100): now %d", c.Now())
	}
	c.AdvanceTo(50) // monotonic: must not rewind
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo(50) rewound clock to %d", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(42)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %d", c.Now())
	}
}

func TestDurationFormat(t *testing.T) {
	if got := Duration(1_234_000_000); got != "1.234s" {
		t.Fatalf("Duration = %q", got)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for v, n := range counts {
		if n < 500 {
			t.Fatalf("value %d appeared only %d/10000 times; generator badly skewed", v, n)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: saw %d twice or out of range", v)
		}
		seen[v] = true
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}
