package sim

// RNG is a small deterministic pseudo-random generator (xorshift64*) used
// by workload generators and the aging tool. Experiments must be
// reproducible run-to-run, so nothing in this repository uses math/rand's
// global state; every randomized component takes an explicit *RNG seeded
// by the experiment configuration.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
