// Package sim provides the simulated time base and deterministic random
// numbers used by every component in this repository.
//
// All file systems here run against a simulated disk: wall-clock time is
// irrelevant, and "time" in every experiment is the simulated service time
// accumulated on a Clock. Components share one *Clock so that disk
// positioning (which depends on when a request arrives) is consistent
// across the whole stack.
package sim

import (
	"fmt"
	"sync/atomic"
)

// Clock is a simulated clock. The zero value is a clock at time zero.
//
// Time is kept in nanoseconds as an int64, like time.Duration, which gives
// roughly 292 simulated years of range — far beyond any experiment here.
//
// Clock is safe for concurrent use: service times from concurrent disk
// requests accumulate atomically. Under concurrency the clock models
// total busy time, not a per-request timeline — overlapping requests each
// add their full service time, as if the (single-armed) disk served them
// back to back, which is exactly how the disk model serializes them.
type Clock struct {
	now atomic.Int64 // nanoseconds since simulation start
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time in nanoseconds.
func (c *Clock) Now() int64 { return c.now.Load() }

// Seconds returns the current simulated time in seconds.
func (c *Clock) Seconds() float64 { return float64(c.Now()) / 1e9 }

// Advance moves the clock forward by d nanoseconds. It panics if d is
// negative: simulated time never flows backwards, and a negative advance
// always indicates a bug in a service-time computation.
func (c *Clock) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %d", d))
	}
	c.now.Add(d)
}

// AdvanceTo moves the clock forward to absolute time t. Moving to a time
// in the past is a no-op; the clock is monotonic.
func (c *Clock) AdvanceTo(t int64) {
	for {
		cur := c.now.Load()
		if t <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Reset rewinds the clock to zero. Only benchmarks use this, between
// phases that should be timed independently; callers must be quiesced.
func (c *Clock) Reset() { c.now.Store(0) }

// Duration formats a nanosecond count as seconds with millisecond
// precision, for human-readable experiment output.
func Duration(ns int64) string {
	return fmt.Sprintf("%.3fs", float64(ns)/1e9)
}
