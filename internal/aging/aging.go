// Package aging implements the file-system aging program of the paper's
// Section 4.3, modeled on [Herrin93]: a long stream of file creations
// and deletions in which the probability that the next operation is a
// creation is drawn from a distribution centered on a desired
// utilization. Aged images fragment the free space, which is exactly
// what degrades explicit grouping — the effect the aging experiment
// quantifies.
package aging

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

// Config parameterizes an aging run.
type Config struct {
	Ops        int     // create/delete operations to perform, default 20000
	TargetUtil float64 // desired fraction of data blocks in use, default 0.5
	Dirs       int     // directories the churn spreads over, default 50
	MeanSize   int     // mean file size in bytes, default 4096
	Seed       uint64
}

func (c *Config) fill() error {
	if c.Ops == 0 {
		c.Ops = 20000
	}
	if c.TargetUtil == 0 {
		c.TargetUtil = 0.5
	}
	if c.TargetUtil < 0.05 || c.TargetUtil > 0.95 {
		return fmt.Errorf("aging: target utilization %.2f outside [0.05,0.95]", c.TargetUtil)
	}
	if c.Dirs == 0 {
		c.Dirs = 50
	}
	if c.MeanSize == 0 {
		c.MeanSize = 4096
	}
	return nil
}

// freeCounter lets the ager read true utilization; both file systems
// implement it.
type freeCounter interface {
	FreeBlocks() (int64, error)
	Device() *blockio.Device
}

// Stats reports what an aging run did.
type Stats struct {
	Creates   int
	Deletes   int
	FinalUtil float64
	LiveFiles int
}

// Age runs the churn under /aged on the given file system. It leaves
// the surviving files in place (they are the aged state) and returns
// run statistics.
func Age(fs vfs.FileSystem, cfg Config) (Stats, error) {
	var st Stats
	if err := cfg.fill(); err != nil {
		return st, err
	}
	fc, ok := fs.(freeCounter)
	if !ok {
		return st, fmt.Errorf("aging: file system does not expose free-block counts")
	}
	totalBlocks := fc.Device().Blocks()

	rng := sim.NewRNG(cfg.Seed + 0xa9e)
	root, err := vfs.MkdirAll(fs, "/aged")
	if err != nil {
		return st, err
	}
	dirs := make([]vfs.Ino, cfg.Dirs)
	for i := range dirs {
		d, err := fs.Mkdir(root, fmt.Sprintf("a%03d", i))
		if err != nil {
			return st, err
		}
		dirs[i] = d
	}

	type liveFile struct {
		dir  vfs.Ino
		name string
	}
	var live []liveFile
	seq := 0

	utilization := func() (float64, error) {
		free, err := fc.FreeBlocks()
		if err != nil {
			return 0, err
		}
		return 1 - float64(free)/float64(totalBlocks), nil
	}

	util, err := utilization()
	if err != nil {
		return st, err
	}
	for op := 0; op < cfg.Ops; op++ {
		// Re-reading true utilization every operation would dominate the
		// run; the controller tracks it at a coarser grain.
		if op%16 == 15 {
			util, err = utilization()
			if err != nil {
				return st, err
			}
		}
		// Probability of create falls linearly through the target:
		// far below target -> almost always create; far above ->
		// almost always delete.
		pCreate := 0.5 + 2*(cfg.TargetUtil-util)
		if pCreate > 0.98 {
			pCreate = 0.98
		}
		if pCreate < 0.02 {
			pCreate = 0.02
		}
		if len(live) == 0 || rng.Float64() < pCreate {
			size := 512 + rng.Intn(2*cfg.MeanSize-512)
			dir := dirs[rng.Intn(len(dirs))]
			name := fmt.Sprintf("g%07d", seq)
			seq++
			ino, err := fs.Create(dir, name)
			if err != nil {
				return st, fmt.Errorf("aging create %s: %w", name, err)
			}
			if _, err := fs.WriteAt(ino, make([]byte, size), 0); err != nil {
				return st, err
			}
			live = append(live, liveFile{dir, name})
			st.Creates++
		} else {
			pick := rng.Intn(len(live))
			f := live[pick]
			live[pick] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := fs.Unlink(f.dir, f.name); err != nil {
				return st, fmt.Errorf("aging delete %s: %w", f.name, err)
			}
			st.Deletes++
		}
		// Periodic sync, like an update daemon, so the churn actually
		// exercises on-disk allocation rather than pure cache state.
		if op%500 == 499 {
			if err := fs.Sync(); err != nil {
				return st, err
			}
		}
	}
	if err := fs.Sync(); err != nil {
		return st, err
	}
	st.LiveFiles = len(live)
	st.FinalUtil, err = utilization()
	return st, err
}
