package aging

import (
	"crypto/sha256"
	"reflect"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/health"
	"cffs/internal/obs"
	"cffs/internal/sched"
	"cffs/internal/sim"
)

func newFS(t *testing.T) *core.FS {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), core.Options{
		EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestAgeReachesTargetUtilization(t *testing.T) {
	fs := newFS(t)
	st, err := Age(fs, Config{Ops: 4000, TargetUtil: 0.15, Dirs: 10, MeanSize: 65536, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Creates == 0 || st.Deletes == 0 {
		t.Fatalf("aging did not churn: %+v", st)
	}
	if st.FinalUtil < 0.10 || st.FinalUtil > 0.20 {
		t.Fatalf("final utilization %.2f, target 0.15", st.FinalUtil)
	}
	if st.LiveFiles == 0 {
		t.Fatal("no live files after aging")
	}
}

func TestAgedImageIsConsistent(t *testing.T) {
	fs := newFS(t)
	if _, err := Age(fs, Config{Ops: 1500, TargetUtil: 0.15, Dirs: 6, MeanSize: 16384, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := core.Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		max := len(rep.Problems)
		if max > 5 {
			max = 5
		}
		t.Fatalf("aged image not consistent: %v", rep.Problems[:max])
	}
}

func TestAgeDeterministic(t *testing.T) {
	a := newFS(t)
	b := newFS(t)
	sa, err := Age(a, Config{Ops: 800, TargetUtil: 0.10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Age(b, Config{Ops: 800, TargetUtil: 0.10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("same seed produced different aging: %+v vs %+v", sa, sb)
	}
}

// TestAgeByteIdenticalImages is the regression gate under the aged
// experiment matrix: two runs with the same seed must produce
// byte-identical aged images and identical health.* fragmentation
// gauges. Stats equality (above) is necessary but not sufficient — the
// same create/delete counts could still land blocks differently; the
// benchmarks difference aged results across backends, which is only
// sound if "aged" names one reproducible disk state.
func TestAgeByteIdenticalImages(t *testing.T) {
	run := func() ([sha256.Size]byte, obs.Snapshot) {
		spec := disk.SeagateST31200()
		if err := spec.Validate(); err != nil { // derives the geometry totals
			t.Fatal(err)
		}
		st := disk.NewMemStore(spec.Geom.Bytes())
		d, err := disk.New(spec, sim.NewClock(), st)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), core.Options{
			EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Age(fs, Config{Ops: 1500, TargetUtil: 0.15, Dirs: 6, MeanSize: 16384, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		rep, err := health.Inspect(fs)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		rep.Register(reg)
		if err := fs.Close(); err != nil {
			t.Fatal(err)
		}

		h := sha256.New()
		buf := make([]byte, 1<<20)
		for off := int64(0); off < spec.Geom.Bytes(); off += int64(len(buf)) {
			n := spec.Geom.Bytes() - off
			if n > int64(len(buf)) {
				n = int64(len(buf))
			}
			if err := st.ReadAt(buf[:n], off); err != nil {
				t.Fatal(err)
			}
			h.Write(buf[:n])
		}
		var sum [sha256.Size]byte
		copy(sum[:], h.Sum(nil))
		return sum, reg.Snapshot()
	}

	sumA, healthA := run()
	sumB, healthB := run()
	if sumA != sumB {
		t.Errorf("same seed produced different aged images: %x vs %x", sumA, sumB)
	}
	if len(healthA.Gauges) == 0 {
		t.Fatal("no health gauges registered")
	}
	if !reflect.DeepEqual(healthA.Gauges, healthB.Gauges) {
		t.Errorf("same seed produced different health gauges:\n%v\nvs\n%v", healthA.Gauges, healthB.Gauges)
	}
	if frag, ok := healthA.Gauges["health.frag_pct"]; !ok {
		t.Error("health.frag_pct gauge missing from aged report")
	} else if frag == 0 {
		t.Log("aged image shows no fragmentation; churn may be too small")
	}
}

func TestAgeValidation(t *testing.T) {
	fs := newFS(t)
	if _, err := Age(fs, Config{TargetUtil: 0.99}); err == nil {
		t.Fatal("absurd target utilization accepted")
	}
}
