package aging

import (
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/sched"
	"cffs/internal/sim"
)

func newFS(t *testing.T) *core.FS {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), core.Options{
		EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestAgeReachesTargetUtilization(t *testing.T) {
	fs := newFS(t)
	st, err := Age(fs, Config{Ops: 4000, TargetUtil: 0.15, Dirs: 10, MeanSize: 65536, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Creates == 0 || st.Deletes == 0 {
		t.Fatalf("aging did not churn: %+v", st)
	}
	if st.FinalUtil < 0.10 || st.FinalUtil > 0.20 {
		t.Fatalf("final utilization %.2f, target 0.15", st.FinalUtil)
	}
	if st.LiveFiles == 0 {
		t.Fatal("no live files after aging")
	}
}

func TestAgedImageIsConsistent(t *testing.T) {
	fs := newFS(t)
	if _, err := Age(fs, Config{Ops: 1500, TargetUtil: 0.15, Dirs: 6, MeanSize: 16384, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := core.Check(fs.Device(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		max := len(rep.Problems)
		if max > 5 {
			max = 5
		}
		t.Fatalf("aged image not consistent: %v", rep.Problems[:max])
	}
}

func TestAgeDeterministic(t *testing.T) {
	a := newFS(t)
	b := newFS(t)
	sa, err := Age(a, Config{Ops: 800, TargetUtil: 0.10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Age(b, Config{Ops: 800, TargetUtil: 0.10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("same seed produced different aging: %+v vs %+v", sa, sb)
	}
}

func TestAgeValidation(t *testing.T) {
	fs := newFS(t)
	if _, err := Age(fs, Config{TargetUtil: 0.99}); err == nil {
		t.Fatal("absurd target utilization accepted")
	}
}
