package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Path helpers. Workloads operate on slash-separated absolute paths;
// these helpers do the walking so the FileSystem interface can stay at
// the directory-handle level, like the real syscall layer.

// SplitPath normalizes a slash-separated path into components. The empty
// path and "/" return no components.
func SplitPath(path string) []string {
	var comps []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		default:
			comps = append(comps, c)
		}
	}
	return comps
}

// PathWalker is an optional FileSystem capability: resolve a whole
// absolute path in one call. Implementations may answer from a path
// cache without any per-component Lookup traffic; Walk and WalkDir
// delegate to it when present.
type PathWalker interface {
	WalkPath(path string) (Ino, error)
}

// Walk resolves an absolute path to an Ino.
func Walk(fs FileSystem, path string) (Ino, error) {
	if pw, ok := fs.(PathWalker); ok {
		return pw.WalkPath(path)
	}
	cur := fs.Root()
	for _, c := range SplitPath(path) {
		next, err := fs.Lookup(cur, c)
		if err != nil {
			return 0, fmt.Errorf("walk %s at %q: %w", path, c, err)
		}
		cur = next
	}
	return cur, nil
}

// WalkDir resolves the directory containing path's last component,
// returning that directory's Ino and the final name.
func WalkDir(fs FileSystem, path string) (Ino, string, error) {
	comps := SplitPath(path)
	if len(comps) == 0 {
		return 0, "", fmt.Errorf("walkdir %q: %w", path, ErrInvalid)
	}
	if pw, ok := fs.(PathWalker); ok {
		dir, err := pw.WalkPath("/" + strings.Join(comps[:len(comps)-1], "/"))
		if err != nil {
			return 0, "", fmt.Errorf("walkdir %s: %w", path, err)
		}
		return dir, comps[len(comps)-1], nil
	}
	cur := fs.Root()
	for _, c := range comps[:len(comps)-1] {
		next, err := fs.Lookup(cur, c)
		if err != nil {
			return 0, "", fmt.Errorf("walkdir %s at %q: %w", path, c, err)
		}
		cur = next
	}
	return cur, comps[len(comps)-1], nil
}

// MkdirAll creates every missing directory along path and returns the
// final directory's Ino.
func MkdirAll(fs FileSystem, path string) (Ino, error) {
	cur := fs.Root()
	for _, c := range SplitPath(path) {
		next, err := fs.Lookup(cur, c)
		switch {
		case err == nil:
			cur = next
		default:
			next, err = fs.Mkdir(cur, c)
			if err != nil {
				return 0, fmt.Errorf("mkdirall %s at %q: %w", path, c, err)
			}
			cur = next
		}
	}
	return cur, nil
}

// OpenFlag selects OpenFile's behaviour, mirroring the subset of POSIX
// open(2) flags that makes sense without file descriptors or modes.
type OpenFlag int

// OpenFile flags. The zero value opens an existing file.
const (
	// OCreate makes the file if the final component does not exist.
	OCreate OpenFlag = 1 << iota
	// OExcl, with OCreate, fails with ErrExist if the file exists.
	// Without OCreate it is an invalid combination, like open(2).
	OExcl
	// OTrunc truncates an existing regular file to zero length.
	OTrunc
	// ORead and OWrite declare the access the caller wants from the
	// returned handle. The FileSystem interface has no file
	// descriptors, so per-call enforcement (rejecting WriteAt through a
	// read-only handle) lives in the layer that owns handles — the wire
	// protocol's fids (internal/srv). What OpenFile itself enforces is
	// the flag lattice: OTrunc demands write access, and asking for
	// write access to a directory fails with ErrIsDir, exactly as
	// open(2) treats O_TRUNC|O_RDONLY and O_WRONLY on a directory.
	//
	// Neither bit set means the legacy "handle open": full access,
	// directories allowed — the behaviour every pre-existing caller
	// relies on.
	ORead
	OWrite
)

// ORDWR requests both read and write access.
const ORDWR = ORead | OWrite

// OpenFile resolves path to a file Ino, honouring flag: plain open of
// what exists, create-if-missing, exclusive create, and truncate-on-open
// compose exactly as with open(2). Opening a directory succeeds only
// without OTrunc.
func OpenFile(fs FileSystem, path string, flag OpenFlag) (Ino, error) {
	if flag&OExcl != 0 && flag&OCreate == 0 {
		return 0, fmt.Errorf("openfile %q: OExcl without OCreate: %w", path, ErrInvalid)
	}
	if flag&OTrunc != 0 && flag&ORDWR == ORead {
		return 0, fmt.Errorf("openfile %q: OTrunc on read-only open: %w", path, ErrInvalid)
	}
	dir, name, err := WalkDir(fs, path)
	if err != nil {
		return 0, err
	}
	ino, err := fs.Lookup(dir, name)
	switch {
	case err == nil:
		if flag&OExcl != 0 {
			return 0, fmt.Errorf("openfile %q: %w", path, ErrExist)
		}
		if flag&(OTrunc|OWrite) != 0 {
			st, err := fs.Stat(ino)
			if err != nil {
				return 0, err
			}
			if st.Type == TypeDir {
				return 0, fmt.Errorf("openfile %q: %w", path, ErrIsDir)
			}
			if flag&OTrunc != 0 {
				if err := fs.Truncate(ino, 0); err != nil {
					return 0, err
				}
			}
		}
		return ino, nil
	case errors.Is(err, ErrNotExist) && flag&OCreate != 0:
		return fs.Create(dir, name)
	default:
		return 0, err
	}
}

// WriteFile creates (or truncates) the file at path with the given
// contents.
func WriteFile(fs FileSystem, path string, data []byte) error {
	dir, name, err := WalkDir(fs, path)
	if err != nil {
		return err
	}
	ino, err := fs.Create(dir, name)
	if errors.Is(err, ErrExist) {
		ino, err = fs.Lookup(dir, name)
		if err != nil {
			return err
		}
		if err := fs.Truncate(ino, 0); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	_, err = fs.WriteAt(ino, data, 0)
	return err
}

// ReadFile reads the whole file at path.
func ReadFile(fs FileSystem, path string) ([]byte, error) {
	ino, err := Walk(fs, path)
	if err != nil {
		return nil, err
	}
	st, err := fs.Stat(ino)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size)
	n, err := fs.ReadAt(ino, buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// Remove unlinks the file or removes the (empty) directory at path.
func Remove(fs FileSystem, path string) error {
	dir, name, err := WalkDir(fs, path)
	if err != nil {
		return err
	}
	ino, err := fs.Lookup(dir, name)
	if err != nil {
		return err
	}
	st, err := fs.Stat(ino)
	if err != nil {
		return err
	}
	if st.Type == TypeDir {
		return fs.Rmdir(dir, name)
	}
	return fs.Unlink(dir, name)
}

// RemoveAll removes path and everything below it. Removing a path that
// does not exist is an error (unlike os.RemoveAll), because workloads
// here always know what they created.
func RemoveAll(fs FileSystem, path string) error {
	dir, name, err := WalkDir(fs, path)
	if err != nil {
		return err
	}
	ino, err := fs.Lookup(dir, name)
	if err != nil {
		return err
	}
	if err := removeTree(fs, ino); err != nil {
		return err
	}
	st, err := fs.Stat(ino)
	if err != nil {
		return err
	}
	if st.Type == TypeDir {
		return fs.Rmdir(dir, name)
	}
	return fs.Unlink(dir, name)
}

func removeTree(fs FileSystem, ino Ino) error {
	st, err := fs.Stat(ino)
	if err != nil {
		return err
	}
	if st.Type != TypeDir {
		return nil
	}
	ents, err := fs.ReadDir(ino)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Type == TypeDir {
			if err := removeTree(fs, e.Ino); err != nil {
				return err
			}
			if err := fs.Rmdir(ino, e.Name); err != nil {
				return err
			}
		} else {
			if err := fs.Unlink(ino, e.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// WalkTree visits every entry under root (inclusive of files directly in
// it), depth-first in name order, calling fn with the entry's absolute
// path and stat. Directory order is sorted so traversals are
// deterministic across file systems.
func WalkTree(fs FileSystem, root string, fn func(path string, st Stat) error) error {
	ino, err := Walk(fs, root)
	if err != nil {
		return err
	}
	return walkTree(fs, strings.TrimRight(root, "/"), ino, fn)
}

func walkTree(fs FileSystem, prefix string, dir Ino, fn func(string, Stat) error) error {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	for _, e := range ents {
		p := prefix + "/" + e.Name
		st, err := fs.Stat(e.Ino)
		if err != nil {
			return err
		}
		if err := fn(p, st); err != nil {
			return err
		}
		if e.Type == TypeDir {
			if err := walkTree(fs, p, e.Ino, fn); err != nil {
				return err
			}
		}
	}
	return nil
}
