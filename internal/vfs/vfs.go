// Package vfs defines the file system interface shared by the baseline
// FFS and C-FFS, plus path-level convenience helpers. Every workload,
// benchmark, and tool in this repository is written against
// vfs.FileSystem, so the paper's comparisons run byte-identical load on
// both implementations.
package vfs

import "errors"

// Ino identifies a file within a file system. Zero is never a valid Ino.
//
// With embedded inodes an Ino encodes the inode's physical location, so
// unlike classic UNIX it can change across Rename; handles held by
// applications are refreshed via Lookup, which is what the workloads do.
type Ino uint64

// FileType distinguishes the object kinds the paper's file systems store.
type FileType uint8

// File types.
const (
	TypeInvalid FileType = iota
	TypeReg
	TypeDir
)

func (t FileType) String() string {
	switch t {
	case TypeReg:
		return "file"
	case TypeDir:
		return "dir"
	}
	return "invalid"
}

// Stat is per-file metadata, the subset of struct stat these experiments
// need.
type Stat struct {
	Ino    Ino
	Type   FileType
	Nlink  uint32
	Size   int64
	Blocks int64 // allocated 4 KB blocks, including indirect blocks
	Mtime  int64 // simulated nanoseconds
}

// DirEntry is one directory entry as returned by ReadDir.
type DirEntry struct {
	Name string
	Ino  Ino
	Type FileType
}

// Errors returned by FileSystem implementations.
var (
	ErrNotExist    = errors.New("file does not exist")
	ErrExist       = errors.New("file already exists")
	ErrNotDir      = errors.New("not a directory")
	ErrIsDir       = errors.New("is a directory")
	ErrNotEmpty    = errors.New("directory not empty")
	ErrNoSpace     = errors.New("no space on device")
	ErrNameTooLong = errors.New("name too long")
	ErrInvalid     = errors.New("invalid argument")
	ErrBusy        = errors.New("resource busy")
)

// MaxNameLen is the longest permitted entry name. It is sized so that an
// entry header, the name, and an embedded inode together fit in half a
// sector (see the core package's directory layout).
const MaxNameLen = 110

// FileSystem is the interface both file systems implement. All methods
// are synchronous with respect to simulated time: any disk I/O they
// trigger advances the shared clock before they return.
//
// Concurrency is per-implementation: the C-FFS core (internal/core) is
// safe for concurrent use from multiple goroutines, while the ffs and
// lfs comparison baselines are single-threaded. Callers racing on a
// shared namespace must expect clean conflict outcomes — ErrExist from
// a create that lost, ErrNotExist (or ErrInvalid, for a recycled
// embedded Ino) from operating on a name another goroutine removed.
type FileSystem interface {
	// Root returns the root directory's Ino.
	Root() Ino

	// Lookup resolves name within directory dir.
	Lookup(dir Ino, name string) (Ino, error)

	// Create makes an empty regular file. It fails with ErrExist if the
	// name is taken.
	Create(dir Ino, name string) (Ino, error)

	// Mkdir makes an empty directory.
	Mkdir(dir Ino, name string) (Ino, error)

	// Link adds a second name for target (a regular file) in dir.
	Link(dir Ino, name string, target Ino) error

	// Unlink removes a regular file name, freeing the file when its link
	// count reaches zero.
	Unlink(dir Ino, name string) error

	// Rmdir removes an empty directory.
	Rmdir(dir Ino, name string) error

	// Rename atomically moves sdir/sname to ddir/dname, replacing any
	// existing regular file at the destination.
	Rename(sdir Ino, sname string, ddir Ino, dname string) error

	// ReadDir lists a directory's entries, excluding "." and "..".
	ReadDir(dir Ino) ([]DirEntry, error)

	// ReadAt reads up to len(p) bytes at offset off. It returns the
	// number of bytes read; reads at or beyond EOF return 0, nil.
	ReadAt(ino Ino, p []byte, off int64) (int, error)

	// WriteAt writes len(p) bytes at offset off, extending the file as
	// needed.
	WriteAt(ino Ino, p []byte, off int64) (int, error)

	// Truncate sets the file size, freeing blocks beyond the new end.
	Truncate(ino Ino, size int64) error

	// Stat returns metadata for ino.
	Stat(ino Ino) (Stat, error)

	// Sync forces all dirty blocks to disk (delayed writes included).
	Sync() error

	// Close syncs and detaches from the device.
	Close() error
}

// Flusher is implemented by file systems whose cache can be emptied; the
// benchmark harness uses it between phases to measure cold-cache
// behaviour, per the paper's methodology.
type Flusher interface {
	// Flush writes back all dirty state and drops the cache.
	Flush() error
}
