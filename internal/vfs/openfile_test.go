package vfs_test

import (
	"errors"
	"testing"

	"cffs/internal/fstest"
	. "cffs/internal/vfs"
)

func TestOpenFileCreate(t *testing.T) {
	fs := fstest.NewRef()
	if _, err := OpenFile(fs, "/new", 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing without OCreate = %v, want ErrNotExist", err)
	}
	ino, err := OpenFile(fs, "/new", OCreate)
	if err != nil {
		t.Fatalf("OCreate: %v", err)
	}
	again, err := OpenFile(fs, "/new", OCreate)
	if err != nil || again != ino {
		t.Fatalf("reopen with OCreate = %d, %v; want %d", again, err, ino)
	}
	if _, err := OpenFile(fs, "/new", OCreate|OExcl); !errors.Is(err, ErrExist) {
		t.Fatalf("OExcl over existing = %v, want ErrExist", err)
	}
	if _, err := OpenFile(fs, "/other", OCreate|OExcl); err != nil {
		t.Fatalf("OExcl over missing: %v", err)
	}
}

func TestOpenFileTrunc(t *testing.T) {
	fs := fstest.NewRef()
	if err := WriteFile(fs, "/f", []byte("contents")); err != nil {
		t.Fatal(err)
	}
	ino, err := OpenFile(fs, "/f", OTrunc)
	if err != nil {
		t.Fatalf("OTrunc: %v", err)
	}
	st, err := fs.Stat(ino)
	if err != nil || st.Size != 0 {
		t.Fatalf("size after OTrunc = %d, %v; want 0", st.Size, err)
	}
	// OTrunc on a missing file without OCreate stays ErrNotExist; with
	// OCreate the fresh file is empty anyway.
	if _, err := OpenFile(fs, "/missing", OTrunc); !errors.Is(err, ErrNotExist) {
		t.Fatalf("OTrunc missing = %v, want ErrNotExist", err)
	}
	if _, err := OpenFile(fs, "/fresh", OCreate|OTrunc); err != nil {
		t.Fatalf("OCreate|OTrunc: %v", err)
	}
}

func TestOpenFileEdgeCases(t *testing.T) {
	fs := fstest.NewRef()
	if _, err := OpenFile(fs, "/x", OExcl); !errors.Is(err, ErrInvalid) {
		t.Fatalf("OExcl alone = %v, want ErrInvalid", err)
	}
	if _, err := MkdirAll(fs, "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(fs, "/d", 0); err != nil {
		t.Fatalf("plain open of a directory: %v", err)
	}
	if _, err := OpenFile(fs, "/d", OTrunc); !errors.Is(err, ErrIsDir) {
		t.Fatalf("OTrunc on a directory = %v, want ErrIsDir", err)
	}
	if _, err := OpenFile(fs, "", OCreate); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty path = %v, want ErrInvalid", err)
	}
	if _, err := OpenFile(fs, "/no/such/dir/f", OCreate); !errors.Is(err, ErrNotExist) {
		t.Fatalf("create under missing dir = %v, want ErrNotExist", err)
	}
}
