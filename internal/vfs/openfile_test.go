package vfs_test

import (
	"errors"
	"testing"

	"cffs/internal/fstest"
	. "cffs/internal/vfs"
)

func TestOpenFileCreate(t *testing.T) {
	fs := fstest.NewRef()
	if _, err := OpenFile(fs, "/new", 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing without OCreate = %v, want ErrNotExist", err)
	}
	ino, err := OpenFile(fs, "/new", OCreate)
	if err != nil {
		t.Fatalf("OCreate: %v", err)
	}
	again, err := OpenFile(fs, "/new", OCreate)
	if err != nil || again != ino {
		t.Fatalf("reopen with OCreate = %d, %v; want %d", again, err, ino)
	}
	if _, err := OpenFile(fs, "/new", OCreate|OExcl); !errors.Is(err, ErrExist) {
		t.Fatalf("OExcl over existing = %v, want ErrExist", err)
	}
	if _, err := OpenFile(fs, "/other", OCreate|OExcl); err != nil {
		t.Fatalf("OExcl over missing: %v", err)
	}
}

func TestOpenFileTrunc(t *testing.T) {
	fs := fstest.NewRef()
	if err := WriteFile(fs, "/f", []byte("contents")); err != nil {
		t.Fatal(err)
	}
	ino, err := OpenFile(fs, "/f", OTrunc)
	if err != nil {
		t.Fatalf("OTrunc: %v", err)
	}
	st, err := fs.Stat(ino)
	if err != nil || st.Size != 0 {
		t.Fatalf("size after OTrunc = %d, %v; want 0", st.Size, err)
	}
	// OTrunc on a missing file without OCreate stays ErrNotExist; with
	// OCreate the fresh file is empty anyway.
	if _, err := OpenFile(fs, "/missing", OTrunc); !errors.Is(err, ErrNotExist) {
		t.Fatalf("OTrunc missing = %v, want ErrNotExist", err)
	}
	if _, err := OpenFile(fs, "/fresh", OCreate|OTrunc); err != nil {
		t.Fatalf("OCreate|OTrunc: %v", err)
	}
}

func TestOpenFileEdgeCases(t *testing.T) {
	fs := fstest.NewRef()
	if _, err := OpenFile(fs, "/x", OExcl); !errors.Is(err, ErrInvalid) {
		t.Fatalf("OExcl alone = %v, want ErrInvalid", err)
	}
	if _, err := MkdirAll(fs, "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(fs, "/d", 0); err != nil {
		t.Fatalf("plain open of a directory: %v", err)
	}
	if _, err := OpenFile(fs, "/d", OTrunc); !errors.Is(err, ErrIsDir) {
		t.Fatalf("OTrunc on a directory = %v, want ErrIsDir", err)
	}
	if _, err := OpenFile(fs, "", OCreate); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty path = %v, want ErrInvalid", err)
	}
	if _, err := OpenFile(fs, "/no/such/dir/f", OCreate); !errors.Is(err, ErrNotExist) {
		t.Fatalf("create under missing dir = %v, want ErrNotExist", err)
	}
}

func TestOpenFileAccessModes(t *testing.T) {
	fs := fstest.NewRef()
	if err := WriteFile(fs, "/f", []byte("contents")); err != nil {
		t.Fatal(err)
	}
	if _, err := MkdirAll(fs, "/d"); err != nil {
		t.Fatal(err)
	}

	// Truncation demands write access: ORDWR|OTrunc works, ORead|OTrunc
	// is rejected before any path resolution (so even a missing path
	// reports ErrInvalid, not ErrNotExist).
	ino, err := OpenFile(fs, "/f", ORDWR|OTrunc)
	if err != nil {
		t.Fatalf("ORDWR|OTrunc: %v", err)
	}
	if st, err := fs.Stat(ino); err != nil || st.Size != 0 {
		t.Fatalf("size after ORDWR|OTrunc = %d, %v; want 0", st.Size, err)
	}
	if _, err := OpenFile(fs, "/f", ORead|OTrunc); !errors.Is(err, ErrInvalid) {
		t.Fatalf("ORead|OTrunc = %v, want ErrInvalid", err)
	}
	if _, err := OpenFile(fs, "/missing", ORead|OTrunc); !errors.Is(err, ErrInvalid) {
		t.Fatalf("ORead|OTrunc on missing path = %v, want ErrInvalid", err)
	}

	// Declared write access to a directory is ErrIsDir; declared
	// read-only access and the legacy zero-access open both succeed.
	if _, err := OpenFile(fs, "/d", OWrite); !errors.Is(err, ErrIsDir) {
		t.Fatalf("OWrite on a directory = %v, want ErrIsDir", err)
	}
	if _, err := OpenFile(fs, "/d", ORDWR); !errors.Is(err, ErrIsDir) {
		t.Fatalf("ORDWR on a directory = %v, want ErrIsDir", err)
	}
	if _, err := OpenFile(fs, "/d", ORead); err != nil {
		t.Fatalf("ORead on a directory: %v", err)
	}

	// Access bits compose with creation: ORDWR|OCreate creates the
	// missing file, and OWrite alone on a regular file is a plain open.
	if _, err := OpenFile(fs, "/fresh", ORDWR|OCreate); err != nil {
		t.Fatalf("ORDWR|OCreate: %v", err)
	}
	if got, err := OpenFile(fs, "/f", OWrite); err != nil || got != ino {
		t.Fatalf("OWrite on regular file = %d, %v; want %d", got, err, ino)
	}
}
