package vfs_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"cffs/internal/fstest"
	. "cffs/internal/vfs"
)

func TestSplitPath(t *testing.T) {
	cases := map[string][]string{
		"/":        nil,
		"":         nil,
		"/a":       {"a"},
		"/a/b/c":   {"a", "b", "c"},
		"a/b":      {"a", "b"},
		"//a///b/": {"a", "b"},
		"/a/./b":   {"a", "b"},
		"./a":      {"a"},
	}
	for in, want := range cases {
		if got := SplitPath(in); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitPath(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestWalkAndMkdirAll(t *testing.T) {
	fs := fstest.NewRef()
	ino, err := MkdirAll(fs, "/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Walk(fs, "/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if got != ino {
		t.Fatalf("Walk = %d, MkdirAll = %d", got, ino)
	}
	// MkdirAll over existing directories is idempotent.
	again, err := MkdirAll(fs, "/a/b/c")
	if err != nil || again != ino {
		t.Fatalf("repeat MkdirAll = %d, %v", again, err)
	}
	if _, err := Walk(fs, "/a/x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Walk missing = %v, want ErrNotExist", err)
	}
	if got, err := Walk(fs, "/"); err != nil || got != fs.Root() {
		t.Fatalf("Walk(/) = %d, %v", got, err)
	}
}

func TestWalkDir(t *testing.T) {
	fs := fstest.NewRef()
	if _, err := MkdirAll(fs, "/x/y"); err != nil {
		t.Fatal(err)
	}
	dir, name, err := WalkDir(fs, "/x/y/file.txt")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Walk(fs, "/x/y")
	if dir != want || name != "file.txt" {
		t.Fatalf("WalkDir = (%d, %q), want (%d, file.txt)", dir, name, want)
	}
	if _, _, err := WalkDir(fs, "/"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("WalkDir(/) = %v, want ErrInvalid", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	fs := fstest.NewRef()
	if _, err := MkdirAll(fs, "/d"); err != nil {
		t.Fatal(err)
	}
	data := []byte("small file contents")
	if err := WriteFile(fs, "/d/f", data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, "/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("ReadFile = %q, want %q", got, data)
	}
	// Overwriting truncates first.
	if err := WriteFile(fs, "/d/f", []byte("xy")); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadFile(fs, "/d/f")
	if string(got) != "xy" {
		t.Fatalf("overwrite produced %q", got)
	}
}

func TestRemove(t *testing.T) {
	fs := fstest.NewRef()
	if err := WriteFile(fs, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := MkdirAll(fs, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := Remove(fs, "/f"); err != nil {
		t.Fatal(err)
	}
	if err := Remove(fs, "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := Walk(fs, "/f"); err == nil {
		t.Fatal("file still present after Remove")
	}
	if err := Remove(fs, "/nope"); err == nil {
		t.Fatal("Remove of missing path succeeded")
	}
}

func TestRemoveAll(t *testing.T) {
	fs := fstest.NewRef()
	for _, p := range []string{"/t/a/f1", "/t/a/f2", "/t/b/c/f3", "/t/f4"} {
		dir, _, _ := WalkDir(fs, p)
		_ = dir
		if _, err := MkdirAll(fs, p[:len(p)-3]); err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(fs, p, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := RemoveAll(fs, "/t"); err != nil {
		t.Fatal(err)
	}
	if _, err := Walk(fs, "/t"); err == nil {
		t.Fatal("tree still present after RemoveAll")
	}
	ents, err := fs.ReadDir(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("root not empty after RemoveAll: %v", ents)
	}
}

func TestWalkTree(t *testing.T) {
	fs := fstest.NewRef()
	paths := []string{"/r/b/f2", "/r/a/f1", "/r/f0"}
	for _, p := range paths {
		if _, err := MkdirAll(fs, p[:len(p)-3]); err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(fs, p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	err := WalkTree(fs, "/r", func(p string, st Stat) error {
		visited = append(visited, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/r/a", "/r/a/f1", "/r/b", "/r/b/f2", "/r/f0"}
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("WalkTree visited %v, want %v", visited, want)
	}
}

func TestFileTypeString(t *testing.T) {
	if TypeReg.String() != "file" || TypeDir.String() != "dir" || TypeInvalid.String() != "invalid" {
		t.Fatal("FileType.String wrong")
	}
}
