// Package health turns core's layout introspection into an operator
// surface: a Report with the derived ratios (occupancy, fragmentation,
// embedded-inode utilization), registry gauges for the exposition
// server, and text/JSON renderings for cmd/fsstat and `cfsh inspect`.
// Everything here is read-only over a mounted image.
package health

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"cffs/internal/core"
	"cffs/internal/obs"
)

// Scanner is the introspection seam; *core.FS implements it. The
// baseline file systems do not — layout health is a statement about
// allocation groups and embedded inodes, which only C-FFS has.
type Scanner interface {
	ScanLayout() (core.LayoutReport, error)
}

// Report is a layout scan plus the derived percentages (0-100) the
// tools print and the gauges export.
type Report struct {
	core.LayoutReport

	OccupancyPct float64 `json:"occupancy_pct"` // used / data blocks
	FragPct      float64 `json:"frag_pct"`      // free-weighted frag score
	EmbedUtilPct float64 `json:"embed_util_pct"`
	SlotUsedPct  float64 `json:"slot_used_pct"` // directory slot occupancy
}

// Inspect scans a mounted file system. fs must implement Scanner (be a
// C-FFS); anything else is reported as unsupported.
func Inspect(fs any) (*Report, error) {
	sc, ok := fs.(Scanner)
	if !ok {
		return nil, fmt.Errorf("health: file system does not support layout introspection")
	}
	lr, err := sc.ScanLayout()
	if err != nil {
		return nil, err
	}
	r := &Report{LayoutReport: lr}
	if data := lr.Used() + lr.Free(); data > 0 {
		r.OccupancyPct = 100 * float64(lr.Used()) / float64(data)
	}
	r.FragPct = 100 * lr.FragScore()
	r.EmbedUtilPct = 100 * lr.EmbedUtil()
	if lr.SlotsTotal > 0 {
		r.SlotUsedPct = 100 * float64(lr.SlotsUsed) / float64(lr.SlotsTotal)
	}
	return r, nil
}

// Register exports the report as registry gauges: the whole-image
// ratios under health.*, and per-AG occupancy and fragmentation as
// labeled series (health.ag.used_pct{ag="3"}), so the exposition
// server serves layout health next to the live counters.
func (r *Report) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("health.blocks.total").Set(r.TotalBlocks)
	reg.Gauge("health.blocks.used").Set(int64(r.Used()))
	reg.Gauge("health.blocks.free").Set(int64(r.Free()))
	reg.Gauge("health.occupancy_pct").Set(int64(r.OccupancyPct + 0.5))
	reg.Gauge("health.frag_pct").Set(int64(r.FragPct + 0.5))
	reg.Gauge("health.embed.util_pct").Set(int64(r.EmbedUtilPct + 0.5))
	reg.Gauge("health.embed.inodes").Set(int64(r.EmbeddedInodes))
	reg.Gauge("health.slots.used").Set(int64(r.SlotsUsed))
	reg.Gauge("health.slots.total").Set(int64(r.SlotsTotal))
	reg.Gauge("health.inodefile.live").Set(int64(r.ExtSlotsLive))
	reg.Gauge("health.inodefile.total").Set(int64(r.ExtSlotsTotal))
	var claimed, full, grouped int
	for i := range r.AGs {
		a := &r.AGs[i]
		claimed += a.GroupsClaimed
		full += a.GroupsFull
		grouped += a.GroupedBlocks
		// Untouched AGs get no series — a large fresh image would
		// otherwise drown the registry in hundreds of zero gauges
		// (the text report skips empty AGs for the same reason).
		if a.UsedBlocks == 0 && a.GroupsClaimed == 0 {
			continue
		}
		ag := strconv.Itoa(a.AG)
		usedPct := 0.0
		if a.DataBlocks > 0 {
			usedPct = 100 * float64(a.UsedBlocks) / float64(a.DataBlocks)
		}
		reg.Gauge(obs.Name("health.ag.used_pct", "ag", ag)).Set(int64(usedPct + 0.5))
		reg.Gauge(obs.Name("health.ag.frag_pct", "ag", ag)).Set(int64(100*a.Frag + 0.5))
	}
	reg.Gauge("health.groups.claimed").Set(int64(claimed))
	reg.Gauge("health.groups.full").Set(int64(full))
	reg.Gauge("health.groups.blocks").Set(int64(grouped))
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the operator view: a summary block, then one line
// per allocation group that holds any data (fully empty groups are
// collapsed into a count — a fresh large image is mostly empty AGs).
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "config: %s  blocks: %d (%.1f%% used, frag %.1f%%)\n",
		r.Config, r.TotalBlocks, r.OccupancyPct, r.FragPct)
	fmt.Fprintf(w, "namespace: %d dirs, %d files, %d dir blocks (%d/%d slots used, %.1f%%)\n",
		r.Dirs, r.Files, r.DirBlocks, r.SlotsUsed, r.SlotsTotal, r.SlotUsedPct)
	fmt.Fprintf(w, "inodes: %d embedded (%.1f%% of entries), inode file %d/%d slots live in %d blocks\n",
		r.EmbeddedInodes, r.EmbedUtilPct, r.ExtSlotsLive, r.ExtSlotsTotal, r.InodeFileBlocks)

	fmt.Fprintf(w, "%-5s %9s %7s %7s %7s %9s %7s  free spans %v\n",
		"ag", "used", "use%", "groups", "full", "grouped", "frag%", core.FreeSpanBuckets)
	empty := 0
	for i := range r.AGs {
		a := &r.AGs[i]
		if a.UsedBlocks == 0 {
			empty++
			continue
		}
		usedPct := 100 * float64(a.UsedBlocks) / float64(a.DataBlocks)
		fmt.Fprintf(w, "%-5d %9d %6.1f%% %7d %7d %9d %6.1f%%  %v\n",
			a.AG, a.UsedBlocks, usedPct, a.GroupsClaimed, a.GroupsFull,
			a.GroupedBlocks, 100*a.Frag, a.FreeSpans)
	}
	if empty > 0 {
		fmt.Fprintf(w, "(%d empty allocation groups not shown)\n", empty)
	}
}
