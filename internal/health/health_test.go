package health

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"cffs/internal/aging"
	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sched"
	"cffs/internal/sim"
)

func newFS(t *testing.T) *core.FS {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), core.Options{
		EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// populate creates dirs directories of files small files each and syncs.
func populate(t *testing.T, fs *core.FS, dirs, files int) {
	t.Helper()
	buf := make([]byte, 2048)
	for di := 0; di < dirs; di++ {
		dino, err := fs.Mkdir(fs.Root(), fmt.Sprintf("d%02d", di))
		if err != nil {
			t.Fatal(err)
		}
		for fi := 0; fi < files; fi++ {
			ino, err := fs.Create(dino, fmt.Sprintf("f%03d", fi))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs.WriteAt(ino, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFreshImageReport(t *testing.T) {
	fs := newFS(t)
	populate(t, fs, 3, 30)
	rep, err := Inspect(fs)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Dirs != 4 { // root + 3
		t.Errorf("Dirs = %d, want 4", rep.Dirs)
	}
	if rep.Files != 90 {
		t.Errorf("Files = %d, want 90", rep.Files)
	}
	// Every file is single-link and regular: all embedded. The three
	// subdirectory entries are the only external references.
	if rep.EmbeddedInodes != 90 {
		t.Errorf("EmbeddedInodes = %d, want 90", rep.EmbeddedInodes)
	}
	if rep.ExternalEntries != 3 {
		t.Errorf("ExternalEntries = %d, want 3", rep.ExternalEntries)
	}
	// Slots: 90 files + 3 subdir entries + "." and ".." in 4 dirs.
	if want := 90 + 3 + 2*4; rep.SlotsUsed != want {
		t.Errorf("SlotsUsed = %d, want %d", rep.SlotsUsed, want)
	}
	if rep.EmbedUtilPct < 95 {
		t.Errorf("EmbedUtilPct = %.1f, want >95 on an all-small-file tree", rep.EmbedUtilPct)
	}
	// Inode file holds root + 3 dirs at least.
	if rep.ExtSlotsLive < 4 {
		t.Errorf("ExtSlotsLive = %d, want >= 4", rep.ExtSlotsLive)
	}
	if rep.Used() == 0 || rep.OccupancyPct <= 0 {
		t.Errorf("no occupancy measured: used=%d pct=%.2f", rep.Used(), rep.OccupancyPct)
	}
	// Grouping on: small-file data should sit in claimed group extents.
	var claimed, grouped int
	for _, ag := range rep.AGs {
		claimed += ag.GroupsClaimed
		grouped += ag.GroupedBlocks
	}
	if claimed == 0 || grouped == 0 {
		t.Errorf("no explicit grouping measured: claimed=%d grouped=%d", claimed, grouped)
	}
	// A fresh image's free space is nearly all groupable.
	if rep.FragPct > 5 {
		t.Errorf("fresh image frag %.1f%%, want <5%%", rep.FragPct)
	}
}

func TestAgedImageMoreFragmented(t *testing.T) {
	fresh := newFS(t)
	populate(t, fresh, 3, 30)
	fr, err := Inspect(fresh)
	if err != nil {
		t.Fatal(err)
	}

	aged := newFS(t)
	if _, err := aging.Age(aged, aging.Config{
		Ops: 4000, TargetUtil: 0.15, Dirs: 10, MeanSize: 65536, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	ar, err := Inspect(aged)
	if err != nil {
		t.Fatal(err)
	}

	if ar.FragPct <= fr.FragPct {
		t.Errorf("aged frag %.2f%% not above fresh %.2f%%", ar.FragPct, fr.FragPct)
	}
	if ar.FragPct <= 0 {
		t.Error("aged image reports zero fragmentation")
	}
	if ar.OccupancyPct < 5 || ar.OccupancyPct > 25 {
		t.Errorf("aged occupancy %.1f%%, expected near the 15%% target", ar.OccupancyPct)
	}
	// Churn leaves free spans shorter than a group extent behind.
	var shortSpans int
	for _, ag := range ar.AGs {
		for b := 0; b < len(ag.FreeSpans)-1; b++ {
			shortSpans += ag.FreeSpans[b]
		}
	}
	if shortSpans == 0 {
		t.Error("aged image has no sub-group free spans")
	}
}

func TestRegisterGauges(t *testing.T) {
	fs := newFS(t)
	populate(t, fs, 2, 10)
	rep, err := Inspect(fs)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep.Register(reg)
	s := reg.Snapshot()
	for _, g := range []string{
		"health.blocks.total", "health.blocks.used", "health.occupancy_pct",
		"health.frag_pct", "health.embed.util_pct", "health.slots.used",
		"health.groups.claimed", "health.inodefile.live",
	} {
		if _, ok := s.Gauges[g]; !ok {
			t.Errorf("gauge %s not registered", g)
		}
	}
	if s.Gauges["health.embed.inodes"] != 20 {
		t.Errorf("health.embed.inodes = %d, want 20", s.Gauges["health.embed.inodes"])
	}
	if _, ok := s.Gauges[obs.Name("health.ag.used_pct", "ag", "0")]; !ok {
		t.Error("per-AG labeled gauge not registered")
	}
	// Nil registry must be a no-op, not a panic.
	rep.Register(nil)
}

func TestTextAndJSON(t *testing.T) {
	fs := newFS(t)
	populate(t, fs, 2, 10)
	rep, err := Inspect(fs)
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	rep.WriteText(&text)
	for _, want := range []string{"config: C-FFS", "namespace: 3 dirs, 20 files", "embedded", "frag"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Files != rep.Files || back.EmbeddedInodes != rep.EmbeddedInodes {
		t.Errorf("JSON round-trip lost fields: %+v", back)
	}
}

func TestInspectUnsupported(t *testing.T) {
	if _, err := Inspect(struct{}{}); err == nil {
		t.Error("Inspect accepted a file system without layout introspection")
	}
}
