package harness

import (
	"fmt"
	"strings"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/ffs"
	"cffs/internal/lfs"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/ssd"
	"cffs/internal/vfs"
	"cffs/internal/volume"
	"cffs/internal/writeback"
)

// This file holds the standard configurations the repo's tools share:
// the paper's small-file create/delete workload over each of the three
// file systems, with a namespace durability oracle for the modes that
// promise one. The enumeration engine itself (harness.go) stays
// independent of the concrete file systems.

// SmallfileWorkload creates 8 small files and deletes 4 — the paper's
// small-file pattern at crash-enumeration scale — marking every
// namespace operation as "create /fN" / "unlink /fN" for the oracle.
// closer flushes and unmounts whatever fs is.
func SmallfileWorkload(fs vfs.FileSystem, closer func() error, mark func(string)) error {
	for i := 0; i < 8; i++ {
		path := fmt.Sprintf("/f%d", i)
		if err := vfs.WriteFile(fs, path, make([]byte, 1024)); err != nil {
			return err
		}
		mark("create " + path)
	}
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("/f%d", i)
		if err := vfs.Remove(fs, path); err != nil {
			return err
		}
		mark("unlink " + path)
	}
	return closer()
}

// DirGrowthWorkload packs one subdirectory with enough files to force
// directory growth across block boundaries (16 slots per block with
// embedded inodes, two taken by the dot entries), then deletes a few.
// The growth path is the interesting crash surface: the new directory
// block and the parent inode's size update must reach the disk in an
// order fsck can always repair, in every writeback mode.
func DirGrowthWorkload(fs vfs.FileSystem, closer func() error, mark func(string)) error {
	if _, err := vfs.MkdirAll(fs, "/d"); err != nil {
		return err
	}
	mark("create /d")
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/d/g%02d", i)
		if err := vfs.WriteFile(fs, path, make([]byte, 512)); err != nil {
			return err
		}
		mark("create " + path)
	}
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("/d/g%02d", i)
		if err := vfs.Remove(fs, path); err != nil {
			return err
		}
		mark("unlink " + path)
	}
	return closer()
}

// CFFSDirGrowthConfig builds the directory-growth enumeration config
// for a C-FFS variant; oracle semantics as in CFFSConfig.
func CFFSDirGrowthConfig(opts core.Options, oracle bool) Config {
	cfg := CFFSConfig(opts, oracle)
	cfg.Workload = func(dev *blockio.Device, mark func(string)) error {
		fs, err := core.Mount(dev, opts)
		if err != nil {
			return err
		}
		return DirGrowthWorkload(fs, fs.Close, mark)
	}
	if oracle {
		// Verification remounts without any write-behind daemon the
		// options may carry; reads don't need one and each enumerated
		// state would otherwise start (and leak) a goroutine.
		verifyOpts := opts
		verifyOpts.Writeback = writeback.Config{}
		cfg.Verify = func(dev *blockio.Device, completed []string, inflight string) error {
			fs, err := core.Mount(dev, verifyOpts)
			if err != nil {
				return fmt.Errorf("remount: %w", err)
			}
			return NamespaceOracle(fs, completed, inflight)
		}
	}
	return cfg
}

// NamespaceOracle replays the completed create/unlink marks into an
// expected-presence map and checks the mounted namespace against it.
// The in-flight operation's path is exempt: a crash mid-operation may
// legally expose either the old or the new state.
func NamespaceOracle(fs vfs.FileSystem, completed []string, inflight string) error {
	expect := make(map[string]bool)
	for _, m := range completed {
		op, path, ok := strings.Cut(m, " ")
		if !ok {
			continue
		}
		expect[path] = op == "create"
	}
	if _, path, ok := strings.Cut(inflight, " "); ok {
		delete(expect, path)
	}
	for path, present := range expect {
		_, err := vfs.Walk(fs, path)
		if present && err != nil {
			return fmt.Errorf("completed create of %s lost: %v", path, err)
		}
		if !present && err == nil {
			return fmt.Errorf("completed unlink of %s resurrected", path)
		}
	}
	return nil
}

// CFFSConfig builds the smallfile enumeration config for a C-FFS
// variant. The namespace oracle is attached only with oracle set —
// sound for ModeSync, vacuous harm for ModeDelayed (completion promises
// nothing there).
func CFFSConfig(opts core.Options, oracle bool) Config {
	cfg := Config{
		Mkfs: func(dev *blockio.Device) error {
			fs, err := core.Mkfs(dev, opts)
			if err != nil {
				return err
			}
			return fs.Close()
		},
		Workload: func(dev *blockio.Device, mark func(string)) error {
			fs, err := core.Mount(dev, opts)
			if err != nil {
				return err
			}
			return SmallfileWorkload(fs, fs.Close, mark)
		},
		Fsck: core.Check,
	}
	if oracle {
		cfg.Verify = func(dev *blockio.Device, completed []string, inflight string) error {
			fs, err := core.Mount(dev, opts)
			if err != nil {
				return fmt.Errorf("remount: %w", err)
			}
			return NamespaceOracle(fs, completed, inflight)
		}
	}
	return cfg
}

// CFFSStripedConfig builds the smallfile enumeration config for C-FFS
// with synchronous metadata on an n-disk striped volume, oracle
// attached. The recorder wraps the single backing store underneath the
// member windows, so it captures the volume's whole write stream in
// issue order and every ordered barrier stays a global barrier —
// crash-state reconstruction then works exactly as on one disk.
func CFFSStripedConfig(disks int) Config {
	opts := core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeSync}
	cfg := CFFSConfig(opts, true)
	spec := disk.SeagateST31200()
	if err := spec.Validate(); err != nil { // derives the geometry totals
		panic(err)
	}
	cfg.Spec = spec
	cfg.ImageBytes = int64(disks) * spec.Geom.Bytes()
	cfg.NewDevice = func(spec disk.Spec, clk *sim.Clock, st disk.Store) *blockio.Device {
		vol, err := volume.Build(spec, disks, clk, st, volume.Config{})
		if err != nil {
			panic(err) // spec and store sizing are fixed above; see newDev
		}
		return blockio.NewDevice(vol, sched.CLook{})
	}
	return cfg
}

// CFFSAsyncConfig builds the smallfile enumeration config for C-FFS
// with ordered metadata plus the asynchronous write-behind daemon. The
// water marks, tick, and cache size are tightened so the daemon
// demonstrably fires within the tiny enumeration workload — the point
// is to prove that its early, clustered delayed writes never interleave
// illegally with the ordering barriers: every completed-before-the-last-
// barrier operation must survive fsck repair of every crash state.
func CFFSAsyncConfig() Config {
	cfg := CFFSConfig(cffsAsyncOptions(), true)
	opts := cffsAsyncOptions()
	// Verification only reads; remount without the daemon so each of the
	// hundreds of enumerated states doesn't start (and leak) one.
	verifyOpts := opts
	verifyOpts.Writeback = writeback.Config{}
	cfg.Verify = func(dev *blockio.Device, completed []string, inflight string) error {
		fs, err := core.Mount(dev, verifyOpts)
		if err != nil {
			return fmt.Errorf("remount: %w", err)
		}
		return NamespaceOracle(fs, completed, inflight)
	}
	return cfg
}

// cffsAsyncOptions is the mount configuration CFFSAsyncConfig (and its
// test) enumerate.
func cffsAsyncOptions() core.Options {
	// The hard limit sits below what the workload dirties, so writers
	// throttle and rendezvous with the daemon deterministically — the
	// recording provably contains daemon-issued writes, not just in the
	// lucky schedules where the background goroutine won the FS lock.
	return core.Options{
		EmbedInodes: true, Grouping: true, Mode: core.ModeSync,
		CacheBlocks: 64,
		Writeback: writeback.Config{
			Enabled:   true,
			HighWater: 0.05, LowWater: 0.02, HardLimit: 0.08,
			TickNs: 10e6, // 10ms: a handful of synchronous ops apart
			Batch:  8,
		},
	}
}

// SSDHarnessSpec is the flash spec crash enumeration runs on: small
// erase blocks and a tight reserve so the enumeration workload's few
// hundred page writes demonstrably keep garbage collection in flight,
// and a pre-dirtied FTL so the first workload write already runs at GC
// steady state. Exported so tests can assert against the same geometry.
func SSDHarnessSpec() ssd.Spec {
	spec := ssd.DefaultSpec()
	spec.PagesPerBlock = 16
	spec.GCReserve = 2
	spec.PreDirty = true
	return spec
}

// WithSSD rebases an enumeration config onto the flash device: the
// recorder still wraps the byte store directly, so the write stream,
// ordered barriers, and crash-state reconstruction are untouched — the
// FTL above only re-prices the writes and runs its garbage collector
// against them. That is the claim this config exists to check: crash
// consistency is a property of the ordered write stream, not of the
// device's timing model, so fsck must repair every enumerated state
// with GC churning underneath exactly as it does on the disk.
func WithSSD(cfg Config) Config {
	cfg.NewDevice = func(spec disk.Spec, clk *sim.Clock, st disk.Store) *blockio.Device {
		size := spec.Geom.Bytes()
		s, err := ssd.New(SSDHarnessSpec(), clk, st, size)
		if err != nil {
			panic(err) // spec is fixed above; sizing comes from the drive geometry
		}
		return blockio.NewDevice(s, sched.CLook{})
	}
	return cfg
}

// FFSConfig builds the smallfile enumeration config for the baseline
// FFS with synchronous metadata, oracle attached.
func FFSConfig() Config {
	opts := ffs.Options{Mode: ffs.ModeSync}
	return Config{
		Mkfs: func(dev *blockio.Device) error {
			fs, err := ffs.Mkfs(dev, opts)
			if err != nil {
				return err
			}
			return fs.Close()
		},
		Workload: func(dev *blockio.Device, mark func(string)) error {
			fs, err := ffs.Mount(dev, opts)
			if err != nil {
				return err
			}
			return SmallfileWorkload(fs, fs.Close, mark)
		},
		Fsck: ffs.Check,
		Verify: func(dev *blockio.Device, completed []string, inflight string) error {
			fs, err := ffs.Mount(dev, opts)
			if err != nil {
				return fmt.Errorf("remount: %w", err)
			}
			return NamespaceOracle(fs, completed, inflight)
		},
	}
}

// LFSConfig builds the smallfile enumeration config for the LFS
// baseline. No oracle: LFS durability is the checkpoint, not the
// individual operation.
func LFSConfig() Config {
	return Config{
		Mkfs: func(dev *blockio.Device) error {
			fs, err := lfs.Mkfs(dev, lfs.Options{})
			if err != nil {
				return err
			}
			return fs.Close()
		},
		Workload: func(dev *blockio.Device, mark func(string)) error {
			fs, err := lfs.Mount(dev, lfs.Options{})
			if err != nil {
				return err
			}
			return SmallfileWorkload(fs, fs.Close, func(string) {})
		},
		Fsck: lfs.Check,
	}
}
