package harness

import (
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/fault"
	"cffs/internal/sim"
	"cffs/internal/ssd"
)

// captureSSD wraps WithSSD so the test can reach the device built for
// each harness phase: call 1 is mkfs, call 2 the recorded workload, the
// rest crash states. The workload device is the one whose FTL must show
// garbage collection in flight.
func captureSSD(cfg Config, out *[]*ssd.Store) Config {
	cfg = WithSSD(cfg)
	inner := cfg.NewDevice
	cfg.NewDevice = func(spec disk.Spec, clk *sim.Clock, st disk.Store) *blockio.Device {
		dev := inner(spec, clk, st)
		*out = append(*out, dev.Disk().(*ssd.Store))
		return dev
	}
	return cfg
}

// TestCFFSSSDEnumeration is the satellite claim: power-cut at every
// write boundary of the smallfile workload on the flash backend — with
// the pre-dirtied FTL garbage-collecting underneath — must fsck-repair,
// and no completed operation may be lost. The FTL sits above the
// recorded byte store, so it can only break this by breaking the write
// stream; the test proves it does not.
func TestCFFSSSDEnumeration(t *testing.T) {
	var devs []*ssd.Store
	cfg := captureSSD(CFFSConfig(core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeSync}, true), &devs)
	cfg.Seed = 7
	res, log, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 || res.CrashPoints != res.Writes+1 {
		t.Fatalf("covered %d of %d write boundaries", res.CrashPoints, res.Writes+1)
	}
	if res.TornStates == 0 || res.ReorderStates == 0 {
		t.Fatalf("no torn (%d) or reorder (%d) states sampled", res.TornStates, res.ReorderStates)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
	for _, v := range res.DurabilityViolations {
		t.Errorf("durability violation: %s", v)
	}
	if len(log.Marks) != 12 {
		t.Fatalf("expected 12 op marks, got %d", len(log.Marks))
	}
	// GC in flight: the recorded workload's device (second built) must
	// have collected — the enumeration above happened with the FTL
	// actively migrating pages between the crashed writes.
	if len(devs) < 2 {
		t.Fatalf("captured %d devices, want mkfs + workload at least", len(devs))
	}
	if st := devs[1].FTL(); st.GCRuns == 0 || st.Erases == 0 {
		t.Fatalf("workload FTL never collected (%+v); the 'GC in flight' claim is vacuous", st)
	}
}

func TestFFSSSDEnumeration(t *testing.T) {
	cfg := WithSSD(FFSConfig())
	cfg.Seed = 11
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints != res.Writes+1 {
		t.Fatalf("covered %d of %d write boundaries", res.CrashPoints, res.Writes+1)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
	for _, v := range res.DurabilityViolations {
		t.Errorf("durability violation: %s", v)
	}
}

func TestLFSSSDEnumeration(t *testing.T) {
	cfg := WithSSD(LFSConfig())
	cfg.Seed = 13
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints != res.Writes+1 {
		t.Fatalf("covered %d of %d write boundaries", res.CrashPoints, res.Writes+1)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
}

// TestSSDTornInsideEraseBlock constructs the torn state the satellite
// asks for explicitly. The store-level write atom is one 4 KB block —
// exactly one flash page of the harness's 16-page erase blocks — so a
// power cut tearing a write mid-transfer leaves an erase block holding
// a page with mixed old and new sectors. Every interior sector offset
// of every page of one erase block's worth of recorded writes is torn
// and must repair; the flash-specific twist over the generic sampled
// torn states is exhaustiveness within the erase-block span.
func TestSSDTornInsideEraseBlock(t *testing.T) {
	opts := core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeDelayed}
	cfg := WithSSD(CFFSConfig(opts, false))
	cfg.Spec = disk.SeagateST31200()
	if err := cfg.Spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.ImageBytes = cfg.Spec.Geom.Bytes()

	// Record the workload once, exactly as Run does.
	base := disk.NewMemStore(cfg.ImageBytes)
	if err := cfg.Mkfs(cfg.NewDevice(cfg.Spec, sim.NewClock(), base)); err != nil {
		t.Fatal(err)
	}
	snap := base.Clone()
	rec := fault.NewRecorder(base)
	if err := cfg.Workload(cfg.NewDevice(cfg.Spec, sim.NewClock(), rec), rec.Mark); err != nil {
		t.Fatal(err)
	}
	log := rec.Log()

	// Collect one erase block's worth of multi-sector page writes.
	spec := SSDHarnessSpec()
	var pages []int
	for i := range log.Entries {
		if log.Entries[i].Sectors() > 1 {
			pages = append(pages, i)
			if len(pages) == spec.PagesPerBlock {
				break
			}
		}
	}
	if len(pages) == 0 {
		t.Fatal("no multi-sector page writes recorded")
	}

	// Tear each at every interior sector boundary.
	res := &Result{}
	for _, n := range pages {
		for torn := 1; torn < log.Entries[n].Sectors(); torn++ {
			st := snap.Clone()
			if err := log.ApplyTorn(st, n, torn); err != nil {
				t.Fatal(err)
			}
			checkRepair(cfg, res, st, "torn-in-erase-block")
		}
	}
	if res.Clean+res.Repaired == 0 {
		t.Fatal("no torn states checked")
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
}
