package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/fault"
	"cffs/internal/fsck"
	"cffs/internal/lfs"
	"cffs/internal/obs"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

// TestCFFSEnumeratesAllBoundaries is the tentpole claim: with embedded
// inodes and ordered metadata, EVERY write boundary of the smallfile
// create/delete workload — plus sampled torn and reorder states —
// recovers to a consistent image, and no completed operation is lost.
func TestCFFSEnumeratesAllBoundaries(t *testing.T) {
	cfg := CFFSConfig(core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeSync}, true)
	cfg.Seed = 7
	res, log, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 {
		t.Fatal("workload recorded no writes")
	}
	if res.CrashPoints != res.Writes+1 {
		t.Fatalf("covered %d of %d write boundaries", res.CrashPoints, res.Writes+1)
	}
	if res.TornStates == 0 || res.ReorderStates == 0 {
		t.Fatalf("no torn (%d) or reorder (%d) states sampled", res.TornStates, res.ReorderStates)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
	for _, v := range res.DurabilityViolations {
		t.Errorf("durability violation: %s", v)
	}
	// The recording must show marks: the oracle is vacuous otherwise.
	if len(log.Marks) != 12 {
		t.Fatalf("expected 12 op marks, got %d", len(log.Marks))
	}
	if res.RecoveryNsTotal == 0 {
		t.Fatal("no simulated recovery time accumulated")
	}
}

// TestCFFSAsyncWritebackCrashConsistent is the async-mount version of
// the tentpole claim: with the write-behind daemon flushing dirty data
// early and clustered, every enumerated power-cut, torn-write, and
// reorder state must still repair, and every operation completed before
// the last ordering barrier must survive. The daemon only adds delayed
// writes between barriers — crash enumeration is where that legality
// argument gets checked rather than asserted.
func TestCFFSAsyncWritebackCrashConsistent(t *testing.T) {
	opts := cffsAsyncOptions()
	r := obs.NewRegistry()
	opts.Metrics = r
	cfg := CFFSAsyncConfig()
	// Re-point the workload at an instrumented mount (same knobs) so the
	// test can prove the daemon actually ran during the recording.
	cfg.Workload = func(dev *blockio.Device, mark func(string)) error {
		fs, err := core.Mount(dev, opts)
		if err != nil {
			return err
		}
		return SmallfileWorkload(fs, fs.Close, mark)
	}
	cfg.Seed = 7
	res, log, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 || res.CrashPoints != res.Writes+1 {
		t.Fatalf("covered %d of %d write boundaries", res.CrashPoints, res.Writes+1)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
	for _, v := range res.DurabilityViolations {
		t.Errorf("durability violation: %s", v)
	}
	if len(log.Marks) != 12 {
		t.Fatalf("expected 12 op marks, got %d", len(log.Marks))
	}
	if got := r.Snapshot().Counter("writeback.blocks"); got == 0 {
		t.Fatal("write-behind daemon never fired during the recorded workload")
	}
}

// TestCFFSDirGrowthAsyncCrashConsistent crashes the create-into-grown-
// directory workload at every write boundary under the write-behind
// daemon: 20 creates into one directory push it past its first block,
// so the parent inode's size update and the new directory block are
// both in flight when the daemon's clustered delayed writes race the
// ordering barriers. Every completed create must survive repair.
func TestCFFSDirGrowthAsyncCrashConsistent(t *testing.T) {
	cfg := CFFSDirGrowthConfig(cffsAsyncOptions(), true)
	cfg.Seed = 11
	res, log, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 || res.CrashPoints != res.Writes+1 {
		t.Fatalf("covered %d of %d write boundaries", res.CrashPoints, res.Writes+1)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
	for _, v := range res.DurabilityViolations {
		t.Errorf("durability violation: %s", v)
	}
	if len(log.Marks) != 24 { // mkdir + 20 creates + 3 unlinks
		t.Fatalf("expected 24 op marks, got %d", len(log.Marks))
	}
}

// TestCFFSDirGrowthDelayedRepairable is the same growth workload in
// pure delayed mode with the daemon on — the mode where dirGrow's
// parent-inode write-back is itself a delayed write. No durability is
// promised, but every crash state must still repair.
func TestCFFSDirGrowthDelayedRepairable(t *testing.T) {
	opts := cffsAsyncOptions()
	opts.Mode = core.ModeDelayed
	cfg := CFFSDirGrowthConfig(opts, false)
	cfg.Seed = 11
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
}

// TestCFFSDelayedStillRepairable drops the ordering: pure delayed
// writes lose durability (no oracle), but every crash state must still
// be repairable — fsck may discard, never corrupt.
func TestCFFSDelayedStillRepairable(t *testing.T) {
	cfg := CFFSConfig(core.Options{EmbedInodes: true, Mode: core.ModeDelayed}, false)
	cfg.Seed = 7
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
}

// TestCFFSStripedEnumeration proves the ordered-write contract survives
// striping: on a multi-spindle volume every enumerated write boundary,
// torn write, and reorder state of the smallfile workload still fscks
// clean, and no operation completed before the crash is lost. The
// recorder sits under the member windows, so barriers stay global and
// crash states reconstruct exactly as on one disk.
func TestCFFSStripedEnumeration(t *testing.T) {
	for _, disks := range []int{2, 4} {
		disks := disks
		t.Run(fmt.Sprintf("%ddisk", disks), func(t *testing.T) {
			cfg := CFFSStripedConfig(disks)
			cfg.Seed = 7
			res, _, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Writes == 0 {
				t.Fatal("workload recorded no writes")
			}
			if res.CrashPoints != res.Writes+1 {
				t.Fatalf("covered %d of %d write boundaries", res.CrashPoints, res.Writes+1)
			}
			if res.TornStates == 0 || res.ReorderStates == 0 {
				t.Fatalf("no torn (%d) or reorder (%d) states sampled", res.TornStates, res.ReorderStates)
			}
			for _, f := range res.Failures {
				t.Errorf("unrepaired state: %s", f)
			}
			for _, v := range res.DurabilityViolations {
				t.Errorf("durability violation: %s", v)
			}
		})
	}
}

func TestFFSEnumeration(t *testing.T) {
	cfg := FFSConfig()
	cfg.Seed = 11
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints != res.Writes+1 {
		t.Fatalf("covered %d of %d write boundaries", res.CrashPoints, res.Writes+1)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
	for _, v := range res.DurabilityViolations {
		t.Errorf("durability violation: %s", v)
	}
}

func TestLFSEnumeration(t *testing.T) {
	cfg := LFSConfig()
	// Override the workload: sync mid-stream so some crash states
	// straddle a checkpoint boundary.
	cfg.Workload = func(dev *blockio.Device, mark func(string)) error {
		fs, err := lfs.Mount(dev, lfs.Options{})
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if err := vfs.WriteFile(fs, fmt.Sprintf("/f%d", i), make([]byte, 1024)); err != nil {
				return err
			}
			if i == 3 {
				if err := fs.Sync(); err != nil {
					return err
				}
				mark("sync")
			}
		}
		for i := 0; i < 4; i++ {
			if err := vfs.Remove(fs, fmt.Sprintf("/f%d", i)); err != nil {
				return err
			}
		}
		return fs.Close()
	}
	cfg.Seed = 13
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints != res.Writes+1 {
		t.Fatalf("covered %d of %d write boundaries", res.CrashPoints, res.Writes+1)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
}

func TestMaxCrashPointsSampling(t *testing.T) {
	cfg := CFFSConfig(core.Options{EmbedInodes: true, Mode: core.ModeSync}, false)
	cfg.Seed = 7
	cfg.MaxCrashPoints = 10
	cfg.TornSamples = 2
	cfg.ReorderSamples = 2
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashPoints > 10 {
		t.Fatalf("sampled %d boundaries, cap was 10", res.CrashPoints)
	}
	if res.CrashPoints < 2 {
		t.Fatalf("sampling degenerate: %d boundaries", res.CrashPoints)
	}
	for _, f := range res.Failures {
		t.Errorf("unrepaired state: %s", f)
	}
}

func TestCrashBoundariesSampling(t *testing.T) {
	all := crashBoundaries(5, 0)
	if len(all) != 6 || all[0] != 0 || all[5] != 5 {
		t.Fatalf("full enumeration wrong: %v", all)
	}
	s := crashBoundaries(100, 5)
	if len(s) != 5 || s[0] != 0 || s[len(s)-1] != 100 {
		t.Fatalf("sample must span endpoints: %v", s)
	}
	tiny := crashBoundaries(2, 10)
	if len(tiny) != 3 {
		t.Fatalf("cap above total must enumerate all: %v", tiny)
	}
}

// TestStressRandomFaultsUnderLoad drives concurrent workload
// goroutines against a live fault injector — torn writes, a latent
// read error, and finally a power cut — then revives the store and
// requires fsck to repair whatever the crash left. Run with -race.
func TestStressRandomFaultsUnderLoad(t *testing.T) {
	spec := disk.SeagateST31200()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	inner := disk.NewMemStore(spec.Geom.Bytes())
	fst := fault.NewStore(inner, 99)

	newDevOver := func(st disk.Store) *blockio.Device {
		d, err := disk.New(spec, sim.NewClock(), st)
		if err != nil {
			t.Fatal(err)
		}
		return blockio.NewDevice(d, sched.CLook{})
	}

	opts := core.Options{EmbedInodes: true, Grouping: true, Mode: core.ModeSync}
	fs, err := core.Mkfs(newDevOver(fst), opts)
	if err != nil {
		t.Fatal(err)
	}

	fst.SetTornProb(0.02)
	fst.FailSector(int64(spec.Geom.Sectors() - 8)) // latent error in the tail
	fst.CutAfterWrites(200)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				path := fmt.Sprintf("/g%d-f%d", g, i)
				err := vfs.WriteFile(fs, path, make([]byte, 512+rng.Intn(2048)))
				if err == nil && rng.Intn(3) == 0 {
					err = vfs.Remove(fs, path)
				}
				if err != nil {
					// The cut fails every write from here on; stop.
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if !fst.Down() {
		t.Fatal("power cut never fired")
	}

	// Power back on: mount the surviving image and repair it.
	fst.Revive()
	fst.ClearFaults()
	rep, err := core.Check(newDevOver(fst), true)
	if err != nil {
		t.Fatalf("fsck after crash: %v", err)
	}
	if len(rep.Unrepairable) > 0 {
		t.Fatalf("unrepairable damage: %v", rep.Unrepairable)
	}
	rep2, err := core.Check(newDevOver(fst), false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("image not clean after repair: %v", rep2.Problems)
	}
	if rep.Outcome() == fsck.OutcomeUnrepaired {
		t.Fatalf("outcome %v", rep.Outcome())
	}
}
