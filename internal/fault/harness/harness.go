// Package harness enumerates crash states of a recorded workload and
// verifies that recovery repairs every one of them.
//
// The harness runs a workload once, failure-free, over a recording
// store (fault.Recorder), which captures every store-level write in
// order along with the operation-completion marks the workload emits.
// From that single recording it reconstructs the disk image a crash
// would have left behind at
//
//   - every write boundary (power cut between writes),
//   - sampled torn points (power cut mid-write: a sector-aligned
//     prefix of one multi-sector write lands, the suffix is lost), and
//   - sampled reorder states (the drive's volatile cache dropped a
//     legal subset of delayed writes issued since the last ordered
//     barrier — see Log.DroppableAt).
//
// Each reconstructed image is mounted fresh, repaired by the file
// system's fsck, re-checked to be clean, and optionally passed to a
// durability oracle. Reconstruction is offline — a snapshot of the
// post-mkfs image plus a replayed write prefix — so enumerating
// hundreds of states costs no workload re-execution.
package harness

import (
	"fmt"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/fault"
	"cffs/internal/fsck"
	"cffs/internal/sched"
	"cffs/internal/sim"
)

// Config describes one file system under test. The harness stays
// independent of the concrete file systems by taking their entry
// points as callbacks.
type Config struct {
	// Spec is the simulated drive. Zero value selects the paper's
	// Seagate ST31200N.
	Spec disk.Spec

	// NewDevice, when non-nil, builds the device over a backing store —
	// the hook that lets a config put a striped volume (or any other
	// Target) under the file system. The store is the crash-state
	// substrate: the recorder wraps it directly, so multi-disk devices
	// must slice it into member windows (volume.Build does). Nil builds
	// a plain single disk.
	NewDevice func(spec disk.Spec, clk *sim.Clock, st disk.Store) *blockio.Device

	// ImageBytes sizes the backing store; zero means one drive,
	// spec.Geom.Bytes(). Striped configs set disks x that.
	ImageBytes int64

	// Mkfs builds an empty file system on dev and leaves it durable
	// (the callback must sync/close whatever it mounts).
	Mkfs func(dev *blockio.Device) error

	// Workload mounts dev, runs the operation mix, and closes the
	// mount. It must call mark(name) immediately after each operation
	// whose durability the oracle should track; the mark is stamped at
	// the current write boundary.
	Workload func(dev *blockio.Device, mark func(string)) error

	// Fsck checks the image on dev, repairing when repair is set, and
	// returns the report. It mounts and unmounts internally.
	Fsck func(dev *blockio.Device, repair bool) (*fsck.Report, error)

	// Verify, when non-nil, is the durability oracle: after a crash
	// state has been repaired, it receives the names of operations
	// whose completion marks precede the crash boundary and must
	// confirm their effects survived. The operation in flight at the
	// crash — partially applied by definition — is passed separately;
	// the oracle must accept either outcome for it. Only sound for
	// workloads whose operations reach durability before returning
	// (sync or ordered metadata modes); leave nil for delayed-write
	// baselines, where completion promises nothing.
	Verify func(dev *blockio.Device, completed []string, inflight string) error

	// TornSamples and ReorderSamples bound the sampled state spaces
	// (every multi-sector write boundary, resp. every boundary with a
	// non-empty droppable set, is a candidate). Zero means 8 each.
	TornSamples    int
	ReorderSamples int

	// MaxCrashPoints, when positive, caps the clean power-cut
	// enumeration by sampling boundaries evenly instead of walking all
	// of them. Zero enumerates every write boundary.
	MaxCrashPoints int

	// Seed drives the deterministic sampling.
	Seed int64
}

// Result aggregates what the enumeration found.
type Result struct {
	Writes        int // store-level writes in the recording
	CrashPoints   int // clean power-cut states checked
	TornStates    int // torn-write states checked
	ReorderStates int // reorder states checked

	Clean    int // states fsck found already consistent
	Repaired int // states fsck had to repair

	// Failures lists states that stayed broken: fsck errored, left
	// unrepairable problems, or did not converge to clean.
	Failures []string
	// DurabilityViolations lists states where the oracle found a
	// completed operation's effect missing after repair.
	DurabilityViolations []string

	// RecoveryNsTotal and RecoveryNsMax track simulated fsck repair
	// time across all checked states.
	RecoveryNsTotal int64
	RecoveryNsMax   int64
}

// States returns the total number of crash states checked.
func (r *Result) States() int { return r.CrashPoints + r.TornStates + r.ReorderStates }

// MeanRecoveryNs returns the average simulated repair time per state.
func (r *Result) MeanRecoveryNs() int64 {
	if n := r.States(); n > 0 {
		return r.RecoveryNsTotal / int64(n)
	}
	return 0
}

// Ok reports whether every state was repaired and every durability
// promise held.
func (r *Result) Ok() bool {
	return len(r.Failures) == 0 && len(r.DurabilityViolations) == 0
}

// Run records the workload and enumerates its crash states.
func Run(cfg Config) (*Result, *fault.Log, error) {
	if cfg.Spec.Name == "" {
		cfg.Spec = disk.SeagateST31200()
	}
	if err := cfg.Spec.Validate(); err != nil { // also derives the geometry totals
		return nil, nil, err
	}
	if cfg.TornSamples == 0 {
		cfg.TornSamples = 8
	}
	if cfg.ReorderSamples == 0 {
		cfg.ReorderSamples = 8
	}
	if cfg.NewDevice == nil {
		cfg.NewDevice = newDev
	}
	if cfg.ImageBytes == 0 {
		cfg.ImageBytes = cfg.Spec.Geom.Bytes()
	}

	// Phase 1: mkfs on a pristine store, then snapshot it. The
	// snapshot is the replay base: crashes during mkfs are out of
	// scope (the image is not a file system yet).
	base := disk.NewMemStore(cfg.ImageBytes)
	if err := cfg.Mkfs(cfg.NewDevice(cfg.Spec, sim.NewClock(), base)); err != nil {
		return nil, nil, fmt.Errorf("harness: mkfs: %w", err)
	}
	snap := base.Clone()

	// Phase 2: run the workload once over a recorder.
	rec := fault.NewRecorder(base)
	if err := cfg.Workload(cfg.NewDevice(cfg.Spec, sim.NewClock(), rec), rec.Mark); err != nil {
		return nil, nil, fmt.Errorf("harness: workload: %w", err)
	}
	log := rec.Log()

	// Phase 3: enumerate.
	res := &Result{Writes: len(log.Entries)}
	rng := sim.NewRNG(uint64(cfg.Seed)*2 + 1)

	for _, n := range crashBoundaries(len(log.Entries), cfg.MaxCrashPoints) {
		st := snap.Clone()
		if err := log.ApplyPrefix(st, n); err != nil {
			return res, log, err
		}
		res.CrashPoints++
		checkState(cfg, res, log, st, n, fmt.Sprintf("cut@%d", n))
	}

	for _, tp := range sampleTorn(log, rng, cfg.TornSamples) {
		st := snap.Clone()
		if err := log.ApplyTorn(st, tp.n, tp.sectors); err != nil {
			return res, log, err
		}
		res.TornStates++
		checkState(cfg, res, log, st, tp.n, fmt.Sprintf("torn@%d/%d", tp.n, tp.sectors))
	}

	for _, rp := range sampleReorder(log, rng, cfg.ReorderSamples) {
		st := snap.Clone()
		if err := log.ApplyPrefixDropping(st, rp.n, rp.drop); err != nil {
			return res, log, err
		}
		res.ReorderStates++
		// No durability oracle here: dropped writes are by definition
		// delayed, and the legality rule already keeps every write an
		// ordered barrier vouched for.
		checkRepair(cfg, res, st, fmt.Sprintf("reorder@%d(-%d)", rp.n, len(rp.drop)))
	}
	return res, log, nil
}

// checkState repairs one reconstructed image and, when the config has
// an oracle, verifies the durability of operations completed by
// boundary n.
func checkState(cfg Config, res *Result, log *fault.Log, st *disk.MemStore, n int, desc string) {
	dev, ok := checkRepair(cfg, res, st, desc)
	if !ok || cfg.Verify == nil {
		return
	}
	if err := cfg.Verify(dev, log.CompletedBy(n), log.InFlightAt(n)); err != nil {
		res.DurabilityViolations = append(res.DurabilityViolations,
			fmt.Sprintf("%s: %v", desc, err))
	}
}

// checkRepair runs fsck-with-repair on the image and re-checks that it
// converged to clean. It returns the device (for further verification)
// and whether the state ended consistent.
func checkRepair(cfg Config, res *Result, st *disk.MemStore, desc string) (*blockio.Device, bool) {
	clk := sim.NewClock()
	dev := cfg.NewDevice(cfg.Spec, clk, st)

	t0 := clk.Now()
	rep, err := cfg.Fsck(dev, true)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("%s: fsck: %v", desc, err))
		return dev, false
	}
	elapsed := clk.Now() - t0
	res.RecoveryNsTotal += elapsed
	if elapsed > res.RecoveryNsMax {
		res.RecoveryNsMax = elapsed
	}

	if len(rep.Unrepairable) > 0 {
		res.Failures = append(res.Failures,
			fmt.Sprintf("%s: %d unrepairable: %v", desc, len(rep.Unrepairable), rep.Unrepairable))
		return dev, false
	}
	if rep.Clean() {
		res.Clean++
	} else {
		res.Repaired++
		rep2, err := cfg.Fsck(dev, false)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: re-check: %v", desc, err))
			return dev, false
		}
		if !rep2.Clean() {
			res.Failures = append(res.Failures,
				fmt.Sprintf("%s: not clean after repair: %v", desc, rep2.Problems))
			return dev, false
		}
	}
	return dev, true
}

func newDev(spec disk.Spec, clk *sim.Clock, st disk.Store) *blockio.Device {
	d, err := disk.New(spec, clk, st)
	if err != nil {
		// Spec was validated when the base device was built; a failure
		// here is a harness bug, not a test outcome.
		panic(err)
	}
	return blockio.NewDevice(d, sched.CLook{})
}

// crashBoundaries returns the write boundaries to enumerate: all of
// 0..writes when max is zero or generous, else an even sample that
// always includes both endpoints.
func crashBoundaries(writes, max int) []int {
	total := writes + 1
	if max <= 0 || total <= max {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, i*writes/(max-1))
	}
	// The integer stride can repeat a boundary; dedup keeps the count
	// honest.
	dedup := out[:1]
	for _, n := range out[1:] {
		if n != dedup[len(dedup)-1] {
			dedup = append(dedup, n)
		}
	}
	return dedup
}

type tornPoint struct{ n, sectors int }

// sampleTorn picks up to k torn-write states: a multi-sector write and
// a proper sector prefix of it.
func sampleTorn(log *fault.Log, rng *sim.RNG, k int) []tornPoint {
	var cands []int
	for i := range log.Entries {
		if log.Entries[i].Sectors() > 1 {
			cands = append(cands, i)
		}
	}
	var out []tornPoint
	for _, i := range pick(rng, cands, k) {
		s := log.Entries[i].Sectors()
		out = append(out, tornPoint{n: i, sectors: 1 + rng.Intn(s-1)})
	}
	return out
}

type reorderPoint struct {
	n    int
	drop map[int]bool
}

// sampleReorder picks up to k boundaries with droppable delayed writes
// and a random non-empty legal subset to lose at each.
func sampleReorder(log *fault.Log, rng *sim.RNG, k int) []reorderPoint {
	var cands []int
	for n := 1; n <= len(log.Entries); n++ {
		if len(log.DroppableAt(n)) > 0 {
			cands = append(cands, n)
		}
	}
	var out []reorderPoint
	for _, n := range pick(rng, cands, k) {
		droppable := log.DroppableAt(n)
		drop := make(map[int]bool)
		for _, i := range droppable {
			if rng.Intn(2) == 1 {
				drop[i] = true
			}
		}
		if len(drop) == 0 {
			drop[droppable[rng.Intn(len(droppable))]] = true
		}
		out = append(out, reorderPoint{n: n, drop: drop})
	}
	return out
}

// pick returns up to k distinct elements of cands, order-preserving.
func pick(rng *sim.RNG, cands []int, k int) []int {
	if len(cands) <= k {
		return cands
	}
	chosen := make(map[int]bool, k)
	for len(chosen) < k {
		chosen[rng.Intn(len(cands))] = true
	}
	out := make([]int, 0, k)
	for i, c := range cands {
		if chosen[i] {
			out = append(out, c)
		}
	}
	return out
}
