package fault

import (
	"bytes"
	"errors"
	"testing"

	"cffs/internal/disk"
	"cffs/internal/obs"
)

const sect = disk.SectorSize

func filled(n int, b byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

func readBack(t *testing.T, st disk.Store, off int64, n int) []byte {
	t.Helper()
	p := make([]byte, n)
	if err := st.ReadAt(p, off); err != nil {
		t.Fatalf("read back: %v", err)
	}
	return p
}

// One table over the injector modes: each case arms one fault, runs a
// small write/read script, and checks the visible failure.
func TestInjectorModes(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, s *Store, reg *obs.Registry)
	}{
		{"power-cut-countdown", func(t *testing.T, s *Store, reg *obs.Registry) {
			s.CutAfterWrites(2)
			buf := filled(sect, 1)
			// Ordered writes: barrier-protected, so the cut cannot roll
			// them back — only the third write is lost.
			if err := s.WriteAtOrdered(buf, 0); err != nil {
				t.Fatalf("write 1: %v", err)
			}
			if err := s.WriteAtOrdered(buf, sect); err != nil {
				t.Fatalf("write 2: %v", err)
			}
			if err := s.WriteAt(buf, 2*sect); !errors.Is(err, ErrPowerCut) {
				t.Fatalf("write 3: got %v, want ErrPowerCut", err)
			}
			if err := s.ReadAt(buf, 0); !errors.Is(err, ErrPowerCut) {
				t.Fatalf("read while down: got %v, want ErrPowerCut", err)
			}
			if !s.Down() {
				t.Fatal("store should report Down after cut")
			}
			s.Revive()
			if got := readBack(t, s, 0, sect); got[0] != 1 {
				t.Fatal("ordered write before the cut must survive it")
			}
			if got := readBack(t, s, 2*sect, sect); got[0] != 0 {
				t.Fatal("write at the cut must not have applied")
			}
			if reg.Snapshot().Counter("fault.injected.powercut") != 1 {
				t.Fatal("power cut not counted")
			}
		}},
		{"torn-write", func(t *testing.T, s *Store, reg *obs.Registry) {
			s.SetTornProb(1)
			if err := s.WriteAt(filled(4*sect, 7), 0); err != nil {
				t.Fatalf("torn write reported failure: %v", err)
			}
			got := readBack(t, s, 0, 4*sect)
			torn := 0
			for i := 0; i < 4; i++ {
				if got[i*sect] == 0 {
					torn++
				}
			}
			if torn == 0 || got[0] == 0 {
				t.Fatalf("want a lost non-empty suffix, first sector intact; sectors lost = %d", torn)
			}
			for i := 1; i < 4; i++ {
				if got[i*sect] == 0 && got[(i-1)*sect] == 0 {
					continue
				}
				if got[i*sect] != 0 && got[(i-1)*sect] == 0 {
					t.Fatal("torn write lost a middle sector, not a suffix")
				}
			}
			// Single-sector writes are atomic: never torn.
			if err := s.WriteAt(filled(sect, 9), 8*sect); err != nil {
				t.Fatal(err)
			}
			if got := readBack(t, s, 8*sect, sect); got[sect-1] != 9 {
				t.Fatal("single-sector write must be atomic")
			}
			if reg.Snapshot().Counter("fault.injected.torn") != 1 {
				t.Fatal("torn write not counted")
			}
		}},
		{"latent-read-error", func(t *testing.T, s *Store, reg *obs.Registry) {
			if err := s.WriteAt(filled(2*sect, 3), 0); err != nil {
				t.Fatal(err)
			}
			s.FailSector(1)
			p := make([]byte, 2*sect)
			if err := s.ReadAt(p, 0); !errors.Is(err, ErrReadFault) {
				t.Fatalf("read over bad sector: got %v, want ErrReadFault", err)
			}
			if err := s.ReadAt(p[:sect], 0); err != nil {
				t.Fatalf("read beside bad sector: %v", err)
			}
			// A write remaps the sector and clears the fault.
			if err := s.WriteAt(filled(sect, 4), sect); err != nil {
				t.Fatal(err)
			}
			if err := s.ReadAt(p, 0); err != nil {
				t.Fatalf("read after remap: %v", err)
			}
			if reg.Snapshot().Counter("fault.injected.readerr") != 1 {
				t.Fatal("read error not counted")
			}
		}},
		{"reorder-respects-barriers", func(t *testing.T, s *Store, reg *obs.Registry) {
			// Delayed write A, then a barrier, then delayed B..E, then a
			// cut. The barrier commits A; only B..E are at risk.
			if err := s.WriteAt(filled(sect, 0xA), 0); err != nil {
				t.Fatal(err)
			}
			if err := s.WriteAtOrdered(filled(sect, 0xB), sect); err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 4; i++ {
				if err := s.WriteAt(filled(sect, 0xC), (2+i)*sect); err != nil {
					t.Fatal(err)
				}
			}
			s.CutNow()
			s.Revive()
			if readBack(t, s, 0, sect)[0] != 0xA {
				t.Fatal("delayed write before a barrier must survive the cut")
			}
			if readBack(t, s, sect, sect)[0] != 0xB {
				t.Fatal("the barrier write itself must survive the cut")
			}
			dropped := reg.Snapshot().Counter("fault.reorder.dropped")
			lost := 0
			for i := int64(0); i < 4; i++ {
				if readBack(t, s, (2+i)*sect, sect)[0] == 0 {
					lost++
				}
			}
			if int64(lost) != dropped {
				t.Fatalf("rolled-back writes (%d) disagree with counter (%d)", lost, dropped)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewStore(disk.NewMemStore(1<<20), 42)
			reg := obs.NewRegistry()
			s.SetMetrics(reg)
			c.run(t, s, reg)
		})
	}
}

// With the window at zero, a cut loses only the in-flight write: every
// acknowledged delayed write is treated as durable.
func TestReorderWindowZero(t *testing.T) {
	s := NewStore(disk.NewMemStore(1<<20), 1)
	s.SetReorderWindow(0)
	for i := int64(0); i < 8; i++ {
		if err := s.WriteAt(filled(sect, 5), i*sect); err != nil {
			t.Fatal(err)
		}
	}
	s.CutNow()
	s.Revive()
	for i := int64(0); i < 8; i++ {
		if readBack(t, s, i*sect, sect)[0] != 5 {
			t.Fatalf("write %d lost with reordering disabled", i)
		}
	}
}

func TestRecorderReplay(t *testing.T) {
	base := disk.NewMemStore(1 << 20)
	// Seed the image before recording starts, as mkfs would.
	if err := base.WriteAt(filled(sect, 0xEE), 0); err != nil {
		t.Fatal(err)
	}
	snap := base.Clone()
	r := NewRecorder(base)

	if err := r.WriteAt(filled(sect, 1), 0); err != nil {
		t.Fatal(err)
	}
	r.Mark("op1")
	if err := r.WriteAtOrdered(filled(sect, 2), sect); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteAt(filled(2*sect, 3), 2*sect); err != nil {
		t.Fatal(err)
	}
	r.Mark("op2")
	log := r.Log()

	if len(log.Entries) != 3 || !log.Entries[1].Ordered || log.Entries[0].Ordered {
		t.Fatalf("bad log: %+v", log.Entries)
	}
	if got := log.CompletedBy(1); len(got) != 1 || got[0] != "op1" {
		t.Fatalf("CompletedBy(1) = %v", got)
	}
	if got := log.CompletedBy(3); len(got) != 2 {
		t.Fatalf("CompletedBy(3) = %v", got)
	}

	// Prefix 1: only the first write applied, pre-recording bytes gone.
	st := snap.Clone()
	if err := log.ApplyPrefix(st, 1); err != nil {
		t.Fatal(err)
	}
	if readBack(t, st, 0, sect)[0] != 1 || readBack(t, st, sect, sect)[0] != 0 {
		t.Fatal("prefix 1 wrong")
	}

	// Torn replay of the 2-sector write keeps only its first sector.
	st = snap.Clone()
	if err := log.ApplyTorn(st, 2, 1); err != nil {
		t.Fatal(err)
	}
	if readBack(t, st, 2*sect, sect)[0] != 3 || readBack(t, st, 3*sect, sect)[0] != 0 {
		t.Fatal("torn replay wrong")
	}
	if err := log.ApplyTorn(snap.Clone(), 0, 1); err == nil {
		t.Fatal("tearing a single-sector write must be rejected")
	}

	// Only the delayed write after the barrier is droppable at the end.
	if got := log.DroppableAt(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("DroppableAt(3) = %v", got)
	}
	st = snap.Clone()
	if err := log.ApplyPrefixDropping(st, 3, map[int]bool{2: true}); err != nil {
		t.Fatal(err)
	}
	if readBack(t, st, 2*sect, sect)[0] != 0 {
		t.Fatal("dropped write still present")
	}
	if err := log.ApplyPrefixDropping(snap.Clone(), 3, map[int]bool{1: true}); err == nil {
		t.Fatal("dropping a barrier write must be rejected")
	}
	if err := log.ApplyPrefixDropping(snap.Clone(), 3, map[int]bool{0: true}); err == nil {
		t.Fatal("dropping a write behind a barrier must be rejected")
	}

	// Full prefix replay onto the snapshot equals the live image.
	st = snap.Clone()
	if err := log.ApplyPrefix(st, len(log.Entries)); err != nil {
		t.Fatal(err)
	}
	a := readBack(t, st, 0, 4*sect)
	b := readBack(t, base, 0, 4*sect)
	if !bytes.Equal(a, b) {
		t.Fatal("full replay differs from live image")
	}
}
