// Package fault wraps the simulated disk's byte store with injectable
// failures: a power cut after a countdown of writes, torn (partial)
// multi-sector writes, latent sector read errors, and bounded
// reordering of delayed writes. The point is to test the paper's
// integrity argument instead of assuming it — C-FFS claims that because
// a name+inode pair lives in one sector, a single ordered write keeps
// the on-disk state recoverable, and this package manufactures the
// crash states that claim must survive.
//
// The fault model follows the paper's hardware assumptions: a sector
// write is atomic (a "torn" write loses whole trailing sectors of a
// multi-sector transfer, never half a sector), and ordered writes are
// barriers — everything issued before an ordered write is durable
// before it, and it is durable before anything issued after it.
// Delayed writes between two barriers may be lost or reordered by a
// power cut; that freedom is exactly what the injector exercises.
//
// Two entry points share the model. Store is a live injector for
// interactive use (cfsh `inject`) and stress tests: faults fire while a
// file system is running. Recorder (record.go) taps the write stream of
// a healthy run so the crash-enumeration harness (fault/harness) can
// rebuild the disk image at every write boundary offline.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sim"
)

// ErrPowerCut is returned by every I/O after a simulated power cut,
// until Revive restores power.
var ErrPowerCut = errors.New("fault: simulated power cut")

// ErrReadFault is wrapped by read errors injected on marked sectors.
var ErrReadFault = errors.New("fault: latent sector read error")

// undoRec is the pre-image of one delayed write still inside the
// reorder window: the bytes the range held before the write applied.
type undoRec struct {
	off int64
	pre []byte
}

func (r *undoRec) overlaps(off, n int64) bool {
	return off < r.off+int64(len(r.pre)) && r.off < off+n
}

// Store is a disk.Store (and disk.OrderedStore) that forwards to an
// inner store while injecting configured faults. All methods are safe
// for concurrent use; fault triggers are serialized under one mutex so
// a power cut observed by one goroutine is a cut for all of them.
type Store struct {
	mu    sync.Mutex
	inner disk.Store
	rng   *rand.Rand

	cutAfter int64 // writes until power cut; <0 disarmed
	cut      bool

	tornProb float64

	badSectors map[int64]struct{}

	window  int // max delayed writes whose pre-images are retained
	pending []undoRec

	clk    *sim.Clock
	slowNs int64 // extra simulated ns charged per I/O while degraded

	// Injection counters; nil (no-op) until SetMetrics.
	mCut     *obs.Counter
	mTorn    *obs.Counter
	mReadErr *obs.Counter
	mDropped *obs.Counter
	mSlow    *obs.Counter
}

// DefaultReorderWindow bounds how many delayed writes since the last
// barrier a power cut may drop or reorder. Sixteen matches the 64 KB
// driver transfer cap — one clustered group write — which is the most
// the simulated disk ever holds volatile at once.
const DefaultReorderWindow = 16

// NewStore wraps inner with a fault injector. The seed drives every
// probabilistic choice (torn lengths, reorder drops), so a run is
// reproducible from its seed. No faults are armed initially.
func NewStore(inner disk.Store, seed int64) *Store {
	return &Store{
		inner:      inner,
		rng:        rand.New(rand.NewSource(seed)),
		cutAfter:   -1,
		badSectors: make(map[int64]struct{}),
		window:     DefaultReorderWindow,
	}
}

// SetMetrics attaches injection counters: fault.injected.powercut,
// fault.injected.torn, fault.injected.readerr, fault.reorder.dropped.
func (s *Store) SetMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mCut = r.Counter("fault.injected.powercut")
	s.mTorn = r.Counter("fault.injected.torn")
	s.mReadErr = r.Counter("fault.injected.readerr")
	s.mDropped = r.Counter("fault.reorder.dropped")
	s.mSlow = r.Counter("fault.injected.slowio")
}

// SetClock attaches the simulated clock that slow-I/O injection (see
// SetSlowIO) advances. Latency injection is inert without a clock.
func (s *Store) SetClock(c *sim.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clk = c
}

// SetSlowIO degrades the device: every read and write charges an extra
// ns of simulated time on top of the disk model's computed service
// time, modeling media retries or a failing drive dragging its heels.
// Zero restores full speed. The extra time is charged at the store —
// below the disk's accounting — so per-request service times stay
// honest while operation latencies (what the flight recorder measures)
// balloon, which is exactly the anomaly shape a degrading disk shows.
func (s *Store) SetSlowIO(ns int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slowNs = ns
}

// chargeSlow advances the clock for one degraded I/O. Called with s.mu
// held.
func (s *Store) chargeSlow() {
	if s.slowNs > 0 && s.clk != nil {
		s.clk.Advance(s.slowNs)
		s.mSlow.Inc()
	}
}

// CutAfterWrites arms a power cut: the next n store-level writes
// succeed, then power fails and every subsequent I/O returns
// ErrPowerCut. n = 0 cuts on the very next write; n < 0 disarms.
func (s *Store) CutAfterWrites(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cutAfter = n
}

// CutNow cuts power immediately, dropping a random legal subset of the
// delayed writes still in the reorder window.
func (s *Store) CutNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.cut {
		s.powerCut()
	}
}

// Revive restores power after a cut: subsequent I/O reaches the inner
// store again. The image is whatever the cut left behind — the caller
// is expected to remount and run fsck, exactly like a machine reboot.
func (s *Store) Revive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cut = false
	s.cutAfter = -1
}

// Down reports whether power is currently cut.
func (s *Store) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cut
}

// SetTornProb makes each multi-sector write lose a uniformly chosen
// non-empty suffix of its sectors with probability p. The write still
// reports success — a torn write is a lie the hardware told, discovered
// only later — so p should be used with fsck close at hand.
func (s *Store) SetTornProb(p float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tornProb = p
}

// FailSector marks one sector (by LBA) as unreadable: any read
// overlapping it returns an error wrapping ErrReadFault. Writes still
// succeed and clear the fault, modeling a sector remap.
func (s *Store) FailSector(lba int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.badSectors[lba] = struct{}{}
}

// ClearFaults disarms every configured fault (cut countdown, torn
// probability, bad sectors) without touching power state.
func (s *Store) ClearFaults() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cutAfter = -1
	s.tornProb = 0
	s.badSectors = make(map[int64]struct{})
}

// SetReorderWindow bounds how many delayed writes keep pre-images for
// rollback at a power cut. Zero disables reordering: a cut then loses
// nothing already acknowledged, only the in-flight write.
func (s *Store) SetReorderWindow(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.window = k
	if k == 0 {
		s.pending = nil
	}
}

// ReadAt implements disk.Store.
func (s *Store) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cut {
		return ErrPowerCut
	}
	s.chargeSlow()
	if len(s.badSectors) > 0 && len(p) > 0 {
		last := (off + int64(len(p)) - 1) / disk.SectorSize
		for lba := off / disk.SectorSize; lba <= last; lba++ {
			if _, bad := s.badSectors[lba]; bad {
				s.mReadErr.Inc()
				return fmt.Errorf("%w: sector %d", ErrReadFault, lba)
			}
		}
	}
	return s.inner.ReadAt(p, off)
}

// WriteAt implements disk.Store: a delayed write, free to be dropped or
// reordered by a power cut until the next barrier retires it.
func (s *Store) WriteAt(p []byte, off int64) error {
	return s.write(p, off, false)
}

// WriteAtOrdered implements disk.OrderedStore: a barrier write. Every
// pending delayed write is committed (its pre-image discarded) before
// the barrier applies, so a later cut can no longer disturb them.
func (s *Store) WriteAtOrdered(p []byte, off int64) error {
	return s.write(p, off, true)
}

func (s *Store) write(p []byte, off int64, ordered bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cut {
		return ErrPowerCut
	}
	if s.cutAfter == 0 {
		s.powerCut()
		return ErrPowerCut
	}
	if s.cutAfter > 0 {
		s.cutAfter--
	}
	s.chargeSlow()
	if ordered {
		s.pending = s.pending[:0]
	}
	for lba := range s.badSectors {
		if off <= lba*disk.SectorSize && lba*disk.SectorSize < off+int64(len(p)) {
			delete(s.badSectors, lba) // overwrite remaps the sector
		}
	}
	if s.tornProb > 0 && len(p) > disk.SectorSize && s.rng.Float64() < s.tornProb {
		keep := (1 + s.rng.Intn(len(p)/disk.SectorSize-1)) * disk.SectorSize
		s.mTorn.Inc()
		return s.inner.WriteAt(p[:keep], off)
	}
	if !ordered && s.window > 0 {
		pre := make([]byte, len(p))
		if err := s.inner.ReadAt(pre, off); err != nil {
			return err
		}
		s.pending = append(s.pending, undoRec{off: off, pre: pre})
		if len(s.pending) > s.window {
			// Oldest record retires: treated as durable from here on.
			s.pending = s.pending[1:]
		}
	}
	return s.inner.WriteAt(p, off)
}

// powerCut flips the store dead and rolls back a random legal subset of
// the delayed writes still in the reorder window. Newest-first: a
// record may be dropped only if no kept newer record overlaps it,
// because restoring its pre-image would also revert the newer data.
// (The offline harness models the full legal set; the live rollback is
// the cheap subset reachable by pre-image restore.) Called with s.mu
// held.
func (s *Store) powerCut() {
	s.cut = true
	s.cutAfter = -1
	s.mCut.Inc()
	var kept []undoRec
	for i := len(s.pending) - 1; i >= 0; i-- {
		r := s.pending[i]
		blocked := false
		for j := range kept {
			if kept[j].overlaps(r.off, int64(len(r.pre))) {
				blocked = true
				break
			}
		}
		if blocked || s.rng.Intn(2) == 0 {
			kept = append(kept, r)
			continue
		}
		// Best effort: the inner store accepted this range moments ago.
		if err := s.inner.WriteAt(r.pre, r.off); err == nil {
			s.mDropped.Inc()
		}
	}
	s.pending = nil
}

// Close implements disk.Store.
func (s *Store) Close() error { return s.inner.Close() }
