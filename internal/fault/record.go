package fault

import (
	"fmt"
	"sync"

	"cffs/internal/disk"
)

// Entry is one recorded store-level write. Data is a private copy.
type Entry struct {
	Off     int64
	Data    []byte
	Ordered bool // barrier write (cache.WriteSync)
}

// Sectors returns how many whole sectors the write spans.
func (e *Entry) Sectors() int { return len(e.Data) / disk.SectorSize }

// Mark names a position in the write stream: the workload calls
// Recorder.Mark after an operation returns, so Index is the number of
// writes that had been issued when the operation was known complete.
type Mark struct {
	Name  string
	Index int
}

// Log is the recorded write stream of one failure-free run. The
// crash-enumeration harness rebuilds the disk image at any write
// boundary by replaying a prefix onto a snapshot of the starting image.
type Log struct {
	Entries []Entry
	Marks   []Mark
}

// Recorder is a pass-through disk.OrderedStore that records every write
// into a Log. Reads are forwarded untouched.
type Recorder struct {
	mu    sync.Mutex
	inner disk.Store
	log   Log
}

// NewRecorder wraps inner with a write recorder.
func NewRecorder(inner disk.Store) *Recorder {
	return &Recorder{inner: inner}
}

// Mark records that the named operation completed at the current write
// boundary.
func (r *Recorder) Mark(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log.Marks = append(r.log.Marks, Mark{Name: name, Index: len(r.log.Entries)})
}

// Log returns the recorded stream. The caller must be done writing.
func (r *Recorder) Log() *Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &r.log
}

// ReadAt implements disk.Store.
func (r *Recorder) ReadAt(p []byte, off int64) error {
	return r.inner.ReadAt(p, off)
}

// WriteAt implements disk.Store.
func (r *Recorder) WriteAt(p []byte, off int64) error {
	return r.record(p, off, false)
}

// WriteAtOrdered implements disk.OrderedStore.
func (r *Recorder) WriteAtOrdered(p []byte, off int64) error {
	return r.record(p, off, true)
}

func (r *Recorder) record(p []byte, off int64, ordered bool) error {
	dup := make([]byte, len(p))
	copy(dup, p)
	r.mu.Lock()
	r.log.Entries = append(r.log.Entries, Entry{Off: off, Data: dup, Ordered: ordered})
	r.mu.Unlock()
	return r.inner.WriteAt(p, off)
}

// Close implements disk.Store.
func (r *Recorder) Close() error { return r.inner.Close() }

// ApplyPrefix replays the first n writes onto st: the disk image of a
// clean crash immediately after the nth write completed.
func (l *Log) ApplyPrefix(st disk.Store, n int) error {
	if n < 0 || n > len(l.Entries) {
		return fmt.Errorf("fault: prefix %d outside log of %d writes", n, len(l.Entries))
	}
	for i := 0; i < n; i++ {
		e := &l.Entries[i]
		if err := st.WriteAt(e.Data, e.Off); err != nil {
			return err
		}
	}
	return nil
}

// ApplyTorn replays the first n writes, then applies only the first
// `sectors` sectors of write n: the image of a crash that tore the
// (n+1)th write. sectors must be in [1, Sectors()-1] — sector writes
// are atomic, so a multi-sector write can only lose whole trailing
// sectors.
func (l *Log) ApplyTorn(st disk.Store, n, sectors int) error {
	if n >= len(l.Entries) {
		return fmt.Errorf("fault: torn point %d outside log of %d writes", n, len(l.Entries))
	}
	e := &l.Entries[n]
	if sectors < 1 || sectors >= e.Sectors() {
		return fmt.Errorf("fault: torn length %d of a %d-sector write", sectors, e.Sectors())
	}
	if err := l.ApplyPrefix(st, n); err != nil {
		return err
	}
	return st.WriteAt(e.Data[:sectors*disk.SectorSize], e.Off)
}

// ApplyPrefixDropping replays the first n writes except those whose
// indices are in drop: the image of a crash at boundary n where the
// disk's volatile cache had reordered the dropped writes behind their
// neighbors. Every index in drop must be legally droppable at n — see
// DroppableAt.
func (l *Log) ApplyPrefixDropping(st disk.Store, n int, drop map[int]bool) error {
	if n < 0 || n > len(l.Entries) {
		return fmt.Errorf("fault: prefix %d outside log of %d writes", n, len(l.Entries))
	}
	barrier := l.lastBarrier(n)
	for i := 0; i < n; i++ {
		if drop[i] {
			if l.Entries[i].Ordered || i <= barrier {
				return fmt.Errorf("fault: write %d is not droppable at boundary %d (barrier at %d)", i, n, barrier)
			}
			continue
		}
		e := &l.Entries[i]
		if err := st.WriteAt(e.Data, e.Off); err != nil {
			return err
		}
	}
	return nil
}

// DroppableAt returns the indices of writes a crash at boundary n may
// legally lose: the delayed writes issued after the last barrier. An
// ordered write guarantees everything before it is durable, so only the
// tail beyond the newest barrier is still volatile.
func (l *Log) DroppableAt(n int) []int {
	var out []int
	for i := l.lastBarrier(n) + 1; i < n; i++ {
		if !l.Entries[i].Ordered {
			out = append(out, i)
		}
	}
	return out
}

// InFlightAt returns the name of the operation in flight at write
// boundary n — the first mark recorded after n, whose writes may be
// partially applied in a crash at n. Sequential workloads have at most
// one. Empty when every recorded mark precedes the boundary.
func (l *Log) InFlightAt(n int) string {
	for _, m := range l.Marks {
		if m.Index > n {
			return m.Name
		}
	}
	return ""
}

// lastBarrier returns the index of the newest ordered write before
// boundary n, or -1.
func (l *Log) lastBarrier(n int) int {
	for i := n - 1; i >= 0; i-- {
		if l.Entries[i].Ordered {
			return i
		}
	}
	return -1
}

// CompletedBy returns the names of operations whose completion marks
// were recorded at or before write boundary n, in order.
func (l *Log) CompletedBy(n int) []string {
	var out []string
	for _, m := range l.Marks {
		if m.Index <= n {
			out = append(out, m.Name)
		}
	}
	return out
}
