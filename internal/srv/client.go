package srv

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"cffs/internal/vfs"
)

// Client is the Go-side of the wire protocol: it owns one connection,
// multiplexes concurrent RPCs over tags, and hands out Fid handles.
// All methods are safe for concurrent use; the intended shape is many
// session goroutines sharing nothing and each owning a Client, but a
// shared Client pipelines correctly too.
type Client struct {
	nc    net.Conn
	msize uint32

	// rmsize is the frame limit the read loop enforces: MaxMsize while
	// the version exchange is still in flight, then the negotiated
	// msize — a conforming client drops a server that overruns what it
	// advertised.
	rmsize atomic.Uint32

	wmu sync.Mutex // frame writes

	mu      sync.Mutex
	pending map[uint16]chan *Fcall
	nextTag uint16
	nextFid uint32
	err     error // terminal receive error, set once
	done    chan struct{}
}

// NewClient negotiates the protocol over nc and returns a ready client.
func NewClient(nc net.Conn) (*Client, error) {
	c := &Client{
		nc:      nc,
		msize:   MaxMsize,
		pending: make(map[uint16]chan *Fcall),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	r, err := c.rpc(&Fcall{Type: Tversion, Msize: DefaultMsize, Version: Version})
	if err != nil {
		nc.Close()
		return nil, err
	}
	if r.Type != Rversion || r.Version != Version {
		nc.Close()
		return nil, fmt.Errorf("version %q/%v not accepted: %w", r.Version, r.Type, ErrProto)
	}
	c.msize = r.Msize
	c.rmsize.Store(r.Msize)
	return c, nil
}

// Close drops the connection; the server releases every fid.
func (c *Client) Close() error { return c.nc.Close() }

// Msize is the negotiated frame limit.
func (c *Client) Msize() uint32 { return c.msize }

// MaxIO is the largest read/write payload that fits one frame.
func (c *Client) MaxIO() int { return int(c.msize) - IOHeadroom }

func (c *Client) readLoop() {
	for {
		limit := c.rmsize.Load()
		if limit == 0 {
			limit = MaxMsize
		}
		f, err := ReadFcall(c.nc, limit)
		if err != nil {
			c.mu.Lock()
			if c.err == nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				c.err = fmt.Errorf("srv client: connection lost: %w", err)
			}
			c.mu.Unlock()
			close(c.done)
			return
		}
		c.mu.Lock()
		ch := c.pending[f.Tag]
		delete(c.pending, f.Tag)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// rpc sends one T-message and waits for its response frame.
func (c *Client) rpc(f *Fcall) (*Fcall, error) {
	ch := make(chan *Fcall, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	for {
		tag := c.nextTag
		c.nextTag++
		if tag == NoTag {
			continue
		}
		if _, busy := c.pending[tag]; busy {
			continue
		}
		f.Tag = tag
		c.pending[tag] = ch
		break
	}
	c.mu.Unlock()

	c.wmu.Lock()
	err := WriteFcall(c.nc, f, c.msize)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, f.Tag)
		c.mu.Unlock()
		return nil, fmt.Errorf("srv client: send %v: %w", f.Type, err)
	}

	select {
	case r := <-ch:
		if r.Type == Rerror {
			return nil, r.Err()
		}
		if r.Type != f.Type+1 {
			return nil, fmt.Errorf("srv client: %v answered with %v: %w", f.Type, r.Type, ErrProto)
		}
		return r, nil
	case <-c.done:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
}

func (c *Client) allocFid() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		id := c.nextFid
		c.nextFid++
		if id != NoFid {
			return id
		}
	}
}

// Fid is a client-side handle bound to one server-side fid.
type Fid struct {
	c  *Client
	id uint32
}

// Attach starts a session as tenant, returning a fid for the tenant
// root directory.
func (c *Client) Attach(tenant string) (*Fid, error) {
	id := c.allocFid()
	if _, err := c.rpc(&Fcall{Type: Tattach, Fid: id, Tenant: tenant}); err != nil {
		return nil, err
	}
	return &Fid{c: c, id: id}, nil
}

// Fsync flushes the file system behind the session. It needs any live
// fid because requests are admitted per tenant.
func (f *Fid) Fsync() error {
	_, err := f.c.rpc(&Fcall{Type: Tfsync, Fid: f.id})
	return err
}

// Walk resolves names relative to f, returning a new fid. An empty
// names list clones f.
func (f *Fid) Walk(names ...string) (*Fid, error) {
	id := f.c.allocFid()
	_, err := f.c.rpc(&Fcall{Type: Twalk, Fid: f.id, NewFid: id, Names: names})
	if err != nil {
		return nil, err
	}
	return &Fid{c: f.c, id: id}, nil
}

// WalkPath is Walk on slash-separated components.
func (f *Fid) WalkPath(path string) (*Fid, error) {
	return f.Walk(vfs.SplitPath(path)...)
}

// Open enables I/O on f with OMode* access bits.
func (f *Fid) Open(mode uint8) (vfs.Stat, error) {
	r, err := f.c.rpc(&Fcall{Type: Topen, Fid: f.id, Mode: mode})
	if err != nil {
		return vfs.Stat{}, err
	}
	return r.Stat.Stat(), nil
}

// Create makes name under directory f and returns its fid, already
// open read-write.
func (f *Fid) Create(name string) (*Fid, error) {
	id := f.c.allocFid()
	_, err := f.c.rpc(&Fcall{Type: Tcreate, Fid: f.id, NewFid: id, Name: name})
	if err != nil {
		return nil, err
	}
	return &Fid{c: f.c, id: id}, nil
}

// Mkdir makes a directory under f.
func (f *Fid) Mkdir(name string) (uint64, error) {
	r, err := f.c.rpc(&Fcall{Type: Tmkdir, Fid: f.id, Name: name})
	if err != nil {
		return 0, err
	}
	return r.Ino, nil
}

// ReadAt reads up to len(p) bytes at off in one RPC (clipped to the
// negotiated frame size); like pread, a short count with nil error
// means end of file.
func (f *Fid) ReadAt(p []byte, off int64) (int, error) {
	count := len(p)
	if m := f.c.MaxIO(); count > m {
		count = m
	}
	r, err := f.c.rpc(&Fcall{Type: Tread, Fid: f.id, Off: off, Count: uint32(count)})
	if err != nil {
		return 0, err
	}
	return copy(p, r.Data), nil
}

// WriteAt writes p at off, splitting into frame-sized RPCs as needed.
func (f *Fid) WriteAt(p []byte, off int64) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := p
		if m := f.c.MaxIO(); len(chunk) > m {
			chunk = chunk[:m]
		}
		r, err := f.c.rpc(&Fcall{Type: Twrite, Fid: f.id, Off: off, Data: chunk})
		if err != nil {
			return total, err
		}
		n := int(r.Count)
		total += n
		off += int64(n)
		p = p[n:]
		if n < len(chunk) {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

// Stat fetches current metadata.
func (f *Fid) Stat() (vfs.Stat, error) {
	r, err := f.c.rpc(&Fcall{Type: Tstat, Fid: f.id})
	if err != nil {
		return vfs.Stat{}, err
	}
	return r.Stat.Stat(), nil
}

// ReadDirPage fetches one page of directory entries starting at entry
// index off (name order), reporting whether more remain. One RPC.
func (f *Fid) ReadDirPage(off int64) ([]vfs.DirEntry, bool, error) {
	r, err := f.c.rpc(&Fcall{Type: Treaddir, Fid: f.id, Off: off})
	if err != nil {
		return nil, false, err
	}
	ents := make([]vfs.DirEntry, len(r.Ents))
	for i, e := range r.Ents {
		ents[i] = vfs.DirEntry{Name: e.Name, Ino: vfs.Ino(e.Ino), Type: vfs.FileType(e.Type)}
	}
	return ents, r.More, nil
}

// ReadDir fetches the whole directory, paging as needed.
func (f *Fid) ReadDir() ([]vfs.DirEntry, error) {
	var all []vfs.DirEntry
	for {
		ents, more, err := f.ReadDirPage(int64(len(all)))
		if err != nil {
			return nil, err
		}
		all = append(all, ents...)
		if !more || len(ents) == 0 {
			return all, nil
		}
	}
}

// Unlink removes the regular file name in directory f.
func (f *Fid) Unlink(name string) error {
	_, err := f.c.rpc(&Fcall{Type: Tunlink, Fid: f.id, Name: name})
	return err
}

// Rmdir removes the empty directory name in directory f.
func (f *Fid) Rmdir(name string) error {
	_, err := f.c.rpc(&Fcall{Type: Tunlink, Fid: f.id, Name: name, Rmdir: true})
	return err
}

// Rename moves name in directory f to newName in directory newDir
// (which must belong to the same tenant).
func (f *Fid) Rename(name string, newDir *Fid, newName string) error {
	_, err := f.c.rpc(&Fcall{Type: Trename, Fid: f.id, Name: name, DirFid: newDir.id, NewName: newName})
	return err
}

// MaxIO is the largest single-RPC read/write payload on f's client.
func (f *Fid) MaxIO() int { return f.c.MaxIO() }

// Clunk releases the server-side fid.
func (f *Fid) Clunk() error {
	_, err := f.c.rpc(&Fcall{Type: Tclunk, Fid: f.id})
	return err
}
