package srv_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"cffs/internal/srv"
)

// rawDial opens a loopback connection for hand-rolled frames.
func rawDial(t *testing.T, lb *srv.Loopback) net.Conn {
	t.Helper()
	nc, err := lb.Dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

func frame(typ byte, tag uint16, body []byte) []byte {
	b := make([]byte, 7+len(body))
	binary.LittleEndian.PutUint32(b, uint32(len(b)))
	b[4] = typ
	binary.LittleEndian.PutUint16(b[5:7], tag)
	copy(b[7:], body)
	return b
}

// readRaw reads one frame off a hand-rolled connection.
func readRaw(t *testing.T, nc net.Conn) *srv.Fcall {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := srv.ReadFcall(nc, srv.MaxMsize)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return f
}

// expectClosed asserts the server dropped the connection.
func expectClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var b [1]byte
	if _, err := nc.Read(b[:]); err == nil {
		t.Fatal("connection still open, want closed")
	} else if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("connection still open (read timed out), want closed")
	}
}

// TestTortureFraming throws frame-level garbage at the daemon: sizes
// below the header, oversized lengths, and truncated frames. Each must
// kill only its own connection — no panic, no fid leak, and the server
// keeps serving well-behaved clients.
func TestTortureFraming(t *testing.T) {
	s, lb := testServer(t, srv.Config{}, "alpha")

	t.Run("size-below-header", func(t *testing.T) {
		nc := rawDial(t, lb)
		hdr := make([]byte, 7)
		binary.LittleEndian.PutUint32(hdr, 3) // impossible: smaller than the header itself
		nc.Write(hdr)
		expectClosed(t, nc)
	})
	t.Run("oversized-length", func(t *testing.T) {
		nc := rawDial(t, lb)
		hdr := make([]byte, 7)
		binary.LittleEndian.PutUint32(hdr, 1<<31) // 2 GB frame
		hdr[4] = byte(srv.Tversion)
		nc.Write(hdr)
		expectClosed(t, nc)
	})
	t.Run("truncated-frame", func(t *testing.T) {
		nc := rawDial(t, lb)
		// Announce a 64-byte frame, send half of it, hang up.
		full := frame(byte(srv.Tattach), 1, make([]byte, 57))
		nc.Write(full[:20])
		nc.Close()
		// Nothing to read back; the point is the server side survives.
	})
	t.Run("truncated-body-fields", func(t *testing.T) {
		nc := rawDial(t, lb)
		// Frame length is honest but the body lies: a Tattach whose
		// tenant string claims more bytes than the body holds.
		body := make([]byte, 7)
		binary.LittleEndian.PutUint32(body, 9) // fid
		binary.LittleEndian.PutUint16(body[4:6], 200)
		nc.Write(frame(byte(srv.Tattach), 1, body))
		expectClosed(t, nc)
	})

	// The server is still alive and correct for a well-behaved client.
	c := dialClient(t, lb)
	if _, err := c.Attach("alpha"); err != nil {
		t.Fatalf("attach after torture: %v", err)
	}
	c.Close()
	waitZeroFids(t, s)
}

// TestTortureMessages sends well-framed nonsense — unknown types,
// unknown fids, duplicate tags — which must each earn an Rerror while
// the connection stays usable.
func TestTortureMessages(t *testing.T) {
	s, lb := testServer(t, srv.Config{QoS: srv.QoS{Workers: 1}}, "alpha")
	nc := rawDial(t, lb)

	// Version first, by hand.
	vbody := make([]byte, 4+2+len(srv.Version))
	binary.LittleEndian.PutUint32(vbody, srv.DefaultMsize)
	binary.LittleEndian.PutUint16(vbody[4:6], uint16(len(srv.Version)))
	copy(vbody[6:], srv.Version)
	nc.Write(frame(byte(srv.Tversion), 0xAAAA, vbody))
	if r := readRaw(t, nc); r.Type != srv.Rversion {
		t.Fatalf("version reply = %v", r.Type)
	}

	t.Run("unknown-type", func(t *testing.T) {
		nc.Write(frame(200, 7, []byte("gibberish")))
		r := readRaw(t, nc)
		if r.Type != srv.Rerror || r.Tag != 7 || !errors.Is(r.Err(), srv.ErrProto) {
			t.Fatalf("reply = %v tag %d err %v, want Rerror/7/ErrProto", r.Type, r.Tag, r.Err())
		}
	})
	t.Run("unknown-fid", func(t *testing.T) {
		body := make([]byte, 13)
		binary.LittleEndian.PutUint32(body, 999) // never attached
		nc.Write(frame(byte(srv.Tstat), 8, body[:4]))
		r := readRaw(t, nc)
		if r.Type != srv.Rerror || !errors.Is(r.Err(), srv.ErrProto) {
			t.Fatalf("stat of unknown fid: %v / %v", r.Type, r.Err())
		}
	})
	t.Run("clunk-unknown-fid", func(t *testing.T) {
		body := make([]byte, 4)
		binary.LittleEndian.PutUint32(body, 998)
		nc.Write(frame(byte(srv.Tclunk), 9, body))
		r := readRaw(t, nc)
		if r.Type != srv.Rerror || !errors.Is(r.Err(), srv.ErrProto) {
			t.Fatalf("clunk of unknown fid: %v / %v", r.Type, r.Err())
		}
	})
	t.Run("duplicate-tags", func(t *testing.T) {
		// Attach fid 1, then pipeline two Tstat requests with the SAME
		// tag before reading either response. With one worker the
		// first is parked in the dispatcher while the reader sees the
		// second — which must be refused (ErrProto) without executing,
		// and the first must still answer. Exactly one of each.
		abody := make([]byte, 4+2+5)
		binary.LittleEndian.PutUint32(abody, 1)
		binary.LittleEndian.PutUint16(abody[4:6], 5)
		copy(abody[6:], "alpha")
		nc.Write(frame(byte(srv.Tattach), 10, abody))
		if r := readRaw(t, nc); r.Type != srv.Rattach {
			t.Fatalf("attach: %v", r.Type)
		}
		sbody := make([]byte, 4)
		binary.LittleEndian.PutUint32(sbody, 1)
		two := append(frame(byte(srv.Tstat), 42, sbody), frame(byte(srv.Tstat), 42, sbody)...)
		nc.Write(two)
		var stats, protoErrs int
		for i := 0; i < 2; i++ {
			switch r := readRaw(t, nc); {
			case r.Type == srv.Rstat && r.Tag == 42:
				stats++
			case r.Type == srv.Rerror && r.Tag == 42 && errors.Is(r.Err(), srv.ErrProto):
				protoErrs++
			default:
				t.Fatalf("unexpected reply %v tag %d", r.Type, r.Tag)
			}
		}
		if stats != 1 || protoErrs != 1 {
			t.Fatalf("duplicate tag: %d Rstat + %d proto errors, want 1 + 1", stats, protoErrs)
		}
		// The tag is free again afterwards.
		nc.Write(frame(byte(srv.Tstat), 42, sbody))
		if r := readRaw(t, nc); r.Type != srv.Rstat {
			t.Fatalf("tag reuse after completion: %v / %v", r.Type, r.Err())
		}
	})
	t.Run("duplicate-tag-attach", func(t *testing.T) {
		// Tattach runs synchronously on the reader, but its tag still
		// goes through the in-flight table: pipelining a Tstat and a
		// Tattach on one tag must refuse the attach without executing
		// it, so its fid never comes into existence.
		abody := make([]byte, 4+2+5)
		binary.LittleEndian.PutUint32(abody, 77) // would-be attach fid
		binary.LittleEndian.PutUint16(abody[4:6], 5)
		copy(abody[6:], "alpha")
		two := append(frame(byte(srv.Tstat), 50, u32body(1)), frame(byte(srv.Tattach), 50, abody)...)
		nc.Write(two)
		var stats, protoErrs int
		for i := 0; i < 2; i++ {
			switch r := readRaw(t, nc); {
			case r.Type == srv.Rstat && r.Tag == 50:
				stats++
			case r.Type == srv.Rerror && r.Tag == 50 && errors.Is(r.Err(), srv.ErrProto):
				protoErrs++
			default:
				t.Fatalf("unexpected reply %v tag %d", r.Type, r.Tag)
			}
		}
		if stats != 1 || protoErrs != 1 {
			t.Fatalf("duplicate-tag attach: %d Rstat + %d proto errors, want 1 + 1", stats, protoErrs)
		}
		// The refused attach never executed: fid 77 does not exist.
		nc.Write(frame(byte(srv.Tstat), 51, u32body(77)))
		if r := readRaw(t, nc); r.Type != srv.Rerror || !errors.Is(r.Err(), srv.ErrProto) {
			t.Fatalf("fid from refused attach exists: %v / %v", r.Type, r.Err())
		}
	})
	t.Run("duplicate-tag-clunk", func(t *testing.T) {
		// Same shape for Tclunk: refused on a busy tag, and the fid it
		// named must survive.
		two := append(frame(byte(srv.Tstat), 60, u32body(1)), frame(byte(srv.Tclunk), 60, u32body(1))...)
		nc.Write(two)
		var stats, protoErrs int
		for i := 0; i < 2; i++ {
			switch r := readRaw(t, nc); {
			case r.Type == srv.Rstat && r.Tag == 60:
				stats++
			case r.Type == srv.Rerror && r.Tag == 60 && errors.Is(r.Err(), srv.ErrProto):
				protoErrs++
			default:
				t.Fatalf("unexpected reply %v tag %d", r.Type, r.Tag)
			}
		}
		if stats != 1 || protoErrs != 1 {
			t.Fatalf("duplicate-tag clunk: %d Rstat + %d proto errors, want 1 + 1", stats, protoErrs)
		}
		nc.Write(frame(byte(srv.Tstat), 61, u32body(1)))
		if r := readRaw(t, nc); r.Type != srv.Rstat {
			t.Fatalf("fid clunked by refused request: %v / %v", r.Type, r.Err())
		}
	})

	nc.Close()
	waitZeroFids(t, s)
}

func u32body(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

// negotiate runs the version exchange on a raw connection, asserting
// the server echoes the requested msize back.
func negotiate(t *testing.T, nc net.Conn, msize uint32) {
	t.Helper()
	vbody := make([]byte, 4+2+len(srv.Version))
	binary.LittleEndian.PutUint32(vbody, msize)
	binary.LittleEndian.PutUint16(vbody[4:6], uint16(len(srv.Version)))
	copy(vbody[6:], srv.Version)
	nc.Write(frame(byte(srv.Tversion), 0, vbody))
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	r, err := srv.ReadFcall(nc, msize)
	if err != nil {
		t.Fatalf("version exchange: %v", err)
	}
	if r.Type != srv.Rversion || r.Msize != msize {
		t.Fatalf("version reply %v msize %d, want Rversion msize %d", r.Type, r.Msize, msize)
	}
}

// readLimited reads one frame enforcing the negotiated msize — exactly
// what a conforming client does, so an over-budget server frame fails
// the test.
func readLimited(t *testing.T, nc net.Conn, msize uint32) *srv.Fcall {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := srv.ReadFcall(nc, msize)
	if err != nil {
		t.Fatalf("read frame (msize %d): %v", msize, err)
	}
	return f
}

// TestTortureNegotiatedMsize pins per-connection msize enforcement:
// after negotiating the minimum frame size, inbound frames above it
// kill the connection, and response frames — readdir pages included —
// stay under it even though the server-wide cap is much larger.
func TestTortureNegotiatedMsize(t *testing.T) {
	s, lb := testServer(t, srv.Config{}, "alpha")

	// Populate a directory too large for a single MinMsize readdir page.
	const entries = 400
	c := dialClient(t, lb)
	root, err := c.Attach("alpha")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		f, err := root.Create(fmt.Sprintf("entry%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Clunk(); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	t.Run("response-budget", func(t *testing.T) {
		nc := rawDial(t, lb)
		negotiate(t, nc, srv.MinMsize)
		abody := make([]byte, 4+2+5)
		binary.LittleEndian.PutUint32(abody, 1)
		binary.LittleEndian.PutUint16(abody[4:6], 5)
		copy(abody[6:], "alpha")
		nc.Write(frame(byte(srv.Tattach), 1, abody))
		if r := readLimited(t, nc, srv.MinMsize); r.Type != srv.Rattach {
			t.Fatalf("attach: %v / %v", r.Type, r.Err())
		}
		obody := append(u32body(1), srv.OModeRead)
		nc.Write(frame(byte(srv.Topen), 2, obody))
		if r := readLimited(t, nc, srv.MinMsize); r.Type != srv.Ropen {
			t.Fatalf("open: %v / %v", r.Type, r.Err())
		}
		// Page the directory; readLimited rejects any frame over the
		// negotiated msize, and the clipped budget must force paging.
		// Tags advance per page: a tag stays reserved until its
		// response write returns, so instant reuse can race the release.
		total, pages := 0, 0
		for {
			rbody := make([]byte, 12)
			binary.LittleEndian.PutUint32(rbody, 1)
			binary.LittleEndian.PutUint64(rbody[4:], uint64(total))
			nc.Write(frame(byte(srv.Treaddir), uint16(3+pages), rbody))
			r := readLimited(t, nc, srv.MinMsize)
			if r.Type != srv.Rreaddir {
				t.Fatalf("readdir: %v / %v", r.Type, r.Err())
			}
			total += len(r.Ents)
			pages++
			if !r.More {
				break
			}
		}
		if total < entries {
			t.Fatalf("paged %d entries, want >= %d", total, entries)
		}
		if pages < 2 {
			t.Fatalf("directory fit one page; budget not clipped to the negotiated msize")
		}
	})

	t.Run("oversized-request", func(t *testing.T) {
		nc := rawDial(t, lb)
		negotiate(t, nc, srv.MinMsize)
		// Below the server-wide cap but above this connection's
		// negotiated msize: the framing layer must drop the connection.
		body := make([]byte, 4+8+4+2*srv.MinMsize)
		binary.LittleEndian.PutUint32(body, 1)
		binary.LittleEndian.PutUint32(body[12:], 2*srv.MinMsize)
		nc.Write(frame(byte(srv.Twrite), 4, body))
		expectClosed(t, nc)
	})
	waitZeroFids(t, s)
}

// TestTortureMidOpDrop cuts connections while operations are in
// flight, from many goroutines at once. The daemon must neither panic
// nor leak: once every connection is gone the fid table is empty.
func TestTortureMidOpDrop(t *testing.T) {
	s, lb := testServer(t, srv.Config{QoS: srv.QoS{Workers: 4, FairShare: true}}, "alpha", "beta")

	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc, err := lb.Dial()
			if err != nil {
				return
			}
			c, err := srv.NewClient(nc)
			if err != nil {
				nc.Close()
				return
			}
			tenant := "alpha"
			if i%2 == 1 {
				tenant = "beta"
			}
			root, err := c.Attach(tenant)
			if err != nil {
				c.Close()
				return
			}
			// Kick off a burst of concurrent ops and slam the door at a
			// random point in the middle.
			var ops sync.WaitGroup
			for j := 0; j < 8; j++ {
				ops.Add(1)
				go func(j int) {
					defer ops.Done()
					if f, err := root.Create(byName(i, j)); err == nil {
						f.WriteAt([]byte("mid-op payload"), 0)
						f.Stat()
					}
				}(j)
			}
			if i%3 == 0 {
				c.Close() // immediate cut, ops in flight
			} else {
				ops.Wait()
				c.Close()
			}
			ops.Wait()
		}(i)
	}
	wg.Wait()
	waitZeroFids(t, s)
	if n := s.ConnCount(); n != 0 {
		t.Fatalf("%d connections still tracked", n)
	}
}

func byName(i, j int) string {
	return "f" + string(rune('a'+i)) + string(rune('a'+j))
}
