package srv_test

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"cffs/internal/srv"
)

// rawDial opens a loopback connection for hand-rolled frames.
func rawDial(t *testing.T, lb *srv.Loopback) net.Conn {
	t.Helper()
	nc, err := lb.Dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

func frame(typ byte, tag uint16, body []byte) []byte {
	b := make([]byte, 7+len(body))
	binary.LittleEndian.PutUint32(b, uint32(len(b)))
	b[4] = typ
	binary.LittleEndian.PutUint16(b[5:7], tag)
	copy(b[7:], body)
	return b
}

// readRaw reads one frame off a hand-rolled connection.
func readRaw(t *testing.T, nc net.Conn) *srv.Fcall {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := srv.ReadFcall(nc, srv.MaxMsize)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return f
}

// expectClosed asserts the server dropped the connection.
func expectClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var b [1]byte
	if _, err := nc.Read(b[:]); err == nil {
		t.Fatal("connection still open, want closed")
	} else if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("connection still open (read timed out), want closed")
	}
}

// TestTortureFraming throws frame-level garbage at the daemon: sizes
// below the header, oversized lengths, and truncated frames. Each must
// kill only its own connection — no panic, no fid leak, and the server
// keeps serving well-behaved clients.
func TestTortureFraming(t *testing.T) {
	s, lb := testServer(t, srv.Config{}, "alpha")

	t.Run("size-below-header", func(t *testing.T) {
		nc := rawDial(t, lb)
		hdr := make([]byte, 7)
		binary.LittleEndian.PutUint32(hdr, 3) // impossible: smaller than the header itself
		nc.Write(hdr)
		expectClosed(t, nc)
	})
	t.Run("oversized-length", func(t *testing.T) {
		nc := rawDial(t, lb)
		hdr := make([]byte, 7)
		binary.LittleEndian.PutUint32(hdr, 1<<31) // 2 GB frame
		hdr[4] = byte(srv.Tversion)
		nc.Write(hdr)
		expectClosed(t, nc)
	})
	t.Run("truncated-frame", func(t *testing.T) {
		nc := rawDial(t, lb)
		// Announce a 64-byte frame, send half of it, hang up.
		full := frame(byte(srv.Tattach), 1, make([]byte, 57))
		nc.Write(full[:20])
		nc.Close()
		// Nothing to read back; the point is the server side survives.
	})
	t.Run("truncated-body-fields", func(t *testing.T) {
		nc := rawDial(t, lb)
		// Frame length is honest but the body lies: a Tattach whose
		// tenant string claims more bytes than the body holds.
		body := make([]byte, 7)
		binary.LittleEndian.PutUint32(body, 9) // fid
		binary.LittleEndian.PutUint16(body[4:6], 200)
		nc.Write(frame(byte(srv.Tattach), 1, body))
		expectClosed(t, nc)
	})

	// The server is still alive and correct for a well-behaved client.
	c := dialClient(t, lb)
	if _, err := c.Attach("alpha"); err != nil {
		t.Fatalf("attach after torture: %v", err)
	}
	c.Close()
	waitZeroFids(t, s)
}

// TestTortureMessages sends well-framed nonsense — unknown types,
// unknown fids, duplicate tags — which must each earn an Rerror while
// the connection stays usable.
func TestTortureMessages(t *testing.T) {
	s, lb := testServer(t, srv.Config{QoS: srv.QoS{Workers: 1}}, "alpha")
	nc := rawDial(t, lb)

	// Version first, by hand.
	vbody := make([]byte, 4+2+len(srv.Version))
	binary.LittleEndian.PutUint32(vbody, srv.DefaultMsize)
	binary.LittleEndian.PutUint16(vbody[4:6], uint16(len(srv.Version)))
	copy(vbody[6:], srv.Version)
	nc.Write(frame(byte(srv.Tversion), 0xAAAA, vbody))
	if r := readRaw(t, nc); r.Type != srv.Rversion {
		t.Fatalf("version reply = %v", r.Type)
	}

	t.Run("unknown-type", func(t *testing.T) {
		nc.Write(frame(200, 7, []byte("gibberish")))
		r := readRaw(t, nc)
		if r.Type != srv.Rerror || r.Tag != 7 || !errors.Is(r.Err(), srv.ErrProto) {
			t.Fatalf("reply = %v tag %d err %v, want Rerror/7/ErrProto", r.Type, r.Tag, r.Err())
		}
	})
	t.Run("unknown-fid", func(t *testing.T) {
		body := make([]byte, 13)
		binary.LittleEndian.PutUint32(body, 999) // never attached
		nc.Write(frame(byte(srv.Tstat), 8, body[:4]))
		r := readRaw(t, nc)
		if r.Type != srv.Rerror || !errors.Is(r.Err(), srv.ErrProto) {
			t.Fatalf("stat of unknown fid: %v / %v", r.Type, r.Err())
		}
	})
	t.Run("clunk-unknown-fid", func(t *testing.T) {
		body := make([]byte, 4)
		binary.LittleEndian.PutUint32(body, 998)
		nc.Write(frame(byte(srv.Tclunk), 9, body))
		r := readRaw(t, nc)
		if r.Type != srv.Rerror || !errors.Is(r.Err(), srv.ErrProto) {
			t.Fatalf("clunk of unknown fid: %v / %v", r.Type, r.Err())
		}
	})
	t.Run("duplicate-tags", func(t *testing.T) {
		// Attach fid 1, then pipeline two Tstat requests with the SAME
		// tag before reading either response. With one worker the
		// first is parked in the dispatcher while the reader sees the
		// second — which must be refused (ErrProto) without executing,
		// and the first must still answer. Exactly one of each.
		abody := make([]byte, 4+2+5)
		binary.LittleEndian.PutUint32(abody, 1)
		binary.LittleEndian.PutUint16(abody[4:6], 5)
		copy(abody[6:], "alpha")
		nc.Write(frame(byte(srv.Tattach), 10, abody))
		if r := readRaw(t, nc); r.Type != srv.Rattach {
			t.Fatalf("attach: %v", r.Type)
		}
		sbody := make([]byte, 4)
		binary.LittleEndian.PutUint32(sbody, 1)
		two := append(frame(byte(srv.Tstat), 42, sbody), frame(byte(srv.Tstat), 42, sbody)...)
		nc.Write(two)
		var stats, protoErrs int
		for i := 0; i < 2; i++ {
			switch r := readRaw(t, nc); {
			case r.Type == srv.Rstat && r.Tag == 42:
				stats++
			case r.Type == srv.Rerror && r.Tag == 42 && errors.Is(r.Err(), srv.ErrProto):
				protoErrs++
			default:
				t.Fatalf("unexpected reply %v tag %d", r.Type, r.Tag)
			}
		}
		if stats != 1 || protoErrs != 1 {
			t.Fatalf("duplicate tag: %d Rstat + %d proto errors, want 1 + 1", stats, protoErrs)
		}
		// The tag is free again afterwards.
		nc.Write(frame(byte(srv.Tstat), 42, sbody))
		if r := readRaw(t, nc); r.Type != srv.Rstat {
			t.Fatalf("tag reuse after completion: %v / %v", r.Type, r.Err())
		}
	})

	nc.Close()
	waitZeroFids(t, s)
}

// TestTortureMidOpDrop cuts connections while operations are in
// flight, from many goroutines at once. The daemon must neither panic
// nor leak: once every connection is gone the fid table is empty.
func TestTortureMidOpDrop(t *testing.T) {
	s, lb := testServer(t, srv.Config{QoS: srv.QoS{Workers: 4, FairShare: true}}, "alpha", "beta")

	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc, err := lb.Dial()
			if err != nil {
				return
			}
			c, err := srv.NewClient(nc)
			if err != nil {
				nc.Close()
				return
			}
			tenant := "alpha"
			if i%2 == 1 {
				tenant = "beta"
			}
			root, err := c.Attach(tenant)
			if err != nil {
				c.Close()
				return
			}
			// Kick off a burst of concurrent ops and slam the door at a
			// random point in the middle.
			var ops sync.WaitGroup
			for j := 0; j < 8; j++ {
				ops.Add(1)
				go func(j int) {
					defer ops.Done()
					if f, err := root.Create(byName(i, j)); err == nil {
						f.WriteAt([]byte("mid-op payload"), 0)
						f.Stat()
					}
				}(j)
			}
			if i%3 == 0 {
				c.Close() // immediate cut, ops in flight
			} else {
				ops.Wait()
				c.Close()
			}
			ops.Wait()
		}(i)
	}
	wg.Wait()
	waitZeroFids(t, s)
	if n := s.ConnCount(); n != 0 {
		t.Fatalf("%d connections still tracked", n)
	}
}

func byName(i, j int) string {
	return "f" + string(rune('a'+i)) + string(rune('a'+j))
}
