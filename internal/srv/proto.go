// Package srv puts a network front end on the concurrent file system:
// a length-prefixed binary wire protocol in the 9P style (tagged
// request/response pairs, so one connection carries many in-flight
// operations), per-tenant namespaces rooted at directory subtrees, and
// per-tenant QoS (token-bucket admission plus a fair-share dispatcher)
// between the socket and the vfs entry points.
//
// The protocol deliberately resolves names once: Tattach and Twalk turn
// paths into fids, and every hot-path operation (read, write, stat,
// readdir) then goes by fid — no per-op path resolution or permission
// round trips, the BuffetFS argument applied to tenancy. A fid is bound
// to the tenant that attached it and can never walk above the tenant
// root, so namespace isolation is enforced structurally by the handle,
// not by checking prefixes on every request.
package srv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cffs/internal/vfs"
)

// Version is the protocol revision negotiated by Tversion. Servers
// refuse clients that speak anything else.
const Version = "cffs.1"

// Message sizes. A frame is size[4] type[1] tag[2] body, with size
// counting the whole frame including itself (little-endian, like the
// rest of the on-disk structures in this repo). msize is the negotiated
// maximum frame size; reads and readdir pages are clipped to fit.
const (
	headerBytes  = 7
	MinMsize     = 1 << 12
	DefaultMsize = 256 << 10
	MaxMsize     = 1 << 20
)

// IOHeadroom is the worst-case framing overhead around a Tread/Twrite
// payload; msize - IOHeadroom bytes of data fit in one frame.
const IOHeadroom = 64

// NoTag and NoFid are reserved "absent" values.
const (
	NoTag uint16 = 0xFFFF
	NoFid uint32 = 0xFFFFFFFF
)

// MsgType identifies a frame. T-types are client requests, each
// followed by its R-type response (or Rerror).
type MsgType uint8

const (
	msgInvalid MsgType = iota
	Tversion
	Rversion
	Tattach
	Rattach
	Twalk
	Rwalk
	Topen
	Ropen
	Tcreate
	Rcreate
	Tmkdir
	Rmkdir
	Tread
	Rread
	Twrite
	Rwrite
	Tstat
	Rstat
	Treaddir
	Rreaddir
	Tunlink
	Runlink
	Trename
	Rrename
	Tfsync
	Rfsync
	Tclunk
	Rclunk
	Rerror
	msgMax
)

var msgNames = [...]string{
	Tversion: "Tversion", Rversion: "Rversion",
	Tattach: "Tattach", Rattach: "Rattach",
	Twalk: "Twalk", Rwalk: "Rwalk",
	Topen: "Topen", Ropen: "Ropen",
	Tcreate: "Tcreate", Rcreate: "Rcreate",
	Tmkdir: "Tmkdir", Rmkdir: "Rmkdir",
	Tread: "Tread", Rread: "Rread",
	Twrite: "Twrite", Rwrite: "Rwrite",
	Tstat: "Tstat", Rstat: "Rstat",
	Treaddir: "Treaddir", Rreaddir: "Rreaddir",
	Tunlink: "Tunlink", Runlink: "Runlink",
	Trename: "Trename", Rrename: "Rrename",
	Tfsync: "Tfsync", Rfsync: "Rfsync",
	Tclunk: "Tclunk", Rclunk: "Rclunk",
	Rerror: "Rerror",
}

func (m MsgType) String() string {
	if int(m) < len(msgNames) && msgNames[m] != "" {
		return msgNames[m]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(m))
}

// Topen mode bits. The mapping onto the vfs flag lattice is
// MapOpenMode, shared by server and tests so the wire semantics are
// oracle-checked against vfs.OpenFile.
const (
	OModeRead  uint8 = 1 << 0
	OModeWrite uint8 = 1 << 1
	OModeTrunc uint8 = 1 << 2
)

// MapOpenMode translates wire open-mode bits to vfs open flags. A mode
// with no access bits is invalid on the wire (unlike the vfs layer,
// which keeps zero-access as the legacy full-access open): a fid's
// later reads and writes are checked against these bits, so the client
// must declare what it wants.
func MapOpenMode(mode uint8) (vfs.OpenFlag, error) {
	if mode&^(OModeRead|OModeWrite|OModeTrunc) != 0 {
		return 0, fmt.Errorf("open mode %#x: unknown bits: %w", mode, vfs.ErrInvalid)
	}
	if mode&(OModeRead|OModeWrite) == 0 {
		return 0, fmt.Errorf("open mode %#x: no access bits: %w", mode, vfs.ErrInvalid)
	}
	if mode&OModeTrunc != 0 && mode&OModeWrite == 0 {
		return 0, fmt.Errorf("open mode %#x: truncate without write access: %w", mode, vfs.ErrInvalid)
	}
	var flag vfs.OpenFlag
	if mode&OModeRead != 0 {
		flag |= vfs.ORead
	}
	if mode&OModeWrite != 0 {
		flag |= vfs.OWrite
	}
	if mode&OModeTrunc != 0 {
		flag |= vfs.OTrunc
	}
	return flag, nil
}

// Wire error codes. Rerror carries a code plus the server's message
// string; the client library maps codes back to the vfs sentinel errors
// so errors.Is works across the wire.
const (
	codeOther uint8 = iota
	codeNotExist
	codeExist
	codeNotDir
	codeIsDir
	codeNotEmpty
	codeNoSpace
	codeNameTooLong
	codeInvalid
	codeBusy
	codePerm
	codeProto
	codeLimit
)

// Errors the service layer adds on top of the vfs sentinels.
var (
	// ErrPerm covers tenancy violations: unknown tenant at attach,
	// walking above the tenant root, writing through a read-only fid,
	// renaming across tenants.
	ErrPerm = errors.New("permission denied")
	// ErrProto covers malformed requests that name a usable tag: bad
	// fid, duplicate tag, unknown message type. Frame-level garbage
	// (bad size, short read) kills the connection instead.
	ErrProto = errors.New("protocol error")
	// ErrLimit is admission control pushing back: the tenant's request
	// queue is full. The operation was not attempted; retry later.
	ErrLimit = errors.New("request limit exceeded")
)

var codeErrs = map[uint8]error{
	codeNotExist:    vfs.ErrNotExist,
	codeExist:       vfs.ErrExist,
	codeNotDir:      vfs.ErrNotDir,
	codeIsDir:       vfs.ErrIsDir,
	codeNotEmpty:    vfs.ErrNotEmpty,
	codeNoSpace:     vfs.ErrNoSpace,
	codeNameTooLong: vfs.ErrNameTooLong,
	codeInvalid:     vfs.ErrInvalid,
	codeBusy:        vfs.ErrBusy,
	codePerm:        ErrPerm,
	codeProto:       ErrProto,
	codeLimit:       ErrLimit,
}

func errCode(err error) uint8 {
	for code, sentinel := range codeErrs {
		if errors.Is(err, sentinel) {
			return code
		}
	}
	return codeOther
}

func codeErr(code uint8, ename string) error {
	sentinel, ok := codeErrs[code]
	if !ok {
		return fmt.Errorf("srv: %s", ename)
	}
	return fmt.Errorf("srv: %s (%w)", ename, sentinel)
}

// WireStat is the stat shape that crosses the wire.
type WireStat struct {
	Ino    uint64
	Type   uint8
	Nlink  uint32
	Size   int64
	Blocks int64
	Mtime  int64
}

func toWireStat(st vfs.Stat) WireStat {
	return WireStat{
		Ino:    uint64(st.Ino),
		Type:   uint8(st.Type),
		Nlink:  st.Nlink,
		Size:   st.Size,
		Blocks: st.Blocks,
		Mtime:  st.Mtime,
	}
}

// Stat converts back to the vfs shape.
func (w WireStat) Stat() vfs.Stat {
	return vfs.Stat{
		Ino:    vfs.Ino(w.Ino),
		Type:   vfs.FileType(w.Type),
		Nlink:  w.Nlink,
		Size:   w.Size,
		Blocks: w.Blocks,
		Mtime:  w.Mtime,
	}
}

// WireDirEnt is one Rreaddir entry.
type WireDirEnt struct {
	Ino  uint64
	Type uint8
	Name string
}

// Fcall is the in-memory form of any frame — one struct for every
// message type, 9P-style, so the marshaling code and the tests share a
// single vocabulary. Only the fields relevant to Type are meaningful.
type Fcall struct {
	Type MsgType
	Tag  uint16

	Fid    uint32 // most T-messages: the operand fid
	NewFid uint32 // Twalk, Tcreate: fid to bind the result to
	DirFid uint32 // Trename: destination directory fid

	Msize   uint32 // Tversion, Rversion
	Version string // Tversion, Rversion
	Tenant  string // Tattach

	Names   []string // Twalk: path components
	Name    string   // Tcreate, Tmkdir, Tunlink, Trename (source name)
	NewName string   // Trename (destination name)
	Mode    uint8    // Topen
	Rmdir   bool     // Tunlink: remove a directory instead of a file

	Off   int64  // Tread, Twrite: byte offset; Treaddir: entry index
	Count uint32 // Tread: bytes wanted; Rwrite: bytes written
	Data  []byte // Twrite, Rread

	Ino  uint64       // Rattach, Rwalk, Rcreate, Rmkdir
	Stat WireStat     // Ropen, Rstat, Rcreate
	Ents []WireDirEnt // Rreaddir
	More bool         // Rreaddir: further entries beyond this page

	Code  uint8  // Rerror
	Ename string // Rerror
}

// Err reconstructs the error an Rerror carries.
func (f *Fcall) Err() error { return codeErr(f.Code, f.Ename) }

type encoder struct{ b []byte }

func (e *encoder) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}
func (e *encoder) blob(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}
func (e *encoder) stat(st WireStat) {
	e.u64(st.Ino)
	e.u8(st.Type)
	e.u32(st.Nlink)
	e.i64(st.Size)
	e.i64(st.Blocks)
	e.i64(st.Mtime)
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated frame body: %w", ErrProto)
	}
}
func (d *decoder) take(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}
func (d *decoder) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}
func (d *decoder) u16() uint16 {
	p := d.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}
func (d *decoder) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}
func (d *decoder) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}
func (d *decoder) i64() int64  { return int64(d.u64()) }
func (d *decoder) bool() bool  { return d.u8() != 0 }
func (d *decoder) str() string { return string(d.take(int(d.u16()))) }
func (d *decoder) blob() []byte {
	n := d.u32()
	p := d.take(int(n))
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}
func (d *decoder) stat() WireStat {
	return WireStat{
		Ino:    d.u64(),
		Type:   d.u8(),
		Nlink:  d.u32(),
		Size:   d.i64(),
		Blocks: d.i64(),
		Mtime:  d.i64(),
	}
}
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%d trailing bytes in frame body: %w", len(d.b)-d.off, ErrProto)
	}
	return nil
}

// Marshal renders the full frame, header included.
func (f *Fcall) Marshal() ([]byte, error) {
	e := &encoder{b: make([]byte, 0, 64+len(f.Data))}
	e.u32(0) // size backpatched below
	e.u8(uint8(f.Type))
	e.u16(f.Tag)
	switch f.Type {
	case Tversion, Rversion:
		e.u32(f.Msize)
		e.str(f.Version)
	case Tattach:
		e.u32(f.Fid)
		e.str(f.Tenant)
	case Rattach:
		e.u64(f.Ino)
	case Twalk:
		e.u32(f.Fid)
		e.u32(f.NewFid)
		e.u16(uint16(len(f.Names)))
		for _, n := range f.Names {
			e.str(n)
		}
	case Rwalk:
		e.u64(f.Ino)
	case Topen:
		e.u32(f.Fid)
		e.u8(f.Mode)
	case Ropen, Rstat:
		e.stat(f.Stat)
	case Tcreate:
		e.u32(f.Fid)
		e.u32(f.NewFid)
		e.str(f.Name)
	case Rcreate:
		e.u64(f.Ino)
		e.stat(f.Stat)
	case Tmkdir:
		e.u32(f.Fid)
		e.str(f.Name)
	case Rmkdir:
		e.u64(f.Ino)
	case Tread:
		e.u32(f.Fid)
		e.i64(f.Off)
		e.u32(f.Count)
	case Rread:
		e.blob(f.Data)
	case Twrite:
		e.u32(f.Fid)
		e.i64(f.Off)
		e.blob(f.Data)
	case Rwrite:
		e.u32(f.Count)
	case Tstat, Tfsync, Tclunk:
		e.u32(f.Fid)
	case Treaddir:
		e.u32(f.Fid)
		e.i64(f.Off)
	case Rreaddir:
		e.bool(f.More)
		e.u16(uint16(len(f.Ents)))
		for _, ent := range f.Ents {
			e.u64(ent.Ino)
			e.u8(ent.Type)
			e.str(ent.Name)
		}
	case Tunlink:
		e.u32(f.Fid)
		e.str(f.Name)
		e.bool(f.Rmdir)
	case Trename:
		e.u32(f.Fid)
		e.str(f.Name)
		e.u32(f.DirFid)
		e.str(f.NewName)
	case Runlink, Rrename, Rfsync, Rclunk:
	case Rerror:
		e.u8(f.Code)
		e.str(f.Ename)
	default:
		return nil, fmt.Errorf("marshal %v: %w", f.Type, ErrProto)
	}
	binary.LittleEndian.PutUint32(e.b, uint32(len(e.b)))
	return e.b, nil
}

// UnmarshalBody parses the body (everything after the 7-byte header)
// into f, whose Type and Tag the caller already read.
func (f *Fcall) UnmarshalBody(body []byte) error {
	d := &decoder{b: body}
	switch f.Type {
	case Tversion, Rversion:
		f.Msize = d.u32()
		f.Version = d.str()
	case Tattach:
		f.Fid = d.u32()
		f.Tenant = d.str()
	case Rattach:
		f.Ino = d.u64()
	case Twalk:
		f.Fid = d.u32()
		f.NewFid = d.u32()
		n := int(d.u16())
		if n > 0 && d.err == nil {
			if n > len(body) { // each name costs >= 2 bytes; cheap pre-check
				d.fail()
			} else {
				f.Names = make([]string, 0, n)
				for i := 0; i < n && d.err == nil; i++ {
					f.Names = append(f.Names, d.str())
				}
			}
		}
	case Rwalk:
		f.Ino = d.u64()
	case Topen:
		f.Fid = d.u32()
		f.Mode = d.u8()
	case Ropen, Rstat:
		f.Stat = d.stat()
	case Tcreate:
		f.Fid = d.u32()
		f.NewFid = d.u32()
		f.Name = d.str()
	case Rcreate:
		f.Ino = d.u64()
		f.Stat = d.stat()
	case Tmkdir:
		f.Fid = d.u32()
		f.Name = d.str()
	case Rmkdir:
		f.Ino = d.u64()
	case Tread:
		f.Fid = d.u32()
		f.Off = d.i64()
		f.Count = d.u32()
	case Rread:
		f.Data = d.blob()
	case Twrite:
		f.Fid = d.u32()
		f.Off = d.i64()
		f.Data = d.blob()
	case Rwrite:
		f.Count = d.u32()
	case Tstat, Tfsync, Tclunk:
		f.Fid = d.u32()
	case Treaddir:
		f.Fid = d.u32()
		f.Off = d.i64()
	case Rreaddir:
		f.More = d.bool()
		n := int(d.u16())
		if n > 0 && d.err == nil {
			if n > len(body) {
				d.fail()
			} else {
				f.Ents = make([]WireDirEnt, 0, n)
				for i := 0; i < n && d.err == nil; i++ {
					f.Ents = append(f.Ents, WireDirEnt{
						Ino:  d.u64(),
						Type: d.u8(),
						Name: d.str(),
					})
				}
			}
		}
	case Tunlink:
		f.Fid = d.u32()
		f.Name = d.str()
		f.Rmdir = d.bool()
	case Trename:
		f.Fid = d.u32()
		f.Name = d.str()
		f.DirFid = d.u32()
		f.NewName = d.str()
	case Runlink, Rrename, Rfsync, Rclunk:
	case Rerror:
		f.Code = d.u8()
		f.Ename = d.str()
	default:
		return fmt.Errorf("unmarshal %v: unknown message type: %w", f.Type, ErrProto)
	}
	return d.done()
}

// WriteFcall marshals f and writes the frame in one Write call, which
// keeps frames from interleaving when callers serialize on a mutex
// rather than the writer.
func WriteFcall(w io.Writer, f *Fcall, msize uint32) error {
	frame, err := f.Marshal()
	if err != nil {
		return err
	}
	if msize > 0 && uint32(len(frame)) > msize {
		return fmt.Errorf("frame %v size %d exceeds msize %d: %w", f.Type, len(frame), msize, ErrProto)
	}
	_, err = w.Write(frame)
	return err
}

// ReadFcall reads one frame. Frame-level damage — a size below the
// header, a size beyond msize, a short read — is unrecoverable because
// stream sync is lost, so it returns an error and the caller must drop
// the connection. An unknown message *type* inside a well-formed frame
// is recoverable and is reported via Fcall with Type preserved; the
// caller decides (the server answers Rerror and keeps the connection).
func ReadFcall(r io.Reader, msize uint32) (*Fcall, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[:4])
	if size < headerBytes {
		return nil, fmt.Errorf("frame size %d below header: %w", size, ErrProto)
	}
	if msize == 0 {
		msize = MaxMsize
	}
	if size > msize {
		return nil, fmt.Errorf("frame size %d exceeds msize %d: %w", size, msize, ErrProto)
	}
	f := &Fcall{Type: MsgType(hdr[4]), Tag: binary.LittleEndian.Uint16(hdr[5:7])}
	body := make([]byte, size-headerBytes)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if f.Type == msgInvalid || f.Type >= msgMax {
		return f, nil // recoverable: caller answers Rerror
	}
	return f, f.UnmarshalBody(body)
}
