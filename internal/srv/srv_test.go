package srv_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cffs/internal/blockio"
	"cffs/internal/core"
	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sched"
	"cffs/internal/sim"
	"cffs/internal/srv"
	"cffs/internal/vfs"
)

// testServer mounts a fresh concurrent C-FFS, serves it over loopback,
// and returns a dialer. Cleanup closes everything.
func testServer(t *testing.T, cfg srv.Config, tenants ...string) (*srv.Server, *srv.Loopback) {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), core.Options{
		EmbedInodes: true,
		Grouping:    true,
		Mode:        core.ModeDelayed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.FS = fs
	s := srv.New(cfg)
	for _, tn := range tenants {
		if err := s.AddTenant(tn); err != nil {
			t.Fatal(err)
		}
	}
	lb := srv.NewLoopback()
	go s.Serve(lb)
	t.Cleanup(func() {
		lb.Close()
		s.Close()
	})
	return s, lb
}

// waitZeroFids polls for the asynchronous fid release that follows
// connection close; the fid table must drain to empty.
func waitZeroFids(t *testing.T, s *srv.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.FidCount() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("fid leak: %d fids still live", s.FidCount())
}

func dialClient(t *testing.T, lb *srv.Loopback) *srv.Client {
	t.Helper()
	nc, err := lb.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.NewClient(nc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServiceEndToEnd walks the whole vfs surface through the wire:
// attach, mkdir, create, write, read, stat, readdir, rename, unlink,
// rmdir, fsync, clunk.
func TestServiceEndToEnd(t *testing.T) {
	s, lb := testServer(t, srv.Config{}, "alpha")
	c := dialClient(t, lb)

	root, err := c.Attach("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Mkdir("docs"); err != nil {
		t.Fatal(err)
	}
	docs, err := root.Walk("docs")
	if err != nil {
		t.Fatal(err)
	}
	f, err := docs.Create("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("small files want bandwidth")
	if n, err := f.WriteAt(payload, 0); err != nil || n != len(payload) {
		t.Fatalf("write = %d, %v", n, err)
	}
	st, err := f.Stat()
	if err != nil || st.Size != int64(len(payload)) || st.Type != vfs.TypeReg {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	buf := make([]byte, 64)
	if n, err := f.ReadAt(buf, 0); err != nil || !bytes.Equal(buf[:n], payload) {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Clunk(); err != nil {
		t.Fatal(err)
	}

	// A fresh walk+open sees the same bytes.
	f2, err := root.WalkPath("docs/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Open(srv.OModeRead); err != nil {
		t.Fatal(err)
	}
	if n, err := f2.ReadAt(buf, 0); err != nil || !bytes.Equal(buf[:n], payload) {
		t.Fatalf("reopened read = %q, %v", buf[:n], err)
	}
	// The handle is read-only: writes are refused at the fid layer.
	if _, err := f2.WriteAt([]byte("nope"), 0); !errors.Is(err, srv.ErrPerm) {
		t.Fatalf("write through read-only fid = %v, want ErrPerm", err)
	}
	if err := f2.Clunk(); err != nil {
		t.Fatal(err)
	}

	// readdir, rename, unlink, rmdir.
	dd, err := root.Walk("docs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dd.Open(srv.OModeRead); err != nil {
		t.Fatal(err)
	}
	ents, err := dd.ReadDir()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if e.Name != "." && e.Name != ".." {
			names = append(names, e.Name)
		}
	}
	if len(names) != 1 || names[0] != "hello.txt" {
		t.Fatalf("readdir = %v", names)
	}
	if err := dd.Rename("hello.txt", root, "moved.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Walk("moved.txt"); err != nil {
		t.Fatalf("walk after rename: %v", err)
	}
	if err := root.Unlink("moved.txt"); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir("docs"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Walk("docs"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("walk removed dir = %v, want ErrNotExist", err)
	}
	c.Close()
	waitZeroFids(t, s)
}

// TestTenantIsolation checks the namespace boundary: tenants see
// disjoint trees rooted at their subtree, ".." cannot escape, unknown
// tenants cannot attach, and cross-tenant renames are refused.
func TestTenantIsolation(t *testing.T) {
	_, lb := testServer(t, srv.Config{}, "alpha", "beta")
	c := dialClient(t, lb)

	ra, err := c.Attach("alpha")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.Attach("beta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach("mallory"); !errors.Is(err, srv.ErrPerm) {
		t.Fatalf("attach unknown tenant = %v, want ErrPerm", err)
	}

	af, err := ra.Create("secret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.WriteAt([]byte("alpha-only"), 0); err != nil {
		t.Fatal(err)
	}
	// beta's namespace does not contain alpha's file.
	if _, err := rb.Walk("secret"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("cross-tenant walk = %v, want ErrNotExist", err)
	}
	// ".." from the tenant root is a hard stop, not a hop into "/".
	if _, err := ra.Walk(".."); !errors.Is(err, srv.ErrPerm) {
		t.Fatalf("walk .. from root = %v, want ErrPerm", err)
	}
	// Descend then climb: ".." inside the subtree is fine, past the
	// root it is not.
	if _, err := ra.Mkdir("sub"); err != nil {
		t.Fatal(err)
	}
	if _, err := ra.Walk("sub", "..", "sub"); err != nil {
		t.Fatalf("walk sub/../sub = %v", err)
	}
	if _, err := ra.Walk("sub", "..", "..", "beta"); !errors.Is(err, srv.ErrPerm) {
		t.Fatalf("escape via sub/../../beta = %v, want ErrPerm", err)
	}
	// Renaming across tenants is refused even with valid fids.
	if err := ra.Rename("secret", rb, "stolen"); !errors.Is(err, srv.ErrPerm) {
		t.Fatalf("cross-tenant rename = %v, want ErrPerm", err)
	}
}

// TestWalkEscapeAfterRename pins the rename/walk interaction the
// tenant boundary depends on: renaming a directory toward the tenant
// root must not let a fid minted deeper in the tree walk ".." past the
// boundary. The guard compares the walk position against the tenant
// root ino on every ".." step, so it cannot go stale the way a depth
// recorded at walk time would when rename repoints a directory's
// physical ".." entry under live fids.
func TestWalkEscapeAfterRename(t *testing.T) {
	_, lb := testServer(t, srv.Config{}, "alpha", "beta")
	c := dialClient(t, lb)
	ra, err := c.Attach("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ra.Mkdir("a"); err != nil {
		t.Fatal(err)
	}
	a, err := ra.Walk("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Mkdir("b"); err != nil {
		t.Fatal(err)
	}
	b, err := ra.Walk("a", "b") // minted two levels below the tenant root
	if err != nil {
		t.Fatal(err)
	}
	// Move /alpha/a/b up to /alpha/b: b's physical ".." now points at
	// the tenant root even though the fid was resolved two levels down.
	if err := a.Rename("b", ra, "b"); err != nil {
		t.Fatal(err)
	}
	// One ".." lands exactly on the tenant root and is fine...
	if _, err := b.Walk(".."); err != nil {
		t.Fatalf("walk .. after rename: %v", err)
	}
	// ...but a second must stop at the boundary, not slip into "/" and
	// from there into another tenant's subtree.
	if _, err := b.Walk("..", ".."); !errors.Is(err, srv.ErrPerm) {
		t.Fatalf("walk ../.. after rename = %v, want ErrPerm", err)
	}
	if _, err := b.Walk("..", "..", "beta"); !errors.Is(err, srv.ErrPerm) {
		t.Fatalf("cross-tenant escape after rename = %v, want ErrPerm", err)
	}
}

// TestOpenModeMapping cross-checks the wire mode → vfs flag mapping
// against vfs.OpenFile on the same shapes: the lattice the fuzz corpus
// pins down must hold end to end through the protocol.
func TestOpenModeMapping(t *testing.T) {
	_, lb := testServer(t, srv.Config{}, "alpha")
	c := dialClient(t, lb)
	root, err := c.Attach("alpha")
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("body"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Mkdir("d"); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mode uint8
		want error // nil = success
	}{
		{"f", srv.OModeRead, nil},
		{"f", srv.OModeWrite, nil},
		{"f", srv.OModeRead | srv.OModeWrite | srv.OModeTrunc, nil},
		{"f", srv.OModeRead | srv.OModeTrunc, vfs.ErrInvalid}, // read-only truncation
		{"f", 0, vfs.ErrInvalid},                              // no access bits on the wire
		{"f", 0x80, vfs.ErrInvalid},                           // unknown bits
		{"d", srv.OModeRead, nil},
		{"d", srv.OModeWrite, vfs.ErrIsDir},
		{"d", srv.OModeRead | srv.OModeWrite, vfs.ErrIsDir},
		{"d", srv.OModeWrite | srv.OModeTrunc, vfs.ErrIsDir},
	}
	for _, tc := range cases {
		fd, err := root.Walk(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		_, openErr := fd.Open(tc.mode)
		if tc.want == nil && openErr != nil {
			t.Errorf("open %q mode %#x: %v, want success", tc.name, tc.mode, openErr)
		}
		if tc.want != nil && !errors.Is(openErr, tc.want) {
			t.Errorf("open %q mode %#x: %v, want %v", tc.name, tc.mode, tc.want, openErr)
		}
		// The wire mapping must agree with the vfs lattice whenever the
		// mode is expressible there (MapOpenMode rejects the rest).
		if flag, mapErr := srv.MapOpenMode(tc.mode); mapErr == nil {
			_, vfsErr := vfs.OpenFile(cfgFS(t, fd), "/"+"alpha"+"/"+tc.name, flag)
			if (openErr == nil) != (vfsErr == nil) {
				t.Errorf("mode %#x on %q: wire err %v, vfs err %v — lattice disagreement", tc.mode, tc.name, openErr, vfsErr)
			}
		}
		fd.Clunk()
	}
}

// cfgFS digs no further than the test needs: the oracle comparison
// above re-runs the open against a second, path-based fs view. Sharing
// the live server fs would race with truncation side effects, so use a
// fresh one shaped the same.
func cfgFS(t *testing.T, _ *srv.Fid) vfs.FileSystem {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mkfs(blockio.NewDevice(d, sched.CLook{}), core.Options{EmbedInodes: true, Grouping: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.MkdirAll(fs, "/alpha/d"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/alpha/f", []byte("body")); err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestConcurrentSessions runs many sessions over one server — shared
// and private connections mixed — under load, and checks the per-tenant
// metrics families land in the registry.
func TestConcurrentSessions(t *testing.T) {
	reg := obs.NewRegistry()
	s, lb := testServer(t, srv.Config{Registry: reg, QoS: srv.QoS{Workers: 4, FairShare: true}}, "t0", "t1", "t2")

	const sessions = 24
	const opsPer = 30
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%3)
			nc, err := lb.Dial()
			if err != nil {
				errs <- err
				return
			}
			c, err := srv.NewClient(nc)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			root, err := c.Attach(tenant)
			if err != nil {
				errs <- err
				return
			}
			f, err := root.Create(fmt.Sprintf("s%d", i))
			if err != nil {
				errs <- fmt.Errorf("create: %w", err)
				return
			}
			buf := []byte("data-data-data")
			for op := 0; op < opsPer; op++ {
				if _, err := f.WriteAt(buf, int64(op)); err != nil {
					errs <- fmt.Errorf("write: %w", err)
					return
				}
				if _, err := f.ReadAt(buf, 0); err != nil {
					errs <- fmt.Errorf("read: %w", err)
					return
				}
			}
			if err := f.Clunk(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, tn := range []string{"t0", "t1", "t2"} {
		if got := snap.Counters[obs.Name("srv.requests", "op", "Tread", "tenant", tn)]; got == 0 {
			t.Errorf("tenant %s: no Tread requests counted", tn)
		}
		h := snap.Histograms[obs.Name("srv.latency.ns", "op", "read", "tenant", tn)]
		if h.Count == 0 {
			t.Errorf("tenant %s: empty read latency histogram", tn)
		}
	}
	waitZeroFids(t, s)
}
