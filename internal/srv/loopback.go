package srv

import (
	"errors"
	"net"
	"sync"
)

// Loopback is an in-process transport: a net.Listener whose Dial hands
// the server one end of a net.Pipe. It lets the many-client workload
// driver run hundreds of real protocol sessions — full framing, tags,
// QoS — without sockets, so session count is bounded by goroutines,
// not file descriptors.
type Loopback struct {
	mu     sync.Mutex
	ch     chan net.Conn
	doneCh chan struct{}
	closed bool
}

// NewLoopback returns a ready listener; pass it to Server.Serve and
// hand Dial to clients.
func NewLoopback() *Loopback {
	return &Loopback{ch: make(chan net.Conn)}
}

// Dial connects a new client to whatever is accepting on this loopback.
func (l *Loopback) Dial() (net.Conn, error) {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return nil, errors.New("loopback: closed")
	}
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done():
		client.Close()
		server.Close()
		return nil, errors.New("loopback: closed")
	}
}

// done returns a channel closed when the listener closes. Lazily built
// so the zero of Loopback stays invalid (use NewLoopback).
func (l *Loopback) done() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.doneCh == nil {
		l.doneCh = make(chan struct{})
	}
	return l.doneCh
}

// Accept implements net.Listener.
func (l *Loopback) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done():
		return nil, errors.New("loopback: closed")
	}
}

// Close implements net.Listener; pending and future Dials fail.
func (l *Loopback) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		if l.doneCh == nil {
			l.doneCh = make(chan struct{})
		}
		close(l.doneCh)
	}
	return nil
}

// Addr implements net.Listener.
func (l *Loopback) Addr() net.Addr { return loopbackAddr{} }

type loopbackAddr struct{}

func (loopbackAddr) Network() string { return "loopback" }
func (loopbackAddr) String() string  { return "loopback" }
