package srv

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cffs/internal/obs"
	"cffs/internal/vfs"
)

// Config configures a Server.
type Config struct {
	// FS is the mounted file system to serve. It must be safe for
	// concurrent use when QoS.Workers > 1 (the core is; single-threaded
	// ffs/lfs mounts need Workers: 1).
	FS vfs.FileSystem
	// Registry receives the per-tenant srv.* instruments. Nil disables
	// metrics.
	Registry *obs.Registry
	// Msize caps the negotiated frame size. 0 means DefaultMsize.
	Msize uint32
	// QoS is the admission/scheduling policy shared by all tenants.
	QoS QoS
}

// fid is one handle: a resolved ino bound to a tenant. The tenant
// bound here is what confines every walk: ".." is refused whenever the
// walk stands on the tenant's root ino (see walk), so no fid state can
// go stale and leak a path out of the subtree.
type fid struct {
	t      *tenant
	ino    vfs.Ino
	isRoot bool // the Tattach fid, counted as a session
	open   bool
	mode   uint8
}

// tenant is one namespace: a name, the directory subtree that roots it,
// its admission bucket, its dispatch queue, and its instruments.
type tenant struct {
	name string
	root vfs.Ino
	bkt  *bucket

	// dispatcher state, guarded by dispatcher.mu
	pending []request
	inRing  bool

	m tenantMetrics
}

type tenantMetrics struct {
	reqs       [msgMax]*obs.Counter
	errs       *obs.Counter
	latency    map[string]*obs.Histogram
	qosWait    *obs.Histogram
	qosRejects *obs.Counter
	sessions   *obs.Gauge
	fids       *obs.Gauge
	queueDepth *obs.Gauge
}

// latencyGroup buckets message types into few-enough histogram families.
func latencyGroup(t MsgType) string {
	switch t {
	case Tread:
		return "read"
	case Twrite, Tcreate, Tmkdir, Tunlink, Trename, Tfsync:
		return "write"
	case Treaddir:
		return "readdir"
	default:
		return "other"
	}
}

var latencyGroups = []string{"read", "write", "readdir", "other"}

func newTenantMetrics(r *obs.Registry, name string) tenantMetrics {
	var m tenantMetrics
	if r == nil {
		// Zero-value obs instruments are usable, so a nil registry just
		// means unregistered throwaways.
		m.errs = &obs.Counter{}
		m.qosRejects = &obs.Counter{}
		m.sessions = &obs.Gauge{}
		m.fids = &obs.Gauge{}
		m.queueDepth = &obs.Gauge{}
		m.qosWait = &obs.Histogram{}
		m.latency = map[string]*obs.Histogram{}
		for _, g := range latencyGroups {
			m.latency[g] = &obs.Histogram{}
		}
		for t := MsgType(0); t < msgMax; t++ {
			m.reqs[t] = &obs.Counter{}
		}
		return m
	}
	m.errs = r.Counter(obs.Name("srv.errors", "tenant", name))
	m.qosRejects = r.Counter(obs.Name("srv.qos.rejects", "tenant", name))
	m.sessions = r.Gauge(obs.Name("srv.sessions", "tenant", name))
	m.fids = r.Gauge(obs.Name("srv.fids", "tenant", name))
	m.queueDepth = r.Gauge(obs.Name("srv.queue.depth", "tenant", name))
	m.qosWait = r.Histogram(obs.Name("srv.qos.wait.ns", "tenant", name))
	m.latency = make(map[string]*obs.Histogram, len(latencyGroups))
	for _, g := range latencyGroups {
		m.latency[g] = r.Histogram(obs.Name("srv.latency.ns", "op", g, "tenant", name))
	}
	for t := Tversion; t < msgMax; t += 2 { // T-types only
		if t == Rerror {
			// Rerror shares the stride but is never a request; keep the
			// slot non-nil without registering an always-zero family.
			m.reqs[t] = &obs.Counter{}
			continue
		}
		m.reqs[t] = r.Counter(obs.Name("srv.requests", "op", t.String(), "tenant", name))
	}
	return m
}

// Server serves the wire protocol over any net.Listener.
type Server struct {
	fs      vfs.FileSystem
	msize   uint32
	workers int

	mu        sync.Mutex
	tenants   map[string]*tenant
	conns     map[*conn]struct{}
	listeners map[net.Listener]struct{}
	closed    bool

	disp *dispatcher
	tctx tenantStack

	nfids atomic.Int64
	reg   *obs.Registry
	qos   QoS
}

// New builds a Server. Add tenants with AddTenant, then Serve listeners.
func New(cfg Config) *Server {
	if cfg.Msize == 0 {
		cfg.Msize = DefaultMsize
	}
	if cfg.Msize < MinMsize {
		cfg.Msize = MinMsize
	}
	if cfg.Msize > MaxMsize {
		cfg.Msize = MaxMsize
	}
	q := cfg.QoS
	if q.Workers <= 0 {
		q.Workers = DefaultWorkers
	}
	if q.QueueCap <= 0 {
		q.QueueCap = DefaultQueueCap
	}
	s := &Server{
		fs:        cfg.FS,
		msize:     cfg.Msize,
		workers:   q.Workers,
		tenants:   make(map[string]*tenant),
		conns:     make(map[*conn]struct{}),
		listeners: make(map[net.Listener]struct{}),
		reg:       cfg.Registry,
		qos:       q,
		disp:      newDispatcher(q.FairShare, q.QueueCap),
	}
	s.disp.run(q.Workers, s.serveRequest)
	return s
}

// AddTenant declares a tenant, creating /<name> as its namespace root
// if missing. Idempotent for an existing tenant.
func (s *Server) AddTenant(name string) error {
	if name == "" || name == "." || name == ".." || len(name) > vfs.MaxNameLen {
		return fmt.Errorf("tenant %q: %w", name, vfs.ErrInvalid)
	}
	for _, c := range name {
		if c == '/' {
			return fmt.Errorf("tenant %q: %w", name, vfs.ErrInvalid)
		}
	}
	root, err := vfs.MkdirAll(s.fs, "/"+name)
	if err != nil {
		return fmt.Errorf("tenant %q root: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; ok {
		return nil
	}
	s.tenants[name] = &tenant{
		name: name,
		root: root,
		bkt:  newBucket(s.qos.Rate, s.qos.Burst),
		m:    newTenantMetrics(s.reg, name),
	}
	return nil
}

// Tenants lists the declared tenant names, sorted.
func (s *Server) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CurrentTenant reports which tenant the calling goroutine is (best
// effort) serving — the hook trace.Collector.LabelDrops wants.
func (s *Server) CurrentTenant() string { return s.tctx.current() }

// FidCount is the number of live fids across all connections; the
// torture tests assert it returns to zero.
func (s *Server) FidCount() int64 { return s.nfids.Load() }

// ConnCount is the number of live connections.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Serve accepts connections until the listener or server closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("srv: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := s.newConn(nc)
		if c == nil {
			nc.Close()
			continue
		}
		go c.readLoop()
	}
}

// Close stops listeners, closes every connection, and waits for the
// worker pool to drain in-flight requests.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.teardown()
	}
	s.disp.close()
}

// conn is one client connection: negotiated msize, fid table, in-flight
// tag set, and a write mutex so responses from concurrent workers don't
// interleave.
type conn struct {
	s  *Server
	nc net.Conn

	// msize is this connection's negotiated frame limit — the server
	// cap until Tversion succeeds, then whatever Rversion advertised.
	// The reader enforces it on inbound frames and the read/readdir
	// budgets keep responses under it; atomic because workers read it
	// while the reader may renegotiate.
	msize atomic.Uint32

	wmu sync.Mutex // frame writes

	mu     sync.Mutex
	fids   map[uint32]*fid
	tags   map[uint16]struct{}
	closed bool
}

func (s *Server) newConn(nc net.Conn) *conn {
	c := &conn{
		s:    s,
		nc:   nc,
		fids: make(map[uint32]*fid),
		tags: make(map[uint16]struct{}),
	}
	c.msize.Store(s.msize)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.conns[c] = struct{}{}
	return c
}

// teardown closes the connection and releases every fid it held. Safe
// to call more than once.
func (c *conn) teardown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	fids := c.fids
	c.fids = make(map[uint32]*fid)
	c.mu.Unlock()
	for _, f := range fids {
		c.s.nfids.Add(-1)
		f.t.m.fids.Add(-1)
		if f.isRoot {
			f.t.m.sessions.Add(-1)
		}
	}
	c.nc.Close()
	c.s.mu.Lock()
	delete(c.s.conns, c)
	c.s.mu.Unlock()
}

// readLoop parses frames and routes them. Any framing error — short
// read, bad size — loses stream sync, so the connection dies and
// teardown releases its fids.
func (c *conn) readLoop() {
	defer c.teardown()
	for {
		f, err := ReadFcall(c.nc, c.msize.Load())
		if err != nil {
			return
		}
		if !c.route(f) {
			return
		}
	}
}

// route handles one parsed frame on the reader goroutine, returning
// false to drop the connection.
func (c *conn) route(f *Fcall) bool {
	switch f.Type {
	case Tversion, Tattach, Tclunk:
		// These execute synchronously on the reader, but their tags
		// still pass through the in-flight table: a client reusing a
		// tag held by a queued worker op must be refused here just as
		// in admit, or two responses race on one tag.
		if !c.reserveTag(f.Tag) {
			c.sendErr(f.Tag, fmt.Errorf("tag %d already in flight: %w", f.Tag, ErrProto))
			return true
		}
		switch f.Type {
		case Tversion:
			c.version(f)
		case Tattach:
			c.attach(f)
		case Tclunk:
			c.clunk(f)
		}
		c.releaseTag(f.Tag)
		return true
	case Twalk, Topen, Tcreate, Tmkdir, Tread, Twrite, Tstat, Treaddir, Tunlink, Trename, Tfsync:
		return c.admit(f)
	default:
		// Well-formed frame, nonsense type (or a client sending
		// R-messages): answer and keep the stream.
		c.sendErr(f.Tag, fmt.Errorf("unexpected message %v: %w", f.Type, ErrProto))
		return true
	}
}

// version negotiates the protocol revision and this connection's frame
// limit. The negotiated msize only takes effect on success — a client
// answered "unknown" is expected to hang up, not renegotiate framing.
func (c *conn) version(f *Fcall) {
	msize := f.Msize
	if msize == 0 || msize > c.s.msize {
		msize = c.s.msize
	}
	if msize < MinMsize {
		msize = MinMsize
	}
	if f.Version != Version {
		c.send(&Fcall{Type: Rversion, Tag: f.Tag, Msize: msize, Version: "unknown"})
		return
	}
	c.msize.Store(msize)
	c.send(&Fcall{Type: Rversion, Tag: f.Tag, Msize: msize, Version: Version})
}

func (c *conn) attach(f *Fcall) {
	c.s.mu.Lock()
	t := c.s.tenants[f.Tenant]
	c.s.mu.Unlock()
	if t == nil {
		c.sendErr(f.Tag, fmt.Errorf("unknown tenant %q: %w", f.Tenant, ErrPerm))
		return
	}
	if !c.installFid(f.Fid, &fid{t: t, ino: t.root, isRoot: true}) {
		c.sendErr(f.Tag, fmt.Errorf("fid %d in use: %w", f.Fid, ErrProto))
		return
	}
	t.m.reqs[Tattach].Inc()
	t.m.sessions.Add(1)
	c.send(&Fcall{Type: Rattach, Tag: f.Tag, Ino: uint64(t.root)})
}

func (c *conn) clunk(f *Fcall) {
	c.mu.Lock()
	fd, ok := c.fids[f.Fid]
	if ok {
		delete(c.fids, f.Fid)
	}
	c.mu.Unlock()
	if !ok {
		c.sendErr(f.Tag, fmt.Errorf("clunk of unknown fid %d: %w", f.Fid, ErrProto))
		return
	}
	c.s.nfids.Add(-1)
	fd.t.m.fids.Add(-1)
	if fd.isRoot {
		fd.t.m.sessions.Add(-1)
	}
	c.send(&Fcall{Type: Rclunk, Tag: f.Tag})
}

// admit runs the QoS front half on the reader goroutine: resolve the
// tenant, reserve the tag, pay the token bucket (blocking the reader is
// the backpressure), and queue for dispatch.
func (c *conn) admit(f *Fcall) bool {
	c.mu.Lock()
	fd := c.fids[f.Fid]
	if fd == nil {
		c.mu.Unlock()
		c.sendErr(f.Tag, fmt.Errorf("unknown fid %d: %w", f.Fid, ErrProto))
		return true
	}
	t := fd.t
	if _, dup := c.tags[f.Tag]; dup {
		c.mu.Unlock()
		// A duplicate in-flight tag means the client's bookkeeping is
		// broken; executing the request would let two responses race
		// for one tag. Refuse without executing.
		c.sendErr(f.Tag, fmt.Errorf("tag %d already in flight: %w", f.Tag, ErrProto))
		return true
	}
	c.tags[f.Tag] = struct{}{}
	c.mu.Unlock()

	if waited := t.bkt.wait(); waited > 0 {
		t.m.qosWait.Record(int64(waited))
	}
	t.m.reqs[f.Type].Inc()
	if !c.s.disp.enqueue(request{c: c, t: t, f: f, start: time.Now()}) {
		t.m.qosRejects.Inc()
		c.sendErr(f.Tag, fmt.Errorf("tenant %q queue full: %w", t.name, ErrLimit))
		c.releaseTag(f.Tag)
		return true
	}
	return true
}

// reserveTag marks tag in flight, reporting false when the client
// already has it in flight (the caller answers without executing).
func (c *conn) reserveTag(tag uint16) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tags[tag]; dup {
		return false
	}
	c.tags[tag] = struct{}{}
	return true
}

func (c *conn) releaseTag(tag uint16) {
	c.mu.Lock()
	delete(c.tags, tag)
	c.mu.Unlock()
}

// serveRequest is the worker side: execute against the fs, respond,
// release the tag.
func (s *Server) serveRequest(r request) {
	pop := s.tctx.push(r.t.name)
	resp := s.handle(r.c, r.t, r.f)
	pop()
	r.t.m.latency[latencyGroup(r.f.Type)].Record(time.Since(r.start).Nanoseconds())
	if resp.Type == Rerror {
		r.t.m.errs.Inc()
	}
	resp.Tag = r.f.Tag
	// The tag stays in flight until its response is on the wire, so a
	// client reusing a tag it has not seen answered is always caught.
	r.c.send(resp)
	r.c.releaseTag(r.f.Tag)
}

func rerror(err error) *Fcall {
	return &Fcall{Type: Rerror, Code: errCode(err), Ename: err.Error()}
}

// fidRef snapshots a fid's fields under the conn lock; the vfs call
// then runs lock-free.
func (c *conn) fidRef(id uint32) (fid, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.fids[id]
	if f == nil {
		return fid{}, false
	}
	return *f, true
}

// installFid binds a new fid id, refusing ids already in use (and the
// reserved NoFid).
func (c *conn) installFid(id uint32, f *fid) bool {
	if id == NoFid {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	if _, exists := c.fids[id]; exists {
		return false
	}
	c.fids[id] = f
	c.s.nfids.Add(1)
	f.t.m.fids.Add(1)
	return true
}

func (s *Server) handle(c *conn, t *tenant, f *Fcall) *Fcall {
	switch f.Type {
	case Twalk:
		return s.walk(c, t, f)
	case Topen:
		return s.open(c, f)
	case Tcreate:
		return s.create(c, t, f)
	case Tmkdir:
		return s.mkdir(c, f)
	case Tread:
		return s.read(c, f)
	case Twrite:
		return s.write(c, f)
	case Tstat:
		return s.stat(c, f)
	case Treaddir:
		return s.readdir(c, f)
	case Tunlink:
		return s.unlink(c, f)
	case Trename:
		return s.rename(c, t, f)
	case Tfsync:
		if err := s.fs.Sync(); err != nil {
			return rerror(err)
		}
		return &Fcall{Type: Rfsync}
	}
	return rerror(fmt.Errorf("unhandled %v: %w", f.Type, ErrProto))
}

// walk resolves path components relative to an existing fid, binding
// the result to NewFid. ".." stops at the tenant root: a fid can name
// anything inside its tenant's subtree and nothing outside it.
//
// The boundary test compares the current ino against the tenant root
// ino on every ".." step. It must not be a depth counter recorded when
// the fid was minted: rename can move a directory up or down the tree
// (repointing its physical ".." entry) while fids into it stay live,
// so any recorded depth goes stale and a stale depth would let ".."
// slip past the root into other tenants. Since same-tenant renames are
// the only renames the server permits, every fid's ino stays inside
// its tenant's subtree, and any ascent out of the subtree has to pass
// through the root ino — where it is refused.
func (s *Server) walk(c *conn, t *tenant, f *Fcall) *Fcall {
	src, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("walk from unknown fid %d: %w", f.Fid, ErrProto))
	}
	cur := src.ino
	for _, name := range f.Names {
		if name == "" || name == "." {
			continue
		}
		if err := checkWireName(name); err != nil {
			return rerror(err)
		}
		if name == ".." && cur == t.root {
			return rerror(fmt.Errorf("walk above tenant root: %w", ErrPerm))
		}
		next, err := s.fs.Lookup(cur, name)
		if err != nil {
			return rerror(fmt.Errorf("walk at %q: %w", name, err))
		}
		cur = next
	}
	if !c.installFid(f.NewFid, &fid{t: t, ino: cur}) {
		return rerror(fmt.Errorf("fid %d in use: %w", f.NewFid, ErrProto))
	}
	return &Fcall{Type: Rwalk, Ino: uint64(cur)}
}

// open marks a fid usable for I/O. The mode maps through the same vfs
// flag lattice as path opens: truncation needs write access, write
// access to a directory is ErrIsDir.
func (s *Server) open(c *conn, f *Fcall) *Fcall {
	fd, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("open of unknown fid %d: %w", f.Fid, ErrProto))
	}
	flag, err := MapOpenMode(f.Mode)
	if err != nil {
		return rerror(err)
	}
	st, err := s.fs.Stat(fd.ino)
	if err != nil {
		return rerror(err)
	}
	if st.Type == vfs.TypeDir && flag&vfs.OWrite != 0 {
		return rerror(fmt.Errorf("open for write of a directory: %w", vfs.ErrIsDir))
	}
	if flag&vfs.OTrunc != 0 {
		if err := s.fs.Truncate(fd.ino, 0); err != nil {
			return rerror(err)
		}
		st.Size, st.Blocks = 0, 0
		if st2, err := s.fs.Stat(fd.ino); err == nil {
			st = st2
		}
	}
	c.mu.Lock()
	if live := c.fids[f.Fid]; live != nil {
		live.open = true
		live.mode = f.Mode
	}
	c.mu.Unlock()
	return &Fcall{Type: Ropen, Stat: toWireStat(st)}
}

// checkWireName refuses entry names no backend may ever accept: a "/"
// would smuggle extra path components through a single-name field (a
// tenant-escape vector if a backend were lax about it), and NUL-bearing
// names break every on-disk format here. The file systems reject these
// too; refusing at the wire keeps the guarantee independent of which
// backend is mounted, with a stable Rerror code (codeInvalid).
func checkWireName(name string) error {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return fmt.Errorf("name %q: %w", name, vfs.ErrInvalid)
		}
	}
	return nil
}

func (s *Server) create(c *conn, t *tenant, f *Fcall) *Fcall {
	fd, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("create in unknown fid %d: %w", f.Fid, ErrProto))
	}
	if err := checkWireName(f.Name); err != nil {
		return rerror(err)
	}
	ino, err := s.fs.Create(fd.ino, f.Name)
	if err != nil {
		return rerror(err)
	}
	st, err := s.fs.Stat(ino)
	if err != nil {
		return rerror(err)
	}
	nf := &fid{t: t, ino: ino, open: true, mode: OModeRead | OModeWrite}
	if !c.installFid(f.NewFid, nf) {
		// The file exists; only the handle binding failed.
		return rerror(fmt.Errorf("fid %d in use: %w", f.NewFid, ErrProto))
	}
	return &Fcall{Type: Rcreate, Ino: uint64(ino), Stat: toWireStat(st)}
}

func (s *Server) mkdir(c *conn, f *Fcall) *Fcall {
	fd, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("mkdir in unknown fid %d: %w", f.Fid, ErrProto))
	}
	if err := checkWireName(f.Name); err != nil {
		return rerror(err)
	}
	ino, err := s.fs.Mkdir(fd.ino, f.Name)
	if err != nil {
		return rerror(err)
	}
	return &Fcall{Type: Rmkdir, Ino: uint64(ino)}
}

func (s *Server) read(c *conn, f *Fcall) *Fcall {
	fd, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("read of unknown fid %d: %w", f.Fid, ErrProto))
	}
	if !fd.open || fd.mode&OModeRead == 0 {
		return rerror(fmt.Errorf("read of fid not open for reading: %w", ErrPerm))
	}
	count := f.Count
	if max := c.msize.Load() - IOHeadroom; count > max {
		count = max
	}
	buf := make([]byte, count)
	n, err := s.fs.ReadAt(fd.ino, buf, f.Off)
	if err != nil {
		return rerror(err)
	}
	return &Fcall{Type: Rread, Data: buf[:n]}
}

func (s *Server) write(c *conn, f *Fcall) *Fcall {
	fd, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("write of unknown fid %d: %w", f.Fid, ErrProto))
	}
	if !fd.open || fd.mode&OModeWrite == 0 {
		return rerror(fmt.Errorf("write of fid not open for writing: %w", ErrPerm))
	}
	n, err := s.fs.WriteAt(fd.ino, f.Data, f.Off)
	if err != nil {
		return rerror(err)
	}
	return &Fcall{Type: Rwrite, Count: uint32(n)}
}

func (s *Server) stat(c *conn, f *Fcall) *Fcall {
	fd, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("stat of unknown fid %d: %w", f.Fid, ErrProto))
	}
	st, err := s.fs.Stat(fd.ino)
	if err != nil {
		return rerror(err)
	}
	return &Fcall{Type: Rstat, Stat: toWireStat(st)}
}

// readdir pages a directory by entry index in name order. Paging by
// index over a sorted copy keeps pages stable under concurrent
// mutation to exactly the degree the underlying fs is stable, and
// bounds per-request work — which is what makes one-request fair-share
// quanta meaningful against readdir storms.
func (s *Server) readdir(c *conn, f *Fcall) *Fcall {
	fd, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("readdir of unknown fid %d: %w", f.Fid, ErrProto))
	}
	if !fd.open || fd.mode&OModeRead == 0 {
		return rerror(fmt.Errorf("readdir of fid not open for reading: %w", ErrPerm))
	}
	ents, err := s.fs.ReadDir(fd.ino)
	if err != nil {
		return rerror(err)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	if f.Off < 0 || f.Off > int64(len(ents)) {
		return rerror(fmt.Errorf("readdir offset %d: %w", f.Off, vfs.ErrInvalid))
	}
	resp := &Fcall{Type: Rreaddir}
	budget := int(c.msize.Load()) - IOHeadroom
	for i := int(f.Off); i < len(ents); i++ {
		cost := 11 + len(ents[i].Name) // u64 ino + u8 type + u16 len + name
		if budget < cost {
			resp.More = true
			break
		}
		budget -= cost
		resp.Ents = append(resp.Ents, WireDirEnt{
			Ino:  uint64(ents[i].Ino),
			Type: uint8(ents[i].Type),
			Name: ents[i].Name,
		})
	}
	return resp
}

func (s *Server) unlink(c *conn, f *Fcall) *Fcall {
	fd, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("unlink in unknown fid %d: %w", f.Fid, ErrProto))
	}
	if err := checkWireName(f.Name); err != nil {
		return rerror(err)
	}
	var err error
	if f.Rmdir {
		err = s.fs.Rmdir(fd.ino, f.Name)
	} else {
		err = s.fs.Unlink(fd.ino, f.Name)
	}
	if err != nil {
		return rerror(err)
	}
	return &Fcall{Type: Runlink}
}

func (s *Server) rename(c *conn, t *tenant, f *Fcall) *Fcall {
	src, ok := c.fidRef(f.Fid)
	if !ok {
		return rerror(fmt.Errorf("rename from unknown fid %d: %w", f.Fid, ErrProto))
	}
	dst, ok := c.fidRef(f.DirFid)
	if !ok {
		return rerror(fmt.Errorf("rename to unknown fid %d: %w", f.DirFid, ErrProto))
	}
	if src.t != t || dst.t != t {
		return rerror(fmt.Errorf("rename across tenants: %w", ErrPerm))
	}
	if err := checkWireName(f.Name); err != nil {
		return rerror(err)
	}
	if err := checkWireName(f.NewName); err != nil {
		return rerror(err)
	}
	if err := s.fs.Rename(src.ino, f.Name, dst.ino, f.NewName); err != nil {
		return rerror(err)
	}
	return &Fcall{Type: Rrename}
}

// send writes one response frame; write failures tear the connection
// down (the reader will notice too, harmlessly).
func (c *conn) send(f *Fcall) {
	c.wmu.Lock()
	err := WriteFcall(c.nc, f, 0)
	c.wmu.Unlock()
	if err != nil {
		c.teardown()
	}
}

func (c *conn) sendErr(tag uint16, err error) {
	e := rerror(err)
	e.Tag = tag
	c.send(e)
}
