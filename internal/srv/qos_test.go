package srv

import (
	"testing"
	"time"
)

// TestBucketPacing drives the token bucket on a fake clock: burst
// tokens go out instantly, then admission is paced at the configured
// rate, with waits accounted.
func TestBucketPacing(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBucket(10, 4) // 10 req/s, burst 4
	b.now = func() time.Time { return now }
	b.sleep = func(d time.Duration) { now = now.Add(d) }
	b.last = now

	for i := 0; i < 4; i++ {
		if w := b.wait(); w != 0 {
			t.Fatalf("burst token %d waited %v", i, w)
		}
	}
	// Bucket empty: the next token costs 1/rate = 100ms.
	if w := b.wait(); w != 100*time.Millisecond {
		t.Fatalf("paced wait = %v, want 100ms", w)
	}
	// Idle time refills up to burst, never beyond.
	now = now.Add(time.Hour)
	for i := 0; i < 4; i++ {
		if w := b.wait(); w != 0 {
			t.Fatalf("refilled token %d waited %v", i, w)
		}
	}
	if w := b.wait(); w != 100*time.Millisecond {
		t.Fatalf("wait after refill burst = %v, want 100ms", w)
	}
	// Rate 0 disables the bucket entirely.
	if nb := newBucket(0, 10); nb != nil {
		t.Fatal("rate 0 should yield nil bucket")
	}
	var nb *bucket
	if w := nb.wait(); w != 0 {
		t.Fatalf("nil bucket waited %v", w)
	}
}

func mkTenant(name string) *tenant {
	return &tenant{name: name, m: newTenantMetrics(nil, name)}
}

// TestDispatcherFairShare queues an aggressor burst and a victim
// trickle, then dequeues single-file: fair-share must alternate
// tenants, so the victim's requests come out near the front instead of
// behind the whole burst.
func TestDispatcherFairShare(t *testing.T) {
	d := newDispatcher(true, 1000)
	agg, vic := mkTenant("agg"), mkTenant("vic")
	for i := 0; i < 100; i++ {
		if !d.enqueue(request{t: agg, f: &Fcall{Tag: uint16(i)}}) {
			t.Fatal("aggressor enqueue refused")
		}
	}
	for i := 0; i < 2; i++ {
		if !d.enqueue(request{t: vic, f: &Fcall{Tag: uint16(1000 + i)}}) {
			t.Fatal("victim enqueue refused")
		}
	}
	var vicPos []int
	for i := 0; i < 102; i++ {
		r, ok := d.dequeue()
		if !ok {
			t.Fatal("dispatcher closed early")
		}
		if r.t == vic {
			vicPos = append(vicPos, i)
		}
	}
	if len(vicPos) != 2 || vicPos[1] > 4 {
		t.Fatalf("victim dequeued at %v; want both within the first ~4 slots", vicPos)
	}

	// FIFO mode: the victim waits behind the full burst.
	d2 := newDispatcher(false, 1000)
	for i := 0; i < 100; i++ {
		d2.enqueue(request{t: agg, f: &Fcall{}})
	}
	d2.enqueue(request{t: vic, f: &Fcall{}})
	for i := 0; i < 100; i++ {
		if r, _ := d2.dequeue(); r.t != agg {
			t.Fatalf("fifo position %d served %s, want agg", i, r.t.name)
		}
	}
	if r, _ := d2.dequeue(); r.t != vic {
		t.Fatal("fifo tail should be the victim")
	}
}

// TestDispatcherQueueCap checks per-tenant overflow reporting and that
// a full aggressor queue does not block a victim enqueue in fair mode.
func TestDispatcherQueueCap(t *testing.T) {
	d := newDispatcher(true, 3)
	agg, vic := mkTenant("agg"), mkTenant("vic")
	for i := 0; i < 3; i++ {
		if !d.enqueue(request{t: agg, f: &Fcall{}}) {
			t.Fatal("within-cap enqueue refused")
		}
	}
	if d.enqueue(request{t: agg, f: &Fcall{}}) {
		t.Fatal("over-cap enqueue accepted")
	}
	if !d.enqueue(request{t: vic, f: &Fcall{}}) {
		t.Fatal("victim enqueue refused while aggressor full")
	}
	if got := agg.m.queueDepth.Value(); got != 3 {
		t.Fatalf("aggressor queue depth = %d, want 3", got)
	}
	if got := vic.m.queueDepth.Value(); got != 1 {
		t.Fatalf("victim queue depth = %d, want 1", got)
	}
	// close abandons everything still queued and settles the gauges:
	// srv.queue.depth must not read non-zero forever after shutdown.
	d.close()
	if _, ok := d.dequeue(); ok {
		t.Fatal("dequeue after close returned abandoned work")
	}
	if got := agg.m.queueDepth.Value(); got != 0 {
		t.Fatalf("aggressor queue depth after close = %d, want 0", got)
	}
	if got := vic.m.queueDepth.Value(); got != 0 {
		t.Fatalf("victim queue depth after close = %d, want 0", got)
	}
}

// TestTenantStack exercises the ambient attribution stack.
func TestTenantStack(t *testing.T) {
	var s tenantStack
	if got := s.current(); got != "" {
		t.Fatalf("empty stack current = %q", got)
	}
	popA := s.push("a")
	if got := s.current(); got != "a" {
		t.Fatalf("current = %q, want a", got)
	}
	popB := s.push("b")
	if got := s.current(); got != "b" {
		t.Fatalf("current = %q, want b", got)
	}
	popB()
	if got := s.current(); got != "a" {
		t.Fatalf("after pop current = %q, want a", got)
	}
	popA()
	if got := s.current(); got != "" {
		t.Fatalf("after final pop current = %q, want empty", got)
	}
}
