package srv

import (
	"sync"
	"sync/atomic"
	"time"
)

// QoS is the per-tenant quality-of-service configuration.
//
// Two mechanisms compose, at different depths:
//
//   - Token-bucket admission (Rate/Burst) runs in the connection reader
//     before a request is even queued, so an over-rate tenant's own
//     reader stalls. The stall's granularity is the *connection*, not
//     the tenant: a connection that multiplexes attaches for several
//     tenants shares one reader, so an over-rate tenant's wait delays
//     the others riding the same connection. Tenant-level isolation
//     therefore assumes each tenant dials its own connections — the
//     deployment shape the client library and workload driver use; only
//     the fair-share dispatcher below isolates tenants that insist on
//     sharing one. It sits in front of the writeback throttle
//     (writeback.Daemon.Admit inside the fs entry points): admission
//     bounds how fast requests *arrive*, the writeback throttle bounds
//     how much dirty state they may *pin* once admitted.
//
//   - The fair-share dispatcher runs between the queues and the worker
//     pool that calls into the fs (and from there into C-LOOK request
//     scheduling). With FairShare on, workers round-robin across
//     tenants with pending work, one request per tenant per turn, so a
//     tenant with a thousand queued readdirs still only gets one slot
//     per cycle while a tenant with two queued reads gets serviced
//     every cycle. Per-request work is bounded (reads by msize, readdir
//     by page size), which is what makes one-request quanta fair. With
//     FairShare off all tenants share one FIFO — the measured
//     "no isolation" baseline.
//
// The buckets run on the wall clock, not the simulated disk clock: the
// simulated clock only advances when disk work is done, so pacing
// against it would deadlock an idle tenant.
type QoS struct {
	// Workers is the dispatcher pool size — the number of requests in
	// the fs concurrently. 0 means DefaultWorkers.
	Workers int
	// FairShare round-robins dispatch across tenants instead of
	// serving one global FIFO.
	FairShare bool
	// QueueCap bounds each tenant's pending-request queue (the global
	// FIFO gets QueueCap per known tenant). Overflow is answered with
	// ErrLimit instead of queued. 0 means DefaultQueueCap.
	QueueCap int
	// Rate is each tenant's sustained admission rate in requests per
	// second; 0 disables the bucket. Burst is the bucket depth, i.e.
	// how far a tenant may run ahead of the rate; 0 means DefaultBurst.
	Rate  float64
	Burst int
}

// Defaults for zero QoS fields.
const (
	DefaultWorkers  = 8
	DefaultQueueCap = 4096
	DefaultBurst    = 64
)

// bucket is a wall-clock token bucket. A nil bucket admits everything.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable for tests
	sleep  func(time.Duration)
}

func newBucket(rate float64, burst int) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = DefaultBurst
	}
	b := &bucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now, sleep: time.Sleep}
	b.last = b.now()
	return b
}

// wait blocks until a token is available and returns how long it waited.
func (b *bucket) wait() time.Duration {
	if b == nil {
		return 0
	}
	var total time.Duration
	for {
		b.mu.Lock()
		now := b.now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
		if b.tokens >= 1 {
			b.tokens--
			b.mu.Unlock()
			return total
		}
		need := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		b.sleep(need)
		total += need
	}
}

// request is one queued operation: parsed, tagged, admitted, waiting
// for a worker.
type request struct {
	c     *conn
	t     *tenant
	f     *Fcall
	start time.Time
}

// dispatcher moves requests from per-tenant queues to the worker pool.
type dispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	fair   bool
	cap    int
	fifo   []request // fair == false: one shared queue
	ring   []*tenant // fair == true: tenants with pending work
	next   int       // ring scan position
	closed bool
	wg     sync.WaitGroup
}

func newDispatcher(fair bool, queueCap int) *dispatcher {
	d := &dispatcher{fair: fair, cap: queueCap}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// enqueue queues r, reporting false when the tenant's queue (or the
// shared FIFO's per-tenant share) is full or the dispatcher is closed.
func (d *dispatcher) enqueue(r request) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	if d.fair {
		if len(r.t.pending) >= d.cap {
			return false
		}
		if len(r.t.pending) == 0 && !r.t.inRing {
			d.ring = append(d.ring, r.t)
			r.t.inRing = true
		}
		r.t.pending = append(r.t.pending, r)
	} else {
		if len(d.fifo) >= d.cap {
			return false
		}
		d.fifo = append(d.fifo, r)
	}
	r.t.m.queueDepth.Add(1)
	d.cond.Signal()
	return true
}

// dequeue blocks for the next request; ok is false once the dispatcher
// is closed and drained.
func (d *dispatcher) dequeue() (request, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.fair {
			for range d.ring {
				if d.next >= len(d.ring) {
					d.next = 0
				}
				t := d.ring[d.next]
				if len(t.pending) > 0 {
					r := t.pending[0]
					t.pending = t.pending[1:]
					if len(t.pending) == 0 {
						d.ring = append(d.ring[:d.next], d.ring[d.next+1:]...)
						t.inRing = false
						t.pending = nil // release backing array
					} else {
						d.next++
					}
					r.t.m.queueDepth.Add(-1)
					return r, true
				}
				d.next++
			}
		} else if len(d.fifo) > 0 {
			r := d.fifo[0]
			d.fifo = d.fifo[1:]
			if len(d.fifo) == 0 {
				d.fifo = nil
			}
			r.t.m.queueDepth.Add(-1)
			return r, true
		}
		if d.closed {
			return request{}, false
		}
		d.cond.Wait()
	}
}

// run starts the worker pool.
func (d *dispatcher) run(workers int, handle func(request)) {
	for i := 0; i < workers; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for {
				r, ok := d.dequeue()
				if !ok {
					return
				}
				handle(r)
			}
		}()
	}
}

// close drains nothing: workers finish what they dequeued, the rest is
// abandoned (their connections are closing anyway) — but the abandoned
// requests' queue-depth gauges are settled here, so srv.queue.depth
// does not read non-zero forever after a shutdown with pending work.
// Blocks until all workers exit.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	for _, r := range d.fifo {
		r.t.m.queueDepth.Add(-1)
	}
	d.fifo = nil
	for _, t := range d.ring {
		t.m.queueDepth.Add(int64(-len(t.pending)))
		t.pending = nil
		t.inRing = false
	}
	d.ring, d.next = nil, 0
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

// tenantStack is the ambient who-is-running record, the same
// best-effort shape as the obs op stack: workers push the tenant before
// calling into the fs, and the trace hook (which runs synchronously on
// the issuing goroutine) reads the top to label drops. Under concurrent
// workers attribution is approximate — a request may be blamed on a
// sibling tenant mid-overlap — but the value is always *some* currently
// active tenant, never garbage.
type tenantStack struct {
	mu    sync.Mutex
	stack []string
	top   atomic.Pointer[string]
}

func (s *tenantStack) push(name string) func() {
	s.mu.Lock()
	s.stack = append(s.stack, name)
	s.top.Store(&name)
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		if n := len(s.stack); n > 0 {
			s.stack = s.stack[:n-1]
			if n > 1 {
				top := s.stack[n-2] // private copy: readers hold the pointer lock-free
				s.top.Store(&top)
			} else {
				s.top.Store(nil)
			}
		}
		s.mu.Unlock()
	}
}

func (s *tenantStack) current() string {
	if p := s.top.Load(); p != nil {
		return *p
	}
	return ""
}
