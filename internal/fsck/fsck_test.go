package fsck

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		name string
		r    Report
		want Outcome
		exit int
	}{
		{"clean", Report{}, OutcomeClean, 0},
		{"repaired", Report{Problems: []string{"x"}, RepairsMade: 1}, OutcomeRepaired, 1},
		{"detected-only", Report{Problems: []string{"x"}}, OutcomeUnrepaired, 4},
		{"left-over", Report{Problems: []string{"x"}, RepairsMade: 3,
			Unrepairable: []string{"y"}}, OutcomeUnrepaired, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.r.Outcome(); got != c.want {
				t.Fatalf("Outcome() = %v, want %v", got, c.want)
			}
			if got := c.r.Outcome().ExitCode(); got != c.exit {
				t.Fatalf("ExitCode() = %d, want %d", got, c.exit)
			}
		})
	}
}

func TestWriteJSON(t *testing.T) {
	r := Report{FS: "cffs", Files: 3, Dirs: 1, Problems: []string{"block 9 lost"}, RepairsMade: 1}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if got["outcome"] != "repaired" || got["exit_code"] != float64(1) {
		t.Fatalf("derived fields wrong: %v", got)
	}
	if got["fs"] != "cffs" || got["files"] != float64(3) {
		t.Fatalf("report fields wrong: %v", got)
	}
}

func TestSummaryMentionsUnrepairable(t *testing.T) {
	r := Report{Problems: []string{"a", "b"}, RepairsMade: 1, Unrepairable: []string{"b"}}
	if s := r.Summary(); !strings.Contains(s, "UNREPAIRABLE") {
		t.Fatalf("summary %q should flag unrepairable problems", s)
	}
}
