// Package fsck implements offline consistency checkers for both file
// systems. The C-FFS checker demonstrates the recovery property the
// paper claims for embedded inodes: although inodes are no longer at
// statically determined locations, every inode can be found by walking
// the directory hierarchy from the root, and the allocation state
// (bitmaps, group descriptors) can be rebuilt from that walk.
package fsck

import "fmt"

// Report is the result of a check.
type Report struct {
	Files       int // regular files found by the namespace walk
	Dirs        int // directories found (including the root)
	UsedBlocks  int // blocks referenced by the walk (data + metadata)
	Problems    []string
	RepairsMade int
}

// Clean reports whether the image was consistent.
func (r *Report) Clean() bool { return len(r.Problems) == 0 }

// Summary renders a human-readable result.
func (r *Report) Summary() string {
	state := "clean"
	if !r.Clean() {
		state = fmt.Sprintf("%d problem(s)", len(r.Problems))
	}
	s := fmt.Sprintf("fsck: %d dirs, %d files, %d blocks in use: %s", r.Dirs, r.Files, r.UsedBlocks, state)
	if r.RepairsMade > 0 {
		s += fmt.Sprintf(" (%d repaired)", r.RepairsMade)
	}
	return s
}
