// Package fsck implements offline consistency checkers for both file
// systems. The C-FFS checker demonstrates the recovery property the
// paper claims for embedded inodes: although inodes are no longer at
// statically determined locations, every inode can be found by walking
// the directory hierarchy from the root, and the allocation state
// (bitmaps, group descriptors) can be rebuilt from that walk.
package fsck

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the result of a check.
type Report struct {
	FS          string   `json:"fs,omitempty"` // which checker ran (cffs, ffs, lfs)
	Files       int      `json:"files"`        // regular files found by the namespace walk
	Dirs        int      `json:"dirs"`         // directories found (including the root)
	UsedBlocks  int      `json:"used_blocks"`  // blocks referenced by the walk (data + metadata)
	Problems    []string `json:"problems,omitempty"`
	RepairsMade int      `json:"repairs_made"`
	// Unrepairable holds the problems a verification pass still found
	// after repair ran. Empty after a successful repair; meaningless
	// (always empty) on a detect-only run.
	Unrepairable []string `json:"unrepairable,omitempty"`
}

// Clean reports whether the image was consistent when the check began.
func (r *Report) Clean() bool { return len(r.Problems) == 0 }

// Outcome classifies a finished check for callers that gate on it: the
// crash-enumeration harness, CI, and cmd/fsck's exit status.
type Outcome int

const (
	// OutcomeClean: the image was consistent; nothing to do.
	OutcomeClean Outcome = iota
	// OutcomeRepaired: problems were found and every one was repaired —
	// a verification pass over the repaired image came back clean.
	OutcomeRepaired
	// OutcomeUnrepaired: problems remain on the image, either because
	// repair was not requested or because it could not fix everything.
	OutcomeUnrepaired
)

// String names the outcome for reports and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeRepaired:
		return "repaired"
	default:
		return "unrepairable"
	}
}

// ExitCode maps the outcome to cmd/fsck's exit status, following the
// Unix fsck convention: 0 clean, 1 errors corrected, 4 errors left
// uncorrected.
func (o Outcome) ExitCode() int {
	switch o {
	case OutcomeClean:
		return 0
	case OutcomeRepaired:
		return 1
	default:
		return 4
	}
}

// Outcome classifies the report.
func (r *Report) Outcome() Outcome {
	switch {
	case len(r.Unrepairable) > 0:
		return OutcomeUnrepaired
	case len(r.Problems) > 0 && r.RepairsMade == 0:
		return OutcomeUnrepaired // detected but not corrected
	case len(r.Problems) > 0:
		return OutcomeRepaired
	default:
		return OutcomeClean
	}
}

// jsonReport is the machine-readable envelope: the report plus its
// derived classification, so consumers need not re-implement Outcome.
type jsonReport struct {
	*Report
	Outcome  string `json:"outcome"`
	ExitCode int    `json:"exit_code"`
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Report: r, Outcome: r.Outcome().String(), ExitCode: r.Outcome().ExitCode()})
}

// Summary renders a human-readable result.
func (r *Report) Summary() string {
	state := "clean"
	if !r.Clean() {
		state = fmt.Sprintf("%d problem(s)", len(r.Problems))
	}
	s := fmt.Sprintf("fsck: %d dirs, %d files, %d blocks in use: %s", r.Dirs, r.Files, r.UsedBlocks, state)
	if r.RepairsMade > 0 {
		s += fmt.Sprintf(" (%d repaired)", r.RepairsMade)
	}
	if len(r.Unrepairable) > 0 {
		s += fmt.Sprintf(" (%d UNREPAIRABLE)", len(r.Unrepairable))
	}
	return s
}
