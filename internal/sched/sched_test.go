package sched

import (
	"testing"
	"testing/quick"

	"cffs/internal/sim"
)

func lbas(items []Item, order []int) []int64 {
	out := make([]int64, len(order))
	for i, idx := range order {
		out[i] = items[idx].LBA
	}
	return out
}

func TestFCFSPreservesOrder(t *testing.T) {
	items := []Item{{LBA: 9}, {LBA: 3}, {LBA: 7}}
	got := lbas(items, FCFS{}.Order(items, 100))
	want := []int64{9, 3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FCFS order %v, want %v", got, want)
		}
	}
}

func TestCLookSweepsUpFromHead(t *testing.T) {
	items := []Item{{LBA: 10}, {LBA: 200}, {LBA: 50}, {LBA: 150}, {LBA: 40}}
	got := lbas(items, CLook{}.Order(items, 45))
	want := []int64{50, 150, 200, 10, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CLOOK order %v, want %v", got, want)
		}
	}
}

func TestCLookHeadBeyondAll(t *testing.T) {
	items := []Item{{LBA: 10}, {LBA: 20}}
	got := lbas(items, CLook{}.Order(items, 1000))
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("CLOOK wrap order %v, want [10 20]", got)
	}
}

func TestCLookHeadAtZero(t *testing.T) {
	items := []Item{{LBA: 30}, {LBA: 10}, {LBA: 20}}
	got := lbas(items, CLook{}.Order(items, 0))
	if got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("CLOOK order %v, want ascending", got)
	}
}

// A request whose transfer straddles the head must join the upward
// sweep, not wait for the wrap: the head position after a multi-sector
// transfer is its end, and ordering by start LBA alone would model a
// full extra sweep for data the head is about to pass over.
func TestCLookAccountsForRequestLength(t *testing.T) {
	items := []Item{
		{LBA: 90, Sector: 20}, // ends at 110: reachable from head 100
		{LBA: 200, Sector: 8},
		{LBA: 10, Sector: 8}, // ends at 18: fully behind, wraps
	}
	got := lbas(items, CLook{}.Order(items, 100))
	want := []int64{90, 200, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CLOOK mixed-length order %v, want %v", got, want)
		}
	}
}

// Mixed-length runs: short requests behind the head wrap, long requests
// reaching the head do not, and requests starting at or past the head
// order exactly as in the length-free case.
func TestCLookMixedLengthRuns(t *testing.T) {
	items := []Item{
		{LBA: 0, Sector: 16},    // run of 2 blocks ending at 16: wraps
		{LBA: 500, Sector: 8},   // ahead of head
		{LBA: 56, Sector: 8},    // ends exactly at the head: reachable
		{LBA: 120, Sector: 128}, // long run ahead
	}
	got := lbas(items, CLook{}.Order(items, 64))
	want := []int64{56, 120, 500, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CLOOK mixed-length order %v, want %v", got, want)
		}
	}
}

// Any schedule must be a permutation: every request serviced exactly once.
func TestOrderIsPermutation(t *testing.T) {
	rng := sim.NewRNG(13)
	f := func(n uint8, head uint16) bool {
		count := int(n)%64 + 1
		items := make([]Item, count)
		for i := range items {
			items[i] = Item{LBA: rng.Int63n(1 << 20), Sector: 8}
		}
		for _, s := range []Scheduler{FCFS{}, CLook{}} {
			order := s.Order(items, int64(head))
			if len(order) != count {
				return false
			}
			seen := make([]bool, count)
			for _, idx := range order {
				if idx < 0 || idx >= count || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// C-LOOK must never seek backwards except at the single wrap point.
func TestCLookSingleWrap(t *testing.T) {
	rng := sim.NewRNG(77)
	for trial := 0; trial < 100; trial++ {
		items := make([]Item, 40)
		for i := range items {
			items[i] = Item{LBA: rng.Int63n(1 << 24)}
		}
		head := rng.Int63n(1 << 24)
		seq := lbas(items, CLook{}.Order(items, head))
		wraps := 0
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				wraps++
			}
		}
		if wraps > 1 {
			t.Fatalf("trial %d: %d backward moves in C-LOOK schedule %v", trial, wraps, seq)
		}
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("clook"); !ok || s.Name() != "clook" {
		t.Fatal("clook lookup failed")
	}
	if s, ok := ByName("fcfs"); !ok || s.Name() != "fcfs" {
		t.Fatal("fcfs lookup failed")
	}
	if _, ok := ByName("elevator"); ok {
		t.Fatal("unknown scheduler accepted")
	}
}
