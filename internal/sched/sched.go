// Package sched provides disk request schedulers. The paper's testbed
// driver (taken from NetBSD) used C-LOOK [Worthington94]; FCFS is kept as
// the baseline for the scheduler ablation.
package sched

import "sort"

// Item is one schedulable request: a starting LBA and a length.
type Item struct {
	LBA    int64
	Sector int // length in sectors; C-LOOK uses it to place the sweep split
}

// Scheduler orders a batch of requests given the current head position
// (as an LBA). Implementations return a permutation of indexes into the
// batch; the driver services requests in that order.
//
// Implementations must be stateless: all positional context arrives via
// headLBA. That is what lets one Scheduler value serve every spindle of
// a striped volume — the volume partitions a batch per member and runs
// the same policy against each member's own head position.
type Scheduler interface {
	Name() string
	Order(items []Item, headLBA int64) []int
}

// FCFS services requests in arrival order.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Order implements Scheduler.
func (FCFS) Order(items []Item, _ int64) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	return order
}

// CLook implements the C-LOOK (circular look) policy: service requests in
// ascending LBA order starting from the first request at or beyond the
// head position, then wrap to the lowest-addressed remaining requests.
// One-directional sweeps avoid the starvation and variance of SCAN while
// keeping seeks short, which is why 1990s Unix drivers used it.
type CLook struct{}

// Name implements Scheduler.
func (CLook) Name() string { return "clook" }

// Order implements Scheduler.
func (CLook) Order(items []Item, headLBA int64) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return items[order[a]].LBA < items[order[b]].LBA
	})
	// Find the first request the upward sweep can still service and
	// rotate to start there. A request counts as reachable when any part
	// of it lies at or beyond the head: transfers are multi-sector, so a
	// request straddling the head position ends ahead of it, and
	// deferring it to the wrap would charge a full extra sweep for data
	// the head is about to pass over.
	split := len(order)
	for i, idx := range order {
		if items[idx].LBA+int64(items[idx].Sector) >= headLBA {
			split = i
			break
		}
	}
	rotated := make([]int, 0, len(order))
	rotated = append(rotated, order[split:]...)
	rotated = append(rotated, order[:split]...)
	return rotated
}

// ByName returns the named scheduler ("clook" or "fcfs").
func ByName(name string) (Scheduler, bool) {
	switch name {
	case "clook":
		return CLook{}, true
	case "fcfs":
		return FCFS{}, true
	}
	return nil, false
}
