package ssd

import "testing"

// FuzzSSDMapping drives random write/trim sequences through the FTL and
// checks the mapping against a flat-array oracle: a logical page is
// mapped exactly when the oracle says it is live, every structural
// invariant holds (checkFTL), and the free pool never drops below the
// reserve — GC progress under arbitrary interleavings.
//
// The byte stream decodes as 2-byte ops: the first byte selects the
// action (trim on 0 mod 4, write otherwise, so writes dominate and the
// log actually wraps), the second the logical page. A small geometry
// (128 pages, 8-page blocks, minimal over-provisioning) makes even
// short inputs wrap the log several times.
func FuzzSSDMapping(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 1, 0, 0, 0})                   // rewrite then trim one page
	f.Add([]byte{1, 1, 2, 2, 3, 3, 0, 1, 1, 1, 1, 1}) // mixed ops
	seq := make([]byte, 0, 512)
	for i := 0; i < 128; i++ { // two sequential device fills
		seq = append(seq, 1, byte(i), 1, byte(i))
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		ft, err := newFTL(128, 8, 2, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		live := make([]bool, ft.nLogical) // the oracle
		for i := 0; i+1 < len(data); i += 2 {
			lpn := int(data[i+1]) % ft.nLogical
			if data[i]%4 == 0 {
				if err := ft.trim(lpn); err != nil {
					t.Fatal(err)
				}
				live[lpn] = false
			} else {
				if _, err := ft.write(lpn); err != nil {
					t.Fatal(err)
				}
				live[lpn] = true
			}
			if ft.freeBlocks() < ft.reserve {
				t.Fatalf("free pool %d below reserve %d", ft.freeBlocks(), ft.reserve)
			}
		}
		for lpn, want := range live {
			if got := ft.l2p[lpn] >= 0; got != want {
				t.Fatalf("page %d: mapped=%v, oracle live=%v", lpn, got, want)
			}
		}
		checkFTL(t, ft)
		if ft.flashPages < ft.hostPages {
			t.Fatalf("flash pages %d below host pages %d", ft.flashPages, ft.hostPages)
		}
	})
}
