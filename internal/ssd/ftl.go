package ssd

import "fmt"

// ftl is the flash translation layer: a log-structured page mapping
// from logical pages (what the host addresses) to physical pages (where
// the flash actually programmed them), with greedy garbage collection.
//
// The FTL is an accounting model, not a data path. The byte store under
// the device always holds logical data at logical offsets — that is
// what keeps fsck, the fault injector, and crash-state reconstruction
// working unchanged on the ssd backend. What the mapping buys is the
// *cost* structure of flash: out-of-place writes, erase-block
// granularity reclaim, write amplification when live pages must move to
// free a block, and erase-count wear. All of it is deterministic, so
// aged-image benchmarks reproduce bit-for-bit.
//
// Invariants (checked by the oracle in ftl_test.go and FuzzSSDMapping):
//   - a mapped logical page has exactly one valid physical page, and
//     the reverse map agrees;
//   - a physical page holds at most one logical page;
//   - per-block valid counts equal the number of mapped pages in the
//     block;
//   - the active block is never a GC victim and free blocks hold no
//     valid pages.
type ftl struct {
	ppb      int // pages per erase block
	nLogical int // logical pages the host may address
	nBlocks  int // physical erase blocks
	reserve  int // free blocks below which GC collects

	l2p    []int32 // logical page -> physical page; -1 unmapped
	p2l    []int32 // physical page -> logical page; -1 free or invalid
	valid  []int32 // per-block count of valid (mapped) pages
	erases []int32 // per-block erase count

	active     int    // block currently being programmed
	activeNext int    // next free page slot within the active block
	free       []int  // free blocks, popped from the end (LIFO, deterministic)
	isFree     []bool // per-block free-pool membership

	// Cumulative accounting. hostPages counts pages the host asked to
	// write; flashPages counts pages actually programmed (host +
	// migrated); their ratio is the write amplification.
	hostPages  int64
	flashPages int64
	moved      int64 // pages relocated by GC
	eraseOps   int64
	gcRuns     int64
	trims      int64
}

// newFTL builds the mapping for nLogical pages with the given erase
// block size, over-provisioning fraction, and GC reserve.
func newFTL(nLogical, ppb, reserve int, overProvision float64) (*ftl, error) {
	if nLogical <= 0 || ppb <= 0 {
		return nil, fmt.Errorf("ssd: ftl with %d logical pages, %d pages/block", nLogical, ppb)
	}
	// A reserve below 2 cannot guarantee progress: sealing the active
	// block mid-migration pops one more free block, so GC must always
	// start with at least one block in the pool.
	if reserve < 2 {
		reserve = 2
	}
	logicalBlocks := (nLogical + ppb - 1) / ppb
	spare := int(float64(logicalBlocks) * overProvision)
	// GC needs headroom to make progress: the active block plus the
	// reserve must exist beyond the logical capacity, or a full device
	// would have no invalid pages to reclaim.
	if min := reserve + 2; spare < min {
		spare = min
	}
	nBlocks := logicalBlocks + spare
	f := &ftl{
		ppb:      ppb,
		nLogical: nLogical,
		nBlocks:  nBlocks,
		reserve:  reserve,
		l2p:      make([]int32, nLogical),
		p2l:      make([]int32, nBlocks*ppb),
		valid:    make([]int32, nBlocks),
		erases:   make([]int32, nBlocks),
	}
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	// Block 0 starts active; the rest are free. The free stack is
	// populated in descending order so pops walk the device in
	// ascending block order — purely for deterministic, readable
	// physical layouts.
	f.active = 0
	f.free = make([]int, 0, nBlocks-1)
	f.isFree = make([]bool, nBlocks)
	for b := nBlocks - 1; b >= 1; b-- {
		f.free = append(f.free, b)
		f.isFree[b] = true
	}
	return f, nil
}

// gcCost is what one maybeGC round did, for the device's clock and
// counters. The zero value means GC did not run.
type gcCost struct {
	moved  int64 // pages migrated
	erases int64 // blocks erased
}

// write maps one host page write, running GC if the write left the
// free pool below the reserve. It returns the GC work performed.
func (f *ftl) write(lpn int) (gcCost, error) {
	if lpn < 0 || lpn >= f.nLogical {
		return gcCost{}, fmt.Errorf("ssd: logical page %d outside [0,%d)", lpn, f.nLogical)
	}
	f.program(lpn)
	f.hostPages++
	f.flashPages++
	return f.maybeGC(), nil
}

// trim unmaps one logical page (the host declares it dead), turning its
// physical page invalid without programming anything.
func (f *ftl) trim(lpn int) error {
	if lpn < 0 || lpn >= f.nLogical {
		return fmt.Errorf("ssd: logical page %d outside [0,%d)", lpn, f.nLogical)
	}
	f.invalidate(lpn)
	f.trims++
	return nil
}

// program appends lpn to the active block, invalidating any previous
// mapping. It assumes a free page exists (guaranteed by construction:
// GC runs after every write and keeps the reserve stocked).
func (f *ftl) program(lpn int) {
	f.invalidate(lpn)
	if f.activeNext == f.ppb {
		// Active block sealed; open the next free block.
		last := len(f.free) - 1
		f.active, f.free = f.free[last], f.free[:last]
		f.isFree[f.active] = false
		f.activeNext = 0
	}
	ppn := int32(f.active*f.ppb + f.activeNext)
	f.activeNext++
	f.l2p[lpn] = ppn
	f.p2l[ppn] = int32(lpn)
	f.valid[f.active]++
}

// invalidate clears lpn's current mapping, if any.
func (f *ftl) invalidate(lpn int) {
	if old := f.l2p[lpn]; old >= 0 {
		f.p2l[old] = -1
		f.valid[old/int32(f.ppb)]--
		f.l2p[lpn] = -1
	}
}

// maybeGC collects blocks until the free pool is back above the
// reserve. The victim policy is greedy: the sealed block with the
// fewest valid pages. A victim's survivors are re-programmed into the
// active block (that is the write amplification) and the victim is
// erased.
func (f *ftl) maybeGC() gcCost {
	var cost gcCost
	ran := false
	for len(f.free) < f.reserve {
		victim := f.pickVictim()
		if victim < 0 {
			break // nothing reclaimable; only possible when over-full
		}
		ran = true
		base := victim * f.ppb
		for i := 0; i < f.ppb; i++ {
			lpn := f.p2l[base+i]
			if lpn < 0 {
				continue
			}
			f.program(int(lpn))
			f.flashPages++
			f.moved++
			cost.moved++
		}
		// All pages are now invalid; erase and return to the pool.
		for i := 0; i < f.ppb; i++ {
			f.p2l[base+i] = -1
		}
		f.valid[victim] = 0
		f.erases[victim]++
		f.eraseOps++
		cost.erases++
		f.free = append(f.free, victim)
		f.isFree[victim] = true
	}
	if ran {
		f.gcRuns++
	}
	return cost
}

// pickVictim returns the sealed block with the fewest valid pages, or
// -1 when no block would yield net free space (every sealed block fully
// valid). Fully-valid blocks are never collected: migrating one
// consumes exactly as many pages as it frees.
func (f *ftl) pickVictim() int {
	best, bestValid := -1, int32(f.ppb)
	for b := 0; b < f.nBlocks; b++ {
		if b == f.active || f.isFree[b] {
			continue
		}
		if f.valid[b] < bestValid {
			best, bestValid = b, f.valid[b]
		}
	}
	return best
}

// fill simulates a full device history: every logical page written
// once, then strided overwrites until the free pool first touches the
// reserve — the point past which every sealed block forces a
// collection. The accounting is then zeroed so measurements start from
// the aged state rather than from the fill. This is the FTL half of an
// "aged" image: on a fresh FTL the log never wraps within a benchmark's
// write volume, the over-provisioned free pool absorbs everything, and
// GC stays silent — exactly like a fresh drive.
func (f *ftl) fill() {
	for lpn := 0; lpn < f.nLogical; lpn++ {
		f.program(lpn)
		f.maybeGC()
	}
	// Strided, not sequential: scattered invalidations leave every
	// victim partially valid, so steady-state GC really migrates pages
	// (sequential overwrites would hand GC fully-invalid blocks for
	// free). The prime stride visits every page before repeating.
	const stride = 7919
	for i := 0; len(f.free) > f.reserve; i++ {
		f.program(i * stride % f.nLogical)
		f.maybeGC()
	}
	f.hostPages, f.flashPages = 0, 0
	f.moved, f.eraseOps, f.gcRuns, f.trims = 0, 0, 0, 0
	for i := range f.erases {
		f.erases[i] = 0
	}
}

// writeAmp is flash pages programmed per host page written; 1.0 until
// GC first moves a survivor.
func (f *ftl) writeAmp() float64 {
	if f.hostPages == 0 {
		return 1
	}
	return float64(f.flashPages) / float64(f.hostPages)
}

// maxErase returns the highest per-block erase count (wear skew).
func (f *ftl) maxErase() int32 {
	var max int32
	for _, e := range f.erases {
		if e > max {
			max = e
		}
	}
	return max
}

// freeBlocks returns the current free pool size.
func (f *ftl) freeBlocks() int { return len(f.free) }
