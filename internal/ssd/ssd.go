// Package ssd simulates a flash device: every request pays a small
// fixed cost (protocol plus flash access, microseconds rather than the
// disk's milliseconds), transfers stream at a per-channel bandwidth,
// and there is no positioning state — address distance never enters the
// timing. Requests on distinct channels service concurrently, and
// beneath the flat logical address space an erase-block FTL tracks the
// out-of-place write costs the interface hides: garbage collection,
// write amplification, and erase wear, all charged on the simulated
// clock.
//
// The device exists to test where the paper's bet breaks. C-FFS wins on
// a mechanical disk for two separable reasons: grouped placement turns
// many seeks into one (locality), and grouped transfer turns many
// requests into one (batching). Flash deletes the first reason — the
// seek-locality half of the read speedup evaporates — but keeps the
// second: each request still carries a fixed price, so grouping a
// directory's files into one 64 KB transfer still divides the request
// count by the group size. The fresh-vs-aged experiment matrix adds the
// FTL's own axis: on an aged device GC taxes every write with migration
// and erase time, which favors file systems that write less metadata.
//
// Unlike the disk and objstore models, the ssd carries state that
// timing depends on (the FTL mapping); like them, it is fully
// deterministic, so aged-image benchmarks reproduce bit-for-bit.
package ssd

import (
	"fmt"
	"sort"
	"sync"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sim"
)

// Spec parameterizes the flash device's timing model and FTL geometry.
type Spec struct {
	Name string

	// ReqOverhead is the fixed per-request cost in seconds: command
	// submission, flash array access, and completion. Microseconds, not
	// the disk's milliseconds — but still the term explicit grouping
	// amortizes.
	ReqOverhead float64

	// Bandwidth is the streaming rate of one request in bytes/second
	// once the fixed cost is paid.
	Bandwidth float64

	// Channels bounds how many requests service concurrently; 0 means
	// unbounded.
	Channels int

	// PageBytes is the flash page size, the FTL's mapping granularity.
	// Must be a positive sector multiple.
	PageBytes int

	// PagesPerBlock is the erase-block size in pages.
	PagesPerBlock int

	// OverProvision is the fraction of spare erase blocks beyond the
	// logical capacity (raised to the GC progress minimum if smaller).
	OverProvision float64

	// GCReserve is the free-block floor: GC collects until at least
	// this many blocks are free (minimum 2 for progress).
	GCReserve int

	// Erase is the time to erase one block, in seconds.
	Erase float64

	// PreDirty ages the FTL at open: every logical page is programmed
	// once so the log is wrapped and GC runs at steady state from the
	// first write, like a drive that has been through many fill cycles.
	// A fresh FTL on a benchmark-sized device never wraps its log, so
	// GC stays silent and write amplification is exactly 1.0.
	PreDirty bool
}

// DefaultSpec models a mid-range NVMe-class device: 30 µs per request,
// 200 MB/s per channel, 8 channels, 4 KB pages in 256 KB erase blocks
// with 12.5% over-provisioning and 2 ms erases. At these numbers a 1 KB
// read costs ~35 µs and a full 64 KB group read ~360 µs — the fixed
// cost still dominates single-file traffic, but by 2 orders of
// magnitude less than a disk seek.
func DefaultSpec() Spec {
	return Spec{
		Name:          "ssd",
		ReqOverhead:   30e-6,
		Bandwidth:     200e6,
		Channels:      8,
		PageBytes:     4096,
		PagesPerBlock: 64,
		OverProvision: 0.125,
		GCReserve:     4,
		Erase:         2e-3,
	}
}

// Validate checks the spec for usable values.
func (s Spec) Validate() error {
	if s.ReqOverhead < 0 {
		return fmt.Errorf("ssd: negative request overhead %g", s.ReqOverhead)
	}
	if s.Bandwidth <= 0 {
		return fmt.Errorf("ssd: bandwidth %g not positive", s.Bandwidth)
	}
	if s.Channels < 0 {
		return fmt.Errorf("ssd: negative channel count %d", s.Channels)
	}
	if s.PageBytes <= 0 || s.PageBytes%disk.SectorSize != 0 {
		return fmt.Errorf("ssd: page size %d is not a positive sector multiple", s.PageBytes)
	}
	if s.PagesPerBlock <= 0 {
		return fmt.Errorf("ssd: %d pages per erase block", s.PagesPerBlock)
	}
	if s.OverProvision < 0 {
		return fmt.Errorf("ssd: negative over-provisioning %g", s.OverProvision)
	}
	if s.Erase < 0 {
		return fmt.Errorf("ssd: negative erase time %g", s.Erase)
	}
	return nil
}

var (
	_ blockio.Target         = (*Store)(nil)
	_ blockio.BatchSubmitter = (*Store)(nil)
)

// fanHint is the parallelism reported upward when the channel pool is
// unbounded, mirroring objstore.
const fanHint = 16

// Store is a simulated flash device presenting a flat logical sector
// address space over a byte store, implementing blockio.Target and
// blockio.BatchSubmitter. It is safe for concurrent use; a single mutex
// serializes the timing model, the FTL, and statistics.
//
// The FTL is accounting, not a data path: the byte store always holds
// logical data at logical offsets, so fsck, fault injection, and
// crash-state reconstruction work on the ssd backend unchanged.
type Store struct {
	spec    Spec
	clock   *sim.Clock
	store   disk.Store
	sectors int64
	ftl     *ftl

	mu sync.Mutex // guards stats, FTL, trace hooks, and the byte store

	stats       disk.Stats
	trace       *[]disk.TraceEntry
	traceFunc   func(disk.TraceEntry)
	opSource    func() (kind uint8, id uint64)
	metricsFunc func(disk.TraceEntry)

	// ssd.* instruments; nil (no-op) until SetMetrics attaches a registry.
	mHostPages *obs.Counter // ssd.pages.host
	mFlashPg   *obs.Counter // ssd.pages.flash
	mGCRuns    *obs.Counter // ssd.gc.runs
	mGCMoved   *obs.Counter // ssd.gc.pages_moved
	mGCErases  *obs.Counter // ssd.gc.erases
	mGCNanos   *obs.Counter // ssd.gc.ns
	mTrims     *obs.Counter // ssd.trims
	gWriteAmp  *obs.Gauge   // ssd.writeamp_x100
	gFreeBlks  *obs.Gauge   // ssd.blocks.free
	gEraseMax  *obs.Gauge   // ssd.erase.max
}

// New builds a flash device of the given byte capacity (a sector
// multiple) over an existing byte store.
func New(spec Spec, clock *sim.Clock, st disk.Store, capacity int64) (*Store, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 || capacity%disk.SectorSize != 0 {
		return nil, fmt.Errorf("ssd: capacity %d is not a positive sector multiple", capacity)
	}
	nLogical := int((capacity + int64(spec.PageBytes) - 1) / int64(spec.PageBytes))
	f, err := newFTL(nLogical, spec.PagesPerBlock, spec.GCReserve, spec.OverProvision)
	if err != nil {
		return nil, err
	}
	if spec.PreDirty {
		f.fill()
	}
	return &Store{
		spec:    spec,
		clock:   clock,
		store:   st,
		sectors: capacity / disk.SectorSize,
		ftl:     f,
	}, nil
}

// NewMem builds a flash device over a fresh in-memory image.
func NewMem(spec Spec, clock *sim.Clock, capacity int64) (*Store, error) {
	return New(spec, clock, disk.NewMemStore(capacity), capacity)
}

// Spec returns the timing parameters.
func (d *Store) Spec() Spec { return d.spec }

// Sectors implements blockio.Target.
func (d *Store) Sectors() int64 { return d.sectors }

// Clock implements blockio.Target.
func (d *Store) Clock() *sim.Clock { return d.clock }

// Parallelism reports how many requests a device with this spec
// services concurrently. An unbounded channel pool reports fanHint.
func (s Spec) Parallelism() int {
	if s.Channels > 0 {
		return s.Channels
	}
	return fanHint
}

// Parallelism implements the optional device-parallelism probe.
func (d *Store) Parallelism() int { return d.spec.Parallelism() }

// Stats implements blockio.Target.
func (d *Store) Stats() disk.Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats implements blockio.Target.
func (d *Store) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = disk.Stats{}
}

// SetMetrics attaches a registry for the device's FTL instruments.
// Counters: ssd.pages.host, ssd.pages.flash, ssd.gc.runs,
// ssd.gc.pages_moved, ssd.gc.erases, ssd.gc.ns, ssd.trims. Gauges:
// ssd.writeamp_x100, ssd.blocks.free, ssd.erase.max. Families are
// created eagerly so they appear in snapshots even before GC first
// runs. Call before concurrent use.
func (d *Store) SetMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mHostPages = r.Counter("ssd.pages.host")
	d.mFlashPg = r.Counter("ssd.pages.flash")
	d.mGCRuns = r.Counter("ssd.gc.runs")
	d.mGCMoved = r.Counter("ssd.gc.pages_moved")
	d.mGCErases = r.Counter("ssd.gc.erases")
	d.mGCNanos = r.Counter("ssd.gc.ns")
	d.mTrims = r.Counter("ssd.trims")
	d.gWriteAmp = r.Gauge("ssd.writeamp_x100")
	d.gFreeBlks = r.Gauge("ssd.blocks.free")
	d.gEraseMax = r.Gauge("ssd.erase.max")
	d.updateGauges()
}

// updateGauges publishes the FTL's current levels, with d.mu held.
func (d *Store) updateGauges() {
	d.gWriteAmp.Set(int64(d.ftl.writeAmp() * 100))
	d.gFreeBlks.Set(int64(d.ftl.freeBlocks()))
	d.gEraseMax.Set(int64(d.ftl.maxErase()))
}

// FTLStats is a point-in-time copy of the FTL's accounting, for
// benchmark gates and tests.
type FTLStats struct {
	HostPages  int64   // pages the host wrote
	FlashPages int64   // pages actually programmed (host + migrated)
	Moved      int64   // pages relocated by GC
	Erases     int64   // erase operations
	GCRuns     int64   // GC activations
	Trims      int64   // logical pages trimmed
	WriteAmp   float64 // FlashPages / HostPages
	MaxErase   int32   // highest per-block erase count
	FreeBlocks int     // current free pool size
}

// FTL returns the current FTL accounting.
func (d *Store) FTL() FTLStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return FTLStats{
		HostPages:  d.ftl.hostPages,
		FlashPages: d.ftl.flashPages,
		Moved:      d.ftl.moved,
		Erases:     d.ftl.eraseOps,
		GCRuns:     d.ftl.gcRuns,
		Trims:      d.ftl.trims,
		WriteAmp:   d.ftl.writeAmp(),
		MaxErase:   d.ftl.maxErase(),
		FreeBlocks: d.ftl.freeBlocks(),
	}
}

// serviceNs returns one request's host-visible service time: fixed
// overhead plus streaming transfer. No positioning term, no distance
// dependence — that is the whole point of this backend.
func (d *Store) serviceNs(nsect int) (svc, transfer int64) {
	transfer = int64(float64(nsect) * disk.SectorSize / d.spec.Bandwidth * 1e9)
	return int64(d.spec.ReqOverhead*1e9) + transfer, transfer
}

// gcNs prices one GC round: migrated pages stream at the device
// bandwidth, erases pay the fixed erase time.
func (d *Store) gcNs(cost gcCost) int64 {
	if cost.moved == 0 && cost.erases == 0 {
		return 0
	}
	program := int64(float64(cost.moved) * float64(d.spec.PageBytes) / d.spec.Bandwidth * 1e9)
	return program + cost.erases*int64(d.spec.Erase*1e9)
}

// ftlWrite maps one host write through the FTL with d.mu held: every
// touched page is programmed out-of-place, and any GC the write forced
// is priced and counted. It returns the GC time to charge on the clock.
func (d *Store) ftlWrite(lba int64, nsect int) (int64, error) {
	spp := int64(d.spec.PageBytes / disk.SectorSize)
	first := lba / spp
	last := (lba + int64(nsect) - 1) / spp
	var cost gcCost
	var runs int64
	for lpn := first; lpn <= last; lpn++ {
		c, err := d.ftl.write(int(lpn))
		if err != nil {
			return 0, err
		}
		cost.moved += c.moved
		cost.erases += c.erases
		if c.moved > 0 || c.erases > 0 {
			runs++
		}
	}
	pages := last - first + 1
	gc := d.gcNs(cost)
	d.mHostPages.Add(pages)
	d.mFlashPg.Add(pages + cost.moved)
	d.mGCRuns.Add(runs)
	d.mGCMoved.Add(cost.moved)
	d.mGCErases.Add(cost.erases)
	d.mGCNanos.Add(gc)
	d.updateGauges()
	return gc, nil
}

// Trim declares a sector run dead: the FTL unmaps every page fully
// covered by the run, so GC never migrates its contents. Timing-free —
// trims ride in the host's command stream.
func (d *Store) Trim(lba int64, nsect int) error {
	if err := d.check(lba, nsect); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	spp := int64(d.spec.PageBytes / disk.SectorSize)
	first := (lba + spp - 1) / spp     // round up: only whole pages
	last := (lba + int64(nsect)) / spp // round down
	n := int64(0)
	for lpn := first; lpn < last; lpn++ {
		if err := d.ftl.trim(int(lpn)); err != nil {
			return err
		}
		n++
	}
	d.mTrims.Add(n)
	d.updateGauges()
	return nil
}

// account records one serviced request's statistics and trace entry
// with d.mu held. It does not touch the clock; callers advance it by
// the request's completion model (serial or batched).
func (d *Store) account(lba int64, nsect int, write bool, svc, transfer int64) {
	if write {
		d.stats.Writes++
		d.stats.SectorsWrite += int64(nsect)
	} else {
		d.stats.Reads++
		d.stats.SectorsRead += int64(nsect)
	}
	d.stats.Requests++
	d.stats.BusyNanos += svc
	d.stats.TransferNanos += transfer
	if d.trace != nil || d.traceFunc != nil || d.metricsFunc != nil {
		e := disk.TraceEntry{LBA: lba, Count: nsect, Write: write, Nanos: svc}
		if d.opSource != nil {
			e.OpKind, e.OpID = d.opSource()
		}
		if d.trace != nil {
			*d.trace = append(*d.trace, e)
		}
		if d.traceFunc != nil {
			d.traceFunc(e)
		}
		if d.metricsFunc != nil {
			d.metricsFunc(e)
		}
	}
}

func (d *Store) check(lba int64, nsect int) error {
	if nsect <= 0 {
		return fmt.Errorf("ssd: request of %d sectors", nsect)
	}
	if lba < 0 || lba+int64(nsect) > d.sectors {
		return fmt.Errorf("ssd: request [%d,%d) outside device of %d sectors",
			lba, lba+int64(nsect), d.sectors)
	}
	return nil
}

func sectorCount(bufs [][]byte) (int, error) {
	total := 0
	for _, b := range bufs {
		if len(b) == 0 || len(b)%disk.SectorSize != 0 {
			return 0, fmt.Errorf("ssd: transfer of %d bytes is not a positive sector multiple", len(b))
		}
		total += len(b) / disk.SectorSize
	}
	return total, nil
}

// ReadV implements blockio.Target: one request, one fixed cost,
// scattered into bufs. Reads never touch the FTL accounting — flash
// reads are in-place.
func (d *Store) ReadV(lba int64, bufs [][]byte) error {
	return d.rw(lba, bufs, false, false)
}

// WriteV implements blockio.Target.
func (d *Store) WriteV(lba int64, bufs [][]byte) error {
	return d.rw(lba, bufs, true, false)
}

// WriteOrdered implements blockio.Target: timing and FTL cost are an
// ordinary write; the barrier is forwarded to the backing byte store
// when it distinguishes ordered writes (the fault injector does). The
// FTL's log-structured mapping makes the barrier cheap on real flash
// too — ordered metadata writes are the C-FFS cost that survives the
// move off mechanical disks, which is why the experiment matrix counts
// them per backend.
func (d *Store) WriteOrdered(lba int64, buf []byte) error {
	return d.rw(lba, [][]byte{buf}, true, true)
}

// rw services one request end to end: timing, FTL, statistics, byte
// movement.
func (d *Store) rw(lba int64, bufs [][]byte, write, ordered bool) error {
	nsect, err := sectorCount(bufs)
	if err != nil {
		return err
	}
	if err := d.check(lba, nsect); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	svc, transfer := d.serviceNs(nsect)
	var gc int64
	if write {
		if gc, err = d.ftlWrite(lba, nsect); err != nil {
			return err
		}
	}
	d.account(lba, nsect, write, svc, transfer)
	d.stats.BusyNanos += gc
	d.clock.Advance(svc + gc)
	off := lba * disk.SectorSize
	for _, b := range bufs {
		if write {
			if ordered {
				if os, ok := d.store.(disk.OrderedStore); ok {
					err = os.WriteAtOrdered(b, off)
				} else {
					err = d.store.WriteAt(b, off)
				}
			} else {
				err = d.store.WriteAt(b, off)
			}
		} else {
			err = d.store.ReadAt(b, off)
		}
		if err != nil {
			return err
		}
		off += int64(len(b))
	}
	return nil
}

// SubmitBlocks implements blockio.BatchSubmitter. As on the object
// store there is no head position and nothing to sweep: contiguous
// same-direction runs coalesce into one request (capped at the 64 KB
// transfer limit so request sizes stay comparable with the disk
// backend), and the merged requests service concurrently across
// channels — batch cost is the makespan, not the sum. GC forced by the
// batch's writes is device-internal housekeeping and serializes after
// the batch on the simulated clock. Explicit grouping still matters
// here precisely because it makes a directory's blocks contiguous and
// therefore mergeable; without it every small file is its own
// full-overhead request.
func (d *Store) SubmitBlocks(reqs []blockio.Req) (int, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	// Address order is meaningless for timing but is what makes merges
	// visible; a stable scan in block order finds every contiguous run.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := &reqs[order[a]], &reqs[order[b]]
		if ra.Block != rb.Block {
			return ra.Block < rb.Block
		}
		return !ra.Write && rb.Write
	})
	type run struct {
		block int64
		write bool
		bufs  [][]byte
	}
	var runs []run
	for i := 0; i < len(order); {
		first := &reqs[order[i]]
		m := run{block: first.Block, write: first.Write}
		m.bufs = append(m.bufs, first.Bufs...)
		next := first.Block + int64(len(first.Bufs))
		j := i + 1
		for j < len(order) {
			r := &reqs[order[j]]
			if r.Write != m.write || r.Block != next ||
				len(m.bufs)+len(r.Bufs) > blockio.MaxTransferBlocks {
				break
			}
			m.bufs = append(m.bufs, r.Bufs...)
			next += int64(len(r.Bufs))
			j++
		}
		runs = append(runs, m)
		i = j
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	svcs := make([]int64, len(runs))
	var gcTotal int64
	for i, m := range runs {
		nsect, err := sectorCount(m.bufs)
		if err != nil {
			return 0, err
		}
		lba := m.block * int64(blockio.SectorsPerBlock)
		if err := d.check(lba, nsect); err != nil {
			return 0, err
		}
		svc, transfer := d.serviceNs(nsect)
		svcs[i] = svc
		if m.write {
			gc, err := d.ftlWrite(lba, nsect)
			if err != nil {
				return 0, err
			}
			gcTotal += gc
		}
		d.account(lba, nsect, m.write, svc, transfer)
	}
	d.stats.BusyNanos += gcTotal
	d.clock.Advance(d.makespan(svcs) + gcTotal)
	for _, m := range runs {
		off := m.block * int64(blockio.BlockSize)
		for _, b := range m.bufs {
			var err error
			if m.write {
				err = d.store.WriteAt(b, off)
			} else {
				err = d.store.ReadAt(b, off)
			}
			if err != nil {
				return 0, err
			}
			off += int64(len(b))
		}
	}
	return len(runs), nil
}

// makespan returns how long a batch of concurrently-issued requests
// occupies the device: slowest request on unbounded channels, fullest
// channel under longest-first packing on a bounded pool.
func (d *Store) makespan(svcs []int64) int64 {
	var max int64
	if d.spec.Channels <= 0 || len(svcs) <= d.spec.Channels {
		for _, s := range svcs {
			if s > max {
				max = s
			}
		}
		return max
	}
	sorted := append([]int64(nil), svcs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	load := make([]int64, d.spec.Channels)
	for _, s := range sorted {
		least := 0
		for c := 1; c < len(load); c++ {
			if load[c] < load[least] {
				least = c
			}
		}
		load[least] += s
	}
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// Close implements blockio.Target.
func (d *Store) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store.Close()
}

// SetTrace implements blockio.Target.
func (d *Store) SetTrace(buf *[]disk.TraceEntry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.trace = buf
}

// SetTraceFunc implements blockio.Target.
func (d *Store) SetTraceFunc(fn func(disk.TraceEntry)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.traceFunc = fn
}

// SetOpSource implements blockio.Target.
func (d *Store) SetOpSource(fn func() (kind uint8, id uint64)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.opSource = fn
}

// SetMetricsFunc implements blockio.Target.
func (d *Store) SetMetricsFunc(fn func(disk.TraceEntry)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.metricsFunc = fn
}
