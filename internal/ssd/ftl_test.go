package ssd

import (
	"math/rand"
	"testing"
)

// checkFTL asserts every structural invariant of the mapping against a
// from-scratch recount. Shared with FuzzSSDMapping.
func checkFTL(t *testing.T, f *ftl) {
	t.Helper()
	// l2p and p2l agree.
	for lpn, ppn := range f.l2p {
		if ppn < 0 {
			continue
		}
		if got := f.p2l[ppn]; got != int32(lpn) {
			t.Fatalf("l2p[%d]=%d but p2l[%d]=%d", lpn, ppn, ppn, got)
		}
	}
	for ppn, lpn := range f.p2l {
		if lpn < 0 {
			continue
		}
		if got := f.l2p[lpn]; got != int32(ppn) {
			t.Fatalf("p2l[%d]=%d but l2p[%d]=%d", ppn, lpn, lpn, got)
		}
	}
	// Per-block valid counts match a recount.
	for b := 0; b < f.nBlocks; b++ {
		n := int32(0)
		for i := 0; i < f.ppb; i++ {
			if f.p2l[b*f.ppb+i] >= 0 {
				n++
			}
		}
		if n != f.valid[b] {
			t.Fatalf("block %d: valid=%d, recount %d", b, f.valid[b], n)
		}
	}
	// Free blocks hold no valid pages, and isFree matches the pool.
	inPool := make(map[int]bool, len(f.free))
	for _, b := range f.free {
		if f.valid[b] != 0 {
			t.Fatalf("free block %d has %d valid pages", b, f.valid[b])
		}
		if b == f.active {
			t.Fatalf("active block %d is in the free pool", b)
		}
		inPool[b] = true
	}
	for b := 0; b < f.nBlocks; b++ {
		if f.isFree[b] != inPool[b] {
			t.Fatalf("block %d: isFree=%v, pool membership %v", b, f.isFree[b], inPool[b])
		}
	}
}

func TestFTLWriteRemap(t *testing.T) {
	f, err := newFTL(256, 16, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.write(7); err != nil {
		t.Fatal(err)
	}
	first := f.l2p[7]
	if first < 0 {
		t.Fatal("page 7 unmapped after write")
	}
	if _, err := f.write(7); err != nil {
		t.Fatal(err)
	}
	if f.l2p[7] == first {
		t.Fatal("rewrite did not relocate the page (in-place update)")
	}
	if f.p2l[first] != -1 {
		t.Fatal("old physical page still mapped after rewrite")
	}
	if f.hostPages != 2 || f.flashPages != 2 {
		t.Fatalf("host=%d flash=%d after 2 writes", f.hostPages, f.flashPages)
	}
	checkFTL(t, f)
}

func TestFTLTrim(t *testing.T) {
	f, err := newFTL(256, 16, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.write(3); err != nil {
		t.Fatal(err)
	}
	if err := f.trim(3); err != nil {
		t.Fatal(err)
	}
	if f.l2p[3] != -1 {
		t.Fatal("page mapped after trim")
	}
	if f.trims != 1 {
		t.Fatalf("trims=%d", f.trims)
	}
	// Trimming an unmapped page is a no-op, not an error.
	if err := f.trim(100); err != nil {
		t.Fatal(err)
	}
	checkFTL(t, f)
}

func TestFTLBounds(t *testing.T) {
	f, err := newFTL(64, 16, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.write(-1); err == nil {
		t.Fatal("negative page accepted")
	}
	if _, err := f.write(64); err == nil {
		t.Fatal("out-of-range page accepted")
	}
	if err := f.trim(64); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
}

// TestFTLGCReclaims overwrites a small logical range far past the
// device capacity: GC must keep the free pool at the reserve, write
// amplification must stay finite, and every invariant must hold at
// steady state.
func TestFTLGCReclaims(t *testing.T) {
	f, err := newFTL(1024, 16, 2, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	// Random overwrites: victims keep live pages, so GC must migrate.
	// (A purely sequential overwrite pattern invalidates whole blocks
	// and GC reclaims them for free — write amplification 1.0.)
	rng := rand.New(rand.NewSource(1))
	writes := f.nBlocks * f.ppb * 4 // four device fills
	for i := 0; i < writes; i++ {
		if _, err := f.write(rng.Intn(f.nLogical)); err != nil {
			t.Fatal(err)
		}
		if len(f.free) < f.reserve {
			t.Fatalf("free pool %d below reserve %d after write %d", len(f.free), f.reserve, i)
		}
	}
	if f.gcRuns == 0 || f.eraseOps == 0 {
		t.Fatalf("no GC after %d writes on %d-page device (runs=%d erases=%d)",
			writes, f.nBlocks*f.ppb, f.gcRuns, f.eraseOps)
	}
	if wa := f.writeAmp(); wa <= 1 {
		t.Fatalf("write amplification %.3f not above 1 at steady state", wa)
	}
	if f.maxErase() == 0 {
		t.Fatal("no erase wear recorded")
	}
	checkFTL(t, f)
}

// TestFTLFullDeviceProgress writes every logical page, then keeps
// rewriting: the tightest legal configuration must still make progress
// (GC finds invalid pages because spare blocks exceed logical capacity).
func TestFTLFullDeviceProgress(t *testing.T) {
	f, err := newFTL(512, 8, 2, 0) // over-provision clamped up to the minimum
	if err != nil {
		t.Fatal(err)
	}
	for lpn := 0; lpn < f.nLogical; lpn++ {
		if _, err := f.write(lpn); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < f.nLogical; i++ {
		if _, err := f.write(i); err != nil {
			t.Fatal(err)
		}
	}
	checkFTL(t, f)
}

func TestFTLFillResetsAccounting(t *testing.T) {
	f, err := newFTL(1024, 16, 2, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	f.fill()
	if f.hostPages != 0 || f.flashPages != 0 || f.gcRuns != 0 || f.eraseOps != 0 {
		t.Fatalf("accounting not zeroed after fill: host=%d flash=%d runs=%d erases=%d",
			f.hostPages, f.flashPages, f.gcRuns, f.eraseOps)
	}
	if f.maxErase() != 0 {
		t.Fatal("erase counts not zeroed after fill")
	}
	// Every logical page is mapped: the log has wrapped.
	for lpn, ppn := range f.l2p {
		if ppn < 0 {
			t.Fatalf("page %d unmapped after fill", lpn)
		}
	}
	checkFTL(t, f)
	// The first sustained overwrite burst on the aged mapping must GC.
	for i := 0; i < f.nBlocks*f.ppb; i++ {
		if _, err := f.write(i % f.nLogical); err != nil {
			t.Fatal(err)
		}
	}
	if f.gcRuns == 0 {
		t.Fatal("aged FTL did not GC under overwrite load")
	}
	checkFTL(t, f)
}

// TestFTLDeterminism runs the same op sequence twice and requires
// identical mappings and accounting — the property aged benchmark
// images depend on.
func TestFTLDeterminism(t *testing.T) {
	run := func() *ftl {
		f, err := newFTL(512, 16, 3, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 5000; i++ {
			lpn := rng.Intn(f.nLogical)
			if rng.Intn(8) == 0 {
				if err := f.trim(lpn); err != nil {
					t.Fatal(err)
				}
			} else if _, err := f.write(lpn); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}
	a, b := run(), run()
	for lpn := range a.l2p {
		if a.l2p[lpn] != b.l2p[lpn] {
			t.Fatalf("l2p[%d] differs between identical runs: %d vs %d", lpn, a.l2p[lpn], b.l2p[lpn])
		}
	}
	if a.flashPages != b.flashPages || a.eraseOps != b.eraseOps || a.moved != b.moved {
		t.Fatalf("accounting differs: flash %d/%d erases %d/%d moved %d/%d",
			a.flashPages, b.flashPages, a.eraseOps, b.eraseOps, a.moved, b.moved)
	}
	checkFTL(t, a)
}
