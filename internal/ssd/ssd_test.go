package ssd

import (
	"bytes"
	"math/rand"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/obs"
	"cffs/internal/sim"
)

const testCap = 4 << 20 // 4 MB: small enough that GC tests are cheap

func newTestStore(t *testing.T, spec Spec) *Store {
	t.Helper()
	d, err := NewMem(spec, sim.NewClock(), testCap)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundTrip(t *testing.T) {
	d := newTestStore(t, DefaultSpec())
	buf := bytes.Repeat([]byte{0xAB}, blockio.BlockSize)
	if err := d.WriteV(64, [][]byte{buf}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockio.BlockSize)
	if err := d.ReadV(64, [][]byte{got}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("read back different bytes")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Requests != 2 {
		t.Fatalf("stats %+v after one write and one read", st)
	}
}

// TestSeekFree is the property that defines this backend: service time
// is independent of address distance. Two single-block reads at opposite
// ends of the device must cost exactly what two adjacent reads cost.
func TestSeekFree(t *testing.T) {
	run := func(lbas []int64) int64 {
		d := newTestStore(t, DefaultSpec())
		buf := make([]byte, blockio.BlockSize)
		for _, lba := range lbas {
			if err := d.ReadV(lba, [][]byte{buf}); err != nil {
				t.Fatal(err)
			}
		}
		return d.Clock().Now()
	}
	sectors := int64(testCap / disk.SectorSize)
	near := run([]int64{0, 8})
	far := run([]int64{0, sectors - 8})
	if near != far {
		t.Fatalf("address-dependent timing: near=%dns far=%dns", near, far)
	}
}

func TestFixedCostDominatesSmallReads(t *testing.T) {
	spec := DefaultSpec()
	d := newTestStore(t, spec)
	buf := make([]byte, disk.SectorSize)
	if err := d.ReadV(0, [][]byte{buf}); err != nil {
		t.Fatal(err)
	}
	elapsed := d.Clock().Now()
	overhead := int64(spec.ReqOverhead * 1e9)
	if elapsed < overhead {
		t.Fatalf("1-sector read took %dns, below the %dns fixed cost", elapsed, overhead)
	}
	if elapsed > 2*overhead {
		t.Fatalf("1-sector read took %dns; transfer should not dominate the fixed cost", elapsed)
	}
}

// TestGCChargedOnClock drives enough rewrites to force GC and checks the
// device got slower in exactly the accounted amount: clock time equals
// host service time plus the ssd.gc.ns counter.
func TestGCChargedOnClock(t *testing.T) {
	spec := DefaultSpec()
	spec.PreDirty = true
	d := newTestStore(t, spec)
	reg := obs.NewRegistry()
	d.SetMetrics(reg)

	buf := make([]byte, blockio.BlockSize)
	var hostSvc int64
	// Random overwrites so GC victims keep live pages and must migrate
	// them (sequential overwrites invalidate whole blocks — free GC).
	rng := rand.New(rand.NewSource(7))
	blocks := testCap / blockio.BlockSize
	writes := 4 * blocks // four device fills
	for i := 0; i < writes; i++ {
		lba := int64(rng.Intn(blocks)) * int64(blockio.SectorsPerBlock)
		if err := d.WriteV(lba, [][]byte{buf}); err != nil {
			t.Fatal(err)
		}
		svc, _ := d.serviceNs(blockio.SectorsPerBlock)
		hostSvc += svc
	}
	snap := reg.Snapshot()
	gcNs := snap.Counter("ssd.gc.ns")
	if gcNs == 0 {
		t.Fatal("no GC time after overwriting an aged device 4x")
	}
	if got := d.Clock().Now(); got != hostSvc+gcNs {
		t.Fatalf("clock=%dns, want host %dns + gc %dns = %dns", got, hostSvc, gcNs, hostSvc+gcNs)
	}
	if snap.Counter("ssd.gc.erases") == 0 || snap.Counter("ssd.gc.pages_moved") == 0 {
		t.Fatalf("gc counters empty: %v", snap.Counters)
	}
	if wa := snap.Gauges["ssd.writeamp_x100"]; wa <= 100 {
		t.Fatalf("write amp gauge %d not above 100 (=1.00x) at steady state", wa)
	}
	if ftl := d.FTL(); ftl.WriteAmp <= 1 || ftl.Erases == 0 {
		t.Fatalf("FTL stats %+v after forced GC", ftl)
	}
}

// TestFreshDeviceNoGC is the other half of the aged/fresh contrast: a
// benchmark-scale write volume on a fresh FTL must not trigger GC, and
// the metric families must still exist (at zero) for the reports.
func TestFreshDeviceNoGC(t *testing.T) {
	d := newTestStore(t, DefaultSpec())
	reg := obs.NewRegistry()
	d.SetMetrics(reg)
	buf := make([]byte, blockio.BlockSize)
	for i := 0; i < 64; i++ {
		if err := d.WriteV(int64(i*blockio.SectorsPerBlock), [][]byte{buf}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counter("ssd.gc.runs") != 0 {
		t.Fatal("fresh device ran GC under a light write load")
	}
	if _, ok := snap.Counters["ssd.gc.ns"]; !ok {
		t.Fatal("ssd.gc.ns family not created eagerly")
	}
	if wa := snap.Gauges["ssd.writeamp_x100"]; wa != 100 {
		t.Fatalf("fresh write amp gauge %d, want 100 (=1.00x)", wa)
	}
}

func TestSubmitBlocksMergesAndPacks(t *testing.T) {
	spec := DefaultSpec()
	spec.Channels = 2
	d := newTestStore(t, spec)

	mkreq := func(block int64) blockio.Req {
		return blockio.Req{Block: block, Bufs: [][]byte{make([]byte, blockio.BlockSize)}}
	}
	// Two contiguous runs of 4 blocks each, far apart: must merge to 2
	// requests and service on 2 channels for the cost of one.
	var reqs []blockio.Req
	for i := int64(0); i < 4; i++ {
		reqs = append(reqs, mkreq(i), mkreq(200+i))
	}
	issued, err := d.SubmitBlocks(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if issued != 2 {
		t.Fatalf("issued %d requests, want 2 merged runs", issued)
	}
	svc, _ := d.serviceNs(4 * blockio.SectorsPerBlock)
	if got := d.Clock().Now(); got != svc {
		t.Fatalf("2-channel makespan %dns, want one run's %dns", got, svc)
	}
	if st := d.Stats(); st.Requests != 2 {
		t.Fatalf("stats count %d requests, want 2", st.Requests)
	}
}

func TestSubmitBlocksBoundedChannels(t *testing.T) {
	spec := DefaultSpec()
	spec.Channels = 2
	d := newTestStore(t, spec)
	// Four non-contiguous single-block reads on 2 channels: makespan is
	// two back-to-back requests per channel.
	var reqs []blockio.Req
	for i := int64(0); i < 4; i++ {
		reqs = append(reqs, blockio.Req{Block: i * 10, Bufs: [][]byte{make([]byte, blockio.BlockSize)}})
	}
	if _, err := d.SubmitBlocks(reqs); err != nil {
		t.Fatal(err)
	}
	svc, _ := d.serviceNs(blockio.SectorsPerBlock)
	if got := d.Clock().Now(); got != 2*svc {
		t.Fatalf("makespan %dns, want 2 serialized requests = %dns", got, 2*svc)
	}
}

// TestOrderedWriteForwarded checks WriteOrdered reaches the byte store's
// ordered entry point — the hook the fault injector's reordering model
// depends on.
type orderedSpy struct {
	disk.Store
	ordered int
}

func (s *orderedSpy) WriteAtOrdered(p []byte, off int64) error {
	s.ordered++
	return s.Store.WriteAt(p, off)
}

func TestOrderedWriteForwarded(t *testing.T) {
	spy := &orderedSpy{Store: disk.NewMemStore(testCap)}
	d, err := New(DefaultSpec(), sim.NewClock(), spy, testCap)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteOrdered(0, make([]byte, blockio.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if spy.ordered != 1 {
		t.Fatalf("ordered writes forwarded %d times, want 1", spy.ordered)
	}
}

func TestTrimUnmapsWholePages(t *testing.T) {
	d := newTestStore(t, DefaultSpec())
	reg := obs.NewRegistry()
	d.SetMetrics(reg)
	buf := make([]byte, 4*blockio.BlockSize)
	if err := d.WriteV(0, [][]byte{buf}); err != nil {
		t.Fatal(err)
	}
	before := d.Clock().Now()
	if err := d.Trim(0, 4*blockio.SectorsPerBlock); err != nil {
		t.Fatal(err)
	}
	if d.Clock().Now() != before {
		t.Fatal("trim advanced the clock")
	}
	if got := reg.Snapshot().Counter("ssd.trims"); got != 4 {
		t.Fatalf("trimmed %d pages, want 4", got)
	}
}

func TestBoundsAndValidation(t *testing.T) {
	d := newTestStore(t, DefaultSpec())
	buf := make([]byte, blockio.BlockSize)
	sectors := int64(testCap / disk.SectorSize)
	if err := d.ReadV(sectors, [][]byte{buf}); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := d.WriteV(-8, [][]byte{buf}); err == nil {
		t.Fatal("negative LBA accepted")
	}
	if err := d.WriteV(0, [][]byte{make([]byte, 100)}); err == nil {
		t.Fatal("non-sector-multiple transfer accepted")
	}
	bad := DefaultSpec()
	bad.Bandwidth = 0
	if _, err := NewMem(bad, sim.NewClock(), testCap); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad = DefaultSpec()
	bad.PageBytes = 100
	if _, err := NewMem(bad, sim.NewClock(), testCap); err == nil {
		t.Fatal("non-sector-multiple page size accepted")
	}
}

func TestParallelismProbe(t *testing.T) {
	spec := DefaultSpec()
	spec.Channels = 4
	d := newTestStore(t, spec)
	if got := d.Parallelism(); got != 4 {
		t.Fatalf("Parallelism()=%d, want 4", got)
	}
	spec.Channels = 0
	d = newTestStore(t, spec)
	if got := d.Parallelism(); got != fanHint {
		t.Fatalf("unbounded Parallelism()=%d, want fanHint %d", got, fanHint)
	}
}
