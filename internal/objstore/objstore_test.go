package objstore

import (
	"bytes"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/sim"
)

// testSpec has round numbers: 1 ms per request, and a bandwidth where
// one 4 KB block streams in exactly 1 ms.
func testSpec() Spec {
	return Spec{Name: "test", RTT: 1e-3, Bandwidth: 4096e3, Channels: 0}
}

const testCapacity = 1 << 20

func newTest(t *testing.T, spec Spec) *Store {
	t.Helper()
	o, err := NewMem(spec, sim.NewClock(), testCapacity)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	return o
}

func blockBuf(fill byte) []byte {
	b := make([]byte, blockio.BlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{RTT: -1, Bandwidth: 1e6},
		{RTT: 1e-3, Bandwidth: 0},
		{RTT: 1e-3, Bandwidth: 1e6, Channels: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
	if err := DefaultSpec().Validate(); err != nil {
		t.Errorf("DefaultSpec invalid: %v", err)
	}
	if _, err := NewMem(testSpec(), sim.NewClock(), disk.SectorSize+1); err == nil {
		t.Error("NewMem with non-sector capacity succeeded")
	}
}

func TestSingleRequestTiming(t *testing.T) {
	o := newTest(t, testSpec())
	// One block: 1 ms RTT + 1 ms transfer.
	if err := o.WriteV(0, [][]byte{blockBuf(7)}); err != nil {
		t.Fatalf("WriteV: %v", err)
	}
	if got, want := o.Clock().Now(), int64(2e6); got != want {
		t.Errorf("1-block write took %d ns, want %d", got, want)
	}
	// Sixteen blocks, one request: still one RTT, sixteen transfer units.
	bufs := make([][]byte, 16)
	for i := range bufs {
		bufs[i] = make([]byte, blockio.BlockSize)
	}
	o.Clock().Reset()
	o.ResetStats()
	if err := o.ReadV(0, bufs); err != nil {
		t.Fatalf("ReadV: %v", err)
	}
	if got, want := o.Clock().Now(), int64(17e6); got != want {
		t.Errorf("16-block read took %d ns, want %d", got, want)
	}
	st := o.Stats()
	if st.Requests != 1 || st.Reads != 1 || st.SectorsRead != 16*blockio.SectorsPerBlock {
		t.Errorf("stats = %+v, want one 16-block read", st)
	}
	if st.SeekNanos != 0 || st.RotateNanos != 0 {
		t.Errorf("positioning time on an object store: %+v", st)
	}
	if st.TransferNanos != 16e6 || st.BusyNanos != 17e6 {
		t.Errorf("TransferNanos=%d BusyNanos=%d, want 16e6/17e6", st.TransferNanos, st.BusyNanos)
	}
}

func TestBatchIsMakespanNotSum(t *testing.T) {
	o := newTest(t, testSpec())
	// Eight scattered single-block reads: nothing merges, but with
	// unbounded channels the batch finishes in one request's time.
	var reqs []blockio.Req
	for i := 0; i < 8; i++ {
		reqs = append(reqs, blockio.Req{
			Block: int64(i * 3), // gaps defeat merging
			Bufs:  [][]byte{make([]byte, blockio.BlockSize)},
		})
	}
	issued, err := o.SubmitBlocks(reqs)
	if err != nil {
		t.Fatalf("SubmitBlocks: %v", err)
	}
	if issued != 8 {
		t.Errorf("issued = %d, want 8 (gaps must not merge)", issued)
	}
	if got, want := o.Clock().Now(), int64(2e6); got != want {
		t.Errorf("batch of 8 parallel requests took %d ns, want %d (makespan)", got, want)
	}
	if st := o.Stats(); st.Requests != 8 {
		t.Errorf("Requests = %d, want 8", st.Requests)
	}
}

func TestBatchMergesContiguousRuns(t *testing.T) {
	o := newTest(t, testSpec())
	// Sixteen contiguous single-block writes submitted out of order:
	// exactly one 64 KB request.
	var reqs []blockio.Req
	for _, b := range []int64{8, 0, 12, 4, 9, 1, 13, 5, 10, 2, 14, 6, 11, 3, 15, 7} {
		reqs = append(reqs, blockio.Req{
			Write: true,
			Block: b,
			Bufs:  [][]byte{blockBuf(byte(b))},
		})
	}
	issued, err := o.SubmitBlocks(reqs)
	if err != nil {
		t.Fatalf("SubmitBlocks: %v", err)
	}
	if issued != 1 {
		t.Errorf("issued = %d, want 1 (contiguous blocks merge)", issued)
	}
	// One RTT + 16 transfer units.
	if got, want := o.Clock().Now(), int64(17e6); got != want {
		t.Errorf("merged batch took %d ns, want %d", got, want)
	}
	// Seventeen contiguous blocks overflow the 64 KB cap into two requests.
	o.Clock().Reset()
	reqs = reqs[:0]
	for b := int64(0); b < 17; b++ {
		reqs = append(reqs, blockio.Req{Write: true, Block: b, Bufs: [][]byte{blockBuf(1)}})
	}
	if issued, err = o.SubmitBlocks(reqs); err != nil || issued != 2 {
		t.Errorf("17-block batch: issued=%d err=%v, want 2 requests", issued, err)
	}
	// Direction changes cut a run even when addresses are contiguous.
	reqs = []blockio.Req{
		{Block: 0, Bufs: [][]byte{make([]byte, blockio.BlockSize)}},
		{Write: true, Block: 1, Bufs: [][]byte{blockBuf(2)}},
	}
	if issued, err = o.SubmitBlocks(reqs); err != nil || issued != 2 {
		t.Errorf("mixed-direction batch: issued=%d err=%v, want 2", issued, err)
	}
}

func TestBoundedChannels(t *testing.T) {
	spec := testSpec()
	spec.Channels = 2
	o := newTest(t, spec)
	if o.Parallelism() != 2 {
		t.Errorf("Parallelism = %d, want 2", o.Parallelism())
	}
	// Four equal scattered requests on two channels: two rounds.
	var reqs []blockio.Req
	for i := 0; i < 4; i++ {
		reqs = append(reqs, blockio.Req{
			Block: int64(i * 5),
			Bufs:  [][]byte{make([]byte, blockio.BlockSize)},
		})
	}
	if _, err := o.SubmitBlocks(reqs); err != nil {
		t.Fatalf("SubmitBlocks: %v", err)
	}
	if got, want := o.Clock().Now(), int64(4e6); got != want {
		t.Errorf("4 requests on 2 channels took %d ns, want %d", got, want)
	}
}

func TestUnboundedParallelismHint(t *testing.T) {
	o := newTest(t, testSpec())
	if o.Parallelism() != fanHint {
		t.Errorf("Parallelism = %d, want fanHint %d", o.Parallelism(), fanHint)
	}
}

func TestDataRoundTrip(t *testing.T) {
	o := newTest(t, testSpec())
	want := blockBuf(0xab)
	if err := o.WriteV(16, [][]byte{want}); err != nil {
		t.Fatalf("WriteV: %v", err)
	}
	got := make([]byte, blockio.BlockSize)
	if err := o.ReadV(16, [][]byte{got}); err != nil {
		t.Fatalf("ReadV: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read back different bytes than written")
	}
	// Through the batch path too.
	if _, err := o.SubmitBlocks([]blockio.Req{{Write: true, Block: 5, Bufs: [][]byte{blockBuf(0xcd)}}}); err != nil {
		t.Fatalf("SubmitBlocks write: %v", err)
	}
	if _, err := o.SubmitBlocks([]blockio.Req{{Block: 5, Bufs: [][]byte{got}}}); err != nil {
		t.Fatalf("SubmitBlocks read: %v", err)
	}
	if !bytes.Equal(got, blockBuf(0xcd)) {
		t.Error("batch path read back different bytes than written")
	}
}

// orderedRecorder wraps a MemStore and records barrier writes.
type orderedRecorder struct {
	*disk.MemStore
	ordered int
}

func (r *orderedRecorder) WriteAtOrdered(p []byte, off int64) error {
	r.ordered++
	return r.MemStore.WriteAt(p, off)
}

func TestOrderedWriteForwarded(t *testing.T) {
	rec := &orderedRecorder{MemStore: disk.NewMemStore(testCapacity)}
	o, err := New(testSpec(), sim.NewClock(), rec, testCapacity)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := o.WriteOrdered(0, blockBuf(1)); err != nil {
		t.Fatalf("WriteOrdered: %v", err)
	}
	if rec.ordered != 1 {
		t.Errorf("barrier write reached the store %d times, want 1", rec.ordered)
	}
	// Plain writes must not use the barrier path.
	if err := o.WriteV(0, [][]byte{blockBuf(2)}); err != nil {
		t.Fatalf("WriteV: %v", err)
	}
	if rec.ordered != 1 {
		t.Errorf("plain write took the barrier path")
	}
}

func TestBoundsAndTrace(t *testing.T) {
	o := newTest(t, testSpec())
	end := int64(testCapacity / disk.SectorSize)
	if err := o.ReadV(end, [][]byte{make([]byte, blockio.BlockSize)}); err == nil {
		t.Error("read past end succeeded")
	}
	if err := o.WriteV(-8, [][]byte{blockBuf(0)}); err == nil {
		t.Error("write at negative LBA succeeded")
	}
	if err := o.ReadV(0, [][]byte{make([]byte, 100)}); err == nil {
		t.Error("non-sector-multiple transfer succeeded")
	}

	var trace []disk.TraceEntry
	o.SetTrace(&trace)
	o.SetOpSource(func() (uint8, uint64) { return 3, 42 })
	var fromFunc []disk.TraceEntry
	o.SetTraceFunc(func(e disk.TraceEntry) { fromFunc = append(fromFunc, e) })
	if err := o.WriteV(8, [][]byte{blockBuf(1)}); err != nil {
		t.Fatalf("WriteV: %v", err)
	}
	if len(trace) != 1 || len(fromFunc) != 1 {
		t.Fatalf("trace lengths %d/%d, want 1/1", len(trace), len(fromFunc))
	}
	e := trace[0]
	if e.LBA != 8 || e.Count != blockio.SectorsPerBlock || !e.Write ||
		e.OpKind != 3 || e.OpID != 42 || e.Nanos != 2e6 {
		t.Errorf("trace entry %+v", e)
	}
}
