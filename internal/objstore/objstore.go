// Package objstore simulates an object-store-style backend: every
// request pays a high fixed round-trip latency, transfers stream at a
// flat per-channel bandwidth, and there is no positioning state at all —
// no seek curve, no rotation, no on-board cache. Requests on distinct
// channels service concurrently, and the channel pool is unbounded by
// default.
//
// The device exists to test where the paper's bet breaks. C-FFS wins on
// a mechanical disk for two separable reasons: grouped placement turns
// many seeks into one (locality), and grouped transfer turns many
// requests into one (batching). An object store deletes the first reason
// entirely — addresses are just keys, adjacent means nothing — but makes
// the second reason *more* valuable, because each request carries a
// fixed multi-millisecond price no matter how small it is. Running the
// experiment matrix on this target shows which half of the C-FFS gain is
// seek locality (it evaporates) and which half is request batching (it
// survives, amplified). Hadoop Perfect File (PAPERS.md) motivates the
// same trade on HDFS: packing small files into container objects to
// amortize fixed per-request cost.
package objstore

import (
	"fmt"
	"sort"
	"sync"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/sim"
)

// Spec parameterizes the object store's timing model.
type Spec struct {
	Name string

	// RTT is the fixed per-request latency in seconds: connection,
	// protocol, and service overhead paid by every request regardless of
	// size. This is the term explicit grouping amortizes.
	RTT float64

	// Bandwidth is the streaming rate of one request in bytes/second
	// once the fixed cost is paid.
	Bandwidth float64

	// Channels bounds how many requests service concurrently; 0 means
	// unbounded (every request in a batch runs in parallel).
	Channels int
}

// DefaultSpec models a generic networked object store: 5 ms per
// request, 32 MB/s per channel, unbounded parallelism. At these numbers
// a 1 KB read costs ~5 ms and a full 64 KB group read ~7 ms — the
// request count, not the byte count, dominates small-file traffic.
func DefaultSpec() Spec {
	return Spec{Name: "objstore", RTT: 5e-3, Bandwidth: 32e6, Channels: 0}
}

// Validate checks the spec for usable values.
func (s Spec) Validate() error {
	if s.RTT < 0 {
		return fmt.Errorf("objstore: negative RTT %g", s.RTT)
	}
	if s.Bandwidth <= 0 {
		return fmt.Errorf("objstore: bandwidth %g not positive", s.Bandwidth)
	}
	if s.Channels < 0 {
		return fmt.Errorf("objstore: negative channel count %d", s.Channels)
	}
	return nil
}

var (
	_ blockio.Target         = (*Store)(nil)
	_ blockio.BatchSubmitter = (*Store)(nil)
)

// fanHint is the parallelism reported upward when the channel pool is
// unbounded. Layers that scale readahead and write-behind fan-out by
// device parallelism need a finite hint; 16 requests in flight is
// already past the point where another channel helps a 64 KB-group
// workload.
const fanHint = 16

// Store is a simulated object store presenting a flat logical sector
// address space over a byte store, implementing blockio.Target and
// blockio.BatchSubmitter. It is safe for concurrent use; a single mutex
// serializes the timing model and statistics, mirroring disk.Disk.
type Store struct {
	spec    Spec
	clock   *sim.Clock
	store   disk.Store
	sectors int64

	mu sync.Mutex // guards stats, trace hooks, and the byte store

	stats       disk.Stats
	trace       *[]disk.TraceEntry
	traceFunc   func(disk.TraceEntry)
	opSource    func() (kind uint8, id uint64)
	metricsFunc func(disk.TraceEntry)
}

// New builds an object store of the given byte capacity (a sector
// multiple) over an existing byte store.
func New(spec Spec, clock *sim.Clock, st disk.Store, capacity int64) (*Store, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 || capacity%disk.SectorSize != 0 {
		return nil, fmt.Errorf("objstore: capacity %d is not a positive sector multiple", capacity)
	}
	return &Store{spec: spec, clock: clock, store: st, sectors: capacity / disk.SectorSize}, nil
}

// NewMem builds an object store over a fresh in-memory image.
func NewMem(spec Spec, clock *sim.Clock, capacity int64) (*Store, error) {
	return New(spec, clock, disk.NewMemStore(capacity), capacity)
}

// Spec returns the timing parameters.
func (o *Store) Spec() Spec { return o.spec }

// Sectors implements blockio.Target.
func (o *Store) Sectors() int64 { return o.sectors }

// Clock implements blockio.Target.
func (o *Store) Clock() *sim.Clock { return o.clock }

// Parallelism reports how many requests a store with this spec services
// concurrently, so readahead and write-behind above can size their
// fan-out. An unbounded channel pool reports the finite fanHint.
func (s Spec) Parallelism() int {
	if s.Channels > 0 {
		return s.Channels
	}
	return fanHint
}

// Parallelism implements the optional device-parallelism probe.
func (o *Store) Parallelism() int { return o.spec.Parallelism() }

// Stats implements blockio.Target.
func (o *Store) Stats() disk.Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// ResetStats implements blockio.Target.
func (o *Store) ResetStats() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stats = disk.Stats{}
}

// serviceNs returns one request's service time: fixed RTT plus streaming
// transfer. There is no positioning term and no distance dependence.
func (o *Store) serviceNs(nsect int) (svc, transfer int64) {
	transfer = int64(float64(nsect) * disk.SectorSize / o.spec.Bandwidth * 1e9)
	return int64(o.spec.RTT*1e9) + transfer, transfer
}

// account records one serviced request's statistics and trace entry
// with o.mu held. It does not touch the clock; callers advance it by
// the request's completion model (serial or batched).
func (o *Store) account(lba int64, nsect int, write bool, svc, transfer int64) {
	if write {
		o.stats.Writes++
		o.stats.SectorsWrite += int64(nsect)
	} else {
		o.stats.Reads++
		o.stats.SectorsRead += int64(nsect)
	}
	o.stats.Requests++
	o.stats.BusyNanos += svc
	o.stats.TransferNanos += transfer
	if o.trace != nil || o.traceFunc != nil || o.metricsFunc != nil {
		e := disk.TraceEntry{LBA: lba, Count: nsect, Write: write, Nanos: svc}
		if o.opSource != nil {
			e.OpKind, e.OpID = o.opSource()
		}
		if o.trace != nil {
			*o.trace = append(*o.trace, e)
		}
		if o.traceFunc != nil {
			o.traceFunc(e)
		}
		if o.metricsFunc != nil {
			o.metricsFunc(e)
		}
	}
}

func (o *Store) check(lba int64, nsect int) error {
	if nsect <= 0 {
		return fmt.Errorf("objstore: request of %d sectors", nsect)
	}
	if lba < 0 || lba+int64(nsect) > o.sectors {
		return fmt.Errorf("objstore: request [%d,%d) outside store of %d sectors",
			lba, lba+int64(nsect), o.sectors)
	}
	return nil
}

func sectorCount(bufs [][]byte) (int, error) {
	total := 0
	for _, b := range bufs {
		if len(b) == 0 || len(b)%disk.SectorSize != 0 {
			return 0, fmt.Errorf("objstore: transfer of %d bytes is not a positive sector multiple", len(b))
		}
		total += len(b) / disk.SectorSize
	}
	return total, nil
}

// ReadV implements blockio.Target: one request, one RTT, scattered into
// bufs. This is the path a grouped 64 KB read takes — the whole group
// costs a single fixed latency.
func (o *Store) ReadV(lba int64, bufs [][]byte) error {
	return o.rw(lba, bufs, false, false)
}

// WriteV implements blockio.Target.
func (o *Store) WriteV(lba int64, bufs [][]byte) error {
	return o.rw(lba, bufs, true, false)
}

// WriteOrdered implements blockio.Target: timing is an ordinary write;
// the barrier is forwarded to the backing byte store when it
// distinguishes ordered writes (the fault injector does).
func (o *Store) WriteOrdered(lba int64, buf []byte) error {
	return o.rw(lba, [][]byte{buf}, true, true)
}

// rw services one request end to end: timing, statistics, byte movement.
func (o *Store) rw(lba int64, bufs [][]byte, write, ordered bool) error {
	nsect, err := sectorCount(bufs)
	if err != nil {
		return err
	}
	if err := o.check(lba, nsect); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	svc, transfer := o.serviceNs(nsect)
	o.account(lba, nsect, write, svc, transfer)
	o.clock.Advance(svc)
	off := lba * disk.SectorSize
	for _, b := range bufs {
		if write {
			if ordered {
				if os, ok := o.store.(disk.OrderedStore); ok {
					err = os.WriteAtOrdered(b, off)
				} else {
					err = o.store.WriteAt(b, off)
				}
			} else {
				err = o.store.WriteAt(b, off)
			}
		} else {
			err = o.store.ReadAt(b, off)
		}
		if err != nil {
			return err
		}
		off += int64(len(b))
	}
	return nil
}

// SubmitBlocks implements blockio.BatchSubmitter. There is no head
// position and nothing to sweep, so scheduling reduces to two facts
// about the device: contiguous same-direction runs coalesce into one
// request (one object GET/PUT, capped at the 64 KB transfer limit so
// request sizes stay comparable with the disk backend), and the merged
// requests then service concurrently — batch cost is the makespan over
// channels, not the sum. Explicit grouping still matters here precisely
// because it makes a directory's blocks contiguous and therefore
// mergeable; without it every small file is its own full-latency
// request.
func (o *Store) SubmitBlocks(reqs []blockio.Req) (int, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	// Address order is meaningless for timing but is what makes merges
	// visible; a stable scan in block order finds every contiguous run.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := &reqs[order[a]], &reqs[order[b]]
		if ra.Block != rb.Block {
			return ra.Block < rb.Block
		}
		return !ra.Write && rb.Write
	})
	type run struct {
		block int64
		write bool
		bufs  [][]byte
	}
	var runs []run
	for i := 0; i < len(order); {
		first := &reqs[order[i]]
		m := run{block: first.Block, write: first.Write}
		m.bufs = append(m.bufs, first.Bufs...)
		next := first.Block + int64(len(first.Bufs))
		j := i + 1
		for j < len(order) {
			r := &reqs[order[j]]
			if r.Write != m.write || r.Block != next ||
				len(m.bufs)+len(r.Bufs) > blockio.MaxTransferBlocks {
				break
			}
			m.bufs = append(m.bufs, r.Bufs...)
			next += int64(len(r.Bufs))
			j++
		}
		runs = append(runs, m)
		i = j
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	svcs := make([]int64, len(runs))
	for i, m := range runs {
		nsect, err := sectorCount(m.bufs)
		if err != nil {
			return 0, err
		}
		lba := m.block * int64(blockio.SectorsPerBlock)
		if err := o.check(lba, nsect); err != nil {
			return 0, err
		}
		svc, transfer := o.serviceNs(nsect)
		svcs[i] = svc
		o.account(lba, nsect, m.write, svc, transfer)
	}
	o.clock.Advance(o.makespan(svcs))
	for _, m := range runs {
		off := m.block * int64(blockio.BlockSize)
		for _, b := range m.bufs {
			var err error
			if m.write {
				err = o.store.WriteAt(b, off)
			} else {
				err = o.store.ReadAt(b, off)
			}
			if err != nil {
				return 0, err
			}
			off += int64(len(b))
		}
	}
	return len(runs), nil
}

// makespan returns how long a batch of concurrently-issued requests
// occupies the device. Unbounded channels finish in the time of the
// slowest request; a bounded pool packs requests longest-first onto the
// least-loaded channel and finishes when the fullest channel drains.
func (o *Store) makespan(svcs []int64) int64 {
	var max int64
	if o.spec.Channels <= 0 || len(svcs) <= o.spec.Channels {
		for _, s := range svcs {
			if s > max {
				max = s
			}
		}
		return max
	}
	sorted := append([]int64(nil), svcs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	load := make([]int64, o.spec.Channels)
	for _, s := range sorted {
		least := 0
		for c := 1; c < len(load); c++ {
			if load[c] < load[least] {
				least = c
			}
		}
		load[least] += s
	}
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// Close implements blockio.Target.
func (o *Store) Close() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.store.Close()
}

// SetTrace implements blockio.Target.
func (o *Store) SetTrace(buf *[]disk.TraceEntry) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.trace = buf
}

// SetTraceFunc implements blockio.Target.
func (o *Store) SetTraceFunc(fn func(disk.TraceEntry)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.traceFunc = fn
}

// SetOpSource implements blockio.Target.
func (o *Store) SetOpSource(fn func() (kind uint8, id uint64)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.opSource = fn
}

// SetMetricsFunc implements blockio.Target.
func (o *Store) SetMetricsFunc(fn func(disk.TraceEntry)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.metricsFunc = fn
}
