package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Concurrency stress tests for the cache's internal locking: overlapping
// Read/Release, single-flight misses, racing ReadRun windows, dual-index
// churn, and eviction under pressure. They are primarily -race fodder
// (the CI pipeline runs them with the detector on), but they also assert
// structural invariants that would break under lost updates.

// TestConcurrentReadOverlap hammers Read/Release on a small overlapping
// block range from many goroutines, with enough capacity that nothing
// evicts: every goroutine must see the block's disk contents, and the
// single-flight path must keep the physical index consistent.
func TestConcurrentReadOverlap(t *testing.T) {
	c := newCache(t, 64)
	const blocks = 16
	for i := int64(0); i < blocks; i++ {
		fillDisk(t, c, 100+i, byte(i))
	}
	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				phys := 100 + int64((r*13+i)%blocks)
				b, err := c.Read(phys)
				if err != nil {
					errs <- err
					return
				}
				if b.Data[7] != byte(phys-100) {
					errs <- fmt.Errorf("block %d holds %x", phys, b.Data[7])
					b.Release()
					return
				}
				b.Release()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Len() > 64 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
	st := c.Stats()
	if st.Misses > blocks {
		// Single-flight plus no eviction: each block is read from disk
		// at most once no matter how many goroutines miss on it.
		t.Fatalf("%d misses for %d blocks", st.Misses, blocks)
	}
}

// TestConcurrentSingleFlight specifically races many goroutines at one
// cold block and counts disk requests.
func TestConcurrentSingleFlight(t *testing.T) {
	c := newCache(t, 16)
	fillDisk(t, c, 7, 0x5A)
	reqs0 := c.Device().Disk().Stats().Requests
	var wg sync.WaitGroup
	var bad atomic.Int64
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := c.Read(7)
			if err != nil || b.Data[0] != 0x5A {
				bad.Add(1)
				return
			}
			b.Release()
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatal("some readers saw bad data")
	}
	if got := c.Device().Disk().Stats().Requests - reqs0; got != 1 {
		t.Fatalf("%d disk requests for one cold block, want 1", got)
	}
}

// TestConcurrentWritersDisjoint gives each goroutine its own block range
// to Alloc, mutate and MarkDirty (per the Data contract, mutation
// requires per-block exclusivity) while a flusher goroutine runs Sync
// concurrently. The final Sync must leave the cache fully clean with
// every write accounted.
func TestConcurrentWritersDisjoint(t *testing.T) {
	c := newCache(t, 256)
	const writers = 8
	const perWriter = 20
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(1000 + w*perWriter)
			for i := 0; i < perWriter; i++ {
				b, err := c.Alloc(base + int64(i))
				if err != nil {
					errs <- err
					return
				}
				b.Data[0] = byte(w)
				b.Data[1] = byte(i)
				c.MarkDirty(b)
				b.Release()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := c.Sync(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if n := c.NDirty(); n != 0 {
		t.Fatalf("%d dirty blocks after final Sync", n)
	}
	// Every block must be on disk with its writer's stamp.
	buf := make([]byte, 4096)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			phys := int64(1000 + w*perWriter + i)
			if err := c.Device().ReadBlock(phys, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != byte(w) || buf[1] != byte(i) {
				t.Fatalf("block %d holds %x/%x, want %x/%x", phys, buf[0], buf[1], w, i)
			}
		}
	}
}

// TestConcurrentReadRunOverlap races group reads over overlapping
// windows with plain reads mixed in; claimed-placeholder handoff between
// racing runs must never lose or duplicate a block.
func TestConcurrentReadRunOverlap(t *testing.T) {
	c := newCache(t, 128)
	const span = 48
	for i := int64(0); i < span; i++ {
		fillDisk(t, c, 500+i, byte(i))
	}
	const runners = 6
	var wg sync.WaitGroup
	errs := make(chan error, runners)
	for r := 0; r < runners; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				start := 500 + int64((r*5+i)%(span-16))
				if err := c.ReadRun(start, 16); err != nil {
					errs <- err
					return
				}
				phys := start + int64(i%16)
				b, err := c.Read(phys)
				if err != nil {
					errs <- err
					return
				}
				if b.Data[3] != byte(phys-500) {
					errs <- fmt.Errorf("block %d holds %x", phys, b.Data[3])
					b.Release()
					return
				}
				b.Release()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentDualIndex churns SetID/GetByID/DropID from multiple
// goroutines, each owning a disjoint set of blocks and identities.
func TestConcurrentDualIndex(t *testing.T) {
	c := newCache(t, 128)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			phys := int64(2000 + w)
			fillDisk(t, c, phys, byte(w))
			for i := 0; i < 200; i++ {
				b, err := c.Read(phys)
				if err != nil {
					errs <- err
					return
				}
				id := ID{Ino: uint64(w + 1), LBlock: int64(i % 3)}
				c.SetID(b, id)
				b.Release()
				g := c.GetByID(id)
				if g == nil {
					// Eviction is legal; the logical index only serves
					// residents. But with capacity 128 and 8 blocks in
					// play nothing should evict.
					errs <- fmt.Errorf("worker %d lost identity at op %d", w, i)
					return
				}
				if g.Block != phys {
					errs <- fmt.Errorf("identity maps to block %d, want %d", g.Block, phys)
					g.Release()
					return
				}
				g.Release()
				if i%50 == 49 {
					c.DropID(b)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentEvictionPressure reads a range four times the cache
// capacity from many goroutines, with a dirty writer mixed in, so that
// evictions (and eviction-forced flushes) race against reads constantly.
func TestConcurrentEvictionPressure(t *testing.T) {
	c := newCache(t, 32)
	const span = 128
	for i := int64(0); i < span; i++ {
		fillDisk(t, c, i, byte(i))
	}
	const readers = 6
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				phys := int64((r*31 + i*7) % span)
				b, err := c.Read(phys)
				if err != nil {
					errs <- err
					return
				}
				if b.Data[9] != byte(phys) {
					errs <- fmt.Errorf("block %d holds %x", phys, b.Data[9])
					b.Release()
					return
				}
				b.Release()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// One dirty writer on a private range, so evictions regularly
		// trip over dirty LRU tails and batch-flush them.
		for i := 0; i < 150; i++ {
			phys := int64(5000 + i%20)
			b, err := c.Alloc(phys)
			if err != nil {
				errs <- err
				return
			}
			b.Data[0] = byte(i)
			c.MarkDirty(b)
			b.Release()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Len() > 32 {
		t.Fatalf("cache settled over capacity: %d", c.Len())
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
}
