package cache

import (
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/sched"
	"cffs/internal/sim"
)

// Model-based test: a long random sequence of cache operations is
// checked against a trivially-correct model of what each block should
// contain — on disk and as observed through the cache — plus the
// cache's own structural invariants after every step.
func TestCacheModel(t *testing.T) {
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	dev := blockio.NewDevice(d, sched.CLook{})
	const capacity = 24
	c := New(dev, capacity)

	const nblocks = 64 // working set > capacity so eviction churns
	rng := sim.NewRNG(2024)

	// The model: what a reader must observe per block, and what must be
	// on disk after a sync.
	observed := make([][]byte, nblocks) // nil = zeroes
	expectByte := func(blk int64) byte {
		if observed[blk] == nil {
			return 0
		}
		return observed[blk][0]
	}

	checkInvariants := func(step int) {
		if c.Len() > capacity {
			t.Fatalf("step %d: cache holds %d > capacity %d", step, c.Len(), capacity)
		}
		if c.NDirty() < 0 || c.NDirty() > c.Len() {
			t.Fatalf("step %d: dirty count %d out of range (len %d)", step, c.NDirty(), c.Len())
		}
	}

	for step := 0; step < 20000; step++ {
		blk := rng.Int63n(nblocks)
		switch op := rng.Intn(100); {
		case op < 40: // read and verify
			b, err := c.Read(blk)
			if err != nil {
				t.Fatalf("step %d: read %d: %v", step, blk, err)
			}
			if b.Data[0] != expectByte(blk) {
				t.Fatalf("step %d: block %d reads %#x, model says %#x", step, blk, b.Data[0], expectByte(blk))
			}
			b.Release()
		case op < 70: // write (delayed)
			b, err := c.Read(blk)
			if err != nil {
				t.Fatal(err)
			}
			v := byte(rng.Intn(255) + 1)
			for i := range b.Data {
				b.Data[i] = v
			}
			c.MarkDirty(b)
			b.Release()
			observed[blk] = []byte{v}
		case op < 80: // write-through
			b, err := c.Alloc(blk)
			if err != nil {
				t.Fatal(err)
			}
			v := byte(rng.Intn(255) + 1)
			for i := range b.Data {
				b.Data[i] = v
			}
			if err := c.WriteSync(b); err != nil {
				t.Fatal(err)
			}
			b.Release()
			observed[blk] = []byte{v}
		case op < 85: // invalidate: cached state reverts to disk contents
			c.Invalidate(blk)
			// The model must now expect whatever the disk holds; read it
			// raw to find out.
			raw := make([]byte, blockio.BlockSize)
			if err := dev.ReadBlock(blk, raw); err != nil {
				t.Fatal(err)
			}
			observed[blk] = []byte{raw[0]}
		case op < 90: // scatter read of a run
			n := 1 + rng.Intn(8)
			if blk+int64(n) > nblocks {
				n = int(nblocks - blk)
			}
			missing := int64(0)
			for k := 0; k < n; k++ {
				if c.Peek(blk+int64(k)) == nil {
					missing++
				}
			}
			before := c.Stats()
			if err := c.ReadRun(blk, n); err != nil {
				t.Fatal(err)
			}
			// Speculative fills must not masquerade as demand misses:
			// ReadRun charges every block it brought in to PrefetchFills
			// and none to Misses.
			after := c.Stats()
			if after.Misses != before.Misses {
				t.Fatalf("step %d: ReadRun raised demand misses by %d",
					step, after.Misses-before.Misses)
			}
			// Every pre-counted missing block is a fill; eviction during
			// the run can re-open blocks that were resident at the count,
			// so the delta may exceed it — but never the run length.
			if got := after.PrefetchFills - before.PrefetchFills; got < missing || got > int64(n) {
				t.Fatalf("step %d: ReadRun (run %d, %d missing) recorded %d prefetch fills",
					step, n, missing, got)
			}
			// Residency after ReadRun is best-effort under eviction
			// pressure (it is a cache), but whatever is resident must
			// hold the right bytes — a clobbered dirty block or a
			// misplaced scatter target would show up here.
			for k := 0; k < n; k++ {
				if b := c.Peek(blk + int64(k)); b != nil {
					if b.Data[0] != expectByte(blk+int64(k)) {
						t.Fatalf("step %d: ReadRun block %d holds %#x, model %#x",
							step, blk+int64(k), b.Data[0], expectByte(blk+int64(k)))
					}
				}
			}
		case op < 95: // sync everything
			if err := c.Sync(); err != nil {
				t.Fatal(err)
			}
			if c.NDirty() != 0 {
				t.Fatalf("step %d: dirty blocks remain after Sync", step)
			}
		default: // flush: cache empties, disk must equal the model
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if c.Len() != 0 {
				t.Fatalf("step %d: cache not empty after Flush", step)
			}
			probe := rng.Int63n(nblocks)
			raw := make([]byte, blockio.BlockSize)
			if err := dev.ReadBlock(probe, raw); err != nil {
				t.Fatal(err)
			}
			if raw[0] != expectByte(probe) {
				t.Fatalf("step %d: after Flush disk block %d holds %#x, model %#x",
					step, probe, raw[0], expectByte(probe))
			}
		}
		checkInvariants(step)
	}

	// Final settle: everything to disk, verify the full model.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for blk := int64(0); blk < nblocks; blk++ {
		raw := make([]byte, blockio.BlockSize)
		if err := dev.ReadBlock(blk, raw); err != nil {
			t.Fatal(err)
		}
		if raw[0] != expectByte(blk) {
			t.Fatalf("final: disk block %d holds %#x, model %#x", blk, raw[0], expectByte(blk))
		}
	}
}

// The dual index must never disagree with itself: a buffer reachable by
// ID must be the same buffer reachable by physical address.
func TestCacheDualIndexConsistency(t *testing.T) {
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	c := New(blockio.NewDevice(d, sched.CLook{}), 16)
	rng := sim.NewRNG(5)
	ids := make(map[ID]int64)
	for step := 0; step < 5000; step++ {
		phys := rng.Int63n(40)
		b, err := c.Read(phys)
		if err != nil {
			t.Fatal(err)
		}
		id := ID{Ino: uint64(rng.Intn(6)), LBlock: int64(rng.Intn(6))}
		c.SetID(b, id)
		ids[id] = phys
		b.Release()
		// Spot-check a known identity.
		for probe, want := range ids {
			got := c.GetByID(probe)
			if got != nil {
				if got.Block != want {
					// The identity may have been legitimately reassigned to
					// another block since; it must then match the *current*
					// registration, which SetID keeps unique.
					if gid, ok := got.ID(); !ok || gid != probe {
						t.Fatalf("step %d: buffer for %v has identity %v", step, probe, gid)
					}
				}
				got.Release()
			}
			break
		}
	}
}
