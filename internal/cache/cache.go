// Package cache implements the file block cache shared by both file
// systems.
//
// Following the paper (Section 3), buffers are indexed two ways: by
// physical disk address, like the original UNIX buffer cache, and by
// logical (file, offset) identity, like the SunOS integrated page cache
// [Gingell87, Moran87]. The dual index is what makes explicit grouping
// cheap: when C-FFS reads a whole group because one of its blocks was
// requested, the other blocks enter the cache under their physical
// identity alone — no back-translation to file/offset is needed — and a
// later logical access finds them by physical address after consulting
// the owning inode.
//
// # Concurrency
//
// The cache is safe for concurrent use. Locking is fine-grained:
//
//   - the physical index is split into shards, each with its own lock;
//   - the logical index has one lock (idMu);
//   - the LRU list, dirty accounting and dirty flags share one lock
//     (stateMu);
//   - per-buffer pin counts are atomic, and each buffer carries a ready
//     channel so concurrent misses on the same block single-flight the
//     disk read.
//
// The lock order is shard → idMu → stateMu; disk I/O is issued with no
// cache lock held. Pins are only acquired under a shard lock or idMu, so
// an evictor holding a buffer's shard lock plus idMu and observing zero
// pins knows no new pin can race it.
//
// Callers may read the Data of a shared pinned buffer concurrently, but
// mutating Data requires the caller to exclude every other user of that
// block — C-FFS does so with its file-system-level writer lock (see the
// lock hierarchy in internal/core).
package cache

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cffs/internal/blockio"
	"cffs/internal/obs"
)

// ID is the logical identity of a cached block: a file and a block index
// within it. Metadata blocks use reserved Ino values chosen by the file
// system.
type ID struct {
	Ino    uint64
	LBlock int64
}

// Buf is one cached block. Buffers returned by Read/Alloc are pinned;
// callers must Release them when done. Data is exactly one block.
type Buf struct {
	Block int64 // physical block number
	Data  []byte

	id    ID   // guarded by Cache.idMu
	hasID bool // guarded by Cache.idMu

	dirty bool // guarded by Cache.stateMu
	gone  bool // guarded by Cache.stateMu; removed from the cache

	pins    atomic.Int32
	lastUse atomic.Int64 // Cache.useTick value at the last touch

	// prefetched marks a block brought in by a group read (ReadRun)
	// rather than on demand; the first hit consumes the mark as "used",
	// eviction of a still-marked block counts as "unused". The ratio of
	// the two is the group-read fill ratio.
	prefetched atomic.Bool

	loadErr error         // written before ready is closed
	ready   chan struct{} // closed once Data is loaded (or the load failed)

	c          *Cache
	prev, next *Buf // LRU list links, guarded by Cache.stateMu
}

// Dirty reports whether the buffer has unwritten modifications.
func (b *Buf) Dirty() bool {
	b.c.stateMu.Lock()
	defer b.c.stateMu.Unlock()
	return b.dirty
}

// ID returns the logical identity and whether one has been assigned.
func (b *Buf) ID() (ID, bool) {
	b.c.idMu.Lock()
	defer b.c.idMu.Unlock()
	return b.id, b.hasID
}

// Release unpins the buffer, making it evictable again.
func (b *Buf) Release() {
	if b.pins.Add(-1) < 0 {
		panic(fmt.Sprintf("cache: release of unpinned block %d", b.Block))
	}
}

// wait blocks until the buffer's load completes and reports its outcome.
func (b *Buf) wait() error {
	<-b.ready
	return b.loadErr
}

// Stats counts cache activity. Misses counts demand misses only: blocks
// a caller asked for that were not resident. Blocks brought in
// speculatively by group reads (ReadRun) are PrefetchFills — folding
// them into Misses would inflate the demand-miss rate precisely when
// grouping works best.
type Stats struct {
	Hits          int64
	Misses        int64
	PrefetchFills int64
	Evictions     int64
	WriteBacks    int64 // blocks written by Sync/eviction/WriteSync
}

// nShards is the physical-index shard count. Adjacent blocks land in
// different shards, so a group read's insertions spread across locks.
const nShards = 16

// shard is one slice of the physical index.
type shard struct {
	mu     sync.Mutex
	byPhys map[int64]*Buf
}

// Cache is a fixed-capacity write-back block cache over a block device.
// It is safe for concurrent use; see the package comment for the locking
// design. Under concurrent insertion the capacity is a soft bound:
// in-flight loads may transiently overshoot it by the number of
// concurrent missers.
type Cache struct {
	dev      *blockio.Device
	capacity int

	shards [nShards]shard

	idMu sync.Mutex // guards byID and Buf.id/hasID
	byID map[ID]*Buf

	// stateMu guards the LRU list, ndirty, and Buf.dirty/gone.
	// LRU list with sentinel: lru.next = most recent.
	stateMu sync.Mutex
	lru     Buf
	ndirty  int

	n       atomic.Int64 // resident blocks
	useTick atomic.Int64 // advances on every touch; drives the re-link skip

	hits       atomic.Int64
	misses     atomic.Int64
	prefFills  atomic.Int64
	evictions  atomic.Int64
	writeBacks atomic.Int64

	// m holds optional obs instruments; every field is nil (a no-op
	// recorder) until SetMetrics attaches a registry.
	m cacheMetrics
}

// cacheMetrics is the cache's instrument set. obs instruments are
// nil-safe, so an unset cacheMetrics records nothing.
type cacheMetrics struct {
	shardHits   [nShards]*obs.Counter
	logicalHits *obs.Counter
	misses      *obs.Counter
	dedup       *obs.Counter
	evictions   *obs.Counter
	writeBacks  *obs.Counter
	prefLoaded  *obs.Counter
	prefUsed    *obs.Counter
	prefUnused  *obs.Counter
}

// evictFlushBatch bounds how many of the oldest dirty seed buffers are
// pushed out together (via FlushClustered) when eviction hits a dirty
// tail, so delayed writes stay clustered even under memory pressure.
// The write-behind daemon (internal/writeback) uses the same path with
// its own batch size.
const evictFlushBatch = 64

// evictRetries bounds how often an evictor re-picks a victim after
// losing a race (the victim got pinned, flushed-and-redirtied, or
// removed by a concurrent evictor) before giving up.
const evictRetries = 64

// New creates a cache of the given capacity in blocks.
func New(dev *blockio.Device, capacity int) *Cache {
	if capacity < 4 {
		panic(fmt.Sprintf("cache: capacity %d too small", capacity))
	}
	c := &Cache{
		dev:      dev,
		capacity: capacity,
		byID:     make(map[ID]*Buf),
	}
	for i := range c.shards {
		c.shards[i].byPhys = make(map[int64]*Buf)
	}
	c.lru.next = &c.lru
	c.lru.prev = &c.lru
	return c
}

func (c *Cache) shard(phys int64) *shard { return &c.shards[uint64(phys)%nShards] }

// SetMetrics attaches a registry the cache records into: per-shard hit
// counters (cache.hits.shard<i>), logical-index hits, demand misses
// (cache.misses — speculative group-read fills count under
// cache.prefetch.loaded instead), single-flight dedupe count,
// evictions, write-backs and the group-read prefetch fill counters.
// Call it at mount, before concurrent use.
func (c *Cache) SetMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	for i := range c.m.shardHits {
		c.m.shardHits[i] = r.Counter(fmt.Sprintf("cache.hits.shard%02d", i))
	}
	c.m.logicalHits = r.Counter("cache.hits.logical")
	c.m.misses = r.Counter("cache.misses")
	c.m.dedup = r.Counter("cache.singleflight.dedup")
	c.m.evictions = r.Counter("cache.evictions")
	c.m.writeBacks = r.Counter("cache.writebacks")
	c.m.prefLoaded = r.Counter("cache.prefetch.loaded")
	c.m.prefUsed = r.Counter("cache.prefetch.used")
	c.m.prefUnused = r.Counter("cache.prefetch.unused")
}

// hit records a hit on b found through the physical index.
func (c *Cache) hit(b *Buf) {
	c.hits.Add(1)
	if c.m.misses != nil { // metrics attached
		c.m.shardHits[uint64(b.Block)%nShards].Inc()
		if b.prefetched.Swap(false) {
			c.m.prefUsed.Inc()
		}
	}
}

// Device returns the underlying block device.
func (c *Cache) Device() *blockio.Device { return c.dev }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		PrefetchFills: c.prefFills.Load(),
		Evictions:     c.evictions.Load(),
		WriteBacks:    c.writeBacks.Load(),
	}
}

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return int(c.n.Load()) }

// Capacity returns the cache capacity in blocks.
func (c *Cache) Capacity() int { return c.capacity }

// NDirty returns the number of dirty resident blocks.
func (c *Cache) NDirty() int {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.ndirty
}

// touch moves a buffer to the most-recent end of the LRU list. The move
// is amortized: a buffer touched again within the last capacity/8
// touches is already near the MRU end, and skipping its re-link keeps
// the hot read path off stateMu — under concurrent cache-hit reads the
// global LRU lock is otherwise the first serialization point. Fresh
// buffers (lastUse zero) always link, so single-touch access patterns
// see exact LRU.
func (c *Cache) touch(b *Buf) {
	tick := c.useTick.Add(1)
	if last := b.lastUse.Swap(tick); last != 0 && tick-last <= int64(c.capacity/8) {
		return
	}
	c.stateMu.Lock()
	if !b.gone {
		c.unlinkLocked(b)
		b.next = c.lru.next
		b.prev = &c.lru
		c.lru.next.prev = b
		c.lru.next = b
	}
	c.stateMu.Unlock()
}

// unlinkLocked removes a buffer from the LRU list; stateMu is held.
func (c *Cache) unlinkLocked(b *Buf) {
	if b.prev != nil {
		b.prev.next = b.next
		b.next.prev = b.prev
		b.prev, b.next = nil, nil
	}
}

// newBuf builds an unpublished buffer for phys.
func (c *Cache) newBuf(phys int64) *Buf {
	return &Buf{
		Block: phys,
		Data:  make([]byte, blockio.BlockSize),
		c:     c,
		ready: make(chan struct{}),
	}
}

// Peek returns the resident buffer for a physical block without pinning
// or disk I/O, or nil. The result is a residency hint: without a pin (or
// external exclusion) the buffer may be evicted at any time, and it may
// still be loading.
func (c *Cache) Peek(phys int64) *Buf {
	s := c.shard(phys)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byPhys[phys]
}

// GetByID returns the resident buffer with the given logical identity,
// pinned, or nil. This is the logical half of the dual index.
func (c *Cache) GetByID(id ID) *Buf {
	c.idMu.Lock()
	b := c.byID[id]
	if b == nil {
		c.idMu.Unlock()
		return nil
	}
	b.pins.Add(1)
	c.idMu.Unlock()
	c.touch(b)
	if err := b.wait(); err != nil {
		b.Release()
		return nil
	}
	c.hits.Add(1)
	if c.m.misses != nil {
		c.m.logicalHits.Inc()
		if b.prefetched.Swap(false) {
			c.m.prefUsed.Inc()
		}
	}
	return b
}

// Read returns the buffer for a physical block, pinned, reading it from
// disk on a miss. Concurrent misses on the same block issue one disk
// read; the losers wait for the winner's load.
func (c *Cache) Read(phys int64) (*Buf, error) {
	s := c.shard(phys)
	s.mu.Lock()
	if b := s.byPhys[phys]; b != nil {
		b.pins.Add(1)
		s.mu.Unlock()
		if c.m.dedup != nil {
			select {
			case <-b.ready:
			default:
				// Another goroutine's load is still in flight; this
				// caller is about to wait on it instead of issuing its
				// own read — the single-flight save.
				c.m.dedup.Inc()
			}
		}
		c.touch(b)
		if err := b.wait(); err != nil {
			b.Release()
			return nil, err
		}
		c.hit(b)
		return b, nil
	}
	b := c.newBuf(phys)
	b.pins.Add(1) // the caller's pin; also keeps the load unevictable
	s.byPhys[phys] = b
	c.n.Add(1)
	s.mu.Unlock()
	c.misses.Add(1)
	c.m.misses.Inc()
	c.touch(b)
	if err := c.makeRoom(); err != nil {
		c.fail(b, err)
		return nil, err
	}
	if err := c.dev.ReadBlock(phys, b.Data); err != nil {
		c.fail(b, err)
		return nil, err
	}
	close(b.ready)
	return b, nil
}

// Alloc returns a buffer for a physical block without reading the disk:
// the caller promises to initialize the full block (fresh allocations,
// full overwrites). A resident buffer is returned as-is.
func (c *Cache) Alloc(phys int64) (*Buf, error) {
	s := c.shard(phys)
	s.mu.Lock()
	if b := s.byPhys[phys]; b != nil {
		b.pins.Add(1)
		s.mu.Unlock()
		c.touch(b)
		if err := b.wait(); err != nil {
			b.Release()
			return nil, err
		}
		c.hit(b)
		return b, nil
	}
	b := c.newBuf(phys)
	close(b.ready) // zero-filled by construction; nothing to load
	b.pins.Add(1)
	s.byPhys[phys] = b
	c.n.Add(1)
	s.mu.Unlock()
	c.touch(b)
	if err := c.makeRoom(); err != nil {
		c.forget(b)
		b.Release()
		return nil, err
	}
	return b, nil
}

// fail publishes a load error to any waiters and withdraws the buffer.
func (c *Cache) fail(b *Buf, err error) {
	b.loadErr = err
	close(b.ready)
	c.forget(b)
	b.Release()
}

// forget force-removes a buffer from every structure regardless of pins;
// outstanding holders keep a detached buffer that is no longer the
// cache's copy of the block.
func (c *Cache) forget(b *Buf) {
	s := c.shard(b.Block)
	s.mu.Lock()
	c.idMu.Lock()
	c.stateMu.Lock()
	if s.byPhys[b.Block] == b {
		c.removeLocked(s, b)
	}
	c.stateMu.Unlock()
	c.idMu.Unlock()
	s.mu.Unlock()
}

// makeRoom evicts until the cache is back within capacity.
func (c *Cache) makeRoom() error {
	for c.n.Load() > int64(c.capacity) {
		if err := c.evictOne(); err != nil {
			return err
		}
	}
	return nil
}

// evictOne removes the least recently used unpinned buffer. If that
// buffer is dirty, the oldest dirty buffers are flushed as one scheduled
// batch first, so that eviction under write pressure still produces
// clustered disk writes. Races with concurrent pinners, flushers, and
// evictors are resolved by re-picking the victim.
func (c *Cache) evictOne() error {
	for attempt := 0; attempt < evictRetries; attempt++ {
		c.stateMu.Lock()
		var victim *Buf
		for b := c.lru.prev; b != &c.lru; b = b.prev {
			if b.pins.Load() == 0 {
				victim = b
				break
			}
		}
		if victim == nil {
			c.stateMu.Unlock()
			return fmt.Errorf("cache: all %d buffers pinned", c.n.Load())
		}
		dirty := victim.dirty
		c.stateMu.Unlock()

		if dirty {
			if _, err := c.FlushClustered(evictFlushBatch); err != nil {
				return err
			}
			continue // re-pick: the victim should now be clean
		}

		// Take the locks in order and re-validate: holding the shard
		// lock and idMu blocks new pins on the victim.
		s := c.shard(victim.Block)
		s.mu.Lock()
		c.idMu.Lock()
		c.stateMu.Lock()
		ok := s.byPhys[victim.Block] == victim &&
			victim.pins.Load() == 0 && !victim.dirty
		if ok {
			c.removeLocked(s, victim)
		}
		c.stateMu.Unlock()
		c.idMu.Unlock()
		s.mu.Unlock()
		if ok {
			c.evictions.Add(1)
			c.m.evictions.Inc()
			return nil
		}
	}
	return fmt.Errorf("cache: eviction starved after %d attempts", evictRetries)
}

// removeLocked detaches a buffer from the maps, the LRU list and the
// dirty accounting. The buffer's shard lock, idMu and stateMu are held.
func (c *Cache) removeLocked(s *shard, b *Buf) {
	delete(s.byPhys, b.Block)
	if b.hasID {
		delete(c.byID, b.id)
		b.hasID = false
	}
	c.unlinkLocked(b)
	if b.dirty {
		c.ndirty--
		b.dirty = false
	}
	if b.prefetched.Swap(false) {
		c.m.prefUnused.Inc()
	}
	b.gone = true
	c.n.Add(-1)
}

// MarkDirty flags the buffer for delayed write-back.
func (c *Cache) MarkDirty(b *Buf) {
	c.stateMu.Lock()
	if !b.dirty {
		b.dirty = true
		c.ndirty++
	}
	c.stateMu.Unlock()
}

// SetID assigns (or reassigns) the logical identity of a buffer,
// maintaining the logical index.
func (c *Cache) SetID(b *Buf, id ID) {
	c.idMu.Lock()
	defer c.idMu.Unlock()
	if b.hasID {
		if b.id == id {
			return
		}
		delete(c.byID, b.id)
	}
	// A stale mapping for this identity (e.g. a reallocated block) is
	// displaced; the physical index remains authoritative.
	if old := c.byID[id]; old != nil {
		old.hasID = false
	}
	b.id = id
	b.hasID = true
	c.byID[id] = b
}

// DropID removes a buffer's logical identity (file truncated or removed).
func (c *Cache) DropID(b *Buf) {
	c.idMu.Lock()
	defer c.idMu.Unlock()
	if b.hasID {
		delete(c.byID, b.id)
		b.hasID = false
	}
}

// WriteSync writes one buffer through to disk immediately and marks it
// clean. This is the ordered synchronous metadata write of conventional
// file systems — the operation embedded inodes exist to halve. It is
// issued as an explicit ordering barrier so fault injection knows the
// write must be durable before any later write (and after all earlier
// ones).
func (c *Cache) WriteSync(b *Buf) error {
	if err := c.dev.WriteBlockOrdered(b.Block, b.Data); err != nil {
		return err
	}
	c.stateMu.Lock()
	if b.dirty {
		b.dirty = false
		c.ndirty--
	}
	c.stateMu.Unlock()
	c.writeBacks.Add(1)
	c.m.writeBacks.Inc()
	return nil
}

// Invalidate drops a block from the cache even if dirty. File systems
// call this when freeing blocks, so data of deleted files is never
// written back — a large part of why delayed-write deletes are fast.
func (c *Cache) Invalidate(phys int64) {
	s := c.shard(phys)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.byPhys[phys]
	if b == nil {
		return
	}
	c.idMu.Lock()
	c.stateMu.Lock()
	if b.pins.Load() > 0 {
		c.stateMu.Unlock()
		c.idMu.Unlock()
		panic(fmt.Sprintf("cache: invalidate of pinned block %d", phys))
	}
	c.removeLocked(s, b)
	c.stateMu.Unlock()
	c.idMu.Unlock()
}

// ReadRun ensures blocks [start, start+count) are resident, issuing the
// fewest possible disk requests: each maximal run of missing blocks is
// one scatter/gather read. Resident blocks (clean or dirty) are left
// untouched. This is the group-read primitive of explicit grouping.
//
// The buffers of a run are pinned while the run is assembled so that
// inserting the tail cannot evict the head; to keep that safe on tiny
// caches, runs longer than half the capacity are split. Blocks another
// goroutine is already loading are left to that goroutine, splitting the
// run around them.
func (c *Cache) ReadRun(start int64, count int) error {
	maxRun := c.capacity / 2
	if maxRun < 1 {
		maxRun = 1
	}
	i := 0
	for i < count {
		// Claim the next run of missing blocks with placeholders.
		var claimed []*Buf
		j := i
		for j < count && j-i < maxRun {
			phys := start + int64(j)
			s := c.shard(phys)
			s.mu.Lock()
			if s.byPhys[phys] != nil {
				s.mu.Unlock()
				break
			}
			b := c.newBuf(phys)
			b.pins.Add(1)
			s.byPhys[phys] = b
			c.n.Add(1)
			s.mu.Unlock()
			c.touch(b)
			claimed = append(claimed, b)
			j++
		}
		if len(claimed) == 0 {
			i++
			continue
		}
		// Speculative fills, not demand misses. The demand access that
		// triggered this run follows as an ordinary Read, which finds the
		// block resident and records a hit plus a prefetch "used" mark —
		// the prefetch hid the miss, which is the fact worth measuring.
		if c.m.prefLoaded != nil {
			c.m.prefLoaded.Add(int64(len(claimed)))
			for _, b := range claimed {
				b.prefetched.Store(true)
			}
		}
		fill := func(err error) error {
			for _, b := range claimed {
				c.fail(b, err)
			}
			return err
		}
		if err := c.makeRoom(); err != nil {
			return fill(err)
		}
		bufs := make([][]byte, len(claimed))
		for k, b := range claimed {
			bufs[k] = b.Data
		}
		if err := c.dev.ReadBlocks(start+int64(i), bufs); err != nil {
			return fill(err)
		}
		c.prefFills.Add(int64(len(claimed)))
		for _, b := range claimed {
			close(b.ready)
			b.Release()
		}
		i = j
	}
	return nil
}

// Run names a block range for ReadRuns.
type Run struct {
	Start int64
	Count int
}

// ReadRuns ensures every block range in runs is resident, issuing all
// missing sub-runs together as ONE scheduled batch (a single
// Device.Submit). Where ReadRun's per-run reads serialize, a batch lets
// a striped volume service runs that land on different spindles in
// parallel — this is the group-readahead primitive: the demand group
// plus the next few related group extents go out as one fan-out.
//
// Like ReadRun, resident and in-flight blocks are skipped, and the
// total claimed at once is capped at half the cache capacity; runs past
// the cap are simply not prefetched (the eventual demand access brings
// them in).
func (c *Cache) ReadRuns(runs []Run) error {
	maxRun := c.capacity / 2
	if maxRun < 1 {
		maxRun = 1
	}
	type claim struct {
		start int64
		bufs  []*Buf
	}
	var claims []claim
	total := 0
claiming:
	for _, r := range runs {
		i := 0
		for i < r.Count {
			if total >= maxRun {
				break claiming
			}
			// Claim the next run of missing blocks with placeholders.
			var claimed []*Buf
			j := i
			for j < r.Count && total < maxRun {
				phys := r.Start + int64(j)
				s := c.shard(phys)
				s.mu.Lock()
				if s.byPhys[phys] != nil {
					s.mu.Unlock()
					break
				}
				b := c.newBuf(phys)
				b.pins.Add(1)
				s.byPhys[phys] = b
				c.n.Add(1)
				s.mu.Unlock()
				c.touch(b)
				claimed = append(claimed, b)
				total++
				j++
			}
			if len(claimed) == 0 {
				i++
				continue
			}
			claims = append(claims, claim{start: r.Start + int64(i), bufs: claimed})
			i = j
		}
	}
	if len(claims) == 0 {
		return nil
	}
	all := make([]*Buf, 0, total)
	for _, cl := range claims {
		all = append(all, cl.bufs...)
	}
	// Speculative fills, not demand misses; see ReadRun.
	if c.m.prefLoaded != nil {
		c.m.prefLoaded.Add(int64(len(all)))
		for _, b := range all {
			b.prefetched.Store(true)
		}
	}
	fill := func(err error) error {
		for _, b := range all {
			c.fail(b, err)
		}
		return err
	}
	if err := c.makeRoom(); err != nil {
		return fill(err)
	}
	reqs := make([]blockio.Req, len(claims))
	for i, cl := range claims {
		bufs := make([][]byte, len(cl.bufs))
		for k, b := range cl.bufs {
			bufs[k] = b.Data
		}
		reqs[i] = blockio.Req{Block: cl.start, Bufs: bufs}
	}
	if err := c.dev.Submit(reqs); err != nil {
		return fill(err)
	}
	c.prefFills.Add(int64(len(all)))
	for _, b := range all {
		close(b.ready)
		b.Release()
	}
	return nil
}

// Sync writes back every dirty buffer as one scheduled, merged batch.
func (c *Cache) Sync() error {
	_, err := c.flushDirty(func(*Buf) bool { return true })
	return err
}

// FlushClustered writes back up to seeds of the oldest dirty buffers
// together with every dirty buffer physically contiguous with them, as
// one scheduled batch, and returns the number of blocks written.
// Expanding each seed to its full dirty run is what keeps write-behind
// clustered: the oldest dirty block of an explicit group drags the rest
// of the group's dirty blocks into the same batch, where Submit merges
// the physically adjacent ones into scatter/gather transfers. Both
// eviction pressure and the write-behind daemon flush through here, so
// partial write-back never degrades into single-block dribbles.
func (c *Cache) FlushClustered(seeds int) (int, error) {
	victims := make(map[*Buf]bool)
	c.stateMu.Lock()
	marked := 0
	var picked []*Buf
	for b := c.lru.prev; b != &c.lru && marked < seeds; b = b.prev {
		if b.dirty {
			victims[b] = true
			picked = append(picked, b)
			marked++
		}
	}
	c.stateMu.Unlock()
	// Grow each seed into its maximal run of resident dirty neighbors.
	// Residency and dirtiness are re-checked under stateMu by flushDirty,
	// so a raced eviction here only costs a smaller batch.
	for _, b := range picked {
		for dir := int64(-1); dir <= 1; dir += 2 {
			for off := dir; ; off += dir {
				nb := c.Peek(b.Block + off)
				if nb == nil || victims[nb] || !nb.Dirty() {
					break
				}
				victims[nb] = true
			}
		}
	}
	return c.flushDirty(func(b *Buf) bool { return victims[b] })
}

// flushDirty writes back dirty buffers selected by want, in one Submit,
// returning the number of blocks written. The batch is collected under
// stateMu and submitted without cache locks; concurrent flushers may
// write a block twice (harmless), and the dirty check on completion
// keeps the accounting exact.
func (c *Cache) flushDirty(want func(*Buf) bool) (int, error) {
	var bufs []*Buf
	c.stateMu.Lock()
	for b := c.lru.next; b != &c.lru; b = b.next {
		if b.dirty && want(b) {
			bufs = append(bufs, b)
		}
	}
	c.stateMu.Unlock()
	if len(bufs) == 0 {
		return 0, nil
	}
	sort.Slice(bufs, func(i, j int) bool { return bufs[i].Block < bufs[j].Block })
	reqs := make([]blockio.Req, len(bufs))
	for i, b := range bufs {
		reqs[i] = blockio.Req{Write: true, Block: b.Block, Bufs: [][]byte{b.Data}}
	}
	if err := c.dev.Submit(reqs); err != nil {
		return 0, err
	}
	c.stateMu.Lock()
	for _, b := range bufs {
		if b.dirty {
			b.dirty = false
			c.ndirty--
			c.writeBacks.Add(1)
			c.m.writeBacks.Inc()
		}
	}
	c.stateMu.Unlock()
	return len(bufs), nil
}

// Flush writes back all dirty data and then empties the cache. The
// benchmark harness calls this between phases so each phase starts cold,
// as the paper's methodology requires ("we forcefully write back all
// dirty blocks before considering the measurement complete"). Flush
// requires a quiescent cache: it fails on any pinned buffer.
func (c *Cache) Flush() error {
	if err := c.Sync(); err != nil {
		return err
	}
	for si := range c.shards {
		s := &c.shards[si]
		s.mu.Lock()
		for _, b := range s.byPhys {
			if b.pins.Load() > 0 {
				s.mu.Unlock()
				return fmt.Errorf("cache: Flush with pinned block %d", b.Block)
			}
			c.idMu.Lock()
			c.stateMu.Lock()
			c.removeLocked(s, b)
			c.stateMu.Unlock()
			c.idMu.Unlock()
		}
		s.mu.Unlock()
	}
	return nil
}
