// Package cache implements the file block cache shared by both file
// systems.
//
// Following the paper (Section 3), buffers are indexed two ways: by
// physical disk address, like the original UNIX buffer cache, and by
// logical (file, offset) identity, like the SunOS integrated page cache
// [Gingell87, Moran87]. The dual index is what makes explicit grouping
// cheap: when C-FFS reads a whole group because one of its blocks was
// requested, the other blocks enter the cache under their physical
// identity alone — no back-translation to file/offset is needed — and a
// later logical access finds them by physical address after consulting
// the owning inode.
package cache

import (
	"fmt"
	"sort"

	"cffs/internal/blockio"
)

// ID is the logical identity of a cached block: a file and a block index
// within it. Metadata blocks use reserved Ino values chosen by the file
// system.
type ID struct {
	Ino    uint64
	LBlock int64
}

// Buf is one cached block. Buffers returned by Read/Alloc are pinned;
// callers must Release them when done. Data is exactly one block.
type Buf struct {
	Block int64 // physical block number
	Data  []byte

	id    ID
	hasID bool
	dirty bool
	pins  int

	c          *Cache
	prev, next *Buf // LRU list links
}

// Dirty reports whether the buffer has unwritten modifications.
func (b *Buf) Dirty() bool { return b.dirty }

// ID returns the logical identity and whether one has been assigned.
func (b *Buf) ID() (ID, bool) { return b.id, b.hasID }

// Release unpins the buffer, making it evictable again.
func (b *Buf) Release() {
	if b.pins <= 0 {
		panic(fmt.Sprintf("cache: release of unpinned block %d", b.Block))
	}
	b.pins--
}

// Stats counts cache activity.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	WriteBacks int64 // blocks written by Sync/eviction/WriteSync
}

// Cache is a fixed-capacity write-back block cache over a block device.
// It is single-threaded, like everything in the simulation.
type Cache struct {
	dev      *blockio.Device
	capacity int

	byPhys map[int64]*Buf
	byID   map[ID]*Buf

	// LRU list with sentinel: lru.next = most recent.
	lru Buf

	ndirty int
	stats  Stats
}

// evictFlushBatch bounds how many of the oldest dirty buffers are pushed
// out together when eviction hits a dirty tail — a stand-in for the
// periodic update daemon, and the path that keeps delayed writes
// clustered even under memory pressure.
const evictFlushBatch = 64

// New creates a cache of the given capacity in blocks.
func New(dev *blockio.Device, capacity int) *Cache {
	if capacity < 4 {
		panic(fmt.Sprintf("cache: capacity %d too small", capacity))
	}
	c := &Cache{
		dev:      dev,
		capacity: capacity,
		byPhys:   make(map[int64]*Buf),
		byID:     make(map[ID]*Buf),
	}
	c.lru.next = &c.lru
	c.lru.prev = &c.lru
	return c
}

// Device returns the underlying block device.
func (c *Cache) Device() *blockio.Device { return c.dev }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return len(c.byPhys) }

// NDirty returns the number of dirty resident blocks.
func (c *Cache) NDirty() int { return c.ndirty }

func (c *Cache) touch(b *Buf) {
	c.unlink(b)
	b.next = c.lru.next
	b.prev = &c.lru
	c.lru.next.prev = b
	c.lru.next = b
}

func (c *Cache) unlink(b *Buf) {
	if b.prev != nil {
		b.prev.next = b.next
		b.next.prev = b.prev
		b.prev, b.next = nil, nil
	}
}

// Peek returns the resident buffer for a physical block without pinning
// or disk I/O, or nil.
func (c *Cache) Peek(phys int64) *Buf { return c.byPhys[phys] }

// GetByID returns the resident buffer with the given logical identity,
// pinned, or nil. This is the logical half of the dual index.
func (c *Cache) GetByID(id ID) *Buf {
	b := c.byID[id]
	if b == nil {
		return nil
	}
	b.pins++
	c.touch(b)
	c.stats.Hits++
	return b
}

// Read returns the buffer for a physical block, pinned, reading it from
// disk on a miss.
func (c *Cache) Read(phys int64) (*Buf, error) {
	if b := c.byPhys[phys]; b != nil {
		b.pins++
		c.touch(b)
		c.stats.Hits++
		return b, nil
	}
	c.stats.Misses++
	b, err := c.insert(phys)
	if err != nil {
		return nil, err
	}
	if err := c.dev.ReadBlock(phys, b.Data); err != nil {
		return nil, err
	}
	b.pins++
	return b, nil
}

// Alloc returns a buffer for a physical block without reading the disk:
// the caller promises to initialize the full block (fresh allocations,
// full overwrites). A resident buffer is returned as-is.
func (c *Cache) Alloc(phys int64) (*Buf, error) {
	if b := c.byPhys[phys]; b != nil {
		b.pins++
		c.touch(b)
		c.stats.Hits++
		return b, nil
	}
	b, err := c.insert(phys)
	if err != nil {
		return nil, err
	}
	b.pins++
	return b, nil
}

// insert makes room and adds an unpinned, clean, zeroed buffer.
func (c *Cache) insert(phys int64) (*Buf, error) {
	for len(c.byPhys) >= c.capacity {
		if err := c.evictOne(); err != nil {
			return nil, err
		}
	}
	b := &Buf{Block: phys, Data: make([]byte, blockio.BlockSize), c: c}
	c.byPhys[phys] = b
	c.touch(b)
	return b, nil
}

// evictOne removes the least recently used unpinned buffer. If that
// buffer is dirty, the oldest dirty buffers are flushed as one scheduled
// batch first, so that eviction under write pressure still produces
// clustered disk writes.
func (c *Cache) evictOne() error {
	var victim *Buf
	for b := c.lru.prev; b != &c.lru; b = b.prev {
		if b.pins == 0 {
			victim = b
			break
		}
	}
	if victim == nil {
		return fmt.Errorf("cache: all %d buffers pinned", len(c.byPhys))
	}
	if victim.dirty {
		if err := c.flushOldestDirty(evictFlushBatch); err != nil {
			return err
		}
		if victim.dirty {
			return fmt.Errorf("cache: victim block %d still dirty after flush", victim.Block)
		}
	}
	c.remove(victim)
	c.stats.Evictions++
	return nil
}

func (c *Cache) remove(b *Buf) {
	c.unlink(b)
	delete(c.byPhys, b.Block)
	if b.hasID {
		delete(c.byID, b.id)
	}
	if b.dirty {
		c.ndirty--
		b.dirty = false
	}
}

// MarkDirty flags the buffer for delayed write-back.
func (c *Cache) MarkDirty(b *Buf) {
	if !b.dirty {
		b.dirty = true
		c.ndirty++
	}
}

// SetID assigns (or reassigns) the logical identity of a buffer,
// maintaining the logical index.
func (c *Cache) SetID(b *Buf, id ID) {
	if b.hasID {
		if b.id == id {
			return
		}
		delete(c.byID, b.id)
	}
	// A stale mapping for this identity (e.g. a reallocated block) is
	// displaced; the physical index remains authoritative.
	if old := c.byID[id]; old != nil {
		old.hasID = false
	}
	b.id = id
	b.hasID = true
	c.byID[id] = b
}

// DropID removes a buffer's logical identity (file truncated or removed).
func (c *Cache) DropID(b *Buf) {
	if b.hasID {
		delete(c.byID, b.id)
		b.hasID = false
	}
}

// WriteSync writes one buffer through to disk immediately and marks it
// clean. This is the ordered synchronous metadata write of conventional
// file systems — the operation embedded inodes exist to halve.
func (c *Cache) WriteSync(b *Buf) error {
	if err := c.dev.WriteBlock(b.Block, b.Data); err != nil {
		return err
	}
	if b.dirty {
		b.dirty = false
		c.ndirty--
	}
	c.stats.WriteBacks++
	return nil
}

// Invalidate drops a block from the cache even if dirty. File systems
// call this when freeing blocks, so data of deleted files is never
// written back — a large part of why delayed-write deletes are fast.
func (c *Cache) Invalidate(phys int64) {
	if b := c.byPhys[phys]; b != nil {
		if b.pins > 0 {
			panic(fmt.Sprintf("cache: invalidate of pinned block %d", phys))
		}
		c.remove(b)
	}
}

// ReadRun ensures blocks [start, start+count) are resident, issuing the
// fewest possible disk requests: each maximal run of missing blocks is
// one scatter/gather read. Resident blocks (clean or dirty) are left
// untouched. This is the group-read primitive of explicit grouping.
//
// The buffers of a run are pinned while the run is assembled so that
// inserting the tail cannot evict the head; to keep that safe on tiny
// caches, runs longer than half the capacity are split.
func (c *Cache) ReadRun(start int64, count int) error {
	i := 0
	maxRun := c.capacity / 2
	if maxRun < 1 {
		maxRun = 1
	}
	for i < count {
		if c.byPhys[start+int64(i)] != nil {
			i++
			continue
		}
		j := i
		for j < count && j-i < maxRun && c.byPhys[start+int64(j)] == nil {
			j++
		}
		n := j - i
		bufs := make([][]byte, n)
		newbufs := make([]*Buf, n)
		for k := 0; k < n; k++ {
			b, err := c.insert(start + int64(i+k))
			if err != nil {
				for _, nb := range newbufs[:k] {
					nb.pins--
				}
				return err
			}
			b.pins++
			newbufs[k] = b
			bufs[k] = b.Data
		}
		c.stats.Misses += int64(n)
		err := c.dev.ReadBlocks(start+int64(i), bufs)
		for _, nb := range newbufs {
			nb.pins--
		}
		if err != nil {
			return err
		}
		i = j
	}
	return nil
}

// Sync writes back every dirty buffer as one scheduled, merged batch.
func (c *Cache) Sync() error {
	return c.flushDirty(func(*Buf) bool { return true })
}

// flushOldestDirty flushes up to limit dirty buffers, oldest first.
func (c *Cache) flushOldestDirty(limit int) error {
	marked := 0
	victims := make(map[*Buf]bool)
	for b := c.lru.prev; b != &c.lru && marked < limit; b = b.prev {
		if b.dirty {
			victims[b] = true
			marked++
		}
	}
	return c.flushDirty(func(b *Buf) bool { return victims[b] })
}

// flushDirty writes back dirty buffers selected by keep, in one Submit.
func (c *Cache) flushDirty(want func(*Buf) bool) error {
	var bufs []*Buf
	for b := c.lru.next; b != &c.lru; b = b.next {
		if b.dirty && want(b) {
			bufs = append(bufs, b)
		}
	}
	if len(bufs) == 0 {
		return nil
	}
	sort.Slice(bufs, func(i, j int) bool { return bufs[i].Block < bufs[j].Block })
	reqs := make([]blockio.Req, len(bufs))
	for i, b := range bufs {
		reqs[i] = blockio.Req{Write: true, Block: b.Block, Bufs: [][]byte{b.Data}}
	}
	if err := c.dev.Submit(reqs); err != nil {
		return err
	}
	for _, b := range bufs {
		b.dirty = false
		c.ndirty--
		c.stats.WriteBacks++
	}
	return nil
}

// Flush writes back all dirty data and then empties the cache. The
// benchmark harness calls this between phases so each phase starts cold,
// as the paper's methodology requires ("we forcefully write back all
// dirty blocks before considering the measurement complete").
func (c *Cache) Flush() error {
	if err := c.Sync(); err != nil {
		return err
	}
	for b := c.lru.next; b != &c.lru; {
		next := b.next
		if b.pins > 0 {
			return fmt.Errorf("cache: Flush with pinned block %d", b.Block)
		}
		c.remove(b)
		b = next
	}
	return nil
}
