package cache

import (
	"bytes"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/disk"
	"cffs/internal/sched"
	"cffs/internal/sim"
)

func newCache(t *testing.T, capacity int) *Cache {
	t.Helper()
	d, err := disk.NewMem(disk.SeagateST31200(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return New(blockio.NewDevice(d, sched.CLook{}), capacity)
}

func fillDisk(t *testing.T, c *Cache, phys int64, fill byte) {
	t.Helper()
	if err := c.Device().WriteBlock(phys, bytes.Repeat([]byte{fill}, blockio.BlockSize)); err != nil {
		t.Fatal(err)
	}
}

func TestReadMissThenHit(t *testing.T) {
	c := newCache(t, 16)
	fillDisk(t, c, 42, 0xAB)
	b, err := c.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	if b.Data[0] != 0xAB {
		t.Fatalf("read data %x, want ab", b.Data[0])
	}
	b.Release()
	reqs := c.Device().Disk().Stats().Requests
	b2, err := c.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	b2.Release()
	if got := c.Device().Disk().Stats().Requests; got != reqs {
		t.Fatal("second read touched the disk")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit 1 miss", s)
	}
}

func TestDelayedWriteGoesOutOnSync(t *testing.T) {
	c := newCache(t, 16)
	b, err := c.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	copy(b.Data, []byte("delayed"))
	c.MarkDirty(b)
	b.Release()
	if got := c.Device().Disk().Stats().Writes; got != 0 {
		t.Fatalf("dirty block written before Sync (%d writes)", got)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := c.Device().Disk().Stats().Writes; got != 1 {
		t.Fatalf("Sync wrote %d requests, want 1", got)
	}
	if c.NDirty() != 0 {
		t.Fatal("dirty count not cleared by Sync")
	}
	got := make([]byte, blockio.BlockSize)
	if err := c.Device().ReadBlock(10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("delayed")) {
		t.Fatal("synced data not on disk")
	}
}

func TestSyncClustersAdjacentDirtyBlocks(t *testing.T) {
	c := newCache(t, 64)
	for i := int64(0); i < 8; i++ {
		b, err := c.Alloc(100 + i)
		if err != nil {
			t.Fatal(err)
		}
		c.MarkDirty(b)
		b.Release()
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := c.Device().Disk().Stats().Requests; got != 1 {
		t.Fatalf("8 adjacent dirty blocks flushed in %d requests, want 1", got)
	}
}

func TestWriteSyncImmediate(t *testing.T) {
	c := newCache(t, 16)
	b, err := c.Alloc(7)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkDirty(b)
	if err := c.WriteSync(b); err != nil {
		t.Fatal(err)
	}
	b.Release()
	if c.NDirty() != 0 {
		t.Fatal("WriteSync left buffer dirty")
	}
	if got := c.Device().Disk().Stats().Writes; got != 1 {
		t.Fatalf("WriteSync issued %d writes, want 1", got)
	}
}

func TestEvictionLRUAndCapacity(t *testing.T) {
	c := newCache(t, 8)
	for i := int64(0); i < 20; i++ {
		b, err := c.Alloc(i)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
	if c.Len() > 8 {
		t.Fatalf("cache holds %d blocks, capacity 8", c.Len())
	}
	if c.Peek(0) != nil {
		t.Fatal("oldest block not evicted")
	}
	if c.Peek(19) == nil {
		t.Fatal("newest block evicted")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestEvictionFlushesDirtyClustered(t *testing.T) {
	c := newCache(t, 8)
	for i := int64(0); i < 8; i++ {
		b, err := c.Alloc(200 + i)
		if err != nil {
			t.Fatal(err)
		}
		c.MarkDirty(b)
		b.Release()
	}
	// Trigger eviction; the dirty tail must be flushed as a batch.
	b, err := c.Alloc(500)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if got := c.Device().Disk().Stats().Requests; got != 1 {
		t.Fatalf("eviction flush used %d requests, want 1 merged write", got)
	}
}

func TestFlushClusteredExpandsSeedToRun(t *testing.T) {
	c := newCache(t, 64)
	// A contiguous dirty run (an explicit group's worth of data blocks)
	// plus one isolated dirty block far away, dirtied later.
	for i := int64(0); i < 16; i++ {
		b, err := c.Alloc(100 + i)
		if err != nil {
			t.Fatal(err)
		}
		c.MarkDirty(b)
		b.Release()
	}
	b, err := c.Alloc(900)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkDirty(b)
	b.Release()

	// One seed (the oldest dirty block, 100) must drag the whole
	// contiguous run out as a single merged transfer, and leave the
	// unrelated distant block dirty.
	n, err := c.FlushClustered(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Fatalf("FlushClustered wrote %d blocks, want the full 16-block run", n)
	}
	if got := c.Device().Disk().Stats().Requests; got != 1 {
		t.Fatalf("clustered flush used %d requests, want 1 merged write", got)
	}
	if c.NDirty() != 1 {
		t.Fatalf("%d dirty blocks remain, want only the distant one", c.NDirty())
	}
	if !c.Peek(900).Dirty() {
		t.Fatal("distant block flushed by an unrelated seed")
	}
}

func TestPinnedBuffersNotEvicted(t *testing.T) {
	c := newCache(t, 4)
	pinned, err := c.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(2); i < 10; i++ {
		b, err := c.Alloc(i)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
	if c.Peek(1) != pinned {
		t.Fatal("pinned buffer evicted")
	}
	pinned.Release()
}

func TestAllPinnedErrors(t *testing.T) {
	c := newCache(t, 4)
	var bufs []*Buf
	for i := int64(0); i < 4; i++ {
		b, err := c.Alloc(i)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	if _, err := c.Alloc(99); err == nil {
		t.Fatal("allocation succeeded with all buffers pinned")
	}
	for _, b := range bufs {
		b.Release()
	}
}

func TestDualIndex(t *testing.T) {
	c := newCache(t, 16)
	b, err := c.Alloc(33)
	if err != nil {
		t.Fatal(err)
	}
	id := ID{Ino: 5, LBlock: 2}
	c.SetID(b, id)
	b.Release()
	got := c.GetByID(id)
	if got == nil || got.Block != 33 {
		t.Fatal("logical index lookup failed")
	}
	got.Release()
	// Reassigning identity updates both directions.
	b2, _ := c.Alloc(44)
	c.SetID(b2, id)
	b2.Release()
	got = c.GetByID(id)
	if got == nil || got.Block != 44 {
		t.Fatal("identity reassignment not reflected in logical index")
	}
	got.Release()
	if gid, ok := c.Peek(33).ID(); ok && gid == id {
		t.Fatal("old buffer kept stolen identity")
	}
}

func TestDropID(t *testing.T) {
	c := newCache(t, 16)
	b, _ := c.Alloc(3)
	id := ID{Ino: 9, LBlock: 0}
	c.SetID(b, id)
	c.DropID(b)
	b.Release()
	if got := c.GetByID(id); got != nil {
		got.Release()
		t.Fatal("dropped identity still resolves")
	}
}

func TestInvalidateDropsDirty(t *testing.T) {
	c := newCache(t, 16)
	b, _ := c.Alloc(70)
	c.MarkDirty(b)
	b.Release()
	c.Invalidate(70)
	if c.NDirty() != 0 || c.Peek(70) != nil {
		t.Fatal("invalidate did not drop dirty block")
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := c.Device().Disk().Stats().Writes; got != 0 {
		t.Fatal("invalidated block was written back")
	}
}

func TestReadRunSingleRequest(t *testing.T) {
	c := newCache(t, 64)
	for i := int64(0); i < 16; i++ {
		fillDisk(t, c, 300+i, byte(i))
	}
	c.Device().Disk().ResetStats()
	if err := c.ReadRun(300, 16); err != nil {
		t.Fatal(err)
	}
	if got := c.Device().Disk().Stats().Requests; got != 1 {
		t.Fatalf("ReadRun of 16 blocks used %d requests, want 1", got)
	}
	for i := int64(0); i < 16; i++ {
		b := c.Peek(300 + i)
		if b == nil || b.Data[0] != byte(i) {
			t.Fatalf("block %d missing or wrong after ReadRun", 300+i)
		}
	}
}

func TestReadRunSkipsResidentDirty(t *testing.T) {
	c := newCache(t, 64)
	b, _ := c.Alloc(405)
	copy(b.Data, []byte("dirty!"))
	c.MarkDirty(b)
	b.Release()
	if err := c.ReadRun(400, 16); err != nil {
		t.Fatal(err)
	}
	if got := c.Peek(405); !bytes.HasPrefix(got.Data, []byte("dirty!")) {
		t.Fatal("ReadRun clobbered a resident dirty block")
	}
	// Two sub-runs around the resident block: 400-404 and 406-415.
	if got := c.Device().Disk().Stats().Reads; got != 2 {
		t.Fatalf("ReadRun around resident block used %d reads, want 2", got)
	}
}

func TestFlushEmptiesCache(t *testing.T) {
	c := newCache(t, 16)
	b, _ := c.Alloc(11)
	c.MarkDirty(b)
	b.Release()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.NDirty() != 0 {
		t.Fatalf("Flush left %d blocks (%d dirty)", c.Len(), c.NDirty())
	}
	if got := c.Device().Disk().Stats().Writes; got != 1 {
		t.Fatal("Flush lost the dirty block")
	}
}

func TestFlushFailsWithPinned(t *testing.T) {
	c := newCache(t, 16)
	b, _ := c.Alloc(1)
	if err := c.Flush(); err == nil {
		t.Fatal("Flush succeeded with pinned buffer")
	}
	b.Release()
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	c := newCache(t, 16)
	b, _ := c.Alloc(1)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release()
}
