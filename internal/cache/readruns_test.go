package cache

import (
	"testing"
)

// ReadRuns must land every named block in the cache in one submission:
// afterwards each block is a hit with the right contents.
func TestReadRunsFillsAllRuns(t *testing.T) {
	c := newCache(t, 64)
	runs := []Run{{Start: 100, Count: 4}, {Start: 300, Count: 3}, {Start: 900, Count: 1}}
	want := map[int64]byte{}
	for _, r := range runs {
		for i := int64(0); i < int64(r.Count); i++ {
			fill := byte(0x10 + r.Start/100 + i)
			fillDisk(t, c, r.Start+i, fill)
			want[r.Start+i] = fill
		}
	}
	if err := c.ReadRuns(runs); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().PrefetchFills; got != 8 {
		t.Fatalf("prefetch fills = %d, want 8", got)
	}
	reqs := c.Device().Disk().Stats().Requests
	for phys, fill := range want {
		b, err := c.Read(phys)
		if err != nil {
			t.Fatal(err)
		}
		if b.Data[0] != fill {
			t.Errorf("block %d: data %#x, want %#x", phys, b.Data[0], fill)
		}
		b.Release()
	}
	if got := c.Device().Disk().Stats().Requests; got != reqs {
		t.Fatalf("demand reads after ReadRuns touched the disk (%d extra requests)", got-reqs)
	}
}

// Resident blocks are skipped: only the cold tail of a run is fetched,
// and the resident block keeps its (dirty) contents.
func TestReadRunsSkipsResident(t *testing.T) {
	c := newCache(t, 64)
	for i := int64(0); i < 4; i++ {
		fillDisk(t, c, 50+i, byte(i))
	}
	b, err := c.Read(51)
	if err != nil {
		t.Fatal(err)
	}
	b.Data[0] = 0xEE // modify in cache; a refetch would clobber this
	c.MarkDirty(b)
	b.Release()

	if err := c.ReadRuns([]Run{{Start: 50, Count: 4}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().PrefetchFills; got != 3 {
		t.Fatalf("prefetch fills = %d, want 3 (block 51 resident)", got)
	}
	b, err = c.Read(51)
	if err != nil {
		t.Fatal(err)
	}
	if b.Data[0] != 0xEE {
		t.Fatal("ReadRuns clobbered a resident dirty block")
	}
	b.Release()
}

// The claim is capped at half the cache capacity so a wide fan cannot
// evict the working set; blocks past the cap just aren't prefetched.
func TestReadRunsCapacityCap(t *testing.T) {
	c := newCache(t, 8) // cap = 4
	for i := int64(0); i < 10; i++ {
		fillDisk(t, c, 200+i, byte(i))
	}
	if err := c.ReadRuns([]Run{{Start: 200, Count: 10}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().PrefetchFills; got != 4 {
		t.Fatalf("prefetch fills = %d, want 4 (half of capacity 8)", got)
	}
	// The uncapped tail still reads correctly on demand.
	b, err := c.Read(209)
	if err != nil {
		t.Fatal(err)
	}
	if b.Data[0] != 9 {
		t.Fatalf("tail block data %d, want 9", b.Data[0])
	}
	b.Release()
}

// An empty or fully-resident request is a no-op, not an error.
func TestReadRunsNoop(t *testing.T) {
	c := newCache(t, 16)
	if err := c.ReadRuns(nil); err != nil {
		t.Fatal(err)
	}
	fillDisk(t, c, 7, 1)
	b, err := c.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if err := c.ReadRuns([]Run{{Start: 7, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().PrefetchFills; got != 0 {
		t.Fatalf("prefetch fills = %d, want 0", got)
	}
}
