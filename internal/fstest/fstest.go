// Package fstest is a conformance suite run against every
// vfs.FileSystem implementation in this repository: the FFS baseline and
// all four C-FFS configurations. One battery of behavioural tests keeps
// the implementations semantically interchangeable, which is what makes
// the paper's performance comparisons meaningful.
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"cffs/internal/blockio"
	"cffs/internal/sim"
	"cffs/internal/vfs"
)

// Factory builds a fresh, empty file system for one subtest.
type Factory func(t *testing.T) vfs.FileSystem

// Cases returns the conformance battery. Each case declares the
// capabilities it needs; Suite.Run skips — never silently passes — a
// case whose needs the backend does not meet.
func Cases() []Case {
	return []Case{
		{Name: "CreateLookup", Fn: testCreateLookup},
		{Name: "CreateExisting", Fn: testCreateExisting},
		{Name: "WriteReadSmall", Fn: testWriteReadSmall},
		{Name: "WriteReadLarge", Fn: testWriteReadLarge},
		{Name: "WriteReadHuge", Needs: Features{Truncate: true}, Fn: testWriteReadHuge},
		{Name: "WriteReadSparse", Needs: Features{Sparse: true}, Fn: testWriteReadSparse},
		{Name: "Overwrite", Fn: testOverwrite},
		{Name: "UnalignedIO", Fn: testUnalignedIO},
		{Name: "Truncate", Needs: Features{Truncate: true}, Fn: testTruncate},
		{Name: "TruncateGrow", Needs: Features{Truncate: true}, Fn: testTruncateGrow},
		{Name: "UnlinkFreesSpace", Fn: testUnlinkFreesSpace},
		{Name: "MkdirRmdir", Fn: testMkdirRmdir},
		{Name: "RmdirNotEmpty", Fn: testRmdirNotEmpty},
		{Name: "ReadDir", Fn: testReadDir},
		{Name: "DeepPaths", Fn: testDeepPaths},
		{Name: "ManyFilesOneDir", Fn: testManyFilesOneDir},
		{Name: "HardLinks", Needs: Features{HardLinks: true}, Fn: testHardLinks},
		{Name: "RenameSameDir", Needs: Features{Rename: true}, Fn: testRenameSameDir},
		{Name: "RenameAcrossDirs", Needs: Features{Rename: true}, Fn: testRenameAcrossDirs},
		{Name: "RenameReplace", Needs: Features{Rename: true, RenameReplace: true}, Fn: testRenameReplace},
		{Name: "ErrorCases", Fn: testErrorCases},
		{Name: "NameValidation", Fn: testNameValidation},
		{Name: "PersistenceAcrossFlush", Needs: Features{Flush: true}, Fn: testPersistenceAcrossFlush},
		{Name: "StatFields", Fn: testStatFields},
		{Name: "ManyFilesContentIntegrity", Fn: testManyFilesContentIntegrity},
	}
}

// Run executes the whole conformance battery assuming a fully-featured
// file system — the right call for the repo's own implementations, which
// must support everything. Backends with gaps use Suite directly.
func Run(t *testing.T, mk Factory) {
	Suite{Factory: mk, Features: AllFeatures()}.Run(t)
}

// pattern produces deterministic, position-dependent content so that any
// block-level mixup is detected.
func pattern(seed uint64, n int) []byte {
	r := sim.NewRNG(seed)
	p := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
	return p
}

func testCreateLookup(t *testing.T, fs vfs.FileSystem) {
	ino, err := fs.Create(fs.Root(), "hello")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup(fs.Root(), "hello")
	if err != nil {
		t.Fatal(err)
	}
	if got != ino {
		t.Fatalf("Lookup = %d, Create = %d", got, ino)
	}
	st, err := fs.Stat(ino)
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != vfs.TypeReg || st.Size != 0 || st.Nlink != 1 {
		t.Fatalf("fresh file stat %+v", st)
	}
}

func testCreateExisting(t *testing.T, fs vfs.FileSystem) {
	if _, err := fs.Create(fs.Root(), "dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(fs.Root(), "dup"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("second create = %v, want ErrExist", err)
	}
	if _, err := fs.Mkdir(fs.Root(), "dup"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("mkdir over file = %v, want ErrExist", err)
	}
}

func testWriteReadSmall(t *testing.T, fs vfs.FileSystem) {
	data := pattern(1, 1024)
	if err := vfs.WriteFile(fs, "/small", data); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/small")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("1KB round trip failed")
	}
}

func testWriteReadLarge(t *testing.T, fs vfs.FileSystem) {
	// 300 blocks: exercises direct and single-indirect mappings.
	data := pattern(2, 300*blockio.BlockSize+123)
	if err := vfs.WriteFile(fs, "/large", data); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/large")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large file round trip failed")
	}
	st, _ := fs.Stat(mustWalk(t, fs, "/large"))
	if st.Size != int64(len(data)) {
		t.Fatalf("size %d, want %d", st.Size, len(data))
	}
}

func testWriteReadSparse(t *testing.T, fs vfs.FileSystem) {
	ino, err := fs.Create(fs.Root(), "sparse")
	if err != nil {
		t.Fatal(err)
	}
	// Write far past the start; everything before must read as zeros.
	// The offset lands in the double-indirect range to exercise it.
	off := int64(12+1024+5) * blockio.BlockSize
	tail := pattern(3, 1000)
	if _, err := fs.WriteAt(ino, tail, off); err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, 4096)
	buf := make([]byte, 4096)
	if _, err := fs.ReadAt(ino, buf, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, zero) {
		t.Fatal("hole did not read as zeros")
	}
	got := make([]byte, 1000)
	if n, err := fs.ReadAt(ino, got, off); err != nil || n != 1000 {
		t.Fatalf("ReadAt tail = %d, %v", n, err)
	}
	if !bytes.Equal(got, tail) {
		t.Fatal("sparse tail corrupted")
	}
}

func testOverwrite(t *testing.T, fs vfs.FileSystem) {
	first := pattern(4, 3*blockio.BlockSize)
	second := pattern(5, 3*blockio.BlockSize)
	if err := vfs.WriteFile(fs, "/ow", first); err != nil {
		t.Fatal(err)
	}
	ino := mustWalk(t, fs, "/ow")
	if _, err := fs.WriteAt(ino, second, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(fs, "/ow")
	if !bytes.Equal(got, second) {
		t.Fatal("overwrite did not replace contents")
	}
}

func testUnalignedIO(t *testing.T, fs vfs.FileSystem) {
	ino, err := fs.Create(fs.Root(), "unaligned")
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(6, 10000)
	// Write in odd-sized chunks at odd offsets.
	for off := 0; off < len(data); {
		n := 777
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := fs.WriteAt(ino, data[off:off+n], int64(off)); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	got := make([]byte, len(data))
	for off := 0; off < len(got); {
		n := 333
		if off+n > len(got) {
			n = len(got) - off
		}
		rn, err := fs.ReadAt(ino, got[off:off+n], int64(off))
		if err != nil || rn != n {
			t.Fatalf("ReadAt(%d) = %d, %v", off, rn, err)
		}
		off += n
	}
	if !bytes.Equal(got, data) {
		t.Fatal("unaligned I/O corrupted data")
	}
	// Reads past EOF return 0.
	if n, err := fs.ReadAt(ino, make([]byte, 10), int64(len(data))+5); n != 0 || err != nil {
		t.Fatalf("read past EOF = %d, %v", n, err)
	}
}

func testTruncate(t *testing.T, fs vfs.FileSystem) {
	data := pattern(7, 5*blockio.BlockSize)
	if err := vfs.WriteFile(fs, "/trunc", data); err != nil {
		t.Fatal(err)
	}
	ino := mustWalk(t, fs, "/trunc")
	if err := fs.Truncate(ino, 1000); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Stat(ino)
	if st.Size != 1000 {
		t.Fatalf("size after truncate %d, want 1000", st.Size)
	}
	got, _ := vfs.ReadFile(fs, "/trunc")
	if !bytes.Equal(got, data[:1000]) {
		t.Fatal("truncate corrupted retained prefix")
	}
	// Growing back must expose zeros, not stale data.
	if err := fs.Truncate(ino, 3000); err != nil {
		t.Fatal(err)
	}
	got, _ = vfs.ReadFile(fs, "/trunc")
	if len(got) != 3000 || !bytes.Equal(got[:1000], data[:1000]) {
		t.Fatal("grow after shrink lost prefix")
	}
	for i := 1000; i < 3000; i++ {
		if got[i] != 0 {
			t.Fatalf("stale byte %#x at %d after shrink+grow", got[i], i)
		}
	}
}

func testTruncateGrow(t *testing.T, fs vfs.FileSystem) {
	ino, err := fs.Create(fs.Root(), "grow")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(ino, 2*blockio.BlockSize); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Stat(ino)
	if st.Size != 2*blockio.BlockSize {
		t.Fatalf("size %d after grow", st.Size)
	}
	buf := make([]byte, 100)
	if n, _ := fs.ReadAt(ino, buf, blockio.BlockSize); n != 100 {
		t.Fatalf("read in grown region = %d", n)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("grown region not zero")
		}
	}
}

func testUnlinkFreesSpace(t *testing.T, fs vfs.FileSystem) {
	data := pattern(8, 64*blockio.BlockSize)
	if err := vfs.WriteFile(fs, "/bye", data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(fs.Root(), "bye"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "bye"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("lookup after unlink = %v", err)
	}
	// The space must be reusable: fill-and-free repeatedly.
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("cycle%d", i)
		if err := vfs.WriteFile(fs, "/"+name, data); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := fs.Unlink(fs.Root(), name); err != nil {
			t.Fatal(err)
		}
	}
}

func testMkdirRmdir(t *testing.T, fs vfs.FileSystem) {
	d, err := fs.Mkdir(fs.Root(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Stat(d)
	if st.Type != vfs.TypeDir || st.Nlink != 2 {
		t.Fatalf("fresh dir stat %+v", st)
	}
	rootSt, _ := fs.Stat(fs.Root())
	if rootSt.Nlink != 3 {
		t.Fatalf("root nlink %d after mkdir, want 3", rootSt.Nlink)
	}
	if err := fs.Rmdir(fs.Root(), "sub"); err != nil {
		t.Fatal(err)
	}
	rootSt, _ = fs.Stat(fs.Root())
	if rootSt.Nlink != 2 {
		t.Fatalf("root nlink %d after rmdir, want 2", rootSt.Nlink)
	}
	if _, err := fs.Lookup(fs.Root(), "sub"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("dir still visible after rmdir")
	}
}

func testRmdirNotEmpty(t *testing.T, fs vfs.FileSystem) {
	d, err := fs.Mkdir(fs.Root(), "full")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(d, "occupant"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(fs.Root(), "full"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty = %v, want ErrNotEmpty", err)
	}
	if err := fs.Unlink(d, "occupant"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(fs.Root(), "full"); err != nil {
		t.Fatal(err)
	}
}

func testReadDir(t *testing.T, fs vfs.FileSystem) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	for _, n := range names {
		if _, err := fs.Create(fs.Root(), n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Mkdir(fs.Root(), "dir1"); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 5 {
		t.Fatalf("ReadDir returned %d entries, want 5: %v", len(ents), ents)
	}
	seen := map[string]vfs.FileType{}
	for _, e := range ents {
		if e.Name == "." || e.Name == ".." {
			t.Fatalf("ReadDir leaked %q", e.Name)
		}
		seen[e.Name] = e.Type
	}
	for _, n := range names {
		if seen[n] != vfs.TypeReg {
			t.Fatalf("entry %q missing or wrong type", n)
		}
	}
	if seen["dir1"] != vfs.TypeDir {
		t.Fatal("dir1 missing or wrong type")
	}
}

func testDeepPaths(t *testing.T, fs vfs.FileSystem) {
	path := ""
	for i := 0; i < 12; i++ {
		path += fmt.Sprintf("/level%02d", i)
	}
	if _, err := vfs.MkdirAll(fs, path); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, path+"/leaf", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, path+"/leaf")
	if err != nil || string(got) != "deep" {
		t.Fatalf("deep leaf = %q, %v", got, err)
	}
}

func testManyFilesOneDir(t *testing.T, fs vfs.FileSystem) {
	// Enough names to force multiple directory blocks in any format.
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := fs.Create(fs.Root(), fmt.Sprintf("file%04d", i)); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	ents, err := fs.ReadDir(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("ReadDir = %d entries, want %d", len(ents), n)
	}
	// Remove every other file, then look up the survivors.
	for i := 0; i < n; i += 2 {
		if err := fs.Unlink(fs.Root(), fmt.Sprintf("file%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 2 {
		if _, err := fs.Lookup(fs.Root(), fmt.Sprintf("file%04d", i)); err != nil {
			t.Fatalf("survivor %d missing: %v", i, err)
		}
	}
	for i := 0; i < n; i += 2 {
		if _, err := fs.Lookup(fs.Root(), fmt.Sprintf("file%04d", i)); err == nil {
			t.Fatalf("deleted file %d still visible", i)
		}
	}
}

func testHardLinks(t *testing.T, fs vfs.FileSystem) {
	data := pattern(9, 2000)
	if err := vfs.WriteFile(fs, "/orig", data); err != nil {
		t.Fatal(err)
	}
	ino := mustWalk(t, fs, "/orig")
	if err := fs.Link(fs.Root(), "alias", ino); err != nil {
		t.Fatal(err)
	}
	aliasIno, err := fs.Lookup(fs.Root(), "alias")
	if err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/alias")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("alias content differs")
	}
	st, _ := fs.Stat(aliasIno)
	if st.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", st.Nlink)
	}
	// Writing through one name is visible through the other.
	if _, err := fs.WriteAt(aliasIno, []byte("PATCH"), 0); err != nil {
		t.Fatal(err)
	}
	got, _ = vfs.ReadFile(fs, "/orig")
	if !bytes.HasPrefix(got, []byte("PATCH")) {
		t.Fatal("write through alias not visible through original")
	}
	if err := fs.Unlink(fs.Root(), "orig"); err != nil {
		t.Fatal(err)
	}
	got, err = vfs.ReadFile(fs, "/alias")
	if err != nil || !bytes.HasPrefix(got, []byte("PATCH")) {
		t.Fatal("file died while a link remained")
	}
	st2, err := fs.Stat(mustWalk(t, fs, "/alias"))
	if err != nil || st2.Nlink != 1 {
		t.Fatalf("nlink after unlink = %d, %v", st2.Nlink, err)
	}
	if err := fs.Unlink(fs.Root(), "alias"); err != nil {
		t.Fatal(err)
	}
}

func testRenameSameDir(t *testing.T, fs vfs.FileSystem) {
	if err := vfs.WriteFile(fs, "/old", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(fs.Root(), "old", fs.Root(), "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "old"); err == nil {
		t.Fatal("old name survived rename")
	}
	got, err := vfs.ReadFile(fs, "/new")
	if err != nil || string(got) != "payload" {
		t.Fatalf("renamed contents = %q, %v", got, err)
	}
}

func testRenameAcrossDirs(t *testing.T, fs vfs.FileSystem) {
	a, err := fs.Mkdir(fs.Root(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir(fs.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/a/x", []byte("move me")); err != nil {
		t.Fatal(err)
	}
	b := mustWalk(t, fs, "/b")
	if err := fs.Rename(a, "x", b, "y"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/b/y")
	if err != nil || string(got) != "move me" {
		t.Fatalf("moved file = %q, %v", got, err)
	}
	if _, err := fs.Lookup(a, "x"); err == nil {
		t.Fatal("source name survived cross-directory rename")
	}
	// Move a directory and check ".." semantics via nlink bookkeeping.
	if _, err := fs.Mkdir(a, "subdir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(a, "subdir", b, "subdir"); err != nil {
		t.Fatal(err)
	}
	ast, _ := fs.Stat(a)
	bst, _ := fs.Stat(b)
	if ast.Nlink != 2 || bst.Nlink != 3 {
		t.Fatalf("nlink after dir move: a=%d b=%d, want 2/3", ast.Nlink, bst.Nlink)
	}
}

func testRenameReplace(t *testing.T, fs vfs.FileSystem) {
	if err := vfs.WriteFile(fs, "/src", []byte("new content")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/dst", []byte("old content")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(fs.Root(), "src", fs.Root(), "dst"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/dst")
	if err != nil || string(got) != "new content" {
		t.Fatalf("replaced contents = %q, %v", got, err)
	}
	if _, err := fs.Lookup(fs.Root(), "src"); err == nil {
		t.Fatal("source survived replacing rename")
	}
}

func testErrorCases(t *testing.T, fs vfs.FileSystem) {
	root := fs.Root()
	if _, err := fs.Lookup(root, "ghost"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("lookup ghost = %v", err)
	}
	if err := fs.Unlink(root, "ghost"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("unlink ghost = %v", err)
	}
	d, _ := fs.Mkdir(root, "d")
	if err := fs.Unlink(root, "d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("unlink dir = %v", err)
	}
	f, _ := fs.Create(root, "f")
	if err := fs.Rmdir(root, "f"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("rmdir file = %v", err)
	}
	if _, err := fs.Create(f, "child"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("create under file = %v", err)
	}
	if _, err := fs.ReadAt(d, make([]byte, 10), 0); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("read dir = %v", err)
	}
	if _, err := fs.WriteAt(d, []byte("x"), 0); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("write dir = %v", err)
	}
	if err := fs.Link(root, "dlink", d); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("link dir = %v", err)
	}
	if _, err := fs.ReadAt(f, make([]byte, 1), -1); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("negative read offset = %v", err)
	}
	long := make([]byte, vfs.MaxNameLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := fs.Create(root, string(long)); !errors.Is(err, vfs.ErrNameTooLong) {
		t.Fatalf("oversized name = %v", err)
	}
}

// testNameValidation checks that names carrying a path separator or a
// NUL byte are rejected with ErrInvalid by every namespace-mutating
// call. A '/' accepted into a single-name field would smuggle extra
// path components past the walk layer; a NUL would truncate the name
// for any C-string consumer of the on-disk image.
func testNameValidation(t *testing.T, fs vfs.FileSystem) {
	root := fs.Root()
	target, err := fs.Create(root, "target")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(root, "src"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"a/b", "/", "a\x00b", "\x00", "a/b\x00c"} {
		if _, err := fs.Create(root, bad); !errors.Is(err, vfs.ErrInvalid) {
			t.Fatalf("create %q = %v, want ErrInvalid", bad, err)
		}
		if _, err := fs.Mkdir(root, bad); !errors.Is(err, vfs.ErrInvalid) {
			t.Fatalf("mkdir %q = %v, want ErrInvalid", bad, err)
		}
		if err := fs.Link(root, bad, target); !errors.Is(err, vfs.ErrInvalid) {
			t.Fatalf("link %q = %v, want ErrInvalid", bad, err)
		}
		if err := fs.Rename(root, "src", root, bad); !errors.Is(err, vfs.ErrInvalid) {
			t.Fatalf("rename to %q = %v, want ErrInvalid", bad, err)
		}
		// The rejected name must not have been entered anywhere.
		if _, err := fs.Lookup(root, bad); err == nil {
			t.Fatalf("lookup %q succeeded after rejected ops", bad)
		}
	}
	// The source of the rejected rename must be untouched.
	if _, err := fs.Lookup(root, "src"); err != nil {
		t.Fatalf("rename source disturbed: %v", err)
	}
}

func testPersistenceAcrossFlush(t *testing.T, fs vfs.FileSystem) {
	fl, ok := fs.(vfs.Flusher)
	if !ok {
		t.Skip("file system has no cache to flush")
	}
	data := pattern(10, 20*blockio.BlockSize)
	if err := vfs.WriteFile(fs, "/persist", data); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.MkdirAll(fs, "/p/q"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/p/q/r", []byte("nested")); err != nil {
		t.Fatal(err)
	}
	if err := fl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Everything must come back from the disk image alone.
	got, err := vfs.ReadFile(fs, "/persist")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("file lost across cache flush")
	}
	got, err = vfs.ReadFile(fs, "/p/q/r")
	if err != nil || string(got) != "nested" {
		t.Fatal("nested file lost across cache flush")
	}
}

func testStatFields(t *testing.T, fs vfs.FileSystem) {
	data := pattern(11, 3*blockio.BlockSize+7)
	if err := vfs.WriteFile(fs, "/statme", data); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Stat(mustWalk(t, fs, "/statme"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", st.Size, len(data))
	}
	if st.Blocks < 4 {
		t.Fatalf("Blocks = %d, want >= 4", st.Blocks)
	}
	if st.Type != vfs.TypeReg {
		t.Fatalf("Type = %v", st.Type)
	}
}

func testManyFilesContentIntegrity(t *testing.T, fs vfs.FileSystem) {
	// A miniature of the paper's small-file benchmark with verification:
	// many small files written, flushed, and read back intact.
	const n = 200
	dir, err := fs.Mkdir(fs.Root(), "many")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ino, err := fs.Create(dir, fmt.Sprintf("f%03d", i))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if _, err := fs.WriteAt(ino, pattern(uint64(100+i), 1024), 0); err != nil {
			t.Fatal(err)
		}
	}
	if fl, ok := fs.(vfs.Flusher); ok {
		if err := fl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := vfs.ReadFile(fs, fmt.Sprintf("/many/f%03d", i))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, pattern(uint64(100+i), 1024)) {
			t.Fatalf("file %d corrupted", i)
		}
	}
}

func mustWalk(t *testing.T, fs vfs.FileSystem, path string) vfs.Ino {
	t.Helper()
	ino, err := vfs.Walk(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	return ino
}

func testWriteReadHuge(t *testing.T, fs vfs.FileSystem) {
	// Densely cross the single-indirect/double-indirect boundary:
	// 12 direct + 1024 single-indirect + 50 double-indirect blocks.
	size := (12 + 1024 + 50) * blockio.BlockSize
	data := pattern(99, size)
	if err := vfs.WriteFile(fs, "/huge", data); err != nil {
		t.Fatal(err)
	}
	if fl, ok := fs.(vfs.Flusher); ok {
		if err := fl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := vfs.ReadFile(fs, "/huge")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("huge file round trip failed")
	}
	// Partial truncation inside the indirect range, then regrow over it.
	ino := mustWalk(t, fs, "/huge")
	cut := int64((12 + 600) * blockio.BlockSize)
	if err := fs.Truncate(ino, cut); err != nil {
		t.Fatal(err)
	}
	tail := pattern(100, 8*blockio.BlockSize)
	if _, err := fs.WriteAt(ino, tail, cut); err != nil {
		t.Fatal(err)
	}
	got, err = vfs.ReadFile(fs, "/huge")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:cut], data[:cut]) || !bytes.Equal(got[cut:], tail) {
		t.Fatal("truncate+regrow through indirect blocks corrupted data")
	}
	if err := fs.Unlink(mustWalk(t, fs, "/"), "huge"); err != nil {
		t.Fatal(err)
	}
}
