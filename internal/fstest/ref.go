package fstest

import (
	"fmt"
	"sort"

	"cffs/internal/blockio"
	"cffs/internal/vfs"
)

// Ref is a trivially-correct in-memory reference implementation of
// vfs.FileSystem: the oracle for randomized model checking and fuzzing
// of the real file systems, and the fixture for testing the path
// helpers and the conformance suite itself. Its argument validation
// mirrors the real implementations — same sentinels for bad names and
// offsets, "." and ".." resolving like the physical entries C-FFS
// stores — because the fuzz targets compare the two error-for-error.
type Ref struct {
	next  vfs.Ino
	nodes map[vfs.Ino]*refNode
}

type refNode struct {
	typ      vfs.FileType
	data     []byte
	nlink    uint32
	children map[string]vfs.Ino
	parent   vfs.Ino // directories: what ".." resolves to
}

func NewRef() *Ref {
	fs := &Ref{next: 2, nodes: map[vfs.Ino]*refNode{
		1: {typ: vfs.TypeDir, nlink: 2, children: map[string]vfs.Ino{}, parent: 1},
	}}
	return fs
}

// checkName mirrors the real file systems' entry-name validation.
func checkName(name string) error {
	if len(name) == 0 || name == "." || name == ".." {
		return vfs.ErrInvalid
	}
	if len(name) > vfs.MaxNameLen {
		return fmt.Errorf("ref: name %q: %w", name, vfs.ErrNameTooLong)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return fmt.Errorf("ref: name %q: %w", name, vfs.ErrInvalid)
		}
	}
	return nil
}

func (m *Ref) node(ino vfs.Ino) (*refNode, error) {
	n := m.nodes[ino]
	if n == nil {
		return nil, vfs.ErrNotExist
	}
	return n, nil
}

func (m *Ref) dir(ino vfs.Ino) (*refNode, error) {
	n, err := m.node(ino)
	if err != nil {
		return nil, err
	}
	if n.typ != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	return n, nil
}

func (m *Ref) Root() vfs.Ino { return 1 }

func (m *Ref) Lookup(dir vfs.Ino, name string) (vfs.Ino, error) {
	d, err := m.dir(dir)
	if err != nil {
		return 0, err
	}
	// "." and ".." resolve like the physical entries every real
	// directory holds.
	switch name {
	case ".":
		return dir, nil
	case "..":
		return d.parent, nil
	}
	ino, ok := d.children[name]
	if !ok {
		return 0, fmt.Errorf("lookup %q: %w", name, vfs.ErrNotExist)
	}
	return ino, nil
}

func (m *Ref) create(dir vfs.Ino, name string, typ vfs.FileType) (vfs.Ino, error) {
	// Validation order mirrors core: name first, then the directory.
	if err := checkName(name); err != nil {
		return 0, err
	}
	d, err := m.dir(dir)
	if err != nil {
		return 0, err
	}
	if _, ok := d.children[name]; ok {
		return 0, fmt.Errorf("create %q: %w", name, vfs.ErrExist)
	}
	ino := m.next
	m.next++
	n := &refNode{typ: typ, nlink: 1}
	if typ == vfs.TypeDir {
		n.nlink = 2
		n.children = map[string]vfs.Ino{}
		n.parent = dir
	}
	m.nodes[ino] = n
	d.children[name] = ino
	if typ == vfs.TypeDir {
		d.nlink++ // the child's ".."
	}
	return ino, nil
}

func (m *Ref) Create(dir vfs.Ino, name string) (vfs.Ino, error) {
	return m.create(dir, name, vfs.TypeReg)
}
func (m *Ref) Mkdir(dir vfs.Ino, name string) (vfs.Ino, error) {
	return m.create(dir, name, vfs.TypeDir)
}

func (m *Ref) Link(dir vfs.Ino, name string, target vfs.Ino) error {
	// Same check order as core: name, directory, target (directories are
	// never linkable), and only then the existing-entry collision.
	if err := checkName(name); err != nil {
		return err
	}
	d, err := m.dir(dir)
	if err != nil {
		return err
	}
	n, err := m.node(target)
	if err != nil {
		return err
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if _, ok := d.children[name]; ok {
		return vfs.ErrExist
	}
	n.nlink++
	d.children[name] = target
	return nil
}

func (m *Ref) Unlink(dir vfs.Ino, name string) error {
	if name == "." || name == ".." {
		return vfs.ErrInvalid
	}
	d, err := m.dir(dir)
	if err != nil {
		return err
	}
	ino, ok := d.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := m.nodes[ino]
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	delete(d.children, name)
	n.nlink--
	if n.nlink == 0 {
		delete(m.nodes, ino)
	}
	return nil
}

func (m *Ref) Rmdir(dir vfs.Ino, name string) error {
	if name == "." || name == ".." {
		return vfs.ErrInvalid
	}
	d, err := m.dir(dir)
	if err != nil {
		return err
	}
	ino, ok := d.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := m.nodes[ino]
	if n.typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if len(n.children) > 0 {
		return vfs.ErrNotEmpty
	}
	delete(d.children, name)
	delete(m.nodes, ino)
	d.nlink--
	return nil
}

func (m *Ref) Rename(sdir vfs.Ino, sname string, ddir vfs.Ino, dname string) error {
	// Core's order: both names, the source directory and entry, and only
	// then the destination directory.
	if sname == "." || sname == ".." {
		return vfs.ErrInvalid
	}
	if err := checkName(dname); err != nil {
		return err
	}
	sd, err := m.dir(sdir)
	if err != nil {
		return err
	}
	ino, ok := sd.children[sname]
	if !ok {
		return vfs.ErrNotExist
	}
	dd, err := m.dir(ddir)
	if err != nil {
		return err
	}
	if sd == dd && sname == dname {
		// Renaming an entry onto itself is a no-op, like the real file
		// systems; falling through would unlink the node's only name
		// before re-adding it.
		return nil
	}
	if old, ok := dd.children[dname]; ok {
		if m.nodes[old].typ == vfs.TypeDir {
			return vfs.ErrIsDir
		}
		if err := m.Unlink(ddir, dname); err != nil {
			return err
		}
	}
	delete(sd.children, sname)
	dd.children[dname] = ino
	if m.nodes[ino].typ == vfs.TypeDir && sd != dd {
		sd.nlink--
		dd.nlink++
		m.nodes[ino].parent = ddir // the moved directory's ".." follows it
	}
	return nil
}

func (m *Ref) ReadDir(dir vfs.Ino) ([]vfs.DirEntry, error) {
	d, err := m.dir(dir)
	if err != nil {
		return nil, err
	}
	var ents []vfs.DirEntry
	for name, ino := range d.children {
		ents = append(ents, vfs.DirEntry{Name: name, Ino: ino, Type: m.nodes[ino].typ})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	return ents, nil
}

func (m *Ref) ReadAt(ino vfs.Ino, p []byte, off int64) (int, error) {
	n, err := m.node(ino)
	if err != nil {
		return 0, err
	}
	if n.typ == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= int64(len(n.data)) {
		return 0, nil
	}
	return copy(p, n.data[off:]), nil
}

func (m *Ref) WriteAt(ino vfs.Ino, p []byte, off int64) (int, error) {
	n, err := m.node(ino)
	if err != nil {
		return 0, err
	}
	if n.typ == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if len(p) == 0 {
		return 0, nil // a zero-length write never extends the file
	}
	end := off + int64(len(p))
	if end > int64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	copy(n.data[off:], p)
	return len(p), nil
}

func (m *Ref) Truncate(ino vfs.Ino, size int64) error {
	n, err := m.node(ino)
	if err != nil {
		return err
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if size < 0 {
		return vfs.ErrInvalid
	}
	if int64(len(n.data)) > size {
		n.data = n.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	return nil
}

func (m *Ref) Stat(ino vfs.Ino) (vfs.Stat, error) {
	n, err := m.node(ino)
	if err != nil {
		return vfs.Stat{}, err
	}
	return vfs.Stat{
		Ino:    ino,
		Type:   n.typ,
		Nlink:  n.nlink,
		Size:   int64(len(n.data)),
		Blocks: (int64(len(n.data)) + blockio.BlockSize - 1) / blockio.BlockSize,
	}, nil
}

func (m *Ref) Sync() error  { return nil }
func (m *Ref) Close() error { return nil }
