package fstest

import (
	"testing"

	"cffs/internal/vfs"
)

// Features declares which optional file-system capabilities an
// implementation under test provides. The conformance battery's cases
// each carry a Needs declaration; Suite.Run compares the two so a case
// exercising an unsupported capability is reported as skipped, never as
// passed. The repo's own file systems implement everything — the gaps
// appear when the battery runs against reduced fixtures or future
// backends, and a skip keeps the report honest about what was proven.
type Features struct {
	HardLinks     bool // Link: multiple names for one file
	Rename        bool // Rename within and across directories
	RenameReplace bool // Rename atomically replacing an existing target
	Sparse        bool // holes read as zeros without allocation
	Truncate      bool // shrink and grow with zero-fill
	Flush         bool // vfs.Flusher: cache can be emptied to the device
}

// AllFeatures is the full capability set.
func AllFeatures() Features {
	return Features{
		HardLinks:     true,
		Rename:        true,
		RenameReplace: true,
		Sparse:        true,
		Truncate:      true,
		Flush:         true,
	}
}

// Missing lists the capabilities in need that f does not provide, empty
// when the case can run.
func (f Features) Missing(need Features) []string {
	var m []string
	if need.HardLinks && !f.HardLinks {
		m = append(m, "hardlinks")
	}
	if need.Rename && !f.Rename {
		m = append(m, "rename")
	}
	if need.RenameReplace && !f.RenameReplace {
		m = append(m, "rename-replace")
	}
	if need.Sparse && !f.Sparse {
		m = append(m, "sparse")
	}
	if need.Truncate && !f.Truncate {
		m = append(m, "truncate")
	}
	if need.Flush && !f.Flush {
		m = append(m, "flush")
	}
	return m
}

// Case is one conformance test: a name, the capabilities it exercises,
// and the test body. The body may assume every declared need is met.
type Case struct {
	Name  string
	Needs Features
	Fn    func(*testing.T, vfs.FileSystem)
}

// Suite runs the conformance battery against one backend with a declared
// capability set.
type Suite struct {
	Factory  Factory
	Features Features

	// SkipHook, when non-nil, observes each skip before it happens:
	// the case name and the capabilities it wanted. Tests of the suite
	// itself use it to prove that gating skips rather than passes.
	SkipHook func(name string, missing []string)
}

// Run executes every case the backend's features allow and skips the
// rest, naming the missing capability in the skip reason.
func (s Suite) Run(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if missing := s.Features.Missing(c.Needs); len(missing) > 0 {
				if s.SkipHook != nil {
					s.SkipHook(c.Name, missing)
				}
				t.Skipf("backend lacks %v", missing)
			}
			c.Fn(t, s.Factory(t))
		})
	}
}
